(* The benchmark harness.

   Part 1 regenerates every table/figure of the paper's evaluation
   (Figures 8-14, the dynamic-traffic study) plus the ablations listed
   in DESIGN.md, printing the same series the paper plots together with
   shape checks.

   Part 2 runs Bechamel micro-benchmarks of the core algorithmic
   pieces, one [Test.make] per component, so performance regressions in
   the library itself are visible. *)

module Experiments = Mdr_experiments.Experiments
module Workload = Mdr_experiments.Workload
open Bechamel
open Toolkit

let run_experiments () =
  let failures = ref 0 in
  List.iter
    (fun (id, f) ->
      Printf.printf "### %s\n%!" id;
      let t0 = Unix.gettimeofday () in
      let outcome = f () in
      let dt = Unix.gettimeofday () -. t0 in
      print_endline outcome.Experiments.rendered;
      List.iter
        (fun (label, ok) ->
          if not ok then incr failures;
          Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") label)
        outcome.Experiments.checks;
      Printf.printf "  (%.1fs)\n\n%!" dt)
    (Experiments.all ());
  !failures

(* --- Overload scenario ------------------------------------------------- *)

(* Push CAIRN to 0.8x/1.0x/1.2x of its feasible envelope and run the
   full overload audit at each point, timing it. Emits
   BENCH_overload.json so the wall-clock and delay/shed trajectory is
   machine-trackable across commits. *)
let overload_scenario () =
  let module Overload = Mdr_faults.Overload in
  let module Traffic = Mdr_fluid.Traffic in
  let module Feasibility = Mdr_fluid.Feasibility in
  let w = Workload.cairn ~load:1.0 in
  let base = Workload.traffic w in
  let packet_size = Workload.packet_size in
  (* Admissible fractions are capped at 1; probe at a certainly
     infeasible load and scale back to recover the envelope. *)
  let probe = 32.0 in
  let frac =
    (Feasibility.report w.Workload.topo ~packet_size (Traffic.scale base probe))
      .Feasibility.fraction
  in
  let envelope = probe *. frac in
  (* Load multipliers fan out on the pool (MDR_JOBS); each task times
     its own audit, so wall_clock_s stays the per-audit cost even when
     rows run concurrently. *)
  let rows =
    Mdr_util.Pool.map_list
      (fun mult ->
        let offered = Traffic.scale base (mult *. envelope) in
        let t0 = Unix.gettimeofday () in
        let r =
          Overload.audit ~topo:w.Workload.topo ~packet_size ~base ~offered ()
        in
        let dt = Unix.gettimeofday () -. t0 in
        (mult, dt, r))
      [ 0.8; 1.0; 1.2 ]
  in
  Printf.printf
    "### overload scenario (0.8x/1.0x/1.2x of the %.2fx feasible envelope)\n"
    envelope;
  print_string
    (Overload.table
       (List.map (fun (m, _, r) -> (Printf.sprintf "%.1fx" m, r)) rows));
  print_newline ();
  let jfloat v = if Float.is_finite v then Printf.sprintf "%.6f" v else "null" in
  let json_row (mult, dt, (r : Overload.report)) =
    let f = r.Overload.fluid in
    Printf.sprintf
      "    {\"load_multiplier\": %.3f, \"wall_clock_s\": %s, \
       \"admitted_fraction\": %s, \"shed_fraction\": %s, \"base_delay_s\": %s, \
       \"overload_delay_s\": %s, \"delay_ratio\": %s, \"degraded\": %b, \
       \"costs_finite\": %b, \"saturated_links\": %d, \
       \"successor_flaps_undamped\": %d, \"successor_flaps_damped\": %d, \
       \"lfi_violations\": %d}"
      mult (jfloat dt)
      (jfloat f.Overload.admitted_fraction)
      (jfloat f.Overload.shed_fraction)
      (jfloat f.Overload.base_delay)
      (jfloat f.Overload.overload_delay)
      (jfloat f.Overload.delay_ratio)
      f.Overload.degraded f.Overload.costs_finite f.Overload.saturated_links
      r.Overload.undamped.Overload.successor_flaps
      r.Overload.damped.Overload.successor_flaps
      (r.Overload.undamped.Overload.lfi_violations
      + r.Overload.damped.Overload.lfi_violations)
  in
  let oc = open_out "BENCH_overload.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"overload\",\n  \"topology\": \"%s\",\n  \
     \"feasible_envelope\": %s,\n  \"rows\": [\n%s\n  ]\n}\n"
    w.Workload.name (jfloat envelope)
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Printf.printf "wrote BENCH_overload.json\n\n%!";
  (* The scenario doubles as a shape check: costs finite everywhere,
     zero LFI violations, and the >1x point must shed. *)
  List.length
    (List.filter
       (fun (mult, _, (r : Overload.report)) ->
         not
           (r.Overload.fluid.Overload.costs_finite
           && r.Overload.undamped.Overload.lfi_violations = 0
           && r.Overload.damped.Overload.lfi_violations = 0
           && (mult <= 1.0 || r.Overload.fluid.Overload.degraded)))
       rows)

(* --- Micro-benchmarks -------------------------------------------------- *)

let bench_dijkstra =
  let w = Workload.cairn ~load:1.0 in
  let cost (l : Mdr_topology.Graph.link) = 1.0 +. (l.prop_delay *. 1000.0) in
  Test.make ~name:"dijkstra: CAIRN all-destinations"
    (Staged.stage (fun () ->
         List.iter
           (fun dst ->
             ignore (Mdr_routing.Dijkstra.distances_to w.Workload.topo ~dst ~cost))
           (Mdr_topology.Graph.nodes w.Workload.topo)))

let bench_mpda_convergence =
  let topo = Mdr_topology.Net1.topology () in
  let cost (l : Mdr_topology.Graph.link) = 1.0 +. (l.prop_delay *. 1000.0) in
  Test.make ~name:"mpda: NET1 cold-start convergence"
    (Staged.stage (fun () ->
         let net = Mdr_routing.Network.create ~topo ~cost () in
         Mdr_routing.Network.run net;
         assert (Mdr_routing.Network.quiescent net)))

let bench_fluid_flows =
  let w = Workload.cairn ~load:1.0 in
  let model = Workload.model w in
  let traffic = Workload.traffic w in
  let params = Mdr_gallager.Gallager.spf_params model w.Workload.topo in
  Test.make ~name:"fluid: CAIRN flow computation"
    (Staged.stage (fun () ->
         ignore (Mdr_fluid.Flows.compute params traffic)))

let bench_opt_iteration =
  let w = Workload.net1 ~load:1.0 in
  let model = Workload.model w in
  let traffic = Workload.traffic w in
  Test.make ~name:"gallager: NET1 5 iterations"
    (Staged.stage (fun () ->
         ignore (Mdr_gallager.Gallager.solve ~max_iters:5 model w.Workload.topo traffic)))

let bench_ah_step =
  let current = [ (1, 0.4); (2, 0.35); (3, 0.25) ] in
  let through = function 1 -> 1.0 | 2 -> 1.5 | 3 -> 2.0 | _ -> infinity in
  Test.make ~name:"heuristics: one AH adjustment"
    (Staged.stage (fun () ->
         ignore (Mdr_core.Heuristics.adjust ~current ~through ())))

let bench_packet_sim =
  let topo = Mdr_topology.Net1.topology () in
  let flows =
    List.map
      (fun (src, dst) -> { Mdr_netsim.Sim.src; dst; rate_bits = 2.0e6; burst = None })
      (Mdr_topology.Net1.flow_pairs topo)
  in
  let cfg =
    { Mdr_netsim.Sim.default_config with sim_time = 2.0; warmup = 0.5 }
  in
  Test.make ~name:"netsim: 2 simulated seconds of NET1"
    (Staged.stage (fun () -> ignore (Mdr_netsim.Sim.run ~config:cfg topo flows)))

let bench_incr_spf =
  (* Steady-state single-link repair on a warm 1000-node BA table —
     the per-LSU hot path `mdrsim scale` sweeps at larger n. *)
  let module T = Mdr_routing.Topo_table in
  let module I = Mdr_routing.Incr_spf in
  let rng = Mdr_util.Rng.substream ~seed:1 ~index:0 in
  let topo = Mdr_topology.Generators.barabasi_albert ~rng ~n:1000 ~m:2 () in
  let table = T.create () in
  List.iter
    (fun (l : Mdr_topology.Graph.link) ->
      T.set table ~head:l.src ~tail:l.dst
        ~cost:(0.25 *. float_of_int (1 + Mdr_util.Rng.int rng ~bound:32)))
    (Mdr_topology.Graph.links topo);
  let iws = I.workspace () in
  let st = I.create ~n:1000 ~root:0 in
  I.full iws st table;
  ignore (T.csr table ~n:1000);
  ignore (T.csr_in table ~n:1000);
  let l = List.hd (Mdr_topology.Graph.links topo) in
  let flip = ref false in
  Test.make ~name:"incr_spf: BA-1000 single-link repair"
    (Staged.stage (fun () ->
         flip := not !flip;
         let cost = if !flip then 4.0 else 4.25 in
         T.set table ~head:l.src ~tail:l.dst ~cost;
         ignore
           (I.update iws st table
              ~changes:[ { T.head = l.src; tail = l.dst; cost } ])))

let bench_estimator =
  Test.make ~name:"estimator: busy-period sample"
    (Staged.stage (fun () ->
         let e = Mdr_costs.Estimator.busy_period ~prop_delay:0.001 in
         for i = 1 to 100 do
           Mdr_costs.Estimator.on_arrival e ~now:(float_of_int i *. 0.001);
           Mdr_costs.Estimator.on_departure e
             ~now:((float_of_int i *. 0.001) +. 0.0005)
             ~sojourn:0.0005 ~service:0.0004 ~busy:(i mod 3 <> 0)
         done;
         ignore (Mdr_costs.Estimator.sample e ~now:1.0)))

let micro_benchmarks () =
  let tests =
    [
      bench_dijkstra;
      bench_mpda_convergence;
      bench_fluid_flows;
      bench_opt_iteration;
      bench_ah_step;
      bench_packet_sim;
      bench_incr_spf;
      bench_estimator;
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:None () in
  let instance = Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"mdr" tests) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols instance results in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      rows := (name, per_run) :: !rows)
    analyzed;
  let rows = List.sort compare !rows in
  print_endline "### micro-benchmarks (Bechamel, monotonic clock)";
  print_endline
    (Mdr_util.Tab.render
       ~header:[ "benchmark"; "time per run" ]
       (List.map
          (fun (name, ns) ->
            let cell =
              if Float.is_nan ns then "n/a"
              else if ns > 1.0e9 then Printf.sprintf "%.2f s" (ns /. 1.0e9)
              else if ns > 1.0e6 then Printf.sprintf "%.2f ms" (ns /. 1.0e6)
              else if ns > 1.0e3 then Printf.sprintf "%.2f us" (ns /. 1.0e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; cell ])
          rows))

let () =
  print_endline "=== Reproduction benches: A Simple Approximation to Minimum-Delay Routing ===";
  print_endline "";
  let experiment_failures = run_experiments () in
  let overload_failures = overload_scenario () in
  let failures = experiment_failures + overload_failures in
  micro_benchmarks ();
  Printf.printf "\n=== done: %d shape-check failure(s) ===\n" failures;
  if failures > 0 then exit 1
