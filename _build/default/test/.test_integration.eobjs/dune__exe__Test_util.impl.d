test/test_util.ml: Alcotest Array Float Fun Gen List Mdr_util QCheck QCheck_alcotest String
