test/test_fluid.ml: Alcotest Array Float List Mdr_fluid Mdr_topology Option QCheck QCheck_alcotest
