test/test_topology.ml: Alcotest Array List Mdr_topology Mdr_util QCheck QCheck_alcotest
