test/test_netsim.ml: Alcotest Float List Mdr_eventsim Mdr_netsim Mdr_topology Mdr_util
