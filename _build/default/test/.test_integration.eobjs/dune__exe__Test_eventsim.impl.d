test/test_eventsim.ml: Alcotest List Mdr_eventsim Mdr_util
