test/test_gallager.ml: Alcotest Array Float List Mdr_fluid Mdr_gallager Mdr_topology
