test/test_costs.ml: Alcotest Float Mdr_costs Mdr_fluid Mdr_util Queue
