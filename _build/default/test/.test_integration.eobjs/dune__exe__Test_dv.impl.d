test/test_dv.ml: Alcotest Array Float List Mdr_routing Mdr_topology Mdr_util Option QCheck QCheck_alcotest
