test/test_routing.ml: Alcotest Array Float List Mdr_routing Mdr_topology Mdr_util Option QCheck QCheck_alcotest
