test/test_experiments.ml: Alcotest List Mdr_experiments Mdr_fluid Mdr_netsim String
