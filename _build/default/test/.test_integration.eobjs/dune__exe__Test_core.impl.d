test/test_core.ml: Alcotest Float Gen List Mdr_core Mdr_fluid Mdr_gallager Mdr_topology QCheck QCheck_alcotest
