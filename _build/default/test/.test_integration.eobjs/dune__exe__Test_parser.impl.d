test/test_parser.ml: Alcotest Filename List Mdr_topology String Sys
