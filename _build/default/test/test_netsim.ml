(* Tests for the packet-level simulator: M/M/1 ground truth, traffic
   generator statistics, conservation (no loss), loop-freedom during
   full-system runs, and the MP-vs-SP ordering under load. *)

module Graph = Mdr_topology.Graph
module Sim = Mdr_netsim.Sim
module Traffic_gen = Mdr_netsim.Traffic_gen
module Engine = Mdr_eventsim.Engine
module Rng = Mdr_util.Rng
module Stats = Mdr_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let two_nodes () =
  let g = Graph.create ~names:[| "a"; "b" |] in
  Graph.add_duplex g "a" "b" ~capacity:10.0e6 ~prop_delay:0.001;
  g

let test_single_link_mm1_delay () =
  (* The simulator must reproduce the M/M/1 sojourn-time formula the
     whole fluid model rests on. *)
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 80.0; warmup = 15.0; seed = 2 } in
  let rate = 6.0e6 in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = rate; burst = None } ] in
  let c = 10.0e6 /. cfg.mean_packet_size and lam = rate /. cfg.mean_packet_size in
  let theory = (1.0 /. (c -. lam)) +. 0.001 in
  match r.flows with
  | [ f ] ->
    check "delivered plenty" true (f.delivered > 10_000);
    check_int "no drops" 0 f.dropped;
    check "within 5% of M/M/1" true
      (Float.abs (f.mean_delay -. theory) /. theory < 0.05)
  | _ -> Alcotest.fail "one flow expected"

let test_no_packet_loss_stable_load () =
  let topo = Mdr_topology.Net1.topology () in
  let flows =
    List.map
      (fun (src, dst) -> { Sim.src; dst; rate_bits = 2.0e6; burst = None })
      (Mdr_topology.Net1.flow_pairs topo)
  in
  let cfg = { Sim.default_config with sim_time = 30.0; warmup = 5.0 } in
  let r = Sim.run ~config:cfg topo flows in
  check "delivered" true (r.total_delivered > 50_000);
  check "negligible drops" true
    (float_of_int r.total_dropped /. float_of_int r.total_delivered < 1e-3)

let test_loop_freedom_throughout () =
  let topo = Mdr_topology.Net1.topology () in
  let flows =
    List.map
      (fun (src, dst) -> { Sim.src; dst; rate_bits = 3.0e6; burst = None })
      (Mdr_topology.Net1.flow_pairs topo)
  in
  let cfg = { Sim.default_config with sim_time = 40.0; warmup = 5.0; seed = 3 } in
  let r = Sim.run ~config:cfg topo flows in
  check_int "no loop violations" 0 r.loop_free_violations

let test_control_traffic_flows () =
  let topo = Mdr_topology.Net1.topology () in
  let cfg = { Sim.default_config with sim_time = 25.0 } in
  let r =
    Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 9; rate_bits = 1.0e6; burst = None } ]
  in
  check "LSUs were exchanged" true (r.control_messages > 50)

let test_sp_not_faster_than_mp_under_load () =
  let topo = Mdr_topology.Net1.topology () in
  let flows =
    List.mapi
      (fun i (src, dst) ->
        { Sim.src; dst; rate_bits = 1.5 *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6; burst = None })
      (Mdr_topology.Net1.flow_pairs topo)
  in
  let cfg = { Sim.default_config with sim_time = 50.0; warmup = 10.0 } in
  let mp = Sim.run ~config:cfg topo flows in
  let sp = Sim.run ~config:{ cfg with scheme = Sim.Sp } topo flows in
  check "MP at least as good" true (mp.avg_delay <= sp.avg_delay *. 1.05)

let test_deterministic_given_seed () =
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 10.0; warmup = 1.0; seed = 5 } in
  let flow = [ { Sim.src = 0; dst = 1; rate_bits = 4.0e6; burst = None } ] in
  let a = Sim.run ~config:cfg topo flow in
  let b = Sim.run ~config:cfg topo flow in
  check "identical delivered" true (a.total_delivered = b.total_delivered);
  check "identical delay" true
    ((List.hd a.flows).mean_delay = (List.hd b.flows).mean_delay)

let test_seed_changes_results () =
  let topo = two_nodes () in
  let flow = [ { Sim.src = 0; dst = 1; rate_bits = 4.0e6; burst = None } ] in
  let cfg = { Sim.default_config with sim_time = 10.0; warmup = 1.0 } in
  let a = Sim.run ~config:{ cfg with seed = 1 } topo flow in
  let b = Sim.run ~config:{ cfg with seed = 2 } topo flow in
  check "different sample paths" true
    ((List.hd a.flows).mean_delay <> (List.hd b.flows).mean_delay)

let test_estimator_variants_run () =
  let topo = two_nodes () in
  let flow = [ { Sim.src = 0; dst = 1; rate_bits = 5.0e6; burst = None } ] in
  List.iter
    (fun estimator ->
      let cfg = { Sim.default_config with sim_time = 15.0; warmup = 3.0; estimator } in
      let r = Sim.run ~config:cfg topo flow in
      check "delivers" true (r.total_delivered > 1000))
    [ Sim.Mm1; Sim.Busy_period; Sim.Sojourn ]

let test_bursty_source_rate () =
  (* On-off sources must preserve the configured mean rate. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:11 in
  let gen =
    Traffic_gen.on_off ~rng ~rate_bits:2.0e6 ~mean_packet_size:4096.0
      ~on_mean:1.0 ~off_mean:1.0
  in
  let bits = ref 0.0 in
  Traffic_gen.start gen ~engine ~flow_id:0 ~src:0 ~dst:1
    ~inject:(fun p -> bits := !bits +. p.Mdr_netsim.Packet.size)
    ~until:400.0;
  Engine.run engine;
  let mean_rate = !bits /. 400.0 in
  check "within 10% of nominal" true
    (Float.abs (mean_rate -. 2.0e6) /. 2.0e6 < 0.10)

let test_poisson_source_rate () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:12 in
  let gen = Traffic_gen.poisson ~rng ~rate_bits:3.0e6 ~mean_packet_size:4096.0 in
  let bits = ref 0.0 and count = ref 0 in
  Traffic_gen.start gen ~engine ~flow_id:0 ~src:0 ~dst:1
    ~inject:(fun p ->
      bits := !bits +. p.Mdr_netsim.Packet.size;
      incr count)
    ~until:200.0;
  Engine.run engine;
  check "bit rate" true (Float.abs ((!bits /. 200.0) -. 3.0e6) /. 3.0e6 < 0.05);
  let pkt_rate = float_of_int !count /. 200.0 in
  check "packet rate" true (Float.abs (pkt_rate -. (3.0e6 /. 4096.0)) < 0.05 *. (3.0e6 /. 4096.0))

let test_bursty_delays_exceed_poisson () =
  (* Burstiness at equal mean load increases queueing delay. *)
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 60.0; warmup = 10.0; seed = 4 } in
  let base = { Sim.src = 0; dst = 1; rate_bits = 6.0e6; burst = None } in
  let smooth = Sim.run ~config:cfg topo [ base ] in
  let bursty = Sim.run ~config:cfg topo [ { base with burst = Some (0.5, 0.5) } ] in
  check "bursty slower" true
    ((List.hd bursty.flows).mean_delay > (List.hd smooth.flows).mean_delay)

let test_config_validation () =
  let topo = two_nodes () in
  check "bad timescales" true
    (try
       ignore
         (Sim.run
            ~config:{ Sim.default_config with t_s = 5.0; t_l = 1.0 }
            topo []);
       false
     with Invalid_argument _ -> true)

let test_finite_buffers_drop_under_overload () =
  (* 12 Mb/s into a 10 Mb/s link with a 32-packet buffer: tail drops
     appear, and the mean queue stays bounded by the buffer. *)
  let topo = two_nodes () in
  let cfg =
    { Sim.default_config with sim_time = 30.0; warmup = 5.0; buffer_packets = Some 32 }
  in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = 12.0e6; burst = None } ] in
  let f = List.hd r.flows in
  check "drops occur" true (f.dropped > 100);
  check "still delivers" true (f.delivered > 10_000);
  check "queue bounded" true (r.max_mean_queue <= 32.0)

let test_infinite_buffers_no_loss () =
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 20.0; warmup = 2.0 } in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = 8.0e6; burst = None } ] in
  Alcotest.(check int) "no loss" 0 (List.hd r.flows).dropped

let test_link_stats () =
  (* One 5 Mb/s flow on a 10 Mb/s link: utilization ~0.5 on the used
     direction, ~0 on the reverse. *)
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 40.0; warmup = 5.0 } in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = 5.0e6; burst = None } ] in
  Alcotest.(check int) "two links" 2 (List.length r.links);
  let fwd = List.find (fun (l : Sim.link_stat) -> l.src = 0) r.links in
  let back = List.find (fun (l : Sim.link_stat) -> l.src = 1) r.links in
  check "forward utilization ~0.5" true
    (Float.abs (fwd.utilization -. 0.5) < 0.05);
  check "forward carried packets" true (fwd.packets > 10_000);
  check "reverse only control traffic" true (back.utilization < 0.01);
  (* M/M/1 sanity: mean packets in system = rho/(1-rho) ~ 1. *)
  check "mean queue near rho/(1-rho)" true (Float.abs (fwd.mean_queue -. 1.0) < 0.25)

let test_mean_hops () =
  (* On the two-node network every packet takes exactly one hop. *)
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 10.0; warmup = 1.0 } in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = 4.0e6; burst = None } ] in
  Alcotest.(check (float 1e-9)) "one hop" 1.0 (List.hd r.flows).mean_hops

let test_ecmp_uses_both_equal_paths () =
  (* Symmetric diamond: ECMP's even split shows up as both a-links
     carrying roughly half the traffic. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];
  let cfg =
    { Sim.default_config with scheme = Sim.Ecmp; sim_time = 30.0; warmup = 5.0 }
  in
  let r = Sim.run ~config:cfg g [ { Sim.src = 0; dst = 3; rate_bits = 6.0e6; burst = None } ] in
  let util src dst =
    (List.find (fun (l : Sim.link_stat) -> l.src = src && l.dst = dst) r.links)
      .utilization
  in
  check "path a used" true (util 0 1 > 0.2);
  check "path b used" true (util 0 2 > 0.2);
  check "roughly even" true (Float.abs (util 0 1 -. util 0 2) < 0.1)

let test_p95_at_least_mean () =
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 20.0; warmup = 2.0 } in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = 5.0e6; burst = None } ] in
  let f = List.hd r.flows in
  check "p95 >= mean" true (f.p95_delay >= f.mean_delay)

let test_timeline_collected () =
  let topo = two_nodes () in
  let cfg = { Sim.default_config with sim_time = 20.0; warmup = 2.0 } in
  let r = Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 1; rate_bits = 5.0e6; burst = None } ] in
  check "timeline nonempty" true (List.length r.delay_timeline > 10);
  List.iter
    (fun (t, d, c) ->
      check "time in range" true (t >= 0.0 && t <= 20.0);
      check "positive delay" true (d > 0.0);
      check "positive count" true (c > 0))
    r.delay_timeline

let test_link_failure_reroutes () =
  (* Square: 0-1-3 and 0-2-3. Fail 1-3 mid-run: traffic must reroute
     via 2 and keep being delivered. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];
  let cfg = { Sim.default_config with sim_time = 40.0; warmup = 5.0; t_l = 4.0; t_s = 1.0 } in
  let events = [ Sim.Fail_duplex { at = 15.0; a = 1; b = 3 } ] in
  let r =
    Sim.run ~config:cfg ~events g
      [ { Sim.src = 0; dst = 3; rate_bits = 4.0e6; burst = None } ]
  in
  let f = List.hd r.flows in
  (* Deliveries continue well after the failure. *)
  let late = List.filter (fun (t, _, _) -> t > 20.0) r.delay_timeline in
  check "delivers after failure" true (List.length late > 10);
  check "most packets delivered" true
    (float_of_int f.dropped /. float_of_int (f.delivered + f.dropped) < 0.02);
  check "loop free throughout" true (r.loop_free_violations = 0)

let test_link_failure_and_restore () =
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];
  let cfg = { Sim.default_config with sim_time = 40.0; warmup = 5.0; t_l = 4.0; t_s = 1.0 } in
  let events =
    [
      Sim.Fail_duplex { at = 12.0; a = 1; b = 3 };
      Sim.Restore_duplex { at = 25.0; a = 1; b = 3 };
    ]
  in
  let r =
    Sim.run ~config:cfg ~events g
      [ { Sim.src = 0; dst = 3; rate_bits = 9.0e6; burst = None } ]
  in
  (* With 9 Mb/s on a single remaining 10 Mb/s path, delays during the
     outage exceed the post-restore (split) delays. *)
  let mean_over lo hi =
    let xs =
      List.filter_map
        (fun (t, d, _) -> if t >= lo && t < hi then Some d else None)
        r.delay_timeline
    in
    Stats.mean_of_list xs
  in
  let during = mean_over 16.0 24.0 and after = mean_over 32.0 40.0 in
  check "delay spikes during outage" true (during > after);
  check "loop free" true (r.loop_free_violations = 0)

let suite =
  [
    Alcotest.test_case "single link reproduces M/M/1" `Slow test_single_link_mm1_delay;
    Alcotest.test_case "no loss at stable load" `Slow test_no_packet_loss_stable_load;
    Alcotest.test_case "loop-free throughout a run" `Slow test_loop_freedom_throughout;
    Alcotest.test_case "control plane active" `Quick test_control_traffic_flows;
    Alcotest.test_case "MP <= SP under load" `Slow test_sp_not_faster_than_mp_under_load;
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic_given_seed;
    Alcotest.test_case "seed changes sample path" `Quick test_seed_changes_results;
    Alcotest.test_case "all estimators usable" `Quick test_estimator_variants_run;
    Alcotest.test_case "on-off source mean rate" `Quick test_bursty_source_rate;
    Alcotest.test_case "poisson source rates" `Quick test_poisson_source_rate;
    Alcotest.test_case "burstiness raises delay" `Slow test_bursty_delays_exceed_poisson;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "p95 >= mean" `Quick test_p95_at_least_mean;
    Alcotest.test_case "mean hops" `Quick test_mean_hops;
    Alcotest.test_case "per-link statistics" `Slow test_link_stats;
    Alcotest.test_case "ECMP splits equal paths" `Slow test_ecmp_uses_both_equal_paths;
    Alcotest.test_case "finite buffers drop at overload" `Slow test_finite_buffers_drop_under_overload;
    Alcotest.test_case "unbounded buffers lossless" `Quick test_infinite_buffers_no_loss;
    Alcotest.test_case "delay timeline collected" `Quick test_timeline_collected;
    Alcotest.test_case "link failure reroutes traffic" `Slow test_link_failure_reroutes;
    Alcotest.test_case "failure + restore delay profile" `Slow test_link_failure_and_restore;
  ]
