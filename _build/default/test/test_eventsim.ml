(* Tests for the discrete-event engine: ordering, cancellation, clock
   semantics and run-until behaviour. *)

module Engine = Mdr_eventsim.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-12))

let test_runs_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run e;
  check "order" true (List.rev !log = [ 1; 2; 3 ]);
  check_float "clock" 3.0 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check "fifo ties" true (List.rev !log = [ 1; 2; 3; 4; 5 ])

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  check "nested" true (List.rev !log = [ "outer"; "inner" ]);
  check_float "clock" 1.5 (Engine.now e)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  check "not fired" false !fired;
  check_int "pending" 0 (Engine.pending e)

let test_cancel_twice_harmless () =
  let e = Engine.create () in
  let id = Engine.schedule e ~delay:1.0 ignore in
  Engine.cancel e id;
  Engine.cancel e id;
  check_int "pending" 0 (Engine.pending e);
  Engine.run e

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.5 e;
  check_int "first five" 5 !count;
  check_float "clock at limit" 5.5 (Engine.now e);
  Engine.run e;
  check_int "rest" 10 !count

let test_run_until_with_cancelled_head () =
  (* A cancelled event beyond the limit must not leak execution past
     the limit. *)
  let e = Engine.create () in
  let fired = ref [] in
  let id = Engine.schedule e ~delay:1.0 (fun () -> fired := 1 :: !fired) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> fired := 2 :: !fired));
  Engine.cancel e id;
  Engine.run ~until:1.5 e;
  check "nothing past limit" true (!fired = []);
  Engine.run e;
  check "later event fires" true (!fired = [ 2 ])

let test_schedule_at () =
  let e = Engine.create () in
  let t = ref 0.0 in
  ignore (Engine.schedule_at e ~time:2.5 (fun () -> t := Engine.now e));
  Engine.run e;
  check_float "fired at" 2.5 !t

let test_schedule_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 ignore);
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:0.5 ignore));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule e ~delay:(-1.0) ignore))

let test_step () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr count));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr count));
  check "step 1" true (Engine.step e);
  check_int "one fired" 1 !count;
  check "step 2" true (Engine.step e);
  check "exhausted" false (Engine.step e)

let test_pending_counts () =
  let e = Engine.create () in
  let a = Engine.schedule e ~delay:1.0 ignore in
  ignore (Engine.schedule e ~delay:2.0 ignore);
  check_int "two pending" 2 (Engine.pending e);
  Engine.cancel e a;
  check_int "one pending" 1 (Engine.pending e);
  Engine.run e;
  check_int "none" 0 (Engine.pending e)

let test_many_events_stress () =
  let e = Engine.create () in
  let rng = Mdr_util.Rng.create ~seed:17 in
  let count = ref 0 in
  let last = ref 0.0 in
  for _ = 1 to 20_000 do
    let t = Mdr_util.Rng.uniform rng ~lo:0.0 ~hi:100.0 in
    ignore
      (Engine.schedule_at e ~time:t (fun () ->
           incr count;
           check "monotonic clock" true (Engine.now e >= !last);
           last := Engine.now e))
  done;
  Engine.run e;
  check_int "all fired" 20_000 !count

let suite =
  [
    Alcotest.test_case "runs in time order" `Quick test_runs_in_time_order;
    Alcotest.test_case "same-time events are FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "double cancel harmless" `Quick test_cancel_twice_harmless;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "run until with cancelled head" `Quick test_run_until_with_cancelled_head;
    Alcotest.test_case "schedule at absolute time" `Quick test_schedule_at;
    Alcotest.test_case "scheduling in the past raises" `Quick test_schedule_past_raises;
    Alcotest.test_case "single stepping" `Quick test_step;
    Alcotest.test_case "pending counts" `Quick test_pending_counts;
    Alcotest.test_case "20k random events stay ordered" `Quick test_many_events_stress;
  ]
