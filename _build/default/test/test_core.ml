(* Tests for the MP framework core: the IH and AH heuristics
   (Property 1 preservation, balancing behaviour) and the two-timescale
   fluid controller (near-optimality, SP restriction, loop-freedom). *)

module Graph = Mdr_topology.Graph
module Fluid = Mdr_fluid
module Heuristics = Mdr_core.Heuristics
module Controller = Mdr_core.Controller
module Gallager = Mdr_gallager.Gallager

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let pkt = 4096.0

(* --- IH --------------------------------------------------------------- *)

let test_ih_single_successor () =
  check "all to one" true (Heuristics.initial [ (7, 3.0) ] = [ (7, 1.0) ])

let test_ih_two_successors () =
  (* a = (1, 3): phi = (0.75, 0.25). *)
  match Heuristics.initial [ (1, 1.0); (2, 3.0) ] with
  | [ (1, p1); (2, p2) ] ->
    check_float "p1" 0.75 p1;
    check_float "p2" 0.25 p2
  | _ -> Alcotest.fail "unexpected shape"

let test_ih_equal_distances_equal_split () =
  match Heuristics.initial [ (1, 2.0); (2, 2.0); (3, 2.0) ] with
  | entries ->
    List.iter (fun (_, p) -> check_float "third" (1.0 /. 3.0) p) entries

let test_ih_is_distribution () =
  check "distribution" true
    (Heuristics.is_distribution (Heuristics.initial [ (1, 0.5); (2, 1.5); (3, 9.0) ]))

let test_ih_monotone () =
  (* Greater marginal distance gets a smaller share. *)
  match Heuristics.initial [ (1, 1.0); (2, 2.0); (3, 4.0) ] with
  | [ (_, p1); (_, p2); (_, p3) ] ->
    check "p1 > p2" true (p1 > p2);
    check "p2 > p3" true (p2 > p3)
  | _ -> Alcotest.fail "unexpected shape"

let test_ih_rejects_bad_input () =
  check "empty raises" true
    (try
       ignore (Heuristics.initial []);
       false
     with Invalid_argument _ -> true);
  check "non-positive raises" true
    (try
       ignore (Heuristics.initial [ (1, 0.0); (2, 1.0) ]);
       false
     with Invalid_argument _ -> true)

(* --- AH --------------------------------------------------------------- *)

let test_ah_moves_toward_best () =
  let current = [ (1, 0.5); (2, 0.5) ] in
  let through = function 1 -> 1.0 | 2 -> 3.0 | _ -> infinity in
  match Heuristics.adjust ~current ~through () with
  | entries ->
    let p1 = List.assoc 1 entries in
    check "best gains" true (p1 > 0.5);
    check "distribution" true (Heuristics.is_distribution entries)

let test_ah_fixpoint_when_balanced () =
  (* Equal marginal distances: nothing moves. *)
  let current = [ (1, 0.3); (2, 0.7) ] in
  let through = fun _ -> 2.0 in
  let result = Heuristics.adjust ~current ~through () in
  check_float "p1 unchanged" 0.3 (List.assoc 1 result);
  check_float "p2 unchanged" 0.7 (List.assoc 2 result)

let test_ah_drains_worst () =
  (* Full step empties the successor with the smallest phi/excess. *)
  let current = [ (1, 0.5); (2, 0.5) ] in
  let through = function 1 -> 1.0 | 2 -> 2.0 | _ -> infinity in
  let result = Heuristics.adjust ~current ~through () in
  check "worst drained" true (not (List.mem_assoc 2 result));
  check_float "all on best" 1.0 (List.assoc 1 result)

let test_ah_damping_partial () =
  let current = [ (1, 0.5); (2, 0.5) ] in
  let through = function 1 -> 1.0 | 2 -> 2.0 | _ -> infinity in
  let result = Heuristics.adjust ~damping:0.5 ~current ~through () in
  check_float "half moved" 0.75 (List.assoc 1 result);
  check_float "half left" 0.25 (List.assoc 2 result)

let test_ah_single_entry_unchanged () =
  let current = [ (4, 1.0) ] in
  check "unchanged" true (Heuristics.adjust ~current ~through:(fun _ -> 1.0) () == current)

let test_ah_repeated_application_converges () =
  (* Iterating AH with fixed through values concentrates on the best. *)
  let through = function 1 -> 1.0 | 2 -> 1.5 | 3 -> 2.0 | _ -> infinity in
  let rec iterate current n =
    if n = 0 then current
    else iterate (Heuristics.adjust ~current ~through ()) (n - 1)
  in
  let final = iterate [ (1, 0.2); (2, 0.3); (3, 0.5) ] 10 in
  check_float "all mass on best" 1.0 (List.assoc 1 final)

let prop_ah_preserves_distribution =
  QCheck.Test.make ~name:"AH preserves Property 1" ~count:300
    QCheck.(triple (float_range 0.01 0.99) (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (split, d1, d2) ->
      let current = [ (1, split); (2, 1.0 -. split) ] in
      let through = function 1 -> d1 | 2 -> d2 | _ -> infinity in
      Heuristics.is_distribution (Heuristics.adjust ~current ~through ()))

let prop_ih_preserves_distribution =
  QCheck.Test.make ~name:"IH yields a distribution" ~count:300
    QCheck.(list_of_size Gen.(1 -- 6) (float_range 0.1 100.0))
    (fun dists ->
      let entries = List.mapi (fun i d -> (i, d)) dists in
      Heuristics.is_distribution (Heuristics.initial entries))

(* --- Controller -------------------------------------------------------- *)

let net1_setup load =
  let g = Mdr_topology.Net1.topology () in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:10 ~packet_size:pkt
      ~rate_bits:(fun i -> load *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6)
      (Mdr_topology.Net1.flow_pairs g)
  in
  (g, model, traffic)

let test_mp_close_to_opt_per_flow () =
  (* Figure 10's claim in the fluid model: MP's per-flow delays within
     a small envelope of OPT. *)
  let g, model, traffic = net1_setup 1.0 in
  let opt = Gallager.solve model g traffic in
  let mp =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 40; ts_per_tl = 5; damping = 1.0 }
      model g traffic
  in
  let od = Fluid.Evaluate.per_flow_delays model opt.params opt.flows traffic in
  let md = Fluid.Evaluate.per_flow_delays model mp.params mp.flows traffic in
  List.iter2
    (fun (_, o) (_, m) -> check "within 8% envelope" true (m <= o *. 1.08))
    od md

let test_mp_loop_free_every_destination () =
  let g, model, traffic = net1_setup 1.2 in
  let mp = Controller.run model g traffic in
  check "acyclic" true
    (List.for_all
       (fun dst -> Fluid.Params.successor_graph_is_acyclic mp.params ~dst)
       (Graph.nodes g));
  check "valid params" true (Fluid.Params.validate mp.params = Ok ())

let test_sp_single_successor_everywhere () =
  let g, model, traffic = net1_setup 1.0 in
  let sp =
    Controller.run
      ~config:{ Controller.scheme = Sp; rounds = 10; ts_per_tl = 1; damping = 1.0 }
      model g traffic
  in
  let ok = ref true in
  List.iter
    (fun dst ->
      List.iter
        (fun node ->
          if node <> dst then
            let s = Fluid.Params.successors sp.params ~node ~dst in
            if List.length s > 1 then ok := false)
        (Graph.nodes g))
    (Fluid.Traffic.destinations traffic);
  check "single path" true !ok

let test_mp_beats_ih_only () =
  (* The load-balancing ablation: AH steps (ts_per_tl > 1) must beat
     IH-only routing at equal horizon. *)
  let g, model, traffic = net1_setup 1.5 in
  let with_ah =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 40; ts_per_tl = 5; damping = 0.5 }
      model g traffic
  in
  let ih_only =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 40; ts_per_tl = 1; damping = 0.5 }
      model g traffic
  in
  check "AH improves on IH alone" true (with_ah.avg_delay <= ih_only.avg_delay)

let test_mp_never_worse_than_sp_under_load () =
  let g, model, traffic = net1_setup 1.5 in
  let mp =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 40; ts_per_tl = 5; damping = 0.5 }
      model g traffic
  in
  let sp =
    Controller.run
      ~config:{ Controller.scheme = Sp; rounds = 40; ts_per_tl = 1; damping = 0.5 }
      model g traffic
  in
  check "mp <= sp at high load" true (mp.avg_delay <= sp.avg_delay *. 1.05)

let test_ecmp_even_split_on_symmetric_paths () =
  (* Two exactly equal paths: ECMP splits evenly and AH leaves the
     split alone. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:4 ~packet_size:pkt
      ~rate_bits:(fun _ -> 6.0e6)
      [ (0, 3) ]
  in
  let r =
    Controller.run
      ~config:{ Controller.scheme = Ecmp; rounds = 10; ts_per_tl = 4; damping = 1.0 }
      model g traffic
  in
  Alcotest.(check (float 1e-9)) "half via a" 0.5
    (Fluid.Params.fraction r.params ~node:0 ~dst:3 ~via:1);
  Alcotest.(check (float 1e-9)) "half via b" 0.5
    (Fluid.Params.fraction r.params ~node:0 ~dst:3 ~via:2)

let test_ecmp_single_path_when_costs_differ () =
  (* Unequal-cost paths: ECMP collapses to the single best. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y, ms) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:(ms /. 1000.0))
    [ ("s", "a", 1.0); ("a", "d", 1.0); ("s", "b", 2.0); ("b", "d", 2.0) ];
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:4 ~packet_size:pkt
      ~rate_bits:(fun _ -> 2.0e6)
      [ (0, 3) ]
  in
  let r =
    Controller.run
      ~config:{ Controller.scheme = Ecmp; rounds = 5; ts_per_tl = 1; damping = 1.0 }
      model g traffic
  in
  check "single successor" true
    (List.length (Fluid.Params.successors r.params ~node:0 ~dst:3) = 1)

let test_controller_history_length () =
  let g, model, traffic = net1_setup 0.5 in
  let r =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 7; ts_per_tl = 3; damping = 1.0 }
      model g traffic
  in
  Alcotest.(check int) "history = rounds * steps" 21 (List.length r.delay_history)

let test_controller_rejects_bad_config () =
  let g, model, traffic = net1_setup 0.5 in
  check "rounds < 1" true
    (try
       ignore
         (Controller.run
            ~config:{ Controller.scheme = Mp; rounds = 0; ts_per_tl = 1; damping = 1.0 }
            model g traffic);
       false
     with Invalid_argument _ -> true)

let test_successor_sets_exposed () =
  let g, _model, _ = net1_setup 1.0 in
  let cost (_ : Graph.link) = 1.0 in
  let succ = Controller.successor_sets g ~cost ~dst:0 in
  check "dst has none" true (succ 0 = []);
  (* Neighbors of 0 reach it directly; they must list it via themselves
     being closer — node 1 is 1 hop away, its successor set toward 0
     contains 0's neighbors closer than itself, including 0. *)
  check "direct neighbor" true (List.mem 0 (succ 1))

let test_ah_reaches_perfect_balance_closed_loop () =
  (* Closed loop on the diamond: AH adjusts, flows respond, marginals
     re-measured — the fixpoint must satisfy the perfect-load-balancing
     conditions (Eqs. 10-12) restricted to the successor set: both
     successor marginal distances equal. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y, cap) -> Graph.add_duplex g x y ~capacity:cap ~prop_delay:0.001)
    [ ("s", "a", 10.0e6); ("a", "d", 10.0e6); ("s", "b", 5.0e6); ("b", "d", 5.0e6) ];
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:4 ~packet_size:pkt
      ~rate_bits:(fun _ -> 9.0e6)
      [ (0, 3) ]
  in
  let params = Fluid.Params.create g in
  Fluid.Params.set_fractions params ~node:0 ~dst:3 [ (1, 0.5); (2, 0.5) ];
  Fluid.Params.set_single params ~node:1 ~dst:3 ~via:3;
  Fluid.Params.set_single params ~node:2 ~dst:3 ~via:3;
  let marginal_through flows k =
    (* marginal distance via k: link (0,k) marginal + link (k,3) marginal *)
    Fluid.Evaluate.link_cost model flows ~src:0 ~dst:k
    +. Fluid.Evaluate.link_cost model flows ~src:k ~dst:3
  in
  (* With instantaneous flow response AH settles into a small limit
     cycle around the balanced point (real queues smooth this; the
     packet-level tests cover that), so assert the *time-averaged*
     state over the tail of the run. *)
  let phi_sum = ref 0.0 and gap_sum = ref 0.0 and samples = ref 0 in
  for i = 1 to 300 do
    let flows = Fluid.Flows.compute params traffic in
    let current = Fluid.Params.fractions params ~node:0 ~dst:3 in
    if List.length current > 1 then begin
      let adjusted =
        Heuristics.adjust ~damping:0.05 ~current ~through:(marginal_through flows) ()
      in
      Fluid.Params.set_fractions params ~node:0 ~dst:3 adjusted
    end;
    if i > 150 then begin
      let flows = Fluid.Flows.compute params traffic in
      let m1 = marginal_through flows 1 and m2 = marginal_through flows 2 in
      phi_sum := !phi_sum +. Fluid.Params.fraction params ~node:0 ~dst:3 ~via:1;
      gap_sum := !gap_sum +. (Float.abs (m1 -. m2) /. Float.max m1 m2);
      incr samples
    end
  done;
  let mean_phi = !phi_sum /. float_of_int !samples in
  let mean_gap = !gap_sum /. float_of_int !samples in
  check "marginals near-equal on average (Eq. 11)" true (mean_gap < 0.15);
  (* Perfect balance puts ~72% on the fat path (solve C1/(C1-f1)^2 =
     C2/(C2-f2)^2 with f1 + f2 = 2197 pkt/s). *)
  check "split near the balanced point" true (mean_phi > 0.65 && mean_phi < 0.80)

let suite =
  [
    Alcotest.test_case "ih: single successor" `Quick test_ih_single_successor;
    Alcotest.test_case "ih: two successors (Fig. 6)" `Quick test_ih_two_successors;
    Alcotest.test_case "ih: equal distances" `Quick test_ih_equal_distances_equal_split;
    Alcotest.test_case "ih: Property 1" `Quick test_ih_is_distribution;
    Alcotest.test_case "ih: monotone in distance" `Quick test_ih_monotone;
    Alcotest.test_case "ih: input validation" `Quick test_ih_rejects_bad_input;
    Alcotest.test_case "ah: moves toward best (Fig. 7)" `Quick test_ah_moves_toward_best;
    Alcotest.test_case "ah: fixpoint when balanced" `Quick test_ah_fixpoint_when_balanced;
    Alcotest.test_case "ah: drains worst at full step" `Quick test_ah_drains_worst;
    Alcotest.test_case "ah: damping" `Quick test_ah_damping_partial;
    Alcotest.test_case "ah: single entry" `Quick test_ah_single_entry_unchanged;
    Alcotest.test_case "ah: repeated application converges" `Quick test_ah_repeated_application_converges;
    Alcotest.test_case "controller: MP within envelope of OPT" `Slow test_mp_close_to_opt_per_flow;
    Alcotest.test_case "controller: loop-free DAGs" `Quick test_mp_loop_free_every_destination;
    Alcotest.test_case "controller: SP is single-path" `Quick test_sp_single_successor_everywhere;
    Alcotest.test_case "controller: AH beats IH-only" `Slow test_mp_beats_ih_only;
    Alcotest.test_case "controller: MP <= SP under load" `Slow test_mp_never_worse_than_sp_under_load;
    Alcotest.test_case "controller: ECMP even split" `Quick test_ecmp_even_split_on_symmetric_paths;
    Alcotest.test_case "controller: ECMP collapses on unequal costs" `Quick test_ecmp_single_path_when_costs_differ;
    Alcotest.test_case "controller: history length" `Quick test_controller_history_length;
    Alcotest.test_case "controller: config validation" `Quick test_controller_rejects_bad_config;
    Alcotest.test_case "controller: successor sets" `Quick test_successor_sets_exposed;
    Alcotest.test_case "ah: closed loop equalizes marginals" `Quick test_ah_reaches_perfect_balance_closed_loop;
    QCheck_alcotest.to_alcotest prop_ah_preserves_distribution;
    QCheck_alcotest.to_alcotest prop_ih_preserves_distribution;
  ]
