(* Tests for the topology/flow file format. *)

module Graph = Mdr_topology.Graph
module Parser = Mdr_topology.Parser
module Metrics = Mdr_topology.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let sample =
  {|
# a triangle with asymmetric a <-> c attributes
node a
node b
node c
link a b 10 1.5
link b c 5 2.0   # slower edge
oneway a c 10 1.0
oneway c a 2 4.0
|}

let test_parse_basic () =
  let g = Parser.topology_of_string sample in
  check_int "nodes" 3 (Graph.node_count g);
  check_int "links" 6 (Graph.link_count g);
  let l = Graph.link_exn g ~src:0 ~dst:1 in
  check_float "capacity" 10.0e6 l.capacity;
  check_float "delay" 0.0015 l.prop_delay;
  (* The two oneway directions keep their distinct attributes. *)
  check_float "a->c" 10.0e6 (Graph.link_exn g ~src:0 ~dst:2).capacity;
  check_float "c->a" 2.0e6 (Graph.link_exn g ~src:2 ~dst:0).capacity

let test_parse_rejects_duplicate_oneway () =
  check "duplicate link rejected" true
    (try
       ignore (Parser.topology_of_string "node a\nnode b\nlink a b 1 1\noneway a b 1 1\n");
       false
     with Parser.Parse_error _ -> true)

let test_parse_errors_carry_line () =
  (try
     ignore (Parser.topology_of_string "node a\nnode a\n");
     Alcotest.fail "expected failure"
   with Parser.Parse_error { line; _ } -> check_int "line" 2 line);
  (try
     ignore (Parser.topology_of_string "node a\nnode b\nlink a q 1 1\n");
     Alcotest.fail "expected failure"
   with Parser.Parse_error { line; _ } -> check_int "line" 3 line);
  try
    ignore (Parser.topology_of_string "node a\nnode b\nlink a b ten 1\n");
    Alcotest.fail "expected failure"
  with Parser.Parse_error { line; _ } -> check_int "line" 3 line

let test_parse_unknown_directive () =
  check "unknown directive" true
    (try
       ignore (Parser.topology_of_string "edge a b\n");
       false
     with Parser.Parse_error _ -> true)

let test_roundtrip () =
  let g = Mdr_topology.Net1.topology () in
  let text = Parser.to_string g in
  let g2 = Parser.topology_of_string text in
  check_int "nodes" (Graph.node_count g) (Graph.node_count g2);
  check_int "links" (Graph.link_count g) (Graph.link_count g2);
  List.iter
    (fun (l : Graph.link) ->
      match Graph.link g2 ~src:l.src ~dst:l.dst with
      | None -> Alcotest.fail "missing link after roundtrip"
      | Some l2 ->
        check_float "capacity" l.capacity l2.capacity;
        check_float "delay" l.prop_delay l2.prop_delay)
    (Graph.links g)

let test_roundtrip_cairn () =
  let g = Mdr_topology.Cairn.topology () in
  let g2 = Parser.topology_of_string (Parser.to_string g) in
  check_int "links" (Graph.link_count g) (Graph.link_count g2);
  check "still connected" true (Metrics.is_strongly_connected g2);
  Alcotest.(check string) "same name" "mci-r" (Graph.name g2 (Graph.node_of_name g2 "mci-r"))

let test_flows () =
  let g = Parser.topology_of_string "node a\nnode b\nnode c\nlink a b 10 1\nlink b c 10 1\n" in
  let flows = Parser.flows_of_string g "flow a c 2.5\nflow c a 1.0 # return\n" in
  check_int "two flows" 2 (List.length flows);
  match flows with
  | [ (s1, d1, r1); (s2, d2, r2) ] ->
    check_int "src" 0 s1;
    check_int "dst" 2 d1;
    check_float "rate" 2.5e6 r1;
    check_int "src2" 2 s2;
    check_int "dst2" 0 d2;
    check_float "rate2" 1.0e6 r2
  | _ -> Alcotest.fail "shape"

let test_flows_validation () =
  let g = Parser.topology_of_string "node a\nnode b\nlink a b 10 1\n" in
  check "self flow rejected" true
    (try
       ignore (Parser.flows_of_string g "flow a a 1\n");
       false
     with Parser.Parse_error _ -> true);
  check "zero rate rejected" true
    (try
       ignore (Parser.flows_of_string g "flow a b 0\n");
       false
     with Parser.Parse_error _ -> true)

let test_dot_output () =
  let g = Mdr_topology.Net1.topology () in
  let dot = Parser.to_dot g in
  check "graph header" true (String.length dot > 20 && String.sub dot 0 5 = "graph");
  (* 17 duplex pairs -> 17 edges. *)
  let edges =
    String.split_on_char '\n' dot
    |> List.filter (fun l -> String.length l > 3 && l.[2] = '"')
  in
  check_int "17 duplex edges" 17 (List.length edges)

let test_files_roundtrip () =
  let g = Mdr_topology.Net1.topology () in
  let path = Filename.temp_file "mdr_topo" ".txt" in
  let oc = open_out path in
  output_string oc (Parser.to_string g);
  close_out oc;
  let g2 = Parser.topology_of_file path in
  Sys.remove path;
  check_int "links" (Graph.link_count g) (Graph.link_count g2)

let suite =
  [
    Alcotest.test_case "parse: basic topology" `Quick test_parse_basic;
    Alcotest.test_case "parse: duplicate link rejected" `Quick test_parse_rejects_duplicate_oneway;
    Alcotest.test_case "parse: errors carry line numbers" `Quick test_parse_errors_carry_line;
    Alcotest.test_case "parse: unknown directive" `Quick test_parse_unknown_directive;
    Alcotest.test_case "roundtrip: NET1" `Quick test_roundtrip;
    Alcotest.test_case "roundtrip: CAIRN" `Quick test_roundtrip_cairn;
    Alcotest.test_case "flows: parsing" `Quick test_flows;
    Alcotest.test_case "flows: validation" `Quick test_flows_validation;
    Alcotest.test_case "dot export" `Quick test_dot_output;
    Alcotest.test_case "file roundtrip" `Quick test_files_roundtrip;
  ]
