(* Tests for Mdr_util: heap ordering, RNG determinism and statistics,
   online statistics, table rendering. *)

module Heap = Mdr_util.Heap
module Rng = Mdr_util.Rng
module Stats = Mdr_util.Stats
module Tab = Mdr_util.Tab

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check "empty" true (Heap.is_empty h);
  check_int "len" 0 (Heap.length h);
  check "peek" true (Heap.peek h = None);
  check "pop" true (Heap.pop h = None)

let test_heap_orders () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2; 7 ];
  check_int "len" 7 (Heap.length h);
  check "sorted" true (Heap.to_sorted_list h = [ 1; 2; 3; 5; 7; 8; 9 ]);
  check_int "pop min" 1 (Heap.pop_exn h);
  check_int "pop next" 2 (Heap.pop_exn h);
  Heap.add h 0;
  check_int "new min" 0 (Heap.pop_exn h)

let test_heap_fifo_ties () =
  (* Equal keys dequeue in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.add h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  check "z first" true (Heap.pop h = Some (0, "z"));
  check "a" true (Heap.pop h = Some (1, "a"));
  check "b" true (Heap.pop h = Some (1, "b"));
  check "c" true (Heap.pop h = Some (1, "c"))

let test_heap_pop_exn_raises () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "empty pop_exn"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h : int))

let test_heap_large () =
  let h = Heap.create ~cmp:compare in
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    Heap.add h (Rng.int rng ~bound:1_000_000)
  done;
  let sorted = Heap.to_sorted_list h in
  check "sorted large" true (List.sort compare sorted = sorted);
  check_int "length preserved" 10_000 (List.length sorted)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check "streams differ" true (!same = 0)

let test_rng_float_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    check "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_range () =
  let rng = Rng.create ~seed:4 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let v = Rng.int rng ~bound:10 in
    check "in range" true (v >= 0 && v < 10);
    seen.(v) <- true
  done;
  check "all values hit" true (Array.for_all Fun.id seen)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:5 in
  let w = Stats.Welford.create () in
  for _ = 1 to 100_000 do
    Stats.Welford.add w (Rng.exponential rng ~rate:4.0)
  done;
  let mean = Stats.Welford.mean w in
  check "exp mean ~ 1/rate" true (Float.abs (mean -. 0.25) < 0.01)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  let a = Rng.bits64 parent and b = Rng.bits64 child in
  check "split streams differ" true (a <> b)

let test_rng_uniform_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-2.0) ~hi:3.0 in
    check "uniform range" true (x >= -2.0 && x < 3.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:13 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "permutation" true (sorted = Array.init 50 Fun.id);
  check "actually shuffled" true (arr <> Array.init 50 Fun.id)

let test_rng_invalid_args () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng ~bound:0));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Rng.exponential: rate <= 0") (fun () ->
      ignore (Rng.exponential rng ~rate:0.0))

let test_welford_basic () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_float "mean" 3.0 (Stats.Welford.mean w);
  check_float "variance" 2.5 (Stats.Welford.variance w);
  check_float "min" 1.0 (Stats.Welford.min w);
  check_float "max" 5.0 (Stats.Welford.max w);
  check_int "count" 5 (Stats.Welford.count w)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  check_float "mean 0" 0.0 (Stats.Welford.mean w);
  check_float "var 0" 0.0 (Stats.Welford.variance w)

let test_welford_reset () =
  let w = Stats.Welford.create () in
  Stats.Welford.add w 10.0;
  Stats.Welford.reset w;
  check_int "count reset" 0 (Stats.Welford.count w);
  Stats.Welford.add w 2.0;
  check_float "mean after reset" 2.0 (Stats.Welford.mean w)

let test_timed_average () =
  let t = Stats.Timed.create () in
  Stats.Timed.update t ~now:0.0 ~value:2.0;
  Stats.Timed.update t ~now:5.0 ~value:4.0;
  (* 2.0 for 5 s then 4.0 for 5 s -> average 3.0 at t = 10. *)
  check_float "time-weighted avg" 3.0 (Stats.Timed.average t ~now:10.0)

let test_timed_reset () =
  let t = Stats.Timed.create () in
  Stats.Timed.update t ~now:0.0 ~value:10.0;
  Stats.Timed.reset t ~now:4.0;
  Stats.Timed.update t ~now:4.0 ~value:6.0;
  check_float "after reset" 6.0 (Stats.Timed.average t ~now:8.0)

let test_timed_backwards_raises () =
  let t = Stats.Timed.create () in
  Stats.Timed.update t ~now:5.0 ~value:1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Stats.Timed.update: time went backwards") (fun () ->
      Stats.Timed.update t ~now:4.0 ~value:1.0)

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Stats.percentile xs ~p:50.0);
  check_float "p95" 95.0 (Stats.percentile xs ~p:95.0);
  check_float "p100" 100.0 (Stats.percentile xs ~p:100.0)

let test_mean_of_list () =
  check_float "empty" 0.0 (Stats.mean_of_list []);
  check_float "values" 2.0 (Stats.mean_of_list [ 1.0; 2.0; 3.0 ])

let test_tab_render () =
  let s = Tab.render ~header:[ "name"; "value" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  check "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check_int "line count" 4 (List.length lines);
  (* all lines equal width *)
  match lines with
  | first :: rest ->
    check "aligned" true
      (List.for_all (fun l -> String.length l = String.length first) rest)
  | [] -> Alcotest.fail "no lines"

let test_tab_float_cell () =
  Alcotest.(check string) "fixed" "1.500" (Tab.float_cell 1.5);
  Alcotest.(check string) "inf" "inf" (Tab.float_cell infinity);
  Alcotest.(check string) "decimals" "2.7" (Tab.float_cell ~decimals:1 2.71)

let test_tab_series () =
  let s =
    Tab.series ~title:"fig" ~x_label:"flow" ~columns:[ "OPT"; "MP" ]
      [ ("0", [ 1.0; 2.0 ]); ("1", [ 3.0; 4.0 ]) ]
  in
  check "title present" true (String.length s > 10)

(* Property tests. *)
let prop_heap_sorted =
  QCheck.Test.make ~name:"heap returns sorted output" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_percentile_member =
  QCheck.Test.make ~name:"percentile returns a member" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) -> List.mem (Stats.percentile xs ~p) xs)

let suite =
  [
    Alcotest.test_case "heap: empty" `Quick test_heap_empty;
    Alcotest.test_case "heap: orders elements" `Quick test_heap_orders;
    Alcotest.test_case "heap: FIFO on ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap: pop_exn raises" `Quick test_heap_pop_exn_raises;
    Alcotest.test_case "heap: 10k random elements" `Quick test_heap_large;
    Alcotest.test_case "heap: clear" `Quick test_heap_clear;
    Alcotest.test_case "rng: deterministic per seed" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng: float in [0,1)" `Quick test_rng_float_range;
    Alcotest.test_case "rng: int in range" `Quick test_rng_int_range;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: uniform bounds" `Quick test_rng_uniform_bounds;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng: invalid arguments raise" `Quick test_rng_invalid_args;
    Alcotest.test_case "welford: known values" `Quick test_welford_basic;
    Alcotest.test_case "welford: empty" `Quick test_welford_empty;
    Alcotest.test_case "welford: reset" `Quick test_welford_reset;
    Alcotest.test_case "timed: average" `Quick test_timed_average;
    Alcotest.test_case "timed: reset" `Quick test_timed_reset;
    Alcotest.test_case "timed: rejects time reversal" `Quick test_timed_backwards_raises;
    Alcotest.test_case "percentile: nearest rank" `Quick test_percentile;
    Alcotest.test_case "mean_of_list" `Quick test_mean_of_list;
    Alcotest.test_case "tab: render aligns" `Quick test_tab_render;
    Alcotest.test_case "tab: float cells" `Quick test_tab_float_cell;
    Alcotest.test_case "tab: series" `Quick test_tab_series;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_percentile_member;
  ]
