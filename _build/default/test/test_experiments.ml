(* Tests for the experiments layer: workload construction, CSV
   rendering, and the cheap experiments end to end (the expensive
   figure regenerations run in bench/main.exe; their shape checks are
   also asserted by the integration suite at reduced scale). *)

module Workload = Mdr_experiments.Workload
module Experiments = Mdr_experiments.Experiments

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_workload_rates () =
  let w = Workload.cairn ~load:1.0 in
  check_float "flow 0" 2.0e6 (Workload.rate_bits w 0);
  check_float "flow 10" 3.0e6 (Workload.rate_bits w 10);
  let w2 = Workload.cairn ~load:1.5 in
  check_float "scaled" 3.0e6 (Workload.rate_bits w2 0)

let test_workload_traffic_consistent () =
  let w = Workload.net1 ~load:1.0 in
  let traffic = Workload.traffic w in
  (* Total packets/s equal total bits/s over the packet size. *)
  let expected_bits =
    List.fold_left ( +. ) 0.0
      (List.mapi (fun i _ -> Workload.rate_bits w i) w.Workload.pairs)
  in
  check_float "total rate" (expected_bits /. Workload.packet_size)
    (Mdr_fluid.Traffic.total_rate traffic)

let test_workload_sim_flows_match () =
  let w = Workload.cairn ~load:1.0 in
  let flows = Workload.sim_flows w in
  check "same count" true (List.length flows = List.length w.Workload.pairs);
  List.iteri
    (fun i (f : Mdr_netsim.Sim.flow_spec) ->
      let src, dst = List.nth w.Workload.pairs i in
      check "src" true (f.src = src);
      check "dst" true (f.dst = dst);
      check_float "rate" (Workload.rate_bits w i) f.rate_bits)
    flows

let test_flow_labels () =
  let w = Workload.cairn ~load:1.0 in
  Alcotest.(check string) "label" "0 (lbl->mci-r)" (Workload.flow_label w 0)

let test_csv_rendering () =
  let series =
    {
      Experiments.x_label = "flow";
      columns = [ "OPT"; "MP" ];
      rows = [ ("0", [ 1.25; 2.5 ]); ("a,b", [ 3.0; 4.0 ]) ];
    }
  in
  let csv = Experiments.to_csv series in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check string) "header" "flow,OPT,MP" (List.nth lines 0);
  Alcotest.(check string) "row" "0,1.25,2.5" (List.nth lines 1);
  check "comma field quoted" true
    (String.length (List.nth lines 2) > 0
    && (List.nth lines 2).[0] = '"')

let test_fig8_outcome () =
  let o = Experiments.fig8_topologies () in
  check "all checks pass" true (List.for_all snd o.Experiments.checks);
  check "mentions both topologies" true
    (let r = o.Experiments.rendered in
     let contains needle =
       let n = String.length needle and h = String.length r in
       let rec scan i = i + n <= h && (String.sub r i n = needle || scan (i + 1)) in
       scan 0
     in
     contains "CAIRN" && contains "NET1")

let test_abl_eta_outcome () =
  let o = Experiments.abl_eta_step_size () in
  check "checks pass" true (List.for_all snd o.Experiments.checks);
  check "has series" true (o.Experiments.series <> None)

let test_abl_lb_outcome () =
  let o = Experiments.abl_load_balancing () in
  check "checks pass" true (List.for_all snd o.Experiments.checks)

let test_scale_outcome () =
  let o = Experiments.scale_protocol () in
  check "checks pass" true (List.for_all snd o.Experiments.checks);
  match o.Experiments.series with
  | Some s -> check "four sizes" true (List.length s.Experiments.rows = 4)
  | None -> Alcotest.fail "expected series"

let test_all_listing () =
  let all = Experiments.all () in
  check "every figure present" true
    (List.for_all
       (fun id -> List.mem_assoc id all)
       [ "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "dyn";
         "abl-eta"; "abl-2nd"; "abl-lb"; "abl-est"; "abl-ecmp"; "failover";
         "gen"; "scale" ])

let suite =
  [
    Alcotest.test_case "workload: flow rates" `Quick test_workload_rates;
    Alcotest.test_case "workload: traffic totals" `Quick test_workload_traffic_consistent;
    Alcotest.test_case "workload: sim flows" `Quick test_workload_sim_flows_match;
    Alcotest.test_case "workload: labels" `Quick test_flow_labels;
    Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
    Alcotest.test_case "fig8 end to end" `Quick test_fig8_outcome;
    Alcotest.test_case "abl-eta end to end" `Quick test_abl_eta_outcome;
    Alcotest.test_case "abl-lb end to end" `Quick test_abl_lb_outcome;
    Alcotest.test_case "scale end to end" `Quick test_scale_outcome;
    Alcotest.test_case "experiment registry complete" `Quick test_all_listing;
  ]
