examples/distance_vector.mli:
