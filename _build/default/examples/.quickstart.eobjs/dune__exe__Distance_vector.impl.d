examples/distance_vector.ml: Array Float List Mdr_routing Mdr_topology Mdr_util Printf String
