examples/quickstart.mli:
