examples/cairn_loadbalance.ml: List Mdr_experiments Mdr_netsim Mdr_topology Printf
