examples/dynamic_burst.mli:
