examples/cairn_loadbalance.mli:
