examples/quickstart.ml: Float List Mdr_core Mdr_fluid Mdr_gallager Mdr_topology Printf
