examples/link_failure.ml: List Mdr_eventsim Mdr_routing Mdr_topology Printf String
