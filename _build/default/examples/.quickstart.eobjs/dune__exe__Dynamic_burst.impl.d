examples/dynamic_burst.ml: List Mdr_experiments Mdr_netsim Printf
