(* CAIRN load balancing: run the full packet-level system — MPDA
   routers exchanging LSUs, online marginal-delay estimation, IH/AH
   traffic distribution — over the CAIRN backbone with the paper's
   eleven flows, and contrast MP with single-path forwarding.

   Run with: dune exec examples/cairn_loadbalance.exe *)

module Sim = Mdr_netsim.Sim
module Workload = Mdr_experiments.Workload

let () =
  let w = Workload.cairn ~load:1.15 in
  let flows = Workload.sim_flows w in
  let cfg =
    { Sim.default_config with sim_time = 60.0; warmup = 15.0; t_l = 10.0; t_s = 2.0 }
  in
  Printf.printf "Simulating %d flows over CAIRN for %.0f simulated seconds...\n\n"
    (List.length flows) cfg.sim_time;

  let mp = Sim.run ~config:cfg w.Workload.topo flows in
  let sp = Sim.run ~config:{ cfg with scheme = Sim.Sp } w.Workload.topo flows in

  Printf.printf "%-22s %12s %9s %12s %9s %8s\n" "flow" "MP (ms)" "MP hops"
    "SP (ms)" "SP hops" "SP/MP";
  List.iteri
    (fun i (m : Sim.flow_stat) ->
      let s = List.nth sp.flows i in
      Printf.printf "%-22s %12.3f %9.2f %12.3f %9.2f %8.2f\n"
        (Workload.flow_label w i)
        (1000.0 *. m.mean_delay) m.mean_hops
        (1000.0 *. s.mean_delay) s.mean_hops
        (s.mean_delay /. m.mean_delay))
    mp.flows;

  Printf.printf "\nnetwork averages:    MP %.3f ms    SP %.3f ms\n"
    (1000.0 *. mp.avg_delay) (1000.0 *. sp.avg_delay);
  Printf.printf "packets delivered:   MP %d    SP %d (drops: %d / %d)\n"
    mp.total_delivered sp.total_delivered mp.total_dropped sp.total_dropped;
  Printf.printf "control messages:    MP %d LSUs\n" mp.control_messages;
  Printf.printf "loop-freedom checks: %d violations (must be 0)\n"
    mp.loop_free_violations;

  let hottest r =
    List.sort
      (fun (a : Sim.link_stat) b -> compare b.utilization a.utilization)
      r.Sim.links
    |> List.filteri (fun i _ -> i < 3)
  in
  let name = Mdr_topology.Graph.name w.Workload.topo in
  Printf.printf "\nhottest links:        MP                        SP\n";
  List.iter2
    (fun (m : Sim.link_stat) (s : Sim.link_stat) ->
      Printf.printf "  %-18s %4.0f%%      %-18s %4.0f%%\n"
        (name m.src ^ "->" ^ name m.dst)
        (100.0 *. m.utilization)
        (name s.src ^ "->" ^ name s.dst)
        (100.0 *. s.utilization))
    (hottest mp) (hottest sp)
