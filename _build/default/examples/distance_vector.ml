(* Distance-vector LFI: the same loop-free invariant framework
   instantiated without topology tables. Both MPDA (link-state) and
   the DV router converge to identical routes on CAIRN and stay
   loop-free through a cost-change storm — the paper's Section 3 claim
   that LFI is "applicable to any type of routing algorithm".

   Run with: dune exec examples/distance_vector.exe *)

module Graph = Mdr_topology.Graph
module Network = Mdr_routing.Network
module Router = Mdr_routing.Router
module Dv_router = Mdr_routing.Dv_router
module DvNet = Mdr_routing.Harness.Dv_network
module Rng = Mdr_util.Rng

let cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0)

let () =
  let topo = Mdr_topology.Cairn.topology () in

  let ls_violations = ref 0 and dv_violations = ref 0 in
  let ls =
    Network.create
      ~observer:(fun net -> if not (Network.check_loop_free net) then incr ls_violations)
      ~topo ~cost ()
  in
  let dv =
    DvNet.create
      ~observer:(fun net -> if not (DvNet.check_loop_free net) then incr dv_violations)
      ~topo ~cost ()
  in
  Network.run ls;
  DvNet.run dv;
  Printf.printf "cold start:  MPDA %4d messages | DV %4d messages\n"
    (Network.total_messages ls) (DvNet.total_messages dv);

  (* Same storm of 40 random cost changes for both protocols. *)
  let schedule_storm schedule =
    let rng = Rng.create ~seed:99 in
    let links = Array.of_list (Graph.links topo) in
    for _ = 1 to 40 do
      let l = links.(Rng.int rng ~bound:(Array.length links)) in
      schedule
        ~at:(Rng.uniform rng ~lo:1.0 ~hi:1.5)
        ~src:l.Graph.src ~dst:l.Graph.dst
        ~cost:(Rng.uniform rng ~lo:0.5 ~hi:20.0)
    done
  in
  schedule_storm (fun ~at ~src ~dst ~cost -> Network.schedule_link_cost ls ~at ~src ~dst ~cost);
  schedule_storm (fun ~at ~src ~dst ~cost -> DvNet.schedule_link_cost dv ~at ~src ~dst ~cost);
  Network.run ls;
  DvNet.run dv;

  (* Routes must agree exactly. *)
  let n = Graph.node_count topo in
  let mismatches = ref 0 in
  for node = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let d1 = Router.distance (Network.router ls node) ~dst in
      let d2 = Dv_router.distance (DvNet.router dv node) ~dst in
      if Float.abs (d1 -. d2) > 1e-9 then incr mismatches;
      let s1 = List.sort compare (Router.successors (Network.router ls node) ~dst) in
      let s2 = List.sort compare (Dv_router.successors (DvNet.router dv node) ~dst) in
      if s1 <> s2 then incr mismatches
    done
  done;
  Printf.printf "after storm: MPDA %4d messages | DV %4d messages\n"
    (Network.total_messages ls) (DvNet.total_messages dv);
  Printf.printf "distance/successor mismatches between the two protocols: %d\n"
    !mismatches;
  Printf.printf "instantaneous loop-freedom violations: MPDA %d, DV %d\n"
    !ls_violations !dv_violations;

  let sri = Graph.node_of_name topo "sri" and mci = Graph.node_of_name topo "mci-r" in
  Printf.printf "\nsri's successors toward mci-r (both protocols): {%s}\n"
    (String.concat ", "
       (List.map (Graph.name topo)
          (Dv_router.successors (DvNet.router dv sri) ~dst:mci)));
  if !mismatches > 0 || !ls_violations > 0 || !dv_violations > 0 then exit 1
