(* Quickstart: build a small network, route one overloaded flow three
   ways — single shortest path (SP), the paper's near-optimal multipath
   scheme (MP), and Gallager's optimal lower bound (OPT) — and compare
   the resulting average delays in the fluid model.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Mdr_topology.Graph
module Fluid = Mdr_fluid
module Controller = Mdr_core.Controller
module Gallager = Mdr_gallager.Gallager

let packet_size = 4096.0 (* bits *)

let () =
  (* A diamond: two 2-hop paths from s to d, 10 Mb/s links. *)
  let topo = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex topo x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];

  (* One 12 Mb/s flow: more than a single 10 Mb/s path can carry. *)
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:(Graph.node_count topo) ~packet_size
      ~rate_bits:(fun _ -> 12.0e6)
      [ (Graph.node_of_name topo "s", Graph.node_of_name topo "d") ]
  in
  let model = Fluid.Evaluate.model topo ~packet_size in

  let show label (avg : float) =
    if Float.is_finite avg then Printf.printf "  %-28s %10.3f ms\n" label (1000.0 *. avg)
    else Printf.printf "  %-28s %10s\n" label "unbounded"
  in

  print_endline "Routing a 12 Mb/s flow across two 10 Mb/s paths:";

  (* 1. Single-path routing: the whole flow on one path — overload. *)
  let sp =
    Controller.run
      ~config:{ Controller.scheme = Sp; rounds = 20; ts_per_tl = 1; damping = 1.0 }
      model topo traffic
  in
  show "single shortest path (SP)" sp.avg_delay;

  (* 2. The paper's scheme: loop-free multipath + IH/AH balancing. *)
  let mp =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 20; ts_per_tl = 5; damping = 1.0 }
      model topo traffic
  in
  show "near-optimal multipath (MP)" mp.avg_delay;
  let split via =
    Fluid.Params.fraction mp.params
      ~node:(Graph.node_of_name topo "s")
      ~dst:(Graph.node_of_name topo "d")
      ~via:(Graph.node_of_name topo via)
  in
  Printf.printf "    MP split at s: %.1f%% via a, %.1f%% via b\n"
    (100.0 *. split "a") (100.0 *. split "b");

  (* 3. Gallager's minimum-delay routing: the lower bound. *)
  let opt = Gallager.solve model topo traffic in
  show "minimum-delay routing (OPT)" opt.avg_delay;

  Printf.printf "\nMP is within %.1f%% of the optimum; SP is %.0fx slower.\n"
    (100.0 *. ((mp.avg_delay /. opt.avg_delay) -. 1.0))
    (sp.avg_delay /. mp.avg_delay)
