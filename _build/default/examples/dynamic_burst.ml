(* Dynamic traffic: on-off (bursty) sources over CAIRN. The short-term
   heuristic AH re-balances traffic between routing-table updates, so
   MP absorbs bursts that single-path routing cannot.

   Run with: dune exec examples/dynamic_burst.exe *)

module Sim = Mdr_netsim.Sim
module Workload = Mdr_experiments.Workload

let () =
  let w = Workload.cairn ~load:1.1 in
  let cfg = { Sim.default_config with sim_time = 80.0; warmup = 20.0 } in
  Printf.printf
    "Bursty on-off sources on CAIRN (load %.2f): average delay (ms)\n\n" 1.1;
  Printf.printf "%-14s %14s %14s %12s\n" "burst period" "MP (T_s = 2s)"
    "MP (T_s = 10s)" "SP";
  List.iter
    (fun period ->
      let flows = Workload.sim_flows ~burst:(Some (period, period)) w in
      let avg scheme t_s =
        (Sim.run ~config:{ cfg with scheme; t_s } w.Workload.topo flows).Sim.avg_delay
      in
      Printf.printf "%-14s %14.3f %14.3f %12.3f\n"
        (Printf.sprintf "%.1fs on/off" period)
        (1000.0 *. avg Sim.Mp 2.0)
        (1000.0 *. avg Sim.Mp 10.0)
        (1000.0 *. avg Sim.Sp 2.0))
    [ 0.5; 2.0; 8.0 ];
  print_newline ();
  print_endline
    "Shorter T_s lets AH chase the bursts; SP has no load balancing to offer."
