(** The MP routing scheme in the fluid model: the two-timescale
    controller of Sections 3-4.

    Each long-term round (one T_l period) measures the marginal link
    costs at the current operating point, recomputes distances and
    loop-free successor sets (what a converged MPDA yields — Theorem 4:
    S_j^i = {k | D_j^k < D_j^i}), and re-seeds the routing fractions
    with IH; the following [ts_per_tl] short-term steps (T_s periods)
    re-measure costs and locally adjust fractions with AH while the
    successor sets stay fixed, exactly as the paper prescribes.

    [Sp] restricts the successor set to the single best neighbor —
    the paper's stand-in for SPF routing — and is what Figures 11-14
    compare against. [Ecmp] allows multiple successors only when their
    paths have *equal* cost and splits evenly over them, which is
    exactly the multipath OSPF permits (paper Section 1); comparing it
    against [Mp] isolates the value of unequal-cost multipath. *)

type scheme = Mp | Sp | Ecmp

type config = {
  scheme : scheme;
  rounds : int;  (** long-term rounds (T_l periods) to simulate *)
  ts_per_tl : int;  (** AH steps per round; 1 means "T_s = T_l" *)
  damping : float;  (** AH damping, (0, 1] *)
}

val default_config : config
(** MP, 30 rounds, 5 short-term steps per round, full AH step. *)

type result = {
  params : Mdr_fluid.Params.t;
  flows : Mdr_fluid.Flows.t;
  total_cost : float;
  avg_delay : float;  (** network average, seconds/packet *)
  delay_history : float list;
      (** average delay after every short-term step, oldest first;
          shows convergence and (for SP) oscillation *)
}

val run :
  ?config:config ->
  Mdr_fluid.Evaluate.model ->
  Mdr_topology.Graph.t ->
  Mdr_fluid.Traffic.t ->
  result

val successor_sets :
  Mdr_topology.Graph.t ->
  cost:(Mdr_topology.Graph.link -> float) ->
  dst:int ->
  (int -> int list)
(** The converged multipath successor sets under the given link costs:
    node [i] forwards to every neighbor strictly closer to [dst]
    (Eq. 14). Exposed for reuse by the packet simulator and tests. *)
