lib/core/heuristics.ml: Float List
