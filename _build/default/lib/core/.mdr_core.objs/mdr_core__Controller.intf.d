lib/core/controller.mli: Mdr_fluid Mdr_topology
