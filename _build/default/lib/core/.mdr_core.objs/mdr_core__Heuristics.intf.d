lib/core/heuristics.mli:
