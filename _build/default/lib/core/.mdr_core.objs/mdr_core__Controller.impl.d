lib/core/controller.ml: Array Hashtbl Heuristics List Mdr_fluid Mdr_routing Mdr_topology Mdr_util
