module Graph = Mdr_topology.Graph
module Fluid = Mdr_fluid
module Params = Fluid.Params
module Flows = Fluid.Flows
module Traffic = Fluid.Traffic
module Evaluate = Fluid.Evaluate
module Delay = Fluid.Delay
module Dijkstra = Mdr_routing.Dijkstra

type scheme = Mp | Sp | Ecmp

type config = {
  scheme : scheme;
  rounds : int;
  ts_per_tl : int;
  damping : float;
}

let default_config = { scheme = Mp; rounds = 30; ts_per_tl = 5; damping = 1.0 }

type result = {
  params : Params.t;
  flows : Flows.t;
  total_cost : float;
  avg_delay : float;
  delay_history : float list;
}

let successor_sets topo ~cost ~dst =
  let dist = Dijkstra.distances_to topo ~dst ~cost in
  fun node ->
    if node = dst then []
    else List.filter (fun k -> dist.(k) < dist.(node)) (Graph.neighbors topo node)

let link_cost_fn model flows (l : Graph.link) =
  let f = Flows.link_flow flows ~src:l.src ~dst:l.dst in
  Delay.marginal (Evaluate.delay_of_link model ~src:l.src ~dst:l.dst) f

(* One long-term (T_l) update: recompute distances and successor sets
   from the measured marginal costs. IH reseeds the fractions only for
   pairs whose successor set actually changed — the paper runs IH
   "when S is computed for the first time or recomputed again due to
   long-term route changes"; untouched pairs keep the distribution AH
   has been refining. Returns the per-destination distance tables that
   the following T_s steps treat as fixed long-term information. *)
let long_term_update model params flows traffic ~scheme ~long_cost =
  ignore model;
  ignore flows;
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  let cost = long_cost in
  let lcost ~src ~dst = cost (Graph.link_exn topo ~src ~dst) in
  let distances = Hashtbl.create 8 in
  List.iter
    (fun dst ->
      let dist = Dijkstra.distances_to topo ~dst ~cost in
      Hashtbl.replace distances dst dist;
      for node = 0 to n - 1 do
        if node <> dst then begin
          let nbrs = Graph.neighbors topo node in
          let closer = List.filter (fun k -> dist.(k) < dist.(node)) nbrs in
          let best_of candidates =
            List.fold_left
              (fun best k ->
                let d = dist.(k) +. lcost ~src:node ~dst:k in
                match best with
                | Some (_, bd) when bd <= d -> best
                | _ -> Some (k, d))
              None candidates
          in
          let chosen =
            match (closer, scheme) with
            | [], _ -> []
            | _ :: _, Sp ->
              (* Single best successor: minimise D_jk + l_ik, ties to
                 the lower id. *)
              (match best_of closer with Some (k, _) -> [ k ] | None -> [])
            | _ :: _, Ecmp -> (
              (* OSPF-style: only successors whose total cost equals
                 the best, split evenly (no AH on ECMP entries). *)
              match best_of closer with
              | None -> []
              | Some (_, bd) ->
                List.filter
                  (fun k ->
                    let d = dist.(k) +. lcost ~src:node ~dst:k in
                    d <= bd *. (1.0 +. 1e-9))
                  closer)
            | closer, Mp -> closer
          in
          let current = List.sort compare (Params.successors params ~node ~dst) in
          if chosen <> current then begin
            match chosen with
            | [] -> Params.clear params ~node ~dst
            | [ k ] -> Params.set_single params ~node ~dst ~via:k
            | _ when scheme = Ecmp ->
              let even = 1.0 /. float_of_int (List.length chosen) in
              Params.set_fractions params ~node ~dst
                (List.map (fun k -> (k, even)) chosen)
            | _ ->
              let entries =
                List.map (fun k -> (k, dist.(k) +. lcost ~src:node ~dst:k)) chosen
              in
              Params.set_fractions params ~node ~dst (Heuristics.initial entries)
          end
        end
      done)
    (Traffic.destinations traffic);
  distances

(* One short-term (T_s) update: AH on every routed pair. Neighbor
   distances are the stored long-term values; only the adjacent link
   cost is re-measured — the split of time scales at the heart of the
   framework. *)
let short_term_update model params flows traffic ~damping ~distances =
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  let cost = link_cost_fn model flows in
  List.iter
    (fun dst ->
      match Hashtbl.find_opt distances dst with
      | None -> ()
      | Some dist ->
        for node = 0 to n - 1 do
          if node <> dst then begin
            match Params.fractions params ~node ~dst with
            | [] | [ _ ] -> ()
            | current ->
              let through k =
                dist.(k) +. cost (Graph.link_exn topo ~src:node ~dst:k)
              in
              let adjusted = Heuristics.adjust ~damping ~current ~through () in
              Params.set_fractions params ~node ~dst adjusted
          end
        done)
    (Traffic.destinations traffic)

(* Long-term link costs are the *average* of the short-term marginal
   samples observed during the previous T_l interval — the paper's
   "link costs measured over longer intervals T_l" — which damps the
   route flapping an instantaneous cost snapshot would cause. *)
module Cost_window = struct
  type t = {
    sums : (int * int, float) Hashtbl.t;
    mutable samples : int;
  }

  let create () = { sums = Hashtbl.create 64; samples = 0 }

  let record t model flows topo =
    t.samples <- t.samples + 1;
    Graph.fold_links topo ~init:() ~f:(fun () l ->
        let c = link_cost_fn model flows l in
        let key = (l.Graph.src, l.Graph.dst) in
        let prev = try Hashtbl.find t.sums key with Not_found -> 0.0 in
        Hashtbl.replace t.sums key (prev +. c))

  let mean_cost_fn t =
    let samples = float_of_int (max 1 t.samples) in
    let sums = Hashtbl.copy t.sums in
    fun (l : Graph.link) ->
      match Hashtbl.find_opt sums (l.src, l.dst) with
      | Some sum -> sum /. samples
      | None -> infinity

  let reset t =
    Hashtbl.reset t.sums;
    t.samples <- 0
end

let run ?(config = default_config) model topo traffic =
  if config.rounds < 1 then invalid_arg "Controller.run: rounds < 1";
  if config.ts_per_tl < 1 then invalid_arg "Controller.run: ts_per_tl < 1";
  let params = Params.create topo in
  let history = ref [] in
  let flows = ref (Flows.compute params traffic) in
  let window = Cost_window.create () in
  let record () =
    history := Evaluate.average_delay model !flows traffic :: !history;
    Cost_window.record window model !flows topo
  in
  for round = 1 to config.rounds do
    let long_cost =
      if round = 1 then link_cost_fn model !flows
      else Cost_window.mean_cost_fn window
    in
    Cost_window.reset window;
    let distances =
      long_term_update model params !flows traffic ~scheme:config.scheme
        ~long_cost
    in
    flows := Flows.compute params traffic;
    record ();
    for _step = 2 to config.ts_per_tl do
      (* ECMP keeps its even split: OSPF has no load-balancing step. *)
      if config.scheme <> Ecmp then
        short_term_update model params !flows traffic ~damping:config.damping
          ~distances;
      flows := Flows.compute params traffic;
      record ()
    done
  done;
  let delay_history = List.rev !history in
  (* Steady-state figure: time-average over the second half of the run,
     the analogue of the paper's measured per-flow averages. *)
  let steady =
    let k = List.length delay_history in
    let tail = List.filteri (fun i _ -> i >= k / 2) delay_history in
    Mdr_util.Stats.mean_of_list tail
  in
  {
    params;
    flows = !flows;
    total_cost = Evaluate.total_cost model !flows;
    avg_delay = steady;
    delay_history;
  }
