(** The paper's flow-allocation heuristics (Section 4.2, Figs. 6-7).

    Both take, for one (router, destination) pair, the successor set
    and the marginal distance through each successor
    [a_k = D_jk + l_ik] (neighbor distance plus adjacent link cost),
    and produce routing fractions satisfying Property 1.

    - {!initial} (IH) runs when the successor set (re)appears: traffic
      splits so that successors with larger marginal distance get
      proportionally less.
    - {!adjust} (AH) runs every short-term interval T_s: it moves
      traffic away from successors in proportion to how much their
      marginal distance exceeds the best successor's, and gives all of
      it to the best successor. The step empties the successor with
      the smallest fraction-to-excess ratio, so repeated application
      drives the distribution toward the perfect-load-balancing
      conditions (Eqs. 10-12) restricted to the successor set. *)

val initial : (int * float) list -> (int * float) list
(** [initial [(k, a_k); ...]] is the IH distribution over the
    successors. All [a_k] must be finite and positive.
    @raise Invalid_argument on an empty successor set. *)

val adjust :
  ?damping:float ->
  current:(int * float) list ->
  through:(int -> float) ->
  unit ->
  (int * float) list
(** [adjust ~current ~through ()] applies one AH step to the current
    distribution [(successor, fraction)] using marginal distances
    [through k]. [damping] scales the paper's step (default 1.0, the
    full step). Fractions that fall to zero are dropped; the result
    still sums to one. *)

val is_distribution : (int * float) list -> bool
(** Non-negative, non-empty, sums to 1 within 1e-6 — Property 1
    restricted to one entry. *)
