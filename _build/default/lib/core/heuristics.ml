let is_distribution entries =
  entries <> []
  && List.for_all (fun (_, f) -> f >= 0.0) entries
  && Float.abs (List.fold_left (fun acc (_, f) -> acc +. f) 0.0 entries -. 1.0) <= 1e-6

let initial = function
  | [] -> invalid_arg "Heuristics.initial: empty successor set"
  | [ (k, _) ] -> [ (k, 1.0) ]
  | entries ->
    List.iter
      (fun (_, a) ->
        if not (Float.is_finite a) || a <= 0.0 then
          invalid_arg "Heuristics.initial: marginal distances must be positive")
      entries;
    let total = List.fold_left (fun acc (_, a) -> acc +. a) 0.0 entries in
    let m = float_of_int (List.length entries) in
    (* phi_k = (1 - a_k / sum) / (|S| - 1): sums to one, and greater
       marginal distance means a smaller share (paper Fig. 6). *)
    List.map (fun (k, a) -> (k, (1.0 -. (a /. total)) /. (m -. 1.0))) entries

let adjust ?(damping = 1.0) ~current ~through () =
  if damping <= 0.0 || damping > 1.0 then
    invalid_arg "Heuristics.adjust: damping must be in (0, 1]";
  match current with
  | [] -> invalid_arg "Heuristics.adjust: empty distribution"
  | [ _ ] -> current
  | _ ->
    (* Step 1-2: the best successor and each successor's excess. *)
    let annotated = List.map (fun (k, f) -> (k, f, through k)) current in
    let d_min =
      List.fold_left (fun acc (_, _, d) -> Float.min acc d) infinity annotated
    in
    if not (Float.is_finite d_min) then current
    else begin
      let k0, _, _ =
        (* Ties to the lowest id, deterministically. *)
        List.fold_left
          (fun ((_, _, bd) as best) ((_, _, d) as cand) ->
            if d < bd then cand else best)
          (List.hd annotated) (List.tl annotated)
      in
      let excess = List.map (fun (k, f, d) -> (k, f, Float.max 0.0 (d -. d_min))) annotated in
      (* Step 3: the largest multiplier that keeps every fraction
         non-negative. *)
      let eta =
        List.fold_left
          (fun acc (_, f, a) -> if a > 0.0 then Float.min acc (f /. a) else acc)
          infinity excess
      in
      if not (Float.is_finite eta) then current
      else begin
        let eta = eta *. damping in
        (* Steps 4-5: shift eta * a_k from each k toward the best. *)
        let moved = ref 0.0 in
        let reduced =
          List.filter_map
            (fun (k, f, a) ->
              if k = k0 then None
              else begin
                let delta = eta *. a in
                moved := !moved +. delta;
                let f' = f -. delta in
                if f' > 1e-12 then Some (k, f') else Some (k, 0.0)
              end)
            excess
        in
        let f0 = List.assoc k0 current in
        let entries = (k0, f0 +. !moved) :: List.filter (fun (_, f) -> f > 0.0) reduced in
        (* Renormalise away floating error. *)
        let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 entries in
        List.map (fun (k, f) -> (k, f /. total)) entries
      end
    end
