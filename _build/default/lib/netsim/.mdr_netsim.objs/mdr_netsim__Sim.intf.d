lib/netsim/sim.mli: Mdr_topology
