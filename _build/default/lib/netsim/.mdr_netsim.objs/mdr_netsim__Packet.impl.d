lib/netsim/packet.ml:
