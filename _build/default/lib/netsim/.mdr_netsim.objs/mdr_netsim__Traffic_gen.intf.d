lib/netsim/traffic_gen.mli: Mdr_eventsim Mdr_util Packet
