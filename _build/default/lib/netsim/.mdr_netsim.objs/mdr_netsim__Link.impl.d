lib/netsim/link.ml: Mdr_costs Mdr_eventsim Mdr_topology Mdr_util Packet Queue
