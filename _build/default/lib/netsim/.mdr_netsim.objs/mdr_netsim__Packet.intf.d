lib/netsim/packet.mli:
