lib/netsim/sim.ml: Array Float Fun Hashtbl Link List Mdr_core Mdr_costs Mdr_eventsim Mdr_routing Mdr_topology Mdr_util Packet Traffic_gen
