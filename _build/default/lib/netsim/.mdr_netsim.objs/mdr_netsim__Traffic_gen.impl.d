lib/netsim/traffic_gen.ml: Float Mdr_eventsim Mdr_util Packet
