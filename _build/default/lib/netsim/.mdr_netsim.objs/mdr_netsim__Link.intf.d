lib/netsim/link.mli: Mdr_costs Mdr_eventsim Mdr_topology Packet
