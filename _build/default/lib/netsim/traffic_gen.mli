(** Traffic sources for the packet simulator.

    A source injects packets of one flow. [poisson] models the paper's
    stationary workloads (exponential inter-arrivals, exponential
    packet sizes, so every link behaves as M/M/1 when utilisation
    permits). [on_off] adds burstiness for the dynamic-traffic
    experiments: exponential ON/OFF periods, Poisson arrivals during ON
    at a rate scaled to preserve the requested mean. *)

type t

val poisson :
  rng:Mdr_util.Rng.t -> rate_bits:float -> mean_packet_size:float -> t
(** [rate_bits] is the flow's mean offered load in bits/s. *)

val on_off :
  rng:Mdr_util.Rng.t ->
  rate_bits:float ->
  mean_packet_size:float ->
  on_mean:float ->
  off_mean:float ->
  t
(** During ON periods the instantaneous rate is
    [rate_bits * (on_mean + off_mean) / on_mean], so the long-run mean
    stays [rate_bits]. *)

val start :
  t ->
  engine:Mdr_eventsim.Engine.t ->
  flow_id:int ->
  src:int ->
  dst:int ->
  inject:(Packet.t -> unit) ->
  until:float ->
  unit
(** Schedule the source's packets on [engine] until simulated time
    [until]. *)
