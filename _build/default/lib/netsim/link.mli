(** A simulated directed link: FIFO queue + transmitter + propagation
    pipe, with an attached cost estimator.

    The link never loses packets (the paper "assumes that the network
    does not lose any packets"); queues are unbounded and occupancy is
    tracked so experiments can report it. Transmission time is
    [size / capacity]; after transmission the packet propagates for the
    link's fixed delay and is handed to [deliver]. *)

type t

val create :
  ?buffer_packets:int ->
  engine:Mdr_eventsim.Engine.t ->
  link:Mdr_topology.Graph.link ->
  estimator:Mdr_costs.Estimator.t ->
  deliver:(Packet.t -> unit) ->
  drop:(Packet.t -> unit) ->
  unit ->
  t
(** [buffer_packets] bounds the number of packets queued or in service
    (tail drop); omitted = unbounded, the paper's lossless model.
    [drop] receives every packet lost to a full buffer or a failed
    link. *)

val src : t -> int
val dst : t -> int
val capacity : t -> float

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission. Packets sent on a failed link
    or into a full buffer are passed to the [drop] callback. *)

val is_up : t -> bool

val fail : t -> unit
(** Take the link down: queued and in-service packets are lost (fed to
    the [drop] callback); packets already propagating still arrive.
    Idempotent. *)

val restore : t -> unit
(** Bring the link back up with an empty queue. Idempotent. *)

val sample_cost : t -> Mdr_costs.Estimator.sample
(** Close the estimator's measurement window (see
    {!Mdr_costs.Estimator.sample}). *)

val queue_length : t -> int
val mean_queue : t -> float
(** Time-averaged number of packets on the link since creation. *)

val utilization : t -> float
(** Fraction of elapsed time the transmitter was busy. *)

val packets_sent : t -> int
