type t = {
  flow_id : int;
  src : int;
  dst : int;
  size : float;
  created : float;
  mutable hops : int;
}

let hop_limit = 64
