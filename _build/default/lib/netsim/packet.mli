(** Data packets of the packet-level simulator. *)

type t = {
  flow_id : int;  (** index into the scenario's flow list; -1 for control *)
  src : int;
  dst : int;
  size : float;  (** bits *)
  created : float;  (** injection time, seconds *)
  mutable hops : int;  (** forwarding steps so far, for loop damping *)
}

val hop_limit : int
(** Packets are dropped after this many hops (transient routing states
    of non-loop-free schemes can cycle packets). *)
