module Engine = Mdr_eventsim.Engine
module Rng = Mdr_util.Rng

type shape =
  | Poisson
  | On_off of { on_mean : float; off_mean : float }

type t = {
  rng : Rng.t;
  rate_bits : float;
  mean_packet_size : float;
  shape : shape;
}

let poisson ~rng ~rate_bits ~mean_packet_size =
  if rate_bits <= 0.0 || mean_packet_size <= 0.0 then
    invalid_arg "Traffic_gen.poisson: non-positive rate or packet size";
  { rng; rate_bits; mean_packet_size; shape = Poisson }

let on_off ~rng ~rate_bits ~mean_packet_size ~on_mean ~off_mean =
  if rate_bits <= 0.0 || mean_packet_size <= 0.0 then
    invalid_arg "Traffic_gen.on_off: non-positive rate or packet size";
  if on_mean <= 0.0 || off_mean <= 0.0 then
    invalid_arg "Traffic_gen.on_off: bad period means";
  { rng; rate_bits; mean_packet_size; shape = On_off { on_mean; off_mean } }

(* Packet sizes are exponential with the configured mean, floored at 64
   bits so transmission times never degenerate. *)
let draw_size t = Float.max 64.0 (Rng.exponential t.rng ~rate:(1.0 /. t.mean_packet_size))

let start t ~engine ~flow_id ~src ~dst ~inject ~until =
  let pkt_rate_of bits = bits /. t.mean_packet_size in
  match t.shape with
  | Poisson ->
    let rate = pkt_rate_of t.rate_bits in
    let rec arrival () =
      let gap = Rng.exponential t.rng ~rate in
      let time = Engine.now engine +. gap in
      if time <= until then
        ignore
          (Engine.schedule engine ~delay:gap (fun () ->
               inject
                 {
                   Packet.flow_id;
                   src;
                   dst;
                   size = draw_size t;
                   created = Engine.now engine;
                   hops = 0;
                 };
               arrival ()))
    in
    ignore (Engine.schedule engine ~delay:0.0 arrival)
  | On_off { on_mean; off_mean } ->
    let duty = on_mean /. (on_mean +. off_mean) in
    let on_rate = pkt_rate_of (t.rate_bits /. duty) in
    (* State machine: alternate exponential ON and OFF periods; emit
       Poisson arrivals only while ON. *)
    let rec on_period () =
      let span = Rng.exponential t.rng ~rate:(1.0 /. on_mean) in
      let ends = Engine.now engine +. span in
      let rec arrival () =
        let gap = Rng.exponential t.rng ~rate:on_rate in
        let time = Engine.now engine +. gap in
        if time <= Float.min ends until then
          ignore
            (Engine.schedule engine ~delay:gap (fun () ->
                 inject
                   {
                     Packet.flow_id;
                     src;
                     dst;
                     size = draw_size t;
                     created = Engine.now engine;
                     hops = 0;
                   };
                 arrival ()))
        else if ends <= until then
          ignore
            (Engine.schedule engine ~delay:(Float.max 0.0 (ends -. Engine.now engine))
               off_period)
      in
      arrival ()
    and off_period () =
      let span = Rng.exponential t.rng ~rate:(1.0 /. off_mean) in
      if Engine.now engine +. span <= until then
        ignore (Engine.schedule engine ~delay:span on_period)
    in
    ignore (Engine.schedule engine ~delay:0.0 on_period)
