module Engine = Mdr_eventsim.Engine
module Estimator = Mdr_costs.Estimator
module Stats = Mdr_util.Stats

type entry = { packet : Packet.t; arrived : float }

type t = {
  engine : Engine.t;
  src : int;
  dst : int;
  capacity : float;  (* bits/s *)
  prop_delay : float;
  estimator : Estimator.t;
  deliver : Packet.t -> unit;
  queue : entry Queue.t;
  mutable busy : bool;
  occupancy : Stats.Timed.t;
  busy_time : Stats.Timed.t;
  mutable in_system : int;
  mutable sent : int;
  mutable up : bool;
  mutable generation : int;  (* transmission events of older generations are stale *)
  drop : Packet.t -> unit;
  buffer_packets : int option;
}

let create ?buffer_packets ~engine ~link ~estimator ~deliver ~drop () =
  (match buffer_packets with
  | Some b when b < 1 -> invalid_arg "Link.create: buffer_packets < 1"
  | Some _ | None -> ());
  {
    engine;
    src = link.Mdr_topology.Graph.src;
    dst = link.Mdr_topology.Graph.dst;
    capacity = link.Mdr_topology.Graph.capacity;
    prop_delay = link.Mdr_topology.Graph.prop_delay;
    estimator;
    deliver;
    queue = Queue.create ();
    busy = false;
    occupancy = Stats.Timed.create ();
    busy_time = Stats.Timed.create ();
    in_system = 0;
    sent = 0;
    up = true;
    generation = 0;
    drop;
    buffer_packets;
  }

let src t = t.src
let dst t = t.dst
let capacity t = t.capacity

let rec start_transmission t =
  match Queue.take_opt t.queue with
  | None ->
    t.busy <- false;
    Stats.Timed.update t.busy_time ~now:(Engine.now t.engine) ~value:0.0
  | Some { packet; arrived } ->
    t.busy <- true;
    Stats.Timed.update t.busy_time ~now:(Engine.now t.engine) ~value:1.0;
    let service = packet.Packet.size /. t.capacity in
    let generation = t.generation in
    ignore
      (Engine.schedule t.engine ~delay:service (fun () ->
           (* A failure between start and completion invalidates this
              transmission. *)
           if generation = t.generation then begin
             let now = Engine.now t.engine in
             t.in_system <- t.in_system - 1;
             t.sent <- t.sent + 1;
             Stats.Timed.update t.occupancy ~now ~value:(float_of_int t.in_system);
             let still_busy = not (Queue.is_empty t.queue) in
             Estimator.on_departure t.estimator ~now ~sojourn:(now -. arrived)
               ~service ~busy:still_busy;
             ignore
               (Engine.schedule t.engine ~delay:t.prop_delay (fun () ->
                    t.deliver packet));
             start_transmission t
           end))

let send t packet =
  let full =
    match t.buffer_packets with Some b -> t.in_system >= b | None -> false
  in
  if (not t.up) || full then t.drop packet
  else begin
    let now = Engine.now t.engine in
    t.in_system <- t.in_system + 1;
    Stats.Timed.update t.occupancy ~now ~value:(float_of_int t.in_system);
    Estimator.on_arrival t.estimator ~now;
    Queue.add { packet; arrived = now } t.queue;
    if not t.busy then start_transmission t
  end

let is_up t = t.up

let fail t =
  if t.up then begin
    t.up <- false;
    t.generation <- t.generation + 1;
    let now = Engine.now t.engine in
    (* Everything queued or in service is lost. *)
    Queue.iter (fun { packet; _ } -> t.drop packet) t.queue;
    Queue.clear t.queue;
    t.in_system <- 0;
    t.busy <- false;
    Stats.Timed.update t.occupancy ~now ~value:0.0;
    Stats.Timed.update t.busy_time ~now ~value:0.0
  end

let restore t =
  if not t.up then begin
    t.up <- true;
    t.generation <- t.generation + 1
  end

let sample_cost t = Estimator.sample t.estimator ~now:(Engine.now t.engine)

let queue_length t = t.in_system

let mean_queue t = Stats.Timed.average t.occupancy ~now:(Engine.now t.engine)

let utilization t = Stats.Timed.average t.busy_time ~now:(Engine.now t.engine)

let packets_sent t = t.sent
