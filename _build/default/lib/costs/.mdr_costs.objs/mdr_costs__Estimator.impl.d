lib/costs/estimator.ml: Mdr_fluid
