lib/costs/estimator.mli:
