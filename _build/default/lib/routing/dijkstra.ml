module Heap = Mdr_util.Heap
module Graph = Mdr_topology.Graph

type result = { dist : float array; parent : int array }

let rel_tolerance = 1e-12

let close a b =
  if Float.is_finite a && Float.is_finite b then
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= rel_tolerance *. scale
  else a = b

let run ~n ~root ~succ =
  if root < 0 || root >= n then invalid_arg "Dijkstra: root out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create ~cmp:(fun (da, va) (db, vb) -> compare (da, va) (db, vb)) in
  dist.(root) <- 0.0;
  Heap.add heap (0.0, root);
  let rec settle () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) && close d dist.(u) then begin
        settled.(u) <- true;
        let relax (v, w) =
          if w < 0.0 then invalid_arg "Dijkstra: negative link cost";
          if v >= 0 && v < n && not settled.(v) then begin
            let nd = d +. w in
            if nd < dist.(v) && not (close nd dist.(v)) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Heap.add heap (nd, v)
            end
            else if close nd dist.(v) && (parent.(v) = -1 || u < parent.(v)) then
              (* Consistent tie-breaking: smallest-id predecessor. *)
              parent.(v) <- u
          end
        in
        List.iter relax (succ u)
      end;
      settle ()
  in
  settle ();
  { dist; parent }

let on_table ~n ~root table =
  run ~n ~root ~succ:(fun u -> Topo_table.out_links table ~head:u)

let on_graph g ~root ~cost =
  let succ u =
    List.filter_map
      (fun l ->
        let w = cost l in
        if Float.is_finite w then Some (l.Graph.dst, w) else None)
      (Graph.out_links g u)
  in
  run ~n:(Graph.node_count g) ~root ~succ

let tree_of_result ~n ~root result ~cost =
  let tree = Topo_table.create () in
  for j = 0 to n - 1 do
    if j <> root && result.parent.(j) >= 0 && Float.is_finite result.dist.(j) then begin
      let p = result.parent.(j) in
      Topo_table.set tree ~head:p ~tail:j ~cost:(cost ~head:p ~tail:j)
    end
  done;
  tree

let distances_to g ~dst ~cost =
  let succ u =
    (* Reverse traversal: from [u], step across links that *enter* u.
       With symmetric topologies this is the reverse link's source. *)
    List.filter_map
      (fun l ->
        match Graph.link g ~src:l.Graph.dst ~dst:u with
        | None -> None
        | Some into_u ->
          let w = cost into_u in
          if Float.is_finite w then Some (into_u.Graph.src, w) else None)
      (Graph.out_links g u)
  in
  (run ~n:(Graph.node_count g) ~root:dst ~succ).dist
