(** Global checks of the Loop-Free Invariant framework (paper
    Section 3, Theorem 1).

    These functions inspect an omniscient snapshot of all routers —
    something no router can do — and are the test-suite's oracle: MPDA
    must satisfy them after processing *every single event*. *)

val successor_graph_acyclic :
  n:int -> successors:(node:int -> int list) -> dst:int -> bool
(** Whether the routing graph SG_dst implied by the per-node successor
    sets has no cycle. *)

val find_cycle :
  n:int -> successors:(node:int -> int list) -> dst:int -> int list option
(** A witness cycle (list of nodes, first repeated implicitly), if
    any. *)

val lfi_conditions_hold :
  n:int ->
  neighbors:(int -> int list) ->
  feasible:(node:int -> dst:int -> float) ->
  reported:(holder:int -> about:int -> dst:int -> float) ->
  dst:int ->
  bool
(** Eq. 16: for every router k and neighbor i holding a copy
    [reported ~holder:i ~about:k] of k's distance, k's feasible
    distance must not exceed it. *)
