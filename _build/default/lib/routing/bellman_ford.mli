(** Distributed Bellman-Ford distances (Eq. 13 of the paper), used as
    an independent cross-check of Dijkstra in the test-suite and as the
    distance recursion the framework's Eq. 20 is stated with. *)

val distances_to :
  Mdr_topology.Graph.t -> dst:int ->
  cost:(Mdr_topology.Graph.link -> float) -> float array
(** [distances_to g ~dst ~cost].(i) = min over neighbors k of
    (cost (i,k) + distance k), iterated to fixpoint. Links with
    infinite cost are absent. *)

val distances_from :
  Mdr_topology.Graph.t -> src:int ->
  cost:(Mdr_topology.Graph.link -> float) -> float array
