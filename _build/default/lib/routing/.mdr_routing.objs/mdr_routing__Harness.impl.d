lib/routing/harness.ml: Array Dv_router Hashtbl Lfi List Mdr_eventsim Mdr_topology
