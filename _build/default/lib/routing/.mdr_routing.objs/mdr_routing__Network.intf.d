lib/routing/network.mli: Mdr_eventsim Mdr_topology Router
