lib/routing/topo_table.mli:
