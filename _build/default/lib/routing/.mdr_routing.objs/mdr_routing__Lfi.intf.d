lib/routing/lfi.mli:
