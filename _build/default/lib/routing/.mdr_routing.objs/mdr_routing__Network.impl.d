lib/routing/network.ml: Array Hashtbl Lfi List Mdr_eventsim Mdr_topology Router
