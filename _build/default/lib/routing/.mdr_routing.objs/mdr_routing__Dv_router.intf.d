lib/routing/dv_router.mli:
