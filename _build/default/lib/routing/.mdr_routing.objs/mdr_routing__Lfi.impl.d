lib/routing/lfi.ml: Array List
