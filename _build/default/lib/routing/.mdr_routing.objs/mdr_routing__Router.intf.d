lib/routing/router.mli: Topo_table
