lib/routing/topo_table.ml: Float Hashtbl List
