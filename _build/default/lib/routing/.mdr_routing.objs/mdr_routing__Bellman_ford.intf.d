lib/routing/bellman_ford.mli: Mdr_topology
