lib/routing/bellman_ford.ml: Array Float List Mdr_topology
