lib/routing/dv_router.ml: Array Float Hashtbl List Option
