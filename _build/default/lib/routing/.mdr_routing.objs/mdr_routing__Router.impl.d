lib/routing/router.ml: Array Dijkstra Float Hashtbl List Option Topo_table
