lib/routing/dijkstra.mli: Mdr_topology Topo_table
