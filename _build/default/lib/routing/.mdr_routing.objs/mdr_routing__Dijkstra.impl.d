lib/routing/dijkstra.ml: Array Float List Mdr_topology Mdr_util Topo_table
