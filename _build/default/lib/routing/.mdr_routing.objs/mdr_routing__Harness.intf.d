lib/routing/harness.mli: Dv_router Mdr_eventsim Mdr_topology
