module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine

module type ROUTER = sig
  type t
  type msg

  val create : id:int -> n:int -> t
  val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_link_down : t -> nbr:int -> (int * msg) list
  val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_msg : t -> from_:int -> msg -> (int * msg) list
  val is_passive : t -> bool
  val distance : t -> dst:int -> float
  val successors : t -> dst:int -> int list
  val feasible_distance : t -> dst:int -> float
  val neighbor_distance : t -> nbr:int -> dst:int -> float
  val up_neighbors : t -> int list
  val messages_sent : t -> int
end

module Make (R : ROUTER) = struct
  type t = {
    topo : Graph.t;
    engine : Engine.t;
    routers : R.t array;
    up : (int * int, unit) Hashtbl.t;
    mutable observer : t -> unit;
  }

  let engine t = t.engine
  let topology t = t.topo
  let router t i = t.routers.(i)
  let link_is_up t ~src ~dst = Hashtbl.mem t.up (src, dst)
  let prop_delay t ~src ~dst = (Graph.link_exn t.topo ~src ~dst).Graph.prop_delay

  let rec dispatch t ~from_ outputs =
    List.iter
      (fun (dst, msg) ->
        if link_is_up t ~src:from_ ~dst then begin
          let delay = prop_delay t ~src:from_ ~dst in
          ignore
            (Engine.schedule t.engine ~delay (fun () ->
                 if link_is_up t ~src:from_ ~dst then begin
                   let replies = R.handle_msg t.routers.(dst) ~from_ msg in
                   t.observer t;
                   dispatch t ~from_:dst replies
                 end))
        end)
      outputs

  let apply_link_up t ~src ~dst ~cost =
    Hashtbl.replace t.up (src, dst) ();
    let outputs = R.handle_link_up t.routers.(src) ~nbr:dst ~cost in
    t.observer t;
    dispatch t ~from_:src outputs

  let apply_link_down t ~src ~dst =
    if link_is_up t ~src ~dst then begin
      Hashtbl.remove t.up (src, dst);
      let outputs = R.handle_link_down t.routers.(src) ~nbr:dst in
      t.observer t;
      dispatch t ~from_:src outputs
    end

  let apply_link_cost t ~src ~dst ~cost =
    if link_is_up t ~src ~dst then begin
      let outputs = R.handle_link_cost t.routers.(src) ~nbr:dst ~cost in
      t.observer t;
      dispatch t ~from_:src outputs
    end

  let create ?(observer = fun _ -> ()) ~topo ~cost () =
    let n = Graph.node_count topo in
    let t =
      {
        topo;
        engine = Engine.create ();
        routers = Array.init n (fun id -> R.create ~id ~n);
        up = Hashtbl.create (Graph.link_count topo);
        observer;
      }
    in
    List.iter
      (fun l ->
        ignore
          (Engine.schedule t.engine ~delay:0.0 (fun () ->
               apply_link_up t ~src:l.Graph.src ~dst:l.Graph.dst ~cost:(cost l))))
      (Graph.links topo);
    t

  let schedule_link_cost t ~at ~src ~dst ~cost =
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () -> apply_link_cost t ~src ~dst ~cost))

  let schedule_fail_duplex t ~at ~a ~b =
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           apply_link_down t ~src:a ~dst:b;
           apply_link_down t ~src:b ~dst:a))

  let schedule_restore_duplex t ~at ~a ~b ~cost =
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           apply_link_up t ~src:a ~dst:b ~cost;
           apply_link_up t ~src:b ~dst:a ~cost))

  let run ?until t = Engine.run ?until t.engine

  let quiescent t = Engine.pending t.engine = 0 && Array.for_all R.is_passive t.routers

  let total_messages t =
    Array.fold_left (fun acc r -> acc + R.messages_sent r) 0 t.routers

  let check_loop_free t =
    let n = Graph.node_count t.topo in
    List.for_all
      (fun dst ->
        Lfi.successor_graph_acyclic ~n
          ~successors:(fun ~node -> R.successors t.routers.(node) ~dst)
          ~dst)
      (Graph.nodes t.topo)

  let check_lfi t =
    let n = Graph.node_count t.topo in
    List.for_all
      (fun dst ->
        Lfi.lfi_conditions_hold ~n
          ~neighbors:(fun node -> R.up_neighbors t.routers.(node))
          ~feasible:(fun ~node ~dst -> R.feasible_distance t.routers.(node) ~dst)
          ~reported:(fun ~holder ~about ~dst ->
            R.neighbor_distance t.routers.(holder) ~nbr:about ~dst)
          ~dst)
      (Graph.nodes t.topo)
end

module Dv_network = Make (Dv_router)
