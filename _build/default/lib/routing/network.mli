(** Control-plane simulation harness: one {!Router} per topology node,
    exchanging LSUs over the topology's links with their propagation
    delays.

    This is how PDA/MPDA are exercised *as protocols*: link cost
    changes and failures are injected as timed events, messages travel
    with real latencies, and an observation hook fires after every
    processed event so tests can assert instantaneous loop-freedom
    (Theorem 3) and eventual convergence (Theorems 2 and 4). *)

type t

val create :
  ?mode:Router.mode ->
  ?observer:(t -> unit) ->
  topo:Mdr_topology.Graph.t ->
  cost:(Mdr_topology.Graph.link -> float) ->
  unit ->
  t
(** Builds the routers and schedules both directions of every link to
    come up at time 0 (with initial costs from [cost]). [mode] defaults
    to [Mpda]. [observer] runs after every router event — keep it
    cheap. *)

val engine : t -> Mdr_eventsim.Engine.t
val topology : t -> Mdr_topology.Graph.t
val router : t -> int -> Router.t

val schedule_link_cost : t -> at:float -> src:int -> dst:int -> cost:float -> unit
(** Change one directed link's cost at simulated time [at]. *)

val schedule_fail_duplex : t -> at:float -> a:int -> b:int -> unit
(** Fail both directions between [a] and [b]. In-flight messages on
    the failed link are lost. *)

val schedule_restore_duplex : t -> at:float -> a:int -> b:int -> cost:float -> unit

val link_is_up : t -> src:int -> dst:int -> bool

val run : ?until:float -> t -> unit
(** Process events; see {!Mdr_eventsim.Engine.run}. *)

val quiescent : t -> bool
(** No pending events and every router PASSIVE. *)

val total_messages : t -> int

val successor_sets : t -> dst:int -> (int -> int list)
(** Per-node successor sets for one destination, straight from the
    routers. *)

val check_loop_free : t -> bool
(** Successor graphs of all destinations are acyclic right now. *)

val check_lfi : t -> bool
(** The LFI conditions (Eq. 16) hold right now, using each router's
    neighbor tables as the "reported" values. *)
