(** Topology tables: the per-router link-state databases of PDA/MPDA.

    A table stores directed links [head -> tail] with their cost — the
    triplets [h; t; d] of the paper. The router's main table T_i and
    the per-neighbor tables T_k^i are all values of this type. *)

type t

type entry = { head : int; tail : int; cost : float }
(** [cost = infinity] inside an LSU means "delete this link". *)

val create : unit -> t
val copy : t -> t
val clear : t -> unit

val set : t -> head:int -> tail:int -> cost:float -> unit
(** Add or change a link. [cost] must be finite and positive. *)

val remove : t -> head:int -> tail:int -> unit

val cost : t -> head:int -> tail:int -> float option

val apply_entry : t -> entry -> unit
(** Apply one LSU entry: set when the cost is finite, remove when it is
    [infinity]. *)

val entries : t -> entry list
(** All links, sorted by (head, tail) for deterministic output. *)

val out_links : t -> head:int -> (int * float) list
(** (tail, cost) of links headed at [head]. *)

val nodes : t -> int list
(** Every node appearing as a head or tail, sorted. *)

val size : t -> int

val diff : old_table:t -> new_table:t -> entry list
(** LSU entries that transform [old_table] into [new_table]:
    adds/changes carry the new cost, deletions carry [infinity]. *)

val equal : t -> t -> bool
