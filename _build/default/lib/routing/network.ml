module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine

type t = {
  topo : Graph.t;
  engine : Engine.t;
  routers : Router.t array;
  up : (int * int, unit) Hashtbl.t;  (* directed links currently up *)
  mutable observer : t -> unit;
}

let engine t = t.engine
let topology t = t.topo
let router t i = t.routers.(i)

let link_is_up t ~src ~dst = Hashtbl.mem t.up (src, dst)

let prop_delay t ~src ~dst = (Graph.link_exn t.topo ~src ~dst).Graph.prop_delay

(* Deliver router outputs: each message is scheduled across its link
   and, on arrival, processed recursively. *)
let rec dispatch t ~from_ outputs =
  List.iter
    (fun { Router.dst; msg } ->
      if link_is_up t ~src:from_ ~dst then begin
        let delay = prop_delay t ~src:from_ ~dst in
        ignore
          (Engine.schedule t.engine ~delay (fun () ->
               if link_is_up t ~src:from_ ~dst then begin
                 let replies = Router.handle_msg t.routers.(dst) ~from_ msg in
                 t.observer t;
                 dispatch t ~from_:dst replies
               end))
      end)
    outputs

let apply_link_up t ~src ~dst ~cost =
  Hashtbl.replace t.up (src, dst) ();
  let outputs = Router.handle_link_up t.routers.(src) ~nbr:dst ~cost in
  t.observer t;
  dispatch t ~from_:src outputs

let apply_link_down t ~src ~dst =
  if link_is_up t ~src ~dst then begin
    Hashtbl.remove t.up (src, dst);
    let outputs = Router.handle_link_down t.routers.(src) ~nbr:dst in
    t.observer t;
    dispatch t ~from_:src outputs
  end

let apply_link_cost t ~src ~dst ~cost =
  if link_is_up t ~src ~dst then begin
    let outputs = Router.handle_link_cost t.routers.(src) ~nbr:dst ~cost in
    t.observer t;
    dispatch t ~from_:src outputs
  end

let create ?(mode = Router.Mpda) ?(observer = fun _ -> ()) ~topo ~cost () =
  let n = Graph.node_count topo in
  let t =
    {
      topo;
      engine = Engine.create ();
      routers = Array.init n (fun id -> Router.create ~mode ~id ~n);
      up = Hashtbl.create (Graph.link_count topo);
      observer;
    }
  in
  (* Bring every directed link up at time 0. Both directions are
     scheduled before any message can be delivered (delays > 0 in
     practice; equal-time events run in scheduling order otherwise). *)
  List.iter
    (fun l ->
      ignore
        (Engine.schedule t.engine ~delay:0.0 (fun () ->
             apply_link_up t ~src:l.Graph.src ~dst:l.Graph.dst ~cost:(cost l))))
    (Graph.links topo);
  t

let schedule_link_cost t ~at ~src ~dst ~cost =
  ignore
    (Engine.schedule_at t.engine ~time:at (fun () -> apply_link_cost t ~src ~dst ~cost))

let schedule_fail_duplex t ~at ~a ~b =
  ignore
    (Engine.schedule_at t.engine ~time:at (fun () ->
         apply_link_down t ~src:a ~dst:b;
         apply_link_down t ~src:b ~dst:a))

let schedule_restore_duplex t ~at ~a ~b ~cost =
  ignore
    (Engine.schedule_at t.engine ~time:at (fun () ->
         apply_link_up t ~src:a ~dst:b ~cost;
         apply_link_up t ~src:b ~dst:a ~cost))

let run ?until t = Engine.run ?until t.engine

let quiescent t =
  Engine.pending t.engine = 0 && Array.for_all Router.is_passive t.routers

let total_messages t =
  Array.fold_left (fun acc r -> acc + Router.stats_messages_sent r) 0 t.routers

let successor_sets t ~dst =
  fun node -> Router.successors t.routers.(node) ~dst

let check_loop_free t =
  let n = Graph.node_count t.topo in
  List.for_all
    (fun dst ->
      Lfi.successor_graph_acyclic ~n
        ~successors:(fun ~node -> Router.successors t.routers.(node) ~dst)
        ~dst)
    (Graph.nodes t.topo)

let check_lfi t =
  let n = Graph.node_count t.topo in
  List.for_all
    (fun dst ->
      Lfi.lfi_conditions_hold ~n
        ~neighbors:(fun node -> Router.up_neighbors t.routers.(node))
        ~feasible:(fun ~node ~dst -> Router.feasible_distance t.routers.(node) ~dst)
        ~reported:(fun ~holder ~about ~dst ->
          Router.neighbor_distance t.routers.(holder) ~nbr:about ~dst)
        ~dst)
    (Graph.nodes t.topo)
