(** Dijkstra's shortest-path-first algorithm, over either a topology
    table (as run inside PDA/MPDA on T_i and T_k^i) or a whole
    topology with an arbitrary link-cost function (as run by the SPF
    baseline and the fluid-mode controllers).

    Ties between equal-cost paths are broken consistently — the parent
    of a node is the smallest-id predecessor achieving the minimum
    distance (within a relative tolerance) — as the paper requires so
    that all routers agree on trees. *)

type result = {
  dist : float array;  (** [dist.(j)]: cost from the root to [j]; [infinity] if unreachable. *)
  parent : int array;  (** [parent.(j)]: predecessor on the canonical shortest path; [-1] for the root and unreachable nodes. *)
}

val on_table : n:int -> root:int -> Topo_table.t -> result
(** [n] bounds node ids (they are dense across the simulation). *)

val on_graph :
  Mdr_topology.Graph.t -> root:int ->
  cost:(Mdr_topology.Graph.link -> float) -> result
(** Costs must be non-negative; links with infinite cost are treated as
    absent. *)

val tree_of_result : n:int -> root:int -> result -> cost:(head:int -> tail:int -> float) -> Topo_table.t
(** The shortest-path tree as a topology table: one link
    [(parent j, j)] per reached node [j]. [cost] supplies the link
    costs (typically lookups in the merged table Dijkstra ran on). *)

val distances_to :
  Mdr_topology.Graph.t -> dst:int ->
  cost:(Mdr_topology.Graph.link -> float) -> float array
(** Distance from every node *to* [dst] (runs Dijkstra on reversed
    links), as needed for successor-set construction. *)
