(** Protocol-agnostic control-plane harness.

    [Make] runs any router machine implementing {!ROUTER} — the
    link-state MPDA via {!Network}, or the distance-vector
    {!Dv_router} via {!Dv_network} below — over a topology's links
    with their propagation delays, so both LFI instantiations face
    identical event streams in tests and benches. *)

module type ROUTER = sig
  type t
  type msg

  val create : id:int -> n:int -> t
  val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_link_down : t -> nbr:int -> (int * msg) list
  val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_msg : t -> from_:int -> msg -> (int * msg) list
  val is_passive : t -> bool
  val distance : t -> dst:int -> float
  val successors : t -> dst:int -> int list
  val feasible_distance : t -> dst:int -> float
  val neighbor_distance : t -> nbr:int -> dst:int -> float
  val up_neighbors : t -> int list
  val messages_sent : t -> int
end

module Make (R : ROUTER) : sig
  type t

  val create :
    ?observer:(t -> unit) ->
    topo:Mdr_topology.Graph.t ->
    cost:(Mdr_topology.Graph.link -> float) ->
    unit ->
    t

  val engine : t -> Mdr_eventsim.Engine.t
  val topology : t -> Mdr_topology.Graph.t
  val router : t -> int -> R.t
  val schedule_link_cost : t -> at:float -> src:int -> dst:int -> cost:float -> unit
  val schedule_fail_duplex : t -> at:float -> a:int -> b:int -> unit
  val schedule_restore_duplex : t -> at:float -> a:int -> b:int -> cost:float -> unit
  val run : ?until:float -> t -> unit
  val quiescent : t -> bool
  val total_messages : t -> int
  val check_loop_free : t -> bool
  val check_lfi : t -> bool
end

module Dv_network : module type of Make (Dv_router)
(** The distance-vector network: {!Dv_router} under the harness. *)
