module Graph = Mdr_topology.Graph

let relax_until_fixpoint g ~start ~edges =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  dist.(start) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun (u, v, w) ->
        if Float.is_finite w && dist.(u) +. w < dist.(v) then begin
          dist.(v) <- dist.(u) +. w;
          changed := true
        end)
      edges
  done;
  dist

let distances_to g ~dst ~cost =
  (* Relax reversed edges from the destination. *)
  let edges = List.map (fun l -> (l.Graph.dst, l.Graph.src, cost l)) (Graph.links g) in
  relax_until_fixpoint g ~start:dst ~edges

let distances_from g ~src ~cost =
  let edges = List.map (fun l -> (l.Graph.src, l.Graph.dst, cost l)) (Graph.links g) in
  relax_until_fixpoint g ~start:src ~edges
