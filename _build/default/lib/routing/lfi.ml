let find_cycle ~n ~successors ~dst =
  let color = Array.make n 0 in
  let cycle = ref None in
  let rec visit node stack =
    if !cycle = None then begin
      if color.(node) = 1 then begin
        (* Found: unwind the stack down to [node]. *)
        let rec take acc = function
          | [] -> acc
          | v :: rest -> if v = node then v :: acc else take (v :: acc) rest
        in
        cycle := Some (take [] stack)
      end
      else if color.(node) = 0 then begin
        color.(node) <- 1;
        List.iter
          (fun s -> if s <> dst then visit s (node :: stack))
          (successors ~node);
        color.(node) <- 2
      end
    end
  in
  for node = 0 to n - 1 do
    if node <> dst && color.(node) = 0 then visit node []
  done;
  !cycle

let successor_graph_acyclic ~n ~successors ~dst =
  find_cycle ~n ~successors ~dst = None

let lfi_conditions_hold ~n ~neighbors ~feasible ~reported ~dst =
  let ok = ref true in
  for k = 0 to n - 1 do
    if k <> dst then
      List.iter
        (fun i ->
          let held = reported ~holder:i ~about:k ~dst in
          if feasible ~node:k ~dst > held +. 1e-9 then ok := false)
        (neighbors k)
  done;
  !ok
