module Graph = Mdr_topology.Graph

type t = {
  name : string;
  topo : Graph.t;
  pairs : (int * int) list;
  load : float;
}

let packet_size = 4096.0

let cairn ~load =
  let topo = Mdr_topology.Cairn.topology () in
  { name = "CAIRN"; topo; pairs = Mdr_topology.Cairn.flow_pairs topo; load }

let net1 ~load =
  let topo = Mdr_topology.Net1.topology () in
  { name = "NET1"; topo; pairs = Mdr_topology.Net1.flow_pairs topo; load }

let rate_bits t i = t.load *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6

let traffic t =
  Mdr_fluid.Traffic.of_pairs_bits ~n:(Graph.node_count t.topo)
    ~packet_size ~rate_bits:(rate_bits t) t.pairs

let model t = Mdr_fluid.Evaluate.model t.topo ~packet_size

let sim_flows ?(burst = None) t =
  List.mapi
    (fun i (src, dst) ->
      { Mdr_netsim.Sim.src; dst; rate_bits = rate_bits t i; burst })
    t.pairs

let flow_label t i =
  let src, dst = List.nth t.pairs i in
  Printf.sprintf "%d (%s->%s)" i (Graph.name t.topo src) (Graph.name t.topo dst)
