(** Canonical workloads of the paper's evaluation: the CAIRN and NET1
    topologies with their source-destination pairs, at a configurable
    load factor.

    Flow [i] (0-based) offers [load * (2.0 + 0.1 * i)] Mb/s — "flows
    have bandwidths in the range 2-3 Mb/s" at [load = 1]. The per-
    figure load factors live with each experiment (see
    [Experiments]). *)

type t = {
  name : string;
  topo : Mdr_topology.Graph.t;
  pairs : (int * int) list;
  load : float;
}

val packet_size : float
(** Mean packet size, bits (4096 = 512 bytes). *)

val cairn : load:float -> t
val net1 : load:float -> t

val rate_bits : t -> int -> float
(** Offered rate of the i-th flow, bits/s. *)

val traffic : t -> Mdr_fluid.Traffic.t
(** Fluid-model traffic matrix (packets/s). *)

val model : t -> Mdr_fluid.Evaluate.model

val sim_flows : ?burst:(float * float) option -> t -> Mdr_netsim.Sim.flow_spec list
(** Packet-simulator flow specs; [burst] applies to every flow. *)

val flow_label : t -> int -> string
(** ["0 (lbl->mci-r)"]-style label for figure rows. *)
