lib/experiments/experiments.ml: Float List Mdr_core Mdr_eventsim Mdr_fluid Mdr_gallager Mdr_netsim Mdr_routing Mdr_topology Mdr_util Printf String Workload
