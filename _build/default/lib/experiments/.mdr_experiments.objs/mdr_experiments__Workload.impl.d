lib/experiments/workload.ml: List Mdr_fluid Mdr_netsim Mdr_topology Printf
