lib/experiments/experiments.mli:
