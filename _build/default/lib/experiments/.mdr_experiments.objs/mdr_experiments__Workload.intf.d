lib/experiments/workload.mli: Mdr_fluid Mdr_netsim Mdr_topology
