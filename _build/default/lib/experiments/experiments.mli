(** The paper's evaluation, experiment by experiment.

    Every function regenerates one figure of Section 5 (or one
    ablation DESIGN.md calls out) and returns the rendered series —
    the same rows the paper plots. Absolute values depend on our
    simulator and reconstructed CAIRN; the *shape* (who wins, by what
    factor, how trends move) is the reproduction target recorded in
    EXPERIMENTS.md.

    All experiments are deterministic given [seeds]; packet-simulator
    experiments average the per-flow delays over [seeds] runs, which is
    the analogue of the paper's long measured runs. *)

type series = {
  x_label : string;
  columns : string list;
  rows : (string * float list) list;
}
(** The structured data behind a figure: one row per x-axis point. *)

type outcome = {
  title : string;
  rendered : string;  (** printable table *)
  series : series option;  (** structured data, when the experiment is tabular *)
  checks : (string * bool) list;
      (** named shape-assertions ("MP within 5% of OPT", ...) evaluated
          on the generated data *)
}

val to_csv : series -> string
(** RFC-4180-ish CSV of a series (header + rows). *)

val fig8_topologies : unit -> outcome
(** The two topologies with their structural metrics. *)

val fig9_cairn_opt_vs_mp : ?load:float -> unit -> outcome
(** Per-flow delays: OPT, the 5% envelope, fluid MP (TL:TS = 5) and
    packet-measured MP-TL-10-TS-2. *)

val fig10_net1_opt_vs_mp : ?load:float -> unit -> outcome
(** As fig9 on NET1, with the paper's 8% envelope. *)

val fig11_cairn_mp_vs_sp : ?load:float -> ?seeds:int list -> unit -> outcome
(** Packet-measured per-flow delays of MP-TL-10-TS-10, MP-TL-10-TS-2
    and SP-TL-10, with fluid OPT as reference. *)

val fig12_net1_mp_vs_sp : ?load:float -> ?seeds:int list -> unit -> outcome

val fig13_cairn_tl_effect : ?load:float -> ?seeds:int list -> unit -> outcome
(** Average delay of MP and SP as T_l grows from 10 s to 40 s. *)

val fig14_net1_tl_effect : ?load:float -> ?seeds:int list -> unit -> outcome

val dyn_bursty_traffic : ?load:float -> ?seeds:int list -> unit -> outcome
(** The dynamic-traffic study: on-off sources over CAIRN; MP with two
    T_s settings versus SP, across burst period lengths. *)

val abl_eta_step_size : unit -> outcome
(** OPT's global step size: fixed-eta sweep (slow / good / oscillating)
    versus the adaptive safeguard — the paper's Section 2 critique. *)

val abl_second_order : unit -> outcome
(** First-order OPT with a tuned eta versus the second-derivative step
    scaling of Bertsekas-Gallager (cited in the paper's Section 1):
    same optimum, far fewer iterations, dimensionless step. *)

val abl_load_balancing : unit -> outcome
(** IH-only versus IH+AH versus SP in the fluid model over a load
    sweep: how much the short-term heuristic matters. *)

val abl_estimators : ?seeds:int list -> unit -> outcome
(** The three marginal-delay estimators on the packet simulator. *)

val abl_ecmp : ?load:float -> ?seeds:int list -> unit -> outcome
(** Unequal-cost multipath (MP) versus OSPF-style equal-cost-only
    multipath (ECMP) versus SP — the paper's Section 1 claim that
    equal-length multipath is not enough. *)

val failover : ?seeds:int list -> unit -> outcome
(** Trunk failure and recovery on CAIRN under live traffic: the delay
    timeline around the outage for MP and SP, with loss counts. The
    paper: "in the presence of link failures, MP can only perform
    better than SP, because of availability of alternate paths". *)

val generalization : ?graphs:int -> ?seeds:int list -> unit -> outcome
(** MP vs SP across random topologies (not just CAIRN/NET1): per-graph
    average-delay ratios under matched random workloads — evidence the
    result is not an artifact of the two hand-built networks. *)

val scale_protocol : unit -> outcome
(** MPDA convergence cost (messages, time) versus network size on
    random topologies — the "complexity similar to single-path routing
    protocols" claim. *)

val all : unit -> (string * (unit -> outcome)) list
(** Every experiment with its id, in paper order. *)
