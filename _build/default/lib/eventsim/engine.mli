(** Discrete-event simulation engine.

    A single monotonic clock and a priority queue of callbacks. Events
    scheduled for the same instant fire in scheduling order, which
    keeps runs deterministic. Handlers may schedule further events and
    cancel pending ones. *)

type t

type event_id

val create : unit -> t

val now : t -> float
(** Current simulated time, seconds. Starts at 0. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** Run the callback [delay] seconds from now. [delay] must be
    non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Run the callback at absolute [time >= now]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

val run : ?until:float -> t -> unit
(** Process events in time order. With [until], stops once the clock
    would pass it (the clock then reads [until]); without, runs until
    the queue drains. *)

val step : t -> bool
(** Process exactly one event; [false] when the queue is empty. *)
