module Heap = Mdr_util.Heap

type event_id = int

type event = { time : float; id : event_id; action : unit -> unit }

type t = {
  queue : event Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable clock : float;
  mutable next_id : int;
  mutable live : int;
}

let create () =
  {
    queue = Heap.create ~cmp:(fun a b -> compare a.time b.time);
    cancelled = Hashtbl.create 64;
    clock = 0.0;
    next_id = 0;
    live = 0;
  }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.add t.queue { time; id; action };
  t.live <- t.live + 1;
  id

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.add t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t = max 0 t.live

(* Drop cancelled entries so the head of the queue is a live event. *)
let rec drop_cancelled t =
  match Heap.peek t.queue with
  | Some ev when Hashtbl.mem t.cancelled ev.id ->
    ignore (Heap.pop t.queue);
    Hashtbl.remove t.cancelled ev.id;
    drop_cancelled t
  | Some _ | None -> ()

let step t =
  drop_cancelled t;
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.live <- t.live - 1;
    ev.action ();
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      drop_cancelled t;
      match Heap.peek t.queue with
      | None -> continue := false
      | Some ev ->
        if ev.time > limit then continue := false
        else ignore (step t)
    done;
    if t.clock < limit then t.clock <- limit
