lib/eventsim/engine.ml: Hashtbl Mdr_util
