lib/eventsim/engine.mli:
