(** Structural metrics over topologies, used to validate that the
    reconstructed CAIRN and NET1 satisfy the paper's stated properties
    (connectivity, diameter, node degrees). *)

val hop_distances : Graph.t -> Graph.node -> int array
(** BFS hop counts from a source; unreachable nodes get [max_int]. *)

val diameter : Graph.t -> int
(** Longest shortest-path hop count over all pairs.
    @raise Invalid_argument if the topology is not strongly connected. *)

val out_degree : Graph.t -> Graph.node -> int

val degree_range : Graph.t -> int * int
(** Minimum and maximum out-degree. *)

val is_strongly_connected : Graph.t -> bool

val multipath_pairs : Graph.t -> (Graph.node * Graph.node) list -> int
(** Number of given (src, dst) pairs for which at least two
    link-disjoint first hops lead to [dst] (i.e. removing the first
    link of some shortest path still leaves [dst] reachable). A cheap
    proxy for "alternate paths exist". *)
