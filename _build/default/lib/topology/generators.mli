(** Random topology generators for property-based tests and scaling
    benchmarks. All generators return strongly connected, symmetric
    topologies with uniform or randomized link attributes. *)

val ring :
  n:int -> capacity:float -> prop_delay:float -> Graph.t
(** Bidirectional ring of [n >= 3] routers. *)

val ring_with_chords :
  rng:Mdr_util.Rng.t -> n:int -> chords:int -> capacity:float ->
  prop_delay:float -> Graph.t
(** Ring plus [chords] random non-duplicate chords: connected by
    construction, with tunable path diversity. *)

val random_connected :
  rng:Mdr_util.Rng.t -> n:int -> extra_links:int ->
  ?capacity_range:float * float -> ?delay_range:float * float -> unit -> Graph.t
(** A random spanning tree (guaranteeing connectivity) plus
    [extra_links] random duplex links, with attributes drawn uniformly
    from the given ranges (defaults: 5-10 Mb/s, 1-10 ms). *)

val grid : rows:int -> cols:int -> capacity:float -> prop_delay:float -> Graph.t
(** [rows] x [cols] mesh; rich multipath structure, used by scaling
    benchmarks. *)
