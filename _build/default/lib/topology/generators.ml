module Rng = Mdr_util.Rng

let node_names n = Array.init n (fun i -> "n" ^ string_of_int i)

let ring ~n ~capacity ~prop_delay =
  if n < 3 then invalid_arg "Generators.ring: n < 3";
  let g = Graph.create ~names:(node_names n) in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    Graph.add_link g ~src:i ~dst:j ~capacity ~prop_delay;
    Graph.add_link g ~src:j ~dst:i ~capacity ~prop_delay
  done;
  g

let add_duplex_if_absent g a b ~capacity ~prop_delay =
  if a <> b && Graph.link g ~src:a ~dst:b = None then begin
    Graph.add_link g ~src:a ~dst:b ~capacity ~prop_delay;
    Graph.add_link g ~src:b ~dst:a ~capacity ~prop_delay;
    true
  end
  else false

let ring_with_chords ~rng ~n ~chords ~capacity ~prop_delay =
  let g = ring ~n ~capacity ~prop_delay in
  let added = ref 0 in
  let attempts = ref 0 in
  (* A complete graph bounds the number of chords we can place. *)
  let max_chords = (n * (n - 1) / 2) - n in
  let target = min chords max_chords in
  while !added < target && !attempts < 100 * (target + 1) do
    incr attempts;
    let a = Rng.int rng ~bound:n and b = Rng.int rng ~bound:n in
    if add_duplex_if_absent g a b ~capacity ~prop_delay then incr added
  done;
  g

let random_connected ~rng ~n ~extra_links ?(capacity_range = (5.0e6, 10.0e6))
    ?(delay_range = (0.001, 0.010)) () =
  if n < 2 then invalid_arg "Generators.random_connected: n < 2";
  let g = Graph.create ~names:(node_names n) in
  let lo_c, hi_c = capacity_range and lo_d, hi_d = delay_range in
  let attrs () =
    (Rng.uniform rng ~lo:lo_c ~hi:hi_c, Rng.uniform rng ~lo:lo_d ~hi:hi_d)
  in
  (* Random spanning tree: attach each new node to a uniformly chosen
     earlier node (random recursive tree). *)
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  for k = 1 to n - 1 do
    let parent = order.(Rng.int rng ~bound:k) in
    let capacity, prop_delay = attrs () in
    ignore (add_duplex_if_absent g order.(k) parent ~capacity ~prop_delay)
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_links && !attempts < 100 * (extra_links + 1) do
    incr attempts;
    let a = Rng.int rng ~bound:n and b = Rng.int rng ~bound:n in
    let capacity, prop_delay = attrs () in
    if add_duplex_if_absent g a b ~capacity ~prop_delay then incr added
  done;
  g

let grid ~rows ~cols ~capacity ~prop_delay =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Generators.grid: degenerate dimensions";
  let n = rows * cols in
  let g = Graph.create ~names:(node_names n) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        ignore (add_duplex_if_absent g (id r c) (id r (c + 1)) ~capacity ~prop_delay);
      if r + 1 < rows then
        ignore (add_duplex_if_absent g (id r c) (id (r + 1) c) ~capacity ~prop_delay)
    done
  done;
  g
