lib/topology/cairn.ml: Graph List
