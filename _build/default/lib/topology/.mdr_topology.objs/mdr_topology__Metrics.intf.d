lib/topology/metrics.mli: Graph
