lib/topology/net1.mli: Graph
