lib/topology/net1.ml: Array Graph List
