lib/topology/parser.mli: Graph
