lib/topology/generators.mli: Graph Mdr_util
