lib/topology/parser.ml: Array Buffer Fun Graph Hashtbl List Printf String
