lib/topology/generators.ml: Array Fun Graph Mdr_util
