lib/topology/cairn.mli: Graph
