lib/topology/metrics.ml: Array Graph List Queue
