let mb = 1.0e6

let duplex_links =
  (* Two horizontal paths 0-1-2-3-4 and 5-6-7-8-9, vertical rungs, and
     four chords that lift every degree into [3, 5] while keeping the
     diameter at four. All links 10 Mb/s. *)
  [
    (0, 1); (1, 2); (2, 3); (3, 4);
    (5, 6); (6, 7); (7, 8); (8, 9);
    (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    (0, 6); (4, 8); (5, 1); (9, 3);
  ]

let topology () =
  let names = Array.init 10 string_of_int in
  let g = Graph.create ~names in
  let add (a, b) =
    Graph.add_duplex g (string_of_int a) (string_of_int b) ~capacity:(10.0 *. mb)
      ~prop_delay:0.002
  in
  List.iter add duplex_links;
  g

let flow_pairs _g =
  [ (9, 2); (8, 3); (7, 0); (6, 1); (5, 8); (4, 1); (3, 8); (2, 9); (1, 6); (0, 7) ]
