(** Reconstruction of the CAIRN research backbone used in the paper's
    Figure 8.

    The paper states that only CAIRN's *connectivity* matters ("its
    topology as used differs from the real network in the capacities
    and propagation delays"), and caps link capacities at 10 Mb/s. The
    figure's adjacency did not survive the source text, so this module
    rebuilds a CAIRN-like backbone over the routers named in the paper:
    a Bay-Area cluster, a Southern-California cluster, a
    Washington-DC / east-coast cluster, two transcontinental trunks,
    and a transatlantic spur to UCL. All eleven source-destination
    pairs used in the simulations exist verbatim. *)

val topology : unit -> Graph.t

val flow_pairs : Graph.t -> (Graph.node * Graph.node) list
(** The paper's eleven flows: (lbl, mci-r), (netstar, isi-e),
    (isi, darpa), (parc, sdsc), (sri, mit), (tioc, sdsc), (mit, sri),
    (isi-e, netstar), (sdsc, parc), (mci-r, tioc), (darpa, isi). *)
