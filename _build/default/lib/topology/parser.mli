(** Plain-text topology and workload files, so experiments can run on
    user-supplied networks (`mdrsim custom --topo FILE --flows FILE`).

    Topology format — one directive per line, [#] comments, blank lines
    ignored:

    {v
    # routers
    node a
    node b
    node c
    # duplex links: capacity in Mb/s, propagation delay in ms
    link a b 10 1.5
    link b c 10 2.0
    # one-directional link (different attributes per direction)
    oneway c a 5 3.0
    v}

    Flow format: [flow <src> <dst> <rate_mbps>] lines with the same
    comment rules. *)

exception Parse_error of { line : int; message : string }

val topology_of_string : string -> Graph.t
val topology_of_file : string -> Graph.t

val flows_of_string : Graph.t -> string -> (int * int * float) list
(** (src, dst, rate in bits/s), resolved against the topology's router
    names. *)

val flows_of_file : Graph.t -> string -> (int * int * float) list

val to_string : Graph.t -> string
(** Render a topology back into the file format (duplex links with
    equal attributes are merged into [link] lines). *)

val to_dot : Graph.t -> string
(** Graphviz rendering, one edge per duplex pair, labelled with
    capacity and delay. *)
