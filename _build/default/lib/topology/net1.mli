(** The contrived NET1 topology of the paper's Figure 8.

    The paper specifies its properties rather than its exact drawing:
    ten routers (flows run between ids 0-9), diameter four, node
    degrees between 3 and 5, connectivity "high enough to ensure the
    existence of multiple paths, and small enough to prevent a large
    number of one-hop paths". This construction — two five-node paths
    braced by rungs and end chords — satisfies all of these, which
    [test_topology] asserts. *)

val topology : unit -> Graph.t

val flow_pairs : Graph.t -> (Graph.node * Graph.node) list
(** The paper's ten flows: (9,2), (8,3), (7,0), (6,1), (5,8), (4,1),
    (3,8), (2,9), (1,6), (0,7). *)
