let names =
  [|
    (* west *)
    "lbl"; "ucb"; "parc"; "sri"; "ucsc"; "cisco-w"; "ucla"; "isi"; "sdsc"; "saic";
    (* midwest / east *)
    "anl"; "netstar"; "tioc"; "cisco-e"; "mit"; "bbn"; "isi-e"; "bell"; "mci-r";
    "tis"; "nasa"; "nrl-v6"; "udel"; "darpa"; "cmu";
    (* europe *)
    "ucl";
  |]

let mb = 1.0e6

(* (a, b, capacity Mb/s, propagation delay ms) — duplex. *)
let duplex_links =
  [
    (* Bay-Area ring and south-bay loop *)
    ("lbl", "ucb", 10.0, 1.0);
    ("ucb", "parc", 10.0, 1.5);
    ("parc", "sri", 10.0, 1.0);
    ("sri", "lbl", 10.0, 1.0);
    ("sri", "ucsc", 5.0, 1.5);
    ("ucsc", "cisco-w", 5.0, 1.0);
    ("cisco-w", "parc", 10.0, 1.5);
    (* toward Los Angeles / San Diego *)
    ("sri", "isi", 10.0, 2.5);
    ("cisco-w", "ucla", 10.0, 2.5);
    ("ucla", "isi", 10.0, 1.0);
    ("isi", "sdsc", 10.0, 1.5);
    ("ucla", "sdsc", 10.0, 1.5);
    ("sdsc", "saic", 5.0, 1.0);
    (* transcontinental trunks *)
    ("isi", "mci-r", 10.0, 4.0);
    ("lbl", "anl", 10.0, 3.5);
    ("anl", "mci-r", 10.0, 2.5);
    (* Washington DC ring *)
    ("mci-r", "darpa", 10.0, 1.0);
    ("darpa", "isi-e", 10.0, 1.0);
    ("isi-e", "nrl-v6", 5.0, 1.0);
    ("nrl-v6", "nasa", 5.0, 1.5);
    ("nasa", "tis", 10.0, 1.5);
    ("tis", "mci-r", 10.0, 1.0);
    (* northeast corridor *)
    ("tis", "udel", 10.0, 1.0);
    ("udel", "bell", 10.0, 1.0);
    ("bell", "bbn", 10.0, 1.5);
    ("bbn", "mit", 10.0, 1.0);
    ("mit", "cisco-e", 10.0, 1.0);
    ("cisco-e", "bbn", 10.0, 1.0);
    (* midwest spurs *)
    ("cmu", "darpa", 10.0, 1.5);
    ("cmu", "anl", 10.0, 2.0);
    ("netstar", "anl", 10.0, 2.0);
    ("netstar", "tioc", 10.0, 2.0);
    ("tioc", "mci-r", 10.0, 2.0);
    ("tioc", "bell", 10.0, 2.0);
    (* transatlantic *)
    ("ucl", "isi-e", 5.0, 8.0);
  ]

let topology () =
  let g = Graph.create ~names in
  let add (a, b, cap_mb, delay_ms) =
    Graph.add_duplex g a b ~capacity:(cap_mb *. mb) ~prop_delay:(delay_ms /. 1000.0)
  in
  List.iter add duplex_links;
  g

let flow_pair_names =
  [
    ("lbl", "mci-r");
    ("netstar", "isi-e");
    ("isi", "darpa");
    ("parc", "sdsc");
    ("sri", "mit");
    ("tioc", "sdsc");
    ("mit", "sri");
    ("isi-e", "netstar");
    ("sdsc", "parc");
    ("mci-r", "tioc");
    ("darpa", "isi");
  ]

let flow_pairs g =
  List.map
    (fun (a, b) -> (Graph.node_of_name g a, Graph.node_of_name g b))
    flow_pair_names
