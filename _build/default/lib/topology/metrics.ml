let hop_distances g src =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let advance v =
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v q
      end
    in
    List.iter advance (Graph.neighbors g u)
  done;
  dist

let is_strongly_connected g =
  let n = Graph.node_count g in
  n = 0
  || List.for_all
       (fun src ->
         let dist = hop_distances g src in
         Array.for_all (fun d -> d <> max_int) dist)
       (Graph.nodes g)

let diameter g =
  if not (is_strongly_connected g) then
    invalid_arg "Metrics.diameter: topology not strongly connected";
  List.fold_left
    (fun acc src ->
      let dist = hop_distances g src in
      Array.fold_left max acc dist)
    0 (Graph.nodes g)

let out_degree g v = List.length (Graph.neighbors g v)

let degree_range g =
  List.fold_left
    (fun (lo, hi) v ->
      let d = out_degree g v in
      (min lo d, max hi d))
    (max_int, 0) (Graph.nodes g)

let reachable_without g ~banned_src ~banned_dst ~from ~target =
  (* BFS that skips the directed link banned_src -> banned_dst. *)
  let n = Graph.node_count g in
  let seen = Array.make n false in
  seen.(from) <- true;
  let q = Queue.create () in
  Queue.add from q;
  let found = ref (from = target) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    let advance v =
      if not (u = banned_src && v = banned_dst) && not seen.(v) then begin
        seen.(v) <- true;
        if v = target then found := true;
        Queue.add v q
      end
    in
    List.iter advance (Graph.neighbors g u)
  done;
  !found

let multipath_pairs g pairs =
  let has_alternate (src, dst) =
    if src = dst then false
    else
      (* First hop of some shortest path: any neighbor strictly closer. *)
      let dist = hop_distances g dst in
      (* dist is from dst; with symmetric topologies this equals
         distance to dst. Guard for asymmetric graphs. *)
      match
        List.find_opt (fun v -> dist.(v) < dist.(src)) (Graph.neighbors g src)
      with
      | None -> false
      | Some hop -> reachable_without g ~banned_src:src ~banned_dst:hop ~from:src ~target:dst
  in
  List.length (List.filter has_alternate pairs)
