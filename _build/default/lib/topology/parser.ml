exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let tokens_of_line raw =
  let without_comment =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  String.split_on_char ' ' without_comment
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let numbered_lines text =
  String.split_on_char '\n' text |> List.mapi (fun i l -> (i + 1, l))

let parse_float ~line what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "invalid %s %S" what s)

let topology_of_string text =
  let lines = numbered_lines text in
  (* First pass: router names, in declaration order. *)
  let names = ref [] in
  List.iter
    (fun (line, raw) ->
      match tokens_of_line raw with
      | [ "node"; name ] ->
        if List.mem name !names then fail line ("duplicate node " ^ name);
        names := name :: !names
      | "node" :: _ -> fail line "node takes exactly one name"
      | _ -> ())
    lines;
  let g = Graph.create ~names:(Array.of_list (List.rev !names)) in
  let resolve line name =
    try Graph.node_of_name g name
    with Not_found -> fail line ("unknown node " ^ name)
  in
  (* Second pass: links. *)
  List.iter
    (fun (line, raw) ->
      match tokens_of_line raw with
      | [] | [ "node"; _ ] -> ()
      | [ "link"; a; b; cap; delay ] ->
        let capacity = parse_float ~line "capacity" cap *. 1.0e6 in
        let prop_delay = parse_float ~line "delay" delay /. 1000.0 in
        let va = resolve line a and vb = resolve line b in
        (try
           Graph.add_link g ~src:va ~dst:vb ~capacity ~prop_delay;
           Graph.add_link g ~src:vb ~dst:va ~capacity ~prop_delay
         with Invalid_argument msg -> fail line msg)
      | [ "oneway"; a; b; cap; delay ] ->
        let capacity = parse_float ~line "capacity" cap *. 1.0e6 in
        let prop_delay = parse_float ~line "delay" delay /. 1000.0 in
        (try
           Graph.add_link g ~src:(resolve line a) ~dst:(resolve line b) ~capacity
             ~prop_delay
         with Invalid_argument msg -> fail line msg)
      | directive :: _ -> fail line ("unknown directive " ^ directive))
    lines;
  g

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let topology_of_file path = topology_of_string (read_file path)

let flows_of_string g text =
  let resolve line name =
    try Graph.node_of_name g name
    with Not_found -> fail line ("unknown node " ^ name)
  in
  List.filter_map
    (fun (line, raw) ->
      match tokens_of_line raw with
      | [] -> None
      | [ "flow"; src; dst; rate ] ->
        let rate_bits = parse_float ~line "rate" rate *. 1.0e6 in
        if rate_bits <= 0.0 then fail line "flow rate must be positive";
        let s = resolve line src and d = resolve line dst in
        if s = d then fail line "flow source equals destination";
        Some (s, d, rate_bits)
      | directive :: _ -> fail line ("unknown directive " ^ directive))
    (numbered_lines text)

let flows_of_file g path = flows_of_string g (read_file path)

(* Duplex pairs with equal attributes collapse into one [link] line. *)
let classify_links g =
  let seen = Hashtbl.create 32 in
  Graph.fold_links g ~init:([], []) ~f:(fun (duplex, oneway) l ->
      if Hashtbl.mem seen (l.Graph.src, l.Graph.dst) then (duplex, oneway)
      else
        match Graph.link g ~src:l.dst ~dst:l.src with
        | Some back when back.capacity = l.capacity && back.prop_delay = l.prop_delay
          ->
          Hashtbl.replace seen (l.dst, l.src) ();
          (l :: duplex, oneway)
        | Some _ | None -> (duplex, l :: oneway))

let to_string g =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "node %s\n" (Graph.name g v)))
    (Graph.nodes g);
  let duplex, oneway = classify_links g in
  let render keyword (l : Graph.link) =
    Buffer.add_string buf
      (Printf.sprintf "%s %s %s %g %g\n" keyword (Graph.name g l.src)
         (Graph.name g l.dst) (l.capacity /. 1.0e6) (l.prop_delay *. 1000.0))
  in
  List.iter (render "link") (List.rev duplex);
  List.iter (render "oneway") (List.rev oneway);
  Buffer.contents buf

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph topology {\n  node [shape=ellipse];\n";
  let duplex, oneway = classify_links g in
  let label (l : Graph.link) =
    Printf.sprintf "%gMb/s %gms" (l.capacity /. 1.0e6) (l.prop_delay *. 1000.0)
  in
  List.iter
    (fun (l : Graph.link) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\" [label=\"%s\"];\n" (Graph.name g l.src)
           (Graph.name g l.dst) (label l)))
    (List.rev duplex);
  List.iter
    (fun (l : Graph.link) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\" [dir=forward, label=\"%s\"];\n"
           (Graph.name g l.src) (Graph.name g l.dst) (label l)))
    (List.rev oneway);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
