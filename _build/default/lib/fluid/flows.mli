(** Traffic flows induced by a routing-parameter table.

    Solves the conservation equations (paper Eqs. 1-2): per
    destination, node flow [t_i = r_i + sum over predecessors k of
    t_k * phi_k(i)], then link flow [f_(i,k) = sum over destinations of
    t_i * phi_i(k)]. Because every scheme keeps the successor graph
    acyclic, the system is solved exactly in topological order; a
    damped iterative fallback exists for deliberately cyclic inputs in
    tests. *)

exception Cyclic_routing of int
(** Raised with the offending destination when the successor graph has
    a cycle and no fallback was requested. *)

type t = {
  node_flows : float array array;
      (** [node_flows.(i).(j)]: traffic for destination [j] passing
          through router [i] (the paper's t_ij), packets/s. *)
  link_flows : (int * int, float) Hashtbl.t;
      (** flow on directed link (src, dst), packets/s (the paper's
          f_ik). Links with zero flow may be absent. *)
}

val compute : ?iterative_fallback:bool -> Params.t -> Traffic.t -> t
(** [iterative_fallback] (default false) solves cyclic destinations
    with damped fixed-point iteration instead of raising. *)

val link_flow : t -> src:int -> dst:int -> float

val max_utilization : Params.t -> t -> packet_size:float -> float
(** Highest link utilisation in packets/s over the topology's
    capacities converted with [packet_size]. *)

val topological_order : Params.t -> dst:int -> int list
(** Routers ordered so every router precedes its successors toward
    [dst] (the destination last if reachable).
    @raise Cyclic_routing if SG_dst has a cycle. *)
