type flow = { src : int; dst : int; rate : float }

type t = { n : int; r : float array array }

let empty ~n = { n; r = Array.make_matrix n n 0.0 }

let add t { src; dst; rate } =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Traffic: node out of range";
  if src = dst then invalid_arg "Traffic: self-flow";
  if rate < 0.0 then invalid_arg "Traffic: negative rate";
  t.r.(src).(dst) <- t.r.(src).(dst) +. rate

let of_flows ~n flows =
  let t = empty ~n in
  List.iter (add t) flows;
  t

let of_pairs_bits ~n ~packet_size ~rate_bits pairs =
  if packet_size <= 0.0 then invalid_arg "Traffic.of_pairs_bits: packet_size <= 0";
  let flows =
    List.mapi
      (fun i (src, dst) -> { src; dst; rate = rate_bits i /. packet_size })
      pairs
  in
  of_flows ~n flows

let node_count t = t.n

let rate t ~src ~dst = t.r.(src).(dst)

let total_rate t =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 t.r

let flows t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      if t.r.(src).(dst) > 0.0 then
        acc := { src; dst; rate = t.r.(src).(dst) } :: !acc
    done
  done;
  !acc

let destinations t =
  List.filter
    (fun dst -> List.exists (fun src -> t.r.(src).(dst) > 0.0) (List.init t.n Fun.id))
    (List.init t.n Fun.id)

let scale t k =
  if k < 0.0 then invalid_arg "Traffic.scale: negative factor";
  { n = t.n; r = Array.map (Array.map (fun x -> x *. k)) t.r }
