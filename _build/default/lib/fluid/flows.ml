module Graph = Mdr_topology.Graph

exception Cyclic_routing of int

type t = {
  node_flows : float array array;
  link_flows : (int * int, float) Hashtbl.t;
}

let topological_order params ~dst =
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  (* Kahn's algorithm over SG_dst: edge i -> k when phi_{i,dst,k} > 0. *)
  let indegree = Array.make n 0 in
  let succs = Array.init n (fun node -> Params.successors params ~node ~dst) in
  Array.iter (List.iter (fun k -> indegree.(k) <- indegree.(k) + 1)) succs;
  let ready = Queue.create () in
  for node = 0 to n - 1 do
    if indegree.(node) = 0 then Queue.add node ready
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty ready) do
    let node = Queue.pop ready in
    order := node :: !order;
    incr emitted;
    let relax k =
      indegree.(k) <- indegree.(k) - 1;
      if indegree.(k) = 0 then Queue.add k ready
    in
    List.iter relax succs.(node)
  done;
  if !emitted <> n then raise (Cyclic_routing dst);
  List.rev !order

let add_link_flow table ~src ~dst amount =
  let key = (src, dst) in
  let current = try Hashtbl.find table key with Not_found -> 0.0 in
  Hashtbl.replace table key (current +. amount)

let solve_destination_exact params traffic node_flows link_flows ~dst =
  let order = topological_order params ~dst in
  let propagate node =
    if node <> dst then begin
      let t_node = node_flows.(node).(dst) +. Traffic.rate traffic ~src:node ~dst in
      node_flows.(node).(dst) <- t_node;
      if t_node > 0.0 then
        List.iter
          (fun (via, frac) ->
            let share = t_node *. frac in
            node_flows.(via).(dst) <- node_flows.(via).(dst) +. (if via = dst then 0.0 else share);
            add_link_flow link_flows ~src:node ~dst:via share)
          (Params.fractions params ~node ~dst)
    end
  in
  List.iter propagate order

let solve_destination_iterative params traffic node_flows link_flows ~dst =
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  let t_cur = Array.make n 0.0 in
  let t_next = Array.make n 0.0 in
  let max_iters = 10_000 and eps = 1e-9 in
  let rec iterate iter =
    for i = 0 to n - 1 do
      t_next.(i) <- (if i = dst then 0.0 else Traffic.rate traffic ~src:i ~dst)
    done;
    for k = 0 to n - 1 do
      if k <> dst && t_cur.(k) > 0.0 then
        List.iter
          (fun (via, frac) ->
            if via <> dst then t_next.(via) <- t_next.(via) +. (t_cur.(k) *. frac))
          (Params.fractions params ~node:k ~dst)
    done;
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      delta := Float.max !delta (Float.abs (t_next.(i) -. t_cur.(i)));
      t_cur.(i) <- t_next.(i)
    done;
    if !delta > eps && iter < max_iters then iterate (iter + 1)
  in
  iterate 0;
  for node = 0 to n - 1 do
    if node <> dst then begin
      node_flows.(node).(dst) <- t_cur.(node);
      if t_cur.(node) > 0.0 then
        List.iter
          (fun (via, frac) ->
            add_link_flow link_flows ~src:node ~dst:via (t_cur.(node) *. frac))
          (Params.fractions params ~node ~dst)
    end
  done

let compute ?(iterative_fallback = false) params traffic =
  let topo = Params.topology params in
  let n = Graph.node_count topo in
  if Traffic.node_count traffic <> n then
    invalid_arg "Flows.compute: traffic/topology node count mismatch";
  let node_flows = Array.make_matrix n n 0.0 in
  let link_flows = Hashtbl.create (Graph.link_count topo) in
  let solve dst =
    try solve_destination_exact params traffic node_flows link_flows ~dst
    with Cyclic_routing _ when iterative_fallback ->
      (* Exact pass may have left partial state; clear this column. *)
      for i = 0 to n - 1 do
        node_flows.(i).(dst) <- 0.0
      done;
      solve_destination_iterative params traffic node_flows link_flows ~dst
  in
  List.iter solve (Traffic.destinations traffic);
  { node_flows; link_flows }

let link_flow t ~src ~dst =
  try Hashtbl.find t.link_flows (src, dst) with Not_found -> 0.0

let max_utilization params t ~packet_size =
  let topo = Params.topology params in
  Graph.fold_links topo ~init:0.0 ~f:(fun acc l ->
      let f = link_flow t ~src:l.src ~dst:l.dst in
      let cap_pkts = l.capacity /. packet_size in
      Float.max acc (f /. cap_pkts))
