lib/fluid/evaluate.mli: Delay Flows Hashtbl Mdr_topology Params Traffic
