lib/fluid/params.ml: Array Float Hashtbl List Mdr_topology Printf
