lib/fluid/flows.mli: Hashtbl Params Traffic
