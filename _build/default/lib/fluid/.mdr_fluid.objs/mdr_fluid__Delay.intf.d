lib/fluid/delay.mli: Mdr_topology
