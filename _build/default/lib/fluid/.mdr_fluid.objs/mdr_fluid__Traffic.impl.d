lib/fluid/traffic.ml: Array Fun List
