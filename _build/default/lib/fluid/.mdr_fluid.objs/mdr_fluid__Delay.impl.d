lib/fluid/delay.ml: Float Mdr_topology
