lib/fluid/evaluate.ml: Array Delay Flows Hashtbl List Mdr_topology Params Printf Traffic
