lib/fluid/flows.ml: Array Float Hashtbl List Mdr_topology Params Queue Traffic
