lib/fluid/traffic.mli: Mdr_topology
