lib/fluid/params.mli: Mdr_topology
