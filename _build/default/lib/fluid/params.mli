(** Routing parameter tables: the fractions phi_{i,dst,k} of router
    [i]'s traffic for destination [dst] forwarded over link (i, k)
    (paper Section 2.1, Property 1).

    Property 1 — phi is zero on non-links and at the destination,
    non-negative, and sums to one over the successor set — is enforced
    at every mutation; [check_property1] re-validates globally and is
    exercised by the test-suite after every heuristic step. *)

type t

val create : Mdr_topology.Graph.t -> t
(** All fractions zero (no destination routed yet). *)

val copy : t -> t

val assign : t -> from_:t -> unit
(** Overwrite every fraction in the first table with those of
    [from_]; both must be built over the same topology. *)

val topology : t -> Mdr_topology.Graph.t

val neighbor_array : t -> Mdr_topology.Graph.node -> Mdr_topology.Graph.node array
(** Out-neighbors of a node in fixed order; fraction vectors index into
    this array. *)

val fraction : t -> node:int -> dst:int -> via:int -> float
(** 0 when [via] is not a neighbor of [node]. *)

val fractions : t -> node:int -> dst:int -> (Mdr_topology.Graph.node * float) list
(** Neighbors with non-zero fraction. *)

val set_fractions : t -> node:int -> dst:int -> (Mdr_topology.Graph.node * float) list -> unit
(** Replace the distribution for (node, dst). The list must mention
    only neighbors of [node], with non-negative entries summing to 1
    (within 1e-9) — or be empty to clear the entry.
    @raise Invalid_argument otherwise. *)

val set_single : t -> node:int -> dst:int -> via:Mdr_topology.Graph.node -> unit
(** Route (node, dst) entirely via one neighbor. *)

val clear : t -> node:int -> dst:int -> unit

val successors : t -> node:int -> dst:int -> Mdr_topology.Graph.node list
(** Neighbors carrying a positive fraction (the successor set S,
    Eq. 9). *)

val is_routed : t -> node:int -> dst:int -> bool

val validate : t -> (unit, string) result
(** Check Property 1 for every routed (node, dst) pair. *)

val successor_graph_is_acyclic : t -> dst:int -> bool
(** Whether the routing graph SG_dst implied by the successor sets is
    a DAG (paper: required for minimum delays to be approached). *)
