(** Input traffic: the matrix r of expected rates entering the network
    at router [src] destined for router [dst] (paper Section 2.1).

    Rates are in packets per second throughout the fluid model; helpers
    convert from bits per second given a mean packet size. *)

type flow = { src : Mdr_topology.Graph.node; dst : Mdr_topology.Graph.node; rate : float }

type t

val empty : n:int -> t

val of_flows : n:int -> flow list -> t
(** Rates of flows sharing (src, dst) accumulate.
    @raise Invalid_argument on self-flows, negative rates or nodes
    outside [0, n). *)

val of_pairs_bits :
  n:int -> packet_size:float -> rate_bits:(int -> float) ->
  (Mdr_topology.Graph.node * Mdr_topology.Graph.node) list -> t
(** Build from (src, dst) pairs where the i-th pair (0-based) offers
    [rate_bits i] bits/s, converted with the mean [packet_size]. *)

val node_count : t -> int
val rate : t -> src:int -> dst:int -> float
val total_rate : t -> float
val flows : t -> flow list
(** Non-zero entries, ordered by (src, dst). *)

val destinations : t -> int list
(** Destinations with at least one non-zero source. *)

val scale : t -> float -> t
(** Multiply every rate; used for load sweeps. *)
