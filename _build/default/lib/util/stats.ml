module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n

  let mean t = if t.n = 0 then 0.0 else t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)

  let min t = t.min

  let max t = t.max

  let reset t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity
end

module Timed = struct
  type t = {
    mutable window_start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable integral : float;
  }

  let create ?(start = 0.0) () =
    { window_start = start; last_time = start; last_value = 0.0; integral = 0.0 }

  let update t ~now ~value =
    if now < t.last_time then invalid_arg "Stats.Timed.update: time went backwards";
    t.integral <- t.integral +. (t.last_value *. (now -. t.last_time));
    t.last_time <- now;
    t.last_value <- value

  let average t ~now =
    let span = now -. t.window_start in
    if span <= 0.0 then t.last_value
    else
      let integral = t.integral +. (t.last_value *. (now -. t.last_time)) in
      integral /. span

  let reset t ~now =
    t.window_start <- now;
    t.last_time <- now;
    t.integral <- 0.0
end

let mean_of_list xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs ~p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    arr.(idx)
