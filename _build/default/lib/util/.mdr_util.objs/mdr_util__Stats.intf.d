lib/util/stats.mli:
