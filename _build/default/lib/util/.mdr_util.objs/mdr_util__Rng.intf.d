lib/util/rng.mli:
