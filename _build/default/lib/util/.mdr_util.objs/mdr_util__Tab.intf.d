lib/util/tab.mli:
