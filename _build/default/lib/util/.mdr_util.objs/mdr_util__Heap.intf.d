lib/util/heap.mli:
