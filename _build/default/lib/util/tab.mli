(** Plain-text tables and series, used by the benchmark harness to
    print figure reproductions in a stable, diffable format. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] is an aligned, pipe-separated text table.
    [align] defaults to [Left] for the first column and [Right] for the
    rest. Rows shorter than the header are padded with empty cells. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering ([decimals] defaults to 3); infinities render
    as ["inf"]. *)

val series :
  title:string -> x_label:string -> columns:string list ->
  (string * float list) list -> string
(** [series ~title ~x_label ~columns rows] renders one figure: each row
    is an x-axis point (e.g. a flow id) with one value per column
    (e.g. OPT / MP / SP delays). *)
