(** Imperative binary min-heap with user-supplied ordering.

    Used as the priority queue of the discrete-event engine and of
    Dijkstra's algorithm. Elements are compared by [cmp] given at
    creation; ties are broken by insertion order, which makes
    simulations deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** [add h x] inserts [x]. O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. O(log n). *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; mainly for tests. O(n log n). *)
