(** Online statistics.

    [Welford] accumulates mean and variance in one pass; [Timed]
    accumulates time-weighted averages (e.g. queue occupancy over
    simulated time); [Window] keeps a sliding accumulation that can be
    sampled and reset at measurement-interval boundaries, as the
    protocol does every [T_l] / [T_s] seconds. *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val reset : t -> unit
end

module Timed : sig
  type t

  val create : ?start:float -> unit -> t

  val update : t -> now:float -> value:float -> unit
  (** Record that the tracked quantity has held its previous value up
      to [now] and takes [value] from [now] on. [now] must be
      non-decreasing. *)

  val average : t -> now:float -> float
  (** Time-weighted average over [start, now]. *)

  val reset : t -> now:float -> unit
  (** Restart the averaging window at [now], keeping the current value. *)
end

val mean_of_list : float list -> float
val percentile : float list -> p:float -> float
(** Nearest-rank percentile; [p] in [0,100]. Raises on empty input. *)
