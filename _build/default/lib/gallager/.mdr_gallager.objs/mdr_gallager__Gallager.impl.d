lib/gallager/gallager.ml: Array Float Hashtbl List Mdr_fluid Mdr_routing Mdr_topology
