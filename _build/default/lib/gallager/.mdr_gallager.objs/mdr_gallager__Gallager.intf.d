lib/gallager/gallager.mli: Mdr_fluid Mdr_topology
