(** OPT — Gallager's distributed minimum-delay routing algorithm
    (paper Section 2.2), run in the fluid model as the lower-bound
    baseline.

    Each iteration computes the flows induced by the current routing
    parameters, the marginal link costs l_ik = D'_ik(f_ik), and the
    marginal distances delta_ij (Eq. 4); it then shifts, at every
    router and for every destination, a step-size-(eta) amount of
    traffic from neighbors with large l_ik + delta_kj toward the best
    neighbor (Eq. 6). Gallager's blocking rule keeps every successor
    graph acyclic: flow may only be *added* toward a neighbor whose
    marginal distance is strictly smaller and which is not "improper"
    (carrying, directly or downstream, an uphill routed link).

    The global step size [eta] is exactly the constant the paper
    criticises: too small converges slowly, too large diverges — the
    [history] field feeds the eta-sweep ablation bench. *)

type result = {
  params : Mdr_fluid.Params.t;  (** converged routing parameters *)
  flows : Mdr_fluid.Flows.t;
  total_cost : float;  (** D_T (Eq. 3) *)
  avg_delay : float;  (** seconds per packet *)
  iterations : int;
  history : float list;  (** D_T after each iteration, oldest first *)
  converged : bool;  (** relative improvement fell below [tol] *)
}

val spf_params :
  Mdr_fluid.Evaluate.model -> Mdr_topology.Graph.t -> Mdr_fluid.Params.t
(** Single-path routing parameters along the shortest-path trees under
    zero-flow marginal costs: the initial condition for OPT and the
    static-SPF reference. *)

val solve :
  ?eta:float ->
  ?adaptive:bool ->
  ?second_order:bool ->
  ?max_iters:int ->
  ?tol:float ->
  ?init:Mdr_fluid.Params.t ->
  Mdr_fluid.Evaluate.model ->
  Mdr_topology.Graph.t ->
  Mdr_fluid.Traffic.t ->
  result
(** Defaults: [eta = 1e4], [adaptive = true], [second_order = false],
    [max_iters = 2000],
    [tol = 1e-9]. With [adaptive], the step size is halved whenever an
    iteration increases D_T, which makes the gradient projection a
    descent method regardless of the initial [eta]; [adaptive:false]
    reproduces Gallager's fixed global step — including its
    oscillation/divergence for large [eta] (the ABL-ETA bench).
    [second_order] scales steps by the traded links' D'' — the
    Bertsekas-Gallager acceleration the paper's related work cites —
    making a dimensionless [eta] around 1 appropriate for any input.
    [init] defaults to {!spf_params}; it must route every (router,
    destination) pair and be loop-free. *)

val check_optimality :
  Mdr_fluid.Evaluate.model -> Mdr_fluid.Params.t -> Mdr_fluid.Flows.t ->
  Mdr_fluid.Traffic.t -> tolerance:float -> bool
(** Gallager's conditions (Eqs. 10-12) within [tolerance]: over each
    router's successor set the values l_ik + delta_kj are equal, and no
    non-successor offers a strictly smaller value. *)
