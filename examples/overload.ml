(* Overload walkthrough: push the CAIRN workload past its feasible
   envelope and watch every layer degrade gracefully instead of
   diverging — demand is shed (never silently mis-solved), costs stay
   finite past the knee, and cost-change damping keeps the control
   plane from flapping under the churn.

   Run with: dune exec examples/overload.exe *)

module Workload = Mdr_experiments.Workload
module Traffic = Mdr_fluid.Traffic
module Feasibility = Mdr_fluid.Feasibility
module Overload = Mdr_faults.Overload

let () =
  let w = Workload.cairn ~load:1.0 in
  let base = Workload.traffic w in
  let packet_size = Workload.packet_size in
  (* The largest uniform load multiplier the min-cut admits. Admissible
     fractions scale as 1/load but are capped at 1, so probe at a load
     that is certainly infeasible and scale back. *)
  let probe = 16.0 in
  let frac_probe =
    (Feasibility.report w.Workload.topo ~packet_size (Traffic.scale base probe))
      .Feasibility.fraction
  in
  let envelope = probe *. frac_probe in
  Printf.printf "CAIRN feasible envelope: %.2fx the base workload\n\n" envelope;
  let rows =
    List.map
      (fun mult ->
        let offered = Traffic.scale base (mult *. envelope) in
        let r =
          Overload.audit ~topo:w.Workload.topo ~packet_size ~base ~offered ()
        in
        (Printf.sprintf "%.1fx" mult, r))
      [ 0.8; 1.2 ]
  in
  print_string (Overload.table rows);
  print_newline ();
  print_string (Overload.slo_table rows);
  let ok =
    List.for_all
      (fun (_, (r : Overload.report)) ->
        r.Overload.fluid.Overload.costs_finite
        && r.Overload.undamped.Overload.lfi_violations = 0
        && r.Overload.damped.Overload.lfi_violations = 0
        && r.Overload.undamped.Overload.converged
        && r.Overload.damped.Overload.converged)
      rows
  in
  let overloaded_shed =
    List.exists
      (fun (label, (r : Overload.report)) ->
        String.equal label "1.2x" && r.Overload.fluid.Overload.degraded)
      rows
  in
  Printf.printf "\nall layers degraded gracefully: %b\n" (ok && overloaded_shed);
  if not (ok && overloaded_shed) then exit 1
