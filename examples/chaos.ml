(* Chaos walkthrough: one scripted fault storm on CAIRN — a lossy,
   duplicating, reordering control channel plus a trunk flap, a router
   crash/restart and a partition/heal — run against both MPDA and DV,
   with loop-freedom and the LFI conditions audited after every
   processed protocol event.

   Run with: dune exec examples/chaos.exe *)

module Graph = Mdr_topology.Graph
module Channel = Mdr_faults.Channel
module Campaign = Mdr_faults.Campaign

let () =
  let topo = Mdr_topology.Cairn.topology () in
  let node = Graph.node_of_name topo in
  let isi = node "isi" and mci = node "mci-r" and sri = node "sri" in
  let plan =
    {
      Campaign.faults =
        [
          Campaign.Flap { a = isi; b = mci; at = 2.0; restore_at = 6.0 };
          Campaign.Crash { node = sri; at = 8.0; restart_at = 12.0 };
          Campaign.Partition { group = [ isi; sri ]; at = 14.0; heal_at = 18.0 };
        ];
      channel =
        Channel.all
          [ Channel.drop ~p:0.2 (); Channel.duplicate ~p:0.05 (); Channel.jitter ~max_delay:0.01 () ];
      duration = 20.0;
    }
  in
  Printf.printf "fault schedule on CAIRN (control channel: %s):\n"
    (Channel.describe plan.Campaign.channel);
  List.iter
    (fun f -> Printf.printf "  %s\n" (Campaign.describe_fault topo f))
    plan.Campaign.faults;
  print_newline ();

  let mpda = Campaign.run_mpda ~topo ~seed:42 plan in
  let dv = Campaign.run_dv ~topo ~seed:42 plan in
  print_string (Campaign.summary_table [ ("MPDA", [ mpda ]); ("DV", [ dv ]) ]);

  let clean (m : Campaign.metrics) =
    m.loop_violations = 0 && m.lfi_violations = 0 && m.converged
  in
  Printf.printf "\nboth protocols rode out the storm: %b\n" (clean mpda && clean dv);
  if not (clean mpda && clean dv) then exit 1
