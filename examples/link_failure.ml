(* Link failure: watch MPDA reconverge — loop-free and LFI-clean at
   every instant — when a CAIRN transcontinental trunk fails and
   recovers, first with the paper's oracle detection (both endpoints
   told instantly), then with hello-based detection where the loss
   must be *inferred* from missed hellos and the detection latency is
   a measured quantity.

   Run with: dune exec examples/link_failure.exe *)

module Graph = Mdr_topology.Graph
module Network = Mdr_routing.Network
module Router = Mdr_routing.Router
module Harness = Mdr_routing.Harness
module Hello = Mdr_routing.Hello
module Engine = Mdr_eventsim.Engine
module Recovery = Mdr_faults.Recovery
module Tab = Mdr_util.Tab

type audit = {
  label : string;
  checks : int;
  loop_violations : int;
  lfi_violations : int;
  messages : int;
  detection : Recovery.detection_report;
}

let run_trunk_flap ~detection ~label =
  let topo = Mdr_topology.Cairn.topology () in
  let cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0) in
  let checks = ref 0 and loop_violations = ref 0 and lfi_violations = ref 0 in
  let observer net =
    incr checks;
    if not (Network.check_loop_free net) then incr loop_violations;
    if not (Network.check_lfi net) then incr lfi_violations
  in
  let net = Network.create ~detection ~seed:7 ~observer ~topo ~cost () in
  let until = 60.0 in
  Network.run ~until net;

  let isi = Graph.node_of_name topo "isi"
  and mci = Graph.node_of_name topo "mci-r"
  and sri = Graph.node_of_name topo "sri" in
  let show_route tag =
    let r = Network.router net sri in
    Printf.printf "%-28s dist(sri -> mci-r) = %6.2f via {%s}   FD = %.2f\n" tag
      (Router.distance r ~dst:mci)
      (String.concat ", "
         (List.map (Graph.name topo) (Router.successors r ~dst:mci)))
      (Router.feasible_distance r ~dst:mci)
  in

  Printf.printf "[%s] MPDA converged after %d LSUs.\n" label
    (Network.total_messages net);
  show_route "initial:";

  (* Fail the isi <-> mci-r trunk: cross-country traffic must shift to
     the lbl <-> anl trunk without ever looping. The restore comes
     well after the dead interval so an inferred detection has time to
     happen (a faster flap would be *absorbed*, which is its own
     interesting outcome — see the chaos campaigns). *)
  Network.schedule_fail_duplex net ~at:61.0 ~a:isi ~b:mci;
  Network.run ~until:75.0 net;
  show_route "after trunk failure:";

  Network.schedule_restore_duplex net ~at:76.0 ~a:isi ~b:mci
    ~cost:(cost (Graph.link_exn topo ~src:isi ~dst:mci));
  Network.run ~until:120.0 net;
  show_route "after recovery:";
  print_newline ();

  {
    label;
    checks = !checks;
    loop_violations = !loop_violations;
    lfi_violations = !lfi_violations;
    messages = Network.total_messages net;
    detection = Recovery.detect (Network.trace net);
  }

let () =
  let oracle = run_trunk_flap ~detection:Harness.Oracle ~label:"oracle" in
  let hello =
    run_trunk_flap
      ~detection:(Harness.Hello Hello.default_params)
      ~label:"hello"
  in
  let runs = [ oracle; hello ] in
  print_string
    (Tab.render
       ~header:[ "detection"; "events"; "loop-viol"; "LFI-viol"; "msgs" ]
       (List.map
          (fun a ->
            [
              a.label;
              string_of_int a.checks;
              string_of_int a.loop_violations;
              string_of_int a.lfi_violations;
              string_of_int a.messages;
            ])
          runs));
  print_newline ();
  List.iter
    (fun a ->
      let d = a.detection in
      let lat =
        match d.Recovery.latencies with
        | [] -> "none (all absorbed)"
        | l ->
          String.concat ", " (List.map (fun v -> Printf.sprintf "%.3fs" v) l)
      in
      Printf.printf "%-7s detection latency per endpoint: %s\n" a.label lat)
    runs;
  if
    List.exists (fun a -> a.loop_violations > 0 || a.lfi_violations > 0) runs
  then exit 1
