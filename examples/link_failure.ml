(* Link failure: watch MPDA reconverge — loop-free and LFI-clean at
   every instant — when a CAIRN transcontinental trunk fails and
   recovers.

   Run with: dune exec examples/link_failure.exe *)

module Graph = Mdr_topology.Graph
module Network = Mdr_routing.Network
module Router = Mdr_routing.Router
module Engine = Mdr_eventsim.Engine
module Tab = Mdr_util.Tab

let () =
  let topo = Mdr_topology.Cairn.topology () in
  let cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0) in
  let checks = ref 0 and loop_violations = ref 0 and lfi_violations = ref 0 in
  let observer net =
    incr checks;
    if not (Network.check_loop_free net) then incr loop_violations;
    if not (Network.check_lfi net) then incr lfi_violations
  in
  let net = Network.create ~observer ~topo ~cost () in
  Network.run net;

  let isi = Graph.node_of_name topo "isi"
  and mci = Graph.node_of_name topo "mci-r"
  and sri = Graph.node_of_name topo "sri" in
  let show_route label =
    let r = Network.router net sri in
    Printf.printf "%-28s dist(sri -> mci-r) = %6.2f via {%s}   FD = %.2f\n" label
      (Router.distance r ~dst:mci)
      (String.concat ", "
         (List.map (Graph.name topo) (Router.successors r ~dst:mci)))
      (Router.feasible_distance r ~dst:mci)
  in

  Printf.printf "MPDA converged after %d LSUs.\n" (Network.total_messages net);
  show_route "initial:";

  (* Fail the isi <-> mci-r trunk: cross-country traffic must shift to
     the lbl <-> anl trunk without ever looping. *)
  Network.schedule_fail_duplex net ~at:1.0 ~a:isi ~b:mci;
  Network.run net;
  show_route "after trunk failure:";

  Network.schedule_restore_duplex net ~at:2.0 ~a:isi ~b:mci
    ~cost:(cost (Graph.link_exn topo ~src:isi ~dst:mci));
  Network.run net;
  show_route "after recovery:";

  print_newline ();
  print_string
    (Tab.render
       ~header:[ "audit"; "events"; "violations" ]
       [
         [ "loop-freedom"; string_of_int !checks; string_of_int !loop_violations ];
         [ "LFI (eq. 16)"; string_of_int !checks; string_of_int !lfi_violations ];
       ]);
  Printf.printf "\ntotal control messages: %d; simulated time: %.3f s\n"
    (Network.total_messages net)
    (Engine.now (Network.engine net));
  if !loop_violations > 0 || !lfi_violations > 0 then exit 1
