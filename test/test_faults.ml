(* The fault-injection subsystem: channel fault models, the reliable
   transport under loss/duplication/reordering, node crash/restart,
   partitions, and the chaos campaigns — randomized churn under which
   MPDA and DV must keep the loop-freedom and LFI invariants after
   every single processed event (Theorem 3 under fire). *)

module Graph = Mdr_topology.Graph
module Generators = Mdr_topology.Generators
module Rng = Mdr_util.Rng
module Engine = Mdr_eventsim.Engine
module Router = Mdr_routing.Router
module Network = Mdr_routing.Network
module Dv_network = Mdr_routing.Harness.Dv_network
module Harness = Mdr_routing.Harness
module Hello = Mdr_routing.Hello
module Channel = Mdr_faults.Channel
module Campaign = Mdr_faults.Campaign

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base_cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0)

(* --- Channel fault models -------------------------------------------- *)

let test_channel_semantics () =
  let rng = Rng.create ~seed:1 in
  check "ideal delivers once" true (Channel.decide Channel.ideal ~rng ~now:0.0 = [ 0.0 ]);
  check "drop 1 loses all" true
    (Channel.decide (Channel.drop ~p:1.0 ()) ~rng ~now:0.0 = []);
  check "drop 0 keeps all" true
    (Channel.decide (Channel.drop ~p:0.0 ()) ~rng ~now:0.0 = [ 0.0 ]);
  check_int "duplicate 1 doubles" 2
    (List.length (Channel.decide (Channel.duplicate ~p:1.0 ()) ~rng ~now:0.0));
  let inside = Channel.decide (Channel.blackout ~from_:1.0 ~until_:2.0) ~rng ~now:1.5 in
  let outside = Channel.decide (Channel.blackout ~from_:1.0 ~until_:2.0) ~rng ~now:2.0 in
  check "blackout drops inside" true (inside = []);
  check "blackout passes outside" true (outside = [ 0.0 ]);
  let jittered =
    Channel.decide (Channel.jitter ~max_delay:0.5 ()) ~rng:(Rng.create ~seed:3) ~now:0.0
  in
  check "jitter delays within bound" true
    (match jittered with [ d ] -> d >= 0.0 && d <= 0.5 | _ -> false);
  check "quiet_after finds blackout end" true
    (Float.equal
       (Channel.quiet_after
          (Channel.all
             [ Channel.drop ~p:0.1 (); Channel.blackout ~from_:1.0 ~until_:7.5 ]))
       7.5);
  check "bad probability rejected" true
    (try
       ignore (Channel.drop ~p:1.5 ());
       false
     with Invalid_argument _ -> true)

let test_channel_determinism () =
  let model =
    Channel.all
      [ Channel.drop ~p:0.3 (); Channel.duplicate ~p:0.2 (); Channel.jitter ~max_delay:0.1 () ]
  in
  let trace seed =
    let rng = Rng.create ~seed in
    List.init 200 (fun i -> Channel.decide model ~rng ~now:(float_of_int i))
  in
  check "same seed, same fault sequence" true (trace 42 = trace 42);
  check "different seed, different sequence" true (trace 42 <> trace 43)

(* --- Reliable transport over lossy channels --------------------------- *)

let settle net =
  let engine = Network.engine net in
  let rec go () =
    if Network.quiescent net then true
    else if Engine.now engine > 600.0 || Engine.pending engine = 0 then false
    else begin
      ignore (Engine.step engine);
      go ()
    end
  in
  go ()

let test_lossy_convergence_net1 () =
  let topo = Mdr_topology.Net1.topology () in
  let same, retx = Campaign.successor_agreement ~cost:base_cost ~topo ~seed:7 () in
  check "NET1: successor sets match the lossless run at 20% drop" true same;
  check "NET1: the transport actually retransmitted" true (retx > 0)

let test_lossy_convergence_cairn () =
  let topo = Mdr_topology.Cairn.topology () in
  let same, retx = Campaign.successor_agreement ~cost:base_cost ~topo ~seed:11 () in
  check "CAIRN: successor sets match the lossless run at 20% drop" true same;
  check "CAIRN: the transport actually retransmitted" true (retx > 0)

let test_reordering_duplication_storm () =
  (* Heavy jitter far above the propagation delays plus duplication:
     the transport must deliver in order exactly once, keeping the
     audit clean on every event. *)
  let rng = Rng.create ~seed:5 in
  let topo = Generators.ring_with_chords ~rng ~n:8 ~chords:3 ~capacity:1.0e7 ~prop_delay:0.001 in
  let violations = ref 0 in
  let observer net =
    if not (Network.check_loop_free net && Network.check_lfi net) then incr violations
  in
  let net = Network.create ~observer ~topo ~cost:base_cost () in
  Network.set_channel net
    (Channel.to_channel
       (Channel.all [ Channel.duplicate ~p:0.3 (); Channel.jitter ~max_delay:0.05 () ])
       ~rng:(Rng.create ~seed:6));
  Network.schedule_link_cost net ~at:1.0 ~src:0 ~dst:1 ~cost:25.0;
  Network.schedule_fail_duplex net ~at:2.0 ~a:2 ~b:3;
  Network.schedule_restore_duplex net ~at:3.0 ~a:2 ~b:3
    ~cost:(base_cost (Graph.link_exn topo ~src:2 ~dst:3));
  check "settles" true (settle net);
  check_int "no invariant violations under reorder/dup" 0 !violations;
  check "loop-free at the end" true (Network.check_loop_free net)

let test_dv_lossy_convergence () =
  let rng = Rng.create ~seed:9 in
  let topo = Generators.ring_with_chords ~rng ~n:7 ~chords:2 ~capacity:1.0e7 ~prop_delay:0.002 in
  let violations = ref 0 in
  let observer net =
    if not (Dv_network.check_loop_free net && Dv_network.check_lfi net) then
      incr violations
  in
  let net = Dv_network.create ~observer ~topo ~cost:base_cost () in
  Dv_network.set_channel net
    (Channel.to_channel (Channel.drop ~p:0.25 ()) ~rng:(Rng.create ~seed:10));
  let engine = Dv_network.engine net in
  let rec go () =
    if Dv_network.quiescent net then true
    else if Engine.now engine > 600.0 || Engine.pending engine = 0 then false
    else begin
      ignore (Engine.step engine);
      go ()
    end
  in
  check "DV settles over a 25%-drop channel" true (go ());
  check_int "DV: no invariant violations" 0 !violations;
  let r = Dv_network.router net 0 in
  List.iter
    (fun dst ->
      check "DV: every destination reachable" true
        (Float.is_finite (Mdr_routing.Dv_router.distance r ~dst)))
    (List.filter (fun d -> d <> 0) (Graph.nodes topo));
  check "DV: retransmissions counted in total" true
    (Dv_network.total_messages net
    = Array.fold_left
        (fun acc i -> acc + Mdr_routing.Dv_router.messages_sent (Dv_network.router net i))
        (Dv_network.retransmissions net)
        (Array.init (Graph.node_count topo) Fun.id))

(* --- Defensive link scheduling (satellite) ----------------------------- *)

let test_defensive_link_events () =
  let topo = Generators.ring ~n:5 ~capacity:1.0e7 ~prop_delay:0.001 in
  let net = Network.create ~topo ~cost:base_cost () in
  check "fail of nonexistent link raises" true
    (try
       Network.schedule_fail_duplex net ~at:1.0 ~a:0 ~b:2;
       false
     with Invalid_argument _ -> true);
  check "restore of nonexistent link raises" true
    (try
       Network.schedule_restore_duplex net ~at:1.0 ~a:1 ~b:3 ~cost:1.0;
       false
     with Invalid_argument _ -> true);
  check "out-of-range node raises" true
    (try
       Network.schedule_fail_duplex net ~at:1.0 ~a:0 ~b:17;
       false
     with Invalid_argument _ -> true)

let test_idempotent_fail_restore () =
  let topo = Generators.ring ~n:5 ~capacity:1.0e7 ~prop_delay:0.001 in
  let cost = base_cost (Graph.link_exn topo ~src:0 ~dst:1) in
  let net = Network.create ~topo ~cost:base_cost () in
  (* Double fail, double restore: the second of each must be a no-op. *)
  Network.schedule_fail_duplex net ~at:1.0 ~a:0 ~b:1;
  Network.schedule_fail_duplex net ~at:1.1 ~a:0 ~b:1;
  Network.schedule_restore_duplex net ~at:2.0 ~a:0 ~b:1 ~cost;
  Network.schedule_restore_duplex net ~at:2.1 ~a:0 ~b:1 ~cost;
  Network.run net;
  check "quiescent after double fail/restore" true (Network.quiescent net);
  let msgs = Network.total_messages net in
  (* A restore of an up link must not trigger another LSU exchange. *)
  Network.schedule_restore_duplex net ~at:3.0 ~a:0 ~b:1 ~cost;
  Network.run net;
  check_int "restore of an up link sends nothing" msgs (Network.total_messages net);
  check "link still up" true (Network.link_is_up net ~src:0 ~dst:1);
  check "loop-free" true (Network.check_loop_free net)

(* --- Crash / restart and partitions ----------------------------------- *)

let test_crash_restart_reconverges () =
  let rng = Rng.create ~seed:20 in
  let topo = Generators.ring_with_chords ~rng ~n:8 ~chords:3 ~capacity:1.0e7 ~prop_delay:0.002 in
  let violations = ref 0 in
  let observer net =
    if not (Network.check_loop_free net && Network.check_lfi net) then incr violations
  in
  let net = Network.create ~observer ~topo ~cost:base_cost () in
  Network.schedule_node_crash net ~at:1.0 ~node:3;
  Network.run ~until:1.5 net;
  check "crashed node is down" true (not (Network.node_is_up net 3));
  check "links to the crashed node are down" true
    (not (Network.link_is_up net ~src:2 ~dst:3 || Network.link_is_up net ~src:3 ~dst:4));
  Network.schedule_node_restart net ~at:2.0 ~node:3;
  Network.run net;
  check "restarted node is up" true (Network.node_is_up net 3);
  check "quiescent after restart" true (Network.quiescent net);
  check_int "no invariant violations across crash/restart" 0 !violations;
  (* The restarted router relearns every route. *)
  let r = Network.router net 3 in
  List.iter
    (fun dst ->
      if dst <> 3 then
        check "restarted node reaches everyone" true
          (Float.is_finite (Router.distance r ~dst)))
    (Graph.nodes topo);
  check "crash of a dead node is a no-op" true
    (let before = Network.total_messages net in
     Network.schedule_node_restart net ~at:10.0 ~node:3;
     Network.run net;
     Network.total_messages net = before)

let test_partition_heals () =
  let topo = Mdr_topology.Net1.topology () in
  let violations = ref 0 in
  let observer net =
    if not (Network.check_loop_free net && Network.check_lfi net) then incr violations
  in
  let net = Network.create ~observer ~topo ~cost:base_cost () in
  let group = [ 0; 1; 2 ] in
  Network.schedule_partition net ~at:1.0 ~heal_at:3.0 ~group;
  Network.run ~until:2.5 net;
  (* During the partition both sides must consider the cut crossed
     unreachable — and stay loop-free while concluding it. *)
  let r9 = Network.router net 9 in
  check "cut destination unreachable during partition" true
    (not (Float.is_finite (Router.distance r9 ~dst:0)));
  Network.run net;
  check "quiescent after heal" true (Network.quiescent net);
  check_int "no invariant violations across partition/heal" 0 !violations;
  check "healed: every pair reachable again" true
    (List.for_all
       (fun dst -> dst = 9 || Float.is_finite (Router.distance r9 ~dst))
       (Graph.nodes topo))

(* --- Hello-based failure detection (tentpole) -------------------------- *)

let test_zero_loss_channel_transparent () =
  (* Installing a channel engages sequencing, ACKs and retransmission
     timers; with a zero-loss channel that machinery must be fully
     transparent: the network converges to the same routes and never
     retransmits. *)
  let topo = Mdr_topology.Net1.topology () in
  let bare = Network.create ~topo ~cost:base_cost () in
  Network.run bare;
  let piped = Network.create ~topo ~cost:base_cost () in
  Network.set_channel piped
    (Channel.to_channel Channel.ideal ~rng:(Rng.create ~seed:1));
  Network.run piped;
  check "bare run quiescent" true (Network.quiescent bare);
  check "zero-loss run quiescent" true (Network.quiescent piped);
  check_int "zero-loss channel never retransmits" 0
    (Network.retransmissions piped);
  List.iter
    (fun dst ->
      List.iter
        (fun node ->
          check "identical successor sets" true
            (Network.successor_sets bare ~dst node
            = Network.successor_sets piped ~dst node);
          check "identical distances" true
            (Float.equal
               (Router.distance (Network.router bare node) ~dst)
               (Router.distance (Network.router piped node) ~dst)))
        (Graph.nodes topo))
    (Graph.nodes topo)

let test_hello_partition_heal_reforms_adjacencies () =
  (* Under hello detection a healed partition must re-handshake every
     cut adjacency back to Full in both directions — the session
     numbers force both sides through a clean teardown/reform. *)
  let topo = Mdr_topology.Net1.topology () in
  let net =
    Network.create
      ~detection:(Harness.Hello Hello.default_params)
      ~seed:3 ~topo ~cost:base_cost ()
  in
  let group = [ 0; 1; 2 ] in
  let crosses (l : Graph.link) = List.mem l.src group <> List.mem l.dst group in
  let cut = List.filter crosses (Graph.links topo) in
  check "NET1 has cut links" true (cut <> []);
  Network.schedule_partition net ~at:1.0 ~heal_at:10.0 ~group;
  (* Partition at 1 s + 2 s dead interval: by 8 s every cut adjacency
     must have been inferred down (no oracle told anyone). *)
  Network.run ~until:8.0 net;
  List.iter
    (fun (l : Graph.link) ->
      check "cut adjacency inferred down" true
        (Network.adj_state net ~node:l.src ~nbr:l.dst = Hello.Down))
    cut;
  Network.run ~until:60.0 net;
  List.iter
    (fun (l : Graph.link) ->
      check "healed adjacency Full both directions" true
        (Network.adj_state net ~node:l.src ~nbr:l.dst = Hello.Full
        && Network.adj_state net ~node:l.dst ~nbr:l.src = Hello.Full))
    (Graph.links topo);
  check "quiescent after heal" true (Network.quiescent net)

let test_flap_damping_suppresses () =
  (* A link flapping faster than the damping half-life must end up
     suppressed (TwoWay, withheld from routing) even while physically
     up; hellos are sped up so each outage is detected. *)
  let params =
    {
      Hello.hello_interval = 0.1;
      jitter = 0.25;
      dead_interval = 0.35;
      damping = Some Hello.default_damping;
    }
  in
  let topo = Mdr_topology.Net1.topology () in
  let net =
    Network.create ~detection:(Harness.Hello params) ~seed:5 ~topo
      ~cost:base_cost ()
  in
  let a, b = (0, 1) in
  let cost = base_cost (Graph.link_exn topo ~src:a ~dst:b) in
  for i = 0 to 2 do
    let at = 2.0 +. (2.0 *. float_of_int i) in
    Network.schedule_fail_duplex net ~at ~a ~b;
    Network.schedule_restore_duplex net ~at:(at +. 1.0) ~a ~b ~cost
  done;
  (* Last restore at 6 s; probe shortly after, well inside the ~14 s
     suppression hold. *)
  Network.run ~until:7.5 net;
  check "link physically up" true (Network.link_is_up net ~src:a ~dst:b);
  check "three flaps detected" true (Network.adj_flaps net ~node:a ~nbr:b >= 3);
  check "adjacency suppressed after repeated flaps" true
    (Network.adj_suppressed net ~node:a ~nbr:b
    || Network.adj_suppressed net ~node:b ~nbr:a);
  check "suppressed means withheld, not Full" true
    (Network.adj_state net ~node:a ~nbr:b <> Hello.Full
    || Network.adj_state net ~node:b ~nbr:a <> Hello.Full);
  (* The penalty decays; eventually the adjacency must come back and
     the network must settle. *)
  let engine = Network.engine net in
  let rec go () =
    if Network.quiescent net then true
    else if Engine.now engine > 300.0 || Engine.pending engine = 0 then false
    else begin
      ignore (Engine.step engine);
      go ()
    end
  in
  check "suppression eventually released and settled" true (go ());
  check "adjacency Full again" true
    (Network.adj_state net ~node:a ~nbr:b = Hello.Full
    && Network.adj_state net ~node:b ~nbr:a = Hello.Full)

(* --- Data-plane crash/restart in the packet simulator ------------------ *)

let test_sim_crash_epochs () =
  let module Sim = Mdr_netsim.Sim in
  let topo = Generators.ring ~n:6 ~capacity:1.0e7 ~prop_delay:0.001 in
  let cfg =
    { Sim.default_config with sim_time = 40.0; warmup = 5.0; t_l = 4.0; t_s = 1.0 }
  in
  (* Crash the destination itself: everything sent while it is down is
     necessarily lost, so the middle epoch must show the degradation. *)
  let events =
    [ Sim.Crash_node { at = 15.0; node = 3 }; Sim.Restart_node { at = 25.0; node = 3 } ]
  in
  let r =
    Sim.run ~config:cfg ~events topo
      [ { Sim.src = 0; dst = 3; rate_bits = 5.0e5; burst = None } ]
  in
  check_int "zero loop violations through crash/restart" 0 r.loop_free_violations;
  check_int "one epoch per distinct event time plus the start" 3 (List.length r.epochs);
  (match r.epochs with
  | [ before; crashed; after ] ->
    check "epoch bounds cover the run" true
      (Float.equal before.Sim.from_ 0.0
      && Float.equal crashed.Sim.from_ 15.0
      && Float.equal after.Sim.from_ 25.0
      && Float.equal after.Sim.until_ 40.0);
    check "traffic flows before the crash" true (before.Sim.delivered > 0);
    check "traffic flows after the restart" true (after.Sim.delivered > 0);
    check "the crash epoch shows losses" true (crashed.Sim.dropped > 0);
    check "the crash epoch delivers less than the healthy one" true
      (crashed.Sim.delivered < before.Sim.delivered)
  | _ -> Alcotest.fail "unexpected epoch structure");
  check "packets still arrive overall" true (r.total_delivered > 0);
  (* Faultless runs report no epochs. *)
  let clean =
    Sim.run ~config:cfg topo [ { Sim.src = 0; dst = 3; rate_bits = 5.0e5; burst = None } ]
  in
  check_int "no events, no epochs" 0 (List.length clean.epochs)

(* --- Chaos campaigns (the >= 200-scenario property) -------------------- *)

let scenario_topo rng =
  match Rng.int rng ~bound:3 with
  | 0 ->
    let n = 6 + Rng.int rng ~bound:4 in
    Generators.ring_with_chords ~rng ~n ~chords:(2 + Rng.int rng ~bound:3)
      ~capacity:1.0e7 ~prop_delay:0.002
  | 1 ->
    let n = 6 + Rng.int rng ~bound:6 in
    Generators.random_connected ~rng ~n ~extra_links:(3 + Rng.int rng ~bound:3) ()
  | _ -> Generators.grid ~rows:3 ~cols:3 ~capacity:1.0e7 ~prop_delay:0.001

let churn_profile =
  { Campaign.default_profile with duration = 20.0 }

let test_chaos_property () =
  (* 100 seeds x {MPDA, DV} = 200 scenarios of interleaved cost
     surges, flaps, crashes, partitions and lossy channels; the
     invariants must hold after every processed event and both
     protocols must reconverge. *)
  for seed = 1 to 100 do
    let rng = Rng.create ~seed in
    let topo = scenario_topo rng in
    let plan = Campaign.random_plan ~rng ~topo churn_profile in
    let audit (m : Campaign.metrics) =
      let tag what = Printf.sprintf "seed %d %s: %s" seed m.protocol what in
      Alcotest.(check int) (tag "loop violations") 0 m.loop_violations;
      Alcotest.(check int) (tag "lfi violations") 0 m.lfi_violations;
      check (tag "converged") true m.converged;
      check (tag "bounded reconvergence") true
        (Float.is_finite m.reconvergence && m.reconvergence < 600.0)
    in
    audit (Campaign.run_mpda ~topo ~seed plan);
    audit (Campaign.run_dv ~topo ~seed plan)
  done

let test_hello_chaos_property () =
  (* The chaos property under inferred detection: failures discovered
     by dead intervals, false positives from the lossy channel, flap
     damping active — and still zero loop or LFI violations ever. *)
  for seed = 1 to 12 do
    let rng = Rng.create ~seed in
    let topo = scenario_topo rng in
    let plan =
      Campaign.random_plan ~rng ~topo
        { Campaign.default_profile with duration = 10.0 }
    in
    let detection = Harness.Hello Hello.default_params in
    let m = Campaign.run_mpda ~detection ~topo ~seed plan in
    let tag what = Printf.sprintf "hello seed %d MPDA: %s" seed what in
    Alcotest.(check int) (tag "loop violations") 0 m.loop_violations;
    Alcotest.(check int) (tag "lfi violations") 0 m.lfi_violations;
    check (tag "converged") true m.converged;
    check (tag "no permanent blackhole") false m.permanent_blackhole;
    check (tag "detection produced latencies or absorbed flaps") true
      (m.detection_latencies <> [] || m.detection_absorbed > 0);
    (* DBF makes no loop-freedom promise, and inferred one-sided
       teardowns expose exactly the transient loops MPDA's
       feasible-distance pinning prevents — so DV is audited for
       recovery, not for loop-freedom. *)
    let d = Campaign.run_dv ~detection ~topo ~seed plan in
    let tag what = Printf.sprintf "hello seed %d DV: %s" seed what in
    check (tag "converged") true d.converged;
    check (tag "no permanent blackhole") false d.permanent_blackhole
  done

(* --- Overload: demand surges and the watchdog ------------------------- *)

module Overload = Mdr_faults.Overload
module Traffic = Mdr_fluid.Traffic
module Evaluate = Mdr_fluid.Evaluate
module Feasibility = Mdr_fluid.Feasibility
module Gallager = Mdr_gallager.Gallager

let test_demand_surges_end_within_window () =
  (* Every drawn demand surge must be a well-formed window that closes
     strictly inside the churn window, so reconvergence is always
     judged on restored demand. *)
  let seen = ref 0 in
  for seed = 1 to 25 do
    let rng = Rng.create ~seed in
    let topo = scenario_topo rng in
    let plan = Campaign.random_plan ~rng ~topo churn_profile in
    List.iter
      (function
        | Campaign.Demand_surge { src; dst; factor; at; until_ } ->
          incr seen;
          let tag what = Printf.sprintf "seed %d: %s" seed what in
          check (tag "distinct endpoints") true (src <> dst);
          check (tag "amplifying factor") true (factor > 1.0);
          check (tag "window ordered") true (at < until_);
          check (tag "window inside churn") true
            (at > 0.0 && until_ < plan.Campaign.duration)
        | Campaign.Flap _ | Campaign.Cost_surge _ | Campaign.Crash _
        | Campaign.Partition _ -> ())
      plan.Campaign.faults
  done;
  check "plans actually contained surges" true (!seen >= 25)

let test_demand_surge_restores_and_reconverges () =
  (* A lone demand surge: cost inflation along the commodity's path
     during the window, restoration at its close, clean reconvergence —
     and the surge must leave no residual state (the run ends quiescent
     with zero violations). *)
  let topo = Mdr_topology.Net1.topology () in
  let plan =
    {
      Campaign.faults =
        [
          Campaign.Demand_surge
            { src = 0; dst = 7; factor = 3.0; at = 2.0; until_ = 8.0 };
        ];
      channel = Channel.ideal;
      duration = 10.0;
    }
  in
  let m = Campaign.run_mpda ~topo ~seed:5 plan in
  check_int "loop violations" 0 m.Campaign.loop_violations;
  check_int "lfi violations" 0 m.Campaign.lfi_violations;
  check "converged" true m.Campaign.converged;
  check "bounded reconvergence" true
    (Float.is_finite m.Campaign.reconvergence
    && m.Campaign.reconvergence < 60.0);
  check "surge generated protocol activity" true (m.Campaign.events > 0)

let test_overload_watchdog_12_seeds () =
  (* The full watchdog across 12 seeds on NET1 pushed well past its
     envelope: zero invariant violations in every control run, finite
     costs everywhere, Degraded (never divergent) fluid status, and
     damping never increasing the successor-flap count. *)
  let topo = Mdr_topology.Net1.topology () in
  let pkt = 4096.0 in
  let base =
    Traffic.of_pairs_bits ~n:10 ~packet_size:pkt
      ~rate_bits:(fun _ -> 2.0e6)
      (Mdr_topology.Net1.flow_pairs topo)
  in
  let offered = Traffic.scale base 8.0 in
  for seed = 1 to 12 do
    let config =
      {
        Overload.default_config with
        surge_from = 2.0;
        surge_until = 8.0;
        settle_grace = 60.0;
        max_iters = 150;
        seed;
      }
    in
    let r = Overload.audit ~config ~topo ~packet_size:pkt ~base ~offered () in
    let tag what = Printf.sprintf "seed %d: %s" seed what in
    check_int (tag "undamped loop violations") 0
      r.Overload.undamped.Overload.loop_violations;
    check_int (tag "damped loop violations") 0
      r.Overload.damped.Overload.loop_violations;
    check_int (tag "undamped lfi violations") 0
      r.Overload.undamped.Overload.lfi_violations;
    check_int (tag "damped lfi violations") 0
      r.Overload.damped.Overload.lfi_violations;
    check (tag "costs finite") true r.Overload.fluid.Overload.costs_finite;
    check (tag "degraded, not divergent") true r.Overload.fluid.Overload.degraded;
    check (tag "shed reported") true
      (r.Overload.fluid.Overload.shed_fraction > 0.0);
    check (tag "both runs converged") true
      (r.Overload.undamped.Overload.converged
      && r.Overload.damped.Overload.converged);
    check (tag "damping bounds successor flaps") true
      (r.Overload.damped.Overload.successor_flaps
      <= r.Overload.undamped.Overload.successor_flaps)
  done

let test_overload_surge_acceptance_100_seeds () =
  (* Acceptance sweep: 100 seeded random (topology, demand) scenarios
     through the fluid pipeline. Every cost stays finite, and every
     infeasible matrix comes back Degraded — never a silent divergent
     solve. *)
  let degraded = ref 0 in
  for seed = 1 to 100 do
    let rng = Rng.create ~seed:(4000 + seed) in
    let topo = scenario_topo rng in
    let n = Graph.node_count topo in
    let pkt = 1000.0 in
    let model = Evaluate.model topo ~packet_size:pkt in
    let commodities = 3 + Rng.int rng ~bound:4 in
    let flows =
      List.init commodities (fun _ ->
          let src = Rng.int rng ~bound:n in
          let dst = (src + 1 + Rng.int rng ~bound:(n - 1)) mod n in
          (* Links carry 1e7 b/s = 10000 pkt/s: rates up to 30000 make
             roughly half the matrices infeasible. *)
          let rate = Rng.uniform rng ~lo:1000.0 ~hi:30000.0 in
          { Traffic.src; dst; rate })
    in
    let traffic = Traffic.of_flows ~n flows in
    let r = Gallager.solve ~max_iters:120 model topo traffic in
    let tag what = Printf.sprintf "surge seed %d: %s" seed what in
    check (tag "costs finite") true (Evaluate.costs_finite model r.Gallager.flows);
    check (tag "delay finite") true (Float.is_finite r.Gallager.avg_delay);
    let feas = Feasibility.report topo ~packet_size:pkt traffic in
    if not (Feasibility.feasible feas) then begin
      incr degraded;
      check (tag "infeasible matrix degraded") true
        (match r.Gallager.status with
        | Gallager.Degraded d ->
          d.Gallager.admitted_fraction > 0.0
          && d.Gallager.admitted_fraction < 1.0
        | Gallager.Feasible -> false)
    end
  done;
  check "sweep actually exercised infeasible matrices" true (!degraded >= 20)

let test_campaign_determinism () =
  let run () =
    let rng = Rng.create ~seed:77 in
    let topo = scenario_topo rng in
    let plan = Campaign.random_plan ~rng ~topo churn_profile in
    (Campaign.run_mpda ~topo ~seed:77 plan, Campaign.run_dv ~topo ~seed:77 plan)
  in
  check "identical metrics across runs from a fixed seed" true (run () = run ())

let suite =
  [
    Alcotest.test_case "channel: layer semantics" `Quick test_channel_semantics;
    Alcotest.test_case "channel: seeded determinism" `Quick test_channel_determinism;
    Alcotest.test_case "transport: NET1 converges at 20% drop" `Quick
      test_lossy_convergence_net1;
    Alcotest.test_case "transport: CAIRN converges at 20% drop" `Slow
      test_lossy_convergence_cairn;
    Alcotest.test_case "transport: reorder/dup storm stays clean" `Quick
      test_reordering_duplication_storm;
    Alcotest.test_case "transport: DV over a 25%-drop channel" `Quick
      test_dv_lossy_convergence;
    Alcotest.test_case "defensive: bad links raise" `Quick test_defensive_link_events;
    Alcotest.test_case "defensive: fail/restore idempotent" `Quick
      test_idempotent_fail_restore;
    Alcotest.test_case "crash/restart reconverges cleanly" `Quick
      test_crash_restart_reconverges;
    Alcotest.test_case "partition fails a cut and heals" `Quick test_partition_heals;
    Alcotest.test_case "sim: data-plane crash epochs" `Quick test_sim_crash_epochs;
    Alcotest.test_case "hello: zero-loss channel is transparent" `Quick
      test_zero_loss_channel_transparent;
    Alcotest.test_case "hello: partition heal re-forms adjacencies" `Quick
      test_hello_partition_heal_reforms_adjacencies;
    Alcotest.test_case "hello: flap damping suppresses and releases" `Quick
      test_flap_damping_suppresses;
    Alcotest.test_case "chaos: 200 scenarios, zero violations" `Slow test_chaos_property;
    Alcotest.test_case "chaos: hello detection, zero violations" `Slow
      test_hello_chaos_property;
    Alcotest.test_case "chaos: campaign is deterministic" `Quick
      test_campaign_determinism;
    Alcotest.test_case "overload: surges end within the churn window" `Quick
      test_demand_surges_end_within_window;
    Alcotest.test_case "overload: demand surge restores and reconverges" `Quick
      test_demand_surge_restores_and_reconverges;
    Alcotest.test_case "overload: watchdog clean across 12 seeds" `Slow
      test_overload_watchdog_12_seeds;
    Alcotest.test_case "overload: 100-seed surge acceptance sweep" `Slow
      test_overload_surge_acceptance_100_seeds;
  ]
