(* Tests for the fluid model: M/M/1 delay curves and their convex
   extension, traffic matrices, routing-parameter invariants
   (Property 1), flow conservation, and delay evaluation. *)

module Graph = Mdr_topology.Graph
module Delay = Mdr_fluid.Delay
module Traffic = Mdr_fluid.Traffic
module Params = Mdr_fluid.Params
module Flows = Mdr_fluid.Flows
module Evaluate = Mdr_fluid.Evaluate

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let dm = Delay.create ~capacity:1000.0 ~prop_delay:0.001 ()

let test_delay_zero_flow () =
  check_float "cost 0" 0.0 (Delay.cost dm 0.0);
  check_float "marginal 0" ((1.0 /. 1000.0) +. 0.001) (Delay.marginal dm 0.0);
  check_float "sojourn 0" 0.002 (Delay.sojourn dm 0.0)

let test_delay_mm1_formula () =
  (* At f = 500 on capacity 1000: D = 500/500 + 0.001*500 = 1.5. *)
  check_float "cost" 1.5 (Delay.cost dm 500.0);
  (* D' = C/(C-f)^2 + tau = 1000/250000 + 0.001 = 0.005. *)
  check_float "marginal" 0.005 (Delay.marginal dm 500.0);
  (* sojourn = 1/(C-f) + tau = 0.003. *)
  check_float "sojourn" 0.003 (Delay.sojourn dm 500.0)

let test_delay_cost_sojourn_relation () =
  (* D(f) = f * sojourn(f) in the M/M/1 region. *)
  List.iter
    (fun f -> check_float "relation" (Delay.cost dm f) (f *. Delay.sojourn dm f))
    [ 1.0; 100.0; 500.0; 900.0 ]

let test_delay_finite_beyond_capacity () =
  check "finite past knee" true (Float.is_finite (Delay.cost dm 999.0));
  check "finite past capacity" true (Float.is_finite (Delay.cost dm 2000.0));
  check "marginal finite too" true (Float.is_finite (Delay.marginal dm 2000.0))

let test_delay_extension_continuity () =
  (* Cost and marginal are continuous at the knee (rho_max * C). *)
  let f0 = 0.99 *. 1000.0 in
  let eps = 1e-6 in
  check "cost continuous" true
    (Float.abs (Delay.cost dm (f0 +. eps) -. Delay.cost dm (f0 -. eps)) < 1e-3);
  check "marginal continuous" true
    (Float.abs (Delay.marginal dm (f0 +. eps) -. Delay.marginal dm (f0 -. eps)) < 1e-3)

let test_delay_invalid () =
  Alcotest.check_raises "negative flow" (Invalid_argument "Delay.cost: negative flow")
    (fun () -> ignore (Delay.cost dm (-1.0)));
  Alcotest.check_raises "capacity" (Invalid_argument "Delay.create: capacity <= 0")
    (fun () -> ignore (Delay.create ~capacity:0.0 ~prop_delay:0.0 ()))

let prop_delay_marginal_increasing =
  QCheck.Test.make ~name:"marginal delay is non-decreasing (convexity)" ~count:300
    QCheck.(pair (float_bound_exclusive 1500.0) (float_bound_exclusive 1500.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Delay.marginal dm lo <= Delay.marginal dm hi +. 1e-12)

let prop_delay_cost_convex =
  QCheck.Test.make ~name:"cost midpoint convexity" ~count:300
    QCheck.(pair (float_bound_exclusive 1500.0) (float_bound_exclusive 1500.0))
    (fun (a, b) ->
      let mid = (a +. b) /. 2.0 in
      Delay.cost dm mid <= ((Delay.cost dm a +. Delay.cost dm b) /. 2.0) +. 1e-9)

(* --- Traffic --------------------------------------------------------- *)

let test_traffic_accumulates () =
  let t = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 5.0 }; { src = 0; dst = 3; rate = 2.0 } ] in
  check_float "accumulated" 7.0 (Traffic.rate t ~src:0 ~dst:3);
  check_float "total" 7.0 (Traffic.total_rate t);
  check "destinations" true (Traffic.destinations t = [ 3 ])

let test_traffic_validation () =
  Alcotest.check_raises "self flow" (Invalid_argument "Traffic: self-flow") (fun () ->
      ignore (Traffic.of_flows ~n:2 [ { src = 1; dst = 1; rate = 1.0 } ]));
  Alcotest.check_raises "negative" (Invalid_argument "Traffic: negative rate")
    (fun () -> ignore (Traffic.of_flows ~n:2 [ { src = 0; dst = 1; rate = -1.0 } ]))

let test_traffic_scale () =
  let t = Traffic.of_flows ~n:3 [ { src = 0; dst = 2; rate = 4.0 } ] in
  let t2 = Traffic.scale t 0.5 in
  check_float "scaled" 2.0 (Traffic.rate t2 ~src:0 ~dst:2);
  check_float "original untouched" 4.0 (Traffic.rate t ~src:0 ~dst:2)

let test_traffic_bits_conversion () =
  let t =
    Traffic.of_pairs_bits ~n:3 ~packet_size:1000.0
      ~rate_bits:(fun _ -> 1.0e6)
      [ (0, 2) ]
  in
  check_float "pkts per second" 1000.0 (Traffic.rate t ~src:0 ~dst:2)

(* --- Params ---------------------------------------------------------- *)

let diamond () =
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];
  g

let test_params_set_get () =
  let p = Params.create (diamond ()) in
  Params.set_fractions p ~node:0 ~dst:3 [ (1, 0.7); (2, 0.3) ];
  check_float "via a" 0.7 (Params.fraction p ~node:0 ~dst:3 ~via:1);
  check_float "via b" 0.3 (Params.fraction p ~node:0 ~dst:3 ~via:2);
  check "successors" true (Params.successors p ~node:0 ~dst:3 = [ 1; 2 ]);
  check "routed" true (Params.is_routed p ~node:0 ~dst:3);
  check "validate" true (Params.validate p = Ok ())

let test_params_rejects_bad_sum () =
  let p = Params.create (diamond ()) in
  check "raises" true
    (try
       Params.set_fractions p ~node:0 ~dst:3 [ (1, 0.5); (2, 0.3) ];
       false
     with Invalid_argument _ -> true)

let test_params_rejects_non_neighbor () =
  let p = Params.create (diamond ()) in
  check "raises" true
    (try
       Params.set_fractions p ~node:0 ~dst:3 [ (3, 1.0) ];
       false
     with Invalid_argument _ -> true)

let test_params_clear_and_copy () =
  let p = Params.create (diamond ()) in
  Params.set_single p ~node:0 ~dst:3 ~via:1;
  let q = Params.copy p in
  Params.clear p ~node:0 ~dst:3;
  check "original cleared" false (Params.is_routed p ~node:0 ~dst:3);
  check "copy kept" true (Params.is_routed q ~node:0 ~dst:3)

let test_params_assign () =
  let p = Params.create (diamond ()) in
  let q = Params.create (diamond ()) in
  Params.set_fractions p ~node:0 ~dst:3 [ (1, 0.6); (2, 0.4) ];
  Params.assign q ~from_:p;
  check_float "assigned" 0.6 (Params.fraction q ~node:0 ~dst:3 ~via:1)

let test_params_acyclic_detects_loop () =
  let g = diamond () in
  let p = Params.create g in
  Params.set_single p ~node:0 ~dst:3 ~via:1;
  Params.set_single p ~node:1 ~dst:3 ~via:3;
  check "acyclic" true (Params.successor_graph_is_acyclic p ~dst:3);
  (* Create a 2-cycle s <-> a. *)
  Params.set_single p ~node:1 ~dst:3 ~via:0;
  Params.set_single p ~node:0 ~dst:3 ~via:1;
  check "cycle found" false (Params.successor_graph_is_acyclic p ~dst:3)

(* --- Flows ----------------------------------------------------------- *)

let diamond_split () =
  let g = diamond () in
  let p = Params.create g in
  Params.set_fractions p ~node:0 ~dst:3 [ (1, 0.5); (2, 0.5) ];
  Params.set_single p ~node:1 ~dst:3 ~via:3;
  Params.set_single p ~node:2 ~dst:3 ~via:3;
  (g, p)

let test_flows_split () =
  let _g, p = diamond_split () in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 100.0 } ] in
  let fl = Flows.compute p traffic in
  check_float "s->a" 50.0 (Flows.link_flow fl ~src:0 ~dst:1);
  check_float "s->b" 50.0 (Flows.link_flow fl ~src:0 ~dst:2);
  check_float "a->d" 50.0 (Flows.link_flow fl ~src:1 ~dst:3);
  check_float "node flow at a" 50.0 fl.node_flows.(1).(3);
  check_float "node flow at s" 100.0 fl.node_flows.(0).(3)

let test_flows_conservation () =
  (* Flow into the destination equals total input. *)
  let _g, p = diamond_split () in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 80.0 }; { src = 1; dst = 3; rate = 20.0 } ] in
  let fl = Flows.compute p traffic in
  let into_d = Flows.link_flow fl ~src:1 ~dst:3 +. Flows.link_flow fl ~src:2 ~dst:3 in
  check_float "conservation" 100.0 into_d

let test_flows_transit_traffic () =
  let _g, p = diamond_split () in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 100.0 }; { src = 1; dst = 3; rate = 40.0 } ] in
  let fl = Flows.compute p traffic in
  (* a carries its own 40 plus 50 transit. *)
  check_float "a->d" 90.0 (Flows.link_flow fl ~src:1 ~dst:3)

let test_flows_cycle_raises () =
  let g = diamond () in
  let p = Params.create g in
  Params.set_single p ~node:0 ~dst:3 ~via:1;
  Params.set_single p ~node:1 ~dst:3 ~via:0;
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 1.0 } ] in
  check "raises" true
    (try
       ignore (Flows.compute p traffic);
       false
     with Flows.Cyclic_routing 3 -> true)

let test_flows_iterative_fallback_matches_exact () =
  let _g, p = diamond_split () in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 100.0 } ] in
  let exact = Flows.compute p traffic in
  let iterative = Flows.compute ~iterative_fallback:true p traffic in
  check_float "same s->a" (Flows.link_flow exact ~src:0 ~dst:1)
    (Flows.link_flow iterative ~src:0 ~dst:1)

let test_topological_order () =
  let _g, p = diamond_split () in
  let order = Flows.topological_order p ~dst:3 in
  let pos x = Option.get (List.find_index (( = ) x) order) in
  check "s before a" true (pos 0 < pos 1);
  check "s before b" true (pos 0 < pos 2);
  check "a before d" true (pos 1 < pos 3)

let test_max_utilization () =
  let _g, p = diamond_split () in
  (* capacity is 10e6 bits/s; with 1000-bit packets that is 10000 pkt/s. *)
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 10000.0 } ] in
  let fl = Flows.compute p traffic in
  check_float "util" 0.5 (Flows.max_utilization p fl ~packet_size:1000.0)

(* --- Evaluate --------------------------------------------------------- *)

let test_total_cost_and_avg_delay () =
  let g, p = diamond_split () in
  let model = Evaluate.model g ~packet_size:1000.0 in
  (* capacity = 10000 pkt/s per link. *)
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 5000.0 } ] in
  let fl = Flows.compute p traffic in
  (* Each of 4 links carries 2500: D = 2500/7500 + 0.001*2500 = 2.8333...
     Total = 4 * that; avg = total / 5000. *)
  let expected_link = (2500.0 /. 7500.0) +. 2.5 in
  check_float "total cost" (4.0 *. expected_link) (Evaluate.total_cost model fl);
  check_float "avg delay" (4.0 *. expected_link /. 5000.0)
    (Evaluate.average_delay model fl traffic)

let test_per_flow_delay_chain () =
  (* For a single path the flow delay is the sum of link sojourns. *)
  let g = diamond () in
  let p = Params.create g in
  Params.set_single p ~node:0 ~dst:3 ~via:1;
  Params.set_single p ~node:1 ~dst:3 ~via:3;
  let model = Evaluate.model g ~packet_size:1000.0 in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 1000.0 } ] in
  let fl = Flows.compute p traffic in
  let sojourn = (1.0 /. (10000.0 -. 1000.0)) +. 0.001 in
  match Evaluate.per_flow_delays model p fl traffic with
  | [ (_, d) ] -> check_float "two hops" (2.0 *. sojourn) d
  | _ -> Alcotest.fail "expected one flow"

let test_per_flow_delay_weighted () =
  (* With a 50/50 split over symmetric paths, delay equals either path. *)
  let g, p = diamond_split () in
  let model = Evaluate.model g ~packet_size:1000.0 in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 1000.0 } ] in
  let fl = Flows.compute p traffic in
  let sojourn = (1.0 /. (10000.0 -. 500.0)) +. 0.001 in
  check_float "split delay" (2.0 *. sojourn)
    (Evaluate.expected_delay model p fl ~src:0 ~dst:3)

let test_marginal_distances_decrease_downstream () =
  let g, p = diamond_split () in
  let model = Evaluate.model g ~packet_size:1000.0 in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 1000.0 } ] in
  let fl = Flows.compute p traffic in
  let delta = Evaluate.marginal_distances model p fl ~dst:3 in
  check_float "dst zero" 0.0 delta.(3);
  check "s > a" true (delta.(0) > delta.(1));
  check "a finite" true (Float.is_finite delta.(1))

let test_unrouted_delay_infinite () =
  let g = diamond () in
  let p = Params.create g in
  Params.set_single p ~node:1 ~dst:3 ~via:3;
  let model = Evaluate.model g ~packet_size:1000.0 in
  let traffic = Traffic.of_flows ~n:4 [ { src = 1; dst = 3; rate = 1.0 } ] in
  let fl = Flows.compute p traffic in
  check "s unrouted" true
    (Float.equal (Evaluate.expected_delay model p fl ~src:0 ~dst:3) infinity)

let prop_flows_conserve_random_splits =
  (* Random split at s over the diamond: input always reaches d. *)
  QCheck.Test.make ~name:"flow conservation under random splits" ~count:200
    QCheck.(pair (float_range 0.01 0.99) (float_range 1.0 5000.0))
    (fun (alpha, rate) ->
      let g = diamond () in
      let p = Params.create g in
      Params.set_fractions p ~node:0 ~dst:3 [ (1, alpha); (2, 1.0 -. alpha) ];
      Params.set_single p ~node:1 ~dst:3 ~via:3;
      Params.set_single p ~node:2 ~dst:3 ~via:3;
      let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate } ] in
      let fl = Flows.compute p traffic in
      let into_d =
        Flows.link_flow fl ~src:1 ~dst:3 +. Flows.link_flow fl ~src:2 ~dst:3
      in
      Float.abs (into_d -. rate) < 1e-6 *. rate)

let test_total_cost_equals_flow_weighted_delays () =
  (* Little's-law identity: D_T = sum over flows of rate * path delay
     (both sides count packet-seconds in the network per second). *)
  let g, p = diamond_split () in
  let model = Evaluate.model g ~packet_size:1000.0 in
  let traffic =
    Traffic.of_flows ~n:4
      [ { src = 0; dst = 3; rate = 3000.0 }; { src = 1; dst = 3; rate = 1000.0 } ]
  in
  let fl = Flows.compute p traffic in
  let lhs = Evaluate.total_cost model fl in
  let rhs =
    List.fold_left
      (fun acc ((f : Traffic.flow), d) -> acc +. (f.rate *. d))
      0.0
      (Evaluate.per_flow_delays model p fl traffic)
  in
  check_float "packet-seconds balance" lhs rhs

let prop_littles_law_random_splits =
  QCheck.Test.make ~name:"D_T = sum rate x delay under random splits" ~count:100
    QCheck.(pair (float_range 0.05 0.95) (float_range 100.0 8000.0))
    (fun (alpha, rate) ->
      let g = diamond () in
      let p = Params.create g in
      Params.set_fractions p ~node:0 ~dst:3 [ (1, alpha); (2, 1.0 -. alpha) ];
      Params.set_single p ~node:1 ~dst:3 ~via:3;
      Params.set_single p ~node:2 ~dst:3 ~via:3;
      let model = Evaluate.model g ~packet_size:1000.0 in
      let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate } ] in
      let fl = Flows.compute p traffic in
      let lhs = Evaluate.total_cost model fl in
      let rhs =
        List.fold_left
          (fun acc ((f : Traffic.flow), d) -> acc +. (f.rate *. d))
          0.0
          (Evaluate.per_flow_delays model p fl traffic)
      in
      Float.abs (lhs -. rhs) <= 1e-9 *. Float.max 1.0 lhs)

let test_flow_delay_lower_bounded_by_empty_network () =
  (* A flow can never beat its zero-flow shortest path. *)
  let g, p = diamond_split () in
  let model = Evaluate.model g ~packet_size:1000.0 in
  let traffic = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 6000.0 } ] in
  let fl = Flows.compute p traffic in
  let d = Evaluate.expected_delay model p fl ~src:0 ~dst:3 in
  let empty_sojourn = (1.0 /. 10000.0) +. 0.001 in
  check "bounded below" true (d >= 2.0 *. empty_sojourn)

(* --- Feasibility ------------------------------------------------------ *)

module Feasibility = Mdr_fluid.Feasibility

let check_approx = Alcotest.(check (float 1e-6))

let test_max_flow_uses_disjoint_paths () =
  (* Each diamond link is 10e6 b/s = 10000 pkt/s at 1000-bit packets;
     s->d has two disjoint paths, so the max flow must be 20000. *)
  let g = diamond () in
  let mf =
    Feasibility.max_flow g ~packet_size:1000.0 ~sources:[ (0, 1.0e9) ] ~dst:3
  in
  check_approx "two disjoint paths" 20000.0 mf

let test_feasibility_feasible_matrix () =
  let g = diamond () in
  (* 15000 pkt/s exceeds any single path (10000) but fits the 20000
     min cut: feasible only because the check is multipath-aware. *)
  let t = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 15000.0 } ] in
  let r = Feasibility.report g ~packet_size:1000.0 t in
  check "feasible" true (Feasibility.feasible r);
  check_approx "fraction capped at 1" 1.0 r.Feasibility.fraction;
  check "no bottleneck" true (r.Feasibility.bottleneck = None)

let test_feasibility_min_cut_fraction () =
  let g = diamond () in
  (* 40000 pkt/s offered into a 20000 pkt/s min cut: fraction 0.5 and
     the bottleneck destination is reported. *)
  let t = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 40000.0 } ] in
  let r = Feasibility.report g ~packet_size:1000.0 t in
  check "infeasible" false (Feasibility.feasible r);
  check_approx "fraction" 0.5 r.Feasibility.fraction;
  check "bottleneck" true (r.Feasibility.bottleneck = Some 3);
  check "per-destination entry" true
    (match r.Feasibility.per_destination with
    | [ (3, f) ] -> Float.abs (f -. 0.5) < 1e-6
    | _ -> false)

let test_feasibility_fraction_scales_inversely () =
  let g = diamond () in
  let t = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 40000.0 } ] in
  let f1 = (Feasibility.report g ~packet_size:1000.0 t).Feasibility.fraction in
  let f2 =
    (Feasibility.report g ~packet_size:1000.0 (Traffic.scale t 2.0))
      .Feasibility.fraction
  in
  check_approx "doubling the load halves the fraction" (f1 /. 2.0) f2

let test_feasibility_cap_headroom () =
  let g = diamond () in
  let t = Traffic.of_flows ~n:4 [ { src = 0; dst = 3; rate = 15000.0 } ] in
  (* At cap 0.5 only 10000 pkt/s of the cut is usable: 15000 offered
     admits 2/3. *)
  let r = Feasibility.report ~cap:0.5 g ~packet_size:1000.0 t in
  check_approx "capped fraction" (2.0 /. 3.0) r.Feasibility.fraction

let suite =
  [
    Alcotest.test_case "delay: zero flow" `Quick test_delay_zero_flow;
    Alcotest.test_case "delay: M/M/1 formulas (Eq. 24)" `Quick test_delay_mm1_formula;
    Alcotest.test_case "delay: cost = f * sojourn" `Quick test_delay_cost_sojourn_relation;
    Alcotest.test_case "delay: finite beyond capacity" `Quick test_delay_finite_beyond_capacity;
    Alcotest.test_case "delay: C^1 at the knee" `Quick test_delay_extension_continuity;
    Alcotest.test_case "delay: input validation" `Quick test_delay_invalid;
    Alcotest.test_case "traffic: accumulates duplicates" `Quick test_traffic_accumulates;
    Alcotest.test_case "traffic: validation" `Quick test_traffic_validation;
    Alcotest.test_case "traffic: scaling" `Quick test_traffic_scale;
    Alcotest.test_case "traffic: bits conversion" `Quick test_traffic_bits_conversion;
    Alcotest.test_case "params: set/get/validate" `Quick test_params_set_get;
    Alcotest.test_case "params: rejects bad sum" `Quick test_params_rejects_bad_sum;
    Alcotest.test_case "params: rejects non-neighbor" `Quick test_params_rejects_non_neighbor;
    Alcotest.test_case "params: clear and copy" `Quick test_params_clear_and_copy;
    Alcotest.test_case "params: assign" `Quick test_params_assign;
    Alcotest.test_case "params: cycle detection" `Quick test_params_acyclic_detects_loop;
    Alcotest.test_case "flows: 50/50 split" `Quick test_flows_split;
    Alcotest.test_case "flows: conservation" `Quick test_flows_conservation;
    Alcotest.test_case "flows: transit traffic" `Quick test_flows_transit_traffic;
    Alcotest.test_case "flows: cycle raises" `Quick test_flows_cycle_raises;
    Alcotest.test_case "flows: iterative fallback agrees" `Quick test_flows_iterative_fallback_matches_exact;
    Alcotest.test_case "flows: topological order" `Quick test_topological_order;
    Alcotest.test_case "flows: max utilization" `Quick test_max_utilization;
    Alcotest.test_case "evaluate: D_T and average delay" `Quick test_total_cost_and_avg_delay;
    Alcotest.test_case "evaluate: chain per-flow delay" `Quick test_per_flow_delay_chain;
    Alcotest.test_case "evaluate: split per-flow delay" `Quick test_per_flow_delay_weighted;
    Alcotest.test_case "evaluate: marginal distances" `Quick test_marginal_distances_decrease_downstream;
    Alcotest.test_case "evaluate: unrouted is infinite" `Quick test_unrouted_delay_infinite;
    QCheck_alcotest.to_alcotest prop_delay_marginal_increasing;
    QCheck_alcotest.to_alcotest prop_delay_cost_convex;
    Alcotest.test_case "evaluate: Little's-law identity" `Quick test_total_cost_equals_flow_weighted_delays;
    Alcotest.test_case "evaluate: zero-flow lower bound" `Quick test_flow_delay_lower_bounded_by_empty_network;
    QCheck_alcotest.to_alcotest prop_flows_conserve_random_splits;
    QCheck_alcotest.to_alcotest prop_littles_law_random_splits;
    Alcotest.test_case "feasibility: max-flow multipath" `Quick test_max_flow_uses_disjoint_paths;
    Alcotest.test_case "feasibility: feasible matrix" `Quick test_feasibility_feasible_matrix;
    Alcotest.test_case "feasibility: min-cut fraction" `Quick test_feasibility_min_cut_fraction;
    Alcotest.test_case "feasibility: fraction scales inversely" `Quick test_feasibility_fraction_scales_inversely;
    Alcotest.test_case "feasibility: capacity headroom cap" `Quick test_feasibility_cap_headroom;
  ]
