(* The crash-safe route-server: codec framing and CRC detection, the
   journal/snapshot crash discipline (torn tails, atomic replacement),
   backpressure (coalescing, damping, shedding), the watchdog, and the
   headline property — restore + replay reproduces the uninterrupted
   run's fingerprint byte-for-byte for random kill schedules. *)

module Codec = Mdr_server.Codec
module Update = Mdr_server.Update
module Journal = Mdr_server.Journal
module Snapshot = Mdr_server.Snapshot
module Ingest = Mdr_server.Ingest
module Server = Mdr_server.Server
module Audit = Mdr_server.Audit
module Procfault = Mdr_faults.Procfault
module Cost_trigger = Mdr_routing.Cost_trigger
module Graph = Mdr_topology.Graph
module Rng = Mdr_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---- scratch directories --------------------------------------------- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdr_server_test.%d.%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ---- fixture topology ------------------------------------------------ *)

(* Six nodes, eight duplex links: two cycles sharing edges, so every
   node has a real multipath choice and a failure never partitions. *)
let small_topo () =
  let g = Graph.create ~names:[| "a"; "b"; "c"; "d"; "e"; "f" |] in
  Graph.add_duplex g "a" "b" ~capacity:1.0e6 ~prop_delay:0.001;
  Graph.add_duplex g "b" "c" ~capacity:1.0e6 ~prop_delay:0.002;
  Graph.add_duplex g "c" "d" ~capacity:1.0e6 ~prop_delay:0.001;
  Graph.add_duplex g "d" "e" ~capacity:1.0e6 ~prop_delay:0.003;
  Graph.add_duplex g "e" "f" ~capacity:1.0e6 ~prop_delay:0.001;
  Graph.add_duplex g "f" "a" ~capacity:1.0e6 ~prop_delay:0.002;
  Graph.add_duplex g "a" "d" ~capacity:1.0e6 ~prop_delay:0.005;
  Graph.add_duplex g "b" "e" ~capacity:1.0e6 ~prop_delay:0.004;
  g

let cost = Procfault.default_base_cost

let server_update = function
  | Procfault.Cost_change { src; dst; cost } -> Update.Set_cost { src; dst; cost }
  | Procfault.Fail { a; b } -> Update.Link_down { a; b }
  | Procfault.Restore { a; b; cost } -> Update.Link_up { a; b; cost }

let stream topo ~seed ~updates =
  List.map server_update
    (Procfault.stream ~rng:(Rng.substream ~seed ~index:0) ~topo ~updates ())

(* ---- codec ----------------------------------------------------------- *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_codec_roundtrip () =
  with_dir (fun d ->
      let path = Filename.concat d "rec.bin" in
      write_file path (Codec.frame "hello" ^ Codec.frame "");
      let ic = open_in_bin path in
      (match Codec.read_record ic with
      | Codec.Record r -> check_str "payload" "hello" r
      | Codec.Torn _ | Codec.Eof -> Alcotest.fail "expected record");
      (match Codec.read_record ic with
      | Codec.Record r -> check_str "empty payload" "" r
      | Codec.Torn _ | Codec.Eof -> Alcotest.fail "expected empty record");
      (match Codec.read_record ic with
      | Codec.Eof -> ()
      | Codec.Record _ | Codec.Torn _ -> Alcotest.fail "expected eof");
      close_in ic)

let test_codec_detects_corruption () =
  with_dir (fun d ->
      let path = Filename.concat d "rec.bin" in
      let framed = Bytes.of_string (Codec.frame "payload-bytes") in
      (* flip one payload bit; the CRC must catch it *)
      let i = Bytes.length framed - 3 in
      Bytes.set framed i (Char.chr (Char.code (Bytes.get framed i) lxor 1));
      write_file path (Bytes.to_string framed);
      let ic = open_in_bin path in
      (match Codec.read_record ic with
      | Codec.Torn reason ->
          check "mentions crc" true
            (String.length reason > 0 (* any reason; must not be a Record *))
      | Codec.Record _ -> Alcotest.fail "corruption not detected"
      | Codec.Eof -> Alcotest.fail "unexpected eof");
      close_in ic)

let test_codec_short_record () =
  with_dir (fun d ->
      let path = Filename.concat d "rec.bin" in
      let whole = Codec.frame "something long enough" in
      write_file path (String.sub whole 0 (String.length whole - 4));
      let ic = open_in_bin path in
      (match Codec.read_record ic with
      | Codec.Torn _ -> ()
      | Codec.Record _ -> Alcotest.fail "short record accepted"
      | Codec.Eof -> Alcotest.fail "unexpected eof");
      close_in ic)

(* ---- update codec ---------------------------------------------------- *)

let test_update_roundtrip () =
  List.iter
    (fun u -> check "roundtrip" true (Update.decode (Update.encode u) = u))
    [
      Update.Set_cost { src = 0; dst = 1; cost = 3.25 };
      Update.Set_cost { src = 5; dst = 2; cost = 1.0e-9 };
      Update.Link_down { a = 4; b = 3 };
      Update.Link_up { a = 2; b = 5; cost = 42.0 };
    ];
  match Update.decode "\255garbage" with
  | _ -> Alcotest.fail "unknown tag accepted"
  | exception Update.Corrupt _ -> ()

let test_update_validate () =
  let topo = small_topo () in
  let rejects u =
    match Update.validate topo u with
    | () -> Alcotest.fail "invalid update accepted"
    | exception Invalid_argument _ -> ()
  in
  Update.validate topo (Update.Set_cost { src = 0; dst = 1; cost = 2.0 });
  rejects (Update.Set_cost { src = 0; dst = 2; cost = 2.0 }) (* no a-c link *);
  rejects (Update.Set_cost { src = 0; dst = 1; cost = 0.0 });
  rejects (Update.Set_cost { src = 0; dst = 1; cost = infinity });
  rejects (Update.Link_down { a = 0; b = 2 });
  rejects (Update.Link_up { a = 0; b = 0; cost = 1.0 })

(* ---- journal --------------------------------------------------------- *)

let test_journal_roundtrip () =
  with_dir (fun d ->
      let path = Filename.concat d "journal.bin" in
      let j = Journal.create ~path () in
      for seq = 1 to 5 do
        Journal.append j ~seq ~payload:(Printf.sprintf "u%d" seq)
      done;
      check_int "records" 5 (Journal.records j);
      Journal.close j;
      let r = Journal.replay ~path in
      check "not torn" false r.Journal.torn;
      check_int "entries" 5 (List.length r.Journal.entries);
      List.iteri
        (fun i (seq, payload) ->
          check_int "seq" (i + 1) seq;
          check_str "payload" (Printf.sprintf "u%d" (i + 1)) payload)
        r.Journal.entries)

let test_journal_torn_tail () =
  with_dir (fun d ->
      let path = Filename.concat d "journal.bin" in
      let j = Journal.create ~path () in
      for seq = 1 to 3 do
        Journal.append j ~seq ~payload:"clean"
      done;
      (* simulated kill mid-append: record 4 is cut short *)
      Journal.append ~torn_after:5 j ~seq:4 ~payload:"lost-update";
      (match Journal.append j ~seq:5 ~payload:"after-death" with
      | () -> Alcotest.fail "append on a dead journal succeeded"
      | exception Invalid_argument _ -> ());
      let r = Journal.replay ~path in
      check "torn tail skipped" true r.Journal.torn;
      check_int "clean entries survive" 3 (List.length r.Journal.entries);
      (* reopen: the torn tail must be truncated before new appends *)
      let j2, r2 = Journal.open_append ~path () in
      check_int "replay on open" 3 (List.length r2.Journal.entries);
      Journal.append j2 ~seq:4 ~payload:"retried";
      Journal.close j2;
      let r3 = Journal.replay ~path in
      check "clean after retry" false r3.Journal.torn;
      check_int "retried record readable" 4 (List.length r3.Journal.entries))

let test_journal_corrupt_header () =
  with_dir (fun d ->
      let path = Filename.concat d "journal.bin" in
      write_file path "not a journal at all";
      match Journal.replay ~path with
      | _ -> Alcotest.fail "corrupt header accepted"
      | exception Failure _ -> ())

(* ---- snapshot -------------------------------------------------------- *)

let test_snapshot_atomic_replace () =
  with_dir (fun d ->
      let path = Filename.concat d "snapshot.bin" in
      check "initially missing" true
        (match Snapshot.read ~path with `Missing -> true | _ -> false);
      (match Snapshot.write ~path "state-v1" with
      | `Ok -> ()
      | `Torn -> Alcotest.fail "unexpected torn");
      (* a kill mid-write leaves the old snapshot untouched *)
      (match Snapshot.write ~torn_after:7 ~path "state-v2-much-longer" with
      | `Torn -> ()
      | `Ok -> Alcotest.fail "torn write reported ok");
      (match Snapshot.read ~path with
      | `Snapshot s -> check_str "old snapshot intact" "state-v1" s
      | `Missing | `Corrupt _ -> Alcotest.fail "old snapshot lost");
      check "stale tmp left" true (Sys.file_exists (path ^ ".tmp"));
      Snapshot.remove_stale_tmp ~path;
      check "stale tmp removed" false (Sys.file_exists (path ^ ".tmp"));
      (match Snapshot.write ~path "state-v2" with
      | `Ok -> ()
      | `Torn -> Alcotest.fail "unexpected torn");
      match Snapshot.read ~path with
      | `Snapshot s -> check_str "replaced" "state-v2" s
      | `Missing | `Corrupt _ -> Alcotest.fail "replacement unreadable")

let test_snapshot_detects_corruption () =
  with_dir (fun d ->
      let path = Filename.concat d "snapshot.bin" in
      (match Snapshot.write ~path "some server state" with
      | `Ok -> ()
      | `Torn -> Alcotest.fail "unexpected torn");
      let raw = Bytes.of_string (read_file path) in
      let i = Bytes.length raw - 2 in
      Bytes.set raw i (Char.chr (Char.code (Bytes.get raw i) lxor 0x10));
      write_file path (Bytes.to_string raw);
      match Snapshot.read ~path with
      | `Corrupt _ -> ()
      | `Snapshot _ -> Alcotest.fail "corruption not detected"
      | `Missing -> Alcotest.fail "file exists")

(* ---- ingest (backpressure) ------------------------------------------- *)

let flat_cost ~src:_ ~dst:_ = 10.0

let test_ingest_coalesce () =
  let t = Ingest.create ~capacity:4 ~initial_cost:flat_cost () in
  Ingest.offer t ~now:0.0 (Update.Set_cost { src = 0; dst = 1; cost = 5.0 });
  Ingest.offer t ~now:0.1 (Update.Set_cost { src = 0; dst = 1; cost = 7.0 });
  Ingest.offer t ~now:0.2 (Update.Set_cost { src = 1; dst = 0; cost = 6.0 });
  check_int "coalesced into two slots" 2 (Ingest.depth t);
  (match Ingest.drain t ~now:0.3 with
  | [ Update.Set_cost { src = 0; dst = 1; cost }; Update.Set_cost _ ] ->
      check "latest value wins" true (Float.equal cost 7.0)
  | _ -> Alcotest.fail "unexpected drain");
  check_int "coalesce counted" 1 (Ingest.stats t).Ingest.coalesced

let test_ingest_shed_and_degraded () =
  let t = Ingest.create ~degraded_hold:5.0 ~capacity:2 ~initial_cost:flat_cost () in
  Ingest.offer t ~now:0.0 (Update.Set_cost { src = 0; dst = 1; cost = 1.0 });
  Ingest.offer t ~now:0.0 (Update.Set_cost { src = 2; dst = 3; cost = 1.0 });
  check "full queue" true (match Ingest.status t ~now:0.0 with
    | `Degraded -> true | `Ok -> false);
  Ingest.offer t ~now:1.0 (Update.Set_cost { src = 4; dst = 5; cost = 1.0 });
  check_int "third cost shed" 1 (Ingest.stats t).Ingest.shed;
  (* topology truth is never shed, even past the bound *)
  Ingest.offer t ~now:1.0 (Update.Link_down { a = 0; b = 1 });
  check_int "link event enqueued past bound" 3 (Ingest.depth t);
  check_int "drained in arrival order" 3 (List.length (Ingest.drain t ~now:1.0));
  check "degraded holds after shed" true
    (match Ingest.status t ~now:2.0 with `Degraded -> true | `Ok -> false);
  check "recovers after hold" true
    (match Ingest.status t ~now:9.0 with `Ok -> true | `Degraded -> false)

let test_ingest_damping () =
  let params =
    { Cost_trigger.rel_threshold = 0.3; hold = 1.0; damping = None }
  in
  let t = Ingest.create ~damping:params ~capacity:8 ~initial_cost:flat_cost () in
  (* sub-threshold wobble is absorbed before it takes queue space *)
  Ingest.offer t ~now:0.0 (Update.Set_cost { src = 0; dst = 1; cost = 10.4 });
  check_int "absorbed" 1 (Ingest.stats t).Ingest.absorbed;
  check_int "queue untouched" 0 (Ingest.depth t);
  (* the first significant change passes immediately *)
  Ingest.offer t ~now:0.0 (Update.Set_cost { src = 0; dst = 1; cost = 20.0 });
  (match Ingest.drain t ~now:0.0 with
  | [ Update.Set_cost { cost; _ } ] -> check "applied" true (Float.equal cost 20.0)
  | _ -> Alcotest.fail "significant change not released");
  (* the next one is held down and released when the timer expires *)
  Ingest.offer t ~now:0.1 (Update.Set_cost { src = 0; dst = 1; cost = 40.0 });
  check_int "held, not queued" 0 (Ingest.depth t);
  check_int "timer armed" 1 (Ingest.pending_timers t);
  check_int "not due yet" 0 (List.length (Ingest.drain t ~now:0.2));
  match Ingest.drain t ~now:5.0 with
  | [ Update.Set_cost { cost; _ } ] ->
      check "held value released" true (Float.equal cost 40.0)
  | _ -> Alcotest.fail "hold-down never released"

(* ---- server ---------------------------------------------------------- *)

let test_server_genesis_deterministic () =
  let topo = small_topo () in
  with_dir (fun d1 ->
      with_dir (fun d2 ->
          let s1 = Server.create ~dir:d1 ~topo ~cost () in
          let s2 = Server.create ~dir:d2 ~topo ~cost () in
          check "settled" true (Server.settled s1);
          check "lfi" true (Server.lfi_ok s1);
          check_str "genesis fingerprint deterministic" (Server.fingerprint s1)
            (Server.fingerprint s2);
          let r = Server.route s1 ~src:0 ~dst:3 in
          check "finite distance" true (Float.is_finite r.Server.distance);
          check "has successors" true (r.Server.successors <> []);
          let split = Server.split s1 ~src:0 ~dst:3 in
          let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 split in
          check "split sums to 1" true (Float.abs (total -. 1.0) < 1.0e-9);
          Server.close s1;
          Server.close s2))

let test_server_close_restore_identity () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      List.iteri
        (fun i u -> Server.apply s ~now:(float_of_int (i + 1)) u)
        (stream topo ~seed:11 ~updates:15);
      let fp = Server.fingerprint s in
      let seq = Server.seq s in
      Server.close s;
      let s' = Server.restore ~dir:d ~topo ~cost () in
      check_int "seq preserved" seq (Server.seq s');
      check_str "fingerprint preserved" fp (Server.fingerprint s');
      check "lfi after restore" true (Server.lfi_ok s');
      Server.close s')

let test_server_resume_from_seq () =
  (* A mid-journal kill loses exactly the torn update; the client
     resumes from seq + 1 and the final states converge. *)
  let topo = small_topo () in
  let updates = stream topo ~seed:23 ~updates:12 in
  with_dir (fun d_ref ->
      with_dir (fun d ->
          let r = Server.create ~dir:d_ref ~topo ~cost () in
          List.iteri
            (fun i u -> Server.apply r ~now:(float_of_int (i + 1)) u)
            updates;
          let s = Server.create ~dir:d ~topo ~cost () in
          let rest = ref [] in
          List.iteri
            (fun i u ->
              if i < 7 then Server.apply s ~now:(float_of_int (i + 1)) u
              else rest := u :: !rest)
            updates;
          let rest = List.rev !rest in
          (* kill mid-append of update 8 *)
          (match rest with
          | u :: _ ->
              Server.apply ~torn_after:9 s ~now:8.0 u;
              check "dead after torn append" false (Server.alive s)
          | [] -> Alcotest.fail "stream too short");
          let s' = Server.restore ~dir:d ~topo ~cost () in
          check_int "torn update not accepted" 7 (Server.seq s');
          (* client resumes from seq + 1: re-send the lost update and
             everything after it *)
          List.iteri
            (fun i u -> Server.apply s' ~now:(float_of_int (8 + i)) u)
            rest;
          check_int "caught up" 12 (Server.seq s');
          check_str "converged with reference" (Server.fingerprint r)
            (Server.fingerprint s');
          Server.close s';
          Server.close r))

let test_server_watchdog () =
  let topo = small_topo () in
  with_dir (fun d ->
      let config =
        {
          Server.default_config with
          snapshot_every = 0;
          queue_capacity = 1;
          max_staleness = 5.0;
          max_replay = 4;
        }
      in
      let s = Server.create ~config ~dir:d ~topo ~cost () in
      (* [create] stamps freshness with the wall clock, so drive the
         watchdog with wall-clock-relative nows *)
      let t0 = Unix.gettimeofday () in
      (* fresh server, nothing applied: stale once the budget passes *)
      let alarms = Server.heartbeat s ~now:(t0 +. 100.0) in
      check "stale alarm" true
        (List.exists
           (function Server.Stale _ -> true | _ -> false)
           alarms);
      (* journal outgrows the replay budget with snapshots disabled *)
      List.iteri
        (fun i u -> Server.apply s ~now:(t0 +. (float_of_int i /. 10.0)) u)
        (stream topo ~seed:3 ~updates:6);
      let alarms = Server.heartbeat s ~now:(t0 +. 0.6) in
      check "replay-lag alarm" true
        (List.exists
           (function
             | Server.Replay_lag { records; budget } -> records > budget
             | _ -> false)
           alarms);
      check "no stale alarm when fresh" false
        (List.exists
           (function Server.Stale _ -> true | _ -> false)
           alarms);
      (* overflow the 1-slot queue: shed must be reported once *)
      Server.offer s ~now:(t0 +. 1.0)
        (Update.Set_cost { src = 0; dst = 1; cost = 9.0 });
      Server.offer s ~now:(t0 +. 1.0)
        (Update.Set_cost { src = 1; dst = 2; cost = 9.0 });
      let alarms = Server.heartbeat s ~now:(t0 +. 1.0) in
      check "shedding alarm" true
        (List.exists
           (function Server.Shedding { shed } -> shed = 1 | _ -> false)
           alarms);
      let alarms = Server.heartbeat s ~now:(t0 +. 1.1) in
      check "shed reported once" false
        (List.exists
           (function Server.Shedding _ -> true | _ -> false)
           alarms);
      check "degraded status" true
        (match (Server.health s ~now:(t0 +. 1.2)).Server.status with
        | Server.Degraded -> true
        | Server.Ok -> false);
      Server.close s)

let test_server_rejects_bad_input () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      (match Server.apply s ~now:1.0 (Update.Set_cost { src = 0; dst = 2; cost = 1.0 }) with
      | () -> Alcotest.fail "nonexistent link accepted"
      | exception Invalid_argument _ -> ());
      check_int "nothing journaled" 0 (Server.seq s);
      (match Server.route s ~src:0 ~dst:99 with
      | _ -> Alcotest.fail "out-of-range node accepted"
      | exception Invalid_argument _ -> ());
      Server.close s;
      match Server.apply s ~now:2.0 (Update.Set_cost { src = 0; dst = 1; cost = 2.0 }) with
      | () -> Alcotest.fail "apply after close accepted"
      | exception Invalid_argument _ -> ())

(* Satellite: corruption survivals are counted and alarmed, not just
   logged — "clean" and "survived corruption" must be telling apart
   from the health record alone. *)
let test_corruption_counters_torn_tail () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      Server.apply s ~now:1.0 (Update.Set_cost { src = 0; dst = 1; cost = 2.0 });
      Server.apply s ~now:2.0 (Update.Set_cost { src = 1; dst = 2; cost = 3.0 });
      Server.apply s ~torn_after:6 ~now:3.0
        (Update.Set_cost { src = 2; dst = 3; cost = 4.0 });
      let s = Server.restore ~now:4.0 ~dir:d ~topo ~cost () in
      let h = Server.health s ~now:4.0 in
      check_int "torn tail counted" 1 h.Server.corruption.Server.torn_tails;
      check_int "no snapshot fallback" 0 h.Server.corruption.Server.snapshot_fallbacks;
      let alarms = Server.heartbeat s ~now:4.1 in
      check "survived-corruption alarm" true
        (List.exists
           (function
             | Server.Survived_corruption { torn_tails = 1; snapshot_fallbacks = 0 } ->
                 true
             | _ -> false)
           alarms);
      check "alarm fires once" false
        (List.exists
           (function Server.Survived_corruption _ -> true | _ -> false)
           (Server.heartbeat s ~now:4.2));
      Server.close s)

let test_corruption_counters_snapshot_fallback () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      Server.apply s ~now:1.0 (Update.Set_cost { src = 0; dst = 1; cost = 2.0 });
      Server.apply s ~now:2.0 (Update.Link_down { a = 1; b = 2 });
      let fp = Server.fingerprint s in
      Server.close s;
      (* a snapshot file of garbage: unreadable, abandoned for genesis
         + journal replay, and counted *)
      write_file (Filename.concat d "snapshot.bin") "not a snapshot at all";
      let s = Server.restore ~now:3.0 ~dir:d ~topo ~cost () in
      check_str "state rebuilt from journal" fp (Server.fingerprint s);
      let h = Server.health s ~now:3.0 in
      check_int "fallback counted" 1 h.Server.corruption.Server.snapshot_fallbacks;
      check "alarmed" true
        (List.exists
           (function Server.Survived_corruption _ -> true | _ -> false)
           (Server.heartbeat s ~now:3.1));
      (* a checkpoint replaces the garbage; the next restore is clean *)
      Server.checkpoint s;
      Server.close s;
      let s2 = Server.restore ~now:5.0 ~dir:d ~topo ~cost () in
      let h2 = Server.health s2 ~now:5.0 in
      check "clean restore reports clean" true
        (h2.Server.corruption.Server.torn_tails = 0
        && h2.Server.corruption.Server.snapshot_fallbacks = 0);
      check_str "still the same state" fp (Server.fingerprint s2);
      Server.close s2)

(* ---- audit ----------------------------------------------------------- *)

let test_audit_small () =
  let topo = small_topo () in
  with_dir (fun d ->
      let r = Audit.run ~updates:20 ~kills:3 ~dir:d ~topo ~seed:42 () in
      check "audit passes" true (Audit.ok r);
      check_int "all kills audited" 3 (List.length r.Audit.kills);
      check_int "slo over every restore" 3
        r.Audit.restore_slo.Mdr_faults.Recovery.count;
      (* the three kill kinds all appear (rotation) *)
      let kinds =
        List.sort_uniq Stdlib.compare
          (List.map (fun o -> o.Audit.where) r.Audit.kills)
      in
      check_int "all kill kinds exercised" 3 (List.length kinds);
      check "report renders" true (String.length (Audit.report r) > 0))

let test_audit_storm_accounting () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Audit.storm ~ticks:10 ~intensity:8 ~budget:2 ~dir:d ~topo ~seed:1 () in
      check_int "all offers accounted" s.Audit.offered
        (s.Audit.applied + s.Audit.coalesced + s.Audit.shed);
      check_int "offered = ticks * intensity" 80 s.Audit.offered;
      check "lfi survives the storm" true s.Audit.storm_lfi_ok)

(* ---- multi-writer: per-client sequence spaces and epoch fencing ------ *)

let set01 cost = Update.Set_cost { src = 0; dst = 1; cost }
let set34 cost = Update.Set_cost { src = 3; dst = 4; cost }

let test_fencing_stale_epoch_rejected () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      (* unclaimed pairs are open to any client *)
      check "open pair applies" true
        (Server.submit s ~now:1.0 ~client:1 ~seq:1 ~epoch:0 (set01 2.0)
        = Server.Applied);
      (* client 2 takes ownership of (0, 1) *)
      let e = Server.claim s ~now:2.0 ~client:2 ~scope:(Server.Pairs [ (1, 0) ]) in
      check_int "first epoch" 1 e;
      (* client 1's next write to the pair is fenced, not applied *)
      (match Server.submit s ~now:3.0 ~client:1 ~seq:2 ~epoch:0 (set01 3.0) with
      | Server.Fenced { owner = 2; current = 1 } -> ()
      | _ -> Alcotest.fail "stale write not fenced");
      check_int "fenced write consumed no seq" 2 (Server.seq s);
      check_int "client 1 mark unchanged" 1 (Server.client_seq s ~client:1);
      (* the owner writes under its epoch *)
      check "owner applies" true
        (Server.submit s ~now:4.0 ~client:2 ~seq:1 ~epoch:e (set01 4.0)
        = Server.Applied);
      (* a pair nobody claimed stays open *)
      check "other pair still open" true
        (Server.submit s ~now:5.0 ~client:1 ~seq:2 ~epoch:0 (set34 1.5)
        = Server.Applied);
      Server.close s)

let test_fencing_new_epoch_wins () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      let e1 = Server.claim s ~now:1.0 ~client:1 ~scope:Server.All in
      check "old owner writes" true
        (Server.submit s ~now:2.0 ~client:1 ~seq:1 ~epoch:e1 (set01 2.0)
        = Server.Applied);
      (* client 2 takes over the whole topology under a newer epoch *)
      let e2 = Server.claim s ~now:3.0 ~client:2 ~scope:Server.All in
      check "takeover epoch is newer" true (e2 > e1);
      (match Server.submit s ~now:4.0 ~client:1 ~seq:2 ~epoch:e1 (set01 3.0) with
      | Server.Fenced { owner = 2; current } -> check_int "fence names e2" e2 current
      | _ -> Alcotest.fail "zombie writer not fenced");
      check "new owner writes" true
        (Server.submit s ~now:5.0 ~client:2 ~seq:1 ~epoch:e2 (set01 5.0)
        = Server.Applied);
      (* re-claiming what it already owns is idempotent: same epoch,
         no journal entry — a duplicated Claim frame must not fence
         its own sender's in-flight submits *)
      let before = Server.seq s in
      check_int "re-claim returns standing grant" e2
        (Server.claim s ~now:6.0 ~client:2 ~scope:Server.All);
      check_int "re-claim journaled nothing" before (Server.seq s);
      Server.close s)

let test_fencing_epoch_persists_across_restart () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      let e1 = Server.claim s ~now:1.0 ~client:1 ~scope:(Server.Pairs [ (0, 1) ]) in
      check "owner writes" true
        (Server.submit s ~now:2.0 ~client:1 ~seq:1 ~epoch:e1 (set01 2.0)
        = Server.Applied);
      let claims = Server.claims s in
      let epoch = Server.epoch s in
      Server.close s;
      let s' = Server.restore ~dir:d ~topo ~cost () in
      check "claim table restored" true (Server.claims s' = claims);
      check_int "epoch counter restored" epoch (Server.epoch s');
      check_int "client epoch restored" e1 (Server.client_epoch s' ~client:1);
      (* the fence survives the restart *)
      (match Server.submit s' ~now:3.0 ~client:2 ~seq:1 ~epoch:0 (set01 9.0) with
      | Server.Fenced { owner = 1; current } -> check_int "old epoch fences" e1 current
      | _ -> Alcotest.fail "fence lost across restart");
      (* and a post-restart claim is strictly newer than anything granted *)
      let e2 = Server.claim s' ~now:4.0 ~client:2 ~scope:(Server.Pairs [ (0, 1) ]) in
      check "monotone across restart" true (e2 > e1);
      Server.close s')

let test_per_client_marks_restored () =
  let topo = small_topo () in
  with_dir (fun d ->
      let s = Server.create ~dir:d ~topo ~cost () in
      (* three writers interleaved, distinct per-client seq spaces *)
      check "c1/1" true
        (Server.submit s ~now:1.0 ~client:1 ~seq:1 ~epoch:0 (set01 2.0)
        = Server.Applied);
      check "c2/1" true
        (Server.submit s ~now:2.0 ~client:2 ~seq:1 ~epoch:0 (set34 1.0)
        = Server.Applied);
      check "c1/2" true
        (Server.submit s ~now:3.0 ~client:1 ~seq:2 ~epoch:0 (set01 2.5)
        = Server.Applied);
      check "c3/1" true
        (Server.submit s ~now:4.0 ~client:3 ~seq:1 ~epoch:0 (set34 0.5)
        = Server.Applied);
      (* dedup and gap detection are per-client *)
      check "c2 duplicate" true
        (Server.submit s ~now:5.0 ~client:2 ~seq:1 ~epoch:0 (set34 1.0)
        = Server.Duplicate);
      (match Server.submit s ~now:6.0 ~client:3 ~seq:3 ~epoch:0 (set34 2.0) with
      | Server.Seq_gap { expected = 2 } -> ()
      | _ -> Alcotest.fail "per-client gap not detected");
      let marks = Server.marks s in
      check "marks table" true (marks = [ (1, 2); (2, 1); (3, 1) ]);
      let fp = Server.fingerprint s in
      Server.close s;
      let s' = Server.restore ~dir:d ~topo ~cost () in
      check "marks restored byte-identically" true (Server.marks s' = marks);
      check_str "fingerprint restored" fp (Server.fingerprint s');
      check_int "c1 resumes from 3" 2 (Server.client_seq s' ~client:1);
      (* a resumed duplicate is still a duplicate after restore *)
      check "restored dedup" true
        (Server.submit s' ~now:7.0 ~client:1 ~seq:2 ~epoch:0 (set01 2.5)
        = Server.Duplicate);
      Server.close s')

(* ---- the headline property (satellite: >= 50 seeded cases) ----------- *)

let prop_crash_recovery =
  QCheck.Test.make
    ~name:
      "server: snapshot+journal restore == uninterrupted run (random \
       streams, random kills)" ~count:50
    QCheck.(pair (int_range 0 1_000_000) (int_range 10 25))
    (fun (seed, updates) ->
      let topo = small_topo () in
      with_dir (fun d ->
          (* kills:3 makes every case exercise all three kill kinds;
             kill points and torn offsets are drawn from [seed]. *)
          Audit.ok (Audit.run ~updates ~kills:3 ~dir:d ~topo ~seed ())))

let suite =
  [
    Alcotest.test_case "codec: frame/read roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: CRC detects bit flips" `Quick
      test_codec_detects_corruption;
    Alcotest.test_case "codec: short record is torn" `Quick
      test_codec_short_record;
    Alcotest.test_case "update: binary roundtrip" `Quick test_update_roundtrip;
    Alcotest.test_case "update: topology validation" `Quick test_update_validate;
    Alcotest.test_case "journal: append/replay roundtrip" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal: torn tail skipped and truncated" `Quick
      test_journal_torn_tail;
    Alcotest.test_case "journal: corrupt header refused" `Quick
      test_journal_corrupt_header;
    Alcotest.test_case "snapshot: atomic replacement" `Quick
      test_snapshot_atomic_replace;
    Alcotest.test_case "snapshot: corruption detected" `Quick
      test_snapshot_detects_corruption;
    Alcotest.test_case "ingest: same-link coalescing" `Quick test_ingest_coalesce;
    Alcotest.test_case "ingest: shedding and degraded status" `Quick
      test_ingest_shed_and_degraded;
    Alcotest.test_case "ingest: damping absorbs and holds down" `Quick
      test_ingest_damping;
    Alcotest.test_case "server: deterministic settled genesis" `Quick
      test_server_genesis_deterministic;
    Alcotest.test_case "server: close/restore identity" `Quick
      test_server_close_restore_identity;
    Alcotest.test_case "server: mid-journal kill, client resumes" `Quick
      test_server_resume_from_seq;
    Alcotest.test_case "server: watchdog alarms" `Quick test_server_watchdog;
    Alcotest.test_case "server: input validation" `Quick
      test_server_rejects_bad_input;
    Alcotest.test_case "server: torn-tail corruption counted and alarmed" `Quick
      test_corruption_counters_torn_tail;
    Alcotest.test_case "server: snapshot-fallback corruption counted" `Quick
      test_corruption_counters_snapshot_fallback;
    Alcotest.test_case "fencing: stale epoch rejected" `Quick
      test_fencing_stale_epoch_rejected;
    Alcotest.test_case "fencing: new epoch wins, re-claim idempotent" `Quick
      test_fencing_new_epoch_wins;
    Alcotest.test_case "fencing: epoch persists across restart" `Quick
      test_fencing_epoch_persists_across_restart;
    Alcotest.test_case "multi-writer: per-client marks restored" `Quick
      test_per_client_marks_restored;
    Alcotest.test_case "audit: small end-to-end run" `Quick test_audit_small;
    Alcotest.test_case "audit: storm accounting" `Quick
      test_audit_storm_accounting;
    QCheck_alcotest.to_alcotest prop_crash_recovery;
  ]
