(* Equivalence tests for the incremental SPF engine: random delta
   streams on random tables, the incremental result must be
   bit-identical to a from-scratch Dijkstra — distances, parents,
   first-hop sets, and the reported changed-node list.

   Costs are drawn from the dyadic grid (multiples of 0.25), so
   equal-cost paths collide *exactly* — the regime where tie-breaking
   must agree — while staying inside the engine's generic-position
   contract (no sub-tolerance near-ties). *)

module Rng = Mdr_util.Rng
module Topo_table = Mdr_routing.Topo_table
module Dijkstra = Mdr_routing.Dijkstra
module Incr_spf = Mdr_routing.Incr_spf

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dyadic rng = float_of_int (1 + Rng.int rng ~bound:40) *. 0.25

let random_table rng ~n =
  let t = Topo_table.create () in
  (* A ring base keeps most of the graph reachable, then random extra
     edges create shortcuts, multipath ties and asymmetry. *)
  for i = 0 to n - 1 do
    Topo_table.set t ~head:i ~tail:((i + 1) mod n) ~cost:(dyadic rng)
  done;
  let extra = n + Rng.int rng ~bound:(2 * n) in
  for _ = 1 to extra do
    let h = Rng.int rng ~bound:n and tl = Rng.int rng ~bound:n in
    if h <> tl then Topo_table.set t ~head:h ~tail:tl ~cost:(dyadic rng)
  done;
  t

(* Apply one random mutation; return the actual-change entries (empty
   when the mutation was a no-op), in the Topo_table.diff convention. *)
let random_delta rng table ~n =
  let entries = Topo_table.entries table in
  let m = List.length entries in
  let pick_existing () = List.nth entries (Rng.int rng ~bound:m) in
  match Rng.int rng ~bound:10 with
  | 0 | 1 | 2 | 3 | 4 | 5 when m > 0 ->
    (* Cost change on an existing edge. *)
    let e = pick_existing () in
    let c = dyadic rng in
    if Float.equal c e.Topo_table.cost then []
    else begin
      Topo_table.set table ~head:e.Topo_table.head ~tail:e.Topo_table.tail ~cost:c;
      [ { e with Topo_table.cost = c } ]
    end
  | 6 | 7 when m > 1 ->
    let e = pick_existing () in
    Topo_table.remove table ~head:e.Topo_table.head ~tail:e.Topo_table.tail;
    [ { e with Topo_table.cost = infinity } ]
  | _ ->
    let h = Rng.int rng ~bound:n and tl = Rng.int rng ~bound:n in
    if h = tl then []
    else begin
      let c = dyadic rng in
      match Topo_table.cost table ~head:h ~tail:tl with
      | Some old when Float.equal old c -> []
      | _ ->
        Topo_table.set table ~head:h ~tail:tl ~cost:c;
        [ { Topo_table.head = h; tail = tl; cost = c } ]
    end

let first_hop parent ~root v =
  let rec walk v = if parent.(v) = root || parent.(v) < 0 then v else walk parent.(v) in
  if v = root || parent.(v) < 0 then -1 else walk v

(* Compare the maintained state against a from-scratch run; returns an
   error description or None. *)
let mismatch ws_full scratch_dist scratch_parent (st : Incr_spf.state) table =
  let n = st.n in
  Dijkstra.on_table_into ws_full ~n ~root:st.root ~dist:scratch_dist
    ~parent:scratch_parent table;
  let bad = ref None in
  for v = 0 to n - 1 do
    if !bad = None then begin
      if not (Float.equal st.dist.(v) scratch_dist.(v)) then
        bad :=
          Some
            (Printf.sprintf "dist %d: incr %.17g full %.17g" v st.dist.(v)
               scratch_dist.(v))
      else if st.parent.(v) <> scratch_parent.(v) then
        bad :=
          Some
            (Printf.sprintf "parent %d: incr %d full %d" v st.parent.(v)
               scratch_parent.(v))
      else if
        first_hop st.parent ~root:st.root v
        <> first_hop scratch_parent ~root:st.root v
      then bad := Some (Printf.sprintf "first hop %d" v)
    end
  done;
  !bad

(* The main property: a random table, a stream of random delta batches,
   incremental == from-scratch after every batch, and the changed-node
   report is exactly the set of nodes whose (dist, parent) moved. *)
let prop_incremental_equals_full =
  QCheck.Test.make ~name:"incr SPF == full Dijkstra (random delta streams)"
    ~count:220
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 6 + Rng.int rng ~bound:30 in
      let table = random_table rng ~n in
      let root = Rng.int rng ~bound:n in
      let st = Incr_spf.create ~n ~root in
      let ws = Incr_spf.workspace () in
      let ws_full = Dijkstra.workspace () in
      let sd = Array.make n infinity and sp = Array.make n (-1) in
      Incr_spf.full ws st table;
      (match mismatch ws_full sd sp st table with
      | Some m -> QCheck.Test.fail_reportf "after full: %s" m
      | None -> ());
      let repaired = ref 0 in
      for _batch = 1 to 15 do
        let ops = 1 + Rng.int rng ~bound:3 in
        let changes = ref [] in
        for _ = 1 to ops do
          changes := !changes @ random_delta rng table ~n
        done;
        let pre_dist = Array.copy st.dist and pre_parent = Array.copy st.parent in
        let reported = ref [] in
        let outcome =
          Incr_spf.update ws st table ~changes:!changes
            ~on_changed:(fun v -> reported := v :: !reported)
        in
        (match mismatch ws_full sd sp st table with
        | Some m -> QCheck.Test.fail_reportf "after update: %s" m
        | None -> ());
        (match outcome with
        | Incr_spf.Recomputed -> ()
        | Incr_spf.Repaired k ->
          incr repaired;
          let actual = ref [] in
          for v = n - 1 downto 0 do
            if
              (not (Float.equal pre_dist.(v) st.dist.(v)))
              || pre_parent.(v) <> st.parent.(v)
            then actual := v :: !actual
          done;
          let reported = List.rev !reported in
          if reported <> !actual then
            QCheck.Test.fail_reportf "changed report mismatch: [%s] vs [%s]"
              (String.concat ";" (List.map string_of_int reported))
              (String.concat ";" (List.map string_of_int !actual));
          if k <> List.length reported then
            QCheck.Test.fail_reportf "Repaired count %d <> %d" k
              (List.length reported))
      done;
      (* The stream must actually exercise the repair path, not just
         fall back every time. *)
      ignore !repaired;
      true)

(* Kill-at-every-delta: for one deterministic stream, start incremental
   maintenance at every prefix point and verify equality after every
   subsequent delta — no starting point may diverge. *)
let test_kill_at_every_delta () =
  List.iter
    (fun seed ->
      let deltas = 12 in
      for start = 0 to deltas do
        let rng = Rng.create ~seed in
        let n = 6 + Rng.int rng ~bound:20 in
        let table = random_table rng ~n in
        let root = Rng.int rng ~bound:n in
        let st = Incr_spf.create ~n ~root in
        let ws = Incr_spf.workspace () in
        let ws_full = Dijkstra.workspace () in
        let sd = Array.make n infinity and sp = Array.make n (-1) in
        for step = 1 to deltas do
          let changes = random_delta rng table ~n in
          if step = start then Incr_spf.full ws st table
          else if step > start then begin
            ignore (Incr_spf.update ws st table ~changes);
            match mismatch ws_full sd sp st table with
            | Some m ->
              Alcotest.failf "seed %d start %d step %d: %s" seed start step m
            | None -> ()
          end
        done;
        if start = 0 then begin
          (* start=0 means the state bootstraps itself via the first
             update (version = -1 path). *)
          match mismatch ws_full sd sp st table with
          | Some m -> Alcotest.failf "seed %d bootstrap: %s" seed m
          | None -> ()
        end
      done)
    [ 11; 42; 97 ]

let test_empty_changes_noop () =
  let table = random_table (Rng.create ~seed:5) ~n:10 in
  let st = Incr_spf.create ~n:10 ~root:0 in
  let ws = Incr_spf.workspace () in
  Incr_spf.full ws st table;
  match Incr_spf.update ws st table ~changes:[] with
  | Incr_spf.Repaired 0 -> ()
  | _ -> Alcotest.fail "empty changes should be Repaired 0"

let test_zero_cost_falls_back () =
  let table = Topo_table.create () in
  Topo_table.set table ~head:0 ~tail:1 ~cost:1.0;
  Topo_table.set table ~head:1 ~tail:2 ~cost:0.0;
  Topo_table.set table ~head:0 ~tail:2 ~cost:1.0;
  Topo_table.set table ~head:2 ~tail:3 ~cost:2.0;
  let st = Incr_spf.create ~n:4 ~root:0 in
  let ws = Incr_spf.workspace () in
  Incr_spf.full ws st table;
  check "zero flagged" true st.Incr_spf.has_zero;
  Topo_table.set table ~head:2 ~tail:3 ~cost:1.5;
  let outcome =
    Incr_spf.update ws st table
      ~changes:[ { Topo_table.head = 2; tail = 3; cost = 1.5 } ]
  in
  check "recomputed" true (outcome = Incr_spf.Recomputed);
  let ws_full = Dijkstra.workspace () in
  let sd = Array.make 4 infinity and sp = Array.make 4 (-1) in
  (match mismatch ws_full sd sp st table with
  | Some m -> Alcotest.fail m
  | None -> ());
  check "fallback counted" true ((Incr_spf.stats ws).Incr_spf.fallbacks >= 1)

let test_large_orphan_region_falls_back () =
  (* A pure path: cutting the first edge orphans everything downstream,
     far past the dirty threshold. *)
  let n = 40 in
  let table = Topo_table.create () in
  for i = 0 to n - 2 do
    Topo_table.set table ~head:i ~tail:(i + 1) ~cost:1.0
  done;
  let st = Incr_spf.create ~n ~root:0 in
  let ws = Incr_spf.workspace () in
  Incr_spf.full ws st table;
  Topo_table.remove table ~head:0 ~tail:1;
  let outcome =
    Incr_spf.update ws st table
      ~changes:[ { Topo_table.head = 0; tail = 1; cost = infinity } ]
  in
  check "recomputed" true (outcome = Incr_spf.Recomputed);
  for v = 1 to n - 1 do
    check "unreachable" true (Float.equal st.Incr_spf.dist.(v) infinity)
  done

let test_single_change_is_repaired () =
  (* A small cost bump deep in a big ring-with-shortcuts graph must take
     the repair path, and the trees must still agree. *)
  let rng = Rng.create ~seed:1234 in
  let n = 60 in
  let table = random_table rng ~n in
  let st = Incr_spf.create ~n ~root:0 in
  let ws = Incr_spf.workspace () in
  Incr_spf.full ws st table;
  let repaired = ref 0 in
  for _ = 1 to 40 do
    let changes = random_delta rng table ~n in
    (* Only count genuine cost changes on existing edges. *)
    match Incr_spf.update ws st table ~changes with
    | Incr_spf.Repaired _ -> incr repaired
    | Incr_spf.Recomputed -> ()
  done;
  check "some repairs happened" true (!repaired > 25);
  let ws_full = Dijkstra.workspace () in
  let sd = Array.make n infinity and sp = Array.make n (-1) in
  (match mismatch ws_full sd sp st table with
  | Some m -> Alcotest.fail m
  | None -> ());
  let s = Incr_spf.stats ws in
  check_int "repairs counted" !repaired s.Incr_spf.repairs

let test_tree_of_result_agrees () =
  let rng = Rng.create ~seed:77 in
  let n = 20 in
  let table = random_table rng ~n in
  let st = Incr_spf.create ~n ~root:3 in
  let ws = Incr_spf.workspace () in
  Incr_spf.full ws st table;
  for _ = 1 to 10 do
    let changes = random_delta rng table ~n in
    ignore (Incr_spf.update ws st table ~changes)
  done;
  let full = Dijkstra.on_table ~n ~root:3 table in
  let cost ~head ~tail =
    match Topo_table.cost table ~head ~tail with
    | Some c -> c
    | None -> Alcotest.fail "tree edge not in table"
  in
  let t_incr =
    Dijkstra.tree_of_result ~n ~root:3
      { Dijkstra.dist = st.Incr_spf.dist; parent = st.Incr_spf.parent }
      ~cost
  in
  let t_full = Dijkstra.tree_of_result ~n ~root:3 full ~cost in
  check "trees equal" true (Topo_table.equal t_incr t_full)

(* --- Router-level equivalence: Full vs Incremental SPF --------------- *)

module Network = Mdr_routing.Network
module Router = Mdr_routing.Router
module Graph = Mdr_topology.Graph
module Generators = Mdr_topology.Generators

(* Run the same deterministic event storm twice — once with from-scratch
   SPF, once with incremental repair — and demand bit-identical protocol
   state on every router. The fingerprint covers tables, distances, FD,
   successors, first hops, pending ACKs and sequence counters, so any
   divergence anywhere in the event history surfaces here. *)
let storm_fingerprints ~mode ~spf ~seed =
  let rng = Rng.create ~seed in
  let n = 6 + Rng.int rng ~bound:8 in
  let topo =
    Generators.random_connected ~rng ~n ~extra_links:(3 + Rng.int rng ~bound:6) ()
  in
  let cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0) in
  let net = Network.create ~mode ~spf ~seed ~topo ~cost () in
  let links = Array.of_list (Graph.links topo) in
  for _ = 1 to 30 do
    let l = links.(Rng.int rng ~bound:(Array.length links)) in
    Network.schedule_link_cost net
      ~at:(Rng.uniform rng ~lo:0.0 ~hi:0.15)
      ~src:l.Graph.src ~dst:l.Graph.dst
      ~cost:(float_of_int (1 + Rng.int rng ~bound:40) *. 0.5)
  done;
  for _ = 1 to 2 do
    let l = links.(Rng.int rng ~bound:(Array.length links)) in
    let at = Rng.uniform rng ~lo:0.0 ~hi:0.08 in
    Network.schedule_fail_duplex net ~at ~a:l.Graph.src ~b:l.Graph.dst;
    Network.schedule_restore_duplex net ~at:(at +. 0.04) ~a:l.Graph.src
      ~b:l.Graph.dst
      ~cost:(float_of_int (1 + Rng.int rng ~bound:40) *. 0.5)
  done;
  Network.run net;
  let repairs = ref 0 in
  let fps =
    List.init n (fun i ->
        let r = Network.router net i in
        repairs := !repairs + (Router.spf_stats r).Incr_spf.repairs;
        Router.fingerprint r)
  in
  (fps, !repairs)

let prop_router_full_incremental_equal =
  QCheck.Test.make
    ~name:"router: Full and Incremental SPF are fingerprint-identical" ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let mode = if seed mod 3 = 0 then Router.Pda else Router.Mpda in
      let full_fps, full_repairs = storm_fingerprints ~mode ~spf:Router.Full ~seed in
      let incr_fps, _ = storm_fingerprints ~mode ~spf:Router.Incremental ~seed in
      if full_repairs <> 0 then
        QCheck.Test.fail_reportf "Full mode took the repair path";
      List.iteri
        (fun i (f, g) ->
          if not (String.equal f g) then
            QCheck.Test.fail_reportf "router %d diverged (seed %d)" i seed)
        (List.combine full_fps incr_fps);
      true)

let test_router_incremental_repairs_happen () =
  (* The equivalence property is vacuous if the incremental path never
     engages; check that storms actually exercise it. *)
  let _, repairs =
    storm_fingerprints ~mode:Router.Mpda ~spf:Router.Incremental ~seed:7
  in
  check "storms exercise the repair path" true (repairs > 0)

(* --- Syncnet: the large-n convergence pump --------------------------- *)

module Syncnet = Mdr_routing.Syncnet

let reference_table topo ~cost =
  let t = Topo_table.create () in
  List.iter
    (fun (l : Graph.link) ->
      Topo_table.set t ~head:l.Graph.src ~tail:l.Graph.dst ~cost:(cost l))
    (Graph.links topo);
  t

let test_syncnet_converges_to_shortest_paths () =
  let rng = Rng.create ~seed:21 in
  let topo = Generators.barabasi_albert ~rng ~n:60 ~m:2 () in
  (* Dyadic costs keep ties exact, matching the engine's contract. *)
  let costs = Hashtbl.create 256 in
  let cost (l : Graph.link) =
    match Hashtbl.find_opt costs (l.Graph.src, l.Graph.dst) with
    | Some c -> c
    | None ->
      let c = dyadic rng in
      Hashtbl.replace costs (l.Graph.src, l.Graph.dst) c;
      c
  in
  let net = Syncnet.create ~topo ~cost () in
  check "drained" true (Syncnet.run net);
  check "quiescent" true (Syncnet.quiescent net);
  check "exact shortest paths" true
    (Syncnet.check_distances net (reference_table topo ~cost));
  let before = Syncnet.messages_delivered net in
  check "messages flowed" true (before > 0);
  (* One link-cost change reconverges, and mostly via repairs. *)
  let l = List.hd (Graph.links topo) in
  let c' = cost l +. 0.5 in
  Hashtbl.replace costs (l.Graph.src, l.Graph.dst) c';
  Syncnet.change_link_cost net ~src:l.Graph.src ~dst:l.Graph.dst ~cost:c';
  check "drained again" true (Syncnet.run net);
  check "still exact" true
    (Syncnet.check_distances net (reference_table topo ~cost));
  let _, repairs, _ = Syncnet.spf_totals net in
  check "repairs engaged" true (repairs > 0)

let suite =
  [
    Alcotest.test_case "incr_spf: empty changes noop" `Quick test_empty_changes_noop;
    Alcotest.test_case "incr_spf: zero-cost edges force full runs" `Quick
      test_zero_cost_falls_back;
    Alcotest.test_case "incr_spf: big orphan region falls back" `Quick
      test_large_orphan_region_falls_back;
    Alcotest.test_case "incr_spf: cost changes take the repair path" `Quick
      test_single_change_is_repaired;
    Alcotest.test_case "incr_spf: tree_of_result agrees" `Quick
      test_tree_of_result_agrees;
    Alcotest.test_case "incr_spf: kill-at-every-delta sweep" `Slow
      test_kill_at_every_delta;
    Alcotest.test_case "router: incremental repairs engage in storms" `Quick
      test_router_incremental_repairs_happen;
    Alcotest.test_case "syncnet: converges to exact shortest paths" `Quick
      test_syncnet_converges_to_shortest_paths;
    QCheck_alcotest.to_alcotest prop_incremental_equals_full;
    QCheck_alcotest.to_alcotest prop_router_full_incremental_equal;
  ]
