(* The correctness-tooling layer: the per-file lint rules, the
   whole-program effect checker (mdrsim check), the bounded MPDA
   interleaving checker (plus the LFI oracle's edge cases), and the
   determinism sanitizer. *)

module Lfi = Mdr_routing.Lfi
module Lint = Mdr_analysis.Lint_rules
module Check = Mdr_analysis.Check_rules
module Report = Mdr_analysis.Report
module Callgraph = Mdr_analysis.Callgraph
module Effects = Mdr_analysis.Effects
module Source_walk = Mdr_analysis.Source_walk
module Interleave = Mdr_analysis.Interleave
module Determinism = Mdr_analysis.Determinism
module Graph = Mdr_topology.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_s needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- LFI oracle edge cases --------------------------------------------- *)

let no_neighbors _ = []
let inf_feasible ~node:_ ~dst:_ = infinity
let inf_reported ~holder:_ ~about:_ ~dst:_ = infinity

let test_lfi_single_node () =
  (* A 1-node network: the only router is the destination; there is
     nothing to check and nothing to loop through. *)
  check "acyclic" true
    (Lfi.successor_graph_acyclic ~n:1 ~successors:(fun ~node:_ -> []) ~dst:0);
  check "lfi holds" true
    (Lfi.lfi_conditions_hold ~n:1 ~neighbors:no_neighbors ~feasible:inf_feasible
       ~reported:inf_reported ~dst:0)

let test_lfi_disconnected_destination () =
  (* Three routers, the destination unreachable: every distance is
     infinite and every successor set empty. Infinite feasible
     distances must not be flagged (Eq. 16 compares two infinities). *)
  let neighbors = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  check "acyclic" true
    (Lfi.successor_graph_acyclic ~n:3 ~successors:(fun ~node:_ -> []) ~dst:2);
  check "lfi holds vacuously" true
    (Lfi.lfi_conditions_hold ~n:3 ~neighbors ~feasible:inf_feasible
       ~reported:inf_reported ~dst:2)

let test_lfi_self_loop_successor () =
  (* A router naming itself as successor is a 1-cycle: the graph walk
     must catch it, not just longer loops. *)
  let successors ~node = if node = 1 then [ 1 ] else [] in
  check "self-loop is a cycle" false
    (Lfi.successor_graph_acyclic ~n:3 ~successors ~dst:0);
  match Lfi.find_cycle ~n:3 ~successors ~dst:0 with
  | Some cycle -> check "witness contains the looping node" true (List.mem 1 cycle)
  | None -> Alcotest.fail "self-loop not found"

let test_lfi_empty_successor_sets () =
  (* All-empty successor sets (e.g. just after a reset) are trivially
     acyclic: no edges, no cycle. *)
  check "acyclic" true
    (Lfi.successor_graph_acyclic ~n:5 ~successors:(fun ~node:_ -> []) ~dst:4)

let test_lfi_two_cycle () =
  (* Sanity: the oracle does reject a real 2-cycle. *)
  let successors ~node = match node with 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  check "2-cycle rejected" false
    (Lfi.successor_graph_acyclic ~n:3 ~successors ~dst:2)

let test_lfi_violation_detected () =
  (* A successor whose feasible distance exceeds the copy a neighbor
     holds violates Eq. 16. *)
  let neighbors = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  let feasible ~node ~dst:_ = if node = 1 then 5.0 else 1.0 in
  let reported ~holder ~about ~dst:_ =
    if holder = 0 && about = 1 then 3.0 else infinity
  in
  check "violation flagged" false
    (Lfi.lfi_conditions_hold ~n:2 ~neighbors ~feasible ~reported ~dst:0)

(* --- Interleaving checker ---------------------------------------------- *)

let test_interleave_triangle_exhaustive () =
  let sc = List.hd (Interleave.bundled ~max_states:100_000 ()) in
  let st = Interleave.explore sc in
  check "exhaustive" true st.Interleave.complete;
  check "no violation" true (st.Interleave.violation = None);
  check "nontrivial state space" true (st.Interleave.states > 500)

let test_interleave_corpus () =
  (* The bundled 3-5-node corpus: every reachable state of every
     scenario satisfies acyclicity and the LFI conditions, and the
     corpus is big enough to mean something (>= 10k distinct states
     even under a per-scenario cap that keeps the test fast). *)
  let stats = List.map Interleave.explore (Interleave.bundled ~max_states:2_000 ()) in
  List.iter
    (fun st ->
      check
        (Printf.sprintf "%s: loop-free in all states" st.Interleave.scenario_name)
        true
        (st.Interleave.violation = None))
    stats;
  let total = List.fold_left (fun acc st -> acc + st.Interleave.states) 0 stats in
  check "corpus explores >= 10k states" true (total >= 10_000)

let test_interleave_negative () =
  (* The checker must actually find violations when they exist: the
     deliberately too-strong feasibility condition fails on the plain
     triangle, and the reported trace is minimal and replayable. *)
  let sc = List.hd (Interleave.bundled ~max_states:100_000 ()) in
  match
    (Interleave.explore ~invariants:[ Interleave.broken_feasibility_invariant ] sc)
      .Interleave.violation
  with
  | None -> Alcotest.fail "broken invariant not caught"
  | Some v ->
    check "names the invariant" true
      (String.equal v.Interleave.failed "broken-feasibility-margin");
    check "trace is nonempty" true (v.Interleave.trace <> []);
    let rendered = Interleave.render_trace sc.Interleave.topo v in
    check "trace renders" true
      (String.length rendered > 0
      && String.length v.Interleave.failed > 0
      && String.sub rendered 0 9 = "invariant")

let test_interleave_deterministic () =
  (* Same scenario, same exploration: state counts and traces are a
     pure function of the scenario (no Hashtbl-order leakage). *)
  let explore () =
    let st = Interleave.explore (List.nth (Interleave.bundled ~max_states:1_500 ()) 3) in
    (st.Interleave.states, st.Interleave.transitions, st.Interleave.max_depth)
  in
  let a = explore () and b = explore () in
  check "replayed exploration identical" true (a = b)

(* --- Lint rules -------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let with_temp_repo f =
  let root =
    Filename.temp_file "mdr_lint_test" ""
    |> fun p ->
    Sys.remove p;
    Sys.mkdir p 0o755;
    p
  in
  List.iter
    (fun d -> Sys.mkdir (Filename.concat root d) 0o755)
    [ "lib"; "lib/routing"; "lib/util"; "lib/server"; "bin"; "lint" ];
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> f root)

let violations_of report = List.map (fun v -> v.Lint.rule) report.Lint.violations

let test_lint_catches_seeded_violations () =
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/routing/bad.ml")
        "let f x = x = 1.0\n\
         let g tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
         let h x = try x () with _ -> ()\n\
         let cast x = Obj.magic x\n";
      write_file (Filename.concat root "lib/clean.ml") "let id x = x\n";
      let report = Lint.run ~root () in
      let rules = violations_of report in
      check_int "files scanned" 2 report.Lint.files_scanned;
      check "float-compare caught" true (List.mem "float-compare" rules);
      check "hashtbl-iteration caught" true (List.mem "hashtbl-iteration" rules);
      check "catch-all caught" true (List.mem "catch-all-handler" rules);
      check "obj-magic caught" true (List.mem "obj-magic" rules);
      (* every violation carries a usable location *)
      List.iter
        (fun v ->
          check "has file" true (v.Lint.file <> "");
          check "has line" true (v.Lint.line > 0))
        report.Lint.violations)

let test_lint_scoping () =
  (* The Hashtbl rule only applies to the protocol directories: the
     same code outside them is legal. *)
  with_temp_repo (fun root ->
      let src = "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n" in
      write_file (Filename.concat root "lib/routing/inscope.ml") src;
      write_file (Filename.concat root "bin/outofscope.ml") src;
      let report = Lint.run ~root () in
      match report.Lint.violations with
      | [ v ] ->
        check "flagged the scoped file" true
          (String.equal v.Lint.file "lib/routing/inscope.ml")
      | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)))

let test_lint_allowlist () =
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/routing/waived.ml")
        "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n";
      write_file
        (Filename.concat root "lint/hashtbl-iteration.allow")
        "# deliberate: benchmark scratch code\nlib/routing/waived.ml\n";
      let report = Lint.run ~root () in
      check_int "suppressed" 1 report.Lint.suppressed;
      check "no violations" true (report.Lint.violations = []))

let test_lint_stale_allowlist () =
  (* Allowlist hygiene: entries that no longer suppress anything —
     a line that moved, a file that was deleted — are reported as
     failures so waivers cannot outlive the code they excused. *)
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/routing/waived.ml")
        "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n";
      write_file
        (Filename.concat root "lint/hashtbl-iteration.allow")
        "# live entry, then a line that matches nothing\n\
         lib/routing/waived.ml:1\n\
         lib/routing/waived.ml:99\n";
      write_file
        (Filename.concat root "lint/obj-magic.allow")
        "# entry for a file that no longer exists\nlib/routing/deleted.ml\n";
      let report = Lint.run ~root () in
      check_int "live entry suppresses" 1 report.Lint.suppressed;
      check "no violations" true (report.Lint.violations = []);
      let stale =
        List.map
          (fun s -> (s.Lint.stale_rule, s.Lint.stale_file, s.Lint.stale_line))
          report.Lint.stale_allow
      in
      check_int "exactly the two dead entries are stale" 2 (List.length stale);
      check "stale line entry reported" true
        (List.mem ("hashtbl-iteration", "lib/routing/waived.ml", Some 99) stale);
      check "stale deleted-file entry reported" true
        (List.mem ("obj-magic", "lib/routing/deleted.ml", None) stale);
      let rendered = Lint.render report in
      check "render names the stale entry" true
        (let contains needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains "stale entry lib/routing/deleted.ml" rendered))

let test_lint_clean_and_float_helpers () =
  (* Float.equal / the epsilon helpers are the sanctioned spellings and
     must not be flagged. *)
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/good.ml")
        "let f x y = Float.equal x y\n\
         let g x = Mdr_util.Float_cmp.approx x 1.0\n\
         let h (a : int) b = a = b\n";
      let report = Lint.run ~root () in
      check "clean" true (report.Lint.violations = []))

let test_lint_json () =
  with_temp_repo (fun root ->
      write_file (Filename.concat root "lib/bad.ml") "let f x = Obj.magic x\n";
      let report = Lint.run ~root () in
      let json = Lint.to_json report in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check "json mentions rule" true (contains "\"obj-magic\"" json);
      check "json carries the location" true (contains "\"line\"" json))

(* --- Whole-program effect checker (mdrsim check) ------------------------ *)

(* A fixture Pool with the same canonical ids as the real one
   ([lib/util] wrapped by a dune library named mdr_util), so the
   default pool-fn and sanitizer configuration is exercised as-is. *)
let write_fixture_util root =
  write_file
    (Filename.concat root "lib/util/dune")
    "(library\n (name mdr_util))\n";
  write_file
    (Filename.concat root "lib/util/pool.ml")
    "let map_array ?jobs f a =\n\
    \  ignore jobs;\n\
    \  Array.map f a\n\
     let init ?jobs n f =\n\
    \  ignore jobs;\n\
    \  Array.init n f\n";
  write_file
    (Filename.concat root "lib/util/sorted_tbl.ml")
    "let fold f t init = Hashtbl.fold f t init\n"

let race_fixture_bad =
  "let total = ref 0\n\
   let bump_global () = total := !total + 1\n\
   let fill (dst : float array) i = dst.(i) <- 1.0\n\n\
   let bad_capture xs =\n\
  \  let acc = ref 0 in\n\
  \  Mdr_util.Pool.map_array\n\
  \    (fun x ->\n\
  \      acc := !acc + x;\n\
  \      x)\n\
  \    xs\n\n\
   let bad_global xs =\n\
  \  Mdr_util.Pool.map_array\n\
  \    (fun x ->\n\
  \      bump_global ();\n\
  \      x)\n\
  \    xs\n\n\
   let bad_param out xs =\n\
  \  Mdr_util.Pool.map_array\n\
  \    (fun i ->\n\
  \      fill out i;\n\
  \      i)\n\
  \    xs\n\n\
   let bad_random xs = Mdr_util.Pool.map_array (fun x -> x + Random.int 3) xs\n"

let race_fixture_good =
  "let good_atomic xs =\n\
  \  let n = Atomic.make 0 in\n\
  \  let out =\n\
  \    Mdr_util.Pool.map_array\n\
  \      (fun x ->\n\
  \        Atomic.incr n;\n\
  \        x + 1)\n\
  \      xs\n\
  \  in\n\
  \  (Atomic.get n, out)\n\n\
   let good_readonly cfg xs = Mdr_util.Pool.map_array (fun x -> x + cfg) xs\n\n\
   let good_local xs =\n\
  \  Mdr_util.Pool.map_array\n\
  \    (fun x ->\n\
  \      let b = Buffer.create 8 in\n\
  \      Buffer.add_string b (string_of_int x);\n\
  \      Buffer.contents b)\n\
  \    xs\n"

let test_check_domain_race () =
  with_temp_repo (fun root ->
      write_fixture_util root;
      write_file (Filename.concat root "lib/race.ml") race_fixture_bad;
      write_file (Filename.concat root "lib/good.ml") race_fixture_good;
      let r = Check.run ~root () in
      let race =
        List.filter (fun f -> f.Report.rule = "domain-race") r.Report.findings
      in
      check_int "all findings are domain-race" (List.length r.Report.findings)
        (List.length race);
      check_int "exactly the four seeded races" 4 (List.length race);
      List.iter
        (fun f -> check "race findings point into race.ml" true
            (String.equal f.Report.file "lib/race.ml"))
        race;
      let msgs = String.concat "\n" (List.map (fun f -> f.Report.message) race) in
      check "captured ref mutation caught" true (contains_s "captured acc" msgs);
      check "callee global mutation caught" true (contains_s "bump_global" msgs);
      check "captured arg to mutating param caught" true
        (contains_s "passes captured out" msgs);
      check "Random in task caught" true (contains_s "Random.int" msgs))

let taint_fixture =
  "let helper tbl = Hashtbl.fold (fun k _ acc -> k + acc) tbl 0\n\
   let fingerprint tbl = string_of_int (helper tbl)\n\n\
   let sorted_fingerprint tbl =\n\
  \  string_of_int (Mdr_util.Sorted_tbl.fold (fun k _ acc -> k + acc) tbl 0)\n\n\
   let clean_fingerprint xs = String.concat \",\" (List.map string_of_int xs)\n"

let test_check_determinism_taint () =
  with_temp_repo (fun root ->
      write_fixture_util root;
      write_file (Filename.concat root "lib/det.ml") taint_fixture;
      let config =
        {
          Check.default_config with
          sinks =
            [ "Det.fingerprint"; "Det.sorted_fingerprint"; "Det.clean_fingerprint" ];
        }
      in
      let r = Check.run ~config ~root () in
      match r.Report.findings with
      | [ f ] ->
        check "rule" true (String.equal f.Report.rule "determinism-taint");
        check "located at the Hashtbl.fold use" true
          (String.equal f.Report.file "lib/det.ml" && f.Report.line = 1);
        check "message names source and sink" true
          (contains_s "Hashtbl.fold" f.Report.message
          && contains_s "hashtbl-order" f.Report.message
          && contains_s "Det.fingerprint" f.Report.message);
        check "message carries the witness chain" true
          (contains_s "Det.fingerprint -> Det.helper" f.Report.message)
      | fs ->
        Alcotest.fail
          (Printf.sprintf "expected exactly the tainted sink, got %d findings:\n%s"
             (List.length fs)
             (String.concat "\n" (List.map Report.render_finding fs))))

let crash_fixture =
  "let bad_publish path payload =\n\
  \  let tmp = path ^ \".tmp\" in\n\
  \  let oc = open_out tmp in\n\
  \  output_string oc payload;\n\
  \  close_out oc;\n\
  \  Sys.rename tmp path\n\n\
   let good_publish path payload =\n\
  \  let tmp = path ^ \".tmp\" in\n\
  \  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in\n\
  \  let oc = Unix.out_channel_of_descr fd in\n\
  \  output_string oc payload;\n\
  \  flush oc;\n\
  \  Unix.fsync fd;\n\
  \  close_out oc;\n\
  \  Sys.rename tmp path\n\n\
   let checkpoint path payload = good_publish path payload\n\n\
   let bad_swallow path payload = try good_publish path payload with Sys_error _ -> ()\n\n\
   let good_escalate path payload =\n\
  \  try good_publish path payload with Sys_error msg -> failwith msg\n\n\
   let good_targeted path =\n\
  \  try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()\n\n\
   let bad_broad path = try Unix.mkdir path 0o755 with Unix.Unix_error (_, _, _) -> ()\n"

let test_check_crash_safety () =
  with_temp_repo (fun root ->
      write_fixture_util root;
      write_file (Filename.concat root "lib/server/store.ml") crash_fixture;
      let r = Check.run ~root () in
      let msgs = List.map Report.render_finding r.Report.findings in
      check_int
        (Printf.sprintf "exactly the three seeded violations:\n%s"
           (String.concat "\n" msgs))
        3 (List.length r.Report.findings);
      List.iter
        (fun f ->
          check "rule" true (String.equal f.Report.rule "crash-safety");
          check "file" true (String.equal f.Report.file "lib/server/store.ml"))
        r.Report.findings;
      let all = String.concat "\n" msgs in
      check "rename without fsync caught" true
        (contains_s "rename without a preceding fsync" all);
      check "swallowed Sys_error caught" true (contains_s "Sys_error handler" all);
      check "broad Unix_error caught" true (contains_s "Unix_error handler" all);
      (* good_publish (fsync first, lines 8-16), checkpoint (fsync via
         callee, 18), good_escalate (re-raises, 22-23) and
         good_targeted (specific errno, 25-26) must not be flagged:
         only the three bad_* lines may appear. *)
      List.iter
        (fun f ->
          check "fsync-first / re-raise / targeted-errno accepted" true
            (List.mem f.Report.line [ 6; 20; 28 ]))
        r.Report.findings)

let test_check_allowlist_and_stale () =
  with_temp_repo (fun root ->
      write_fixture_util root;
      write_file (Filename.concat root "lib/race.ml") race_fixture_bad;
      write_file
        (Filename.concat root "lint/domain-race.allow")
        "# the seeded fixture, waived wholesale\n\
         lib/race.ml\n\
         lib/race.ml:99\n";
      let r = Check.run ~root () in
      check "whole-file entry suppresses all findings" true (r.Report.findings = []);
      check_int "suppressed count" 4 r.Report.suppressed;
      (match r.Report.stale_allow with
      | [ s ] ->
        check "stale line entry reported" true
          (String.equal s.Report.stale_rule "domain-race"
          && String.equal s.Report.stale_file "lib/race.ml"
          && s.Report.stale_line = Some 99)
      | ss -> Alcotest.fail (Printf.sprintf "expected 1 stale entry, got %d" (List.length ss)));
      check "stale entry keeps the report dirty" false (Report.clean r))

let test_effects_summaries () =
  (* Unit-level checks on the effect lattice itself, through the same
     fixture the rules see. *)
  with_temp_repo (fun root ->
      write_fixture_util root;
      write_file (Filename.concat root "lib/race.ml") race_fixture_bad;
      write_file (Filename.concat root "lib/det.ml") taint_fixture;
      write_file (Filename.concat root "lib/server/store.ml") crash_fixture;
      let graph = Callgraph.build ~root () in
      let eff = Effects.analyze graph in
      let summary id =
        match Effects.summary_of eff id with
        | Some s -> s
        | None -> Alcotest.fail ("no summary for " ^ id)
      in
      check "bump_global mutates module state" true
        ((summary "Race.bump_global").Effects.mutates_global <> None);
      check "fill mutates its dst parameter" true
        (List.mem_assoc "dst" (summary "Race.fill").Effects.mutated_params);
      let gp = summary "Store.good_publish" in
      check "good_publish does I/O, fsyncs and renames" true
        (gp.Effects.io <> None && gp.Effects.calls_fsync && gp.Effects.calls_rename);
      check "checkpoint inherits fsync through the call" true
        ((summary "Store.checkpoint").Effects.calls_fsync);
      check "helper is hashtbl-order nondeterministic" true
        (List.mem_assoc Effects.Hashtbl_order (summary "Det.helper").Effects.nondet);
      check "fingerprint inherits the taint" true
        (List.mem_assoc Effects.Hashtbl_order
           (summary "Det.fingerprint").Effects.nondet);
      (match Effects.nondet_chain eff "Det.fingerprint" Effects.Hashtbl_order with
      | chain, Some prim ->
        check "chain walks sink -> helper" true
          (chain = [ "Det.fingerprint"; "Det.helper" ]);
        check "witness is the primitive use" true
          (String.equal prim.Effects.p_name "Hashtbl.fold"
          && String.equal prim.Effects.p_file "lib/det.ml")
      | _, None -> Alcotest.fail "no witness chain for the tainted sink");
      check "Sorted_tbl is a determinism barrier" true
        ((summary "Mdr_util.Sorted_tbl.fold").Effects.nondet = []))

let test_sarif_output () =
  with_temp_repo (fun root ->
      write_file (Filename.concat root "lib/bad.ml") "let f x = Obj.magic x\n";
      write_file
        (Filename.concat root "lint/float-compare.allow")
        "lib/deleted.ml\n";
      let sarif = Lint.to_sarif (Lint.run ~root ()) in
      check "SARIF version" true (contains_s "\"version\": \"2.1.0\"" sarif);
      check "rule id present" true (contains_s "\"obj-magic\"" sarif);
      check "finding location present" true (contains_s "lib/bad.ml" sarif);
      check "stale entries become results" true
        (contains_s "stale-allowlist-entry" sarif);
      write_fixture_util root;
      write_file (Filename.concat root "lib/race.ml") race_fixture_bad;
      let sarif = Report.to_sarif (Check.run ~root ()) in
      check "check SARIF names its tool" true (contains_s "mdrsim-check" sarif);
      check "check SARIF carries domain-race" true (contains_s "domain-race" sarif))

let test_self_scan_clean_and_allowlists_minimal () =
  (* The repo must pass its own analyzers, and every allowlist entry
     must still be earning its keep (no stale waivers, no .allow file
     for a rule that does not exist). *)
  let rec find_source_root dir =
    if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir ".git")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_source_root parent
  in
  match find_source_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "cannot locate the source root from the test cwd"
  | Some root ->
    let lint = Lint.run ~root () in
    check "lint: repo is clean" true (lint.Lint.violations = []);
    check "lint: no stale allowlist entries" true (lint.Lint.stale_allow = []);
    let r = Check.run ~root () in
    check "check: repo is clean" true (r.Report.findings = []);
    check "check: no stale allowlist entries" true (r.Report.stale_allow = []);
    check "check: scanned the whole tree" true (r.Report.files_scanned > 60);
    (* Every .allow file must belong to a rule some pass actually runs,
       or a typo'd file would waive nothing forever without failing. *)
    let known =
      List.map (fun (ru : Lint.rule) -> ru.Lint.name) Lint.rules
      @ List.map fst Check.rules
    in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".allow" then
          check
            (Printf.sprintf "lint/%s names a live rule" f)
            true
            (List.mem (Filename.chop_suffix f ".allow") known))
      (Sys.readdir (Filename.concat root "lint"))

(* --- Determinism sanitizer --------------------------------------------- *)

let test_determinism_harness_detects_divergence () =
  let counter = ref 0 in
  let flaky () =
    incr counter;
    string_of_int !counter
  in
  let o = Determinism.run_check ("flaky", flaky) in
  check "divergence detected" false o.Determinism.deterministic;
  let o = Determinism.run_check ("steady", fun () -> "same") in
  check "steady trace passes" true o.Determinism.deterministic

let test_determinism_fluid () =
  let o = Determinism.run_check ("fluid-sp-opt", Determinism.fluid_trace ~load:0.9) in
  check "fluid pipeline deterministic" true o.Determinism.deterministic

let test_determinism_chaos () =
  let o = Determinism.run_check ("chaos", Determinism.chaos_trace ~seed:11) in
  check "chaos campaign deterministic" true o.Determinism.deterministic

let test_determinism_netsim () =
  let o = Determinism.run_check ("netsim", Determinism.netsim_trace ~seed:11) in
  check "packet simulator deterministic" true o.Determinism.deterministic

let suite =
  [
    Alcotest.test_case "LFI: single node" `Quick test_lfi_single_node;
    Alcotest.test_case "LFI: disconnected destination" `Quick
      test_lfi_disconnected_destination;
    Alcotest.test_case "LFI: self-loop successor" `Quick test_lfi_self_loop_successor;
    Alcotest.test_case "LFI: empty successor sets" `Quick test_lfi_empty_successor_sets;
    Alcotest.test_case "LFI: 2-cycle rejected" `Quick test_lfi_two_cycle;
    Alcotest.test_case "LFI: Eq. 16 violation detected" `Quick test_lfi_violation_detected;
    Alcotest.test_case "interleave: triangle exhaustive, loop-free" `Slow
      test_interleave_triangle_exhaustive;
    Alcotest.test_case "interleave: bundled corpus >= 10k states, loop-free" `Slow
      test_interleave_corpus;
    Alcotest.test_case "interleave: broken invariant yields minimal trace" `Quick
      test_interleave_negative;
    Alcotest.test_case "interleave: exploration is deterministic" `Slow
      test_interleave_deterministic;
    Alcotest.test_case "lint: seeded violations caught with locations" `Quick
      test_lint_catches_seeded_violations;
    Alcotest.test_case "lint: rules respect directory scopes" `Quick test_lint_scoping;
    Alcotest.test_case "lint: allowlist suppresses" `Quick test_lint_allowlist;
    Alcotest.test_case "lint: stale allowlist entries fail" `Quick
      test_lint_stale_allowlist;
    Alcotest.test_case "lint: sanctioned float spellings pass" `Quick
      test_lint_clean_and_float_helpers;
    Alcotest.test_case "lint: JSON report" `Quick test_lint_json;
    Alcotest.test_case "check: domain races in Pool tasks" `Quick
      test_check_domain_race;
    Alcotest.test_case "check: determinism taint into sinks" `Quick
      test_check_determinism_taint;
    Alcotest.test_case "check: crash-safety of write paths" `Quick
      test_check_crash_safety;
    Alcotest.test_case "check: allowlist suppresses, stale fails" `Quick
      test_check_allowlist_and_stale;
    Alcotest.test_case "effects: summaries and witness chains" `Quick
      test_effects_summaries;
    Alcotest.test_case "report: SARIF output" `Quick test_sarif_output;
    Alcotest.test_case "self-scan: repo clean, allowlists minimal" `Quick
      test_self_scan_clean_and_allowlists_minimal;
    Alcotest.test_case "determinism: harness detects divergence" `Quick
      test_determinism_harness_detects_divergence;
    Alcotest.test_case "determinism: fluid SP/OPT" `Slow test_determinism_fluid;
    Alcotest.test_case "determinism: chaos campaign" `Slow test_determinism_chaos;
    Alcotest.test_case "determinism: packet simulator MP/SP" `Slow
      test_determinism_netsim;
  ]
