(* The correctness-tooling layer: the lint rules, the bounded MPDA
   interleaving checker (plus the LFI oracle's edge cases), and the
   determinism sanitizer. *)

module Lfi = Mdr_routing.Lfi
module Lint = Mdr_analysis.Lint_rules
module Interleave = Mdr_analysis.Interleave
module Determinism = Mdr_analysis.Determinism
module Graph = Mdr_topology.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- LFI oracle edge cases --------------------------------------------- *)

let no_neighbors _ = []
let inf_feasible ~node:_ ~dst:_ = infinity
let inf_reported ~holder:_ ~about:_ ~dst:_ = infinity

let test_lfi_single_node () =
  (* A 1-node network: the only router is the destination; there is
     nothing to check and nothing to loop through. *)
  check "acyclic" true
    (Lfi.successor_graph_acyclic ~n:1 ~successors:(fun ~node:_ -> []) ~dst:0);
  check "lfi holds" true
    (Lfi.lfi_conditions_hold ~n:1 ~neighbors:no_neighbors ~feasible:inf_feasible
       ~reported:inf_reported ~dst:0)

let test_lfi_disconnected_destination () =
  (* Three routers, the destination unreachable: every distance is
     infinite and every successor set empty. Infinite feasible
     distances must not be flagged (Eq. 16 compares two infinities). *)
  let neighbors = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  check "acyclic" true
    (Lfi.successor_graph_acyclic ~n:3 ~successors:(fun ~node:_ -> []) ~dst:2);
  check "lfi holds vacuously" true
    (Lfi.lfi_conditions_hold ~n:3 ~neighbors ~feasible:inf_feasible
       ~reported:inf_reported ~dst:2)

let test_lfi_self_loop_successor () =
  (* A router naming itself as successor is a 1-cycle: the graph walk
     must catch it, not just longer loops. *)
  let successors ~node = if node = 1 then [ 1 ] else [] in
  check "self-loop is a cycle" false
    (Lfi.successor_graph_acyclic ~n:3 ~successors ~dst:0);
  match Lfi.find_cycle ~n:3 ~successors ~dst:0 with
  | Some cycle -> check "witness contains the looping node" true (List.mem 1 cycle)
  | None -> Alcotest.fail "self-loop not found"

let test_lfi_empty_successor_sets () =
  (* All-empty successor sets (e.g. just after a reset) are trivially
     acyclic: no edges, no cycle. *)
  check "acyclic" true
    (Lfi.successor_graph_acyclic ~n:5 ~successors:(fun ~node:_ -> []) ~dst:4)

let test_lfi_two_cycle () =
  (* Sanity: the oracle does reject a real 2-cycle. *)
  let successors ~node = match node with 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  check "2-cycle rejected" false
    (Lfi.successor_graph_acyclic ~n:3 ~successors ~dst:2)

let test_lfi_violation_detected () =
  (* A successor whose feasible distance exceeds the copy a neighbor
     holds violates Eq. 16. *)
  let neighbors = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  let feasible ~node ~dst:_ = if node = 1 then 5.0 else 1.0 in
  let reported ~holder ~about ~dst:_ =
    if holder = 0 && about = 1 then 3.0 else infinity
  in
  check "violation flagged" false
    (Lfi.lfi_conditions_hold ~n:2 ~neighbors ~feasible ~reported ~dst:0)

(* --- Interleaving checker ---------------------------------------------- *)

let test_interleave_triangle_exhaustive () =
  let sc = List.hd (Interleave.bundled ~max_states:100_000 ()) in
  let st = Interleave.explore sc in
  check "exhaustive" true st.Interleave.complete;
  check "no violation" true (st.Interleave.violation = None);
  check "nontrivial state space" true (st.Interleave.states > 500)

let test_interleave_corpus () =
  (* The bundled 3-5-node corpus: every reachable state of every
     scenario satisfies acyclicity and the LFI conditions, and the
     corpus is big enough to mean something (>= 10k distinct states
     even under a per-scenario cap that keeps the test fast). *)
  let stats = List.map Interleave.explore (Interleave.bundled ~max_states:2_000 ()) in
  List.iter
    (fun st ->
      check
        (Printf.sprintf "%s: loop-free in all states" st.Interleave.scenario_name)
        true
        (st.Interleave.violation = None))
    stats;
  let total = List.fold_left (fun acc st -> acc + st.Interleave.states) 0 stats in
  check "corpus explores >= 10k states" true (total >= 10_000)

let test_interleave_negative () =
  (* The checker must actually find violations when they exist: the
     deliberately too-strong feasibility condition fails on the plain
     triangle, and the reported trace is minimal and replayable. *)
  let sc = List.hd (Interleave.bundled ~max_states:100_000 ()) in
  match
    (Interleave.explore ~invariants:[ Interleave.broken_feasibility_invariant ] sc)
      .Interleave.violation
  with
  | None -> Alcotest.fail "broken invariant not caught"
  | Some v ->
    check "names the invariant" true
      (String.equal v.Interleave.failed "broken-feasibility-margin");
    check "trace is nonempty" true (v.Interleave.trace <> []);
    let rendered = Interleave.render_trace sc.Interleave.topo v in
    check "trace renders" true
      (String.length rendered > 0
      && String.length v.Interleave.failed > 0
      && String.sub rendered 0 9 = "invariant")

let test_interleave_deterministic () =
  (* Same scenario, same exploration: state counts and traces are a
     pure function of the scenario (no Hashtbl-order leakage). *)
  let explore () =
    let st = Interleave.explore (List.nth (Interleave.bundled ~max_states:1_500 ()) 3) in
    (st.Interleave.states, st.Interleave.transitions, st.Interleave.max_depth)
  in
  let a = explore () and b = explore () in
  check "replayed exploration identical" true (a = b)

(* --- Lint rules -------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let with_temp_repo f =
  let root =
    Filename.temp_file "mdr_lint_test" ""
    |> fun p ->
    Sys.remove p;
    Sys.mkdir p 0o755;
    p
  in
  List.iter
    (fun d -> Sys.mkdir (Filename.concat root d) 0o755)
    [ "lib"; "lib/routing"; "bin"; "lint" ];
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote root)))
    (fun () -> f root)

let violations_of report = List.map (fun v -> v.Lint.rule) report.Lint.violations

let test_lint_catches_seeded_violations () =
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/routing/bad.ml")
        "let f x = x = 1.0\n\
         let g tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
         let h x = try x () with _ -> ()\n\
         let cast x = Obj.magic x\n";
      write_file (Filename.concat root "lib/clean.ml") "let id x = x\n";
      let report = Lint.run ~root () in
      let rules = violations_of report in
      check_int "files scanned" 2 report.Lint.files_scanned;
      check "float-compare caught" true (List.mem "float-compare" rules);
      check "hashtbl-iteration caught" true (List.mem "hashtbl-iteration" rules);
      check "catch-all caught" true (List.mem "catch-all-handler" rules);
      check "obj-magic caught" true (List.mem "obj-magic" rules);
      (* every violation carries a usable location *)
      List.iter
        (fun v ->
          check "has file" true (v.Lint.file <> "");
          check "has line" true (v.Lint.line > 0))
        report.Lint.violations)

let test_lint_scoping () =
  (* The Hashtbl rule only applies to the protocol directories: the
     same code outside them is legal. *)
  with_temp_repo (fun root ->
      let src = "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n" in
      write_file (Filename.concat root "lib/routing/inscope.ml") src;
      write_file (Filename.concat root "bin/outofscope.ml") src;
      let report = Lint.run ~root () in
      match report.Lint.violations with
      | [ v ] ->
        check "flagged the scoped file" true
          (String.equal v.Lint.file "lib/routing/inscope.ml")
      | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs)))

let test_lint_allowlist () =
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/routing/waived.ml")
        "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n";
      write_file
        (Filename.concat root "lint/hashtbl-iteration.allow")
        "# deliberate: benchmark scratch code\nlib/routing/waived.ml\n";
      let report = Lint.run ~root () in
      check_int "suppressed" 1 report.Lint.suppressed;
      check "no violations" true (report.Lint.violations = []))

let test_lint_stale_allowlist () =
  (* Allowlist hygiene: entries that no longer suppress anything —
     a line that moved, a file that was deleted — are reported as
     failures so waivers cannot outlive the code they excused. *)
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/routing/waived.ml")
        "let g tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n";
      write_file
        (Filename.concat root "lint/hashtbl-iteration.allow")
        "# live entry, then a line that matches nothing\n\
         lib/routing/waived.ml:1\n\
         lib/routing/waived.ml:99\n";
      write_file
        (Filename.concat root "lint/obj-magic.allow")
        "# entry for a file that no longer exists\nlib/routing/deleted.ml\n";
      let report = Lint.run ~root () in
      check_int "live entry suppresses" 1 report.Lint.suppressed;
      check "no violations" true (report.Lint.violations = []);
      let stale =
        List.map
          (fun s -> (s.Lint.stale_rule, s.Lint.stale_file, s.Lint.stale_line))
          report.Lint.stale_allow
      in
      check_int "exactly the two dead entries are stale" 2 (List.length stale);
      check "stale line entry reported" true
        (List.mem ("hashtbl-iteration", "lib/routing/waived.ml", Some 99) stale);
      check "stale deleted-file entry reported" true
        (List.mem ("obj-magic", "lib/routing/deleted.ml", None) stale);
      let rendered = Lint.render report in
      check "render names the stale entry" true
        (let contains needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains "stale entry lib/routing/deleted.ml" rendered))

let test_lint_clean_and_float_helpers () =
  (* Float.equal / the epsilon helpers are the sanctioned spellings and
     must not be flagged. *)
  with_temp_repo (fun root ->
      write_file
        (Filename.concat root "lib/good.ml")
        "let f x y = Float.equal x y\n\
         let g x = Mdr_util.Float_cmp.approx x 1.0\n\
         let h (a : int) b = a = b\n";
      let report = Lint.run ~root () in
      check "clean" true (report.Lint.violations = []))

let test_lint_json () =
  with_temp_repo (fun root ->
      write_file (Filename.concat root "lib/bad.ml") "let f x = Obj.magic x\n";
      let report = Lint.run ~root () in
      let json = Lint.to_json report in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check "json mentions rule" true (contains "\"obj-magic\"" json);
      check "json carries the location" true (contains "\"line\"" json))

(* --- Determinism sanitizer --------------------------------------------- *)

let test_determinism_harness_detects_divergence () =
  let counter = ref 0 in
  let flaky () =
    incr counter;
    string_of_int !counter
  in
  let o = Determinism.run_check ("flaky", flaky) in
  check "divergence detected" false o.Determinism.deterministic;
  let o = Determinism.run_check ("steady", fun () -> "same") in
  check "steady trace passes" true o.Determinism.deterministic

let test_determinism_fluid () =
  let o = Determinism.run_check ("fluid-sp-opt", Determinism.fluid_trace ~load:0.9) in
  check "fluid pipeline deterministic" true o.Determinism.deterministic

let test_determinism_chaos () =
  let o = Determinism.run_check ("chaos", Determinism.chaos_trace ~seed:11) in
  check "chaos campaign deterministic" true o.Determinism.deterministic

let test_determinism_netsim () =
  let o = Determinism.run_check ("netsim", Determinism.netsim_trace ~seed:11) in
  check "packet simulator deterministic" true o.Determinism.deterministic

let suite =
  [
    Alcotest.test_case "LFI: single node" `Quick test_lfi_single_node;
    Alcotest.test_case "LFI: disconnected destination" `Quick
      test_lfi_disconnected_destination;
    Alcotest.test_case "LFI: self-loop successor" `Quick test_lfi_self_loop_successor;
    Alcotest.test_case "LFI: empty successor sets" `Quick test_lfi_empty_successor_sets;
    Alcotest.test_case "LFI: 2-cycle rejected" `Quick test_lfi_two_cycle;
    Alcotest.test_case "LFI: Eq. 16 violation detected" `Quick test_lfi_violation_detected;
    Alcotest.test_case "interleave: triangle exhaustive, loop-free" `Slow
      test_interleave_triangle_exhaustive;
    Alcotest.test_case "interleave: bundled corpus >= 10k states, loop-free" `Slow
      test_interleave_corpus;
    Alcotest.test_case "interleave: broken invariant yields minimal trace" `Quick
      test_interleave_negative;
    Alcotest.test_case "interleave: exploration is deterministic" `Slow
      test_interleave_deterministic;
    Alcotest.test_case "lint: seeded violations caught with locations" `Quick
      test_lint_catches_seeded_violations;
    Alcotest.test_case "lint: rules respect directory scopes" `Quick test_lint_scoping;
    Alcotest.test_case "lint: allowlist suppresses" `Quick test_lint_allowlist;
    Alcotest.test_case "lint: stale allowlist entries fail" `Quick
      test_lint_stale_allowlist;
    Alcotest.test_case "lint: sanctioned float spellings pass" `Quick
      test_lint_clean_and_float_helpers;
    Alcotest.test_case "lint: JSON report" `Quick test_lint_json;
    Alcotest.test_case "determinism: harness detects divergence" `Quick
      test_determinism_harness_detects_divergence;
    Alcotest.test_case "determinism: fluid SP/OPT" `Slow test_determinism_fluid;
    Alcotest.test_case "determinism: chaos campaign" `Slow test_determinism_chaos;
    Alcotest.test_case "determinism: packet simulator MP/SP" `Slow
      test_determinism_netsim;
  ]
