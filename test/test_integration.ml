(* Cross-library integration tests: the full experiment pipelines at
   reduced scale — the same code paths the benches run, with the
   paper's qualitative claims as assertions. *)

module Graph = Mdr_topology.Graph
module Fluid = Mdr_fluid
module Controller = Mdr_core.Controller
module Gallager = Mdr_gallager.Gallager
module Sim = Mdr_netsim.Sim

let check = Alcotest.(check bool)
let pkt = 4096.0

let cairn_traffic load =
  let g = Mdr_topology.Cairn.topology () in
  let pairs = Mdr_topology.Cairn.flow_pairs g in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:(Graph.node_count g) ~packet_size:pkt
      ~rate_bits:(fun i -> load *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6)
      pairs
  in
  (g, pairs, traffic)

let test_fig9_shape_fluid () =
  (* Figure 9: MP per-flow delays within a small envelope of OPT on
     CAIRN. *)
  let g, _, traffic = cairn_traffic 1.0 in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let opt = Gallager.solve model g traffic in
  let mp =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 60; ts_per_tl = 8; damping = 0.5 }
      model g traffic
  in
  let od = Fluid.Evaluate.per_flow_delays model opt.params opt.flows traffic in
  let md = Fluid.Evaluate.per_flow_delays model mp.params mp.flows traffic in
  List.iter2
    (fun (_, o) (_, m) -> check "within 5% envelope" true (m <= o *. 1.05))
    od md

(* Seed-averaged per-flow delays: the paper reports measured averages,
   and single-path oscillation makes individual sample paths noisy. *)
let mean_flow_delays g flows cfg ~seeds =
  let runs = List.map (fun seed -> Sim.run ~config:{ cfg with Sim.seed } g flows) seeds in
  let k = float_of_int (List.length seeds) in
  let per_flow =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc (r : Sim.result) ->
            acc +. ((List.nth r.flows i).mean_delay /. k))
          0.0 runs)
      flows
  in
  let avg =
    List.fold_left (fun acc (r : Sim.result) -> acc +. (r.avg_delay /. k)) 0.0 runs
  in
  (per_flow, avg)

let test_fig11_shape_packet_sim () =
  (* Figure 11: under load, SP's delays are a multiple of MP's for
     some flows, and worse on average (seed-averaged, like the paper's
     measured means). *)
  let g = Mdr_topology.Cairn.topology () in
  let flows =
    List.mapi
      (fun i (src, dst) ->
        { Sim.src; dst; rate_bits = 1.15 *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6; burst = None })
      (Mdr_topology.Cairn.flow_pairs g)
  in
  let cfg = { Sim.default_config with sim_time = 80.0; warmup = 20.0 } in
  let seeds = [ 1; 2; 3 ] in
  let mp, mp_avg = mean_flow_delays g flows cfg ~seeds in
  let sp, sp_avg = mean_flow_delays g flows { cfg with scheme = Sim.Sp } ~seeds in
  check "network average: SP worse" true (sp_avg > mp_avg);
  let ratios = List.map2 (fun m s -> s /. m) mp sp in
  check "some flow at least 1.5x" true (List.exists (fun r -> r > 1.5) ratios)

let test_opt_is_lower_bound () =
  (* OPT must lower-bound both MP and SP in the fluid model. *)
  let g, _, traffic = cairn_traffic 1.0 in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let opt = Gallager.solve model g traffic in
  let mp = Controller.run ~config:{ Controller.scheme = Mp; rounds = 30; ts_per_tl = 5; damping = 0.5 } model g traffic in
  let sp = Controller.run ~config:{ Controller.scheme = Sp; rounds = 30; ts_per_tl = 1; damping = 0.5 } model g traffic in
  check "opt <= mp" true (opt.avg_delay <= mp.avg_delay *. 1.001);
  check "opt <= sp" true (opt.avg_delay <= sp.avg_delay *. 1.001)

let test_fluid_and_packet_sim_agree () =
  (* The packet simulator and the fluid model must agree on MP's CAIRN
     delays within stochastic tolerance — this ties the two halves of
     the reproduction together. *)
  let g, pairs, traffic = cairn_traffic 1.0 in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let mp_fluid =
    Controller.run
      ~config:{ Controller.scheme = Mp; rounds = 40; ts_per_tl = 5; damping = 0.5 }
      model g traffic
  in
  let flows =
    List.mapi
      (fun i (src, dst) ->
        { Sim.src; dst; rate_bits = (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6; burst = None })
      pairs
  in
  let cfg = { Sim.default_config with sim_time = 60.0; warmup = 15.0 } in
  let mp_sim = Sim.run ~config:cfg g flows in
  let ratio = mp_sim.avg_delay /. mp_fluid.avg_delay in
  check "within 25%" true (ratio > 0.75 && ratio < 1.25)

let test_dynamic_bursts_mp_beats_sp () =
  (* The dynamic-traffic experiment: bursty sources, MP adapts better. *)
  let g = Mdr_topology.Cairn.topology () in
  let flows =
    List.mapi
      (fun i (src, dst) ->
        {
          Sim.src;
          dst;
          rate_bits = 1.1 *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6;
          burst = Some (2.0, 2.0);
        })
      (Mdr_topology.Cairn.flow_pairs g)
  in
  let cfg = { Sim.default_config with sim_time = 60.0; warmup = 15.0 } in
  let mp = Sim.run ~config:cfg g flows in
  let sp = Sim.run ~config:{ cfg with scheme = Sim.Sp } g flows in
  check "MP adapts better to bursts" true (mp.avg_delay < sp.avg_delay)

let test_link_failure_recovery_end_to_end () =
  (* Control-plane pipeline: converge, fail a trunk, verify loop-free
     reconvergence to the alternate trunk. *)
  let module Network = Mdr_routing.Network in
  let module Router = Mdr_routing.Router in
  let g = Mdr_topology.Cairn.topology () in
  let violations = ref 0 in
  let observer net = if not (Network.check_loop_free net) then incr violations in
  let cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 100.0) in
  let net = Network.create ~observer ~topo:g ~cost () in
  Network.run net;
  let isi = Graph.node_of_name g "isi" and mci = Graph.node_of_name g "mci-r" in
  Network.schedule_fail_duplex net ~at:1.0 ~a:isi ~b:mci;
  Network.run net;
  check "no transient loops" true (!violations = 0);
  check "still reaches east" true
    (Float.is_finite (Router.distance (Network.router net isi) ~dst:mci));
  check "quiescent" true (Network.quiescent net)

let suite =
  [
    Alcotest.test_case "fig 9 shape: MP within OPT envelope (fluid)" `Slow test_fig9_shape_fluid;
    Alcotest.test_case "fig 11 shape: SP multiple of MP (packet)" `Slow test_fig11_shape_packet_sim;
    Alcotest.test_case "OPT lower-bounds MP and SP" `Slow test_opt_is_lower_bound;
    Alcotest.test_case "fluid and packet models agree" `Slow test_fluid_and_packet_sim_agree;
    Alcotest.test_case "dynamic bursts: MP beats SP" `Slow test_dynamic_bursts_mp_beats_sp;
    Alcotest.test_case "CAIRN trunk failure recovery" `Quick test_link_failure_recovery_end_to_end;
  ]

let () =
  Alcotest.run "mdr"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("topology", Test_topology.suite);
      ("parser", Test_parser.suite);
      ("eventsim", Test_eventsim.suite);
      ("fluid", Test_fluid.suite);
      ("costs", Test_costs.suite);
      ("routing", Test_routing.suite);
      ("incr_spf", Test_incr_spf.suite);
      ("dv", Test_dv.suite);
      ("faults", Test_faults.suite);
      ("gallager", Test_gallager.suite);
      ("core", Test_core.suite);
      ("netsim", Test_netsim.suite);
      ("experiments", Test_experiments.suite);
      ("server", Test_server.suite);
      ("wire", Test_wire.suite);
      ("analysis", Test_analysis.suite);
      ("integration", suite);
    ]
