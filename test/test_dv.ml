(* Tests for the distance-vector LFI instantiation (Dv_router): it
   must satisfy exactly the properties MPDA does — convergence to
   shortest paths, multipath successor sets, and instantaneous
   loop-freedom — exercised through the same harness. *)

module Graph = Mdr_topology.Graph
module Generators = Mdr_topology.Generators
module Rng = Mdr_util.Rng
module Dijkstra = Mdr_routing.Dijkstra
module Dv_router = Mdr_routing.Dv_router
module DvNet = Mdr_routing.Harness.Dv_network

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let delay_cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0)

let converged_check net topo cost =
  let n = Graph.node_count topo in
  let ok = ref true in
  for src = 0 to n - 1 do
    let res = Dijkstra.on_graph topo ~root:src ~cost in
    for dst = 0 to n - 1 do
      let d = Dv_router.distance (DvNet.router net src) ~dst in
      let both_inf = Float.equal d infinity && Float.equal res.dist.(dst) infinity in
      if not (both_inf || Float.abs (d -. res.dist.(dst)) < 1e-9) then ok := false
    done
  done;
  !ok

let test_converges_net1 () =
  let topo = Mdr_topology.Net1.topology () in
  let net = DvNet.create ~topo ~cost:delay_cost () in
  DvNet.run net;
  check "quiescent" true (DvNet.quiescent net);
  check "distances correct" true (converged_check net topo delay_cost);
  check "loop free" true (DvNet.check_loop_free net);
  check "lfi" true (DvNet.check_lfi net)

let test_converges_cairn () =
  let topo = Mdr_topology.Cairn.topology () in
  let net = DvNet.create ~topo ~cost:delay_cost () in
  DvNet.run net;
  check "quiescent" true (DvNet.quiescent net);
  check "distances correct" true (converged_check net topo delay_cost)

let test_multipath_successors () =
  (* Unequal-cost diamond: both neighbors must be successors, as for
     MPDA. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y, ms) -> Graph.add_duplex g x y ~capacity:1e6 ~prop_delay:(ms /. 1000.0))
    [ ("s", "a", 1.0); ("a", "d", 1.0); ("s", "b", 2.0); ("b", "d", 2.0) ];
  let net = DvNet.create ~topo:g ~cost:delay_cost () in
  DvNet.run net;
  let succ = Dv_router.successors (DvNet.router net 0) ~dst:3 in
  check "two successors" true (List.sort compare succ = [ 1; 2 ])

let test_cost_increase_reconverges () =
  let topo = Mdr_topology.Net1.topology () in
  let net = DvNet.create ~topo ~cost:delay_cost () in
  DvNet.run net;
  DvNet.schedule_link_cost net ~at:1.0 ~src:0 ~dst:1 ~cost:50.0;
  DvNet.schedule_link_cost net ~at:1.0 ~src:1 ~dst:0 ~cost:50.0;
  DvNet.run net;
  let cost2 (l : Graph.link) =
    if (l.src = 0 && l.dst = 1) || (l.src = 1 && l.dst = 0) then 50.0
    else delay_cost l
  in
  check "reconverged after increase" true (converged_check net topo cost2);
  check "quiescent" true (DvNet.quiescent net)

let test_failure_on_ring_reconverges () =
  (* A ring stays connected when any single link fails, so even plain
     distance vectors cannot count to infinity. *)
  let topo = Generators.ring ~n:8 ~capacity:1e6 ~prop_delay:0.001 in
  let net = DvNet.create ~topo ~cost:delay_cost () in
  DvNet.run net;
  DvNet.schedule_fail_duplex net ~at:1.0 ~a:0 ~b:1;
  DvNet.run net;
  let cost_failed (l : Graph.link) =
    if (l.src = 0 && l.dst = 1) || (l.src = 1 && l.dst = 0) then infinity
    else delay_cost l
  in
  check "reconverged after failure" true (converged_check net topo cost_failed);
  DvNet.schedule_restore_duplex net ~at:2.0 ~a:0 ~b:1 ~cost:2.0;
  DvNet.run net;
  let cost_restored (l : Graph.link) =
    if (l.src = 0 && l.dst = 1) || (l.src = 1 && l.dst = 0) then 2.0
    else delay_cost l
  in
  check "reconverged after restore" true (converged_check net topo cost_restored)

let storm_cost_changes ~seed =
  let rng = Rng.create ~seed in
  let n = 6 + Rng.int rng ~bound:8 in
  let topo =
    Generators.ring_with_chords ~rng ~n ~chords:(2 + Rng.int rng ~bound:5)
      ~capacity:1e6 ~prop_delay:0.001
  in
  let violations = ref 0 and checks = ref 0 in
  let observer net =
    incr checks;
    if not (DvNet.check_loop_free net) then incr violations
  in
  let net = DvNet.create ~observer ~topo ~cost:delay_cost () in
  let links = Array.of_list (Graph.links topo) in
  for _ = 1 to 40 do
    let l = links.(Rng.int rng ~bound:(Array.length links)) in
    DvNet.schedule_link_cost net
      ~at:(Rng.uniform rng ~lo:0.0 ~hi:0.15)
      ~src:l.Graph.src ~dst:l.Graph.dst
      ~cost:(Rng.uniform rng ~lo:0.5 ~hi:20.0)
  done;
  DvNet.run net;
  (!violations, !checks, DvNet.quiescent net)

let test_storm_loop_free () =
  let total = ref 0 in
  for seed = 1 to 10 do
    let violations, checks, quiescent = storm_cost_changes ~seed in
    total := !total + checks;
    check_int "no violations" 0 violations;
    check "quiescent" true quiescent
  done;
  check "exercised" true (!total > 500)

let prop_storm_loop_free =
  QCheck.Test.make ~name:"DV loop-free at every instant (random storms)" ~count:15
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let violations, _, _ = storm_cost_changes ~seed in
      violations = 0)

let test_message_cost_comparable_to_mpda () =
  (* Cold-start message counts of the two instantiations are the same
     order of magnitude. *)
  let topo = Mdr_topology.Net1.topology () in
  let dv = DvNet.create ~topo ~cost:delay_cost () in
  DvNet.run dv;
  let ls = Mdr_routing.Network.create ~topo ~cost:delay_cost () in
  Mdr_routing.Network.run ls;
  let dv_msgs = DvNet.total_messages dv in
  let ls_msgs = Mdr_routing.Network.total_messages ls in
  check "same order of magnitude" true
    (dv_msgs < 10 * ls_msgs && ls_msgs < 10 * dv_msgs)

let test_horizon_caps_counting () =
  (* Distances beyond the horizon must collapse to infinity. *)
  let r = Dv_router.create ~id:0 ~n:3 in
  let outputs = Dv_router.handle_link_up r ~nbr:1 ~cost:1.0 in
  (* Acknowledge the initial full-vector advertisement so the router
     returns to PASSIVE and processes vectors normally. *)
  let seq_sent =
    match outputs with
    | [ (1, m) ] -> Option.get m.Dv_router.seq
    | _ -> Alcotest.fail "expected one message to the neighbor"
  in
  ignore
    (Dv_router.handle_msg r ~from_:1
       {
         Dv_router.entries = [ (1, 0.0); (2, Dv_router.horizon) ];
         reset = true;
         seq = Some 0;
         ack_of = Some seq_sent;
       });
  check "direct neighbor reachable" true
    (Float.is_finite (Dv_router.distance r ~dst:1));
  check "beyond-horizon node unreachable" true
    (Float.equal (Dv_router.distance r ~dst:2) infinity)

let suite =
  [
    Alcotest.test_case "dv: converges on NET1" `Quick test_converges_net1;
    Alcotest.test_case "dv: converges on CAIRN" `Quick test_converges_cairn;
    Alcotest.test_case "dv: unequal-cost multipath" `Quick test_multipath_successors;
    Alcotest.test_case "dv: cost increase reconverges" `Quick test_cost_increase_reconverges;
    Alcotest.test_case "dv: ring failure and restore" `Quick test_failure_on_ring_reconverges;
    Alcotest.test_case "dv: storms never loop" `Slow test_storm_loop_free;
    Alcotest.test_case "dv: message cost ~ MPDA's" `Quick test_message_cost_comparable_to_mpda;
    Alcotest.test_case "dv: horizon bounds counting" `Quick test_horizon_caps_counting;
    QCheck_alcotest.to_alcotest prop_storm_loop_free;
  ]
