(* Tests for the routing library: topology tables, Dijkstra (checked
   against Bellman-Ford), the PDA/MPDA state machines, and the
   instantaneous loop-freedom guarantee under randomized event storms —
   the reproduction of Theorems 2, 3 and 4. *)

module Graph = Mdr_topology.Graph
module Generators = Mdr_topology.Generators
module Rng = Mdr_util.Rng
module Topo_table = Mdr_routing.Topo_table
module Dijkstra = Mdr_routing.Dijkstra
module Bellman_ford = Mdr_routing.Bellman_ford
module Router = Mdr_routing.Router
module Network = Mdr_routing.Network
module Lfi = Mdr_routing.Lfi

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Topo_table ------------------------------------------------------- *)

let test_table_set_get () =
  let t = Topo_table.create () in
  Topo_table.set t ~head:0 ~tail:1 ~cost:2.5;
  check "cost" true (Topo_table.cost t ~head:0 ~tail:1 = Some 2.5);
  check "missing" true (Topo_table.cost t ~head:1 ~tail:0 = None);
  check_int "size" 1 (Topo_table.size t);
  Topo_table.set t ~head:0 ~tail:1 ~cost:3.0;
  check "updated" true (Topo_table.cost t ~head:0 ~tail:1 = Some 3.0);
  check_int "no dup" 1 (Topo_table.size t)

let test_table_remove () =
  let t = Topo_table.create () in
  Topo_table.set t ~head:0 ~tail:1 ~cost:1.0;
  Topo_table.remove t ~head:0 ~tail:1;
  check "removed" true (Topo_table.cost t ~head:0 ~tail:1 = None);
  check "out links empty" true (Topo_table.out_links t ~head:0 = [])

let test_table_apply_entry () =
  let t = Topo_table.create () in
  Topo_table.apply_entry t { head = 1; tail = 2; cost = 4.0 };
  check "added" true (Topo_table.cost t ~head:1 ~tail:2 = Some 4.0);
  Topo_table.apply_entry t { head = 1; tail = 2; cost = infinity };
  check "deleted" true (Topo_table.cost t ~head:1 ~tail:2 = None)

let test_table_diff () =
  let a = Topo_table.create () and b = Topo_table.create () in
  Topo_table.set a ~head:0 ~tail:1 ~cost:1.0;
  Topo_table.set a ~head:1 ~tail:2 ~cost:2.0;
  Topo_table.set b ~head:1 ~tail:2 ~cost:5.0;
  Topo_table.set b ~head:2 ~tail:3 ~cost:1.0;
  let diff = Topo_table.diff ~old_table:a ~new_table:b in
  (* 0->1 deleted, 1->2 changed, 2->3 added. *)
  check_int "three entries" 3 (List.length diff);
  let apply = Topo_table.copy a in
  List.iter (Topo_table.apply_entry apply) diff;
  check "diff transforms" true (Topo_table.equal apply b)

let test_table_nodes_and_copy () =
  let t = Topo_table.create () in
  Topo_table.set t ~head:5 ~tail:2 ~cost:1.0;
  Topo_table.set t ~head:2 ~tail:9 ~cost:1.0;
  check "nodes" true (Topo_table.nodes t = [ 2; 5; 9 ]);
  let c = Topo_table.copy t in
  Topo_table.remove t ~head:5 ~tail:2;
  check "copy unaffected" true (Topo_table.cost c ~head:5 ~tail:2 = Some 1.0)

let test_table_rejects_bad () =
  let t = Topo_table.create () in
  check "infinite cost set" true
    (try
       Topo_table.set t ~head:0 ~tail:1 ~cost:infinity;
       false
     with Invalid_argument _ -> true);
  check "self loop" true
    (try
       Topo_table.set t ~head:1 ~tail:1 ~cost:1.0;
       false
     with Invalid_argument _ -> true)

(* --- Dijkstra vs Bellman-Ford ---------------------------------------- *)

let hop_cost (_ : Graph.link) = 1.0

let delay_cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0)

let test_dijkstra_on_line () =
  let t = Topo_table.create () in
  Topo_table.set t ~head:0 ~tail:1 ~cost:1.0;
  Topo_table.set t ~head:1 ~tail:2 ~cost:2.0;
  let r = Dijkstra.on_table ~n:3 ~root:0 t in
  check_float "d0" 0.0 r.dist.(0);
  check_float "d1" 1.0 r.dist.(1);
  check_float "d2" 3.0 r.dist.(2);
  check_int "parent of 2" 1 r.parent.(2)

let test_dijkstra_unreachable () =
  let t = Topo_table.create () in
  Topo_table.set t ~head:0 ~tail:1 ~cost:1.0;
  let r = Dijkstra.on_table ~n:3 ~root:0 t in
  check "unreachable" true (Float.equal r.dist.(2) infinity);
  check_int "no parent" (-1) r.parent.(2)

let test_dijkstra_vs_bellman_ford_random () =
  for seed = 1 to 25 do
    let rng = Rng.create ~seed in
    let g = Generators.random_connected ~rng ~n:15 ~extra_links:10 () in
    let root = Rng.int rng ~bound:15 in
    let d = Dijkstra.on_graph g ~root ~cost:delay_cost in
    let bf = Bellman_ford.distances_from g ~src:root ~cost:delay_cost in
    for j = 0 to 14 do
      check "dijkstra = bellman-ford" true (Float.abs (d.dist.(j) -. bf.(j)) < 1e-9)
    done
  done

let test_distances_to_reversed () =
  let g = Graph.create ~names:[| "a"; "b"; "c" |] in
  Graph.add_duplex g "a" "b" ~capacity:1e6 ~prop_delay:0.001;
  Graph.add_duplex g "b" "c" ~capacity:1e6 ~prop_delay:0.002;
  let d = Dijkstra.distances_to g ~dst:2 ~cost:delay_cost in
  check_float "c to itself" 0.0 d.(2);
  check_float "b one hop" 3.0 d.(1);
  check_float "a two hops" 5.0 d.(0);
  let bf = Bellman_ford.distances_to g ~dst:2 ~cost:delay_cost in
  Array.iteri (fun i v -> check_float "bf agrees" v d.(i)) bf

let test_dijkstra_tree_extraction () =
  let t = Topo_table.create () in
  Topo_table.set t ~head:0 ~tail:1 ~cost:1.0;
  Topo_table.set t ~head:0 ~tail:2 ~cost:5.0;
  Topo_table.set t ~head:1 ~tail:2 ~cost:1.0;
  let r = Dijkstra.on_table ~n:3 ~root:0 t in
  let tree =
    Dijkstra.tree_of_result ~n:3 ~root:0 r ~cost:(fun ~head ~tail ->
        Option.get (Topo_table.cost t ~head ~tail))
  in
  (* Shortest path tree keeps 0->1 and 1->2, drops 0->2. *)
  check_int "two links" 2 (Topo_table.size tree);
  check "keeps 1->2" true (Topo_table.cost tree ~head:1 ~tail:2 = Some 1.0);
  check "drops 0->2" true (Topo_table.cost tree ~head:0 ~tail:2 = None)

let test_dijkstra_deterministic_ties () =
  (* Two equal-cost paths: parent must be the lower-id predecessor. *)
  let t = Topo_table.create () in
  Topo_table.set t ~head:0 ~tail:1 ~cost:1.0;
  Topo_table.set t ~head:0 ~tail:2 ~cost:1.0;
  Topo_table.set t ~head:1 ~tail:3 ~cost:1.0;
  Topo_table.set t ~head:2 ~tail:3 ~cost:1.0;
  let r = Dijkstra.on_table ~n:4 ~root:0 t in
  check_int "tie to lower id" 1 r.parent.(3)

(* --- LFI checker ------------------------------------------------------ *)

let test_lfi_cycle_detection () =
  let successors ~node = match node with 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  check "cycle" false (Lfi.successor_graph_acyclic ~n:3 ~successors ~dst:2);
  match Lfi.find_cycle ~n:3 ~successors ~dst:2 with
  | Some cycle -> check "witness" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a cycle"

let test_lfi_dag_ok () =
  let successors ~node = match node with 0 -> [ 1; 2 ] | 1 -> [ 2 ] | _ -> [] in
  check "acyclic" true (Lfi.successor_graph_acyclic ~n:3 ~successors ~dst:2)

(* --- PDA / MPDA convergence ------------------------------------------- *)

let converged_check net topo cost =
  (* Distances equal global Dijkstra; successor sets match Theorem 4. *)
  let n = Graph.node_count topo in
  let ok = ref true in
  for src = 0 to n - 1 do
    let res = Dijkstra.on_graph topo ~root:src ~cost in
    for dst = 0 to n - 1 do
      let d = Router.distance (Network.router net src) ~dst in
      let both_inf = Float.equal d infinity && Float.equal res.dist.(dst) infinity in
      if not (both_inf || Float.abs (d -. res.dist.(dst)) < 1e-9) then ok := false
    done
  done;
  for node = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if node <> dst then begin
        let expected =
          List.filter
            (fun k ->
              Float.is_finite (cost (Graph.link_exn topo ~src:node ~dst:k))
              && Router.distance (Network.router net k) ~dst
                 < Router.distance (Network.router net node) ~dst)
            (Graph.neighbors topo node)
        in
        let got = Router.successors (Network.router net node) ~dst in
        if List.sort compare got <> List.sort compare expected then ok := false
      end
    done
  done;
  !ok

let test_mpda_converges_net1 () =
  let topo = Mdr_topology.Net1.topology () in
  let net = Network.create ~topo ~cost:delay_cost () in
  Network.run net;
  check "quiescent" true (Network.quiescent net);
  check "converged" true (converged_check net topo delay_cost);
  check "loop free" true (Network.check_loop_free net);
  check "lfi holds" true (Network.check_lfi net)

let test_mpda_converges_cairn () =
  let topo = Mdr_topology.Cairn.topology () in
  let net = Network.create ~topo ~cost:delay_cost () in
  Network.run net;
  check "quiescent" true (Network.quiescent net);
  check "converged" true (converged_check net topo delay_cost)

let test_pda_converges () =
  let topo = Mdr_topology.Net1.topology () in
  let net = Network.create ~mode:Router.Pda ~topo ~cost:delay_cost () in
  Network.run net;
  check "pda converged" true (converged_check net topo delay_cost)

let test_mpda_cost_change_reconverges () =
  let topo = Mdr_topology.Net1.topology () in
  let net = Network.create ~topo ~cost:hop_cost () in
  Network.run net;
  Network.schedule_link_cost net ~at:1.0 ~src:0 ~dst:1 ~cost:10.0;
  Network.run net;
  let cost2 (l : Graph.link) = if l.src = 0 && l.dst = 1 then 10.0 else 1.0 in
  check "reconverged" true (converged_check net topo cost2)

let test_mpda_failure_and_recovery () =
  let topo = Mdr_topology.Net1.topology () in
  let net = Network.create ~topo ~cost:hop_cost () in
  Network.run net;
  Network.schedule_fail_duplex net ~at:1.0 ~a:2 ~b:7;
  Network.run net;
  let cost_failed (l : Graph.link) =
    if (l.src = 2 && l.dst = 7) || (l.src = 7 && l.dst = 2) then infinity else 1.0
  in
  check "converged after failure" true (converged_check net topo cost_failed);
  Network.schedule_restore_duplex net ~at:2.0 ~a:2 ~b:7 ~cost:1.0;
  Network.run net;
  check "converged after recovery" true (converged_check net topo hop_cost)

let test_mpda_multiple_unequal_paths () =
  (* The headline claim: unequal-cost multipath. Build a diamond with
     unequal sides and confirm both are successors. *)
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y, ms) ->
      Graph.add_duplex g x y ~capacity:1e6 ~prop_delay:(ms /. 1000.0))
    [ ("s", "a", 1.0); ("a", "d", 1.0); ("s", "b", 2.0); ("b", "d", 2.0) ];
  let net = Network.create ~topo:g ~cost:delay_cost () in
  Network.run net;
  (* d(a->d) = 2, d(b->d) = 3, d(s->d) = 4: both a and b are closer
     than s, so both are valid loop-free successors despite unequal
     path costs. *)
  let succ = Router.successors (Network.router net 0) ~dst:3 in
  check "two successors" true (List.sort compare succ = [ 1; 2 ])

(* --- Router state-machine unit tests ---------------------------------- *)

let test_router_link_up_sends_full_table () =
  let r = Router.create ~mode:Router.Mpda ~id:0 ~n:3 () in
  match Router.handle_link_up r ~nbr:1 ~cost:2.0 with
  | [ { Router.dst = 1; msg } ] ->
    check "reset flag" true msg.Router.reset;
    check "needs ack" true (msg.Router.seq <> None);
    check "tree has adjacent link" true
      (List.exists
         (fun (e : Topo_table.entry) ->
           e.head = 0 && e.tail = 1 && Float.equal e.cost 2.0)
         msg.Router.entries);
    check "now active" false (Router.is_passive r)
  | _ -> Alcotest.fail "expected exactly one full-table LSU"

let test_router_ack_releases_active () =
  let r = Router.create ~mode:Router.Mpda ~id:0 ~n:3 () in
  let outputs = Router.handle_link_up r ~nbr:1 ~cost:2.0 in
  let seq =
    match outputs with
    | [ { Router.msg; _ } ] -> Option.get msg.Router.seq
    | _ -> Alcotest.fail "unexpected"
  in
  check "active while waiting" false (Router.is_passive r);
  let replies =
    Router.handle_msg r ~from_:1
      { Router.entries = []; reset = false; seq = None; ack_of = Some seq }
  in
  check "passive after ack" true (Router.is_passive r);
  check "pure ack needs no reply" true (replies = [])

let test_router_stale_ack_ignored () =
  let r = Router.create ~mode:Router.Mpda ~id:0 ~n:3 () in
  let outputs = Router.handle_link_up r ~nbr:1 ~cost:2.0 in
  let seq =
    match outputs with
    | [ { Router.msg; _ } ] -> Option.get msg.Router.seq
    | _ -> Alcotest.fail "unexpected"
  in
  (* An ack for a different (stale) sequence must not release the
     ACTIVE state. *)
  ignore
    (Router.handle_msg r ~from_:1
       { Router.entries = []; reset = false; seq = None; ack_of = Some (seq + 77) });
  check "still active" false (Router.is_passive r);
  ignore
    (Router.handle_msg r ~from_:1
       { Router.entries = []; reset = false; seq = None; ack_of = Some seq });
  check "released by the right ack" true (Router.is_passive r)

let test_router_data_lsu_is_acked () =
  let r = Router.create ~mode:Router.Mpda ~id:0 ~n:3 () in
  let outputs = Router.handle_link_up r ~nbr:1 ~cost:2.0 in
  let seq0 =
    match outputs with
    | [ { Router.msg; _ } ] -> Option.get msg.Router.seq
    | _ -> Alcotest.fail "unexpected"
  in
  (* Neighbor's full table, acking ours and requiring an ack itself. *)
  let replies =
    Router.handle_msg r ~from_:1
      {
        Router.entries = [ { Topo_table.head = 1; tail = 0; cost = 2.0 } ];
        reset = true;
        seq = Some 0;
        ack_of = Some seq0;
      }
  in
  check "some reply" true (replies <> []);
  check "reply carries the ack" true
    (List.exists
       (fun { Router.dst; msg } -> dst = 1 && msg.Router.ack_of = Some 0)
       replies)

let test_router_link_down_clears_state () =
  let r = Router.create ~mode:Router.Mpda ~id:0 ~n:3 () in
  ignore (Router.handle_link_up r ~nbr:1 ~cost:2.0);
  ignore
    (Router.handle_msg r ~from_:1
       {
         Router.entries = [ { Topo_table.head = 1; tail = 2; cost = 1.0 } ];
         reset = true;
         seq = Some 0;
         ack_of = Some 0;
       });
  ignore (Router.handle_link_down r ~nbr:1);
  check "neighbor gone" true (Router.up_neighbors r = []);
  check "distance infinite" true (Float.equal (Router.distance r ~dst:1) infinity);
  check "neighbor distance infinite" true
    (Float.equal (Router.neighbor_distance r ~nbr:1 ~dst:2) infinity)

let test_router_drops_msgs_from_down_links () =
  let r = Router.create ~mode:Router.Mpda ~id:0 ~n:3 () in
  let replies =
    Router.handle_msg r ~from_:2
      { Router.entries = []; reset = false; seq = Some 0; ack_of = None }
  in
  check "dropped silently" true (replies = [])

(* --- The event-storm property: Theorem 3 ----------------------------- *)

let storm ~mode ~seed =
  let rng = Rng.create ~seed in
  let n = 6 + Rng.int rng ~bound:8 in
  let topo =
    Generators.random_connected ~rng ~n ~extra_links:(3 + Rng.int rng ~bound:6) ()
  in
  let violations = ref 0 and checks = ref 0 in
  let observer net =
    incr checks;
    if not (Network.check_loop_free net) then incr violations
  in
  let net = Network.create ~mode ~observer ~topo ~cost:delay_cost () in
  let links = Array.of_list (Graph.links topo) in
  for _ = 1 to 40 do
    let l = links.(Rng.int rng ~bound:(Array.length links)) in
    Network.schedule_link_cost net
      ~at:(Rng.uniform rng ~lo:0.0 ~hi:0.15)
      ~src:l.Graph.src ~dst:l.Graph.dst
      ~cost:(Rng.uniform rng ~lo:0.5 ~hi:20.0)
  done;
  for _ = 1 to 2 do
    let l = links.(Rng.int rng ~bound:(Array.length links)) in
    let at = Rng.uniform rng ~lo:0.0 ~hi:0.08 in
    Network.schedule_fail_duplex net ~at ~a:l.Graph.src ~b:l.Graph.dst;
    Network.schedule_restore_duplex net ~at:(at +. 0.04) ~a:l.Graph.src
      ~b:l.Graph.dst ~cost:(Rng.uniform rng ~lo:0.5 ~hi:20.0)
  done;
  Network.run net;
  (!violations, !checks, Network.quiescent net)

let test_mpda_storm_loop_free () =
  (* Theorem 3: never a loop, at any instant, under any event storm. *)
  let total_checks = ref 0 in
  for seed = 1 to 15 do
    let violations, checks, quiescent = storm ~mode:Router.Mpda ~seed in
    total_checks := !total_checks + checks;
    check_int "no violations" 0 violations;
    check "quiescent" true quiescent
  done;
  check "exercised" true (!total_checks > 1000)

let test_pda_storm_has_loops () =
  (* The ablation: without MPDA's synchronization the same storms DO
     create transient loops — this is why MPDA exists. *)
  let total_violations = ref 0 in
  for seed = 1 to 15 do
    let violations, _, _ = storm ~mode:Router.Pda ~seed in
    total_violations := !total_violations + violations
  done;
  check "pda loops transiently" true (!total_violations > 0)

let prop_mpda_storm_loop_free =
  QCheck.Test.make ~name:"MPDA loop-free at every instant (random storms)"
    ~count:20
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let violations, _, _ = storm ~mode:Router.Mpda ~seed in
      violations = 0)

let test_mpda_lfi_after_storm () =
  for seed = 50 to 55 do
    let rng = Rng.create ~seed in
    let topo = Generators.random_connected ~rng ~n:10 ~extra_links:5 () in
    let net = Network.create ~topo ~cost:delay_cost () in
    let links = Array.of_list (Graph.links topo) in
    for _ = 1 to 20 do
      let l = links.(Rng.int rng ~bound:(Array.length links)) in
      Network.schedule_link_cost net
        ~at:(Rng.uniform rng ~lo:0.0 ~hi:0.1)
        ~src:l.Graph.src ~dst:l.Graph.dst
        ~cost:(Rng.uniform rng ~lo:0.5 ~hi:10.0)
    done;
    Network.run net;
    check "lfi" true (Network.check_lfi net)
  done

let test_router_message_stats () =
  let topo = Mdr_topology.Net1.topology () in
  let net = Network.create ~topo ~cost:hop_cost () in
  Network.run net;
  check "messages flowed" true (Network.total_messages net > 0)

(* --- Cost-change damping ---------------------------------------------- *)

module Cost_trigger = Mdr_routing.Cost_trigger

let trigger ?params () = Cost_trigger.create ?params ~initial:1.0 ~now:0.0 ()

let test_trigger_absorbs_wobble () =
  let tr = trigger () in
  (* 5% change against a 10% threshold: nothing happens. *)
  check "no action" true (Cost_trigger.offer tr ~now:0.0 ~cost:1.05 = []);
  check_float "reported unchanged" 1.0 (Cost_trigger.reported tr);
  check_int "offered" 1 (Cost_trigger.offers tr);
  check_int "applied" 0 (Cost_trigger.applied tr)

let test_trigger_first_change_immediate () =
  let tr = trigger () in
  (match Cost_trigger.offer tr ~now:0.0 ~cost:2.0 with
  | [ Cost_trigger.Apply c ] -> check_float "applied cost" 2.0 c
  | _ -> check "one Apply" true false);
  check_float "reported" 2.0 (Cost_trigger.reported tr)

let test_trigger_hold_down_batches_latest () =
  let tr = trigger () in
  ignore (Cost_trigger.offer tr ~now:0.0 ~cost:2.0);
  (* Within the 1 s hold-down: armed for the remainder. *)
  (match Cost_trigger.offer tr ~now:0.3 ~cost:3.0 with
  | [ Cost_trigger.Arm d ] -> check "remaining hold" true (Float.abs (d -. 0.7) < 1e-6)
  | _ -> check "one Arm" true false);
  (* A later offer overwrites the pending value without re-arming. *)
  check "already armed" true (Cost_trigger.offer tr ~now:0.5 ~cost:4.0 = []);
  (match Cost_trigger.on_check tr ~now:1.0 with
  | [ Cost_trigger.Apply c ] -> check_float "latest pending wins" 4.0 c
  | _ -> check "applies on expiry" true false);
  check_int "two applies total" 2 (Cost_trigger.applied tr)

let test_trigger_wobble_back_cancels () =
  let tr = trigger () in
  ignore (Cost_trigger.offer tr ~now:0.0 ~cost:2.0);
  (match Cost_trigger.offer tr ~now:0.3 ~cost:3.0 with
  | [ Cost_trigger.Arm _ ] -> ()
  | _ -> check "armed" true false);
  (* The cost wobbles back under the threshold before the check. *)
  ignore (Cost_trigger.offer tr ~now:0.6 ~cost:2.05);
  check "expired check does nothing" true (Cost_trigger.on_check tr ~now:1.0 = []);
  check_float "reported" 2.0 (Cost_trigger.reported tr);
  check_int "one apply" 1 (Cost_trigger.applied tr)

let test_trigger_flap_suppression_and_reuse () =
  let tr = trigger () in
  (* Alternate 1 <-> 2 once per second: with flap_penalty 1, half-life
     10 s and suppress 2, the third applied update engages
     suppression. *)
  ignore (Cost_trigger.offer tr ~now:0.0 ~cost:2.0);
  ignore (Cost_trigger.offer tr ~now:1.0 ~cost:1.0);
  ignore (Cost_trigger.offer tr ~now:2.0 ~cost:2.0);
  check "suppressed after three applies" true (Cost_trigger.suppressed tr);
  check_int "three applies" 3 (Cost_trigger.applied tr);
  (* Further changes are held; one reuse check is armed. *)
  let d =
    match Cost_trigger.offer tr ~now:3.0 ~cost:1.0 with
    | [ Cost_trigger.Arm d ] -> d
    | _ ->
      check "armed for reuse" true false;
      0.0
  in
  check "reuse wait is long" true (d > 5.0);
  (* When the penalty has decayed to reuse, the latest pending cost
     goes out as one batched update. *)
  (match Cost_trigger.on_check tr ~now:(3.0 +. d +. 1e-6) with
  | [ Cost_trigger.Apply c ] -> check_float "batched latest" 1.0 c
  | _ -> check "batched apply" true false);
  check "suppression lifted" false (Cost_trigger.suppressed tr);
  check_int "four applies" 4 (Cost_trigger.applied tr)

let test_trigger_sync_resets_without_penalty () =
  let tr = trigger () in
  ignore (Cost_trigger.offer tr ~now:0.0 ~cost:2.0);
  let before = Cost_trigger.penalty tr ~now:0.5 in
  Cost_trigger.sync tr ~now:0.5 ~cost:5.0;
  check_float "reported realigned" 5.0 (Cost_trigger.reported tr);
  check "no penalty charged" true (Cost_trigger.penalty tr ~now:0.5 <= before);
  (* Sub-threshold relative to the synced value. *)
  check "wobble vs synced cost absorbed" true
    (Cost_trigger.offer tr ~now:2.0 ~cost:5.2 = [])

let test_trigger_no_damping_never_suppresses () =
  let params = { Cost_trigger.default_params with damping = None } in
  let tr = trigger ~params () in
  for k = 0 to 19 do
    let cost = if k mod 2 = 0 then 2.0 else 1.0 in
    ignore (Cost_trigger.offer tr ~now:(float_of_int k) ~cost)
  done;
  check "never suppressed" false (Cost_trigger.suppressed tr);
  check_int "every flap applied" 20 (Cost_trigger.applied tr)

let test_trigger_validate () =
  let rejects p =
    match Cost_trigger.validate p with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check "negative threshold" true
    (rejects { Cost_trigger.default_params with rel_threshold = -0.1 });
  check "negative hold" true
    (rejects { Cost_trigger.default_params with hold = -1.0 });
  check "reuse above suppress" true
    (rejects
       {
         Cost_trigger.default_params with
         damping =
           Some
             {
               Mdr_routing.Hello.flap_penalty = 1.0;
               half_life = 10.0;
               suppress = 1.0;
               reuse = 2.0;
             };
       })

let test_harness_cost_damping_cuts_churn () =
  (* Flap one directed link's cost between 1 and 5 every 0.5 s over
     [5 s, 15 s) on NET1, with and without damping. The damped run must
     apply strictly fewer updates than it was offered, engage
     suppression at some point, and still end quiescent and
     invariant-clean. *)
  let mk damped =
    let topo = Mdr_topology.Net1.topology () in
    let net = Network.create ~seed:7 ~topo ~cost:hop_cost () in
    if damped then Network.set_cost_damping net Cost_trigger.default_params;
    let l = List.hd (Graph.links topo) in
    for k = 0 to 19 do
      let cost = if k mod 2 = 0 then 5.0 else 1.0 in
      Network.schedule_link_cost net
        ~at:(5.0 +. (0.5 *. float_of_int k))
        ~src:l.Graph.src ~dst:l.Graph.dst ~cost
    done;
    Network.run net;
    net
  in
  let und = mk false in
  let dmp = mk true in
  check_int "undamped applies every offer"
    (Network.cost_updates_offered und)
    (Network.cost_updates_applied und);
  check "damped applies fewer" true
    (Network.cost_updates_applied dmp < Network.cost_updates_offered dmp);
  check "same offers either way" true
    (Network.cost_updates_offered dmp = Network.cost_updates_offered und);
  check "damped run quiescent and clean" true
    (Network.quiescent dmp && Network.check_loop_free dmp && Network.check_lfi dmp)

let suite =
  [
    Alcotest.test_case "table: set/get/update" `Quick test_table_set_get;
    Alcotest.test_case "table: remove" `Quick test_table_remove;
    Alcotest.test_case "table: LSU entries" `Quick test_table_apply_entry;
    Alcotest.test_case "table: diff/apply roundtrip" `Quick test_table_diff;
    Alcotest.test_case "table: nodes and copy" `Quick test_table_nodes_and_copy;
    Alcotest.test_case "table: validation" `Quick test_table_rejects_bad;
    Alcotest.test_case "dijkstra: line" `Quick test_dijkstra_on_line;
    Alcotest.test_case "dijkstra: unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra: agrees with Bellman-Ford" `Quick test_dijkstra_vs_bellman_ford_random;
    Alcotest.test_case "dijkstra: distances-to (reverse)" `Quick test_distances_to_reversed;
    Alcotest.test_case "dijkstra: SPT extraction" `Quick test_dijkstra_tree_extraction;
    Alcotest.test_case "dijkstra: deterministic ties" `Quick test_dijkstra_deterministic_ties;
    Alcotest.test_case "lfi: cycle detection" `Quick test_lfi_cycle_detection;
    Alcotest.test_case "lfi: DAG accepted" `Quick test_lfi_dag_ok;
    Alcotest.test_case "mpda: converges on NET1 (Thm 2, 4)" `Quick test_mpda_converges_net1;
    Alcotest.test_case "mpda: converges on CAIRN" `Quick test_mpda_converges_cairn;
    Alcotest.test_case "pda: converges" `Quick test_pda_converges;
    Alcotest.test_case "mpda: reconverges after cost change" `Quick test_mpda_cost_change_reconverges;
    Alcotest.test_case "mpda: failure and recovery" `Quick test_mpda_failure_and_recovery;
    Alcotest.test_case "mpda: unequal-cost multipath" `Quick test_mpda_multiple_unequal_paths;
    Alcotest.test_case "mpda: storms never loop (Thm 3)" `Slow test_mpda_storm_loop_free;
    Alcotest.test_case "pda: storms do loop (ablation)" `Slow test_pda_storm_has_loops;
    Alcotest.test_case "mpda: LFI conditions after storms" `Quick test_mpda_lfi_after_storm;
    Alcotest.test_case "network: message statistics" `Quick test_router_message_stats;
    Alcotest.test_case "router: link-up sends full table" `Quick test_router_link_up_sends_full_table;
    Alcotest.test_case "router: ack releases ACTIVE" `Quick test_router_ack_releases_active;
    Alcotest.test_case "router: stale ack ignored" `Quick test_router_stale_ack_ignored;
    Alcotest.test_case "router: data LSUs are acked" `Quick test_router_data_lsu_is_acked;
    Alcotest.test_case "router: link down clears state" `Quick test_router_link_down_clears_state;
    Alcotest.test_case "router: messages from down links dropped" `Quick test_router_drops_msgs_from_down_links;
    QCheck_alcotest.to_alcotest prop_mpda_storm_loop_free;
    Alcotest.test_case "trigger: absorbs sub-threshold wobble" `Quick test_trigger_absorbs_wobble;
    Alcotest.test_case "trigger: first change immediate" `Quick test_trigger_first_change_immediate;
    Alcotest.test_case "trigger: hold-down batches latest" `Quick test_trigger_hold_down_batches_latest;
    Alcotest.test_case "trigger: wobble back cancels" `Quick test_trigger_wobble_back_cancels;
    Alcotest.test_case "trigger: flap suppression and reuse" `Quick test_trigger_flap_suppression_and_reuse;
    Alcotest.test_case "trigger: sync resets without penalty" `Quick test_trigger_sync_resets_without_penalty;
    Alcotest.test_case "trigger: no damping never suppresses" `Quick test_trigger_no_damping_never_suppresses;
    Alcotest.test_case "trigger: parameter validation" `Quick test_trigger_validate;
    Alcotest.test_case "harness: damping cuts cost churn" `Quick test_harness_cost_damping_cuts_churn;
  ]
