(* Tests for Mdr_topology: graph invariants, the reconstructed CAIRN
   and NET1 (including the paper's stated structural properties), and
   the random generators. *)

module Graph = Mdr_topology.Graph
module Metrics = Mdr_topology.Metrics
module Cairn = Mdr_topology.Cairn
module Net1 = Mdr_topology.Net1
module Generators = Mdr_topology.Generators
module Rng = Mdr_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small () =
  let g = Graph.create ~names:[| "a"; "b"; "c" |] in
  Graph.add_duplex g "a" "b" ~capacity:1e6 ~prop_delay:0.001;
  Graph.add_duplex g "b" "c" ~capacity:2e6 ~prop_delay:0.002;
  g

let test_create_and_lookup () =
  let g = small () in
  check_int "nodes" 3 (Graph.node_count g);
  check_int "links" 4 (Graph.link_count g);
  Alcotest.(check string) "name" "b" (Graph.name g 1);
  check_int "by name" 2 (Graph.node_of_name g "c")

let test_duplicate_name_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Graph.create: duplicate router name x")
    (fun () -> ignore (Graph.create ~names:[| "x"; "x" |]))

let test_add_link_validation () =
  let g = small () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_link: self-loop")
    (fun () -> Graph.add_link g ~src:0 ~dst:0 ~capacity:1e6 ~prop_delay:0.0);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Graph.add_link: capacity <= 0") (fun () ->
      Graph.add_link g ~src:0 ~dst:2 ~capacity:0.0 ~prop_delay:0.0);
  Graph.add_link g ~src:0 ~dst:2 ~capacity:1e6 ~prop_delay:0.001;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.add_link: duplicate link a -> c") (fun () ->
      Graph.add_link g ~src:0 ~dst:2 ~capacity:1e6 ~prop_delay:0.001)

let test_neighbors_order () =
  let g = small () in
  check "a nbrs" true (Graph.neighbors g 0 = [ 1 ]);
  check "b nbrs" true (Graph.neighbors g 1 = [ 0; 2 ])

let test_link_attrs () =
  let g = small () in
  let l = Graph.link_exn g ~src:1 ~dst:2 in
  check "cap" true (Float.equal l.capacity 2e6);
  check "delay" true (Float.equal l.prop_delay 0.002);
  check "missing" true (Graph.link g ~src:0 ~dst:2 = None)

let test_symmetry () =
  let g = small () in
  check "duplex symmetric" true (Graph.is_symmetric g);
  Graph.add_link g ~src:0 ~dst:2 ~capacity:1e6 ~prop_delay:0.001;
  check "one-way breaks symmetry" false (Graph.is_symmetric g)

let test_bfs_distances () =
  let g = small () in
  let d = Metrics.hop_distances g 0 in
  check "d(a)=0" true (d.(0) = 0);
  check "d(b)=1" true (d.(1) = 1);
  check "d(c)=2" true (d.(2) = 2)

let test_diameter_small () =
  check_int "line diameter" 2 (Metrics.diameter (small ()))

let test_connectivity () =
  let g = small () in
  check "connected" true (Metrics.is_strongly_connected g);
  let g2 = Graph.create ~names:[| "a"; "b" |] in
  check "disconnected" false (Metrics.is_strongly_connected g2)

(* --- CAIRN ----------------------------------------------------------- *)

let test_cairn_basic () =
  let g = Cairn.topology () in
  check_int "router count" 26 (Graph.node_count g);
  check "symmetric" true (Graph.is_symmetric g);
  check "connected" true (Metrics.is_strongly_connected g)

let test_cairn_capacity_cap () =
  (* The paper caps link capacities at 10 Mb/s. *)
  let g = Cairn.topology () in
  check "max 10Mb/s" true
    (List.for_all (fun (l : Graph.link) -> l.capacity <= 10.0e6) (Graph.links g))

let test_cairn_flow_pairs () =
  let g = Cairn.topology () in
  let pairs = Cairn.flow_pairs g in
  check_int "eleven flows" 11 (List.length pairs);
  check "no self flows" true (List.for_all (fun (s, d) -> s <> d) pairs);
  (* The paper's pairs are symmetric in four cases: (sri,mit)/(mit,sri),
     (netstar,isi-e)/(isi-e,netstar), (parc,sdsc)/(sdsc,parc),
     (isi,darpa)/(darpa,isi). *)
  let mem (a, b) = List.mem (Graph.node_of_name g a, Graph.node_of_name g b) pairs in
  check "lbl->mci-r" true (mem ("lbl", "mci-r"));
  check "sri->mit" true (mem ("sri", "mit"));
  check "mit->sri" true (mem ("mit", "sri"));
  check "darpa->isi" true (mem ("darpa", "isi"))

let test_cairn_multipath () =
  (* Every simulated flow must have an alternate path, or MP could
     never beat SP. *)
  let g = Cairn.topology () in
  let pairs = Cairn.flow_pairs g in
  Alcotest.(check int)
    "all pairs have alternates" (List.length pairs)
    (Metrics.multipath_pairs g pairs)

(* --- NET1 ------------------------------------------------------------ *)

let test_net1_stated_properties () =
  (* Paper: flows run between nodes 0-9, diameter four, degrees 3-5. *)
  let g = Net1.topology () in
  check_int "ten routers" 10 (Graph.node_count g);
  check_int "diameter" 4 (Metrics.diameter g);
  let lo, hi = Metrics.degree_range g in
  check "min degree >= 3" true (lo >= 3);
  check "max degree <= 5" true (hi <= 5);
  check "symmetric" true (Graph.is_symmetric g)

let test_net1_flow_pairs () =
  let g = Net1.topology () in
  let pairs = Net1.flow_pairs g in
  check_int "ten flows" 10 (List.length pairs);
  check "paper pairs" true (List.mem (9, 2) pairs && List.mem (0, 7) pairs);
  Alcotest.(check int)
    "all pairs have alternates" (List.length pairs)
    (Metrics.multipath_pairs g pairs)

let test_net1_uniform_links () =
  let g = Net1.topology () in
  check "all 10Mb/s" true
    (List.for_all (fun (l : Graph.link) -> Float.equal l.capacity 10.0e6) (Graph.links g))

(* --- Generators ------------------------------------------------------ *)

let test_ring () =
  let g = Generators.ring ~n:6 ~capacity:1e6 ~prop_delay:0.001 in
  check_int "nodes" 6 (Graph.node_count g);
  check_int "links" 12 (Graph.link_count g);
  check_int "diameter" 3 (Metrics.diameter g)

let test_ring_too_small () =
  Alcotest.check_raises "n<3" (Invalid_argument "Generators.ring: n < 3")
    (fun () -> ignore (Generators.ring ~n:2 ~capacity:1e6 ~prop_delay:0.001))

let test_ring_with_chords () =
  let rng = Rng.create ~seed:1 in
  let g = Generators.ring_with_chords ~rng ~n:10 ~chords:5 ~capacity:1e6 ~prop_delay:0.001 in
  check "connected" true (Metrics.is_strongly_connected g);
  check "chords added" true (Graph.link_count g > 20)

let test_random_connected () =
  for seed = 1 to 20 do
    let rng = Rng.create ~seed in
    let g = Generators.random_connected ~rng ~n:12 ~extra_links:6 () in
    check "connected" true (Metrics.is_strongly_connected g);
    check "symmetric" true (Graph.is_symmetric g)
  done

let test_grid () =
  let g = Generators.grid ~rows:3 ~cols:4 ~capacity:1e6 ~prop_delay:0.001 in
  check_int "nodes" 12 (Graph.node_count g);
  check "connected" true (Metrics.is_strongly_connected g);
  check_int "diameter" 5 (Metrics.diameter g)

let prop_random_connected_always_connected =
  QCheck.Test.make ~name:"random_connected is strongly connected" ~count:50
    QCheck.(pair (int_range 2 30) (int_range 0 20))
    (fun (n, extra) ->
      let rng = Rng.create ~seed:(n + (31 * extra)) in
      (* Requests past the complete graph now raise; stay in contract. *)
      let extra = min extra ((n * (n - 1) / 2) - (n - 1)) in
      let g = Generators.random_connected ~rng ~n ~extra_links:extra () in
      Metrics.is_strongly_connected g && Graph.is_symmetric g)

(* --- Internet-like generators (scaling benchmarks) ------------------- *)

let test_generator_validation () =
  let rng = Rng.create ~seed:3 in
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "chords < 0" (fun () ->
      Generators.ring_with_chords ~rng ~n:5 ~chords:(-1) ~capacity:1e6
        ~prop_delay:0.001);
  raises "chords > complete" (fun () ->
      Generators.ring_with_chords ~rng ~n:5 ~chords:100 ~capacity:1e6
        ~prop_delay:0.001);
  raises "extra_links < 0" (fun () ->
      Generators.random_connected ~rng ~n:5 ~extra_links:(-2) ());
  raises "extra_links > complete" (fun () ->
      Generators.random_connected ~rng ~n:4 ~extra_links:50 ());
  raises "bad capacity range" (fun () ->
      Generators.random_connected ~rng ~n:5 ~extra_links:1
        ~capacity_range:(2.0, 1.0) ());
  raises "ba m < 1" (fun () -> Generators.barabasi_albert ~rng ~n:10 ~m:0 ());
  raises "ba n <= m" (fun () -> Generators.barabasi_albert ~rng ~n:3 ~m:3 ());
  raises "waxman beta" (fun () -> Generators.waxman ~rng ~n:10 ~beta:1.5 ());
  raises "waxman alpha" (fun () -> Generators.waxman ~rng ~n:10 ~alpha:0.0 ());
  raises "hier backbone" (fun () ->
      Generators.hierarchical ~rng ~areas:2 ~area_size:3 ~backbone:1 ())

let test_dense_chords_exact () =
  (* At full density the old rejection sampler looped forever or
     silently under-filled; the exact path must deliver the complete
     graph. *)
  let rng = Rng.create ~seed:9 in
  let n = 8 in
  let max_chords = (n * (n - 1) / 2) - n in
  let g =
    Generators.ring_with_chords ~rng ~n ~chords:max_chords ~capacity:1e6
      ~prop_delay:0.001
  in
  check_int "complete graph" (n * (n - 1)) (Graph.link_count g);
  check "connected" true (Metrics.is_strongly_connected g)

let prop_ba_connected_and_scale_free =
  QCheck.Test.make ~name:"barabasi_albert: connected, symmetric, heavy-tailed"
    ~count:30
    QCheck.(pair (int_range 10 80) (int_range 1 4))
    (fun (n, m) ->
      let rng = Rng.create ~seed:(n + (97 * m)) in
      let g = Generators.barabasi_albert ~rng ~n ~m () in
      let degree = Array.make n 0 in
      List.iter (fun (l : Graph.link) -> degree.(l.src) <- degree.(l.src) + 1)
        (Graph.links g);
      (* Preferential attachment concentrates degree: the max degree
         must clearly exceed the mean (no Erdos-Renyi flatness), and
         every node keeps at least its m attachment links. *)
      let dmax = Array.fold_left max 0 degree in
      let mean = float_of_int (2 * Graph.link_count g / 2) /. float_of_int n in
      Metrics.is_strongly_connected g && Graph.is_symmetric g
      && Array.for_all (fun d -> d >= min m (n - 1)) degree
      && (n < 30 || float_of_int dmax >= 1.5 *. mean))

let prop_waxman_connected =
  QCheck.Test.make ~name:"waxman: connected and symmetric" ~count:30
    QCheck.(int_range 2 120)
    (fun n ->
      let rng = Rng.create ~seed:(7 * n) in
      let g = Generators.waxman ~rng ~n () in
      Metrics.is_strongly_connected g && Graph.is_symmetric g)

let prop_hierarchical_structure =
  QCheck.Test.make
    ~name:"hierarchical: connected, symmetric, area-local (no inter-area links)"
    ~count:30
    QCheck.(triple (int_range 1 6) (int_range 1 8) (int_range 2 8))
    (fun (areas, area_size, backbone) ->
      let rng = Rng.create ~seed:(areas + (13 * area_size) + (131 * backbone)) in
      let g = Generators.hierarchical ~rng ~areas ~area_size ~backbone () in
      let area_of v = if v < backbone then -1 else (v - backbone) / area_size in
      (* Area-locality: links stay within one area, within the
         backbone, or between an area and the backbone — never between
         two distinct areas. *)
      let local =
        List.for_all
          (fun (l : Graph.link) ->
            let a = area_of l.src and b = area_of l.dst in
            a = -1 || b = -1 || a = b)
          (Graph.links g)
      in
      (* Intra-area connectivity: each area's induced subgraph is
         connected on its own (BFS inside the area). *)
      let area_connected a =
        let base = backbone + (a * area_size) in
        let seen = Array.make area_size false in
        let q = Queue.create () in
        Queue.add base q;
        seen.(0) <- true;
        let count = ref 1 in
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          List.iter
            (fun (l : Graph.link) ->
              if area_of l.dst = a && not (seen.(l.dst - base)) then begin
                seen.(l.dst - base) <- true;
                incr count;
                Queue.add l.dst q
              end)
            (Graph.out_links g v)
        done;
        !count = area_size
      in
      let all_areas_connected =
        List.for_all area_connected (List.init areas Fun.id)
      in
      Metrics.is_strongly_connected g && Graph.is_symmetric g && local
      && all_areas_connected)

let suite =
  [
    Alcotest.test_case "graph: create and lookup" `Quick test_create_and_lookup;
    Alcotest.test_case "graph: duplicate names rejected" `Quick test_duplicate_name_rejected;
    Alcotest.test_case "graph: link validation" `Quick test_add_link_validation;
    Alcotest.test_case "graph: neighbor order" `Quick test_neighbors_order;
    Alcotest.test_case "graph: link attributes" `Quick test_link_attrs;
    Alcotest.test_case "graph: symmetry check" `Quick test_symmetry;
    Alcotest.test_case "metrics: BFS distances" `Quick test_bfs_distances;
    Alcotest.test_case "metrics: diameter" `Quick test_diameter_small;
    Alcotest.test_case "metrics: connectivity" `Quick test_connectivity;
    Alcotest.test_case "cairn: structure" `Quick test_cairn_basic;
    Alcotest.test_case "cairn: 10Mb/s capacity cap" `Quick test_cairn_capacity_cap;
    Alcotest.test_case "cairn: the paper's flow pairs" `Quick test_cairn_flow_pairs;
    Alcotest.test_case "cairn: flows have alternate paths" `Quick test_cairn_multipath;
    Alcotest.test_case "net1: paper-stated properties" `Quick test_net1_stated_properties;
    Alcotest.test_case "net1: flow pairs" `Quick test_net1_flow_pairs;
    Alcotest.test_case "net1: uniform links" `Quick test_net1_uniform_links;
    Alcotest.test_case "generators: ring" `Quick test_ring;
    Alcotest.test_case "generators: ring bounds" `Quick test_ring_too_small;
    Alcotest.test_case "generators: ring with chords" `Quick test_ring_with_chords;
    Alcotest.test_case "generators: random connected" `Quick test_random_connected;
    Alcotest.test_case "generators: grid" `Quick test_grid;
    Alcotest.test_case "generators: argument validation" `Quick
      test_generator_validation;
    Alcotest.test_case "generators: dense chords fill exactly" `Quick
      test_dense_chords_exact;
    QCheck_alcotest.to_alcotest prop_random_connected_always_connected;
    QCheck_alcotest.to_alcotest prop_ba_connected_and_scale_free;
    QCheck_alcotest.to_alcotest prop_waxman_connected;
    QCheck_alcotest.to_alcotest prop_hierarchical_structure;
  ]
