(* Tests for the OPT baseline: descent, optimality conditions, DAG
   preservation under blocking, known-optimum cases, and the
   step-size pathologies the paper criticises. *)

module Graph = Mdr_topology.Graph
module Fluid = Mdr_fluid
module Gallager = Mdr_gallager.Gallager

let check = Alcotest.(check bool)
let pkt = 4096.0

let diamond () =
  let g = Graph.create ~names:[| "s"; "a"; "b"; "d" |] in
  List.iter
    (fun (x, y) -> Graph.add_duplex g x y ~capacity:10.0e6 ~prop_delay:0.001)
    [ ("s", "a"); ("a", "d"); ("s", "b"); ("b", "d") ];
  g

let diamond_setup rate_bits =
  let g = diamond () in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:4 ~packet_size:pkt
      ~rate_bits:(fun _ -> rate_bits)
      [ (0, 3) ]
  in
  (g, model, traffic)

let net1_setup load =
  let g = Mdr_topology.Net1.topology () in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:10 ~packet_size:pkt
      ~rate_bits:(fun i -> load *. (2.0 +. (0.1 *. float_of_int i)) *. 1.0e6)
      (Mdr_topology.Net1.flow_pairs g)
  in
  (g, model, traffic)

let test_spf_params_route_everything () =
  let g, model, _ = net1_setup 1.0 in
  let p = Gallager.spf_params model g in
  check "valid" true (Fluid.Params.validate p = Ok ());
  let all_routed = ref true in
  for node = 0 to 9 do
    for dst = 0 to 9 do
      if node <> dst && not (Fluid.Params.is_routed p ~node ~dst) then
        all_routed := false
    done
  done;
  check "every pair routed" true !all_routed;
  check "single path everywhere" true
    (List.for_all
       (fun dst ->
         List.for_all
           (fun node ->
             node = dst
             || List.length (Fluid.Params.successors p ~node ~dst) = 1)
           (Graph.nodes g))
       (Graph.nodes g))

let test_spf_params_acyclic () =
  let g, model, _ = net1_setup 1.0 in
  let p = Gallager.spf_params model g in
  check "acyclic per dest" true
    (List.for_all
       (fun dst -> Fluid.Params.successor_graph_is_acyclic p ~dst)
       (Graph.nodes g))

let test_opt_splits_symmetric_diamond () =
  (* One 12 Mb/s flow over two identical 10 Mb/s paths: the optimum is
     an exact 50/50 split. *)
  let g, model, traffic = diamond_setup 12.0e6 in
  let r = Gallager.solve ~eta:1.0e4 model g traffic in
  let f_a = Fluid.Flows.link_flow r.flows ~src:0 ~dst:1 in
  let f_b = Fluid.Flows.link_flow r.flows ~src:0 ~dst:2 in
  check "converged" true r.converged;
  check "even split" true (Float.abs (f_a -. f_b) /. (f_a +. f_b) < 0.01);
  check "optimality conditions" true
    (Gallager.check_optimality model r.params r.flows traffic ~tolerance:0.02)

let test_opt_beats_spf_under_overload () =
  let g, model, traffic = diamond_setup 12.0e6 in
  let spf = Gallager.spf_params model g in
  let spf_flows = Fluid.Flows.compute spf traffic in
  let spf_delay = Fluid.Evaluate.average_delay model spf_flows traffic in
  let r = Gallager.solve model g traffic in
  check "opt strictly better" true (r.avg_delay < spf_delay /. 10.0)

let test_opt_descends () =
  let g, model, traffic = net1_setup 1.5 in
  let r = Gallager.solve ~max_iters:200 model g traffic in
  match r.history with
  | [] -> Alcotest.fail "no history"
  | first :: _ ->
    let last = List.nth r.history (List.length r.history - 1) in
    check "cost non-increasing overall" true (last <= first +. 1e-9)

let test_opt_preserves_dags () =
  let g, model, traffic = net1_setup 1.5 in
  let r = Gallager.solve ~max_iters:150 model g traffic in
  check "all DAGs acyclic" true
    (List.for_all
       (fun dst -> Fluid.Params.successor_graph_is_acyclic r.params ~dst)
       (Graph.nodes g));
  check "params valid" true (Fluid.Params.validate r.params = Ok ())

let test_opt_no_worse_than_spf () =
  List.iter
    (fun load ->
      let g, model, traffic = net1_setup load in
      let spf = Gallager.spf_params model g in
      let spf_flows = Fluid.Flows.compute spf traffic in
      let spf_delay = Fluid.Evaluate.average_delay model spf_flows traffic in
      let r = Gallager.solve ~max_iters:300 model g traffic in
      check "opt <= spf" true (r.avg_delay <= spf_delay +. 1e-9))
    [ 0.5; 1.0; 1.5 ]

let test_fixed_eta_oscillates () =
  (* The paper's point about the global constant: a large fixed step
     without safeguards fails to settle — on the symmetric diamond it
     flips all traffic between the two paths forever. *)
  let g, model, traffic = diamond_setup 12.0e6 in
  let fixed = Gallager.solve ~eta:1.0e6 ~adaptive:false ~max_iters:60 model g traffic in
  let adaptive = Gallager.solve ~eta:1.0e6 ~adaptive:true ~max_iters:200 model g traffic in
  check "fixed step stays far from optimum" true
    (fixed.avg_delay > adaptive.avg_delay *. 1.5)

let test_small_eta_converges_slowly () =
  let g, model, traffic = diamond_setup 12.0e6 in
  let slow = Gallager.solve ~eta:50.0 ~max_iters:40 model g traffic in
  let fast = Gallager.solve ~eta:1.0e5 ~max_iters:40 model g traffic in
  (* After the same iteration budget the small step is further from
     balance. *)
  let imbalance r =
    let a = Fluid.Flows.link_flow r.Gallager.flows ~src:0 ~dst:1 in
    let b = Fluid.Flows.link_flow r.Gallager.flows ~src:0 ~dst:2 in
    Float.abs (a -. b)
  in
  check "slow eta lags" true (imbalance slow > imbalance fast)

let test_opt_with_custom_init () =
  let g, model, traffic = diamond_setup 6.0e6 in
  let init = Gallager.spf_params model g in
  let r = Gallager.solve ~init model g traffic in
  check "runs from custom init" true (Float.is_finite r.avg_delay)

let test_marginal_distance_relation () =
  (* Eq. 4: at OPT's output, each router's marginal distance equals the
     phi-weighted sum of (link marginal + successor marginal). *)
  let g, model, traffic = net1_setup 1.0 in
  let r = Gallager.solve ~max_iters:100 model g traffic in
  let dst = List.hd (Fluid.Traffic.destinations traffic) in
  let delta = Fluid.Evaluate.marginal_distances model r.params r.flows ~dst in
  List.iter
    (fun node ->
      if node <> dst && Fluid.Params.is_routed r.params ~node ~dst then begin
        let expected =
          List.fold_left
            (fun acc (via, frac) ->
              acc
              +. frac
                 *. (Fluid.Evaluate.link_cost model r.flows ~src:node ~dst:via
                    +. delta.(via)))
            0.0
            (Fluid.Params.fractions r.params ~node ~dst)
        in
        check "Eq. 4 holds" true (Float.abs (expected -. delta.(node)) < 1e-9)
      end)
    (Graph.nodes g)

let test_opt_matches_brute_force () =
  (* Grid-search the diamond's single degree of freedom (the split
     alpha at s) and confirm OPT finds the same minimum. *)
  let g, model, traffic = diamond_setup 9.0e6 in
  let cost_of alpha =
    let p = Fluid.Params.create g in
    Fluid.Params.set_fractions p ~node:0 ~dst:3 [ (1, alpha); (2, 1.0 -. alpha) ];
    Fluid.Params.set_single p ~node:1 ~dst:3 ~via:3;
    Fluid.Params.set_single p ~node:2 ~dst:3 ~via:3;
    let flows = Fluid.Flows.compute p traffic in
    Fluid.Evaluate.total_cost model flows
  in
  let best = ref infinity in
  for i = 1 to 999 do
    let alpha = float_of_int i /. 1000.0 in
    best := Float.min !best (cost_of alpha)
  done;
  let r = Gallager.solve model g traffic in
  check "OPT within 0.1% of brute force" true
    (r.total_cost <= !best *. 1.001)

let test_opt_brute_force_two_flows () =
  (* Two flows in opposite directions: four independent splits; grid
     search coarsely and require OPT at least as good. *)
  let g = diamond () in
  let model = Fluid.Evaluate.model g ~packet_size:pkt in
  let traffic =
    Fluid.Traffic.of_pairs_bits ~n:4 ~packet_size:pkt
      ~rate_bits:(fun _ -> 8.0e6)
      [ (0, 3); (3, 0) ]
  in
  let cost_of a b =
    let p = Fluid.Params.create g in
    Fluid.Params.set_fractions p ~node:0 ~dst:3 [ (1, a); (2, 1.0 -. a) ];
    Fluid.Params.set_single p ~node:1 ~dst:3 ~via:3;
    Fluid.Params.set_single p ~node:2 ~dst:3 ~via:3;
    Fluid.Params.set_fractions p ~node:3 ~dst:0 [ (1, b); (2, 1.0 -. b) ];
    Fluid.Params.set_single p ~node:1 ~dst:0 ~via:0;
    Fluid.Params.set_single p ~node:2 ~dst:0 ~via:0;
    let flows = Fluid.Flows.compute p traffic in
    Fluid.Evaluate.total_cost model flows
  in
  let best = ref infinity in
  for i = 1 to 99 do
    for j = 1 to 99 do
      best :=
        Float.min !best (cost_of (float_of_int i /. 100.0) (float_of_int j /. 100.0))
    done
  done;
  let r = Gallager.solve model g traffic in
  check "OPT within 0.5% of 2-flow brute force" true
    (r.total_cost <= !best *. 1.005)

let test_second_order_faster () =
  (* The Bertsekas-Gallager acceleration: same optimum with a
     dimensionless step, in far fewer iterations. *)
  let g, model, traffic = net1_setup 1.5 in
  let first = Gallager.solve ~eta:1.0e4 model g traffic in
  let second = Gallager.solve ~second_order:true ~eta:1.0 model g traffic in
  check "same optimum" true
    (Float.abs (first.avg_delay -. second.avg_delay) /. first.avg_delay < 0.01);
  check "fewer iterations" true (second.iterations < first.iterations);
  check "converged" true second.converged

let test_second_derivative_exposed () =
  let dm = Fluid.Delay.create ~capacity:1000.0 ~prop_delay:0.001 () in
  (* D'' = 2c/(c-f)^3; at f = 0: 2/c^2. *)
  Alcotest.(check (float 1e-12)) "at zero" (2.0 /. 1.0e6) (Fluid.Delay.second dm 0.0);
  check "increasing" true (Fluid.Delay.second dm 500.0 > Fluid.Delay.second dm 100.0);
  check "finite past capacity" true (Float.is_finite (Fluid.Delay.second dm 2000.0))

(* --- Infeasible-demand degradation ------------------------------------ *)

let test_feasible_load_not_degraded () =
  let g, model, traffic = diamond_setup 4.0e6 in
  let r = Gallager.solve model g traffic in
  check "status feasible" true
    (match r.Gallager.status with Gallager.Feasible -> true | Gallager.Degraded _ -> false);
  check "admitted is the offered matrix" true
    (Float.abs
       (Fluid.Traffic.rate r.Gallager.admitted ~src:0 ~dst:3
       -. Fluid.Traffic.rate traffic ~src:0 ~dst:3)
    < 1e-9);
  check "converged" true r.Gallager.converged

let test_degrades_infeasible_demand () =
  (* 40 Mb/s offered into a diamond whose two disjoint paths carry
     20 Mb/s total: the solver must shed about half, never diverge. *)
  let g, model, traffic = diamond_setup 40.0e6 in
  let r = Gallager.solve ~max_iters:300 model g traffic in
  (match r.Gallager.status with
  | Gallager.Feasible -> check "must be degraded" true false
  | Gallager.Degraded d ->
    check "admitted fraction positive" true (d.Gallager.admitted_fraction > 0.0);
    check "admitted fraction <= min cut" true
      (d.Gallager.admitted_fraction <= 0.5 +. 1e-6);
    check "shed covers every offered flow" true
      (List.for_all
         (fun ((_ : Fluid.Traffic.flow), s) ->
           Float.abs (s +. d.Gallager.admitted_fraction -. 1.0) < 1e-9)
         d.Gallager.shed
      && d.Gallager.shed <> []);
    check "per-destination fractions reported" true
      (d.Gallager.per_destination <> []));
  check "admitted matrix actually scaled" true
    (Fluid.Traffic.rate r.Gallager.admitted ~src:0 ~dst:3
    < Fluid.Traffic.rate traffic ~src:0 ~dst:3);
  check "delay finite" true (Float.is_finite r.Gallager.avg_delay);
  check "costs finite" true (Fluid.Evaluate.costs_finite model r.Gallager.flows)

let test_degrade_opt_out_stays_finite () =
  (* With degrade:false the caller gets the raw solve on the offered
     matrix; the saturation-safe pipeline still keeps every cost and
     the delay finite even though flows run past capacity. *)
  let g, model, traffic = diamond_setup 40.0e6 in
  let r = Gallager.solve ~degrade:false ~max_iters:200 model g traffic in
  check "status reported feasible (unchecked)" true
    (match r.Gallager.status with Gallager.Feasible -> true | Gallager.Degraded _ -> false);
  check "costs finite past capacity" true
    (Fluid.Evaluate.costs_finite model r.Gallager.flows);
  check "delay finite" true (Float.is_finite r.Gallager.avg_delay)

let test_degradation_on_jointly_infeasible_matrix () =
  (* NET1 at 8x nominal load: multiple commodities compete for shared
     links, exercising the min-cut pre-scale and (when that is only
     jointly necessary) the non-convergence escalation. *)
  let g, model, traffic = net1_setup 8.0 in
  let r = Gallager.solve ~max_iters:150 model g traffic in
  (match r.Gallager.status with
  | Gallager.Feasible -> check "must be degraded" true false
  | Gallager.Degraded d ->
    check "fraction in (0,1)" true
      (d.Gallager.admitted_fraction > 0.0 && d.Gallager.admitted_fraction < 1.0);
    check "reason tagged" true
      (match d.Gallager.reason with `Min_cut | `No_convergence -> true));
  check "delay finite" true (Float.is_finite r.Gallager.avg_delay);
  check "costs finite" true (Fluid.Evaluate.costs_finite model r.Gallager.flows)

let suite =
  [
    Alcotest.test_case "spf_params: routes every pair" `Quick test_spf_params_route_everything;
    Alcotest.test_case "spf_params: acyclic" `Quick test_spf_params_acyclic;
    Alcotest.test_case "opt: symmetric diamond splits 50/50" `Quick test_opt_splits_symmetric_diamond;
    Alcotest.test_case "opt: beats SPF under overload" `Quick test_opt_beats_spf_under_overload;
    Alcotest.test_case "opt: cost descends" `Quick test_opt_descends;
    Alcotest.test_case "opt: blocking preserves DAGs" `Quick test_opt_preserves_dags;
    Alcotest.test_case "opt: never worse than SPF" `Slow test_opt_no_worse_than_spf;
    Alcotest.test_case "opt: fixed large eta oscillates (paper's critique)" `Quick test_fixed_eta_oscillates;
    Alcotest.test_case "opt: small eta converges slowly" `Quick test_small_eta_converges_slowly;
    Alcotest.test_case "opt: custom init" `Quick test_opt_with_custom_init;
    Alcotest.test_case "opt: marginal distances satisfy Eq. 4" `Quick test_marginal_distance_relation;
    Alcotest.test_case "opt: matches brute-force optimum" `Quick test_opt_matches_brute_force;
    Alcotest.test_case "opt: 2-flow brute force" `Slow test_opt_brute_force_two_flows;
    Alcotest.test_case "opt: second-order acceleration" `Quick test_second_order_faster;
    Alcotest.test_case "delay: second derivative" `Quick test_second_derivative_exposed;
    Alcotest.test_case "degrade: feasible load untouched" `Quick test_feasible_load_not_degraded;
    Alcotest.test_case "degrade: sheds infeasible demand" `Quick test_degrades_infeasible_demand;
    Alcotest.test_case "degrade: opt-out stays finite" `Quick test_degrade_opt_out_stays_finite;
    Alcotest.test_case "degrade: jointly infeasible matrix" `Slow test_degradation_on_jointly_infeasible_matrix;
  ]
