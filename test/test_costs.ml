(* Tests for the link-cost estimators: windows, the M/M/1 analytic
   estimator, and the busy-period (perturbation-analysis-style)
   estimator's agreement with the closed form on synthetic M/M/1
   sample paths. *)

module Estimator = Mdr_costs.Estimator
module Delay = Mdr_fluid.Delay
module Rng = Mdr_util.Rng

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_mm1_estimator_tracks_rate () =
  let e = Estimator.mm1 ~capacity:1000.0 ~prop_delay:0.001 in
  (* 500 arrivals over 1 second -> arrival rate 500. *)
  for _ = 1 to 500 do
    Estimator.on_arrival e ~now:0.5
  done;
  let s = Estimator.sample e ~now:1.0 in
  check_float "rate" 500.0 s.arrival_rate;
  let model = Delay.create ~capacity:1000.0 ~prop_delay:0.001 () in
  check_float "marginal matches closed form" (Delay.marginal model 500.0) s.marginal

let test_mm1_estimator_empty_window () =
  let e = Estimator.mm1 ~capacity:1000.0 ~prop_delay:0.001 in
  let s = Estimator.sample e ~now:1.0 in
  check_float "zero-flow marginal" ((1.0 /. 1000.0) +. 0.001) s.marginal

let test_window_resets () =
  let e = Estimator.mm1 ~capacity:1000.0 ~prop_delay:0.0 in
  for _ = 1 to 100 do
    Estimator.on_arrival e ~now:0.5
  done;
  ignore (Estimator.sample e ~now:1.0);
  let s = Estimator.sample e ~now:2.0 in
  check_float "fresh window" 0.0 s.arrival_rate

let test_sojourn_estimator () =
  let e = Estimator.measured_sojourn ~prop_delay:0.001 in
  Estimator.on_departure e ~now:0.1 ~sojourn:0.004 ~service:0.001 ~busy:false;
  Estimator.on_departure e ~now:0.2 ~sojourn:0.006 ~service:0.001 ~busy:false;
  let s = Estimator.sample e ~now:1.0 in
  check_float "mean sojourn" 0.005 s.mean_sojourn;
  check_float "marginal = sojourn + prop" 0.006 s.marginal

let test_sojourn_estimator_keeps_last () =
  let e = Estimator.measured_sojourn ~prop_delay:0.001 in
  Estimator.on_departure e ~now:0.1 ~sojourn:0.004 ~service:0.001 ~busy:false;
  ignore (Estimator.sample e ~now:1.0);
  let s = Estimator.sample e ~now:2.0 in
  check_float "keeps previous estimate" 0.005 s.marginal

(* Simulate an M/M/1 queue directly and feed the busy-period estimator;
   its output must match the analytic marginal within sampling noise —
   the estimator is exact in expectation for M/M/1 (see interface). *)
let run_mm1_queue ~rng ~lambda ~mu ~horizon estimator =
  let t = ref 0.0 in
  let next_arrival = ref (Rng.exponential rng ~rate:lambda) in
  let queue = Queue.create () in
  let departure = ref infinity in
  let schedule_service now =
    let s = Rng.exponential rng ~rate:mu in
    departure := now +. s;
    s
  in
  let current_service = ref 0.0 in
  while !t < horizon do
    if !next_arrival <= !departure then begin
      t := !next_arrival;
      Estimator.on_arrival estimator ~now:!t;
      Queue.add !t queue;
      if Queue.length queue = 1 then current_service := schedule_service !t;
      next_arrival := !t +. Rng.exponential rng ~rate:lambda
    end
    else begin
      t := !departure;
      let arrived = Queue.pop queue in
      let busy = not (Queue.is_empty queue) in
      Estimator.on_departure estimator ~now:!t ~sojourn:(!t -. arrived)
        ~service:!current_service ~busy;
      if busy then current_service := schedule_service !t else departure := infinity
    end
  done

let test_busy_period_estimator_matches_mm1 () =
  let rng = Rng.create ~seed:123 in
  let lambda = 400.0 and mu = 1000.0 in
  let e = Estimator.busy_period ~prop_delay:0.0 in
  run_mm1_queue ~rng ~lambda ~mu ~horizon:400.0 e;
  let s = Estimator.sample e ~now:400.0 in
  let analytic = mu /. ((mu -. lambda) ** 2.0) in
  let err = Float.abs (s.marginal -. analytic) /. analytic in
  check "within 15% of analytic" true (err < 0.15)

let test_busy_period_estimator_light_load () =
  let rng = Rng.create ~seed:7 in
  let lambda = 50.0 and mu = 1000.0 in
  let e = Estimator.busy_period ~prop_delay:0.0 in
  run_mm1_queue ~rng ~lambda ~mu ~horizon:200.0 e;
  let s = Estimator.sample e ~now:200.0 in
  let analytic = mu /. ((mu -. lambda) ** 2.0) in
  check "light load within 15%" true (Float.abs (s.marginal -. analytic) /. analytic < 0.15)

let test_busy_period_estimator_heavy_load () =
  let rng = Rng.create ~seed:99 in
  let lambda = 800.0 and mu = 1000.0 in
  let e = Estimator.busy_period ~prop_delay:0.0 in
  run_mm1_queue ~rng ~lambda ~mu ~horizon:600.0 e;
  let s = Estimator.sample e ~now:600.0 in
  let analytic = mu /. ((mu -. lambda) ** 2.0) in
  check "heavy load within 30%" true (Float.abs (s.marginal -. analytic) /. analytic < 0.30)

let test_busy_period_includes_prop_delay () =
  let e = Estimator.busy_period ~prop_delay:0.5 in
  Estimator.on_arrival e ~now:0.0;
  Estimator.on_departure e ~now:0.1 ~sojourn:0.1 ~service:0.1 ~busy:false;
  let s = Estimator.sample e ~now:1.0 in
  check "prop delay added" true (s.marginal >= 0.5)

(* --- Saturation-safe cost pipeline ------------------------------------ *)

(* The overload contract: every exported cost form is total on
   [0, 3c] — finite, positive, strictly increasing — even though the
   raw M/M/1 expressions explode at f = c. *)
let prop_cost_pipeline_total_past_knee =
  QCheck.Test.make ~name:"delay model total/positive/monotone on [0, 3c]"
    ~count:200
    QCheck.(pair (float_range 10.0 1.0e6) (float_range 0.0 0.01))
    (fun (capacity, prop_delay) ->
      let m = Delay.create ~capacity ~prop_delay () in
      let samples = List.init 61 (fun i -> float_of_int i /. 20.0 *. capacity) in
      let pointwise f =
        let c = Delay.cost m f
        and c' = Delay.marginal m f
        and c2 = Delay.second m f
        and s = Delay.sojourn m f in
        Float.is_finite c && Float.is_finite c' && Float.is_finite c2
        && Float.is_finite s && c >= 0.0 && c' > 0.0 && c2 > 0.0 && s > 0.0
      in
      let rec monotone = function
        | a :: (b :: _ as rest) ->
          Delay.cost m b > Delay.cost m a
          && Delay.marginal m b > Delay.marginal m a
          && monotone rest
        | _ -> true
      in
      List.for_all pointwise samples
      && monotone samples
      && (not (Delay.saturated m 0.0))
      && Delay.saturated m (3.0 *. capacity))

(* The raw M/M/1 forms are still reachable only behind guards: negative
   or non-finite flows must raise, never silently produce nan/inf. *)
let test_delay_rejects_invalid_flow () =
  let m = Delay.create ~capacity:1000.0 ~prop_delay:0.001 () in
  let raises g f =
    match g m f with _ -> false | exception Invalid_argument _ -> true
  in
  check "cost: negative flow" true (raises Delay.cost (-1.0));
  check "cost: nan flow" true (raises Delay.cost Float.nan);
  check "cost: infinite flow" true (raises Delay.cost Float.infinity);
  check "marginal: negative flow" true (raises Delay.marginal (-1.0));
  check "marginal: nan flow" true (raises Delay.marginal Float.nan);
  check "second: infinite flow" true (raises Delay.second Float.infinity)

let suite =
  [
    Alcotest.test_case "mm1: tracks arrival rate" `Quick test_mm1_estimator_tracks_rate;
    Alcotest.test_case "mm1: empty window" `Quick test_mm1_estimator_empty_window;
    Alcotest.test_case "windows reset on sample" `Quick test_window_resets;
    Alcotest.test_case "sojourn estimator" `Quick test_sojourn_estimator;
    Alcotest.test_case "sojourn: keeps last on empty window" `Quick test_sojourn_estimator_keeps_last;
    Alcotest.test_case "busy-period: matches M/M/1 at rho=0.4" `Slow test_busy_period_estimator_matches_mm1;
    Alcotest.test_case "busy-period: light load" `Quick test_busy_period_estimator_light_load;
    Alcotest.test_case "busy-period: heavy load" `Slow test_busy_period_estimator_heavy_load;
    Alcotest.test_case "busy-period: includes propagation delay" `Quick test_busy_period_includes_prop_delay;
    QCheck_alcotest.to_alcotest prop_cost_pipeline_total_past_knee;
    Alcotest.test_case "delay: rejects invalid flows" `Quick test_delay_rejects_invalid_flow;
  ]
