(* Util.Pool: the domain pool must be invisible in results — same
   output as the sequential loop regardless of job count, scheduling,
   or task durations — and loud about misuse (nested parallel maps,
   task exceptions). *)

module Pool = Mdr_util.Pool
module Rng = Mdr_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Busy-wait so task durations differ without needing Unix. *)
let spin iterations =
  let s = ref 0 in
  for i = 1 to iterations do
    s := !s + i
  done;
  !s

let test_ordering_adversarial () =
  (* Early indices get the longest work, so with any parallelism later
     tasks finish first; results must still come back in input order. *)
  let n = 64 in
  let out =
    Pool.init ~jobs:4 n (fun i ->
        ignore (spin ((n - i) * 20_000));
        i * i)
  in
  Array.iteri (fun i v -> check_int "ordered" (i * i) v) out

let test_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * 7) + 3 in
  let seq = Array.map f input in
  let par = Pool.map_array ~jobs:3 f input in
  check "parallel = sequential" true (seq = par)

let test_exception_lowest_index () =
  (* Indices 5 and 17 both fail; the reported index must be the lowest
     failing one no matter which task failed first in wall-clock. *)
  match
    Pool.init ~jobs:4 32 (fun i ->
        ignore (spin ((32 - i) * 10_000));
        if i = 5 || i = 17 then failwith "boom";
        i)
  with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Pool.Task_failed { index; exn } ->
      check_int "lowest failing index" 5 index;
      check "original exception" true (exn = Failure "boom")

let test_sequential_path () =
  (* jobs = 1 must run inline: no pool task context, caller's stack. *)
  let out =
    Pool.map_array ~jobs:1
      (fun x -> (x + 1, Pool.running_in_task ()))
      [| 1; 2; 3 |]
  in
  check "inline, not a pool task" false (Array.exists snd out);
  check "mapped" true (Array.map fst out = [| 2; 3; 4 |]);
  (* ... and exceptions surface as Task_failed there too. *)
  (match Pool.map_array ~jobs:1 (fun _ -> failwith "seq") [| 0; 1 |] with
  | _ -> Alcotest.fail "expected Task_failed on the sequential path"
  | exception Pool.Task_failed { index; _ } -> check_int "seq index" 0 index);
  check_int "default jobs is a positive int" (max 1 (Pool.default_jobs ()))
    (Pool.default_jobs ())

let test_nested_raises () =
  (* Deliberately spawns nested parallelism from inside a task to
     assert Pool rejects it; `mdrsim check` flags Pool calls in tasks
     (domain-race), so both call sites below are allowlisted in
     lint/domain-race.allow. *)
  let outcomes =
    Pool.init ~jobs:2 4 (fun _ ->
        match Pool.map_array ~jobs:2 (fun x -> x) [| 1; 2 |] with
        | _ -> `No_error
        | exception Failure msg -> `Raised msg)
  in
  Array.iter
    (fun o ->
      match o with
      | `Raised msg -> check "clear message" true (String.length msg > 10)
      | `No_error -> Alcotest.fail "nested parallel map did not raise")
    outcomes;
  (* Nested *sequential* maps inside a task are fine. *)
  let ok =
    Pool.init ~jobs:2 4 (fun i ->
        Pool.map_array ~jobs:1 (fun x -> x + i) [| 1; 2 |])
  in
  check "nested jobs:1 allowed" true (ok.(3) = [| 4; 5 |])

let test_empty_and_singleton () =
  check "empty" true (Pool.map_array ~jobs:4 (fun x -> x) [||] = [||]);
  check "singleton" true (Pool.map_array ~jobs:4 string_of_int [| 9 |] = [| "9" |]);
  check "map_list" true (Pool.map_list ~jobs:3 (fun x -> -x) [ 1; 2; 3 ] = [ -1; -2; -3 ])

let test_substream_scheduling_independent () =
  (* A task's stream depends only on (seed, index): drawing from one
     substream must not perturb another, unlike sequential [split]. *)
  let draw seed index =
    let rng = Rng.substream ~seed ~index in
    (Rng.float rng, Rng.float rng)
  in
  let a = draw 42 3 in
  ignore (draw 42 0);
  ignore (draw 42 7);
  check "pure in (seed, index)" true (a = draw 42 3);
  check "indices differ" true (draw 42 3 <> draw 42 4);
  check "seeds differ" true (draw 42 3 <> draw 43 3)

let prop_campaign_parallel_equals_sequential =
  (* End to end through the chaos campaign: fanning the scenario grid
     over domains must reproduce the sequential digest exactly, for
     any master seed. This is the contract perfbench and the
     determinism sanitizer gate on. *)
  let module Campaign = Mdr_faults.Campaign in
  let profile = { Campaign.default_profile with Campaign.duration = 3.0 } in
  let topo_of _ rng =
    Mdr_topology.Generators.ring_with_chords ~rng ~n:6 ~chords:2
      ~capacity:1.0e7 ~prop_delay:0.002
  in
  let digest ~jobs ~seed =
    Campaign.digest
      (Campaign.run_campaign ~jobs ~profile ~topo_of ~seed ~scenarios:2 ())
  in
  QCheck.Test.make ~name:"campaign: parallel digest = sequential (20 seeds)"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed -> String.equal (digest ~jobs:1 ~seed) (digest ~jobs:2 ~seed))

let test_jobs_validation () =
  (* Every rejection class of the MDR_JOBS knob, with a usable reason. *)
  let accepts s expected =
    match Pool.jobs_of_string s with
    | Ok n -> check_int (Printf.sprintf "accepts %S" s) expected n
    | Error reason -> Alcotest.fail (Printf.sprintf "%S rejected: %s" s reason)
  in
  let rejects s =
    match Pool.jobs_of_string s with
    | Ok n -> Alcotest.fail (Printf.sprintf "%S accepted as %d" s n)
    | Error reason ->
        check (Printf.sprintf "%S gets a real reason" s) true
          (String.length reason > 5)
  in
  accepts "4" 4;
  accepts "  8 " 8 (* surrounding whitespace is tolerated *);
  accepts "1" 1;
  rejects "0";
  rejects "-3";
  rejects "four";
  rejects "2.5";
  rejects "";
  rejects "  "

let test_default_jobs_env () =
  (* [default_jobs] must refuse to run with a broken MDR_JOBS rather
     than silently falling back. There is no unsetenv, so restore the
     variable to its old value (or "1", which means the same thing as
     unset) when done. *)
  let original = Sys.getenv_opt "MDR_JOBS" in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MDR_JOBS" (Option.value original ~default:"1"))
    (fun () ->
      Unix.putenv "MDR_JOBS" "3";
      check_int "MDR_JOBS=3" 3 (Pool.default_jobs ());
      let rejects v =
        Unix.putenv "MDR_JOBS" v;
        match Pool.default_jobs () with
        | n -> Alcotest.fail (Printf.sprintf "MDR_JOBS=%S accepted as %d" v n)
        | exception Invalid_argument msg ->
            (* the error must name the knob so the operator can find it *)
            check "error names MDR_JOBS" true
              (String.length msg >= 8 && String.sub msg 0 8 = "MDR_JOBS")
      in
      rejects "0";
      rejects "-2";
      rejects "junk";
      rejects "")

let test_reuse_across_batches () =
  (* The pool persists; many batches of different widths must all work. *)
  for round = 1 to 5 do
    let jobs = 1 + (round mod 4) in
    let out = Pool.init ~jobs 17 (fun i -> i + round) in
    Array.iteri (fun i v -> check_int "batch result" (i + round) v) out
  done

let suite =
  [
    Alcotest.test_case "pool: order under adversarial durations" `Quick
      test_ordering_adversarial;
    Alcotest.test_case "pool: parallel equals sequential map" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "pool: lowest failing index propagates" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "pool: MDR_JOBS=1 runs inline" `Quick test_sequential_path;
    Alcotest.test_case "pool: nested parallel map raises" `Quick test_nested_raises;
    Alcotest.test_case "pool: empty/singleton/list" `Quick test_empty_and_singleton;
    Alcotest.test_case "rng: substream pure in (seed, index)" `Quick
      test_substream_scheduling_independent;
    Alcotest.test_case "pool: MDR_JOBS value validation" `Quick
      test_jobs_validation;
    Alcotest.test_case "pool: default_jobs rejects broken MDR_JOBS" `Quick
      test_default_jobs_env;
    Alcotest.test_case "pool: reuse across batches" `Quick test_reuse_across_batches;
    QCheck_alcotest.to_alcotest prop_campaign_parallel_equals_sequential;
  ]
