(* The wire protocol: framing against hostile bytes, the message
   codec, chaos transports, exactly-once resume across kills at every
   frame boundary, liveness reaping, and the end-to-end chaos audit. *)

module Codec = Mdr_server.Codec
module Update = Mdr_server.Update
module Server = Mdr_server.Server
module Transport = Mdr_wire.Transport
module Frame = Mdr_wire.Frame
module Proto = Mdr_wire.Proto
module Wire_server = Mdr_wire.Wire_server
module Client = Mdr_wire.Client
module Wire_audit = Mdr_wire.Wire_audit
module Wirefault = Mdr_faults.Wirefault
module Procfault = Mdr_faults.Procfault
module Graph = Mdr_topology.Graph
module Rng = Mdr_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Reuse the server suite's scratch-dir and topology fixtures. *)
let with_dir = Test_server.with_dir
let small_topo = Test_server.small_topo
let cost = Procfault.default_base_cost

let stream topo ~seed ~updates =
  Array.of_list (Test_server.stream topo ~seed ~updates)

(* ---- framing --------------------------------------------------------- *)

let drain_decoder dec =
  let rec go acc =
    match Frame.next dec with
    | `Frame p -> go (p :: acc)
    | `Need_more -> (List.rev acc, `Ok)
    | `Corrupt reason -> (List.rev acc, `Corrupt reason)
  in
  go []

let test_frame_roundtrip_chunked () =
  let payloads =
    List.init 40 (fun i -> String.init (1 + (i * 7 mod 300)) (fun j -> Char.chr ((i + j) land 0xFF)))
  in
  let blob =
    Frame.greeting ^ String.concat "" (List.map Frame.encode payloads)
  in
  let rng = Rng.create ~seed:11 in
  (* Feed in random-size chunks: frame boundaries never align. *)
  let dec = Frame.decoder () in
  let got = ref [] in
  let pos = ref 0 in
  while !pos < String.length blob do
    let k = min (String.length blob - !pos) (1 + Rng.int rng ~bound:13) in
    Frame.feed dec (String.sub blob !pos k);
    pos := !pos + k;
    let frames, status = drain_decoder dec in
    (match status with `Ok -> () | `Corrupt r -> Alcotest.fail r);
    got := !got @ frames
  done;
  check_int "all frames decoded" (List.length payloads) (List.length !got);
  List.iter2 (fun a b -> check_str "payload intact" a b) payloads !got

let test_frame_corruption_sticky () =
  let blob = Frame.greeting ^ Frame.encode "hello" ^ Frame.encode "world" in
  (* Flip every byte position in turn; the decoder must either reject
     the stream or (for flips past the surviving prefix) still decode
     the clean frames — and must never raise. *)
  for i = 0 to String.length blob - 1 do
    let b = Bytes.of_string blob in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
    let dec = Frame.decoder () in
    Frame.feed dec (Bytes.to_string b);
    let frames, status = drain_decoder dec in
    (match status with
    | `Corrupt _ ->
        (* sticky: more input must not revive it *)
        Frame.feed dec (Frame.encode "again");
        let more, status2 = drain_decoder dec in
        check "no frames after corruption" true (more = []);
        check "still corrupt" true (match status2 with `Corrupt _ -> true | `Ok -> false)
    | `Ok -> check "flip lost at most both frames" true (List.length frames <= 2));
    check "decoded frames are a prefix" true
      (List.for_all (fun p -> String.equal p "hello" || String.equal p "world") frames)
  done

let test_frame_length_cap () =
  (* A hostile length word must be rejected before any buffering
     decision, without waiting for the declared bytes. *)
  let dec = Frame.decoder () in
  Frame.feed dec Frame.greeting;
  let b = Buffer.create 8 in
  Buffer.add_int32_be b 0x3FFFFFFFl;
  Buffer.add_int32_be b 0l;
  Frame.feed dec (Buffer.contents b);
  (match Frame.next dec with
  | `Corrupt _ -> ()
  | `Frame _ | `Need_more -> Alcotest.fail "oversized length accepted");
  check_int "hostile bytes were not buffered" 0 (Frame.buffered dec);
  (* encode refuses to produce such a frame in the first place *)
  (match Frame.encode (String.make (Frame.max_payload + 1) 'x') with
  | _ -> Alcotest.fail "encode accepted oversized payload"
  | exception Invalid_argument _ -> ())

let test_codec_hostile_length_prefix () =
  (* The on-disk reader: a declared record length far beyond the bytes
     in the file must come back Torn immediately (no allocation of the
     declared size, no hang). *)
  with_dir (fun d ->
      let path = Filename.concat d "hostile.bin" in
      let oc = open_out_bin path in
      output_string oc (Codec.header ~magic:"MDRJ" ~version:1);
      let b = Buffer.create 12 in
      Buffer.add_int32_be b 0x20000000l;
      (* 512 MiB declared *)
      Buffer.add_int32_be b 0l;
      Buffer.add_string b "tiny";
      output_string oc (Buffer.contents b);
      close_out oc;
      let ic = open_in_bin path in
      seek_in ic Codec.header_len;
      (match Codec.read_record ic with
      | Codec.Torn _ -> ()
      | Codec.Record _ | Codec.Eof -> Alcotest.fail "hostile length not classified Torn");
      close_in ic)

(* ---- the message codec ----------------------------------------------- *)

let client_msgs =
  [
    Proto.Hello { client = 7; last_acked = 0 };
    Proto.Hello { client = 0x3FFFFFFF; last_acked = 123456789 };
    Proto.Claim { scope = Proto.All };
    Proto.Claim { scope = Proto.Pairs [ (0, 1) ] };
    Proto.Claim { scope = Proto.Pairs [ (0, 1); (2, 5); (3, 4) ] };
    Proto.Submit
      { seq = 1; epoch = 0; update = Update.Set_cost { src = 0; dst = 1; cost = 2.5 } };
    Proto.Submit { seq = 999; epoch = 3; update = Update.Link_down { a = 3; b = 4 } };
    Proto.Submit
      { seq = 1000; epoch = 77; update = Update.Link_up { a = 3; b = 4; cost = 1.25 } };
    Proto.Ping { nonce = 42 };
    Proto.Get_fingerprint;
    Proto.Bye;
  ]

let server_msgs =
  [
    Proto.Welcome { session = 1; client = 1; seq = 0; epoch = 0 };
    Proto.Welcome { session = 77; client = 9; seq = 50; epoch = 4 };
    Proto.Granted { epoch = 1 };
    Proto.Ack { client = 1; seq = 1 };
    Proto.Ack { client = 12; seq = 345678 };
    Proto.Reject { seq = 12; reason = "sequence gap (durable seq is 3)" };
    Proto.Reject { seq = 0; reason = "" };
    Proto.Fenced { seq = 4; held = 1; current = 2 };
    Proto.Throttled { seq = 9; retry_after = 0.25 };
    Proto.Busy { retry_after = 5.0; reason = "session table full" };
    Proto.Shutdown;
    Proto.Pong { nonce = 42 };
    Proto.Fingerprint (String.make 32 'a');
  ]

let test_proto_roundtrip () =
  List.iter
    (fun m ->
      check "client msg roundtrips" true (Proto.decode_client (Proto.encode_client m) = m))
    client_msgs;
  List.iter
    (fun m ->
      check "server msg roundtrips" true (Proto.decode_server (Proto.encode_server m) = m))
    server_msgs;
  (* trailing garbage is corruption, not tolerated slack *)
  List.iter
    (fun m ->
      match Proto.decode_client (Proto.encode_client m ^ "\000") with
      | _ -> Alcotest.fail "trailing byte accepted"
      | exception Proto.Corrupt _ -> ())
    client_msgs

let proto_fuzz =
  QCheck.Test.make ~name:"proto decode: total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      let total decode =
        match decode s with _ -> true | exception Proto.Corrupt _ -> true
        (* any other exception fails the property by escaping *)
      in
      total Proto.decode_client && total Proto.decode_server)

let update_fuzz_random =
  QCheck.Test.make ~name:"update decode: total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_bound 40))
    (fun s ->
      match Update.decode s with _ -> true | exception Update.Corrupt _ -> true)

let update_fuzz_bitflip =
  (* Single-byte-flipped valid encodings: decode must return a value
     or raise the typed exception — never crash, loop or
     over-allocate. (Catching semantic flips is the CRC layer's job.) *)
  QCheck.Test.make ~name:"update decode: total on bit-flipped valid frames" ~count:500
    QCheck.(triple (int_bound 2) (int_bound 16) (int_bound 7))
    (fun (which, pos, bit) ->
      let u =
        match which with
        | 0 -> Update.Set_cost { src = 1; dst = 2; cost = 3.5 }
        | 1 -> Update.Link_down { a = 1; b = 2 }
        | _ -> Update.Link_up { a = 1; b = 2; cost = 0.5 }
      in
      let enc = Bytes.of_string (Update.encode u) in
      let pos = pos mod Bytes.length enc in
      Bytes.set enc pos (Char.chr (Char.code (Bytes.get enc pos) lxor (1 lsl bit)));
      match Update.decode (Bytes.to_string enc) with
      | _ -> true
      | exception Update.Corrupt _ -> true)

let test_update_exact_length () =
  let enc = Update.encode (Update.Link_down { a = 1; b = 2 }) in
  (match Update.decode (enc ^ "x") with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception Update.Corrupt _ -> ());
  match Update.decode (String.sub enc 0 (String.length enc - 1)) with
  | _ -> Alcotest.fail "short payload accepted"
  | exception Update.Corrupt _ -> ()

(* ---- transports ------------------------------------------------------ *)

let test_pipe_ordering_and_close () =
  let a, b = Transport.pipe () in
  Transport.send a ~now:0.0 "one";
  a.Transport.send_at ~now:0.0 ~at:1.0 "late";
  Transport.send a ~now:0.5 "two";
  check "nothing before due" true (b.Transport.recv ~now:(-1.0) = None);
  check "in order" true (b.Transport.recv ~now:0.5 = Some "one");
  check "undelayed overtakes delayed" true (b.Transport.recv ~now:0.5 = Some "two");
  check "delayed arrives at its time" true (b.Transport.recv ~now:1.0 = Some "late");
  Transport.send b ~now:1.0 "reply";
  b.Transport.close ();
  check "close drops queues" true (a.Transport.recv ~now:2.0 = None);
  check "both ends closed" true
    (a.Transport.status () = `Closed && b.Transport.status () = `Closed)

let test_wirefault_deterministic_and_transparent () =
  let mk seed =
    Wirefault.create ~rng:(Rng.substream ~seed ~index:0)
      ~params:(Wirefault.scale Wirefault.default_params ~intensity:3.0) ()
  in
  let run line =
    List.concat_map (fun i -> Wirefault.transform line ~now:(float_of_int i) (String.make 20 'p'))
      (List.init 50 (fun i -> i))
  in
  check "same seed, same chaos" true (run (mk 5) = run (mk 5));
  check "different seed, different chaos" true (run (mk 5) <> run (mk 6));
  (* intensity 0 is a transparent line *)
  let clean =
    Wirefault.create ~rng:(Rng.create ~seed:1)
      ~params:(Wirefault.scale Wirefault.default_params ~intensity:0.0) ()
  in
  check "transparent" true (Wirefault.transform clean ~now:4.0 "abc" = [ (4.0, "abc") ]);
  (* a line that draws a disconnect goes dead and stays dead *)
  let all_cut = { Wirefault.default_params with disconnect = 0.95 } in
  let line = Wirefault.create ~rng:(Rng.create ~seed:2) ~params:all_cut () in
  let rec until_dead n = if Wirefault.dead line || n = 0 then n else begin
      ignore (Wirefault.transform line ~now:0.0 "xyz"); until_dead (n - 1) end
  in
  ignore (until_dead 100);
  check "line died" true (Wirefault.dead line);
  check "dead line delivers nothing" true (Wirefault.transform line ~now:9.0 "x" = [])

(* ---- a wired session, no chaos --------------------------------------- *)

let run_session ?(updates = 20) ?(seed = 3) ?(dt = 0.02) ?(max_steps = 50_000)
    ?(on_step = fun ~kill:_ _ -> ()) ~dial_chaos topo dir =
  let upd = stream topo ~seed ~updates in
  let config = { Server.default_config with snapshot_every = 8 } in
  let ref_srv = Server.create ~config ~dir:(Filename.concat dir "ref") ~topo ~cost () in
  Array.iteri (fun i u -> Server.apply ref_srv ~now:(float_of_int i) u) upd;
  let fp_ref = Server.fingerprint ref_srv in
  Server.close ref_srv;
  let srv = Server.create ~config ~dir:(Filename.concat dir "wire") ~topo ~cost () in
  let wsrv = Wire_server.create srv in
  let current = ref None in
  let conns = ref 0 in
  let dial ~now =
    incr conns;
    let client_end, server_end = Transport.pipe () in
    let client_end, server_end = dial_chaos ~conn:!conns client_end server_end in
    ignore (Wire_server.attach wsrv ~now server_end);
    current := Some client_end;
    Some client_end
  in
  let client = Client.create ~rng:(Rng.substream ~seed ~index:1) ~dial ~updates:upd () in
  let kill () =
    match !current with Some tr -> tr.Transport.close () | None -> ()
  in
  let steps = ref 0 in
  while (not (Client.finished client)) && !steps < max_steps do
    incr steps;
    let now = float_of_int !steps *. dt in
    Client.step client ~now;
    on_step ~kill (`Before_server (client, now));
    ignore (Wire_server.step wsrv ~now);
    on_step ~kill (`After_server (client, now));
    if !steps mod 25 = 0 then ignore (Wire_server.heartbeat wsrv ~now)
  done;
  (client, wsrv, srv, fp_ref)

let no_chaos ~conn:_ c s = (c, s)

let test_session_happy_path () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let client, wsrv, srv, fp_ref = run_session ~dial_chaos:no_chaos topo dir in
      check "client done" true (Client.phase client = Client.Done);
      let cs = Client.stats client in
      let ws = Wire_server.stats wsrv in
      check_int "all acked" 20 cs.Client.acked;
      check_int "no retries on a clean wire" 0 cs.Client.retries;
      check_int "no reconnects" 0 cs.Client.reconnects;
      check_int "every update applied once" 20 ws.Wire_server.applied;
      check_int "server at seq" 20 (Server.seq srv);
      check_str "fingerprint matches direct run" fp_ref (Server.fingerprint srv);
      check "client fetched the same fingerprint" true
        (Client.fingerprint client = Some fp_ref);
      check "lfi clean" true (Server.lfi_ok srv);
      Server.close srv)

(* Satellite: the client killed at every frame boundary of a 50-update
   stream. Odd seqs are cut before the server ever sees the submit
   (the retry path); even seqs after the server applied it but before
   the ack returns (the fast-forward path). Either way the stream must
   converge to the reference fingerprint with no double apply. *)
let test_kill_every_frame_boundary () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let killed = ref 0 in
      let kill_after = ref false in
      let on_step ~kill = function
        | `Before_server (client, _) -> (
            match Client.pending_seq client with
            | Some k when k > !killed && k <= 50 ->
                killed := k;
                if k mod 2 = 1 then kill () else kill_after := true
            | _ -> ())
        | `After_server (_, _) ->
            if !kill_after then begin
              kill_after := false;
              kill ()
            end
      in
      let client, wsrv, srv, fp_ref =
        run_session ~updates:50 ~seed:9 ~on_step ~dial_chaos:no_chaos topo dir
      in
      check_int "every boundary was cut" 50 !killed;
      check "client done" true (Client.phase client = Client.Done);
      let cs = Client.stats client in
      let ws = Wire_server.stats wsrv in
      check "reconnected across every cut" true (cs.Client.reconnects >= 50);
      check "fast-forward path exercised" true (cs.Client.fast_forwarded > 0);
      check_int "exactly-once: applied" 50 ws.Wire_server.applied;
      check_int "exactly-once: seq" 50 (Server.seq srv);
      check_str "converged to reference" fp_ref (Server.fingerprint srv);
      check "wire fingerprint agrees" true (Client.fingerprint client = Some fp_ref);
      check "lfi clean" true (Server.lfi_ok srv);
      Server.close srv)

(* ---- liveness and hostile peers -------------------------------------- *)

let test_dead_session_reaped () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let srv = Server.create ~dir ~topo ~cost () in
      let wsrv =
        Wire_server.create
          ~config:{ Wire_server.default_config with dead_after = 5.0 }
          srv
      in
      let _, server_end = Transport.pipe () in
      let id = Option.get (Wire_server.attach wsrv ~now:0.0 server_end) in
      check_int "session open" 1 (Wire_server.sessions wsrv);
      check "quiet before the deadline" true (Wire_server.heartbeat wsrv ~now:4.0 = []);
      let alarms = Wire_server.heartbeat wsrv ~now:6.0 in
      check "reap alarm" true
        (List.exists
           (function Wire_server.Dead_session { id = i; _ } -> i = id | _ -> false)
           alarms);
      check_int "session gone" 0 (Wire_server.sessions wsrv);
      check_int "counted" 1 (Wire_server.stats wsrv).Wire_server.reaped;
      Server.close srv)

let test_malformed_stream_closes_session () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let srv = Server.create ~dir ~topo ~cost () in
      let wsrv = Wire_server.create srv in
      let client_end, server_end = Transport.pipe () in
      ignore (Wire_server.attach wsrv ~now:0.0 server_end);
      Transport.send client_end ~now:0.0 "this is not a greeting";
      ignore (Wire_server.step wsrv ~now:0.1);
      check_int "session dropped" 0 (Wire_server.sessions wsrv);
      check_int "malformed counted" 1 (Wire_server.stats wsrv).Wire_server.malformed;
      let alarms = Wire_server.heartbeat wsrv ~now:0.2 in
      check "malformed alarm" true
        (List.exists
           (function Wire_server.Malformed_frames { frames = 1 } -> true | _ -> false)
           alarms);
      check "alarm fires once" true
        (not
           (List.exists
              (function Wire_server.Malformed_frames _ -> true | _ -> false)
              (Wire_server.heartbeat wsrv ~now:0.3)));
      Server.close srv)

let test_duplicate_submit_reacked_not_reapplied () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let srv = Server.create ~dir ~topo ~cost () in
      let wsrv = Wire_server.create srv in
      let client_end, server_end = Transport.pipe () in
      ignore (Wire_server.attach wsrv ~now:0.0 server_end);
      let send msg =
        Transport.send client_end ~now:0.0 (Frame.encode (Proto.encode_client msg))
      in
      Transport.send client_end ~now:0.0 Frame.greeting;
      let u = Update.Set_cost { src = 0; dst = 1; cost = 9.0 } in
      send (Proto.Hello { client = 3; last_acked = 0 });
      send (Proto.Submit { seq = 1; epoch = 0; update = u });
      send (Proto.Submit { seq = 1; epoch = 0; update = u });
      send (Proto.Submit { seq = 5; epoch = 0; update = u });
      ignore (Wire_server.step wsrv ~now:0.1);
      let ws = Wire_server.stats wsrv in
      check_int "applied once" 1 ws.Wire_server.applied;
      check_int "duplicate re-acked" 1 ws.Wire_server.duplicates;
      check_int "gap rejected" 1 ws.Wire_server.rejects;
      check_int "server seq" 1 (Server.seq srv);
      check_int "client mark" 1 (Server.client_seq srv ~client:3);
      (* welcome, two acks for seq 1, one reject for seq 5 *)
      let dec = Frame.decoder () in
      let rec pull () =
        match client_end.Transport.recv ~now:0.2 with
        | Some c -> Frame.feed dec c; pull ()
        | None -> ()
      in
      pull ();
      let rec msgs acc =
        match Frame.next dec with
        | `Frame p -> msgs (Proto.decode_server p :: acc)
        | `Need_more -> List.rev acc
        | `Corrupt r -> Alcotest.fail r
      in
      (match msgs [] with
      | [
          Proto.Welcome { client = 3; seq = 0; epoch = 0; _ };
          Proto.Ack { client = 3; seq = 1 };
          Proto.Ack { client = 3; seq = 1 };
          Proto.Reject { seq = 5; _ };
        ] -> ()
      | other ->
          Alcotest.fail
            (Printf.sprintf "unexpected replies: %s"
               (String.concat ", " (List.map Proto.describe_server other))));
      Server.close srv)

let test_client_gives_up () =
  let topo = small_topo () in
  let upd = stream topo ~seed:3 ~updates:5 in
  let config = { Client.default_config with max_reconnects = 5 } in
  let client =
    Client.create ~config ~rng:(Rng.create ~seed:1) ~dial:(fun ~now:_ -> None)
      ~updates:upd ()
  in
  let steps = ref 0 in
  while (not (Client.finished client)) && !steps < 10_000 do
    incr steps;
    Client.step client ~now:(float_of_int !steps *. 0.05)
  done;
  check "failed, not hung" true
    (match Client.phase client with Client.Failed _ -> true | _ -> false);
  check_int "counted the refused dials" 6 (Client.stats client).Client.dial_failures

(* ---- admission control ----------------------------------------------- *)

(* A raw protocol endpoint: pipe in, greeting sent, with helpers to
   push client messages and drain decoded server replies. *)
let raw_endpoint wsrv ~now =
  let client_end, server_end = Transport.pipe () in
  let attached = Wire_server.attach wsrv ~now server_end in
  (match attached with
  | Some _ -> Transport.send client_end ~now Frame.greeting
  | None -> ());
  let dec = Frame.decoder () in
  let send ~now msg =
    Transport.send client_end ~now (Frame.encode (Proto.encode_client msg))
  in
  let recv ~now =
    let rec pull () =
      match client_end.Transport.recv ~now with
      | Some c -> Frame.feed dec c; pull ()
      | None -> ()
    in
    pull ();
    let rec msgs acc =
      match Frame.next dec with
      | `Frame p -> msgs (Proto.decode_server p :: acc)
      | `Need_more -> List.rev acc
      | `Corrupt r -> Alcotest.fail r
    in
    msgs []
  in
  (attached, send, recv)

let test_session_cap_lru_eviction () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let srv = Server.create ~dir ~topo ~cost () in
      let wsrv =
        Wire_server.create
          ~config:{ Wire_server.default_config with max_sessions = 3 }
          srv
      in
      (* two parked Greeting-stage sessions, one Hello-bound *)
      let a1, _, _ = raw_endpoint wsrv ~now:0.0 in
      let a2, _, _ = raw_endpoint wsrv ~now:0.1 in
      let a3, send3, recv3 = raw_endpoint wsrv ~now:0.2 in
      check "table fills" true (a1 <> None && a2 <> None && a3 <> None);
      send3 ~now:0.3 (Proto.Hello { client = 1; last_acked = 0 });
      ignore (Wire_server.step wsrv ~now:0.3);
      check "bound" true
        (match recv3 ~now:0.3 with Proto.Welcome _ :: _ -> true | _ -> false);
      (* a fourth transport evicts the oldest idle Greeting session *)
      let a4, _, _ = raw_endpoint wsrv ~now:1.0 in
      check "redial storm victim is the parked session" true (a4 <> None);
      check_int "evicted one" 1 (Wire_server.stats wsrv).Wire_server.evicted;
      check_int "table still at cap" 3 (Wire_server.sessions wsrv);
      (* bind every slot, and the next transport is refused with Busy *)
      let bind (att, send, recv) ~now client =
        check "slot" true (att <> None);
        send ~now (Proto.Hello { client; last_acked = 0 });
        ignore (Wire_server.step wsrv ~now);
        check "welcomed" true
          (match recv ~now with Proto.Welcome _ :: _ -> true | _ -> false)
      in
      let e5 = raw_endpoint wsrv ~now:2.0 in
      let e6 = raw_endpoint wsrv ~now:2.1 in
      bind e5 ~now:2.2 2;
      bind e6 ~now:2.3 3;
      let a7, _, _ = raw_endpoint wsrv ~now:3.0 in
      check "full of bound sessions refuses" true (a7 = None);
      check_int "busy counted" 1 (Wire_server.stats wsrv).Wire_server.busy_rejected;
      (* e5 and e6 each displaced one of the remaining parked sessions
         before binding: every victim was Greeting-stage, never a
         bound client *)
      check_int "only parked sessions were evicted" 3
        (Wire_server.stats wsrv).Wire_server.evicted;
      check_int "bound sessions survived" 3 (Wire_server.sessions wsrv);
      Server.close srv)

let test_quarantine_after_strikes () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let srv = Server.create ~dir ~topo ~cost () in
      let config =
        {
          Wire_server.default_config with
          max_strikes = 2;
          quarantine_for = 30.0;
        }
      in
      let wsrv = Wire_server.create ~config srv in
      let _, send, recv = raw_endpoint wsrv ~now:0.0 in
      send ~now:0.0 (Proto.Hello { client = 9; last_acked = 0 });
      let u = Update.Set_cost { src = 0; dst = 1; cost = 2.0 } in
      (* two gap submits = two strikes = quarantine *)
      send ~now:0.1 (Proto.Submit { seq = 5; epoch = 0; update = u });
      send ~now:0.2 (Proto.Submit { seq = 7; epoch = 0; update = u });
      ignore (Wire_server.step wsrv ~now:0.3);
      check_int "quarantined" 1 (Wire_server.stats wsrv).Wire_server.quarantines;
      check_int "its session was closed" 0 (Wire_server.sessions wsrv);
      ignore (recv ~now:0.3);
      let alarms = Wire_server.heartbeat wsrv ~now:0.4 in
      check "alarm raised" true
        (List.exists
           (function
             | Wire_server.Quarantined { client = 9; strikes = 2 } -> true
             | _ -> false)
           alarms);
      (* a quarantined client's Hello is refused (Busy, then the
         session closes; a pipe drops the queued frame with it, so
         assert via the counters rather than the reply) *)
      let _, send2, _ = raw_endpoint wsrv ~now:1.0 in
      send2 ~now:1.0 (Proto.Hello { client = 9; last_acked = 0 });
      ignore (Wire_server.step wsrv ~now:1.1);
      check_int "hello refused" 1
        (Wire_server.stats wsrv).Wire_server.busy_rejected;
      check_int "refused session closed" 0 (Wire_server.sessions wsrv);
      (* an innocent client is untouched *)
      let _, send3, recv3 = raw_endpoint wsrv ~now:2.0 in
      send3 ~now:2.0 (Proto.Hello { client = 4; last_acked = 0 });
      send3 ~now:2.1 (Proto.Submit { seq = 1; epoch = 0; update = u });
      ignore (Wire_server.step wsrv ~now:2.2);
      (match recv3 ~now:2.2 with
      | [ Proto.Welcome _; Proto.Ack { client = 4; seq = 1 } ] -> ()
      | other ->
          Alcotest.fail
            (Printf.sprintf "innocent client degraded: %s"
               (String.concat ", " (List.map Proto.describe_server other))));
      (* after the quarantine lapses the offender is allowed back *)
      let _, send4, recv4 = raw_endpoint wsrv ~now:40.0 in
      send4 ~now:40.0 (Proto.Hello { client = 9; last_acked = 0 });
      ignore (Wire_server.step wsrv ~now:40.1);
      check "back after quarantine" true
        (match recv4 ~now:40.1 with Proto.Welcome _ :: _ -> true | _ -> false);
      Server.close srv)

let test_token_bucket_throttles () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let srv = Server.create ~dir ~topo ~cost () in
      let config =
        { Wire_server.default_config with rate = 1.0; burst = 2.0 }
      in
      let wsrv = Wire_server.create ~config srv in
      let _, send, recv = raw_endpoint wsrv ~now:0.0 in
      send ~now:0.0 (Proto.Hello { client = 5; last_acked = 0 });
      let u i = Update.Set_cost { src = 0; dst = 1; cost = float_of_int i } in
      (* burst of 3 at t=0: bucket holds 2, the third is shed *)
      send ~now:0.0 (Proto.Submit { seq = 1; epoch = 0; update = u 1 });
      send ~now:0.0 (Proto.Submit { seq = 2; epoch = 0; update = u 2 });
      send ~now:0.0 (Proto.Submit { seq = 3; epoch = 0; update = u 3 });
      ignore (Wire_server.step wsrv ~now:0.0);
      let ws = Wire_server.stats wsrv in
      check_int "two applied" 2 ws.Wire_server.applied;
      check_int "one throttled" 1 ws.Wire_server.throttled;
      check_int "shed counter per client" 1 (Wire_server.shed_of wsrv ~client:5);
      (match recv ~now:0.0 with
      | [
          Proto.Welcome _;
          Proto.Ack { client = 5; seq = 1 };
          Proto.Ack { client = 5; seq = 2 };
          Proto.Throttled { seq = 3; retry_after };
        ] ->
          check "retry hint positive" true (retry_after > 0.0)
      | other ->
          Alcotest.fail
            (Printf.sprintf "unexpected replies: %s"
               (String.concat ", " (List.map Proto.describe_server other))));
      (* shedding is not misbehavior: no strike, no quarantine *)
      check_int "no quarantine" 0 (Wire_server.stats wsrv).Wire_server.quarantines;
      (* after refill the retried submit goes through *)
      send ~now:2.5 (Proto.Submit { seq = 3; epoch = 0; update = u 3 });
      ignore (Wire_server.step wsrv ~now:2.5);
      check_int "applied after refill" 3 (Wire_server.stats wsrv).Wire_server.applied;
      check_int "durable mark" 3 (Server.client_seq srv ~client:5);
      Server.close srv)

(* ---- the chaos audit ------------------------------------------------- *)

let test_wire_audit_clean_wire () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let r = Wire_audit.run ~updates:20 ~intensity:0.0 ~dir ~topo ~seed:4 () in
      check "clean wire passes" true r.Wire_audit.ok;
      check_int "no reconnects without chaos" 0 r.Wire_audit.reconnects;
      check_int "no retries without chaos" 0 r.Wire_audit.retries)

let test_wire_audit_chaos () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let r = Wire_audit.run ~updates:40 ~intensity:2.0 ~dir ~topo ~seed:1 () in
      check "chaos run converges" true r.Wire_audit.ok;
      check "chaos actually struck" true
        (r.Wire_audit.chaos.Wirefault.flips
         + r.Wire_audit.chaos.Wirefault.truncations
         + r.Wire_audit.chaos.Wirefault.disconnects
         > 0);
      check "sessions were cut and resumed" true (r.Wire_audit.reconnects > 0))

let wire_audit_property =
  QCheck.Test.make ~name:"wire audit: exactly-once fingerprint equality under chaos"
    ~count:10
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      with_dir (fun dir ->
          let topo = small_topo () in
          let r = Wire_audit.run ~updates:25 ~intensity:1.5 ~dir ~topo ~seed () in
          r.Wire_audit.ok))

(* ---- the multi-writer audit ------------------------------------------ *)

let test_multi_audit_clean_wire () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let r =
        Wire_audit.run_multi ~clients:3 ~updates:12 ~server_kills:0
          ~client_kills:0 ~intensity:0.0 ~dir ~topo ~seed:5 ()
      in
      check "clean multi run passes" true r.Wire_audit.ok;
      check_int "one grant per client" 3 r.Wire_audit.grants;
      check_int "no fencing on disjoint shares" 0 r.Wire_audit.fenced;
      check_int "three client reports" 3 (List.length r.Wire_audit.per_client);
      List.iter
        (fun (c : Wire_audit.client_report) ->
          check "client finished" true c.Wire_audit.client_done;
          check_int "all acked" 12 c.Wire_audit.acked)
        r.Wire_audit.per_client)

let test_multi_audit_chaos_with_kills () =
  with_dir (fun dir ->
      let topo = small_topo () in
      let r =
        Wire_audit.run_multi ~clients:4 ~updates:20 ~server_kills:3
          ~client_kills:2 ~intensity:1.5 ~dir ~topo ~seed:2 ()
      in
      check "chaos multi run passes" true r.Wire_audit.ok;
      check "fingerprint equals sequential reference" true r.Wire_audit.fingerprint_ok;
      check "every entry replayed through the fence" true r.Wire_audit.replay_ok;
      check "exactly-once per client" true r.Wire_audit.exactly_once;
      check "restores rebuilt marks byte-identically" true r.Wire_audit.marks_ok;
      check_int "all server kills landed" 3 r.Wire_audit.server_kills;
      check_int "all client kills landed" 2 r.Wire_audit.client_kills;
      check "chaos actually struck" true
        (r.Wire_audit.chaos.Wirefault.flips
         + r.Wire_audit.chaos.Wirefault.truncations
         + r.Wire_audit.chaos.Wirefault.disconnects
         > 0);
      check "report renders" true
        (String.length (Wire_audit.report_multi [ r ]) > 0))

(* Satellite: K clients' random streams interleaved with random
   server/client kills and resumes; per-client durable seqs and the
   fingerprint must match the sequential reference every time. *)
let multi_audit_property =
  QCheck.Test.make
    ~name:"multi audit: per-client exactly-once + fingerprint equality under kills"
    ~count:8
    QCheck.(
      triple
        (make Gen.(int_range 1 10_000))
        (make Gen.(int_range 2 4))
        (make Gen.(int_range 0 3)))
    (fun (seed, clients, server_kills) ->
      with_dir (fun dir ->
          let topo = small_topo () in
          let r =
            Wire_audit.run_multi ~clients ~updates:12 ~server_kills
              ~client_kills:(clients / 2) ~intensity:1.0 ~dir ~topo ~seed ()
          in
          r.Wire_audit.ok))

let suite =
  [
    Alcotest.test_case "frame roundtrip under random chunking" `Quick test_frame_roundtrip_chunked;
    Alcotest.test_case "frame corruption is detected and sticky" `Quick test_frame_corruption_sticky;
    Alcotest.test_case "frame length cap before buffering" `Quick test_frame_length_cap;
    Alcotest.test_case "codec: hostile length prefix reads as Torn" `Quick test_codec_hostile_length_prefix;
    Alcotest.test_case "proto roundtrip, exact length" `Quick test_proto_roundtrip;
    QCheck_alcotest.to_alcotest proto_fuzz;
    QCheck_alcotest.to_alcotest update_fuzz_random;
    QCheck_alcotest.to_alcotest update_fuzz_bitflip;
    Alcotest.test_case "update decode rejects trailing bytes" `Quick test_update_exact_length;
    Alcotest.test_case "pipe ordering, delay, close" `Quick test_pipe_ordering_and_close;
    Alcotest.test_case "wirefault determinism and intensity" `Quick test_wirefault_deterministic_and_transparent;
    Alcotest.test_case "session happy path" `Quick test_session_happy_path;
    Alcotest.test_case "kill at every frame boundary of 50 updates" `Quick test_kill_every_frame_boundary;
    Alcotest.test_case "dead sessions are reaped" `Quick test_dead_session_reaped;
    Alcotest.test_case "malformed stream closes the session" `Quick test_malformed_stream_closes_session;
    Alcotest.test_case "duplicate submit re-acked, never re-applied" `Quick test_duplicate_submit_reacked_not_reapplied;
    Alcotest.test_case "client gives up after max reconnects" `Quick test_client_gives_up;
    Alcotest.test_case "admission: session cap with LRU eviction" `Quick
      test_session_cap_lru_eviction;
    Alcotest.test_case "admission: strikes quarantine a misbehaving client" `Quick
      test_quarantine_after_strikes;
    Alcotest.test_case "admission: token bucket throttles, no strike" `Quick
      test_token_bucket_throttles;
    Alcotest.test_case "wire audit: clean wire" `Quick test_wire_audit_clean_wire;
    Alcotest.test_case "wire audit: chaos converges" `Quick test_wire_audit_chaos;
    QCheck_alcotest.to_alcotest wire_audit_property;
    Alcotest.test_case "multi audit: clean wire, disjoint claims" `Quick
      test_multi_audit_clean_wire;
    Alcotest.test_case "multi audit: chaos with kills converges" `Quick
      test_multi_audit_chaos_with_kills;
    QCheck_alcotest.to_alcotest multi_audit_property;
  ]
