(* Standalone lint driver: `dune exec bin/lint.exe` (also wired as
   `mdrsim lint`). Exits 0 when every rule passes over lib/ and bin/,
   1 when there are unallowlisted violations, 2 on usage or parse
   errors. *)

module Lint = Mdr_analysis.Lint_rules

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let main () =
  let json = ref false in
  let root = ref None in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " Emit the machine-readable JSON report");
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR Repo root (default: nearest ancestor with dune-project)" );
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "lint [--json] [--root DIR] [dir ...]  (default dirs: lib bin)";
  let root =
    match !root with
    | Some r -> Some r
    | None -> find_root (Sys.getcwd ())
  in
  match root with
  | None ->
    prerr_endline "lint: cannot find the repo root (no dune-project upward of cwd)";
    2
  | Some root -> (
    let dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
    try
      let report = Lint.run ~dirs ~root () in
      print_string (if !json then Lint.to_json report else Lint.render report);
      if report.Lint.violations = [] && report.Lint.stale_allow = [] then 0 else 1
    with Lint.Parse_failure { file; message } ->
      Printf.eprintf "lint: cannot parse %s: %s\n" file message;
      2)

let () = exit (main ())
