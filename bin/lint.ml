(* Standalone static-analysis driver: `dune exec bin/lint.exe` (also
   wired as `mdrsim lint` / `mdrsim check`). By default runs the
   per-file lint rules; [--effects] runs the whole-program effect
   rules (domain races, determinism taint, crash-safety) instead.
   Exits 0 when every rule passes, 1 when there are unallowlisted
   findings or stale allowlist entries, 2 on usage or parse errors. *)

module Lint = Mdr_analysis.Lint_rules
module Check = Mdr_analysis.Check_rules
module Report = Mdr_analysis.Report
module Source_walk = Mdr_analysis.Source_walk

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let main () =
  let json = ref false in
  let sarif = ref None in
  let effects = ref false in
  let root = ref None in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " Emit the machine-readable JSON report");
      ( "--sarif",
        Arg.String (fun f -> sarif := Some f),
        "FILE Also write a SARIF 2.1.0 report to FILE" );
      ( "--effects",
        Arg.Set effects,
        " Run the whole-program effect rules (as `mdrsim check`) instead of \
         the per-file lint" );
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR Repo root (default: nearest ancestor with dune-project)" );
    ]
  in
  Arg.parse spec
    (fun d -> dirs := d :: !dirs)
    "lint [--json] [--sarif FILE] [--effects] [--root DIR] [dir ...]  \
     (default dirs: lib bin examples test)";
  let root =
    match !root with
    | Some r -> Some r
    | None -> Source_walk.find_root (Sys.getcwd ())
  in
  match root with
  | None ->
    prerr_endline "lint: cannot find the repo root (no dune-project upward of cwd)";
    2
  | Some root -> (
    let dirs =
      match List.rev !dirs with [] -> Source_walk.default_dirs | ds -> ds
    in
    try
      let report =
        if !effects then Check.run ~dirs ~root ()
        else Lint.to_report (Lint.run ~dirs ~root ())
      in
      Option.iter (fun f -> write_file f (Report.to_sarif report)) !sarif;
      print_string (if !json then Report.to_json report else Report.render report);
      if Report.clean report then 0 else 1
    with Source_walk.Parse_failure { file; message } ->
      Printf.eprintf "lint: cannot parse %s: %s\n" file message;
      2)

let () = exit (main ())
