(* mdrsim — command-line driver for the reproduction of "A Simple
   Approximation to Minimum-Delay Routing" (Vutukury &
   Garcia-Luna-Aceves, SIGCOMM 1999).

   Subcommands regenerate individual figures, run ad-hoc comparisons on
   the built-in topologies, or run everything. *)

module Experiments = Mdr_experiments.Experiments
module Workload = Mdr_experiments.Workload

open Cmdliner

let write_csv path (o : Experiments.outcome) =
  match o.series with
  | None -> Printf.eprintf "note: %s has no tabular data; no CSV written\n" o.title
  | Some series ->
    let oc = open_out path in
    output_string oc (Experiments.to_csv series);
    close_out oc;
    Printf.printf "wrote %s\n" path

let print_outcome ?csv (o : Experiments.outcome) =
  print_endline o.rendered;
  List.iter
    (fun (label, ok) ->
      Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") label)
    o.checks;
  (match csv with Some path -> write_csv path o | None -> ());
  print_newline ();
  List.for_all snd o.checks

let seeds_conv = Arg.(list int)

let load_arg ~default =
  let doc = "Load factor applied to every flow's 2-3 Mb/s nominal rate." in
  Arg.(value & opt float default & info [ "load" ] ~docv:"FACTOR" ~doc)

let seeds_arg =
  let doc = "Comma-separated simulation seeds; results are averaged." in
  Arg.(value & opt seeds_conv [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)

let exit_of_ok ok = if ok then 0 else 1

let csv_arg =
  let doc = "Also write the figure's data as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let simple_cmd name ~doc f =
  let run csv = exit_of_ok (print_outcome ?csv (f ())) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ csv_arg)

let loaded_cmd name ~doc ~default
    (f : ?load:float -> ?seeds:int list -> unit -> Experiments.outcome) =
  let run load seeds csv = exit_of_ok (print_outcome ?csv (f ~load ~seeds ())) in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ load_arg ~default $ seeds_arg $ csv_arg)

let fig9_cmd =
  let run load csv =
    exit_of_ok (print_outcome ?csv (Experiments.fig9_cairn_opt_vs_mp ~load ()))
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"OPT vs MP per-flow delays on CAIRN (fluid + packet).")
    Term.(const run $ load_arg ~default:1.0 $ csv_arg)

let fig10_cmd =
  let run load csv =
    exit_of_ok (print_outcome ?csv (Experiments.fig10_net1_opt_vs_mp ~load ()))
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"OPT vs MP per-flow delays on NET1.")
    Term.(const run $ load_arg ~default:1.0 $ csv_arg)

let topology_cmd =
  simple_cmd "topology" ~doc:"Print both topologies and their metrics (Figure 8)."
    Experiments.fig8_topologies

let all_cmd =
  let csv_dir_arg =
    let doc = "Write every figure's data as CSV files into $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)
  in
  let run csv_dir =
    (match csv_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | Some _ | None -> ());
    let ok =
      List.fold_left
        (fun acc (id, f) ->
          let csv = Option.map (fun dir -> Filename.concat dir (id ^ ".csv")) csv_dir in
          print_outcome ?csv (f ()) && acc)
        true (Experiments.all ())
    in
    exit_of_ok ok
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (the full evaluation; minutes).")
    Term.(const run $ csv_dir_arg)

let compare_cmd =
  (* Ad-hoc three-way comparison on a chosen topology and load. *)
  let topo_arg =
    let doc = "Topology: cairn or net1." in
    Arg.(value & opt (enum [ ("cairn", `Cairn); ("net1", `Net1) ]) `Cairn
         & info [ "topology"; "t" ] ~docv:"NAME" ~doc)
  in
  let run topo load seeds =
    let w =
      match topo with
      | `Cairn -> Workload.cairn ~load
      | `Net1 -> Workload.net1 ~load
    in
    let module Sim = Mdr_netsim.Sim in
    let module Gallager = Mdr_gallager.Gallager in
    let opt = Gallager.solve (Workload.model w) w.Workload.topo (Workload.traffic w) in
    let avg scheme =
      let flows = Workload.sim_flows w in
      let runs =
        List.map
          (fun seed ->
            Sim.run
              ~config:{ Sim.default_config with scheme; sim_time = 80.0; warmup = 20.0; seed }
              w.Workload.topo flows)
          seeds
      in
      Mdr_util.Stats.mean_of_list (List.map (fun (r : Sim.result) -> r.avg_delay) runs)
    in
    let mp = avg Sim.Mp and sp = avg Sim.Sp in
    Printf.printf
      "%s at load %.2f (%d-seed means):\n  OPT (fluid bound) %8.3f ms\n  MP  (measured)    %8.3f ms\n  SP  (measured)    %8.3f ms   (x%.2f vs MP)\n"
      w.Workload.name load (List.length seeds) (1000.0 *. opt.avg_delay)
      (1000.0 *. mp) (1000.0 *. sp) (sp /. mp);
    0
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare OPT/MP/SP average delays on one topology.")
    Term.(const run $ topo_arg $ load_arg ~default:1.0 $ seeds_arg)

let routes_cmd =
  (* Dump the converged MP routing table: per (router, destination),
     the loop-free successor set with its traffic fractions. *)
  let topo_arg =
    let doc = "Topology: cairn or net1." in
    Arg.(value & opt (enum [ ("cairn", `Cairn); ("net1", `Net1) ]) `Cairn
         & info [ "topology"; "t" ] ~docv:"NAME" ~doc)
  in
  let node_arg =
    let doc = "Only print entries for this router (by name)." in
    Arg.(value & opt (some string) None & info [ "router"; "r" ] ~docv:"NAME" ~doc)
  in
  let run topo load node_filter =
    let w =
      match topo with
      | `Cairn -> Workload.cairn ~load
      | `Net1 -> Workload.net1 ~load
    in
    let module Graph = Mdr_topology.Graph in
    let module Fluid = Mdr_fluid in
    let g = w.Workload.topo in
    let mp =
      Mdr_core.Controller.run
        ~config:{ Mdr_core.Controller.scheme = Mp; rounds = 40; ts_per_tl = 5; damping = 0.5 }
        (Workload.model w) g (Workload.traffic w)
    in
    let keep node =
      match node_filter with
      | None -> true
      | Some name -> ( try Graph.node_of_name g name = node with Not_found -> false)
    in
    let n = Graph.node_count g in
    Printf.printf "%s MP routing table at load %.2f (converged fluid state):\n\n"
      w.Workload.name load;
    for node = 0 to n - 1 do
      if keep node then
        for dst = 0 to n - 1 do
          if node <> dst then begin
            match Fluid.Params.fractions mp.params ~node ~dst with
            | [] -> ()
            | entries ->
              Printf.printf "  %-10s -> %-10s via %s\n" (Graph.name g node)
                (Graph.name g dst)
                (String.concat ", "
                   (List.map
                      (fun (k, f) ->
                        Printf.sprintf "%s (%.0f%%)" (Graph.name g k) (100.0 *. f))
                      entries))
          end
        done
    done;
    0
  in
  Cmd.v
    (Cmd.info "routes" ~doc:"Print the converged MP multipath routing table.")
    Term.(const run $ topo_arg $ load_arg ~default:1.0 $ node_arg)

let custom_cmd =
  (* Run the full three-way comparison on a user-supplied topology and
     flow set. *)
  let topo_file =
    Arg.(required & opt (some file) None
         & info [ "topo" ] ~docv:"FILE" ~doc:"Topology file (see Mdr_topology.Parser).")
  in
  let flow_file =
    Arg.(required & opt (some file) None
         & info [ "flows" ] ~docv:"FILE" ~doc:"Flow file: 'flow <src> <dst> <mbps>' lines.")
  in
  let damping_arg =
    let doc =
      "AH damping in (0,1]. 1.0 is the paper's full step (which flip-flops on \
       perfectly symmetric two-path splits); 0.5 smooths such cases."
    in
    Arg.(value & opt float 1.0 & info [ "damping" ] ~docv:"D" ~doc)
  in
  let run topo_path flow_path seeds damping =
    let module Graph = Mdr_topology.Graph in
    let module Parser = Mdr_topology.Parser in
    let module Sim = Mdr_netsim.Sim in
    try
      let g = Parser.topology_of_file topo_path in
      let flows = Parser.flows_of_file g flow_path in
      if flows = [] then begin
        Printf.eprintf "no flows in %s\n" flow_path;
        1
      end
      else begin
        let specs =
          List.map (fun (src, dst, rate_bits) -> { Sim.src; dst; rate_bits; burst = None }) flows
        in
        let pkt = Mdr_experiments.Workload.packet_size in
        let traffic =
          Mdr_fluid.Traffic.of_flows ~n:(Graph.node_count g)
            (List.map
               (fun (src, dst, rate_bits) ->
                 { Mdr_fluid.Traffic.src; dst; rate = rate_bits /. pkt })
               flows)
        in
        let model = Mdr_fluid.Evaluate.model g ~packet_size:pkt in
        let opt = Mdr_gallager.Gallager.solve model g traffic in
        let avg scheme =
          Mdr_util.Stats.mean_of_list
            (List.map
               (fun seed ->
                 (Sim.run
                    ~config:
                      { Sim.default_config with scheme; sim_time = 60.0; warmup = 15.0; seed; damping }
                    g specs)
                   .Sim.avg_delay)
               seeds)
        in
        let mp = avg Sim.Mp and sp = avg Sim.Sp in
        Printf.printf
          "%d routers, %d links, %d flows (%d-seed means):\n  OPT (fluid bound) %8.3f ms\n  MP  (measured)    %8.3f ms\n  SP  (measured)    %8.3f ms   (x%.2f vs MP)\n"
          (Graph.node_count g) (Graph.link_count g) (List.length flows)
          (List.length seeds) (1000.0 *. opt.avg_delay) (1000.0 *. mp)
          (1000.0 *. sp) (sp /. mp);
        0
      end
    with Parser.Parse_error { line; message } ->
      Printf.eprintf "parse error at line %d: %s\n" line message;
      1
  in
  Cmd.v
    (Cmd.info "custom"
       ~doc:"Compare OPT/MP/SP on a user-supplied topology and flow set.")
    Term.(const run $ topo_file $ flow_file $ seeds_arg $ damping_arg)

(* The chaos/perfbench scenario rotation: the paper's topologies
   interleaved with generated structure, so campaigns cover both fixed
   and random graphs. *)
let rotating_topo i rng =
  let module Rng = Mdr_util.Rng in
  let module Generators = Mdr_topology.Generators in
  match i mod 4 with
  | 0 -> Mdr_topology.Cairn.topology ()
  | 1 -> Mdr_topology.Net1.topology ()
  | 2 ->
    Generators.ring_with_chords ~rng ~n:(6 + Rng.int rng ~bound:7)
      ~chords:(2 + Rng.int rng ~bound:3) ~capacity:1.0e7 ~prop_delay:0.002
  | _ ->
    Generators.random_connected ~rng ~n:(6 + Rng.int rng ~bound:7)
      ~extra_links:(3 + Rng.int rng ~bound:4) ()

let chaos_cmd =
  (* Randomized fault-injection campaign: every scenario draws a fault
     schedule (lossy channels, flaps, cost surges, crashes, one
     partition/heal) and runs MPDA and DV against it, auditing
     loop-freedom and the LFI conditions after every processed event.
     The whole campaign is a deterministic function of --seed. *)
  let module Campaign = Mdr_faults.Campaign in
  let seed_arg =
    let doc = "Master seed; the campaign replays exactly from it." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let scenarios_arg =
    let doc = "Number of randomized fault scenarios (each runs MPDA and DV)." in
    Arg.(value & opt int 200 & info [ "scenarios" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc = "Simulated seconds of churn per scenario." in
    Arg.(value & opt float 30.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let detection_arg =
    let doc =
      "Failure detection: $(b,oracle) (link events delivered instantly, the \
       paper's model) or $(b,hello) (inferred from missed hellos, with flap \
       damping)."
    in
    Arg.(
      value
      & opt (enum [ ("oracle", `Oracle); ("hello", `Hello) ]) `Oracle
      & info [ "detection" ] ~docv:"MODE" ~doc)
  in
  let run seed scenarios duration detection_mode =
    if scenarios <= 0 || duration <= 0.0 then begin
      Printf.eprintf "chaos: need --scenarios > 0 and --duration > 0\n";
      2
    end
    else begin
      let hello = detection_mode = `Hello in
      let detection =
        match detection_mode with
        | `Oracle -> Mdr_routing.Harness.Oracle
        | `Hello -> Mdr_routing.Harness.Hello Mdr_routing.Hello.default_params
      in
      let profile = { Campaign.default_profile with duration } in
      Printf.printf
        "chaos: %d scenarios x {MPDA, DV}, %.0f s of churn each, seed %d, %s detection\n\n"
        scenarios duration seed
        (if hello then "hello" else "oracle");
      (* Scenario fan-out: MDR_JOBS > 1 spreads the grid over domains;
         results come back in scenario order either way. *)
      let results =
        Campaign.run_campaign ~detection ~profile ~topo_of:rotating_topo ~seed
          ~scenarios ()
      in
      let mpda = List.map fst (Array.to_list results)
      and dv = List.map snd (Array.to_list results) in
      print_string (Campaign.summary_table [ ("MPDA", mpda); ("DV", dv) ]);
      print_newline ();
      if hello then begin
        (* Recovery SLOs only exist when failures must be inferred:
           under the oracle every detection latency is 0 by fiat. *)
        Printf.printf "MPDA recovery SLOs (hello detection):\n";
        print_string (Campaign.slo_table mpda);
        print_newline ();
        let absorbed =
          List.fold_left (fun acc m -> acc + m.Campaign.detection_absorbed) 0 mpda
        in
        let false_pos =
          List.fold_left
            (fun acc m -> acc + m.Campaign.detection_false_positives)
            0 mpda
        in
        let hellos = List.fold_left (fun acc m -> acc + m.Campaign.hellos) 0 mpda in
        Printf.printf
          "  %d hellos sent; %d failures absorbed before detection; %d false positives\n\n"
          hellos absorbed false_pos;
        let d = Campaign.damping_demo ~topo:(Mdr_topology.Cairn.topology ()) ~seed () in
        Printf.printf
          "flap damping (CAIRN, 6 flaps): ACTIVE phases %d undamped -> %d damped \
           (x%.2f); detected flaps %d -> %d; suppression engaged: %b\n\n"
          d.Campaign.active_phases_undamped d.Campaign.active_phases_damped
          (float_of_int d.Campaign.active_phases_undamped
          /. float_of_int (max 1 d.Campaign.active_phases_damped))
          d.Campaign.detected_flaps_undamped d.Campaign.detected_flaps_damped
          d.Campaign.suppressed_during_flaps
      end;
      (* Transport proof: at 20% drop the converged routes must equal
         the lossless ones — loss costs retransmissions, not routes. *)
      let agreement =
        List.for_all
          (fun (name, topo) ->
            let same, retx = Campaign.successor_agreement ~topo ~seed () in
            Printf.printf
              "  [%s] %s: successor sets at 20%% drop %s lossless (retransmissions: %d)\n"
              (if same then "PASS" else "FAIL")
              name
              (if same then "match" else "DIFFER from")
              retx;
            same)
          [ ("CAIRN", Mdr_topology.Cairn.topology ()); ("NET1", Mdr_topology.Net1.topology ()) ]
      in
      let clean (m : Campaign.metrics) =
        m.loop_violations = 0 && m.lfi_violations = 0 && m.converged
        && not m.permanent_blackhole
      in
      (* DBF carries no loop-freedom invariant: when a failure is
         inferred on one side only, the window before the peer's own
         detector fires can transiently loop its successor graph —
         the very window MPDA's feasible-distance pinning closes. So
         under hello detection DV is held to convergence and
         no-permanent-blackhole; MPDA is held to the full bar. *)
      let clean_dv (m : Campaign.metrics) =
        if hello then m.converged && not m.permanent_blackhole else clean m
      in
      if hello then begin
        let dv_loops =
          List.fold_left (fun acc m -> acc + m.Campaign.loop_violations) 0 dv
        in
        if dv_loops > 0 then
          Printf.printf
            "  note: DV showed %d transient loop(s) — DBF has no loop-freedom \
             guarantee under inferred failures (MPDA is held to zero)\n"
            dv_loops
      end;
      let ok = agreement && List.for_all clean mpda && List.for_all clean_dv dv in
      Printf.printf "\n  [%s] %d scenarios: %s\n"
        (if ok then "PASS" else "FAIL")
        scenarios
        (if ok then "zero violations, all runs reconverged, no permanent blackholes"
         else
           "violations, failed reconvergence or a permanent blackhole — see the \
            table above");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Randomized fault-injection audit of MPDA and DV (loop-freedom + LFI).")
    Term.(const run $ seed_arg $ scenarios_arg $ duration_arg $ detection_arg)

let overload_cmd =
  (* Overload-SLO watchdog: push a workload to chosen multiples of its
     feasible envelope and audit both halves of the pipeline — the
     fluid solver must shed (never silently mis-solve), costs must stay
     finite past the knee, and the MPDA control plane must survive the
     resulting cost churn invariant-clean, with damping measurably
     cutting successor flaps. *)
  let module Overload = Mdr_faults.Overload in
  let module Traffic = Mdr_fluid.Traffic in
  let module Feasibility = Mdr_fluid.Feasibility in
  let topo_arg =
    let doc = "Topology: cairn or net1." in
    Arg.(value & opt (enum [ ("cairn", `Cairn); ("net1", `Net1) ]) `Cairn
         & info [ "topology"; "t" ] ~docv:"NAME" ~doc)
  in
  let loads_arg =
    let doc =
      "Comma-separated load multipliers, as fractions of the topology's \
       feasible envelope (1.0 = the largest uniformly scaled load the \
       min-cut admits)."
    in
    Arg.(value & opt (list float) [ 0.8; 1.0; 1.2; 1.5 ]
         & info [ "loads" ] ~docv:"MULTS" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the control-plane runs." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run topo loads seed =
    match loads with
    | [] ->
      prerr_endline "overload: need at least one load multiplier";
      2
    | loads when List.exists (fun m -> m <= 0.0) loads ->
      prerr_endline "overload: load multipliers must be > 0";
      2
    | loads ->
      let w =
        match topo with
        | `Cairn -> Workload.cairn ~load:1.0
        | `Net1 -> Workload.net1 ~load:1.0
      in
      let base = Workload.traffic w in
      let packet_size = Workload.packet_size in
      (* Admissible fractions are capped at 1, so probe at a certainly
         infeasible load and scale back to recover the envelope. *)
      let probe = 32.0 in
      let frac_probe =
        (Feasibility.report w.Workload.topo ~packet_size
           (Traffic.scale base probe))
          .Feasibility.fraction
      in
      let envelope = probe *. frac_probe in
      Printf.printf
        "%s feasible envelope: %.2fx the base workload; auditing %s of it\n\n"
        w.Workload.name envelope
        (String.concat ", " (List.map (fun m -> Printf.sprintf "%.2fx" m) loads));
      let config = { Overload.default_config with seed } in
      let reports =
        Overload.audit_batch ~config ~topo:w.Workload.topo ~packet_size ~base
          (List.map (fun mult -> Traffic.scale base (mult *. envelope)) loads)
      in
      let rows =
        List.map2 (fun mult r -> (Printf.sprintf "%.2fx" mult, r)) loads reports
      in
      print_string (Overload.table rows);
      print_newline ();
      print_string (Overload.slo_table rows);
      print_newline ();
      let clean (r : Overload.report) =
        r.Overload.fluid.Overload.costs_finite
        && r.Overload.undamped.Overload.loop_violations = 0
        && r.Overload.damped.Overload.loop_violations = 0
        && r.Overload.undamped.Overload.lfi_violations = 0
        && r.Overload.damped.Overload.lfi_violations = 0
        && r.Overload.undamped.Overload.converged
        && r.Overload.damped.Overload.converged
      in
      let checks =
        List.map2
          (fun mult (label, r) ->
            let ok =
              clean r && (mult <= 1.0 || r.Overload.fluid.Overload.degraded)
            in
            Printf.printf "  [%s] %s: %s\n"
              (if ok then "PASS" else "FAIL")
              label
              (if not (clean r) then
                 "non-finite costs, invariant violations or failed quiescence"
               else if mult > 1.0 then "degraded gracefully (demand shed, reported)"
               else "clean");
            ok)
          loads rows
      in
      exit_of_ok (List.for_all Fun.id checks)
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Overload-SLO audit: shedding, cost finiteness and control-plane \
          stability past the feasible envelope.")
    Term.(const run $ topo_arg $ loads_arg $ seed_arg)

(* Shared plumbing for the two static-analysis commands. Exit codes:
   0 clean, 1 unallowlisted findings or stale allowlist entries, 2 on
   usage/parse errors. *)
let analysis_cmd ~name ~doc ~make_report =
  let module Report = Mdr_analysis.Report in
  let module Source_walk = Mdr_analysis.Source_walk in
  let json_arg =
    let doc = "Emit the machine-readable JSON report." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let sarif_arg =
    let doc = "Also write a SARIF 2.1.0 report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)
  in
  let root_arg =
    let doc = "Repo root (default: nearest ancestor with dune-project)." in
    Arg.(value & opt (some string) None & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let run json sarif root =
    match
      match root with
      | Some r -> Some r
      | None -> Source_walk.find_root (Sys.getcwd ())
    with
    | None ->
      Printf.eprintf "%s: cannot find the repo root (no dune-project upward of cwd)\n"
        name;
      2
    | Some root -> (
      try
        let report : Report.t = make_report ~root in
        Option.iter
          (fun f ->
            let oc = open_out f in
            output_string oc (Report.to_sarif report);
            close_out oc)
          sarif;
        print_string (if json then Report.to_json report else Report.render report);
        if Report.clean report then 0 else 1
      with Source_walk.Parse_failure { file; message } ->
        Printf.eprintf "%s: cannot parse %s: %s\n" name file message;
        2)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ json_arg $ sarif_arg $ root_arg)

let lint_cmd =
  (* Per-file static analysis over the repo's own sources: float
     equality, nondeterministic Hashtbl iteration in protocol code,
     catch-all handlers, Obj.magic, stdout printing in libraries. *)
  let module Lint = Mdr_analysis.Lint_rules in
  analysis_cmd ~name:"lint"
    ~doc:
      "Run the per-file static-analysis rules over lib/, bin/, examples/ and \
       test/."
    ~make_report:(fun ~root -> Lint.to_report (Lint.run ~root ()))

let check_cmd =
  (* Whole-program effect analysis: domain-race lint on Pool task
     closures, determinism taint into fingerprint/digest/encode sinks,
     crash-safety of the server journal/snapshot write paths. *)
  let module Check = Mdr_analysis.Check_rules in
  analysis_cmd ~name:"check"
    ~doc:
      "Run the whole-program effect rules: domain races in Pool tasks, \
       determinism taint into fingerprints, crash-safety of server write \
       paths."
    ~make_report:(fun ~root -> Check.run ~root ())

let verify_cmd =
  (* Model checking + determinism sanitizing: enumerate all MPDA
     message interleavings on the bundled small topologies, then run
     the seeded pipelines twice and compare trace hashes. *)
  let module Interleave = Mdr_analysis.Interleave in
  let module Determinism = Mdr_analysis.Determinism in
  let max_states_arg =
    let doc = "Per-scenario state cap for the interleaving checker." in
    Arg.(value & opt int 30_000 & info [ "max-states" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the determinism checks." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let skip_det_arg =
    let doc = "Skip the determinism sanitizer (interleaving checker only)." in
    Arg.(value & flag & info [ "no-determinism" ] ~doc)
  in
  let run max_states seed skip_det =
    print_endline "interleaving checker (all orderings of in-flight MPDA messages):";
    let scenarios = Interleave.bundled ~max_states () in
    let stats = Interleave.explore_all scenarios in
    List.iter (fun st -> print_endline ("  " ^ Interleave.render_stats st)) stats;
    let total = List.fold_left (fun acc st -> acc + st.Interleave.states) 0 stats in
    Printf.printf "  total: %d states\n" total;
    List.iter2
      (fun sc st ->
        match st.Interleave.violation with
        | Some v -> print_string (Interleave.render_trace sc.Interleave.topo v)
        | None -> ())
      scenarios stats;
    let interleave_ok =
      List.for_all (fun st -> st.Interleave.violation = None) stats
    in
    let det_ok =
      if skip_det then true
      else begin
        print_endline "\ndeterminism sanitizer (double-run trace hashes):";
        let outcomes = Determinism.run_all ~seed () in
        List.iter (fun o -> print_endline ("  " ^ Determinism.render o)) outcomes;
        Determinism.all_deterministic outcomes
      end
    in
    Printf.printf "\nverify: %s\n"
      (if interleave_ok && det_ok then "PASS" else "FAIL");
    exit_of_ok (interleave_ok && det_ok)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Model-check MPDA message interleavings and sanitize experiment determinism.")
    Term.(const run $ max_states_arg $ seed_arg $ skip_det_arg)

let perfbench_cmd =
  (* Parallel-speedup benchmark: run the chaos-campaign grid and the
     interleaving sweep once sequentially and once over a domain pool,
     assert the trace digests match, and emit BENCH_perf.json. Digest
     equality is the gate — bit-identical results at any job count;
     the speedup itself is recorded, not gated, because it depends on
     how many cores the machine actually has. *)
  let module Campaign = Mdr_faults.Campaign in
  let module Interleave = Mdr_analysis.Interleave in
  let module Pool = Mdr_util.Pool in
  let quick_arg =
    let doc = "Small preset (6 scenarios, 8 s churn, 4000-state cap) for CI." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let jobs_arg =
    let doc = "Domains for the parallel runs (default: MDR_JOBS, at least 2)." in
    Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Master seed for the chaos campaign." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let out_arg =
    let doc = "Where to write the JSON report." in
    Arg.(value & opt string "BENCH_perf.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run quick jobs seed out =
    if jobs < 0 then begin
      prerr_endline "perfbench: --jobs must be >= 1";
      2
    end
    else begin
      let jobs = if jobs > 0 then jobs else Stdlib.max 2 (Pool.default_jobs ()) in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let scenarios = if quick then 6 else 24 in
      let duration = if quick then 8.0 else 20.0 in
      let max_states = if quick then 4_000 else 30_000 in
      let profile = { Campaign.default_profile with Campaign.duration } in
      let campaign j () =
        Campaign.run_campaign ~jobs:j ~profile ~topo_of:rotating_topo ~seed
          ~scenarios ()
      in
      let iscens = Interleave.bundled ~max_states () in
      let sweep j () = Interleave.explore_all ~jobs:j iscens in
      let idigest stats =
        Digest.to_hex
          (Digest.string
             (String.concat "\n" (List.map Interleave.render_stats stats)))
      in
      Printf.printf
        "perfbench: %d chaos scenarios x {MPDA, DV} (%.0f s churn) + %d \
         interleave scenarios (cap %d); 1 vs %d domains\n\n"
        scenarios duration (List.length iscens) max_states jobs;
      let c_seq, ct_seq = time (campaign 1) in
      let c_par, ct_par = time (campaign jobs) in
      let i_seq, it_seq = time (sweep 1) in
      let i_par, it_par = time (sweep jobs) in
      let rows =
        [
          ("chaos-campaign", ct_seq, ct_par, Campaign.digest c_seq,
           Campaign.digest c_par);
          ("interleave-sweep", it_seq, it_par, idigest i_seq, idigest i_par);
        ]
      in
      List.iter
        (fun (name, ts, tp, ds, dp) ->
          Printf.printf
            "  %-17s seq %7.2f s  %d-domain %7.2f s  speedup x%.2f  md5 %s [%s]\n"
            name ts jobs tp (ts /. tp) ds
            (if String.equal ds dp then "match" else "MISMATCH: " ^ dp))
        rows;
      let json_row (name, ts, tp, ds, dp) =
        Printf.sprintf
          "    {\"workload\": %S, \"sequential_s\": %.6f, \"parallel_s\": %.6f, \
           \"speedup\": %.4f, \"md5_sequential\": %S, \"md5_parallel\": %S, \
           \"identical\": %b}"
          name ts tp (ts /. tp) ds dp (String.equal ds dp)
      in
      let oc = open_out out in
      Printf.fprintf oc
        "{\n  \"benchmark\": \"perf-parallel\",\n  \"jobs\": %d,\n  \
         \"quick\": %b,\n  \"seed\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
        jobs quick seed
        (String.concat ",\n" (List.map json_row rows));
      close_out oc;
      Printf.printf "\nwrote %s\n" out;
      let ok =
        List.for_all (fun (_, _, _, ds, dp) -> String.equal ds dp) rows
      in
      Printf.printf "\nperfbench: %s\n"
        (if ok then "PASS (parallel digests match sequential)"
         else "FAIL (parallel trace diverged from sequential)");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "perfbench"
       ~doc:
         "Time sequential vs multi-domain execution and assert bit-identical \
          traces.")
    Term.(const run $ quick_arg $ jobs_arg $ seed_arg $ out_arg)

(* ---- internet-scale SPF benchmark --------------------------------- *)

(* One benchmark cell = (generator, target size, seed). The row keeps
   the correctness fields (bit-equality vs full Dijkstra, convergence
   exactness, message counts) separate from the timings so that a
   Pool-parallel rerun — which must not read the wall clock inside a
   task — can reproduce the sequential correctness digest bit for
   bit. *)
type scale_row = {
  sr_gen : string;
  sr_target : int;
  sr_n : int;  (* actual node count (hierarchical rounds down) *)
  sr_seed : int;
  sr_changes : int;
  sr_incr_s : float;  (* summed per-LSU incremental repair time *)
  sr_full_s : float;  (* summed per-LSU from-scratch Dijkstra time *)
  sr_repairs : int;
  sr_fallbacks : int;
  sr_equal : bool;  (* every repair bit-identical to full recompute *)
  (* (messages, seconds, exact, reconverge messages, spf repairs) *)
  sr_conv : (int * float * bool * int * int) option;
  sr_digest : string;  (* md5 over the correctness fields only *)
}

let scale_cmd =
  (* Per-LSU incremental-repair cost vs from-scratch Dijkstra on
     BA / Waxman / hierarchical topologies up to 10k nodes, plus full
     MPDA convergence (message counts, exact distance check) on the
     sizes where n from-scratch Dijkstras per check are still cheap.
     Every repair is bit-compared against a full recompute; the
     Pool-parallel rerun must reproduce the sequential digest. *)
  let module Pool = Mdr_util.Pool in
  let module Rng = Mdr_util.Rng in
  let module Graph = Mdr_topology.Graph in
  let module Generators = Mdr_topology.Generators in
  let module Topo_table = Mdr_routing.Topo_table in
  let module Dijkstra = Mdr_routing.Dijkstra in
  let module Incr_spf = Mdr_routing.Incr_spf in
  let module Syncnet = Mdr_routing.Syncnet in
  (* Dyadic cost grid (multiples of 0.25 in [0.25, 8]): distinct path
     costs are exactly equal or well separated, so the incremental
     equivalence contract applies with no tolerance caveats. *)
  let draw_cost rng = 0.25 *. float_of_int (1 + Rng.int rng ~bound:32) in
  let make_topo gen n rng =
    match gen with
    | "ba" -> Generators.barabasi_albert ~rng ~n ~m:2 ()
    | "waxman" ->
        (* Shrink the reach radius with n to keep mean degree ~7
           instead of letting density grow linearly with n. *)
        let alpha = Float.sqrt (1.5 /. float_of_int n) in
        Generators.waxman ~rng ~n ~alpha ()
    | "hier" ->
        let b = int_of_float (Float.sqrt (float_of_int n)) in
        let areas = Stdlib.max 1 ((n - b) / b) in
        Generators.hierarchical ~rng ~areas ~area_size:b ~backbone:b ()
    | _ -> invalid_arg "scale: unknown generator"
  in
  (* [now] is the only impurity: Unix.gettimeofday sequentially, a
     constant inside pool tasks, so timing never leaks into the digest
     and the parallel pass stays wall-clock-free. *)
  let run_cell ~now ~conv_max (gen, target, seed, index) =
    let rng = Rng.substream ~seed ~index in
    let topo = make_topo gen target rng in
    let n = Graph.node_count topo in
    let costs = Hashtbl.create (4 * n) in
    let table = Topo_table.create () in
    List.iter
      (fun (l : Graph.link) ->
        let c = draw_cost rng in
        Hashtbl.replace costs (l.Graph.src, l.Graph.dst) c;
        Topo_table.set table ~head:l.Graph.src ~tail:l.Graph.dst ~cost:c)
      (Graph.links topo);
    let conv_table = Topo_table.copy table in
    let links = Array.of_list (Graph.links topo) in
    let redraw rng cur =
      let c = ref (draw_cost rng) in
      while Float.equal !c cur do c := draw_cost rng done;
      !c
    in
    (* Engine bench: k single-link cost changes, each repaired
       incrementally and cross-checked against a from-scratch run. *)
    let k = if target >= 5000 then 20 else 50 in
    let iws = Incr_spf.workspace () in
    let st = Incr_spf.create ~n ~root:0 in
    Incr_spf.full iws st table;
    (* Warm both CSR views: the router builds them once per topology
       and cost-only changes patch them in place, so view construction
       is setup cost, not per-LSU cost. *)
    ignore (Topo_table.csr table ~n);
    ignore (Topo_table.csr_in table ~n);
    let dws = Dijkstra.workspace () in
    let sdist = Array.make n infinity and sparent = Array.make n (-1) in
    let incr_s = ref 0.0 and full_s = ref 0.0 in
    let equal = ref true in
    for _i = 1 to k do
      let l = links.(Rng.int rng ~bound:(Array.length links)) in
      let head = l.Graph.src and tail = l.Graph.dst in
      let cur =
        match Topo_table.cost table ~head ~tail with
        | Some c -> c
        | None -> infinity
      in
      let cost = redraw rng cur in
      Topo_table.set table ~head ~tail ~cost;
      let t0 = now () in
      (match
         Incr_spf.update iws st table
           ~changes:[ { Topo_table.head; tail; cost } ]
       with
      | Incr_spf.Repaired _ | Incr_spf.Recomputed -> ());
      incr_s := !incr_s +. (now () -. t0);
      let t1 = now () in
      Dijkstra.on_table_into dws ~n ~root:0 ~dist:sdist ~parent:sparent table;
      full_s := !full_s +. (now () -. t1);
      for j = 0 to n - 1 do
        if
          (not (Float.equal st.Incr_spf.dist.(j) sdist.(j)))
          || st.Incr_spf.parent.(j) <> sparent.(j)
        then equal := false
      done
    done;
    let s = Incr_spf.stats iws in
    (* Convergence bench: bring up a full MPDA network, pump to
       quiescence, check every router's distances exactly, then
       reconverge after one link-cost change. *)
    let conv =
      if n > conv_max then None
      else begin
        let cost_fn (l : Graph.link) =
          Hashtbl.find costs (l.Graph.src, l.Graph.dst)
        in
        let t0 = now () in
        let net = Syncnet.create ~topo ~cost:cost_fn () in
        let completed = Syncnet.run ~max_messages:5_000_000 net in
        let secs = now () -. t0 in
        let msgs = Syncnet.messages_delivered net in
        let exact0 =
          completed && Syncnet.quiescent net
          && Syncnet.check_distances net conv_table
        in
        let l = links.(Rng.int rng ~bound:(Array.length links)) in
        let head = l.Graph.src and tail = l.Graph.dst in
        let c = redraw rng (Hashtbl.find costs (head, tail)) in
        Hashtbl.replace costs (head, tail) c;
        Topo_table.set conv_table ~head ~tail ~cost:c;
        Syncnet.change_link_cost net ~src:head ~dst:tail ~cost:c;
        let completed2 = Syncnet.run ~max_messages:5_000_000 net in
        let reconv = Syncnet.messages_delivered net - msgs in
        let exact =
          exact0 && completed2 && Syncnet.quiescent net
          && Syncnet.check_distances net conv_table
        in
        let _, conv_repairs, _ = Syncnet.spf_totals net in
        Some (msgs, secs, exact, reconv, conv_repairs)
      end
    in
    let digest =
      let b = Buffer.create (32 * n) in
      Printf.bprintf b "%s/%d/%d k=%d rep=%d fb=%d eq=%b|" gen n seed k
        s.Incr_spf.repairs s.Incr_spf.fallbacks !equal;
      for j = 0 to n - 1 do
        Printf.bprintf b "%h,%d;" st.Incr_spf.dist.(j) st.Incr_spf.parent.(j)
      done;
      (match conv with
      | None -> Buffer.add_string b "|noconv"
      | Some (m, _, ex, rc, rp) ->
          Printf.bprintf b "|conv=%d,%b,%d,%d" m ex rc rp);
      Digest.to_hex (Digest.string (Buffer.contents b))
    in
    {
      sr_gen = gen;
      sr_target = target;
      sr_n = n;
      sr_seed = seed;
      sr_changes = k;
      sr_incr_s = !incr_s;
      sr_full_s = !full_s;
      sr_repairs = s.Incr_spf.repairs;
      sr_fallbacks = s.Incr_spf.fallbacks;
      sr_equal = !equal;
      sr_conv = conv;
      sr_digest = digest;
    }
  in
  let quick_arg =
    let doc = "Small preset (n in {100, 1000}) for CI." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let jobs_arg =
    let doc = "Domains for the parallel digest-gate rerun." in
    Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let conv_max_arg =
    let doc =
      "Run the MPDA convergence bench only on cells with at most $(docv) \
       routers (the exact check costs n from-scratch Dijkstras)."
    in
    Arg.(value & opt int 1000 & info [ "conv-max" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Where to write the JSON report." in
    Arg.(value & opt string "BENCH_perf.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let perfbench_arg =
    let doc =
      "Embed a previously written $(b,perfbench) JSON report into the output \
       file, so one artifact carries both benchmark suites."
    in
    Arg.(value & opt (some string) None & info [ "perfbench" ] ~docv:"FILE" ~doc)
  in
  let run quick jobs seeds conv_max out perfbench_file =
    if jobs < 0 then begin
      prerr_endline "scale: --jobs must be >= 1";
      2
    end
    else begin
      let jobs = if jobs > 0 then jobs else Stdlib.max 2 (Pool.default_jobs ()) in
      let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 5000; 10000 ] in
      let gens = [ "ba"; "waxman"; "hier" ] in
      let cells =
        List.concat_map (fun g -> List.map (fun n -> (g, n)) sizes) gens
      in
      let tasks =
        Array.of_list
          (List.concat_map
             (fun seed ->
               List.mapi (fun i (g, n) -> (g, n, seed, i)) cells)
             seeds)
      in
      Printf.printf
        "scale: %d cells (%s x n in {%s}) x %d seed(s); conv bench at n <= %d\n\n"
        (Array.length tasks)
        (String.concat ", " gens)
        (String.concat ", " (List.map string_of_int sizes))
        (List.length seeds) conv_max;
      (* Timed sequential pass: the only place the wall clock is read.
         Rows print as they land — the big cells take a while. *)
      let rows =
        Array.map
          (fun c ->
            let r = run_cell ~now:Unix.gettimeofday ~conv_max c in
            let per_incr = r.sr_incr_s /. float_of_int r.sr_changes *. 1e6 in
            let per_full = r.sr_full_s /. float_of_int r.sr_changes *. 1e6 in
            Printf.printf
              "  %-6s n=%5d seed=%d  per-LSU incr %9.1f us  full %9.1f us  \
               speedup x%7.1f  rep/fb %3d/%d  [%s]\n%!"
              r.sr_gen r.sr_n r.sr_seed per_incr per_full
              (per_full /. per_incr) r.sr_repairs r.sr_fallbacks
              (if r.sr_equal then "exact" else "MISMATCH");
            (match r.sr_conv with
            | None -> ()
            | Some (m, s, ex, rc, rp) ->
                Printf.printf
                  "         converge %7d msgs %6.2f s  reconverge %5d msgs  \
                   %d repairs  [%s]\n%!"
                  m s rc rp
                  (if ex then "exact" else "NOT CONVERGED"));
            r)
          tasks
      in
      (* Pure parallel rerun: same cells over a domain pool, constant
         clock, digest equality gates determinism across domains. *)
      let digest_of rs =
        Digest.to_hex
          (Digest.string
             (String.concat "\n" (List.map (fun r -> r.sr_digest) rs)))
      in
      let md5_seq = digest_of (Array.to_list rows) in
      let par =
        Pool.map_array ~jobs
          (fun c -> run_cell ~now:(fun () -> 0.0) ~conv_max c)
          tasks
      in
      let md5_par = digest_of (Array.to_list par) in
      let identical = String.equal md5_seq md5_par in
      Printf.printf "\n  digest seq %s  %d-domain %s [%s]\n" md5_seq jobs
        md5_par
        (if identical then "match" else "MISMATCH");
      (* The acceptance gate: at n >= 5000 a single-link change must
         repair at least 5x faster than recomputing from scratch. *)
      let big = Array.to_list rows |> List.filter (fun r -> r.sr_target >= 5000) in
      let speedup_ok =
        List.for_all
          (fun r -> r.sr_incr_s > 0.0 && r.sr_full_s /. r.sr_incr_s >= 5.0)
          big
      in
      if big <> [] then
        Printf.printf "  n>=5000 speedup gate (>= x5 per LSU): %s\n"
          (if speedup_ok then "PASS" else "FAIL");
      let all_equal = Array.for_all (fun r -> r.sr_equal) rows in
      let all_conv =
        Array.for_all
          (fun r -> match r.sr_conv with Some (_, _, ex, _, _) -> ex | None -> true)
          rows
      in
      let json_row r =
        let conv_json =
          match r.sr_conv with
          | None -> "null"
          | Some (m, s, ex, rc, rp) ->
              Printf.sprintf
                "{\"messages\": %d, \"seconds\": %.6f, \"exact\": %b, \
                 \"reconverge_messages\": %d, \"spf_repairs\": %d}"
                m s ex rc rp
        in
        let per_incr = r.sr_incr_s /. float_of_int r.sr_changes *. 1e6 in
        let per_full = r.sr_full_s /. float_of_int r.sr_changes *. 1e6 in
        Printf.sprintf
          "    {\"gen\": %S, \"n\": %d, \"seed\": %d, \"changes\": %d, \
           \"per_lsu_incr_us\": %.3f, \"per_lsu_full_us\": %.3f, \
           \"speedup\": %.2f, \"repairs\": %d, \"fallbacks\": %d, \
           \"engine_equal\": %b, \"convergence\": %s}"
          r.sr_gen r.sr_n r.sr_seed r.sr_changes per_incr per_full
          (per_full /. per_incr) r.sr_repairs r.sr_fallbacks r.sr_equal
          conv_json
      in
      let perfbench_json =
        match perfbench_file with
        | None -> "null"
        | Some f ->
            let ic = open_in f in
            let len = in_channel_length ic in
            let s = really_input_string ic len in
            close_in ic;
            String.trim s
      in
      let oc = open_out out in
      Printf.fprintf oc
        "{\n  \"benchmark\": \"scaling-spf\",\n  \"jobs\": %d,\n  \
         \"quick\": %b,\n  \"seeds\": [%s],\n  \"md5_sequential\": %S,\n  \
         \"md5_parallel\": %S,\n  \"identical\": %b,\n  \"rows\": [\n%s\n  \
         ],\n  \"perfbench\": %s\n}\n"
        jobs quick
        (String.concat ", " (List.map string_of_int seeds))
        md5_seq md5_par identical
        (String.concat ",\n" (Array.to_list (Array.map json_row rows)))
        perfbench_json;
      close_out oc;
      Printf.printf "\nwrote %s\n" out;
      let ok = all_equal && all_conv && identical && speedup_ok in
      Printf.printf "\nscale: %s\n"
        (if ok then
           "PASS (repairs bit-identical, convergence exact, domains agree)"
         else "FAIL");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Benchmark incremental vs full SPF and MPDA convergence on \
          internet-like topologies up to 10k nodes.")
    Term.(
      const run $ quick_arg $ jobs_arg $ seeds_arg $ conv_max_arg $ out_arg
      $ perfbench_arg)

(* ---- the route-server daemon and its crash-recovery audit ---------- *)

module Server = Mdr_server.Server
module Server_audit = Mdr_server.Audit
module Procfault = Mdr_faults.Procfault

let named_topo = function
  | "cairn" -> Mdr_topology.Cairn.topology ()
  | "net1" -> Mdr_topology.Net1.topology ()
  | path -> Mdr_topology.Parser.topology_of_file path

let server_update = function
  | Procfault.Cost_change { src; dst; cost } ->
      Mdr_server.Update.Set_cost { src; dst; cost }
  | Procfault.Fail { a; b } -> Mdr_server.Update.Link_down { a; b }
  | Procfault.Restore { a; b; cost } -> Mdr_server.Update.Link_up { a; b; cost }

let serve_topo_arg =
  let doc = "Topology: cairn, net1, or a file path." in
  Arg.(value & opt string "cairn" & info [ "topo" ] ~docv:"TOPOLOGY" ~doc)

let describe_alarm = function
  | Server.Stale { age; budget } ->
      Printf.sprintf "stale %.1f s (budget %.1f s)" age budget
  | Server.Replay_lag { records; budget } ->
      Printf.sprintf "replay lag %d records (budget %d)" records budget
  | Server.Shedding { shed } -> Printf.sprintf "shed %d updates" shed
  | Server.Survived_corruption { torn_tails; snapshot_fallbacks } ->
      Printf.sprintf "survived corruption (%d torn journal tails, %d snapshot fallbacks)"
        torn_tails snapshot_fallbacks

(* ---- the wire front end: live daemon, client, chaos audit --------- *)

module Wire_transport = Mdr_wire.Transport
module Wire_server = Mdr_wire.Wire_server
module Wire_client = Mdr_wire.Client
module Wire_audit = Mdr_wire.Wire_audit

let describe_wire_alarm = function
  | Wire_server.Core a -> describe_alarm a
  | Wire_server.Dead_session { id; idle } ->
      Printf.sprintf "session %d reaped after %.1f s idle" id idle
  | Wire_server.Malformed_frames { frames } ->
      Printf.sprintf "%d corrupt frame stream(s) dropped" frames
  | Wire_server.Quarantined { client; strikes } ->
      Printf.sprintf "client %d quarantined after %d strikes" client strikes

let parse_wire_addr spec =
  let malformed = Error "ADDR must be unix:PATH or tcp:HOST:PORT" in
  match String.index_opt spec ':' with
  | None -> malformed
  | Some i -> (
      let scheme = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match scheme with
      | "unix" ->
          if String.equal rest "" then Error "unix:PATH needs a path"
          else Ok (Unix.ADDR_UNIX rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp needs HOST:PORT"
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 -> (
                  match Unix.inet_addr_of_string host with
                  | a -> Ok (Unix.ADDR_INET (a, p))
                  | exception Failure _ -> (
                      match (Unix.gethostbyname host).Unix.h_addr_list with
                      | [||] -> Error (Printf.sprintf "cannot resolve host %S" host)
                      | addrs -> Ok (Unix.ADDR_INET (addrs.(0), p))
                      | exception Not_found ->
                          Error (Printf.sprintf "cannot resolve host %S" host)))
              | _ -> Error (Printf.sprintf "bad port %S" port)))
      | _ -> malformed)

(* Atomic metrics exposition: write the whole page to a temp file in
   the target's directory, then rename over it, so a scraper never
   reads a torn page. *)
let write_metrics ~path text =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".metrics" ".tmp" in
  let oc = open_out tmp in
  output_string oc text;
  close_out oc;
  Sys.rename tmp path

(* The daemon accept loop: nonblocking listener, one Transport.of_fd
   per accepted connection, watchdog heartbeat roughly once a second.
   SIGTERM/SIGINT request a graceful shutdown: stop accepting, send
   Shutdown to every live session, and return so the caller can flush
   the journal and write the final snapshot. Returns the wire stats
   and the logical time at shutdown. *)
let listen_loop srv ~addr ~once ~max_seconds ~metrics =
  let wsrv = Wire_server.create srv in
  let sig_stop = ref false in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> sig_stop := true))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> sig_stop := true))
  in
  let lsock =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
  in
  (match addr with
  | Unix.ADDR_UNIX path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock addr;
  Unix.listen lsock 16;
  Unix.set_nonblock lsock;
  (match Unix.getsockname lsock with
  | Unix.ADDR_UNIX p -> Printf.printf "listening on unix:%s\n%!" p
  | Unix.ADDR_INET (a, p) ->
      Printf.printf "listening on tcp:%s:%d\n%!" (Unix.string_of_inet_addr a) p);
  let t0 = Unix.gettimeofday () in
  let last_beat = ref 0.0 in
  let now = ref 0.0 in
  let stop = ref false in
  while not !stop do
    now := Unix.gettimeofday () -. t0;
    (match Unix.accept ~cloexec:true lsock with
    | fd, _ -> (
        match Wire_server.attach wsrv ~now:!now (Wire_transport.of_fd fd) with
        | Some id -> Printf.printf "session %d connected\n%!" id
        | None -> Printf.printf "session rejected (table full)\n%!")
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ());
    ignore (Wire_server.step wsrv ~now:!now);
    if !now -. !last_beat >= 1.0 then begin
      last_beat := !now;
      List.iter
        (fun a -> Printf.printf "  alarm: %s\n%!" (describe_wire_alarm a))
        (Wire_server.heartbeat wsrv ~now:!now);
      match metrics with
      | Some path -> write_metrics ~path (Wire_server.metrics wsrv ~now:!now)
      | None -> ()
    end;
    if once
       && (Wire_server.stats wsrv).Wire_server.opened > 0
       && Wire_server.sessions wsrv = 0
    then stop := true;
    if max_seconds > 0.0 && !now >= max_seconds then stop := true;
    if !sig_stop then stop := true;
    if not !stop then
      try Unix.sleepf 0.002 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if !sig_stop then begin
    let said_bye = Wire_server.shutdown wsrv ~now:!now in
    Printf.printf "signal: shutting down, told %d session(s) goodbye\n%!"
      said_bye
  end;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  (match metrics with
  | Some path -> write_metrics ~path (Wire_server.metrics wsrv ~now:!now)
  | None -> ());
  Unix.close lsock;
  (match addr with
  | Unix.ADDR_UNIX path -> ( try Sys.remove path with Sys_error _ -> ())
  | _ -> ());
  (Wire_server.stats wsrv, !now)

let serve_cmd =
  let dir_arg =
    let doc = "State directory (journal + snapshot)." in
    Arg.(value & opt string "mdr-server" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let resume_arg =
    let doc = "Restore from $(b,--dir) (snapshot + journal replay) instead \
               of starting fresh." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let updates_arg =
    let doc = "Ingest this many seeded updates through the backpressure \
               queue, then shut down cleanly." in
    Arg.(value & opt int 40 & info [ "updates" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the update stream." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let snap_arg =
    let doc = "Snapshot every $(docv) applied updates (0 = only at \
               shutdown)." in
    Arg.(value & opt int 16 & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Ingest queue capacity." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let routes_arg =
    let doc = "After shutdown, print routes and flow splits from node \
               $(docv) (a router name or index)." in
    Arg.(value & opt (some string) None & info [ "routes" ] ~docv:"SRC" ~doc)
  in
  let listen_arg =
    let doc = "Serve the framed wire protocol on $(docv) (unix:PATH or \
               tcp:HOST:PORT) instead of replaying a seeded stream; \
               clients connect with $(b,mdrsim wire-client)." in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let once_arg =
    let doc = "With $(b,--listen): shut down cleanly once at least one \
               session has come and gone." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let max_seconds_arg =
    let doc = "With $(b,--listen): hard wall-clock cap on the daemon \
               (0 = run until $(b,--once) fires or the process is killed)." in
    Arg.(value & opt float 0.0 & info [ "max-seconds" ] ~docv:"S" ~doc)
  in
  let metrics_arg =
    let doc = "With $(b,--listen): write a Prometheus-style text \
               exposition of the daemon's counters to $(docv) on every \
               heartbeat (atomic tmp+rename)." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let run topo_name dir resume updates seed snapshot_every queue routes_from
      listen once max_seconds metrics =
    let addr =
      match listen with
      | None -> Ok None
      | Some spec -> Result.map Option.some (parse_wire_addr spec)
    in
    match addr with
    | Error msg ->
        prerr_endline ("serve: " ^ msg);
        2
    | Ok _
      when updates < 0 || snapshot_every < 0 || queue < 1
           || (not (Float.is_finite max_seconds))
           || max_seconds < 0.0 ->
        prerr_endline
          "serve: --updates/--snapshot-every/--max-seconds must be >= 0, \
           --queue >= 1";
        2
    | Ok addr -> begin
      let topo = named_topo topo_name in
      let cost = Procfault.default_base_cost in
      let config =
        { Server.default_config with snapshot_every; queue_capacity = queue }
      in
      let srv =
        if resume then Server.restore ~config ~now:0.0 ~dir ~topo ~cost ()
        else Server.create ~config ~dir ~topo ~cost ()
      in
      (match (Server.health srv ~now:0.0).Server.last_restore with
      | Some info ->
          Printf.printf
            "restored from %s: seq %d, %d journal records replayed%s, %.1f ms\n"
            (if info.Server.from_snapshot then "snapshot" else "genesis")
            (Server.seq srv) info.Server.replayed
            (if info.Server.torn_skipped then ", torn tail skipped" else "")
            (info.Server.duration *. 1e3)
      | None -> Printf.printf "fresh server: seq 0\n");
      let wire_stats =
        match addr with
        | Some addr ->
            let stats, _shutdown =
              listen_loop srv ~addr ~once ~max_seconds ~metrics
            in
            Some stats
        | None ->
            let stream =
              Procfault.stream
                ~rng:(Mdr_util.Rng.create ~seed)
                ~topo ~updates ()
            in
            List.iteri
              (fun i u ->
                let now = float_of_int (i + 1) in
                Server.offer srv ~now (server_update u);
                ignore (Server.poll srv ~now);
                List.iter
                  (fun alarm ->
                    Printf.printf "  alarm: %s\n" (describe_alarm alarm))
                  (Server.heartbeat srv ~now:(now +. 0.5)))
              stream;
            None
      in
      let now = float_of_int (updates + 1) in
      (* drain any held-down cost updates before shutting down *)
      let guard = ref 0 in
      let now = ref now in
      let continue = ref true in
      while !continue do
        incr guard;
        if !guard > 10_000 then failwith "serve: backlog failed to drain";
        ignore (Server.poll srv ~now:!now);
        let h = Server.health srv ~now:!now in
        if h.Server.queue_depth = 0 && h.Server.pending_timers = 0 then
          continue := false
        else now := !now +. 1.0
      done;
      Server.checkpoint srv;
      let h = Server.health srv ~now:!now in
      let ok = Server.lfi_ok srv && Server.settled srv in
      (match wire_stats with
      | Some st ->
          Printf.printf
            "wire: %d sessions (%d reaped, %d closed), %d frames, %d applied, \
             %d duplicates, %d rejects, %d malformed\n\
             served to seq %d, snapshot at %d\nfingerprint %s\n"
            st.Wire_server.opened st.Wire_server.reaped st.Wire_server.closed
            st.Wire_server.frames st.Wire_server.applied
            st.Wire_server.duplicates st.Wire_server.rejects
            st.Wire_server.malformed (Server.seq srv) h.Server.snap_seq
            (Server.fingerprint srv)
      | None ->
          Printf.printf
            "served %d updates: seq %d, snapshot at %d, %d shed, %d coalesced, \
             %d absorbed\nfingerprint %s\n"
            updates (Server.seq srv) h.Server.snap_seq
            h.Server.ingest.Mdr_server.Ingest.shed
            h.Server.ingest.Mdr_server.Ingest.coalesced
            h.Server.ingest.Mdr_server.Ingest.absorbed
            (Server.fingerprint srv));
      Printf.printf "spf: %d full runs, %d incremental repairs, %d fallbacks\n"
        h.Server.spf_full_runs h.Server.spf_repairs h.Server.spf_fallbacks;
      (match routes_from with
      | None -> ()
      | Some spec ->
          let n = Mdr_topology.Graph.node_count topo in
          let src =
            match int_of_string_opt spec with
            | Some i -> i
            | None -> (
                match Mdr_topology.Graph.node_of_name topo spec with
                | i -> i
                | exception _ -> -1)
          in
          if src < 0 || src >= n then
            Printf.printf "routes: unknown node %S\n" spec
          else
            for dst = 0 to n - 1 do
              if dst <> src then begin
                let r = Server.route srv ~src ~dst in
                let split = Server.split srv ~src ~dst in
                Printf.printf "  %s -> %s: dist %.3f via [%s]\n"
                  (Mdr_topology.Graph.name topo src)
                  (Mdr_topology.Graph.name topo dst)
                  r.Server.distance
                  (String.concat "; "
                     (List.map
                        (fun (k, f) ->
                          Printf.sprintf "%s %.0f%%"
                            (Mdr_topology.Graph.name topo k)
                            (100.0 *. f))
                        split))
              end
            done);
      Server.close srv;
      Printf.printf "serve: %s\n" (if ok then "PASS (LFI clean, settled)" else "FAIL");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-safe route-server over a seeded update stream \
          (journal + snapshots under --dir), then shut down cleanly; \
          --resume restores and continues; --listen serves the framed \
          wire protocol on a Unix-domain or TCP socket instead.")
    Term.(
      const run $ serve_topo_arg $ dir_arg $ resume_arg $ updates_arg
      $ seed_arg $ snap_arg $ queue_arg $ routes_arg $ listen_arg $ once_arg
      $ max_seconds_arg $ metrics_arg)

let serve_audit_cmd =
  let dir_arg =
    let doc = "Scratch directory for the audit's server states." in
    Arg.(value & opt string "_serve_audit" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let updates_arg =
    let doc = "Updates per audit run." in
    Arg.(value & opt int 60 & info [ "updates" ] ~docv:"N" ~doc)
  in
  let kills_arg =
    let doc = "Process kills per audit run (kinds rotate between-update, \
               mid-journal, mid-snapshot)." in
    Arg.(value & opt int 6 & info [ "kills" ] ~docv:"N" ~doc)
  in
  let audit_seeds_arg =
    let doc = "Comma-separated seeds; one full chaos audit per seed." in
    Arg.(value & opt seeds_conv [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let intensities_arg =
    let doc = "Comma-separated storm intensities (cost updates offered per \
               tick) for the shed-rate bench." in
    Arg.(value & opt (list int) [ 2; 8; 32 ] & info [ "intensities" ] ~docv:"LIST" ~doc)
  in
  let budget_arg =
    let doc = "Updates the stormed server applies per tick." in
    Arg.(value & opt int 8 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Where to write the JSON report." in
    Arg.(value & opt string "BENCH_serve.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run topo_name dir updates kills seeds intensities budget out =
    if updates < kills + 2 || kills < 1 || budget < 1
       || List.exists (fun i -> i < 1) intensities
    then begin
      prerr_endline
        "serve-audit: need updates >= kills + 2, kills >= 1, budget >= 1, \
         intensities >= 1";
      2
    end
    else begin
      let topo = named_topo topo_name in
      Printf.printf
        "serve-audit: %s, %d updates, %d kills per run, seeds {%s}\n\n"
        topo_name updates kills
        (String.concat ", " (List.map string_of_int seeds));
      let audits =
        List.map
          (fun seed ->
            let d = Filename.concat dir (Printf.sprintf "audit_seed_%d" seed) in
            let r = Server_audit.run ~updates ~kills ~dir:d ~topo ~seed () in
            Printf.printf "seed %d:\n%s\n" seed (Server_audit.report r);
            (seed, r))
          seeds
      in
      let storm_seed = match seeds with s :: _ -> s | [] -> 1 in
      let storms =
        List.map
          (fun intensity ->
            let d = Filename.concat dir (Printf.sprintf "storm_%d" intensity) in
            Server_audit.storm ~intensity ~budget ~dir:d ~topo ~seed:storm_seed ())
          intensities
      in
      Printf.printf "storm (budget %d/tick):\n%s\n" budget
        (Mdr_util.Tab.render
           ~header:
             [
               "intensity"; "offered"; "applied"; "coalesced"; "shed";
               "shed rate"; "degraded ticks"; "lfi";
             ]
           (List.map
              (fun (s : Server_audit.storm_report) ->
                [
                  string_of_int s.Server_audit.intensity;
                  string_of_int s.Server_audit.offered;
                  string_of_int s.Server_audit.applied;
                  string_of_int s.Server_audit.coalesced;
                  string_of_int s.Server_audit.shed;
                  Printf.sprintf "%.3f" s.Server_audit.shed_rate;
                  string_of_int s.Server_audit.degraded_ticks;
                  (if s.Server_audit.storm_lfi_ok then "yes" else "NO");
                ])
              storms));
      let sweep =
        Server_audit.sweep_snapshot_interval
          ~dir:(Filename.concat dir "sweep")
          ~topo ~seed:storm_seed ()
      in
      Printf.printf "restore latency vs snapshot interval:\n%s\n"
        (Mdr_util.Tab.render
           ~header:[ "snapshot every"; "journal records"; "restore mean ms"; "restore max ms" ]
           (List.map
              (fun (p : Server_audit.sweep_point) ->
                [
                  (if p.Server_audit.snapshot_every = 0 then "never"
                   else string_of_int p.Server_audit.snapshot_every);
                  string_of_int p.Server_audit.journal_records;
                  Printf.sprintf "%.2f" (p.Server_audit.restore_mean_s *. 1e3);
                  Printf.sprintf "%.2f" (p.Server_audit.restore_max_s *. 1e3);
                ])
              sweep));
      let audit_json (seed, (r : Server_audit.result)) =
        let slo = r.Server_audit.restore_slo in
        Printf.sprintf
          "    {\"seed\": %d, \"ok\": %b, \"kills\": %d, \
           \"final_fingerprint_ok\": %b, \"final_lfi_ok\": %b, \
           \"restore_p50_ms\": %.3f, \"restore_p95_ms\": %.3f, \
           \"restore_max_ms\": %.3f, \"apply_per_s\": %.1f, \
           \"query_per_s\": %.1f}"
          seed (Server_audit.ok r)
          (List.length r.Server_audit.kills)
          r.Server_audit.final_fingerprint_ok r.Server_audit.final_lfi_ok
          (slo.Mdr_faults.Recovery.p50 *. 1e3)
          (slo.Mdr_faults.Recovery.p95 *. 1e3)
          (slo.Mdr_faults.Recovery.max_ *. 1e3)
          r.Server_audit.apply_per_s r.Server_audit.query_per_s
      in
      let storm_json (s : Server_audit.storm_report) =
        Printf.sprintf
          "    {\"intensity\": %d, \"budget\": %d, \"ticks\": %d, \
           \"offered\": %d, \"applied\": %d, \"coalesced\": %d, \"shed\": %d, \
           \"shed_rate\": %.4f, \"degraded_ticks\": %d, \"lfi_ok\": %b}"
          s.Server_audit.intensity s.Server_audit.budget s.Server_audit.ticks
          s.Server_audit.offered s.Server_audit.applied
          s.Server_audit.coalesced s.Server_audit.shed
          s.Server_audit.shed_rate s.Server_audit.degraded_ticks
          s.Server_audit.storm_lfi_ok
      in
      let sweep_json (p : Server_audit.sweep_point) =
        Printf.sprintf
          "    {\"snapshot_every\": %d, \"journal_records\": %d, \
           \"restore_mean_ms\": %.4f, \"restore_max_ms\": %.4f}"
          p.Server_audit.snapshot_every p.Server_audit.journal_records
          (p.Server_audit.restore_mean_s *. 1e3)
          (p.Server_audit.restore_max_s *. 1e3)
      in
      let oc = open_out out in
      Printf.fprintf oc
        "{\n  \"benchmark\": \"serve-crash-recovery\",\n  \"topology\": %S,\n  \
         \"updates\": %d,\n  \"kills\": %d,\n  \"audits\": [\n%s\n  ],\n  \
         \"storm\": [\n%s\n  ],\n  \"snapshot_sweep\": [\n%s\n  ]\n}\n"
        topo_name updates kills
        (String.concat ",\n" (List.map audit_json audits))
        (String.concat ",\n" (List.map storm_json storms))
        (String.concat ",\n" (List.map sweep_json sweep));
      close_out oc;
      Printf.printf "wrote %s\n" out;
      let ok =
        List.for_all (fun (_, r) -> Server_audit.ok r) audits
        && List.for_all
             (fun (s : Server_audit.storm_report) -> s.Server_audit.storm_lfi_ok)
             storms
      in
      Printf.printf "\nserve-audit: %s\n"
        (if ok then
           "PASS (every kill recovered fingerprint-identical, LFI clean)"
         else "FAIL (crash recovery diverged or LFI violated)");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "serve-audit"
       ~doc:
         "Crash-recovery chaos audit: kill the route-server at seeded points \
          (including mid-journal and mid-snapshot), restore, and assert \
          byte-identical state; also bench storm shedding and \
          restore-latency vs snapshot cadence into BENCH_serve.json.")
    Term.(
      const run $ serve_topo_arg $ dir_arg $ updates_arg $ kills_arg
      $ audit_seeds_arg $ intensities_arg $ budget_arg $ out_arg)

let wire_client_cmd =
  let connect_arg =
    let doc = "Server address (unix:PATH or tcp:HOST:PORT)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let updates_arg =
    let doc = "Stream this many seeded updates, then fetch the server \
               fingerprint and disconnect." in
    Arg.(value & opt int 20 & info [ "updates" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the update stream (and backoff jitter)." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let max_seconds_arg =
    let doc = "Give up after this much wall-clock time." in
    Arg.(value & opt float 60.0 & info [ "max-seconds" ] ~docv:"S" ~doc)
  in
  let client_id_arg =
    let doc = "Client identity: names this writer's durable sequence \
               space on the server, so concurrent clients (and resumed \
               ones) must each pick a distinct stable id >= 1." in
    Arg.(value & opt int 1 & info [ "client-id" ] ~docv:"ID" ~doc)
  in
  let claim_arg =
    let doc = "Claim exclusive ownership of the whole topology under a \
               fresh fencing epoch before streaming; a stale writer for \
               the same links is then fenced instead of racing us." in
    Arg.(value & flag & info [ "claim" ] ~doc)
  in
  let run topo_name connect updates seed max_seconds client_id claim =
    if updates < 1 || (not (Float.is_finite max_seconds)) || max_seconds <= 0.0
       || client_id < 1
    then begin
      prerr_endline
        "wire-client: need --updates >= 1, --max-seconds > 0, --client-id >= 1";
      2
    end
    else
      match parse_wire_addr connect with
      | Error msg ->
          prerr_endline ("wire-client: " ^ msg);
          2
      | Ok addr ->
          (* The stream must be built against the same --topo the server
             runs, or submits are rejected as referencing unknown nodes. *)
          let topo = named_topo topo_name in
          let stream =
            Array.of_list
              (List.map server_update
                 (Procfault.stream
                    ~rng:(Mdr_util.Rng.create ~seed)
                    ~topo ~updates ()))
          in
          let dial ~now:_ =
            let fd =
              Unix.socket ~cloexec:true
                (Unix.domain_of_sockaddr addr)
                Unix.SOCK_STREAM 0
            in
            match Unix.connect fd addr with
            | () -> Some (Wire_transport.of_fd fd)
            | exception
                Unix.Unix_error
                  ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT
                    | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH
                    | Unix.EAGAIN | Unix.EINTR ),
                    _,
                    _ ) ->
                Unix.close fd;
                None
          in
          let client =
            Wire_client.create ~client_id
              ?claim:(if claim then Some Mdr_wire.Proto.All else None)
              ~rng:(Mdr_util.Rng.create ~seed)
              ~dial ~updates:stream ()
          in
          let t0 = Unix.gettimeofday () in
          let timed_out = ref false in
          while (not (Wire_client.finished client)) && not !timed_out do
            let now = Unix.gettimeofday () -. t0 in
            if now > max_seconds then timed_out := true
            else begin
              Wire_client.step client ~now;
              try Unix.sleepf 0.002
              with Unix.Unix_error (Unix.EINTR, _, _) -> ()
            end
          done;
          let st = Wire_client.stats client in
          Printf.printf
            "client: %d sent (+%d retries), %d acked, %d fast-forwarded, %d \
             reconnects, %d dial failures\n"
            st.Wire_client.sent st.Wire_client.retries st.Wire_client.acked
            st.Wire_client.fast_forwarded st.Wire_client.reconnects
            st.Wire_client.dial_failures;
          (match Wire_client.fingerprint client with
          | Some fp -> Printf.printf "server fingerprint %s\n" fp
          | None -> ());
          let ok =
            match Wire_client.phase client with
            | Wire_client.Done -> true
            | _ -> false
          in
          (match Wire_client.phase client with
          | Wire_client.Failed msg ->
              Printf.printf "wire-client: FAIL (%s)\n" msg
          | _ ->
              Printf.printf "wire-client: %s\n"
                (if ok then "PASS (stream durable, fingerprint fetched)"
                 else "FAIL (timed out)"));
          exit_of_ok ok
  in
  Cmd.v
    (Cmd.info "wire-client"
       ~doc:
         "Stream seeded updates into a running $(b,mdrsim serve --listen) \
          daemon over the resumable wire protocol: timeouts, retries, \
          reconnects and resume are automatic.")
    Term.(
      const run $ serve_topo_arg $ connect_arg $ updates_arg $ seed_arg
      $ max_seconds_arg $ client_id_arg $ claim_arg)

let serve_wire_audit_cmd =
  let dir_arg =
    let doc = "Scratch directory for the audit's server states." in
    Arg.(
      value & opt string "_serve_wire_audit" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let updates_arg =
    let doc = "Updates per audit run." in
    Arg.(value & opt int 60 & info [ "updates" ] ~docv:"N" ~doc)
  in
  let audit_seeds_arg =
    let doc = "Comma-separated seeds; one reference-vs-chaos session per \
               (seed, intensity) cell." in
    Arg.(
      value
      & opt seeds_conv [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let intensities_arg =
    let doc = "Comma-separated chaos intensities scaling the fault-line \
               probabilities (0 = clean wire)." in
    Arg.(
      value
      & opt (list float) [ 0.5; 1.0; 2.0 ]
      & info [ "intensities" ] ~docv:"LIST" ~doc)
  in
  let out_arg =
    let doc = "Where to write the JSON report." in
    Arg.(value & opt string "BENCH_serve.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run topo_name dir updates seeds intensities out =
    if updates < 1 || seeds = [] || intensities = []
       || List.exists
            (fun i -> (not (Float.is_finite i)) || i < 0.0)
            intensities
    then begin
      prerr_endline
        "serve-wire-audit: need --updates >= 1, non-empty seeds, finite \
         intensities >= 0";
      2
    end
    else begin
      let topo = named_topo topo_name in
      Printf.printf
        "serve-wire-audit: %s, %d updates per run, seeds {%s}, intensities \
         {%s}\n\n"
        topo_name updates
        (String.concat ", " (List.map string_of_int seeds))
        (String.concat ", " (List.map (Printf.sprintf "%g") intensities));
      let results =
        Wire_audit.run_grid ~updates ~dir ~topo ~seeds ~intensities ()
      in
      print_string (Wire_audit.report results);
      let slo = Wire_audit.slo_by_intensity results in
      Printf.printf "\nreconnect SLO by intensity (pooled):\n%s"
        (Mdr_util.Tab.render
           ~header:[ "intensity"; "samples"; "p50 s"; "p95 s"; "max s" ]
           (List.map
              (fun (i, (s : Mdr_faults.Recovery.slo)) ->
                [
                  Printf.sprintf "%g" i;
                  string_of_int s.Mdr_faults.Recovery.count;
                  Printf.sprintf "%.3f" s.Mdr_faults.Recovery.p50;
                  Printf.sprintf "%.3f" s.Mdr_faults.Recovery.p95;
                  Printf.sprintf "%.3f" s.Mdr_faults.Recovery.max_;
                ])
              slo));
      let run_json (r : Wire_audit.result) =
        Printf.sprintf
          "    {\"seed\": %d, \"intensity\": %g, \"ok\": %b, \
           \"client_done\": %b, \"fingerprint_ok\": %b, \
           \"exactly_once\": %b, \"lfi_ok\": %b, \"settled\": %b, \
           \"reconnects\": %d, \"dial_failures\": %d, \"retries\": %d, \
           \"fast_forwarded\": %d, \"duplicates\": %d, \"malformed\": %d, \
           \"reaped\": %d, \"chaos_chunks\": %d, \"chaos_flips\": %d, \
           \"chaos_truncations\": %d, \"chaos_duplicates\": %d, \
           \"chaos_delays\": %d, \"chaos_stalls\": %d, \
           \"chaos_disconnects\": %d, \"reconnect_count\": %d, \
           \"reconnect_p50_s\": %.4f, \"reconnect_p95_s\": %.4f, \
           \"reconnect_max_s\": %.4f, \"wall_s\": %.2f}"
          r.Wire_audit.seed r.Wire_audit.intensity r.Wire_audit.ok
          r.Wire_audit.client_done r.Wire_audit.fingerprint_ok
          r.Wire_audit.exactly_once r.Wire_audit.lfi r.Wire_audit.settled
          r.Wire_audit.reconnects r.Wire_audit.dial_failures
          r.Wire_audit.retries r.Wire_audit.fast_forwarded
          r.Wire_audit.duplicates r.Wire_audit.malformed r.Wire_audit.reaped
          r.Wire_audit.chaos.Mdr_faults.Wirefault.chunks
          r.Wire_audit.chaos.Mdr_faults.Wirefault.flips
          r.Wire_audit.chaos.Mdr_faults.Wirefault.truncations
          r.Wire_audit.chaos.Mdr_faults.Wirefault.duplicates
          r.Wire_audit.chaos.Mdr_faults.Wirefault.delays
          r.Wire_audit.chaos.Mdr_faults.Wirefault.stalls
          r.Wire_audit.chaos.Mdr_faults.Wirefault.disconnects
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.count
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.p50
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.p95
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.max_
          r.Wire_audit.wall_s
      in
      let slo_json (i, (s : Mdr_faults.Recovery.slo)) =
        Printf.sprintf
          "    {\"intensity\": %g, \"count\": %d, \"p50_s\": %.4f, \
           \"p95_s\": %.4f, \"max_s\": %.4f}"
          i s.Mdr_faults.Recovery.count s.Mdr_faults.Recovery.p50
          s.Mdr_faults.Recovery.p95 s.Mdr_faults.Recovery.max_
      in
      let oc = open_out out in
      Printf.fprintf oc
        "{\n  \"benchmark\": \"serve-wire-chaos\",\n  \"topology\": %S,\n  \
         \"updates\": %d,\n  \"runs\": [\n%s\n  ],\n  \
         \"reconnect_slo_by_intensity\": [\n%s\n  ]\n}\n"
        topo_name updates
        (String.concat ",\n" (List.map run_json results))
        (String.concat ",\n" (List.map slo_json slo));
      close_out oc;
      Printf.printf "\nwrote %s\n" out;
      let ok = List.for_all (fun (r : Wire_audit.result) -> r.Wire_audit.ok) results in
      Printf.printf "\nserve-wire-audit: %s\n"
        (if ok then
           "PASS (every session recovered, fingerprints byte-identical, \
            exactly-once, LFI clean)"
         else "FAIL (a chaos session diverged, stalled, or violated LFI)");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "serve-wire-audit"
       ~doc:
         "Wire-chaos audit: stream seeded updates through the framed \
          protocol over fault-injected transports (flips, truncation, \
          duplication, delay, stalls, mid-frame disconnects), assert the \
          final state is byte-identical to a chaos-free reference with \
          exactly-once applies, and bench reconnect SLOs into \
          BENCH_serve.json.")
    Term.(
      const run $ serve_topo_arg $ dir_arg $ updates_arg $ audit_seeds_arg
      $ intensities_arg $ out_arg)

let serve_multi_audit_cmd =
  let dir_arg =
    let doc = "Scratch directory for the audit's server states." in
    Arg.(
      value & opt string "_serve_multi_audit" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let updates_arg =
    let doc = "Updates per client per run." in
    Arg.(value & opt int 30 & info [ "updates" ] ~docv:"N" ~doc)
  in
  let audit_seeds_arg =
    let doc = "Comma-separated seeds; one concurrent-chaos run per \
               (seed, client count) cell." in
    Arg.(
      value
      & opt seeds_conv [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let clients_arg =
    let doc = "Comma-separated concurrent writer counts (each >= 2)." in
    Arg.(
      value & opt seeds_conv [ 2; 4; 8 ] & info [ "clients" ] ~docv:"LIST" ~doc)
  in
  let intensity_arg =
    let doc = "Chaos intensity scaling the fault-line probabilities \
               (0 = clean wire)." in
    Arg.(value & opt float 1.0 & info [ "intensity" ] ~docv:"X" ~doc)
  in
  let server_kills_arg =
    let doc = "Server kills (between updates, mid journal append, mid \
               snapshot) per run." in
    Arg.(value & opt int 3 & info [ "server-kills" ] ~docv:"N" ~doc)
  in
  let client_kills_arg =
    let doc = "Client kills (fresh machine resumes through Welcome) per \
               run." in
    Arg.(value & opt int 2 & info [ "client-kills" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Where to write the JSON report." in
    Arg.(value & opt string "BENCH_serve.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run topo_name dir updates seeds clients intensity server_kills
      client_kills out =
    if updates < 1 || seeds = [] || clients = []
       || List.exists (fun c -> c < 2) clients
       || (not (Float.is_finite intensity))
       || intensity < 0.0 || server_kills < 0 || client_kills < 0
    then begin
      prerr_endline
        "serve-multi-audit: need --updates >= 1, non-empty seeds, client \
         counts >= 2, finite --intensity >= 0, kill counts >= 0";
      2
    end
    else begin
      let topo = named_topo topo_name in
      Printf.printf
        "serve-multi-audit: %s, %d updates per client, seeds {%s}, clients \
         {%s}, intensity %g\n\n"
        topo_name updates
        (String.concat ", " (List.map string_of_int seeds))
        (String.concat ", " (List.map string_of_int clients))
        intensity;
      let results =
        Wire_audit.run_multi_grid ~updates ~server_kills ~client_kills
          ~intensity ~dir ~topo ~seeds ~client_counts:clients ()
      in
      print_string (Wire_audit.report_multi results);
      let slo = Wire_audit.multi_slo_by_clients results in
      Printf.printf "\nreconnect SLO by client count (pooled per-client):\n%s"
        (Mdr_util.Tab.render
           ~header:[ "clients"; "samples"; "p50 s"; "p95 s"; "max s" ]
           (List.map
              (fun (c, (s : Mdr_faults.Recovery.slo)) ->
                [
                  string_of_int c;
                  string_of_int s.Mdr_faults.Recovery.count;
                  Printf.sprintf "%.3f" s.Mdr_faults.Recovery.p50;
                  Printf.sprintf "%.3f" s.Mdr_faults.Recovery.p95;
                  Printf.sprintf "%.3f" s.Mdr_faults.Recovery.max_;
                ])
              slo));
      let client_json (c : Wire_audit.client_report) =
        Printf.sprintf
          "{\"client\": %d, \"done\": %b, \"acked\": %d, \"resumes\": %d, \
           \"reconnects\": %d, \"dial_failures\": %d, \"retries\": %d, \
           \"fast_forwarded\": %d, \"throttled\": %d, \"shed\": %d, \
           \"reconnect_count\": %d, \"reconnect_p50_s\": %.4f, \
           \"reconnect_p95_s\": %.4f, \"reconnect_max_s\": %.4f}"
          c.Wire_audit.client c.Wire_audit.client_done c.Wire_audit.acked
          c.Wire_audit.resumes c.Wire_audit.reconnects
          c.Wire_audit.dial_failures c.Wire_audit.retries
          c.Wire_audit.fast_forwarded c.Wire_audit.throttled c.Wire_audit.shed
          c.Wire_audit.reconnect_slo.Mdr_faults.Recovery.count
          c.Wire_audit.reconnect_slo.Mdr_faults.Recovery.p50
          c.Wire_audit.reconnect_slo.Mdr_faults.Recovery.p95
          c.Wire_audit.reconnect_slo.Mdr_faults.Recovery.max_
      in
      let run_json (r : Wire_audit.multi_result) =
        Printf.sprintf
          "    {\"seed\": %d, \"clients\": %d, \"intensity\": %g, \
           \"updates_per_client\": %d, \"ok\": %b, \"all_done\": %b, \
           \"fingerprint_ok\": %b, \"replay_ok\": %b, \"exactly_once\": %b, \
           \"marks_ok\": %b, \"no_stale_applies\": %b, \"lfi_ok\": %b, \
           \"settled\": %b, \"server_kills\": %d, \"client_kills\": %d, \
           \"grants\": %d, \"fenced\": %d, \"throttled\": %d, \
           \"quarantines\": %d, \"evicted\": %d, \"duplicates\": %d, \
           \"malformed\": %d, \"reconnect_count\": %d, \
           \"reconnect_p50_s\": %.4f, \"reconnect_p95_s\": %.4f, \
           \"reconnect_max_s\": %.4f, \"wall_s\": %.2f,\n     \
           \"per_client\": [%s]}"
          r.Wire_audit.seed r.Wire_audit.clients r.Wire_audit.intensity
          r.Wire_audit.updates_per_client r.Wire_audit.ok r.Wire_audit.all_done
          r.Wire_audit.fingerprint_ok r.Wire_audit.replay_ok
          r.Wire_audit.exactly_once r.Wire_audit.marks_ok
          r.Wire_audit.no_stale_applies r.Wire_audit.lfi r.Wire_audit.settled
          r.Wire_audit.server_kills r.Wire_audit.client_kills
          r.Wire_audit.grants r.Wire_audit.fenced r.Wire_audit.throttled
          r.Wire_audit.quarantines r.Wire_audit.evicted r.Wire_audit.duplicates
          r.Wire_audit.malformed
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.count
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.p50
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.p95
          r.Wire_audit.reconnect_slo.Mdr_faults.Recovery.max_
          r.Wire_audit.wall_s
          (String.concat ", " (List.map client_json r.Wire_audit.per_client))
      in
      let slo_json (c, (s : Mdr_faults.Recovery.slo)) =
        Printf.sprintf
          "    {\"clients\": %d, \"count\": %d, \"p50_s\": %.4f, \
           \"p95_s\": %.4f, \"max_s\": %.4f}"
          c s.Mdr_faults.Recovery.count s.Mdr_faults.Recovery.p50
          s.Mdr_faults.Recovery.p95 s.Mdr_faults.Recovery.max_
      in
      let oc = open_out out in
      Printf.fprintf oc
        "{\n  \"benchmark\": \"serve-multi-chaos\",\n  \"topology\": %S,\n  \
         \"updates_per_client\": %d,\n  \"intensity\": %g,\n  \
         \"runs\": [\n%s\n  ],\n  \
         \"reconnect_slo_by_clients\": [\n%s\n  ]\n}\n"
        topo_name updates intensity
        (String.concat ",\n" (List.map run_json results))
        (String.concat ",\n" (List.map slo_json slo));
      close_out oc;
      Printf.printf "\nwrote %s\n" out;
      let ok =
        List.for_all
          (fun (r : Wire_audit.multi_result) -> r.Wire_audit.ok)
          results
      in
      Printf.printf "\nserve-multi-audit: %s\n"
        (if ok then
           "PASS (every cell byte-identical to its sequential reference, \
            exactly-once per client, zero stale-epoch applies, LFI clean)"
         else
           "FAIL (a cell diverged, lost or double-applied a client's \
            update, or let a fenced write through)");
      exit_of_ok ok
    end
  in
  Cmd.v
    (Cmd.info "serve-multi-audit"
       ~doc:
         "Concurrent-chaos audit of the multi-writer server: N seeded \
          clients claim disjoint link shares and push interleaved \
          chaos-wrapped streams while the server and clients are killed \
          and resumed at adversarial points; assert the final state is \
          byte-identical to a sequential replay of the accepted order, \
          exactly-once per client, zero stale-epoch applies, and bench \
          per-client reconnect/shed SLOs into BENCH_serve.json.")
    Term.(
      const run $ serve_topo_arg $ dir_arg $ updates_arg $ audit_seeds_arg
      $ clients_arg $ intensity_arg $ server_kills_arg $ client_kills_arg
      $ out_arg)

let dot_cmd =
  let topo_arg =
    let doc = "Topology: cairn, net1, or a file path." in
    Arg.(value & pos 0 string "cairn" & info [] ~docv:"TOPOLOGY" ~doc)
  in
  let run name =
    let module Parser = Mdr_topology.Parser in
    let g =
      match name with
      | "cairn" -> Mdr_topology.Cairn.topology ()
      | "net1" -> Mdr_topology.Net1.topology ()
      | path -> Parser.topology_of_file path
    in
    print_string (Parser.to_dot g);
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz rendering of a topology.")
    Term.(const run $ topo_arg)

let cmds =
  [
    topology_cmd;
    fig9_cmd;
    fig10_cmd;
    loaded_cmd "fig11" ~doc:"MP vs SP per-flow delays on CAIRN (packet-level)."
      ~default:1.05 Experiments.fig11_cairn_mp_vs_sp;
    loaded_cmd "fig12" ~doc:"MP vs SP per-flow delays on NET1 (packet-level)."
      ~default:1.5 Experiments.fig12_net1_mp_vs_sp;
    loaded_cmd "fig13" ~doc:"Effect of the long-term period T_l on CAIRN."
      ~default:1.1 Experiments.fig13_cairn_tl_effect;
    loaded_cmd "fig14" ~doc:"Effect of the long-term period T_l on NET1."
      ~default:1.4 Experiments.fig14_net1_tl_effect;
    loaded_cmd "dyn" ~doc:"Dynamic (bursty) traffic study on CAIRN."
      ~default:1.1 Experiments.dyn_bursty_traffic;
    simple_cmd "abl-eta" ~doc:"Ablation: OPT's global step size."
      Experiments.abl_eta_step_size;
    simple_cmd "abl-2nd" ~doc:"Ablation: second-order OPT step scaling."
      Experiments.abl_second_order;
    simple_cmd "abl-lb" ~doc:"Ablation: IH+AH vs IH-only vs SP."
      Experiments.abl_load_balancing;
    simple_cmd "abl-est" ~doc:"Ablation: marginal-delay estimators."
      (fun () -> Experiments.abl_estimators ());
    loaded_cmd "abl-ecmp" ~doc:"Ablation: unequal-cost multipath vs ECMP vs SP."
      ~default:1.15 Experiments.abl_ecmp;
    simple_cmd "failover" ~doc:"Trunk failure/recovery under live traffic."
      (fun () -> Experiments.failover ());
    simple_cmd "gen" ~doc:"MP vs SP across random topologies."
      (fun () -> Experiments.generalization ());
    scale_cmd;
    chaos_cmd;
    overload_cmd;
    serve_cmd;
    serve_audit_cmd;
    wire_client_cmd;
    serve_wire_audit_cmd;
    serve_multi_audit_cmd;
    lint_cmd;
    check_cmd;
    verify_cmd;
    perfbench_cmd;
    compare_cmd;
    routes_cmd;
    custom_cmd;
    dot_cmd;
    all_cmd;
  ]

let () =
  let info =
    Cmd.info "mdrsim" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'A Simple Approximation to Minimum-Delay Routing' (SIGCOMM 1999)."
  in
  (* Exit-code contract: 0 = clean, 1 = a finding (failed check, lint
     violation, SLO breach), 2 = usage error — both cmdliner parse
     errors (via [~term_err]) and each subcommand's own argument
     validation. A broken MDR_JOBS is a usage error too; check it
     eagerly here rather than letting [Pool.default_jobs] raise deep
     inside whichever subcommand first fans out. *)
  (match Sys.getenv_opt "MDR_JOBS" with
  | None -> ()
  | Some s -> (
      match Mdr_util.Pool.jobs_of_string s with
      | Ok _ -> ()
      | Error reason ->
          Printf.eprintf "mdrsim: MDR_JOBS: %s\n" reason;
          exit 2));
  exit (Cmd.eval' ~term_err:2 (Cmd.group info cmds))
