module Graph = Mdr_topology.Graph
module Metrics = Mdr_topology.Metrics
module Fluid = Mdr_fluid
module Gallager = Mdr_gallager.Gallager
module Controller = Mdr_core.Controller
module Sim = Mdr_netsim.Sim
module Tab = Mdr_util.Tab
module Stats = Mdr_util.Stats

type series = {
  x_label : string;
  columns : string list;
  rows : (string * float list) list;
}

type outcome = {
  title : string;
  rendered : string;
  series : series option;
  checks : (string * bool) list;
}

let csv_escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let to_csv { x_label; columns; rows } =
  let header = String.concat "," (List.map csv_escape (x_label :: columns)) in
  let row (x, values) =
    String.concat ","
      (csv_escape x :: List.map (fun v -> Printf.sprintf "%.9g" v) values)
  in
  String.concat "\n" (header :: List.map row rows) ^ "\n"

(* Build both renderings from the same data. *)
let tabular ~title ~x_label ~columns rows =
  ( Tab.series ~title ~x_label ~columns rows,
    Some { x_label; columns; rows } )

let ms v = 1000.0 *. v

(* --- Shared helpers --------------------------------------------------- *)

let fluid_opt w =
  let model = Workload.model w in
  let traffic = Workload.traffic w in
  Gallager.solve model w.Workload.topo traffic

let fluid_mp ?(rounds = 60) ?(ts_per_tl = 8) ?(damping = 0.5) w =
  let model = Workload.model w in
  let traffic = Workload.traffic w in
  Controller.run
    ~config:{ Controller.scheme = Mp; rounds; ts_per_tl; damping }
    model w.Workload.topo traffic

(* Per-flow fluid delays, in the workload's pair order (the packet
   simulator and the figures use that order; Traffic.flows sorts by
   (src, dst)). *)
let per_flow_fluid w (r : Fluid.Params.t) flows =
  let model = Workload.model w in
  let by_pair =
    Fluid.Evaluate.per_flow_delays model r flows (Workload.traffic w)
    |> List.map (fun ((f : Fluid.Traffic.flow), d) -> ((f.src, f.dst), d))
  in
  List.map (fun pair -> List.assoc pair by_pair) w.Workload.pairs

(* Packet-simulator per-flow means, averaged over seeds. Each seed's
   run owns its entire simulator state (the shared topology is never
   mutated), so the seed grid fans out on the pool; the fold below runs
   after the barrier over the seed-ordered results. *)
let sim_per_flow ?(burst = None) w cfg ~seeds =
  let flows = Workload.sim_flows ~burst w in
  let runs =
    Mdr_util.Pool.map_list
      (fun seed -> Sim.run ~config:{ cfg with Sim.seed } w.Workload.topo flows)
      seeds
  in
  let k = float_of_int (List.length seeds) in
  let per_flow =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc (r : Sim.result) -> acc +. ((List.nth r.flows i).Sim.mean_delay /. k))
          0.0 runs)
      flows
  in
  let avg =
    List.fold_left (fun acc (r : Sim.result) -> acc +. (r.avg_delay /. k)) 0.0 runs
  in
  let loops =
    List.fold_left (fun acc (r : Sim.result) -> acc + r.loop_free_violations) 0 runs
  in
  (per_flow, avg, loops)

let default_sim_cfg = { Sim.default_config with sim_time = 80.0; warmup = 20.0 }

let envelope_check ~label ~factor opt mp =
  (label, List.for_all2 (fun o m -> m <= o *. factor) opt mp)

(* --- FIG 8 ------------------------------------------------------------ *)

let describe w =
  let t = w.Workload.topo in
  let lo, hi = Metrics.degree_range t in
  Printf.sprintf "%s: %d routers, %d directed links, diameter %d, degrees %d-%d, %d flows"
    w.Workload.name (Graph.node_count t) (Graph.link_count t)
    (Metrics.diameter t) lo hi
    (List.length w.Workload.pairs)

let fig8_topologies () =
  let cairn = Workload.cairn ~load:1.0 and net1 = Workload.net1 ~load:1.0 in
  let rendered =
    String.concat "\n"
      [
        "== Figure 8: simulation topologies ==";
        describe cairn;
        describe net1;
        "";
        "CAIRN flows: "
        ^ String.concat ", "
            (List.mapi (fun i _ -> Workload.flow_label cairn i) cairn.Workload.pairs);
        "NET1 flows: "
        ^ String.concat ", "
            (List.mapi (fun i _ -> Workload.flow_label net1 i) net1.Workload.pairs);
      ]
  in
  {
    title = "Figure 8: topologies";
    rendered;
    series = None;
    checks =
      [
        ("NET1 diameter = 4", Metrics.diameter net1.Workload.topo = 4);
        ( "NET1 degrees in [3,5]",
          let lo, hi = Metrics.degree_range net1.Workload.topo in
          lo >= 3 && hi <= 5 );
        ("CAIRN connected", Metrics.is_strongly_connected cairn.Workload.topo);
      ];
  }

(* --- FIG 9 / FIG 10: OPT vs MP ---------------------------------------- *)

let opt_vs_mp w ~envelope ~figure =
  let opt = fluid_opt w in
  let mp = fluid_mp w in
  let opt_flows = per_flow_fluid w opt.Gallager.params opt.Gallager.flows in
  let mp_flows = per_flow_fluid w mp.Controller.params mp.Controller.flows in
  (* The measured counterpart: MP-TL-10-TS-2 on the packet simulator. *)
  let sim_flows, _, loops =
    sim_per_flow w { default_sim_cfg with t_l = 10.0; t_s = 2.0 } ~seeds:[ 1; 2 ]
  in
  let rows =
    List.mapi
      (fun i o ->
        ( Workload.flow_label w i,
          [
            ms o;
            ms (o *. envelope);
            ms (List.nth mp_flows i);
            ms (List.nth sim_flows i);
          ] ))
      opt_flows
  in
  let rendered, series =
    tabular
      ~title:
        (Printf.sprintf
           "Figure %s: per-flow average delays (ms), %s, load %.2f" figure
           w.Workload.name w.Workload.load)
      ~x_label:"flow"
      ~columns:
        [
          "OPT";
          Printf.sprintf "OPT+%d%%" (int_of_float ((envelope -. 1.0) *. 100.0));
          "MP(fluid)";
          "MP-TL-10-TS-2";
        ]
      rows
  in
  {
    title = Printf.sprintf "Figure %s: OPT vs MP on %s" figure w.Workload.name;
    rendered;
    series;
    checks =
      [
        envelope_check
          ~label:
            (Printf.sprintf "fluid MP within %d%% of OPT on every flow"
               (int_of_float ((envelope -. 1.0) *. 100.0)))
          ~factor:envelope opt_flows mp_flows;
        ("no loop violations in packet runs", loops = 0);
        ( "OPT lower-bounds fluid MP on average",
          Stats.mean_of_list opt_flows <= Stats.mean_of_list mp_flows *. 1.001 );
      ];
  }

let fig9_cairn_opt_vs_mp ?(load = 1.0) () =
  opt_vs_mp (Workload.cairn ~load) ~envelope:1.05 ~figure:"9"

let fig10_net1_opt_vs_mp ?(load = 1.0) () =
  opt_vs_mp (Workload.net1 ~load) ~envelope:1.08 ~figure:"10"

(* --- FIG 11 / FIG 12: MP vs SP ---------------------------------------- *)

let mp_vs_sp w ~seeds ~figure =
  let opt = fluid_opt w in
  let opt_flows = per_flow_fluid w opt.Gallager.params opt.Gallager.flows in
  let mp_slow, _, l1 =
    sim_per_flow w { default_sim_cfg with t_l = 10.0; t_s = 10.0 } ~seeds
  in
  let mp_fast, mp_avg, l2 =
    sim_per_flow w { default_sim_cfg with t_l = 10.0; t_s = 2.0 } ~seeds
  in
  let sp, sp_avg, _ =
    sim_per_flow w
      { default_sim_cfg with scheme = Sim.Sp; t_l = 10.0; t_s = 2.0 }
      ~seeds
  in
  let rows =
    List.mapi
      (fun i o ->
        ( Workload.flow_label w i,
          [
            ms o;
            ms (List.nth mp_slow i);
            ms (List.nth mp_fast i);
            ms (List.nth sp i);
            List.nth sp i /. List.nth mp_fast i;
          ] ))
      opt_flows
  in
  let ratios = List.map2 (fun s m -> s /. m) sp mp_fast in
  let max_ratio = List.fold_left Float.max 0.0 ratios in
  let rendered, series =
    tabular
      ~title:
        (Printf.sprintf
           "Figure %s: per-flow average delays (ms), %s, load %.2f, %d-seed means"
           figure w.Workload.name w.Workload.load (List.length seeds))
      ~x_label:"flow"
      ~columns:[ "OPT(fluid)"; "MP-TL-10-TS-10"; "MP-TL-10-TS-2"; "SP-TL-10"; "SP/MP" ]
      rows
  in
  {
    title = Printf.sprintf "Figure %s: MP vs SP on %s" figure w.Workload.name;
    rendered =
      rendered
      ^ Printf.sprintf "\nnetwork averages: MP %.3f ms, SP %.3f ms (x%.2f); worst flow x%.2f"
          (ms mp_avg) (ms sp_avg) (sp_avg /. mp_avg) max_ratio;
    series;
    checks =
      [
        ("SP worse than MP on average", sp_avg > mp_avg);
        ("some flow suffers >= 1.5x under SP", max_ratio >= 1.5);
        ("no loop violations", l1 + l2 = 0);
      ];
  }

let fig11_cairn_mp_vs_sp ?(load = 1.05) ?(seeds = [ 1; 2; 3 ]) () =
  mp_vs_sp (Workload.cairn ~load) ~seeds ~figure:"11"

let fig12_net1_mp_vs_sp ?(load = 1.5) ?(seeds = [ 1; 2; 3 ]) () =
  mp_vs_sp (Workload.net1 ~load) ~seeds ~figure:"12"

(* --- FIG 13 / FIG 14: the effect of T_l -------------------------------- *)

let tl_effect w ~seeds ~figure =
  let tls = [ 10.0; 20.0; 40.0 ] in
  let run scheme tl =
    let _, avg, _ =
      sim_per_flow w
        { default_sim_cfg with scheme; t_l = tl; t_s = 2.0; sim_time = 100.0; warmup = 20.0 }
        ~seeds
    in
    avg
  in
  let mp = List.map (run Sim.Mp) tls in
  let sp = List.map (run Sim.Sp) tls in
  let rows =
    List.map2
      (fun tl (m, s) -> (Printf.sprintf "TL=%.0fs" tl, [ ms m; ms s ]))
      tls
      (List.combine mp sp)
  in
  let rendered, series =
    tabular
      ~title:
        (Printf.sprintf
           "Figure %s: average delay (ms) vs long-term period, %s, load %.2f"
           figure w.Workload.name w.Workload.load)
      ~x_label:"T_l" ~columns:[ "MP-TS-2"; "SP" ] rows
  in
  let mp10 = List.nth mp 0 and mp40 = List.nth mp 2 in
  let sp10 = List.nth sp 0 in
  let sp_worst = List.fold_left Float.max 0.0 (List.tl sp) in
  {
    title = Printf.sprintf "Figure %s: T_l sensitivity on %s" figure w.Workload.name;
    rendered;
    series;
    checks =
      [
        ( "MP roughly unchanged as T_l quadruples",
          mp40 < mp10 *. 2.0 );
        ("SP degrades when T_l grows", sp_worst > sp10);
      ];
  }

let fig13_cairn_tl_effect ?(load = 1.1) ?(seeds = [ 1; 2 ]) () =
  tl_effect (Workload.cairn ~load) ~seeds ~figure:"13"

let fig14_net1_tl_effect ?(load = 1.4) ?(seeds = [ 1; 2 ]) () =
  tl_effect (Workload.net1 ~load) ~seeds ~figure:"14"

(* --- Dynamic traffic ---------------------------------------------------- *)

let dyn_bursty_traffic ?(load = 1.1) ?(seeds = [ 1; 2 ]) () =
  let w = Workload.cairn ~load in
  let periods = [ 0.5; 2.0; 8.0 ] in
  let run scheme t_s period =
    let _, avg, _ =
      sim_per_flow w ~burst:(Some (period, period))
        { default_sim_cfg with scheme; t_s }
        ~seeds
    in
    avg
  in
  let rows =
    List.map
      (fun p ->
        ( Printf.sprintf "on/off %.1fs" p,
          [
            ms (run Sim.Mp 2.0 p);
            ms (run Sim.Mp 10.0 p);
            ms (run Sim.Sp 2.0 p);
          ] ))
      periods
  in
  let mp_vals = List.map (fun (_, vs) -> List.nth vs 0) rows in
  let sp_vals = List.map (fun (_, vs) -> List.nth vs 2) rows in
  let rendered, series =
    tabular
      ~title:
        (Printf.sprintf
           "Dynamic traffic: avg delay (ms) under on-off sources, CAIRN, load %.2f"
           load)
      ~x_label:"burst period"
      ~columns:[ "MP-TS-2"; "MP-TS-10"; "SP" ]
      rows
  in
  {
    title = "Dynamic traffic: bursty sources on CAIRN";
    rendered;
    series;
    checks =
      [
        ( "MP beats SP under bursts",
          List.for_all2 (fun m s -> m < s) mp_vals sp_vals );
      ];
  }

(* --- Ablations ----------------------------------------------------------- *)

let abl_eta_step_size () =
  let w = Workload.net1 ~load:1.5 in
  let model = Workload.model w and traffic = Workload.traffic w in
  let adaptive = Gallager.solve ~eta:1.0e4 model w.Workload.topo traffic in
  let run_fixed eta =
    Gallager.solve ~eta ~adaptive:false ~max_iters:400 model w.Workload.topo traffic
  in
  let etas = [ 1.0e2; 1.0e3; 1.0e4; 1.0e5; 1.0e6 ] in
  let fixed = List.map run_fixed etas in
  let rows =
    List.map2
      (fun eta (r : Gallager.result) ->
        ( Printf.sprintf "eta=%.0e" eta,
          [ ms r.avg_delay; float_of_int r.iterations; (if r.converged then 1.0 else 0.0) ]
        ))
      etas fixed
    @ [
        ( "adaptive",
          [
            ms adaptive.avg_delay;
            float_of_int adaptive.iterations;
            (if adaptive.converged then 1.0 else 0.0);
          ] );
      ]
  in
  let best_fixed =
    List.fold_left (fun acc (r : Gallager.result) -> Float.min acc r.avg_delay)
      infinity fixed
  in
  let worst_fixed =
    List.fold_left (fun acc (r : Gallager.result) -> Float.max acc r.avg_delay)
      0.0 fixed
  in
  let rendered, series =
    tabular
      ~title:"Ablation: fixed-eta Gallager vs adaptive safeguard (NET1, load 1.5)"
      ~x_label:"step" ~columns:[ "avg delay ms"; "iterations"; "converged" ] rows
  in
  {
    title = "Ablation: OPT's global step size eta";
    rendered;
    series;
    checks =
      [
        ("adaptive matches best fixed eta", adaptive.avg_delay <= best_fixed *. 1.05);
        ("some fixed eta is much worse", worst_fixed > best_fixed *. 1.10);
      ];
  }

let abl_second_order () =
  let w = Workload.net1 ~load:1.5 in
  let model = Workload.model w and traffic = Workload.traffic w in
  let first = Gallager.solve ~eta:1.0e4 model w.Workload.topo traffic in
  let second = Gallager.solve ~second_order:true ~eta:1.0 model w.Workload.topo traffic in
  let rendered, series =
    tabular
      ~title:
        "Ablation: first-order (tuned eta = 1e4) vs second-order (eta = 1) OPT, NET1 load 1.5"
      ~x_label:"variant"
      ~columns:[ "avg delay ms"; "iterations" ]
      [
        ("first-order", [ ms first.Gallager.avg_delay; float_of_int first.Gallager.iterations ]);
        ("second-order", [ ms second.Gallager.avg_delay; float_of_int second.Gallager.iterations ]);
      ]
  in
  {
    title = "Ablation: second-order step scaling (Bertsekas-Gallager)";
    rendered;
    series;
    checks =
      [
        ( "same optimum",
          Float.abs (first.Gallager.avg_delay -. second.Gallager.avg_delay)
          /. first.Gallager.avg_delay
          < 0.01 );
        ( "second order needs fewer iterations",
          second.Gallager.iterations < first.Gallager.iterations );
      ];
  }

let abl_load_balancing () =
  let loads = [ 0.8; 1.0; 1.1; 1.2 ] in
  let run scheme ts_per_tl load =
    let w = Workload.cairn ~load in
    let r =
      Controller.run
        ~config:{ Controller.scheme; rounds = 40; ts_per_tl; damping = 0.5 }
        (Workload.model w) w.Workload.topo (Workload.traffic w)
    in
    r.Controller.avg_delay
  in
  let rows =
    List.map
      (fun load ->
        ( Printf.sprintf "load %.1f" load,
          [
            ms (run Controller.Mp 8 load);
            ms (run Controller.Mp 1 load);
            ms (run Controller.Sp 1 load);
          ] ))
      loads
  in
  let ah = List.map (fun (_, vs) -> List.nth vs 0) rows in
  let ih = List.map (fun (_, vs) -> List.nth vs 1) rows in
  let rendered, series =
    tabular
      ~title:"Ablation: fluid average delay (ms) on CAIRN"
      ~x_label:"load"
      ~columns:[ "MP (IH+AH)"; "MP (IH only)"; "SP" ]
      rows
  in
  {
    title = "Ablation: load balancing (IH+AH vs IH-only vs SP)";
    rendered;
    series;
    checks =
      [
        ( "AH never hurts",
          List.for_all2 (fun a b -> a <= b *. 1.02) ah ih );
      ];
  }

let abl_estimators ?(seeds = [ 1; 2 ]) () =
  let w = Workload.cairn ~load:1.1 in
  let run estimator =
    let _, avg, _ = sim_per_flow w { default_sim_cfg with estimator } ~seeds in
    avg
  in
  let mm1 = run Sim.Mm1 in
  let busy = run Sim.Busy_period in
  let sojourn = run Sim.Sojourn in
  let rendered, series =
    tabular
      ~title:"Ablation: MP average delay (ms) per link-cost estimator (CAIRN, load 1.1)"
      ~x_label:"estimator"
      ~columns:[ "avg delay ms" ]
      [
        ("analytic M/M/1", [ ms mm1 ]);
        ("busy-period (PA)", [ ms busy ]);
        ("mean sojourn (biased)", [ ms sojourn ]);
      ]
  in
  {
    title = "Ablation: marginal-delay estimators";
    rendered;
    series;
    checks =
      [
        ( "PA estimator competitive with analytic",
          busy <= mm1 *. 1.5 && mm1 <= busy *. 1.5 );
      ];
  }

let abl_ecmp ?(load = 1.15) ?(seeds = [ 1; 2 ]) () =
  let w = Workload.cairn ~load in
  let run scheme =
    let _, avg, _ = sim_per_flow w { default_sim_cfg with scheme } ~seeds in
    avg
  in
  let mp = run Sim.Mp in
  let ecmp = run Sim.Ecmp in
  let sp = run Sim.Sp in
  let rendered, series =
    tabular
      ~title:
        (Printf.sprintf
           "Ablation: average delay (ms) by multipath policy (CAIRN, load %.2f)"
           load)
      ~x_label:"scheme"
      ~columns:[ "avg delay ms"; "vs MP" ]
      [
        ("MP (unequal-cost)", [ ms mp; 1.0 ]);
        ("ECMP (equal-cost only)", [ ms ecmp; ecmp /. mp ]);
        ("SP (single path)", [ ms sp; sp /. mp ]);
      ]
  in
  {
    title = "Ablation: unequal-cost multipath vs ECMP vs SP";
    rendered;
    series;
    checks =
      [
        ("unequal-cost multipath beats ECMP", mp < ecmp);
        (* With continuous measured costs, exact ties are rare: ECMP
           degenerates toward SP — which is the paper's point about
           OSPF's equal-length-only multipath. *)
        ("ECMP offers no MP-like gain", ecmp > mp *. 1.2);
      ];
  }

let failover ?(seeds = [ 1; 2 ]) () =
  let w = Workload.cairn ~load:1.0 in
  let topo = w.Workload.topo in
  let isi = Graph.node_of_name topo "isi" and mci = Graph.node_of_name topo "mci-r" in
  let events =
    [
      Sim.Fail_duplex { at = 40.0; a = isi; b = mci };
      Sim.Restore_duplex { at = 70.0; a = isi; b = mci };
    ]
  in
  let cfg = { Sim.default_config with sim_time = 100.0; warmup = 10.0 } in
  let runs scheme =
    Mdr_util.Pool.map_list
      (fun seed ->
        Sim.run ~config:{ cfg with scheme; seed } ~events topo (Workload.sim_flows w))
      seeds
  in
  let mp_runs = runs Sim.Mp and sp_runs = runs Sim.Sp in
  let mean_phase (r : Sim.result) lo hi =
    let xs =
      List.filter_map
        (fun (t, d, _) -> if t >= lo && t < hi then Some d else None)
        r.delay_timeline
    in
    Stats.mean_of_list xs
  in
  let phase rs lo hi =
    Stats.mean_of_list (List.map (fun r -> mean_phase r lo hi) rs)
  in
  let drops rs =
    Stats.mean_of_list
      (List.map (fun (r : Sim.result) -> float_of_int r.total_dropped) rs)
  in
  let mp_before = phase mp_runs 20.0 40.0 and sp_before = phase sp_runs 20.0 40.0 in
  let mp_during = phase mp_runs 45.0 70.0 and sp_during = phase sp_runs 45.0 70.0 in
  let mp_after = phase mp_runs 80.0 100.0 and sp_after = phase sp_runs 80.0 100.0 in
  let mp_drops = drops mp_runs and sp_drops = drops sp_runs in
  let rendered, series =
    tabular
      ~title:
        "Failover: isi<->mci-r trunk fails at t=40s, restored at t=70s (avg delay, ms)"
      ~x_label:"phase"
      ~columns:[ "MP"; "SP" ]
      [
        ("before (20-40s)", [ ms mp_before; ms sp_before ]);
        ("during outage (45-70s)", [ ms mp_during; ms sp_during ]);
        ("after restore (80-100s)", [ ms mp_after; ms sp_after ]);
        ("packets lost", [ mp_drops; sp_drops ]);
      ]
  in
  {
    title = "Failover: CAIRN trunk outage under live traffic";
    rendered;
    series;
    checks =
      [
        ("MP survives the outage", Float.is_finite mp_during && mp_during > 0.0);
        ("MP no worse than SP during outage", mp_during <= sp_during *. 1.10);
        ("MP recovers after restore", mp_after <= mp_before *. 1.5);
      ];
  }

let generalization ?(graphs = 6) ?(seeds = [ 1; 2 ]) () =
  let cfg = { Sim.default_config with sim_time = 60.0; warmup = 15.0 } in
  let one_graph g_seed =
    let rng = Mdr_util.Rng.create ~seed:(7000 + g_seed) in
    let topo =
      Mdr_topology.Generators.random_connected ~rng ~n:14 ~extra_links:9
        ~capacity_range:(10.0e6, 10.0e6) ~delay_range:(0.001, 0.003) ()
    in
    (* Random distinct flow endpoints, 2-3 Mb/s each. *)
    let n = Graph.node_count topo in
    let flows =
      List.init 8 (fun i ->
          let src = Mdr_util.Rng.int rng ~bound:n in
          let rec pick () =
            let d = Mdr_util.Rng.int rng ~bound:n in
            if d = src then pick () else d
          in
          {
            Sim.src;
            dst = pick ();
            rate_bits = (2.0 +. (0.125 *. float_of_int i)) *. 1.0e6;
            burst = None;
          })
    in
    let avg scheme =
      Stats.mean_of_list
        (Mdr_util.Pool.map_list
           (fun seed ->
             (Sim.run ~config:{ cfg with scheme; seed } topo flows).Sim.avg_delay)
           seeds)
    in
    let mp = avg Sim.Mp and sp = avg Sim.Sp in
    (mp, sp)
  in
  let results = List.init graphs (fun i -> one_graph (i + 1)) in
  let rows =
    List.mapi
      (fun i (mp, sp) ->
        (Printf.sprintf "graph %d" (i + 1), [ ms mp; ms sp; sp /. mp ]))
      results
  in
  let wins = List.length (List.filter (fun (mp, sp) -> sp >= mp) results) in
  let mean_ratio =
    Stats.mean_of_list (List.map (fun (mp, sp) -> sp /. mp) results)
  in
  let rendered, series =
    tabular
      ~title:
        (Printf.sprintf
           "Generalization: MP vs SP on %d random topologies (14 routers, 8 flows, %d-seed means)"
           graphs (List.length seeds))
      ~x_label:"topology"
      ~columns:[ "MP ms"; "SP ms"; "SP/MP" ]
      rows
  in
  {
    title = "Generalization: random topologies";
    rendered =
      rendered ^ Printf.sprintf "\nMP wins on %d/%d graphs; mean ratio %.2f" wins
        graphs mean_ratio;
    series;
    checks =
      [
        ( "MP at least as good on most graphs",
          2 * wins >= graphs );
        ("mean SP/MP ratio >= 1", mean_ratio >= 1.0);
      ];
  }

let scale_protocol () =
  let sizes = [ 10; 20; 40; 80 ] in
  let topo_for n =
    let rng = Mdr_util.Rng.create ~seed:(1000 + n) in
    Mdr_topology.Generators.random_connected ~rng ~n ~extra_links:(n / 2) ()
  in
  let cost (l : Graph.link) = 1.0 +. (l.prop_delay *. 1000.0) in
  let run_ls topo =
    let net = Mdr_routing.Network.create ~topo ~cost () in
    Mdr_routing.Network.run net;
    let cold_msgs = Mdr_routing.Network.total_messages net in
    let cold_time = Mdr_eventsim.Engine.now (Mdr_routing.Network.engine net) in
    (* Responsiveness: one link's cost changes after convergence. *)
    let l = List.hd (Graph.links topo) in
    Mdr_routing.Network.schedule_link_cost net ~at:(cold_time +. 1.0)
      ~src:l.Graph.src ~dst:l.Graph.dst ~cost:(cost l *. 5.0);
    Mdr_routing.Network.run net;
    let re_time =
      Mdr_eventsim.Engine.now (Mdr_routing.Network.engine net) -. cold_time -. 1.0
    in
    (cold_msgs, cold_time, re_time, Mdr_routing.Network.quiescent net)
  in
  let module DvNet = Mdr_routing.Harness.Dv_network in
  let run_dv topo =
    let net = DvNet.create ~topo ~cost () in
    DvNet.run net;
    (DvNet.total_messages net, Mdr_eventsim.Engine.now (DvNet.engine net),
     DvNet.quiescent net)
  in
  let results =
    List.map
      (fun n ->
        let topo = topo_for n in
        (n, run_ls topo, run_dv topo))
      sizes
  in
  let rows =
    List.map
      (fun (n, (ls_m, ls_t, re_t, _), (dv_m, dv_t, _)) ->
        ( string_of_int n,
          [
            float_of_int ls_m;
            1000.0 *. ls_t;
            1000.0 *. re_t;
            float_of_int dv_m;
            1000.0 *. dv_t;
          ] ))
      results
  in
  let rendered, series =
    tabular
      ~title:
        "Cold-start convergence on random topologies: MPDA (link-state) vs DV (both LFI instantiations)"
      ~x_label:"routers"
      ~columns:[ "MPDA msgs"; "MPDA ms"; "re-conv ms"; "DV msgs"; "DV ms" ]
      rows
  in
  {
    title = "Scaling: protocol convergence cost vs network size";
    rendered;
    series;
    checks =
      [
        ( "all sizes converge (both)",
          List.for_all (fun (_, (_, _, _, q1), (_, _, q2)) -> q1 && q2) results );
        ( "MPDA message growth sub-quadratic in links",
          match (List.hd results, List.nth results 3) with
          | (_, (m10, _, _, _), _), (_, (m80, _, _, _), _) ->
            float_of_int m80 /. float_of_int m10 < 64.0 );
        ( "reconvergence after one change takes < 100 ms simulated",
          List.for_all (fun (_, (_, _, re_t, _), _) -> re_t < 0.1) results );
      ];
  }

let all () =
  [
    ("fig8", fig8_topologies);
    ("fig9", fun () -> fig9_cairn_opt_vs_mp ());
    ("fig10", fun () -> fig10_net1_opt_vs_mp ());
    ("fig11", fun () -> fig11_cairn_mp_vs_sp ());
    ("fig12", fun () -> fig12_net1_mp_vs_sp ());
    ("fig13", fun () -> fig13_cairn_tl_effect ());
    ("fig14", fun () -> fig14_net1_tl_effect ());
    ("dyn", fun () -> dyn_bursty_traffic ());
    ("abl-eta", abl_eta_step_size);
    ("abl-2nd", abl_second_order);
    ("abl-lb", abl_load_balancing);
    ("abl-est", fun () -> abl_estimators ());
    ("abl-ecmp", fun () -> abl_ecmp ());
    ("failover", fun () -> failover ());
    ("gen", fun () -> generalization ());
    ("scale", scale_protocol);
  ]
