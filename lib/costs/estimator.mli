(** Online marginal-delay (link cost) estimation (paper Section 4.3).

    An estimator watches one link inside the packet simulator: it is
    told about every packet arrival/departure and, at the end of each
    measurement interval, produces an estimate of the marginal delay
    D'(f) at the link's current operating point. Three estimators are
    provided:

    - {!mm1}: the closed-form M/M/1 marginal (paper Eq. 24,
      differentiated) fed with the measured arrival rate — requires
      knowing the link capacity;
    - {!busy_period}: a perturbation-analysis-inspired estimator in the
      spirit of Cassandras, Abidi and Towsley: within each busy period
      an extra (perturbation) customer would delay every later customer
      of the period by one service time, so D'(f) is estimated as the
      mean service time multiplied by the mean number of customers a
      busy period would push back, plus the propagation delay. It needs
      no a-priori capacity.
    - {!measured_sojourn}: plain average sojourn (not a marginal) —
      deliberately biased; used as an ablation of how much the marginal
      matters.

    All estimators expose the same sampling interface so the simulator
    can swap them (the paper: "our approach does not depend on which
    specific technique is used"). *)

type sample = {
  arrival_rate : float;  (** measured packets/s over the window *)
  mean_sojourn : float;  (** measured queueing+transmission delay, s *)
  marginal : float;
      (** the link cost estimate, s — always finite and non-negative
          (a window whose raw estimate is not finite reuses the
          previous estimate instead of poisoning the cost pipeline) *)
  saturated : bool;
      (** overload signal: for {!mm1}, the measured arrival rate lies
          beyond the delay model's knee ([Delay.saturated]); for the
          capacity-oblivious estimators, the window's backlog grew
          (strictly more arrivals than departures) *)
}

type t

val mm1 : capacity:float -> prop_delay:float -> t
(** [capacity] in packets/s. *)

val busy_period : prop_delay:float -> t

val measured_sojourn : prop_delay:float -> t

val on_arrival : t -> now:float -> unit
(** A packet joined the link (queue or server). *)

val on_departure : t -> now:float -> sojourn:float -> service:float -> busy:bool -> unit
(** A packet finished transmission after spending [sojourn] seconds on
    the link, with transmission time [service]; [busy] says whether the
    server stays busy after this departure. *)

val sample : t -> now:float -> sample
(** Close the current measurement window, returning the estimate and
    starting a fresh window. A window with no traffic yields the
    zero-flow marginal (or the previous estimate for estimators without
    a model). *)
