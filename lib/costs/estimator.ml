module Delay = Mdr_fluid.Delay

type sample = {
  arrival_rate : float;
  mean_sojourn : float;
  marginal : float;
  saturated : bool;
}

type kind =
  | Mm1 of Delay.t
  | Busy_period
  | Measured_sojourn

type t = {
  kind : kind;
  prop_delay : float;
  mutable window_start : float;
  mutable arrivals : int;
  mutable departures : int;
  mutable busy_periods : int;
  mutable sojourn_sum : float;
  mutable service_sum : float;
  mutable last_marginal : float;
}

let make kind ~prop_delay ~initial =
  {
    kind;
    prop_delay;
    window_start = 0.0;
    arrivals = 0;
    departures = 0;
    busy_periods = 0;
    sojourn_sum = 0.0;
    service_sum = 0.0;
    last_marginal = initial;
  }

let mm1 ~capacity ~prop_delay =
  let model = Delay.create ~capacity ~prop_delay () in
  make (Mm1 model) ~prop_delay ~initial:(Delay.marginal model 0.0)

let busy_period ~prop_delay = make Busy_period ~prop_delay ~initial:prop_delay

let measured_sojourn ~prop_delay = make Measured_sojourn ~prop_delay ~initial:prop_delay

let on_arrival t ~now:_ = t.arrivals <- t.arrivals + 1

let on_departure t ~now:_ ~sojourn ~service ~busy =
  t.departures <- t.departures + 1;
  t.sojourn_sum <- t.sojourn_sum +. sojourn;
  t.service_sum <- t.service_sum +. service;
  if not busy then t.busy_periods <- t.busy_periods + 1

let reset_window t ~now =
  t.window_start <- now;
  t.arrivals <- 0;
  t.departures <- 0;
  t.busy_periods <- 0;
  t.sojourn_sum <- 0.0;
  t.service_sum <- 0.0

let sample t ~now =
  let span = now -. t.window_start in
  let arrival_rate = if span > 0.0 then float_of_int t.arrivals /. span else 0.0 in
  let mean_sojourn =
    if t.departures > 0 then t.sojourn_sum /. float_of_int t.departures else 0.0
  in
  let marginal =
    match t.kind with
    | Mm1 model -> Delay.marginal model arrival_rate
    | Busy_period ->
      if t.departures = 0 then t.last_marginal
      else
        (* D'(f) = mean sojourn x mean customers served per busy
           period (exact for M/M/1; see interface). A window ending
           mid-busy-period counts the open period as one. *)
        let periods = max 1 t.busy_periods in
        let customers_per_period = float_of_int t.departures /. float_of_int periods in
        (mean_sojourn *. customers_per_period) +. t.prop_delay
    | Measured_sojourn ->
      if t.departures = 0 then t.last_marginal else mean_sojourn +. t.prop_delay
  in
  (* An estimate is a link cost: downstream routing sums and compares
     these, so a pathological window must never leak NaN or infinity
     into the pipeline — fall back to the previous finite estimate. *)
  let marginal = if Float.is_finite marginal then marginal else t.last_marginal in
  let saturated =
    match t.kind with
    | Mm1 model -> Delay.saturated model arrival_rate
    | Busy_period | Measured_sojourn ->
      (* Capacity is unknown: the overload signal is a growing backlog
         (strictly more arrivals than departures over the window). *)
      t.arrivals > t.departures && t.arrivals > 0
  in
  t.last_marginal <- marginal;
  reset_window t ~now;
  { arrival_rate; mean_sojourn; marginal; saturated }
