(** Random topology generators for property-based tests and scaling
    benchmarks. All generators return strongly connected, symmetric
    topologies with uniform or randomized link attributes. *)

val ring :
  n:int -> capacity:float -> prop_delay:float -> Graph.t
(** Bidirectional ring of [n >= 3] routers. *)

val ring_with_chords :
  rng:Mdr_util.Rng.t -> n:int -> chords:int -> capacity:float ->
  prop_delay:float -> Graph.t
(** Ring plus [chords] random non-duplicate chords: connected by
    construction, with tunable path diversity. *)

val random_connected :
  rng:Mdr_util.Rng.t -> n:int -> extra_links:int ->
  ?capacity_range:float * float -> ?delay_range:float * float -> unit -> Graph.t
(** A random spanning tree (guaranteeing connectivity) plus
    [extra_links] random duplex links, with attributes drawn uniformly
    from the given ranges (defaults: 5-10 Mb/s, 1-10 ms). *)

val grid : rows:int -> cols:int -> capacity:float -> prop_delay:float -> Graph.t
(** [rows] x [cols] mesh; rich multipath structure, used by scaling
    benchmarks. *)

val barabasi_albert :
  rng:Mdr_util.Rng.t -> n:int -> m:int ->
  ?capacity_range:float * float -> ?delay_range:float * float -> unit -> Graph.t
(** Preferential-attachment scale-free graph: a clique on the first
    [m + 1] nodes, then each new node attaches [m] duplex links to
    existing nodes with probability proportional to degree. Connected
    by construction; degree distribution is heavy-tailed like AS-level
    internet maps. Requires [1 <= m < n].
    @raise Invalid_argument on bad [n], [m], or attribute ranges. *)

val waxman :
  rng:Mdr_util.Rng.t -> n:int -> ?alpha:float -> ?beta:float ->
  ?capacity_range:float * float -> ?delay_range:float * float -> unit -> Graph.t
(** Waxman random geometric graph: nodes placed uniformly on the unit
    square, each pair linked with probability
    [beta * exp (-d / (alpha * sqrt 2))]. Defaults [alpha = 0.15],
    [beta = 0.4]. Propagation delay grows with euclidean distance
    across [delay_range]. Isolated components are stitched to the
    first one with extra links, so the result is always connected.
    @raise Invalid_argument unless [n >= 2], [alpha > 0] and
    [0 < beta <= 1]. *)

val hierarchical :
  rng:Mdr_util.Rng.t -> areas:int -> area_size:int -> backbone:int ->
  ?capacity_range:float * float -> ?delay_range:float * float -> unit -> Graph.t
(** Two-level ISP-style topology with [backbone + areas * area_size]
    nodes. Ids [0, backbone) form a randomly meshed core; area [a]
    occupies [backbone + a * area_size, backbone + (a+1) * area_size),
    is internally connected, and is dual-homed to two distinct backbone
    routers. Area nodes never link to other areas directly — all
    inter-area traffic crosses the backbone.
    @raise Invalid_argument unless [backbone >= 2], [areas >= 1] and
    [area_size >= 1]. *)
