(** Network topology: named routers joined by point-to-point links.

    Links are directed internally — a bidirectional physical link is
    two directed links, possibly with different attributes, exactly as
    in the paper's model ("each link is bidirectional with possibly
    different costs in each direction"). Nodes are dense integers
    [0 .. node_count - 1] so algorithm state can live in arrays. *)

type node = int

type link = {
  src : node;
  dst : node;
  capacity : float;  (** bits per second *)
  prop_delay : float;  (** propagation delay, seconds *)
}

type t

val create : names:string array -> t
(** A topology with the given routers and no links. Names must be
    distinct and non-empty. *)

val node_count : t -> int
val link_count : t -> int

val name : t -> node -> string
val node_of_name : t -> string -> node
(** @raise Not_found if no router has that name. *)

val add_link : t -> src:node -> dst:node -> capacity:float -> prop_delay:float -> unit
(** Add one directed link. @raise Invalid_argument on self-loops,
    duplicate links, or non-positive capacity. *)

val add_duplex :
  t -> string -> string -> capacity:float -> prop_delay:float -> unit
(** Add both directions between two named routers, same attributes. *)

val link : t -> src:node -> dst:node -> link option
val link_exn : t -> src:node -> dst:node -> link

val neighbors : t -> node -> node list
(** Outgoing neighbors, in insertion order. *)

val out_links : t -> node -> link list

val links : t -> link list
(** All directed links, in insertion order. *)

val fold_links : t -> init:'a -> f:('a -> link -> 'a) -> 'a

val nodes : t -> node list

type csr = {
  row : int array;  (** length [node_count + 1] *)
  links : link array;  (** links of node [u] occupy [row.(u) .. row.(u+1)-1] *)
}
(** Flat adjacency for hot loops (no list or closure allocation per
    traversal). Views are cached and rebuilt only when links are added;
    the returned arrays must not be mutated. *)

val out_csr : t -> csr
(** Out-links per source, insertion order — the order {!out_links}
    yields. *)

val in_csr : t -> csr
(** Links *into* each node, in the order the reverse traversal of
    {!out_links} discovers them (the reverse link of each out-link,
    when present). [links.(e).src] is the predecessor. *)

val is_symmetric : t -> bool
(** Every directed link has a reverse link (attributes may differ). *)

val pp_summary : Format.formatter -> t -> unit
