type node = int

type link = {
  src : node;
  dst : node;
  capacity : float;
  prop_delay : float;
}

type csr = { row : int array; links : link array }

type t = {
  names : string array;
  by_name : (string, node) Hashtbl.t;
  adjacency : (node, link) Hashtbl.t array;  (* per-src: dst -> link *)
  order : (node, link list) Hashtbl.t;  (* per-src out-links, reversed insertion order *)
  mutable all_links_rev : link list;
  mutable link_count : int;
  (* Lazily built flat adjacency, keyed by the link count at build time
     (links are only ever added, never removed). Atomic so domains
     sharing one topology publish a fully-initialised view; losing a
     build race just wastes one rebuild of identical content. *)
  out_cache : (int * csr) option Atomic.t;
  in_cache : (int * csr) option Atomic.t;
}

let create ~names =
  let n = Array.length names in
  let by_name = Hashtbl.create n in
  Array.iteri
    (fun i name ->
      if name = "" then invalid_arg "Graph.create: empty router name";
      if Hashtbl.mem by_name name then
        invalid_arg ("Graph.create: duplicate router name " ^ name);
      Hashtbl.add by_name name i)
    names;
  {
    names = Array.copy names;
    by_name;
    adjacency = Array.init n (fun _ -> Hashtbl.create 4);
    order = Hashtbl.create n;
    all_links_rev = [];
    link_count = 0;
    out_cache = Atomic.make None;
    in_cache = Atomic.make None;
  }

let node_count t = Array.length t.names

let link_count t = t.link_count

let check_node t v fn =
  if v < 0 || v >= node_count t then invalid_arg (fn ^ ": node out of range")

let name t v =
  check_node t v "Graph.name";
  t.names.(v)

let node_of_name t s = Hashtbl.find t.by_name s

let add_link t ~src ~dst ~capacity ~prop_delay =
  check_node t src "Graph.add_link";
  check_node t dst "Graph.add_link";
  if src = dst then invalid_arg "Graph.add_link: self-loop";
  if capacity <= 0.0 then invalid_arg "Graph.add_link: capacity <= 0";
  if prop_delay < 0.0 then invalid_arg "Graph.add_link: negative propagation delay";
  if Hashtbl.mem t.adjacency.(src) dst then
    invalid_arg
      (Printf.sprintf "Graph.add_link: duplicate link %s -> %s" t.names.(src)
         t.names.(dst));
  let l = { src; dst; capacity; prop_delay } in
  Hashtbl.add t.adjacency.(src) dst l;
  let existing = try Hashtbl.find t.order src with Not_found -> [] in
  Hashtbl.replace t.order src (l :: existing);
  t.all_links_rev <- l :: t.all_links_rev;
  t.link_count <- t.link_count + 1

let add_duplex t a b ~capacity ~prop_delay =
  let va = node_of_name t a and vb = node_of_name t b in
  add_link t ~src:va ~dst:vb ~capacity ~prop_delay;
  add_link t ~src:vb ~dst:va ~capacity ~prop_delay

let link t ~src ~dst = Hashtbl.find_opt t.adjacency.(src) dst

let link_exn t ~src ~dst =
  match link t ~src ~dst with
  | Some l -> l
  | None ->
    invalid_arg
      (Printf.sprintf "Graph.link_exn: no link %s -> %s" t.names.(src) t.names.(dst))

let out_links t v =
  check_node t v "Graph.out_links";
  match Hashtbl.find_opt t.order v with
  | None -> []
  | Some ls -> List.rev ls

let neighbors t v = List.map (fun l -> l.dst) (out_links t v)

let links t = List.rev t.all_links_rev

let fold_links t ~init ~f = List.fold_left f init (links t)

let nodes t = List.init (node_count t) Fun.id

let pack_csr t per_node =
  let n = node_count t in
  let row = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row.(u + 1) <- row.(u) + List.length per_node.(u)
  done;
  let m = row.(n) in
  if m = 0 then { row; links = [||] }
  else begin
    let seed =
      let rec first i = match per_node.(i) with [] -> first (i + 1) | l :: _ -> l in
      first 0
    in
    let arr = Array.make m seed in
    for u = 0 to n - 1 do
      let pos = ref row.(u) in
      List.iter
        (fun l ->
          arr.(!pos) <- l;
          incr pos)
        per_node.(u)
    done;
    { row; links = arr }
  end

let cached cache t build =
  let key = t.link_count in
  match Atomic.get cache with
  | Some (k, view) when k = key -> view
  | Some _ | None ->
    let view = build t in
    Atomic.set cache (Some (key, view));
    view

let out_csr t =
  cached t.out_cache t (fun t ->
      pack_csr t (Array.init (node_count t) (fun u -> out_links t u)))

let in_csr t =
  cached t.in_cache t (fun t ->
      (* Links *into* u, discovered through u's out-links exactly the
         way the reverse Dijkstra historically probed them, so reversed
         traversals see the same edge order as before. *)
      pack_csr t
        (Array.init (node_count t) (fun u ->
             List.filter_map (fun l -> link t ~src:l.dst ~dst:u) (out_links t u))))

let is_symmetric t =
  List.for_all (fun l -> link t ~src:l.dst ~dst:l.src <> None) (links t)

let pp_summary ppf t =
  Format.fprintf ppf "topology: %d routers, %d directed links" (node_count t)
    (link_count t)
