module Rng = Mdr_util.Rng

let node_names n = Array.init n (fun i -> "n" ^ string_of_int i)

let ring ~n ~capacity ~prop_delay =
  if n < 3 then invalid_arg "Generators.ring: n < 3";
  let g = Graph.create ~names:(node_names n) in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    Graph.add_link g ~src:i ~dst:j ~capacity ~prop_delay;
    Graph.add_link g ~src:j ~dst:i ~capacity ~prop_delay
  done;
  g

let add_duplex_if_absent g a b ~capacity ~prop_delay =
  if a <> b && Graph.link g ~src:a ~dst:b = None then begin
    Graph.add_link g ~src:a ~dst:b ~capacity ~prop_delay;
    Graph.add_link g ~src:b ~dst:a ~capacity ~prop_delay;
    true
  end
  else false

(* Add exactly [count] random absent duplex links among nodes [0, n).
   Sparse requests rejection-sample; dense requests (or a sampler that
   runs out of luck) switch to enumerating the absent pairs and
   shuffling — exact and guaranteed to terminate, where the old
   rejection-only loop silently stopped short at dense settings. *)
let add_absent_links g ~rng ~n ~count ~attrs ~what =
  if count < 0 then invalid_arg (what ^ ": negative link count");
  let duplex_present = List.length (Graph.links g) / 2 in
  let slots = (n * (n - 1) / 2) - duplex_present in
  if count > slots then
    invalid_arg
      (Printf.sprintf "%s: %d links requested but only %d absent pairs" what
         count slots);
  let added = ref 0 in
  if count * 3 < slots then begin
    (* Sparse: rejection sampling, bounded attempts. *)
    let attempts = ref 0 in
    while !added < count && !attempts < 100 * (count + 1) do
      incr attempts;
      let a = Rng.int rng ~bound:n and b = Rng.int rng ~bound:n in
      let capacity, prop_delay = attrs () in
      if add_duplex_if_absent g a b ~capacity ~prop_delay then incr added
    done
  end;
  if !added < count then begin
    (* Dense (or the sampler hit its attempt cap): exact fill. *)
    let absent = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if Graph.link g ~src:a ~dst:b = None then absent := (a, b) :: !absent
      done
    done;
    let absent = Array.of_list !absent in
    Rng.shuffle rng absent;
    let i = ref 0 in
    while !added < count do
      let a, b = absent.(!i) in
      incr i;
      let capacity, prop_delay = attrs () in
      if add_duplex_if_absent g a b ~capacity ~prop_delay then incr added
    done
  end

let ring_with_chords ~rng ~n ~chords ~capacity ~prop_delay =
  if chords < 0 then invalid_arg "Generators.ring_with_chords: chords < 0";
  let g = ring ~n ~capacity ~prop_delay in
  add_absent_links g ~rng ~n ~count:chords
    ~attrs:(fun () -> (capacity, prop_delay))
    ~what:"Generators.ring_with_chords";
  g

let check_range what (lo, hi) =
  if (not (Float.is_finite lo)) || (not (Float.is_finite hi)) || lo <= 0.0 || hi < lo
  then invalid_arg (what ^ ": range must satisfy 0 < lo <= hi")

let uniform_attrs rng ~capacity_range ~delay_range =
  let lo_c, hi_c = capacity_range and lo_d, hi_d = delay_range in
  fun () -> (Rng.uniform rng ~lo:lo_c ~hi:hi_c, Rng.uniform rng ~lo:lo_d ~hi:hi_d)

(* Random spanning tree over [nodes]: attach each node to a uniformly
   chosen earlier node in a shuffled order (random recursive tree). *)
let span_tree g ~rng ~nodes ~attrs =
  let order = Array.copy nodes in
  Rng.shuffle rng order;
  for k = 1 to Array.length order - 1 do
    let parent = order.(Rng.int rng ~bound:k) in
    let capacity, prop_delay = attrs () in
    ignore (add_duplex_if_absent g order.(k) parent ~capacity ~prop_delay)
  done

let random_connected ~rng ~n ~extra_links ?(capacity_range = (5.0e6, 10.0e6))
    ?(delay_range = (0.001, 0.010)) () =
  if n < 2 then invalid_arg "Generators.random_connected: n < 2";
  check_range "Generators.random_connected: capacity_range" capacity_range;
  check_range "Generators.random_connected: delay_range" delay_range;
  let g = Graph.create ~names:(node_names n) in
  let attrs = uniform_attrs rng ~capacity_range ~delay_range in
  span_tree g ~rng ~nodes:(Array.init n Fun.id) ~attrs;
  add_absent_links g ~rng ~n ~count:extra_links ~attrs
    ~what:"Generators.random_connected";
  g

(* --- Internet-like generators for the scaling benchmarks ------------- *)

let barabasi_albert ~rng ~n ~m ?(capacity_range = (5.0e6, 10.0e6))
    ?(delay_range = (0.001, 0.010)) () =
  if m < 1 then invalid_arg "Generators.barabasi_albert: m < 1";
  if n <= m then invalid_arg "Generators.barabasi_albert: n <= m";
  check_range "Generators.barabasi_albert: capacity_range" capacity_range;
  check_range "Generators.barabasi_albert: delay_range" delay_range;
  let g = Graph.create ~names:(node_names n) in
  let attrs = uniform_attrs rng ~capacity_range ~delay_range in
  (* Endpoint multiset: every duplex link contributes both ends, so
     uniform draws from it are degree-proportional — preferential
     attachment without per-step degree scans. *)
  let endpoints = ref (Array.make (4 * n * m) 0) in
  let len = ref 0 in
  let push v =
    if !len = Array.length !endpoints then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !endpoints 0 bigger 0 !len;
      endpoints := bigger
    end;
    !endpoints.(!len) <- v;
    incr len
  in
  let connect a b =
    let capacity, prop_delay = attrs () in
    if add_duplex_if_absent g a b ~capacity ~prop_delay then begin
      push a;
      push b;
      true
    end
    else false
  in
  (* Seed clique on the first m+1 nodes. *)
  for a = 0 to m do
    for b = a + 1 to m do
      ignore (connect a b)
    done
  done;
  for v = m + 1 to n - 1 do
    let attached = ref 0 in
    while !attached < m do
      let target = !endpoints.(Rng.int rng ~bound:!len) in
      if connect v target then incr attached
    done
  done;
  g

let waxman ~rng ~n ?(alpha = 0.15) ?(beta = 0.4)
    ?(capacity_range = (5.0e6, 10.0e6)) ?(delay_range = (0.001, 0.010)) () =
  if n < 2 then invalid_arg "Generators.waxman: n < 2";
  if alpha <= 0.0 || not (Float.is_finite alpha) then
    invalid_arg "Generators.waxman: alpha <= 0";
  if beta <= 0.0 || beta > 1.0 then
    invalid_arg "Generators.waxman: beta outside (0, 1]";
  check_range "Generators.waxman: capacity_range" capacity_range;
  check_range "Generators.waxman: delay_range" delay_range;
  let g = Graph.create ~names:(node_names n) in
  let xs = Array.init n (fun _ -> Rng.float rng)
  and ys = Array.init n (fun _ -> Rng.float rng) in
  let scale = alpha *. Float.sqrt 2.0 in
  let lo_c, hi_c = capacity_range and lo_d, hi_d = delay_range in
  let dist a b = Float.hypot (xs.(a) -. xs.(b)) (ys.(a) -. ys.(b)) in
  (* Propagation delay tracks euclidean distance — geographically long
     links are slow, as in the real internet. *)
  let connect a b =
    let d = dist a b in
    let capacity = Rng.uniform rng ~lo:lo_c ~hi:hi_c in
    let prop_delay = lo_d +. ((hi_d -. lo_d) *. d /. Float.sqrt 2.0) in
    ignore (add_duplex_if_absent g a b ~capacity ~prop_delay)
  in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Rng.float rng < beta *. Float.exp (-.dist a b /. scale) then connect a b
    done
  done;
  (* The Waxman process alone can leave islands; stitch components
     together (each to a random node of the first one) so the result is
     connected like every other generator here. *)
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let members0 = ref [] in
  let c = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      stack := [ s ];
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
          stack := rest;
          if comp.(v) < 0 then begin
            comp.(v) <- !c;
            if !c = 0 then members0 := v :: !members0;
            List.iter
              (fun (l : Graph.link) ->
                if comp.(l.dst) < 0 then stack := l.dst :: !stack)
              (Graph.out_links g v)
          end
      done;
      if !c > 0 then begin
        let anchor =
          List.nth !members0 (Rng.int rng ~bound:(List.length !members0))
        in
        connect s anchor
      end;
      incr c
    end
  done;
  g

let hierarchical ~rng ~areas ~area_size ~backbone
    ?(capacity_range = (5.0e6, 10.0e6)) ?(delay_range = (0.001, 0.010)) () =
  if backbone < 2 then invalid_arg "Generators.hierarchical: backbone < 2";
  if areas < 1 then invalid_arg "Generators.hierarchical: areas < 1";
  if area_size < 1 then invalid_arg "Generators.hierarchical: area_size < 1";
  check_range "Generators.hierarchical: capacity_range" capacity_range;
  check_range "Generators.hierarchical: delay_range" delay_range;
  let n = backbone + (areas * area_size) in
  let g = Graph.create ~names:(node_names n) in
  let attrs = uniform_attrs rng ~capacity_range ~delay_range in
  (* Backbone: spanning tree plus ~backbone/2 chords for multipath. *)
  span_tree g ~rng ~nodes:(Array.init backbone Fun.id) ~attrs;
  add_absent_links g ~rng ~n:backbone ~count:(min (backbone / 2) ((backbone * (backbone - 1) / 2) - (backbone - 1)))
    ~attrs ~what:"Generators.hierarchical";
  (* Each area: an internal spanning tree (plus a chord when it fits),
     dual-homed to two distinct backbone routers. Area nodes never link
     to other areas directly — all inter-area paths cross the
     backbone. *)
  for a = 0 to areas - 1 do
    let base = backbone + (a * area_size) in
    let nodes = Array.init area_size (fun i -> base + i) in
    span_tree g ~rng ~nodes ~attrs;
    if area_size >= 4 then begin
      let u = base + Rng.int rng ~bound:area_size
      and v = base + Rng.int rng ~bound:area_size in
      let capacity, prop_delay = attrs () in
      ignore (add_duplex_if_absent g u v ~capacity ~prop_delay)
    end;
    let g1 = Rng.int rng ~bound:backbone in
    let g2 = (g1 + 1 + Rng.int rng ~bound:(backbone - 1)) mod backbone in
    let home gw =
      let node = base + Rng.int rng ~bound:area_size in
      let capacity, prop_delay = attrs () in
      ignore (add_duplex_if_absent g gw node ~capacity ~prop_delay)
    in
    home g1;
    home g2
  done;
  g

let grid ~rows ~cols ~capacity ~prop_delay =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Generators.grid: degenerate dimensions";
  let n = rows * cols in
  let g = Graph.create ~names:(node_names n) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        ignore (add_duplex_if_absent g (id r c) (id r (c + 1)) ~capacity ~prop_delay);
      if r + 1 < rows then
        ignore (add_duplex_if_absent g (id r c) (id (r + 1) c) ~capacity ~prop_delay)
    done
  done;
  g
