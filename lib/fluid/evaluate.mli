(** Delay evaluation of a routing configuration in the fluid model.

    Computes the paper's objective D_T (Eq. 3), the network-average
    per-packet delay, per-flow expected delays (what Figures 9-12
    plot), and the marginal link costs / marginal distances used by the
    routing algorithms (Eqs. 4-5). *)

type model
(** Per-link M/M/1 delay models for one topology. *)

val model : ?rho_max:float -> Mdr_topology.Graph.t -> packet_size:float -> model
(** [packet_size] is the mean packet size in bits used to convert link
    capacities to packets/s. *)

val packet_size : model -> float

val delay_of_link : model -> src:int -> dst:int -> Delay.t

val total_cost : model -> Flows.t -> float
(** D_T = sum over links of D_ik(f_ik): total expected delay per
    message times total message arrival rate. *)

val average_delay : model -> Flows.t -> Traffic.t -> float
(** D_T / total input rate: expected network delay per packet,
    seconds (Little's law). *)

val link_cost : model -> Flows.t -> src:int -> dst:int -> float
(** Marginal delay D'_ik(f_ik) — the link cost l_ik. *)

val link_costs : model -> Flows.t -> (int * int, float) Hashtbl.t
(** Marginal delay of every link of the topology. *)

val saturated_links : model -> Flows.t -> (int * int) list
(** Directed links whose flow lies beyond their delay model's knee
    ([Delay.saturated]): costs are the convex extension there, and the
    link is overloaded. In link insertion order. *)

val costs_finite : model -> Flows.t -> bool
(** Audit of the saturation-safe contract: every link flow is finite
    and non-negative, and every link's cost and marginal cost are
    finite with [cost >= 0] and [marginal > 0]. Holds for any flow
    assignment produced by the fluid pipeline. *)

val per_flow_delays : model -> Params.t -> Flows.t -> Traffic.t -> (Traffic.flow * float) list
(** Expected end-to-end delay of each input flow under the current
    routing: d_dst(i) = sum_k phi_{i,dst,k} (sojourn_ik + d_dst(k)).
    Order matches [Traffic.flows]. *)

val expected_delay : model -> Params.t -> Flows.t -> src:int -> dst:int -> float
(** Expected delay from one router to a destination; infinite when
    (src, dst) is unrouted. *)

val marginal_distances :
  ?into:float array -> model -> Params.t -> Flows.t -> dst:int -> float array
(** The marginal distances dD_T/dr_i(dst) of every router for one
    destination (Eq. 4): delta_i = sum_k phi_ik (l_ik + delta_k).
    Unrouted routers get [infinity]. [into], when given, is fully
    overwritten and returned instead of a fresh array (length >= node
    count) — iteration loops pass one reusable buffer so the per-call
    allocation disappears. *)
