module Graph = Mdr_topology.Graph

type t = {
  topo : Graph.t;
  nbrs : int array array;
  pos : (int, int) Hashtbl.t array;  (* pos.(i): neighbor node -> slot *)
  phi : float array array array;  (* phi.(i).(dst).(slot) *)
}

let tolerance = 1e-9

let create topo =
  let n = Graph.node_count topo in
  let nbrs = Array.init n (fun i -> Array.of_list (Graph.neighbors topo i)) in
  let pos =
    Array.init n (fun i ->
        let h = Hashtbl.create (Array.length nbrs.(i)) in
        Array.iteri (fun slot k -> Hashtbl.replace h k slot) nbrs.(i);
        h)
  in
  let phi =
    Array.init n (fun i -> Array.init n (fun _ -> Array.make (Array.length nbrs.(i)) 0.0))
  in
  { topo; nbrs; pos; phi }

let copy t =
  { t with phi = Array.map (Array.map Array.copy) t.phi }

let assign t ~from_ =
  if t.topo != from_.topo && Graph.node_count t.topo <> Graph.node_count from_.topo
  then invalid_arg "Params.assign: topology mismatch";
  Array.iteri
    (fun i rows ->
      Array.iteri
        (fun j row -> Array.blit from_.phi.(i).(j) 0 row 0 (Array.length row))
        rows)
    t.phi

let topology t = t.topo

let neighbor_array t node = t.nbrs.(node)

let slot_of t ~node ~via = Hashtbl.find_opt t.pos.(node) via

let fraction t ~node ~dst ~via =
  match slot_of t ~node ~via with
  | None -> 0.0
  | Some slot -> t.phi.(node).(dst).(slot)

let fractions t ~node ~dst =
  let row = t.phi.(node).(dst) in
  let acc = ref [] in
  for slot = Array.length row - 1 downto 0 do
    if row.(slot) > 0.0 then acc := (t.nbrs.(node).(slot), row.(slot)) :: !acc
  done;
  !acc

let set_fractions t ~node ~dst entries =
  if node = dst && entries <> [] then
    invalid_arg "Params.set_fractions: destination routes to itself";
  let row = t.phi.(node).(dst) in
  Array.fill row 0 (Array.length row) 0.0;
  match entries with
  | [] -> ()
  | _ ->
    let total = ref 0.0 in
    let apply (via, frac) =
      if frac < -.tolerance then invalid_arg "Params.set_fractions: negative fraction";
      match slot_of t ~node ~via with
      | None ->
        invalid_arg
          (Printf.sprintf "Params.set_fractions: %s is not a neighbor of %s"
             (Graph.name t.topo via) (Graph.name t.topo node))
      | Some slot ->
        let frac = Float.max 0.0 frac in
        row.(slot) <- row.(slot) +. frac;
        total := !total +. frac
    in
    List.iter apply entries;
    if Float.abs (!total -. 1.0) > 1e-6 then begin
      Array.fill row 0 (Array.length row) 0.0;
      invalid_arg
        (Printf.sprintf "Params.set_fractions: fractions sum to %.9f, not 1" !total)
    end;
    (* Renormalize away accumulated floating error. *)
    if not (Float.equal !total 1.0) then
      Array.iteri (fun slot v -> row.(slot) <- v /. !total) row

let set_single t ~node ~dst ~via = set_fractions t ~node ~dst [ (via, 1.0) ]

let clear t ~node ~dst =
  let row = t.phi.(node).(dst) in
  Array.fill row 0 (Array.length row) 0.0

let successors t ~node ~dst = List.map fst (fractions t ~node ~dst)

let is_routed t ~node ~dst =
  Array.exists (fun v -> v > 0.0) t.phi.(node).(dst)

let validate t =
  let n = Graph.node_count t.topo in
  let problem = ref None in
  for node = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if !problem = None then begin
        let row = t.phi.(node).(dst) in
        let total = Array.fold_left ( +. ) 0.0 row in
        if Array.exists (fun v -> v < 0.0) row then
          problem :=
            Some (Printf.sprintf "negative fraction at (%d, %d)" node dst)
        else if node = dst && total > tolerance then
          problem := Some (Printf.sprintf "destination %d routes to itself" dst)
        else if total > tolerance && Float.abs (total -. 1.0) > 1e-6 then
          problem :=
            Some
              (Printf.sprintf "fractions at (%d, %d) sum to %.9f" node dst total)
      end
    done
  done;
  match !problem with None -> Ok () | Some msg -> Error msg

let successor_graph_is_acyclic t ~dst =
  let n = Graph.node_count t.topo in
  (* Colors: 0 unvisited, 1 on stack, 2 done. *)
  let color = Array.make n 0 in
  let rec visit node =
    if color.(node) = 1 then false
    else if color.(node) = 2 then true
    else begin
      color.(node) <- 1;
      let ok =
        List.for_all
          (fun succ -> succ = dst || visit succ)
          (successors t ~node ~dst)
      in
      color.(node) <- 2;
      ok
    end
  in
  List.for_all (fun node -> node = dst || visit node) (Graph.nodes t.topo)
