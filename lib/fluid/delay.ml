type t = { capacity : float; prop_delay : float; rho_max : float }

let create ?(rho_max = 0.99) ~capacity ~prop_delay () =
  if capacity <= 0.0 then invalid_arg "Delay.create: capacity <= 0";
  if prop_delay < 0.0 then invalid_arg "Delay.create: negative prop_delay";
  if rho_max <= 0.0 || rho_max >= 1.0 then invalid_arg "Delay.create: rho_max not in (0,1)";
  { capacity; prop_delay; rho_max }

let of_link ?rho_max ~packet_size (l : Mdr_topology.Graph.link) =
  if packet_size <= 0.0 then invalid_arg "Delay.of_link: packet_size <= 0";
  create ?rho_max ~capacity:(l.capacity /. packet_size) ~prop_delay:l.prop_delay ()

let knee t = t.rho_max *. t.capacity

(* Exact M/M/1 pieces, valid for f < capacity. *)
let cost_mm1 t f = (f /. (t.capacity -. f)) +. (t.prop_delay *. f)

let marginal_mm1 t f =
  (t.capacity /. ((t.capacity -. f) ** 2.0)) +. t.prop_delay

let second_mm1 t f = 2.0 *. t.capacity /. ((t.capacity -. f) ** 3.0)

let cost t f =
  if f < 0.0 then invalid_arg "Delay.cost: negative flow";
  let f0 = knee t in
  if f <= f0 then cost_mm1 t f
  else
    let d = f -. f0 in
    cost_mm1 t f0 +. (marginal_mm1 t f0 *. d) +. (0.5 *. second_mm1 t f0 *. d *. d)

let marginal t f =
  if f < 0.0 then invalid_arg "Delay.marginal: negative flow";
  let f0 = knee t in
  if f <= f0 then marginal_mm1 t f
  else marginal_mm1 t f0 +. (second_mm1 t f0 *. (f -. f0))

let second t f =
  if f < 0.0 then invalid_arg "Delay.second: negative flow";
  let f0 = knee t in
  second_mm1 t (Float.min f f0)

let sojourn t f =
  if f < 0.0 then invalid_arg "Delay.sojourn: negative flow";
  if Float.equal f 0.0 then (1.0 /. t.capacity) +. t.prop_delay
  else if f <= knee t then (1.0 /. (t.capacity -. f)) +. t.prop_delay
  else cost t f /. f

let utilization t f = f /. t.capacity
