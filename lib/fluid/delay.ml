type t = { capacity : float; prop_delay : float; rho_max : float }

let create ?(rho_max = 0.99) ~capacity ~prop_delay () =
  if capacity <= 0.0 then invalid_arg "Delay.create: capacity <= 0";
  if prop_delay < 0.0 then invalid_arg "Delay.create: negative prop_delay";
  if rho_max <= 0.0 || rho_max >= 1.0 then invalid_arg "Delay.create: rho_max not in (0,1)";
  { capacity; prop_delay; rho_max }

let of_link ?rho_max ~packet_size (l : Mdr_topology.Graph.link) =
  if packet_size <= 0.0 then invalid_arg "Delay.of_link: packet_size <= 0";
  create ?rho_max ~capacity:(l.capacity /. packet_size) ~prop_delay:l.prop_delay ()

let knee t = t.rho_max *. t.capacity

let saturated t f = f > knee t

(* Raw M/M/1 pieces. They go negative past [capacity] and blow up at
   it, so every public entry point routes through the knee extension;
   the guards keep any future internal caller honest. *)
let cost_mm1 t f =
  if f >= t.capacity then invalid_arg "Delay.cost_mm1: flow at or past capacity";
  (f /. (t.capacity -. f)) +. (t.prop_delay *. f)

let marginal_mm1 t f =
  if f >= t.capacity then invalid_arg "Delay.marginal_mm1: flow at or past capacity";
  (t.capacity /. ((t.capacity -. f) ** 2.0)) +. t.prop_delay

let second_mm1 t f =
  if f >= t.capacity then invalid_arg "Delay.second_mm1: flow at or past capacity";
  2.0 *. t.capacity /. ((t.capacity -. f) ** 3.0)

(* Every public function is total on [0, infinity): any finite
   non-negative flow yields a finite value (the knee's Taylor extension
   takes over past [rho_max * capacity]); non-finite or negative input
   is a caller bug and is rejected loudly rather than propagated as
   NaN through the cost pipeline. *)
let check_flow fn f =
  if not (Float.is_finite f) then
    invalid_arg (Printf.sprintf "Delay.%s: non-finite flow" fn);
  if f < 0.0 then invalid_arg (Printf.sprintf "Delay.%s: negative flow" fn)

let cost t f =
  check_flow "cost" f;
  let f0 = knee t in
  if f <= f0 then cost_mm1 t f
  else
    let d = f -. f0 in
    cost_mm1 t f0 +. (marginal_mm1 t f0 *. d) +. (0.5 *. second_mm1 t f0 *. d *. d)

let marginal t f =
  check_flow "marginal" f;
  let f0 = knee t in
  if f <= f0 then marginal_mm1 t f
  else marginal_mm1 t f0 +. (second_mm1 t f0 *. (f -. f0))

let second t f =
  check_flow "second" f;
  second_mm1 t (Float.min f (knee t))

let sojourn t f =
  check_flow "sojourn" f;
  if Float.equal f 0.0 then (1.0 /. t.capacity) +. t.prop_delay
  else if f <= knee t then (1.0 /. (t.capacity -. f)) +. t.prop_delay
  else cost t f /. f

let utilization t f = f /. t.capacity
