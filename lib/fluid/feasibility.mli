(** Demand feasibility: can the offered traffic physically fit?

    The paper's stability argument (and Gallager's OPT) assumes the
    input rates admit some routing with every link flow strictly below
    capacity. This module checks the per-destination necessary
    condition by max-flow: for each destination [d], the largest
    uniform fraction [alpha] such that every source can ship
    [alpha * r_i(d)] to [d] simultaneously (bisection over a
    super-source max-flow). The network-wide {!report} takes the
    minimum over destinations.

    The bound is exact per destination but only {e necessary} jointly
    (different destinations compete for shared links), so callers that
    must guarantee convergence — {!Mdr_gallager.Gallager.solve}'s
    degradation path — pair it with non-convergence detection and
    shrink further when needed. *)

val max_flow :
  ?cap:float ->
  Mdr_topology.Graph.t ->
  packet_size:float ->
  sources:(int * float) list ->
  dst:int ->
  float
(** Max flow (packets/s) from a super-source feeding each [(src,
    demand)] — demand caps the source's edge — to [dst], over link
    capacities converted with [packet_size] and scaled by [cap]
    (fraction of raw capacity usable, default 1.0). *)

type report = {
  fraction : float;
      (** largest uniform admissible fraction over all destinations,
          capped at 1.0 (1.0 = every commodity fits) *)
  per_destination : (int * float) list;
      (** (destination, its max uniform fraction), one entry per
          destination with demand *)
  bottleneck : int option;
      (** the destination attaining the minimum; [None] when feasible *)
}

val feasible : report -> bool
(** [fraction >= 1.0]. *)

val report :
  ?cap:float -> Mdr_topology.Graph.t -> packet_size:float -> Traffic.t -> report
(** Analyse one traffic matrix. [cap] as in {!max_flow}. *)
