(** M/M/1 link delay model (paper Eq. 24) with a smooth convex
    extension beyond a utilisation cap.

    With capacity [c] (packets/s), propagation delay [tau] (s) and flow
    [f] (packets/s), the paper uses

    - D(f)  = f /(c - f) + tau * f   — expected packets in flight times
      ... i.e. delay-rate product ("expected number of messages per
      second transmitted times the expected delay per message");
    - D'(f) = c /(c - f)^2 + tau     — the marginal delay, the link
      cost used by all three routing schemes.

    D explodes at [f = c]; transient iterates of OPT and, above all,
    single-path routing can overload a link, so beyond
    [f0 = rho_max * c] we continue D with its second-order Taylor
    expansion. The extension is C^2, strictly convex and finite, the
    standard flow-deviation device; below [f0] the model is exactly
    M/M/1. *)

type t = private {
  capacity : float;  (** packets per second *)
  prop_delay : float;  (** seconds *)
  rho_max : float;  (** utilisation where the Taylor extension starts *)
}

val create : ?rho_max:float -> capacity:float -> prop_delay:float -> unit -> t
(** [rho_max] defaults to 0.99; must lie in (0, 1). *)

val of_link : ?rho_max:float -> packet_size:float -> Mdr_topology.Graph.link -> t
(** Convert a topology link (capacity in bits/s) using the mean
    [packet_size] in bits. *)

val knee : t -> float
(** [rho_max * capacity], the flow where the Taylor extension takes
    over from the exact M/M/1 forms — the saturation point of the cost
    pipeline. *)

val saturated : t -> float -> bool
(** [saturated t f] is true when [f] lies beyond the knee: the
    reported cost is the convex extension, not the M/M/1 value, and
    the link is operating past its engineered utilisation cap. *)

val cost : t -> float -> float
(** [cost t f] is D(f) for [f >= 0]. Total on [0, infinity): finite,
    positive and strictly increasing for every finite non-negative
    flow. @raise Invalid_argument on negative or non-finite [f]. *)

val marginal : t -> float -> float
(** [marginal t f] is D'(f); strictly increasing in [f]. *)

val second : t -> float -> float
(** Second derivative D''(f): 2c/(c-f)^3 below the cap, constant
    beyond it. Used by second-order (Bertsekas-Gallager style)
    step scaling. *)

val sojourn : t -> float -> float
(** Expected per-packet delay at flow [f]: [1/(c-f) + tau] below the
    cap, continued consistently with [cost] above it (so that
    [cost t f = f *. sojourn t f] holds in the M/M/1 region). *)

val utilization : t -> float -> float
