module Graph = Mdr_topology.Graph

type model = {
  topo : Graph.t;
  packet_size : float;
  delays : (int * int, Delay.t) Hashtbl.t;
}

let model ?rho_max topo ~packet_size =
  let delays = Hashtbl.create (Graph.link_count topo) in
  Graph.fold_links topo ~init:() ~f:(fun () l ->
      Hashtbl.replace delays (l.src, l.dst) (Delay.of_link ?rho_max ~packet_size l));
  { topo; packet_size; delays }

let packet_size m = m.packet_size

let delay_of_link m ~src ~dst =
  try Hashtbl.find m.delays (src, dst)
  with Not_found ->
    invalid_arg
      (Printf.sprintf "Evaluate.delay_of_link: no link %s -> %s"
         (Graph.name m.topo src) (Graph.name m.topo dst))

let total_cost m flows =
  Graph.fold_links m.topo ~init:0.0 ~f:(fun acc l ->
      let f = Flows.link_flow flows ~src:l.src ~dst:l.dst in
      if f <= 0.0 then acc
      else acc +. Delay.cost (delay_of_link m ~src:l.src ~dst:l.dst) f)

let average_delay m flows traffic =
  let total = Traffic.total_rate traffic in
  if total <= 0.0 then 0.0 else total_cost m flows /. total

let link_cost m flows ~src ~dst =
  let f = Flows.link_flow flows ~src ~dst in
  Delay.marginal (delay_of_link m ~src ~dst) f

let saturated_links m flows =
  List.rev
    (Graph.fold_links m.topo ~init:[] ~f:(fun acc l ->
         let f = Flows.link_flow flows ~src:l.src ~dst:l.dst in
         if Delay.saturated (delay_of_link m ~src:l.src ~dst:l.dst) f then
           (l.src, l.dst) :: acc
         else acc))

let costs_finite m flows =
  Graph.fold_links m.topo ~init:true ~f:(fun ok l ->
      let f = Flows.link_flow flows ~src:l.src ~dst:l.dst in
      let d = delay_of_link m ~src:l.src ~dst:l.dst in
      ok
      && Float.is_finite f && f >= 0.0
      && Float.is_finite (Delay.cost d f)
      && Float.is_finite (Delay.marginal d f)
      && Delay.cost d f >= 0.0
      && Delay.marginal d f > 0.0)

let link_costs m flows =
  let table = Hashtbl.create (Graph.link_count m.topo) in
  Graph.fold_links m.topo ~init:() ~f:(fun () l ->
      Hashtbl.replace table (l.src, l.dst)
        (link_cost m flows ~src:l.src ~dst:l.dst));
  table

(* Shared downstream recursion for both expected delays (per-packet
   sojourn) and marginal distances (marginal link cost): values are
   computed in reverse topological order of SG_dst, so each router's
   successors are resolved before the router itself. *)
let downstream_values ?into m params ~dst ~link_value =
  let n = Graph.node_count m.topo in
  let values =
    match into with
    | None -> Array.make n infinity
    | Some a ->
      if Array.length a < n then
        invalid_arg "Evaluate: into buffer shorter than node count";
      Array.fill a 0 n infinity;
      a
  in
  values.(dst) <- 0.0;
  let order =
    try Flows.topological_order params ~dst
    with Flows.Cyclic_routing _ ->
      invalid_arg "Evaluate: successor graph has a cycle"
  in
  let resolve node =
    if node <> dst then begin
      match Params.fractions params ~node ~dst with
      | [] -> ()
      | fracs ->
        let total =
          List.fold_left
            (fun acc (via, frac) ->
              acc +. (frac *. (link_value ~src:node ~dst:via +. values.(via))))
            0.0 fracs
        in
        values.(node) <- total
    end
  in
  (* Topological order lists predecessors first; successors last. *)
  List.iter resolve (List.rev order);
  values

let sojourn_value m flows ~src ~dst =
  let f = Flows.link_flow flows ~src ~dst in
  Delay.sojourn (delay_of_link m ~src ~dst) f

let expected_delay_array m params flows ~dst =
  downstream_values m params ~dst ~link_value:(sojourn_value m flows)

let expected_delay m params flows ~src ~dst =
  (expected_delay_array m params flows ~dst).(src)

let per_flow_delays m params flows traffic =
  let cache = Hashtbl.create 8 in
  let array_for dst =
    match Hashtbl.find_opt cache dst with
    | Some a -> a
    | None ->
      let a = expected_delay_array m params flows ~dst in
      Hashtbl.replace cache dst a;
      a
  in
  List.map
    (fun (flow : Traffic.flow) -> (flow, (array_for flow.dst).(flow.src)))
    (Traffic.flows traffic)

let marginal_distances ?into m params flows ~dst =
  let link_value ~src ~dst =
    let f = Flows.link_flow flows ~src ~dst in
    Delay.marginal (delay_of_link m ~src ~dst) f
  in
  downstream_values ?into m params ~dst ~link_value
