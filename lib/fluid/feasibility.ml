module Graph = Mdr_topology.Graph

(* Edmonds-Karp max-flow on a dense capacity matrix; networks here are
   tens of nodes, so simplicity wins over asymptotics. *)
let edmonds_karp cap ~src ~dst =
  let n = Array.length cap in
  let residual = Array.map Array.copy cap in
  let parent = Array.make n (-1) in
  let total = ref 0.0 in
  let eps = 1e-12 in
  let rec augment () =
    Array.fill parent 0 n (-1);
    parent.(src) <- src;
    let queue = Queue.create () in
    Queue.add src queue;
    while (not (Queue.is_empty queue)) && parent.(dst) < 0 do
      let u = Queue.pop queue in
      for v = 0 to n - 1 do
        if parent.(v) < 0 && residual.(u).(v) > eps then begin
          parent.(v) <- u;
          Queue.add v queue
        end
      done
    done;
    if parent.(dst) >= 0 then begin
      let bottleneck = ref infinity in
      let v = ref dst in
      while !v <> src do
        let u = parent.(!v) in
        bottleneck := Float.min !bottleneck residual.(u).(!v);
        v := u
      done;
      let v = ref dst in
      while !v <> src do
        let u = parent.(!v) in
        residual.(u).(!v) <- residual.(u).(!v) -. !bottleneck;
        residual.(!v).(u) <- residual.(!v).(u) +. !bottleneck;
        v := u
      done;
      total := !total +. !bottleneck;
      augment ()
    end
  in
  augment ();
  !total

let capacity_matrix ?(cap = 1.0) topo ~packet_size =
  if packet_size <= 0.0 then
    invalid_arg "Feasibility: packet_size <= 0";
  if cap <= 0.0 || cap > 1.0 then
    invalid_arg "Feasibility: cap must be in (0, 1]";
  let n = Graph.node_count topo in
  (* Slot n is the super-source feeding each commodity's origin. *)
  let m = Array.make_matrix (n + 1) (n + 1) 0.0 in
  Graph.fold_links topo ~init:() ~f:(fun () l ->
      m.(l.src).(l.dst) <- cap *. l.capacity /. packet_size);
  m

let max_flow ?cap topo ~packet_size ~sources ~dst =
  let n = Graph.node_count topo in
  let m = capacity_matrix ?cap topo ~packet_size in
  List.iter
    (fun (src, demand) ->
      if src < 0 || src >= n then invalid_arg "Feasibility.max_flow: source out of range";
      if demand < 0.0 then invalid_arg "Feasibility.max_flow: negative demand";
      m.(n).(src) <- m.(n).(src) +. demand)
    sources;
  edmonds_karp m ~src:n ~dst

(* Largest uniform fraction alpha such that every source can ship
   alpha times its demand to [dst] simultaneously: feasible iff the
   max-flow with source edges capped at alpha * r equals alpha * total
   demand. Monotone in alpha, so bisection converges fast; note that
   max-flow / demand alone overestimates alpha (it may starve one
   source to saturate another). *)
let destination_fraction ?cap topo ~packet_size ~sources ~dst =
  let demand = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 sources in
  if demand <= 0.0 then 1.0
  else begin
    let feasible alpha =
      let scaled = List.map (fun (s, r) -> (s, alpha *. r)) sources in
      let flow = max_flow ?cap topo ~packet_size ~sources:scaled ~dst in
      flow >= (alpha *. demand) -. (1e-9 *. demand)
    in
    if feasible 1.0 then 1.0
    else begin
      let lo = ref 0.0 and hi = ref 1.0 in
      for _ = 1 to 40 do
        let mid = 0.5 *. (!lo +. !hi) in
        if feasible mid then lo := mid else hi := mid
      done;
      !lo
    end
  end

type report = {
  fraction : float;
  per_destination : (int * float) list;
  bottleneck : int option;
}

let feasible r = r.fraction >= 1.0

let report ?cap topo ~packet_size traffic =
  let per_destination =
    List.map
      (fun dst ->
        let sources =
          List.filter_map
            (fun (f : Traffic.flow) ->
              if f.dst = dst then Some (f.src, f.rate) else None)
            (Traffic.flows traffic)
        in
        (dst, destination_fraction ?cap topo ~packet_size ~sources ~dst))
      (Traffic.destinations traffic)
  in
  let fraction, bottleneck =
    List.fold_left
      (fun (best, who) (dst, f) -> if f < best then (f, Some dst) else (best, who))
      (1.0, None) per_destination
  in
  { fraction; per_destination; bottleneck }
