(* Float comparison helpers.

   Raw [=]/[<>]/[compare] on floats is forbidden by the repo lint: the
   polymorphic primitives disagree with IEEE semantics on [nan] (and
   [compare] orders it below everything), and exact equality silently
   becomes a correctness bug the moment an expression is re-associated.
   Code should either use [Float.equal] (exact, nan-reflexive — for
   sentinel values like 0.0 or infinity that are assigned, never
   computed) or the epsilon forms below (for anything that went through
   arithmetic). *)

let default_eps = 1e-9

let approx ?(eps = default_eps) a b =
  if Float.equal a b then true (* covers infinities and shared nan payloads *)
  else Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let is_zero ?(eps = default_eps) a = Float.abs a <= eps

let compare_eps ?(eps = default_eps) a b =
  if approx ~eps a b then 0 else Float.compare a b
