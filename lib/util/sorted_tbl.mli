(** Deterministic (ascending-key) iteration over [Hashtbl.t].

    Bucket order in [Hashtbl] depends on insertion history and resizes,
    so iterating it directly can leak layout into protocol state and
    break seed-reproducibility. These wrappers snapshot the bindings
    and visit them sorted by key (polymorphic [compare]).

    Note: bindings are snapshotted before the callback runs, so unlike
    [Hashtbl.iter] it is safe to add or remove keys from the table
    while iterating. If a key is bound multiple times, only the most
    recent binding is visited (as with [Hashtbl.replace]-style use). *)

val keys : ('a, 'b) Hashtbl.t -> 'a list
(** All distinct keys, ascending. *)

val bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All (key, most-recent-value) pairs, ascending by key. *)

val bindings_by : ('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** [bindings] under a caller-supplied total order on keys — a
    monomorphic comparator dodges polymorphic-[compare] cost on hot
    paths (the CSR builders sort 2|E| pairs per rebuild). The order
    must be total and agree with structural equality, or determinism
    is lost. *)

val iter : ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter f t] calls [f k v] in ascending key order. *)

val fold : ('a -> 'b -> 'acc -> 'acc) -> ('a, 'b) Hashtbl.t -> 'acc -> 'acc
(** [fold f t init] folds in ascending key order. *)
