(** Epsilon-aware float comparison, the sanctioned replacement for raw
    [=]/[<>]/[compare] on floats (which the repo lint rejects).

    Use [Float.equal] directly for exact sentinel checks (values that
    were assigned, never computed); use these helpers for anything that
    went through arithmetic. *)

val default_eps : float
(** 1e-9, the relative tolerance used when [?eps] is omitted. *)

val approx : ?eps:float -> float -> float -> bool
(** [approx a b] is true when [a] and [b] agree to within
    [eps * max 1 (max |a| |b|)] (relative for large magnitudes,
    absolute near zero). Equal infinities and identical nans compare
    true. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero a] is [|a| <= eps]. *)

val compare_eps : ?eps:float -> float -> float -> int
(** Total order that treats [approx]-equal values as equal. *)
