type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let row = if List.length row > ncols then List.filteri (fun i _ -> i < ncols) row else row in
    row @ List.init (ncols - List.length row) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  let widen row = List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row in
  List.iter widen rows;
  let line cells =
    cells
    |> List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell)
    |> String.concat " | "
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "-+-"
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let float_cell ?(decimals = 3) v =
  if Float.is_nan v then "nan"
  else if Float.equal v infinity then "inf"
  else if Float.equal v neg_infinity then "-inf"
  else Printf.sprintf "%.*f" decimals v

let series ~title ~x_label ~columns rows =
  let header = x_label :: columns in
  let body =
    List.map (fun (x, values) -> x :: List.map (fun v -> float_cell v) values) rows
  in
  Printf.sprintf "== %s ==\n%s" title (render ~header body)
