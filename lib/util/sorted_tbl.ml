(* Deterministic iteration over hash tables.

   [Hashtbl.iter]/[Hashtbl.fold] visit buckets in an order that depends
   on the table's internal layout — insertion history, resizes, and (if
   randomized hashing is ever enabled) the process seed. Protocol and
   simulation code must never let that order leak into router state,
   message emission order, or event scheduling, or runs stop being a
   pure function of the seed. These wrappers visit bindings in
   ascending key order instead; the repo's lint forbids raw
   [Hashtbl.iter]/[Hashtbl.fold] in [lib/routing], [lib/netsim],
   [lib/eventsim] and [lib/faults] in favour of this module. *)

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort_uniq compare

let bindings t = List.map (fun k -> (k, Hashtbl.find t k)) (keys t)

let iter f t = List.iter (fun (k, v) -> f k v) (bindings t)

let fold f t init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings t)
