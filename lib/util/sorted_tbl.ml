(* Deterministic iteration over hash tables.

   [Hashtbl.iter]/[Hashtbl.fold] visit buckets in an order that depends
   on the table's internal layout — insertion history, resizes, and (if
   randomized hashing is ever enabled) the process seed. Protocol and
   simulation code must never let that order leak into router state,
   message emission order, or event scheduling, or runs stop being a
   pure function of the seed. These wrappers visit bindings in
   ascending key order instead; the repo's lint forbids raw
   [Hashtbl.iter]/[Hashtbl.fold] in [lib/routing], [lib/netsim],
   [lib/eventsim] and [lib/faults] in favour of this module. *)

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort_uniq compare

(* One snapshot fold + one sort; the old sort-keys-then-find-each shape
   cost an extra hash lookup per binding, which dominated the CSR
   builders on 10k-node tables. Duplicate keys (Hashtbl.add shadowing)
   are rare enough that the authoritative [Hashtbl.find] only runs when
   the dedup pass actually meets one. *)
let bindings_by cmp t =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] in
  let sorted = List.stable_sort (fun (a, _) (b, _) -> cmp a b) all in
  let rec dedup acc = function
    | [] -> List.rev acc
    | (k, _v) :: rest -> (
      match acc with
      | (pk, _) :: acc_tl when cmp pk k = 0 ->
        (* Shadowed key: defer to the table for the most recent value. *)
        dedup ((pk, Hashtbl.find t pk) :: acc_tl) rest
      | _ -> dedup ((k, _v) :: acc) rest)
  in
  dedup [] sorted

let bindings t = bindings_by compare t

let iter f t = List.iter (fun (k, v) -> f k v) (bindings t)

let fold f t init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings t)
