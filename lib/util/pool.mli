(** A fixed pool of OCaml 5 domains for embarrassingly-parallel fan-out.

    Built directly on [Domain] / [Mutex] / [Condition] — no external
    scheduler — because every parallel site in this repo has the same
    shape: N completely independent tasks (scenarios, seeds, grid
    cells) whose results must come back in input order so that the
    aggregate is bit-identical to the sequential run.

    Determinism discipline: a task must derive all of its randomness
    from its own index (e.g. [Rng.substream ~seed ~index]) and touch no
    state shared with other tasks. Under that discipline, [map_array]
    with any job count produces exactly the array the sequential loop
    would, regardless of how the domains interleave — which is what the
    determinism sanitizer's sequential-vs-parallel check enforces.

    The pool is lazy and process-global: worker domains are spawned on
    the first parallel call and reused for every later one. With
    [jobs = 1] (the default when [MDR_JOBS] is unset) no domain is ever
    created and every map runs inline on the caller's stack — the
    sequential fallback used by tier-1 tests and the sanitizer
    baseline. *)

exception Task_failed of { index : int; exn : exn }
(** Raised by the map functions (in both sequential and parallel mode)
    when at least one task raised. [index] and [exn] are those of the
    lowest-indexed failing task, which is deterministic: indices are
    claimed in increasing order, so every task below [index] ran. *)

val jobs_of_string : string -> (int, string) result
(** Parse an [MDR_JOBS] value. Accepts a positive integer (surrounding
    whitespace tolerated); [Error] carries the reason — empty,
    non-numeric, zero or negative. *)

val default_jobs : unit -> int
(** The [MDR_JOBS] environment knob: a positive integer, or [1] when
    unset. [1] means pure sequential execution.
    @raise Invalid_argument when [MDR_JOBS] is set but invalid — a
    silently ignored typo ([MDR_JOBS=0], [MDR_JOBS=four]) would run an
    experiment at the wrong parallelism, which is exactly the kind of
    quiet misconfiguration this repo rejects. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f arr] applies [f] to every element and returns
    results in input order. [jobs] defaults to {!default_jobs}[ ()];
    it is clamped to [max 1]. With [jobs = 1] this is [Array.map f]
    run inline. Calling a parallel map ([jobs > 1]) from inside a pool
    task raises [Failure] — nest sequentially or restructure. *)

val mapi_array : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map_array}, with the input index passed to [f] — the usual
    way a task derives its seed substream. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is an index-ordered parallel [Array.init]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)

val running_in_task : unit -> bool
(** True while executing inside a pool task (on any domain, including
    the submitting one when it participates in its own batch). *)
