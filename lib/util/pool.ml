(* Fixed domain pool. One batch runs at a time; tasks are claimed by
   atomic fetch-and-add so claimed indices always form a prefix of the
   input. That prefix property is what makes failure reporting
   deterministic: when any task raises we stop claiming, let every
   in-flight task finish, and the lowest recorded failing index is then
   the lowest failing index of the whole input. *)

exception Task_failed of { index : int; exn : exn }

let jobs_of_string s =
  let s = String.trim s in
  if String.length s = 0 then Error "empty value; expected a positive integer"
  else
    match int_of_string_opt s with
    | None -> Error (Printf.sprintf "%S is not an integer" s)
    | Some n when n < 1 ->
        Error (Printf.sprintf "%d is not positive; need at least 1 job" n)
    | Some n -> Ok n

let default_jobs () =
  match Sys.getenv_opt "MDR_JOBS" with
  | None -> 1
  | Some s -> (
      match jobs_of_string s with
      | Ok n -> n
      | Error reason -> invalid_arg (Printf.sprintf "MDR_JOBS: %s" reason))

let in_task_key = Domain.DLS.new_key (fun () -> false)
let running_in_task () = Domain.DLS.get in_task_key

type batch = {
  gen : int;
  jobs : int;
  slots : int Atomic.t;  (* domains that took a processing slot *)
  next : int Atomic.t;  (* next unclaimed task index *)
  total : int;
  abort : bool Atomic.t;
  run_one : int -> unit;  (* must not raise; failures recorded inside *)
  mutable finished : int;  (* domains done with this batch *)
}

type state = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable batch : batch option;
  mutable gen : int;  (* generation of the most recently posted batch *)
  mutable workers : unit Domain.t list;
  mutable quit : bool;
}

let st =
  {
    m = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    batch = None;
    gen = 0;
    workers = [];
    quit = false;
  }

(* Serialises whole batches: the pool never sees two at once. Pool
   tasks cannot submit (nested parallel maps raise), so this can only
   contend if independent client threads race, which the repo does not
   do — but holding it keeps the invariant explicit. *)
let submit_m = Mutex.create ()

(* Claim and run tasks until none remain, an abort is flagged, or — if
   this domain arrived after [jobs] others — immediately, so a pool
   that once grew to N workers still runs narrower batches with only
   [jobs]-way parallelism. *)
let process b =
  if Atomic.fetch_and_add b.slots 1 < b.jobs then begin
    Domain.DLS.set in_task_key true;
    let continue = ref true in
    while !continue do
      if Atomic.get b.abort then continue := false
      else
        let i = Atomic.fetch_and_add b.next 1 in
        if i >= b.total then continue := false else b.run_one i
    done;
    Domain.DLS.set in_task_key false
  end

let rec worker_loop last_gen =
  Mutex.lock st.m;
  let rec await () =
    match st.batch with
    | Some b when b.gen > last_gen -> Some b
    | _ ->
        if st.quit then None
        else begin
          Condition.wait st.work_ready st.m;
          await ()
        end
  in
  match await () with
  | None -> Mutex.unlock st.m
  | Some b ->
      Mutex.unlock st.m;
      process b;
      Mutex.lock st.m;
      b.finished <- b.finished + 1;
      Condition.broadcast st.work_done;
      Mutex.unlock st.m;
      worker_loop b.gen

let shutdown () =
  Mutex.lock st.m;
  st.quit <- true;
  Condition.broadcast st.work_ready;
  let workers = st.workers in
  Mutex.unlock st.m;
  List.iter Domain.join workers

let ensure_workers n =
  Mutex.lock st.m;
  let first = st.workers = [] in
  while List.length st.workers < n do
    let gen = st.gen in
    st.workers <- Domain.spawn (fun () -> worker_loop gen) :: st.workers
  done;
  Mutex.unlock st.m;
  if first then at_exit shutdown

let run_batch ~jobs ~total ~abort run_one =
  Mutex.lock submit_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock submit_m)
    (fun () ->
      ensure_workers (jobs - 1);
      Mutex.lock st.m;
      st.gen <- st.gen + 1;
      let b =
        {
          gen = st.gen;
          jobs;
          slots = Atomic.make 0;
          next = Atomic.make 0;
          total;
          abort;
          run_one;
          finished = 0;
        }
      in
      let participants = List.length st.workers in
      st.batch <- Some b;
      Condition.broadcast st.work_ready;
      Mutex.unlock st.m;
      process b;
      Mutex.lock st.m;
      while b.finished < participants do
        Condition.wait st.work_done st.m
      done;
      st.batch <- None;
      Mutex.unlock st.m)

let mapi_array ?jobs f arr =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let n = Array.length arr in
  if jobs = 1 || n <= 1 then
    (* Inline sequential path; wrap failures exactly like the parallel
       path so callers handle one exception shape. *)
    Array.mapi
      (fun i x ->
        match f i x with
        | v -> v
        | exception exn -> raise (Task_failed { index = i; exn }))
      arr
  else begin
    if running_in_task () then
      failwith
        "Pool.map_array: parallel map nested inside a pool task; run the \
         inner map with ~jobs:1 or restructure the fan-out";
    let results = Array.make n None in
    (* Lowest failing index so far; protected by st.m (failures are
       rare, so a mutex beats a CAS loop for clarity). *)
    let failure = ref None in
    let abort = Atomic.make false in
    let run_one i =
      match f i arr.(i) with
      | v -> results.(i) <- Some v
      | exception exn ->
          Mutex.lock st.m;
          (match !failure with
          | Some (j, _) when j <= i -> ()
          | Some _ | None -> failure := Some (i, exn));
          Mutex.unlock st.m;
          Atomic.set abort true
    in
    run_batch ~jobs ~total:n ~abort run_one;
    match !failure with
    | Some (index, exn) -> raise (Task_failed { index; exn })
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* all indices claimed *))
          results
  end

let map_array ?jobs f arr = mapi_array ?jobs (fun _ x -> f x) arr
let init ?jobs n f = mapi_array ?jobs (fun i () -> f i) (Array.make n ())

let map_list ?jobs f l =
  Array.to_list (map_array ?jobs f (Array.of_list l))
