(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the simulator draws from an explicit
    [t], so experiments are reproducible from a single integer seed and
    independent streams can be split off without correlation. *)

type t

val create : seed:int -> t

val split : t -> t
(** A statistically independent stream derived from [t]; both streams
    advance independently afterwards. *)

val substream : seed:int -> index:int -> t
(** The [index]-th independent stream of [seed], a pure function of the
    pair. Parallel tasks use this so their randomness depends only on
    their input index — never on scheduling order or on how many draws
    other tasks have made. Requires [index >= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). Requires [bound > 0]. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given [rate] (mean [1/rate]).
    Requires [rate > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto variate, for heavy-tailed burst lengths. Requires
    [shape > 0] and [scale > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
