type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let substream ~seed ~index =
  if index < 0 then invalid_arg "Rng.substream: index < 0";
  (* Mix the index into the seeded state through a second SplitMix64
     round so substreams of one seed are mutually independent and the
     mapping depends only on the (seed, index) pair — never on how many
     draws any other stream has made. *)
  let base = mix (Int64.of_int seed) in
  { state = mix (Int64.add base (Int64.mul (Int64.of_int (index + 1)) golden_gamma)) }

let float t =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t ~lo ~hi =
  if not (lo <= hi) then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection-free for our purposes; modulo bias is negligible for the
     small bounds used in simulations (< 2^32). Mask to 62 bits so the
     value fits OCaml's 63-bit native int without wrapping negative. *)
  let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate <= 0";
  let u = 1.0 -. float t in
  -.log u /. rate

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: bad parameters";
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
