type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Compare entries: user ordering first, insertion order as tiebreak so
   that equal-priority events dequeue FIFO. *)
let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let grow h ~seed =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* Dummy slot reuses an existing entry (or the value being added
       when the heap is empty); never read past [size]. *)
    let dummy = if cap = 0 then { value = seed; seq = -1 } else h.data.(0) in
    let ndata = Array.make ncap dummy in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h x =
  grow h ~seed:x;
  h.data.(h.size) <- { value = x; seq = h.next_seq };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).value

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0).value in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.size <- 0;
  h.data <- [||]

let to_sorted_list h =
  let copy =
    {
      cmp = h.cmp;
      data = Array.sub h.data 0 h.size;
      size = h.size;
      next_seq = h.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
