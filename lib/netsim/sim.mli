(** The packet-level simulation of the full system: MPDA routers
    exchanging LSUs, per-link online cost estimation, the two-timescale
    MP traffic distribution (IH + AH), and stochastic traffic — the
    paper's Section 5 experimental setup.

    Every router keeps its own T_l and T_s timers, randomly phased (the
    paper: "long-term update periods should be phased randomly at each
    router"). At each T_l tick a router samples its adjacent links'
    estimators and floods the new costs through MPDA; whenever its
    successor set for a destination changes it re-seeds that entry's
    fractions with IH; at each T_s tick it re-measures the adjacent
    links only and adjusts fractions with AH. [Sp] restricts
    forwarding to the best successor, turning the same machinery into
    the single-path baseline; [Ecmp] keeps only equal-cost successors
    with an even split and no AH — OSPF-style multipath. *)

type scheme = Mp | Sp | Ecmp

type estimator_kind = Mm1 | Busy_period | Sojourn

type flow_spec = {
  src : int;
  dst : int;
  rate_bits : float;
  burst : (float * float) option;
      (** [(on_mean, off_mean)] for on-off sources; [None] = Poisson *)
}

type config = {
  scheme : scheme;
  t_l : float;  (** long-term update period, seconds *)
  t_s : float;  (** short-term update period, seconds *)
  mean_packet_size : float;  (** bits *)
  sim_time : float;  (** total simulated seconds *)
  warmup : float;  (** delays of packets created before this are ignored *)
  seed : int;
  estimator : estimator_kind;
  damping : float;  (** AH damping *)
  timeline_bucket : float;  (** width of the delay-timeline buckets, seconds *)
  buffer_packets : int option;
      (** per-link queue bound (tail drop); [None] = unbounded, the
          paper's lossless model *)
}

type event =
  | Fail_duplex of { at : float; a : int; b : int }
      (** both directions of the (a, b) link fail; queued packets are
          lost, MPDA reconverges around it *)
  | Restore_duplex of { at : float; a : int; b : int }
  | Crash_node of { at : float; node : int }
      (** the node dies: every adjacent link fails (queued and
          in-service packets are lost), live neighbors detect the loss
          and reconverge, and the node forgets all routing state *)
  | Restart_node of { at : float; node : int }
      (** the node comes back with a blank router and re-forms
          adjacencies with its live neighbors (links taken down by a
          {!Fail_duplex} that has not been restored stay down) *)

val default_config : config
(** MP, T_l = 10 s, T_s = 2 s, 4096-bit packets, 60 s runs, 10 s
    warmup, busy-period estimator, full AH step, seed 1. *)

type link_stat = {
  src : int;
  dst : int;
  utilization : float;  (** fraction of time the transmitter was busy *)
  mean_queue : float;  (** time-averaged packets queued or in service *)
  packets : int;  (** packets transmitted *)
}

type flow_stat = {
  spec : flow_spec;
  delivered : int;
  dropped : int;
  mean_delay : float;  (** seconds; 0 when nothing was delivered *)
  p95_delay : float;
  mean_hops : float;  (** forwarding steps per delivered packet *)
}

type epoch_stat = {
  from_ : float;
  until_ : float;  (** exclusive; the last epoch ends at [sim_time] *)
  mean_delay : float;  (** seconds over packets {e delivered} in the epoch *)
  delivered : int;
  dropped : int;
}
(** Delay/loss degradation between consecutive fault events. Epoch
    boundaries are the distinct event times (plus t = 0); unlike the
    flow statistics, epoch counters ignore the warmup cutoff so the
    degradation around each fault is visible wherever it falls. *)

type result = {
  flows : flow_stat list;  (** same order as the input specs *)
  avg_delay : float;  (** delivered-packet average over all flows *)
  total_delivered : int;
  total_dropped : int;
  goodput_fraction : float;
      (** delivered / (delivered + dropped) over all flows — the packet
          analogue of the fluid admitted fraction. 1.0 when nothing was
          settled. Packets are shed here by tail drop
          ([buffer_packets]) and by fault-induced queue loss, so this is
          the degradation contract's goodput under overload. *)
  shed_fraction : float;
      (** dropped / (delivered + dropped); complements
          [goodput_fraction] *)
  control_messages : int;  (** LSUs sent by all routers *)
  max_mean_queue : float;  (** worst time-averaged link occupancy *)
  loop_free_violations : int;
      (** successor-graph acyclicity failures observed at T_l ticks —
          must be 0 for MPDA-based schemes *)
  delay_timeline : (float * float * int) list;
      (** (bucket start, mean delay of packets delivered in the bucket,
          count) — includes the warmup, for plotting transients *)
  links : link_stat list;
      (** per-directed-link statistics, sorted by (src, dst) *)
  epochs : epoch_stat list;
      (** per-fault-epoch delay/loss, in time order; empty when the run
          had no events *)
}

val run :
  ?config:config -> ?events:event list -> Mdr_topology.Graph.t ->
  flow_spec list -> result
