module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine
module Rng = Mdr_util.Rng
module Stats = Mdr_util.Stats
module Sorted_tbl = Mdr_util.Sorted_tbl
module Router = Mdr_routing.Router
module Lfi = Mdr_routing.Lfi
module Estimator = Mdr_costs.Estimator
module Heuristics = Mdr_core.Heuristics

type scheme = Mp | Sp | Ecmp

type estimator_kind = Mm1 | Busy_period | Sojourn

type flow_spec = {
  src : int;
  dst : int;
  rate_bits : float;
  burst : (float * float) option;
}

type config = {
  scheme : scheme;
  t_l : float;
  t_s : float;
  mean_packet_size : float;
  sim_time : float;
  warmup : float;
  seed : int;
  estimator : estimator_kind;
  damping : float;
  timeline_bucket : float;
  buffer_packets : int option;
}

type event =
  | Fail_duplex of { at : float; a : int; b : int }
  | Restore_duplex of { at : float; a : int; b : int }
  | Crash_node of { at : float; node : int }
  | Restart_node of { at : float; node : int }

let event_time = function
  | Fail_duplex { at; _ }
  | Restore_duplex { at; _ }
  | Crash_node { at; _ }
  | Restart_node { at; _ } -> at

let default_config =
  {
    scheme = Mp;
    t_l = 10.0;
    t_s = 2.0;
    mean_packet_size = 4096.0;
    sim_time = 60.0;
    warmup = 10.0;
    seed = 1;
    estimator = Busy_period;
    damping = 1.0;
    timeline_bucket = 1.0;
    buffer_packets = None;
  }

type link_stat = {
  src : int;
  dst : int;
  utilization : float;
  mean_queue : float;
  packets : int;
}

type flow_stat = {
  spec : flow_spec;
  delivered : int;
  dropped : int;
  mean_delay : float;
  p95_delay : float;
  mean_hops : float;
}

type epoch_stat = {
  from_ : float;
  until_ : float;
  mean_delay : float;
  delivered : int;
  dropped : int;
}

type result = {
  flows : flow_stat list;
  avg_delay : float;
  total_delivered : int;
  total_dropped : int;
  goodput_fraction : float;
  shed_fraction : float;
  control_messages : int;
  max_mean_queue : float;
  loop_free_violations : int;
  delay_timeline : (float * float * int) list;
  links : link_stat list;
  epochs : epoch_stat list;
}

type link_state = {
  link : Link.t;
  mutable short_cost : float;  (* latest T_s estimate *)
  mutable long_cost : float;  (* mean of T_s estimates over last T_l *)
  mutable accum : float;
  mutable samples : int;
}

type node_state = {
  id : int;
  mutable router : Router.t;  (* replaced wholesale on a crash *)
  mutable alive : bool;
  out : (int, link_state) Hashtbl.t;  (* neighbor -> adjacent link *)
  forwarding : (int, (int * float) list) Hashtbl.t;  (* dst -> distribution *)
  succ_used : (int, int list) Hashtbl.t;  (* dst -> sorted successor set in use *)
  rng : Rng.t;
}

type sim = {
  topo : Graph.t;
  cfg : config;
  engine : Engine.t;
  nodes : node_state array;
  mutable loop_free_violations : int;
  flow_delays : float list ref array;
  delivered : int array;
  dropped : int array;
  hops_sum : int array;
  timeline_sum : float array;
  timeline_count : int array;
  (* Fault-epoch accounting: epoch i spans
     [epoch_bounds.(i), epoch_bounds.(i+1)) (the last one runs to the
     end of the simulation). Empty bounds = no fault events, no
     epoch reporting. *)
  epoch_bounds : float array;
  epoch_delay_sum : float array;
  epoch_delivered : int array;
  epoch_dropped : int array;
}

let epoch_of sim now =
  let rec last_leq i = if i <= 0 || sim.epoch_bounds.(i) <= now then i else last_leq (i - 1) in
  if Array.length sim.epoch_bounds = 0 then -1
  else last_leq (Array.length sim.epoch_bounds - 1)

let zero_flow_marginal cfg (l : Graph.link) =
  let c_pkts = l.capacity /. cfg.mean_packet_size in
  (1.0 /. c_pkts) +. l.prop_delay

let make_estimator cfg (l : Graph.link) =
  match cfg.estimator with
  | Mm1 ->
    Estimator.mm1 ~capacity:(l.capacity /. cfg.mean_packet_size)
      ~prop_delay:l.prop_delay
  | Busy_period -> Estimator.busy_period ~prop_delay:l.prop_delay
  | Sojourn -> Estimator.measured_sojourn ~prop_delay:l.prop_delay

(* --- Forwarding-table maintenance ----------------------------------- *)

(* Marginal distance through neighbor k for destination [dst], seen
   from node [ns]: the neighbor's reported distance plus the measured
   adjacent-link cost (long-term for IH at route changes, short-term
   for AH). *)
let through ns ~dst ~cost_of k =
  Router.neighbor_distance ns.router ~nbr:k ~dst +. cost_of k

let refresh_forwarding sim ns =
  let n = Graph.node_count sim.topo in
  let long_cost k =
    match Hashtbl.find_opt ns.out k with
    | Some ls -> ls.long_cost
    | None -> infinity
  in
  for dst = 0 to n - 1 do
    if dst <> ns.id then begin
      let s = List.sort Int.compare (Router.successors ns.router ~dst) in
      let best_of candidates =
        List.fold_left
          (fun best k ->
            let d = through ns ~dst ~cost_of:long_cost k in
            match best with
            | Some (_, bd) when bd <= d -> best
            | _ -> if Float.is_finite d then Some (k, d) else best)
          None candidates
      in
      let chosen =
        match (s, sim.cfg.scheme) with
        | [], _ -> []
        | _ :: _, Mp -> s
        | _ :: _, Sp -> (
          (* Single path: the successor minimising D_jk + l_k. *)
          match best_of s with Some (k, _) -> [ k ] | None -> [])
        | _ :: _, Ecmp -> (
          (* Equal-cost successors only, OSPF-style. *)
          match best_of s with
          | None -> []
          | Some (_, bd) ->
            List.filter
              (fun k ->
                through ns ~dst ~cost_of:long_cost k <= bd *. (1.0 +. 1e-9))
              s)
      in
      let previous =
        match Hashtbl.find_opt ns.succ_used dst with Some l -> l | None -> []
      in
      if chosen <> previous then begin
        Hashtbl.replace ns.succ_used dst chosen;
        match chosen with
        | [] -> Hashtbl.remove ns.forwarding dst
        | [ k ] -> Hashtbl.replace ns.forwarding dst [ (k, 1.0) ]
        | _ when sim.cfg.scheme = Ecmp ->
          let even = 1.0 /. float_of_int (List.length chosen) in
          Hashtbl.replace ns.forwarding dst (List.map (fun k -> (k, even)) chosen)
        | _ ->
          let entries =
            List.filter_map
              (fun k ->
                let a = through ns ~dst ~cost_of:long_cost k in
                if Float.is_finite a && a > 0.0 then Some (k, a) else None)
              chosen
          in
          (match entries with
          | [] -> Hashtbl.remove ns.forwarding dst
          | [ (k, _) ] -> Hashtbl.replace ns.forwarding dst [ (k, 1.0) ]
          | _ -> Hashtbl.replace ns.forwarding dst (Heuristics.initial entries))
      end
    end
  done

let adjust_forwarding sim ns =
  let short_cost k =
    match Hashtbl.find_opt ns.out k with
    | Some ls -> ls.short_cost
    | None -> infinity
  in
  Sorted_tbl.iter
    (fun dst current ->
      match current with
      | [] | [ _ ] -> ()
      | _ ->
        let adjusted =
          Heuristics.adjust ~damping:sim.cfg.damping ~current
            ~through:(through ns ~dst ~cost_of:short_cost)
            ()
        in
        Hashtbl.replace ns.forwarding dst adjusted)
    ns.forwarding

(* --- Control plane ---------------------------------------------------- *)

let link_up sim ~src ~dst =
  match Hashtbl.find_opt sim.nodes.(src).out dst with
  | None -> false
  | Some ls -> Link.is_up ls.link

let rec dispatch sim ~from_ outputs =
  List.iter
    (fun { Router.dst; msg } ->
      if link_up sim ~src:from_ ~dst then begin
        let link = Graph.link_exn sim.topo ~src:from_ ~dst in
        ignore
          (Engine.schedule sim.engine ~delay:link.prop_delay (fun () ->
               if link_up sim ~src:from_ ~dst && sim.nodes.(dst).alive then begin
                 let ns = sim.nodes.(dst) in
                 let replies = Router.handle_msg ns.router ~from_ msg in
                 refresh_forwarding sim ns;
                 dispatch sim ~from_:dst replies
               end))
      end)
    outputs

let long_term_tick sim ns =
  (* Fold the T_s samples of the closing interval into long-term costs
     and flood them through MPDA. *)
  let updates = ref [] in
  Sorted_tbl.iter
    (fun k ls ->
      let cost =
        if ls.samples > 0 then ls.accum /. float_of_int ls.samples
        else ls.long_cost
      in
      ls.long_cost <- cost;
      ls.accum <- 0.0;
      ls.samples <- 0;
      updates := (k, cost) :: !updates)
    ns.out;
  List.iter
    (fun (k, cost) ->
      let outputs = Router.handle_link_cost ns.router ~nbr:k ~cost in
      refresh_forwarding sim ns;
      dispatch sim ~from_:ns.id outputs)
    (* One update per neighbor, so keys are distinct: compare them
       alone, typed. *)
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) !updates)

let short_term_tick sim ns =
  Sorted_tbl.iter
    (fun _k ls ->
      let sample = Link.sample_cost ls.link in
      ls.short_cost <- sample.Estimator.marginal;
      ls.accum <- ls.accum +. sample.Estimator.marginal;
      ls.samples <- ls.samples + 1)
    ns.out;
  (* ECMP has no short-term balancing; SP entries are singletons so AH
     is a no-op there anyway. *)
  if sim.cfg.scheme <> Ecmp then adjust_forwarding sim ns

let check_loop_freedom sim =
  let n = Graph.node_count sim.topo in
  let ok =
    List.for_all
      (fun dst ->
        Lfi.successor_graph_acyclic ~n
          ~successors:(fun ~node ->
            match Hashtbl.find_opt sim.nodes.(node).succ_used dst with
            | Some s -> s
            | None -> [])
          ~dst)
      (Graph.nodes sim.topo)
  in
  if not ok then sim.loop_free_violations <- sim.loop_free_violations + 1

(* --- Data plane -------------------------------------------------------- *)

let record_delivery sim (p : Packet.t) =
  let now = Engine.now sim.engine in
  (if p.flow_id >= 0 then
     let e = epoch_of sim now in
     if e >= 0 then begin
       sim.epoch_delay_sum.(e) <- sim.epoch_delay_sum.(e) +. (now -. p.created);
       sim.epoch_delivered.(e) <- sim.epoch_delivered.(e) + 1
     end);
  let bucket = int_of_float (now /. sim.cfg.timeline_bucket) in
  if bucket >= 0 && bucket < Array.length sim.timeline_sum && p.flow_id >= 0 then begin
    sim.timeline_sum.(bucket) <- sim.timeline_sum.(bucket) +. (now -. p.created);
    sim.timeline_count.(bucket) <- sim.timeline_count.(bucket) + 1
  end;
  if p.created >= sim.cfg.warmup && p.flow_id >= 0 then begin
    sim.delivered.(p.flow_id) <- sim.delivered.(p.flow_id) + 1;
    sim.hops_sum.(p.flow_id) <- sim.hops_sum.(p.flow_id) + p.hops;
    let delays = sim.flow_delays.(p.flow_id) in
    delays := (now -. p.created) :: !delays
  end

let record_drop sim (p : Packet.t) =
  (if p.flow_id >= 0 then
     let e = epoch_of sim (Engine.now sim.engine) in
     if e >= 0 then sim.epoch_dropped.(e) <- sim.epoch_dropped.(e) + 1);
  if p.created >= sim.cfg.warmup && p.flow_id >= 0 then
    sim.dropped.(p.flow_id) <- sim.dropped.(p.flow_id) + 1

let rec forward sim node (p : Packet.t) =
  (* A dead node neither sources, relays nor sinks traffic: packets
     arriving at (or injected from) it are lost. *)
  if not sim.nodes.(node).alive then record_drop sim p
  else if node = p.dst then record_delivery sim p
  else if p.hops >= Packet.hop_limit then record_drop sim p
  else begin
    let ns = sim.nodes.(node) in
    match Hashtbl.find_opt ns.forwarding p.dst with
    | None | Some [] -> record_drop sim p
    | Some [ (k, _) ] -> transmit sim ns k p
    | Some entries ->
      (* Weighted choice per the routing parameters. *)
      let u = Rng.float ns.rng in
      let rec pick acc = function
        | [] -> fst (List.hd entries)
        | [ (k, _) ] -> k
        | (k, f) :: rest -> if u < acc +. f then k else pick (acc +. f) rest
      in
      transmit sim ns (pick 0.0 entries) p
  end

and transmit sim ns k p =
  match Hashtbl.find_opt ns.out k with
  | None -> record_drop sim p
  | Some ls ->
    if Link.is_up ls.link then begin
      p.hops <- p.hops + 1;
      Link.send ls.link p
    end
    else record_drop sim p

(* --- Assembly ---------------------------------------------------------- *)

let run ?(config = default_config) ?(events = []) topo flow_specs =
  if config.t_s <= 0.0 || config.t_l < config.t_s then
    invalid_arg "Sim.run: need 0 < t_s <= t_l";
  if config.timeline_bucket <= 0.0 then
    invalid_arg "Sim.run: timeline_bucket <= 0";
  let n = Graph.node_count topo in
  let engine = Engine.create () in
  let master_rng = Rng.create ~seed:config.seed in
  let nflows = List.length flow_specs in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          router = Router.create ~mode:Router.Mpda ~id ~n ();
          alive = true;
          out = Hashtbl.create 4;
          forwarding = Hashtbl.create 16;
          succ_used = Hashtbl.create 16;
          rng = Rng.split master_rng;
        })
  in
  let buckets = int_of_float (config.sim_time /. config.timeline_bucket) + 1 in
  let epoch_bounds =
    match events with
    | [] -> [||]
    | _ ->
      let times = Array.of_list (List.map event_time events) in
      Array.sort Float.compare times;
      let bounds = ref [] in
      Array.iter
        (fun t ->
          if t > 0.0 then
            match !bounds with
            | prev :: _ when Float.equal prev t -> ()
            | _ -> bounds := t :: !bounds)
        times;
      Array.of_list (0.0 :: List.rev !bounds)
  in
  let nepochs = Array.length epoch_bounds in
  let sim =
    {
      topo;
      cfg = config;
      engine;
      nodes;
      loop_free_violations = 0;
      flow_delays = Array.init nflows (fun _ -> ref []);
      delivered = Array.make nflows 0;
      dropped = Array.make nflows 0;
      hops_sum = Array.make nflows 0;
      timeline_sum = Array.make buckets 0.0;
      timeline_count = Array.make buckets 0;
      epoch_bounds;
      epoch_delay_sum = Array.make nepochs 0.0;
      epoch_delivered = Array.make nepochs 0;
      epoch_dropped = Array.make nepochs 0;
    }
  in
  (* Data-plane links with their estimators. *)
  List.iter
    (fun (l : Graph.link) ->
      let estimator = make_estimator config l in
      let deliver p = forward sim l.dst p in
      let ls =
        {
          link =
            Link.create ?buffer_packets:config.buffer_packets ~engine ~link:l
              ~estimator ~deliver ~drop:(record_drop sim) ();
          short_cost = zero_flow_marginal config l;
          long_cost = zero_flow_marginal config l;
          accum = 0.0;
          samples = 0;
        }
      in
      Hashtbl.replace nodes.(l.src).out l.dst ls)
    (Graph.links topo);
  (* Bring the control plane up at t = 0 with zero-flow costs. *)
  List.iter
    (fun (l : Graph.link) ->
      ignore
        (Engine.schedule engine ~delay:0.0 (fun () ->
             let ns = nodes.(l.src) in
             let outputs =
               Router.handle_link_up ns.router ~nbr:l.dst
                 ~cost:(zero_flow_marginal config l)
             in
             refresh_forwarding sim ns;
             dispatch sim ~from_:l.src outputs)))
    (Graph.links topo);
  (* Per-node timers, randomly phased. *)
  Array.iter
    (fun ns ->
      let phase_s = Rng.uniform ns.rng ~lo:0.0 ~hi:config.t_s in
      let phase_l = Rng.uniform ns.rng ~lo:0.0 ~hi:config.t_l in
      (* Timers keep firing while the node is down but do nothing — so
         a restarted node resumes measuring on its original phase. *)
      let rec s_tick () =
        if ns.alive then short_term_tick sim ns;
        if Engine.now engine +. config.t_s <= config.sim_time then
          ignore (Engine.schedule engine ~delay:config.t_s s_tick)
      in
      let rec l_tick () =
        if ns.alive then long_term_tick sim ns;
        if Engine.now engine +. config.t_l <= config.sim_time then
          ignore (Engine.schedule engine ~delay:config.t_l l_tick)
      in
      ignore (Engine.schedule engine ~delay:phase_s s_tick);
      ignore (Engine.schedule engine ~delay:phase_l l_tick))
    nodes;
  (* Instantaneous loop-freedom audit, twice per T_s. *)
  let rec audit () =
    check_loop_freedom sim;
    if Engine.now engine +. (config.t_s /. 2.0) <= config.sim_time then
      ignore (Engine.schedule engine ~delay:(config.t_s /. 2.0) audit)
  in
  ignore (Engine.schedule engine ~delay:(config.t_s /. 2.0) audit);
  (* Topology events: data-plane link failures and restorations, with
     the control plane notified at the endpoints. *)
  let admin_down = Hashtbl.create 4 in
  let fail_direction ~src ~dst =
    match Hashtbl.find_opt nodes.(src).out dst with
    | None -> ()
    | Some ls ->
      Link.fail ls.link;
      if nodes.(src).alive then begin
        let outputs = Router.handle_link_down nodes.(src).router ~nbr:dst in
        refresh_forwarding sim nodes.(src);
        dispatch sim ~from_:src outputs
      end
  in
  let restore_direction ~src ~dst =
    match Hashtbl.find_opt nodes.(src).out dst with
    | None -> ()
    | Some ls ->
      if nodes.(src).alive && nodes.(dst).alive then begin
        Link.restore ls.link;
        (* Re-announce with the last known long-term cost. *)
        let outputs =
          Router.handle_link_up nodes.(src).router ~nbr:dst ~cost:ls.long_cost
        in
        refresh_forwarding sim nodes.(src);
        dispatch sim ~from_:src outputs
      end
  in
  let crash_node node =
    let ns = nodes.(node) in
    if ns.alive then begin
      ns.alive <- false;
      (* Every adjacent link goes down; queued and in-service packets
         are lost. Live neighbors detect the loss and reconverge. *)
      Sorted_tbl.iter (fun _ ls -> Link.fail ls.link) ns.out;
      List.iter (fun k -> fail_direction ~src:k ~dst:node) (Graph.neighbors topo node);
      (* The node loses all routing state. *)
      ns.router <- Router.create ~mode:Router.Mpda ~id:node ~n ();
      Hashtbl.reset ns.forwarding;
      Hashtbl.reset ns.succ_used
    end
  in
  let restart_node node =
    let ns = nodes.(node) in
    if not ns.alive then begin
      ns.alive <- true;
      List.iter
        (fun k ->
          if not (Hashtbl.mem admin_down (min node k, max node k)) then begin
            restore_direction ~src:node ~dst:k;
            restore_direction ~src:k ~dst:node
          end)
        (Graph.neighbors topo node)
    end
  in
  List.iter
    (fun event ->
      match event with
      | Fail_duplex { at; a; b } ->
        ignore
          (Engine.schedule_at engine ~time:at (fun () ->
               Hashtbl.replace admin_down (min a b, max a b) ();
               fail_direction ~src:a ~dst:b;
               fail_direction ~src:b ~dst:a))
      | Restore_duplex { at; a; b } ->
        ignore
          (Engine.schedule_at engine ~time:at (fun () ->
               Hashtbl.remove admin_down (min a b, max a b);
               restore_direction ~src:a ~dst:b;
               restore_direction ~src:b ~dst:a))
      | Crash_node { at; node } ->
        ignore (Engine.schedule_at engine ~time:at (fun () -> crash_node node))
      | Restart_node { at; node } ->
        ignore (Engine.schedule_at engine ~time:at (fun () -> restart_node node)))
    events;
  (* Traffic sources. *)
  List.iteri
    (fun flow_id spec ->
      let rng = Rng.split master_rng in
      let gen =
        match spec.burst with
        | None ->
          Traffic_gen.poisson ~rng ~rate_bits:spec.rate_bits
            ~mean_packet_size:config.mean_packet_size
        | Some (on_mean, off_mean) ->
          Traffic_gen.on_off ~rng ~rate_bits:spec.rate_bits
            ~mean_packet_size:config.mean_packet_size ~on_mean ~off_mean
      in
      Traffic_gen.start gen ~engine ~flow_id ~src:spec.src ~dst:spec.dst
        ~inject:(fun p -> forward sim spec.src p)
        ~until:config.sim_time)
    flow_specs;
  Engine.run ~until:config.sim_time engine;
  (* Collect statistics. *)
  let flows =
    List.mapi
      (fun flow_id spec ->
        let delays = !(sim.flow_delays.(flow_id)) in
        {
          spec;
          delivered = sim.delivered.(flow_id);
          dropped = sim.dropped.(flow_id);
          mean_delay = Stats.mean_of_list delays;
          p95_delay = (match delays with [] -> 0.0 | _ -> Stats.percentile delays ~p:95.0);
          mean_hops =
            (if sim.delivered.(flow_id) = 0 then 0.0
             else
               float_of_int sim.hops_sum.(flow_id)
               /. float_of_int sim.delivered.(flow_id));
        })
      flow_specs
  in
  let total_delivered = Array.fold_left ( + ) 0 sim.delivered in
  let total_dropped = Array.fold_left ( + ) 0 sim.dropped in
  let all_delay_sum =
    List.fold_left
      (fun acc (fs : flow_stat) -> acc +. (fs.mean_delay *. float_of_int fs.delivered))
      0.0 flows
  in
  let max_mean_queue =
    Array.fold_left
      (fun acc ns ->
        Sorted_tbl.fold (fun _ ls acc -> Float.max acc (Link.mean_queue ls.link)) ns.out acc)
      0.0 nodes
  in
  let links =
    let rows =
      Array.to_list nodes
      |> List.concat_map (fun ns ->
             Sorted_tbl.fold
               (fun dst ls acc ->
                 {
                   src = ns.id;
                   dst;
                   utilization = Link.utilization ls.link;
                   mean_queue = Link.mean_queue ls.link;
                   packets = Link.packets_sent ls.link;
                 }
                 :: acc)
               ns.out [])
      |> Array.of_list
    in
    Array.sort
      (fun a b ->
        match Int.compare a.src b.src with
        | 0 -> Int.compare a.dst b.dst
        | c -> c)
      rows;
    Array.to_list rows
  in
  let delay_timeline =
    List.filter_map
      (fun bucket ->
        let count = sim.timeline_count.(bucket) in
        if count = 0 then None
        else
          Some
            ( float_of_int bucket *. config.timeline_bucket,
              sim.timeline_sum.(bucket) /. float_of_int count,
              count ))
      (List.init buckets Fun.id)
  in
  {
    flows;
    avg_delay =
      (if total_delivered = 0 then 0.0
       else all_delay_sum /. float_of_int total_delivered);
    total_delivered;
    total_dropped;
    goodput_fraction =
      (let settled = total_delivered + total_dropped in
       if settled = 0 then 1.0
       else float_of_int total_delivered /. float_of_int settled);
    shed_fraction =
      (let settled = total_delivered + total_dropped in
       if settled = 0 then 0.0
       else float_of_int total_dropped /. float_of_int settled);
    control_messages =
      Array.fold_left (fun acc ns -> acc + Router.stats_messages_sent ns.router) 0 nodes;
    max_mean_queue;
    loop_free_violations = sim.loop_free_violations;
    delay_timeline;
    links;
    epochs =
      List.init nepochs (fun i ->
          let until_ =
            if i + 1 < nepochs then epoch_bounds.(i + 1) else config.sim_time
          in
          let delivered = sim.epoch_delivered.(i) in
          {
            from_ = epoch_bounds.(i);
            until_;
            mean_delay =
              (if delivered = 0 then 0.0
               else sim.epoch_delay_sum.(i) /. float_of_int delivered);
            delivered;
            dropped = sim.epoch_dropped.(i);
          });
  }
