module Sorted_tbl = Mdr_util.Sorted_tbl

type mode = Pda | Mpda

type msg = {
  entries : Topo_table.entry list;
  reset : bool;
  seq : int option;
  ack_of : int option;
}

type output = { dst : int; msg : msg }

type t = {
  mode : mode;
  id : int;
  n : int;
  mutable main : Topo_table.t;
  nbr_tables : (int, Topo_table.t) Hashtbl.t;
  nbr_dist : (int, float array) Hashtbl.t;  (* D_jk: from nbr k to each dst *)
  nbr_seen : (int, int) Hashtbl.t;
      (* table version [nbr_dist] was computed at; when a neighbor's
         table version still matches, its Dijkstra is skipped *)
  ws : Dijkstra.workspace;  (* per-router scratch; never shared *)
  parent_buf : int array;  (* Dijkstra parents for the last MTU run *)
  adjacent : (int, float) Hashtbl.t;  (* l_k; absent = down *)
  dist : float array;  (* D_j; updated in place *)
  first_hop : int array;  (* preferred neighbor toward each dst; -1 *)
  fd : float array;  (* FD_j *)
  mutable succ : int list array;  (* S_j *)
  mutable active : bool;
  mutable active_phases : int;  (* PASSIVE -> ACTIVE transitions *)
  pending : (int, int) Hashtbl.t;  (* nbr -> seq awaited *)
  ghosts : (int, unit) Hashtbl.t;
      (* neighbors torn down *unilaterally* (inferred failure) that may
         still be routing through us on stale state. FD must not rise
         while any ghost remains: raising it would break the
         FD <= (distance the ghost holds about us) invariant that
         loop-freedom rests on, because a ghost — unlike a live
         neighbor — can never be asked to ACK the rise. *)
  mutable needs_full : int list;  (* neighbors owed a full-table LSU *)
  mutable next_seq : int;
  mutable sent : int;
  mutable events : int;
}

let create ~mode ~id ~n =
  if id < 0 || id >= n then invalid_arg "Router.create: id out of range";
  {
    mode;
    id;
    n;
    main = Topo_table.create ();
    nbr_tables = Hashtbl.create 8;
    nbr_dist = Hashtbl.create 8;
    nbr_seen = Hashtbl.create 8;
    ws = Dijkstra.workspace ();
    parent_buf = Array.make n (-1);
    adjacent = Hashtbl.create 8;
    dist =
      (let d = Array.make n infinity in
       d.(id) <- 0.0;
       d);
    first_hop = Array.make n (-1);
    fd =
      (let d = Array.make n infinity in
       d.(id) <- 0.0;
       d);
    succ = Array.make n [];
    active = false;
    active_phases = 0;
    pending = Hashtbl.create 8;
    ghosts = Hashtbl.create 4;
    needs_full = [];
    next_seq = 0;
    sent = 0;
    events = 0;
  }

let id t = t.id
let mode t = t.mode
let is_passive t = not t.active
let distance t ~dst = t.dist.(dst)
let feasible_distance t ~dst = t.fd.(dst)
let successors t ~dst = t.succ.(dst)
let best_successor t ~dst = if t.first_hop.(dst) < 0 then None else Some t.first_hop.(dst)

let neighbor_distance t ~nbr ~dst =
  match Hashtbl.find_opt t.nbr_dist nbr with
  | None -> infinity
  | Some d -> d.(dst)

let link_cost t ~nbr =
  match Hashtbl.find_opt t.adjacent nbr with Some c -> c | None -> infinity

let up_neighbors t = Sorted_tbl.keys t.adjacent

let main_table t = Topo_table.copy t.main

let stats_messages_sent t = t.sent
let stats_events t = t.events
let stats_active_phases t = t.active_phases

(* --- NTU: neighbor-table maintenance ------------------------------- *)

let refresh_neighbor_distances t ~nbr =
  let table =
    match Hashtbl.find_opt t.nbr_tables nbr with
    | Some tab -> tab
    | None ->
      let tab = Topo_table.create () in
      Hashtbl.replace t.nbr_tables nbr tab;
      tab
  in
  let current = Topo_table.version table in
  let clean =
    Hashtbl.mem t.nbr_dist nbr
    && (match Hashtbl.find_opt t.nbr_seen nbr with
       | Some seen -> seen = current
       | None -> false)
  in
  (* Duplicate LSUs, retransmissions, and no-op entries leave the
     table version alone, so the (identical) recomputation is skipped
     entirely. *)
  if not clean then begin
    let dist =
      match Hashtbl.find_opt t.nbr_dist nbr with
      | Some d -> d
      | None ->
        let d = Array.make t.n infinity in
        Hashtbl.replace t.nbr_dist nbr d;
        d
    in
    Dijkstra.on_table_into t.ws ~n:t.n ~root:nbr ~dist ~parent:t.parent_buf table;
    Hashtbl.replace t.nbr_seen nbr current
  end

let apply_lsu t ~from_ ~reset entries =
  let table =
    match Hashtbl.find_opt t.nbr_tables from_ with
    | Some tab -> tab
    | None ->
      let tab = Topo_table.create () in
      Hashtbl.replace t.nbr_tables from_ tab;
      tab
  in
  if reset then Topo_table.clear table;
  List.iter (Topo_table.apply_entry table) entries;
  refresh_neighbor_distances t ~nbr:from_

(* --- MTU: rebuild the main table ----------------------------------- *)

let first_hop_of_parents t ~dist ~parent dst =
  if dst = t.id || not (Float.is_finite dist.(dst)) then -1
  else begin
    let rec walk node =
      let p = parent.(node) in
      if p = t.id then node else if p < 0 then -1 else walk p
    in
    walk dst
  end

let mtu t =
  let merged = Topo_table.create () in
  let nbrs = up_neighbors t in
  (* Steps 2-4: for every known node j, copy j's out-links from the
     neighbor offering the least distance to j (ties to lower id). *)
  let known = Hashtbl.create 32 in
  List.iter
    (fun k ->
      Hashtbl.replace known k ();
      match Hashtbl.find_opt t.nbr_tables k with
      | None -> ()
      | Some tab -> List.iter (fun v -> Hashtbl.replace known v ()) (Topo_table.nodes tab))
    nbrs;
  let preferred_for j =
    List.fold_left
      (fun best k ->
        let d = neighbor_distance t ~nbr:k ~dst:j +. link_cost t ~nbr:k in
        match best with
        | Some (_, bd) when bd <= d -> best
        | _ -> if Float.is_finite d then Some (k, d) else best)
      None nbrs
  in
  Sorted_tbl.iter
    (fun j () ->
      if j <> t.id then
        match preferred_for j with
        | None -> ()
        | Some (p, _) ->
          let tab = Hashtbl.find t.nbr_tables p in
          List.iter
            (fun (tail, cost) ->
              if j <> t.id then Topo_table.set merged ~head:j ~tail ~cost)
            (Topo_table.out_links tab ~head:j))
    known;
  (* Step 5: adjacent links override anything neighbors said about
     links headed at this router. *)
  List.iter (fun (tail, _) -> Topo_table.remove merged ~head:t.id ~tail)
    (Topo_table.out_links merged ~head:t.id);
  List.iter
    (fun k -> Topo_table.set merged ~head:t.id ~tail:k ~cost:(link_cost t ~nbr:k))
    nbrs;
  (* Step 6: keep only the shortest-path tree. Distances land directly
     in [t.dist] and parents in the reusable scratch — steady-state
     recomputation allocates nothing but the tree table. *)
  Dijkstra.on_table_into t.ws ~n:t.n ~root:t.id ~dist:t.dist ~parent:t.parent_buf
    merged;
  let res = { Dijkstra.dist = t.dist; parent = t.parent_buf } in
  let tree =
    Dijkstra.tree_of_result ~n:t.n ~root:t.id res ~cost:(fun ~head ~tail ->
        match Topo_table.cost merged ~head ~tail with
        | Some c -> c
        | None -> assert false)
  in
  let changes = Topo_table.diff ~old_table:t.main ~new_table:tree in
  t.main <- tree;
  t.dist.(t.id) <- 0.0;
  for j = 0 to t.n - 1 do
    t.first_hop.(j) <- first_hop_of_parents t ~dist:t.dist ~parent:t.parent_buf j
  done;
  changes

(* --- Successor sets (Eq. 17 / line 4 of MPDA) ----------------------- *)

let recompute_successors t =
  let bound j = match t.mode with Mpda -> t.fd.(j) | Pda -> t.dist.(j) in
  let nbrs = up_neighbors t in
  t.succ <-
    Array.init t.n (fun j ->
        if j = t.id then []
        else
          List.filter (fun k -> neighbor_distance t ~nbr:k ~dst:j < bound j) nbrs)

(* --- Output composition --------------------------------------------- *)

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let compose_outputs t ~changes ~ack_to =
  (* [ack_to]: Some (k, seq) when the event was a data LSU from k whose
     [seq] must be acknowledged. Full tables go to neighbors that just
     came up. *)
  let nbrs = up_neighbors t in
  let full_targets = List.filter (fun k -> List.mem k t.needs_full) nbrs in
  t.needs_full <- [];
  let data_targets =
    if changes = [] then full_targets
    else List.sort_uniq compare (full_targets @ nbrs)
  in
  let outputs = ref [] in
  let ack_consumed = ref false in
  List.iter
    (fun k ->
      let is_full = List.mem k full_targets in
      let entries = if is_full then Topo_table.entries t.main else changes in
      if entries <> [] || is_full then begin
        let seq = match t.mode with Mpda -> Some (fresh_seq t) | Pda -> None in
        let ack_of =
          match ack_to with Some (k', s) when k' = k -> Some s | Some _ | None -> None
        in
        if ack_of <> None then ack_consumed := true;
        (match (t.mode, seq) with
        | Mpda, Some s -> Hashtbl.replace t.pending k s
        | Mpda, None | Pda, _ -> ());
        outputs := { dst = k; msg = { entries; reset = is_full; seq; ack_of } } :: !outputs
      end)
    data_targets;
  (* Pure ACK when the triggering LSU got no piggybacked reply. *)
  (match ack_to with
  | Some (k, s) when (not !ack_consumed) && Hashtbl.mem t.adjacent k ->
    outputs :=
      { dst = k; msg = { entries = []; reset = false; seq = None; ack_of = Some s } }
      :: !outputs
  | Some _ | None -> ());
  if t.mode = Mpda && Hashtbl.length t.pending > 0 then begin
    if not t.active then t.active_phases <- t.active_phases + 1;
    t.active <- true
  end;
  t.sent <- t.sent + List.length !outputs;
  List.rev !outputs

(* --- The MPDA event loop (Fig. 4) ----------------------------------- *)

let process t ~ack_to ~ack_received =
  t.events <- t.events + 1;
  (* [ack_received]: Some (nbr, seq) when the event carried an ACK. *)
  (match ack_received with
  | Some (nbr, seq) -> (
    match Hashtbl.find_opt t.pending nbr with
    | Some expected when expected = seq -> Hashtbl.remove t.pending nbr
    | Some _ | None -> ())
  | None -> ());
  let last_ack = t.active && Hashtbl.length t.pending = 0 in
  let changes =
    match t.mode with
    | Pda -> mtu t
    | Mpda ->
      if not t.active then begin
        (* Lines 2a-2b: PASSIVE — update T and lower FD to D. *)
        let changes = mtu t in
        for j = 0 to t.n - 1 do
          t.fd.(j) <- Float.min t.fd.(j) t.dist.(j)
        done;
        changes
      end
      else if last_ack then begin
        (* Lines 3a-3c: the deferred MTU runs now; FD may rise to
           min(old D, new D) — unless a ghost still holds an old claim,
           in which case FD stays pinned (it may only keep falling)
           until every unilateral teardown is confirmed bilateral. *)
        let temp = Array.copy t.dist in
        t.active <- false;
        let changes = mtu t in
        if Hashtbl.length t.ghosts = 0 then
          for j = 0 to t.n - 1 do
            t.fd.(j) <- Float.min temp.(j) t.dist.(j)
          done
        else
          for j = 0 to t.n - 1 do
            t.fd.(j) <- Float.min t.fd.(j) (Float.min temp.(j) t.dist.(j))
          done;
        changes
      end
      else []
  in
  recompute_successors t;
  compose_outputs t ~changes ~ack_to

(* --- Event handlers -------------------------------------------------- *)

let handle_link_up t ~nbr ~cost =
  if not (Float.is_finite cost) || cost < 0.0 then
    invalid_arg "Router.handle_link_up: bad cost";
  Hashtbl.replace t.adjacent nbr cost;
  if not (Hashtbl.mem t.nbr_tables nbr) then begin
    Hashtbl.replace t.nbr_tables nbr (Topo_table.create ());
    refresh_neighbor_distances t ~nbr
  end;
  if not (List.mem nbr t.needs_full) then t.needs_full <- nbr :: t.needs_full;
  process t ~ack_to:None ~ack_received:None

let handle_link_down ?(unconfirmed = false) t ~nbr =
  if Hashtbl.mem t.adjacent nbr then begin
    Hashtbl.remove t.adjacent nbr;
    (* A bilateral (oracle-announced) failure means the peer forgot us
       in the same instant; an inferred one means the peer may still
       hold — and route on — its old view of us, so it keeps a claim on
       FD until {!confirm_link_down}. *)
    if unconfirmed then Hashtbl.replace t.ghosts nbr ();
    (match Hashtbl.find_opt t.nbr_tables nbr with
    | Some tab -> Topo_table.clear tab
    | None -> ());
    refresh_neighbor_distances t ~nbr;
    t.needs_full <- List.filter (fun k -> k <> nbr) t.needs_full;
    (* Pending ACKs from the failed neighbor count as received. *)
    let ack = Hashtbl.find_opt t.pending nbr |> Option.map (fun s -> (nbr, s)) in
    process t ~ack_to:None ~ack_received:ack
  end
  else []

let confirm_link_down t ~nbr =
  if not (Hashtbl.mem t.ghosts nbr) then []
  else begin
    Hashtbl.remove t.ghosts nbr;
    (* FD was pinned while the ghost lived. If it lags the current
       distance and no diffusing computation is running to lift it,
       run an empty one: neighbors ACK the probe and the completion
       raises FD through the ordinary, loop-safe path. *)
    let lagging = ref false in
    for j = 0 to t.n - 1 do
      if t.fd.(j) +. 1e-12 < t.dist.(j) then lagging := true
    done;
    if t.mode = Mpda && Hashtbl.length t.ghosts = 0 && (not t.active) && !lagging
    then begin
      let outputs =
        List.map
          (fun k ->
            let s = fresh_seq t in
            Hashtbl.replace t.pending k s;
            { dst = k; msg = { entries = []; reset = false; seq = Some s; ack_of = None } })
          (up_neighbors t)
      in
      if outputs <> [] then begin
        if not t.active then t.active_phases <- t.active_phases + 1;
        t.active <- true;
        t.sent <- t.sent + List.length outputs
      end;
      outputs
    end
    else []
  end

let handle_link_cost t ~nbr ~cost =
  if not (Hashtbl.mem t.adjacent nbr) then []
  else begin
    Hashtbl.replace t.adjacent nbr cost;
    process t ~ack_to:None ~ack_received:None
  end

let handle_msg t ~from_ msg =
  if not (Hashtbl.mem t.adjacent from_) then []
  else begin
    if msg.entries <> [] || msg.reset then apply_lsu t ~from_ ~reset:msg.reset msg.entries;
    let ack_received = Option.map (fun s -> (from_, s)) msg.ack_of in
    let ack_to = Option.map (fun s -> (from_, s)) msg.seq in
    process t ~ack_to ~ack_received
  end

(* --- Deep copy and canonical state (for the model checker) ----------- *)

let copy t =
  let copy_tbl copy_v src =
    let fresh = Hashtbl.create (Hashtbl.length src) in
    Sorted_tbl.iter (fun k v -> Hashtbl.replace fresh k (copy_v v)) src;
    fresh
  in
  {
    t with
    main = Topo_table.copy t.main;
    nbr_tables = copy_tbl Topo_table.copy t.nbr_tables;
    nbr_dist = copy_tbl Array.copy t.nbr_dist;
    (* Table copies keep their version counters, so the seen-versions
       transfer verbatim: distances current in the original stay
       current in the copy. *)
    nbr_seen = copy_tbl Fun.id t.nbr_seen;
    ws = Dijkstra.workspace ();
    parent_buf = Array.copy t.parent_buf;
    adjacent = copy_tbl Fun.id t.adjacent;
    dist = Array.copy t.dist;
    first_hop = Array.copy t.first_hop;
    fd = Array.copy t.fd;
    succ = Array.copy t.succ;
    pending = copy_tbl Fun.id t.pending;
    ghosts = copy_tbl Fun.id t.ghosts;
  }

(* Marshal is safe here: [t] is hashtables, arrays and scalars — no
   closures, no custom blocks. Canonical behaviour after a round-trip
   does not depend on hashtable layout anyway: every protocol-visible
   iteration goes through Sorted_tbl. *)
let snapshot t = Marshal.to_string t []

let restore s =
  let t : t = (Marshal.from_string s 0 : t) in
  (* The marshalled scratch is valid but may be stale-sized; a fresh
     workspace keeps restore independent of how big the writer's last
     Dijkstra run was. *)
  { t with ws = Dijkstra.workspace () }

let fingerprint t =
  let b = Buffer.create 512 in
  let flt v = Buffer.add_string b (Printf.sprintf "%h," v) in
  let int v = Buffer.add_string b (string_of_int v ^ ",") in
  let table tab =
    List.iter
      (fun (e : Topo_table.entry) ->
        int e.head;
        int e.tail;
        flt e.cost)
      (Topo_table.entries tab);
    Buffer.add_char b ';'
  in
  int t.id;
  Buffer.add_string b (match t.mode with Mpda -> "M" | Pda -> "P");
  Buffer.add_string b (if t.active then "A|" else "p|");
  table t.main;
  Sorted_tbl.iter
    (fun k tab ->
      int k;
      table tab)
    t.nbr_tables;
  Buffer.add_char b '|';
  Sorted_tbl.iter
    (fun k d ->
      int k;
      Array.iter flt d)
    t.nbr_dist;
  Buffer.add_char b '|';
  Sorted_tbl.iter
    (fun k c ->
      int k;
      flt c)
    t.adjacent;
  Buffer.add_char b '|';
  Array.iter flt t.dist;
  Buffer.add_char b '|';
  Array.iter int t.first_hop;
  Buffer.add_char b '|';
  Array.iter flt t.fd;
  Buffer.add_char b '|';
  Array.iter (fun s -> List.iter int s; Buffer.add_char b ';') t.succ;
  Buffer.add_char b '|';
  Sorted_tbl.iter
    (fun k s ->
      int k;
      int s)
    t.pending;
  Buffer.add_char b '|';
  Sorted_tbl.iter (fun k () -> int k) t.ghosts;
  Buffer.add_char b '|';
  List.iter int (List.sort compare t.needs_full);
  int t.next_seq;
  Buffer.contents b
