module Sorted_tbl = Mdr_util.Sorted_tbl

type mode = Pda | Mpda
type spf = Full | Incremental

type msg = {
  entries : Topo_table.entry list;
  reset : bool;
  seq : int option;
  ack_of : int option;
}

type output = { dst : int; msg : msg }

type t = {
  mode : mode;
  spf : spf;
  id : int;
  n : int;
  mutable main : Topo_table.t;
  nbr_tables : (int, Topo_table.t) Hashtbl.t;
  nbr_dist : (int, float array) Hashtbl.t;  (* D_jk: from nbr k to each dst *)
  nbr_spf : (int, Incr_spf.state) Hashtbl.t;
      (* per-neighbor maintained SPF tree; its [dist] aliases the
         [nbr_dist] entry, so every reader of D_jk sees the repaired
         values with no copying. The state's version against the
         neighbor table's version replaces the old seen-version skip. *)
  iws : Incr_spf.ws;  (* per-router repair/SPF scratch; never shared *)
  parent_buf : int array;  (* main-table SPF parents, maintained in place *)
  prev_parent : int array;  (* parents before the last repair, for tree deltas *)
  mutable merged : Topo_table.t;
      (* the MTU's merged topology (steps 2-5), kept across events so a
         small LSU only rewrites the rows whose preferred source moved *)
  mutable merged_valid : bool;
      (* false when continuity was lost (link events, resets, fallback
         recomputes) — the next MTU rebuilds [merged] from scratch *)
  dirty : (int, unit) Hashtbl.t;
      (* destinations whose merged row must be re-derived at the next
         MTU: nodes whose D_k changed plus heads of LSU entries;
         accumulates across LSUs while an MPDA ACTIVE phase defers the
         table update *)
  main_spf : Incr_spf.state;  (* aliases [dist] and [parent_buf] *)
  adjacent : (int, float) Hashtbl.t;  (* l_k; absent = down *)
  dist : float array;  (* D_j; updated in place *)
  first_hop : int array;  (* preferred neighbor toward each dst; -1 *)
  fd : float array;  (* FD_j *)
  mutable succ : int list array;  (* S_j *)
  mutable succ_dirty : bool;
      (* successor sets are recomputed on first read after an event
         rather than eagerly per event; forced before any observation *)
  mutable active : bool;
  mutable active_phases : int;  (* PASSIVE -> ACTIVE transitions *)
  pending : (int, int) Hashtbl.t;  (* nbr -> seq awaited *)
  ghosts : (int, unit) Hashtbl.t;
      (* neighbors torn down *unilaterally* (inferred failure) that may
         still be routing through us on stale state. FD must not rise
         while any ghost remains: raising it would break the
         FD <= (distance the ghost holds about us) invariant that
         loop-freedom rests on, because a ghost — unlike a live
         neighbor — can never be asked to ACK the rise. *)
  mutable needs_full : int list;  (* neighbors owed a full-table LSU *)
  mutable next_seq : int;
  mutable sent : int;
  mutable events : int;
}

let create ?(spf = Incremental) ~mode ~id ~n () =
  if id < 0 || id >= n then invalid_arg "Router.create: id out of range";
  let dist = Array.make n infinity in
  dist.(id) <- 0.0;
  let parent_buf = Array.make n (-1) in
  {
    mode;
    spf;
    id;
    n;
    main = Topo_table.create ();
    nbr_tables = Hashtbl.create 8;
    nbr_dist = Hashtbl.create 8;
    nbr_spf = Hashtbl.create 8;
    iws = Incr_spf.workspace ();
    parent_buf;
    prev_parent = Array.make n (-1);
    merged = Topo_table.create ();
    merged_valid = false;
    dirty = Hashtbl.create 16;
    main_spf = Incr_spf.create_into ~dist ~parent:parent_buf ~n ~root:id;
    adjacent = Hashtbl.create 8;
    dist;
    first_hop = Array.make n (-1);
    fd =
      (let d = Array.make n infinity in
       d.(id) <- 0.0;
       d);
    succ = Array.make n [];
    succ_dirty = false;
    active = false;
    active_phases = 0;
    pending = Hashtbl.create 8;
    ghosts = Hashtbl.create 4;
    needs_full = [];
    next_seq = 0;
    sent = 0;
    events = 0;
  }

let id t = t.id
let mode t = t.mode
let spf_mode t = t.spf
let is_passive t = not t.active
let distance t ~dst = t.dist.(dst)
let feasible_distance t ~dst = t.fd.(dst)

(* --- Successor sets (Eq. 17 / line 4 of MPDA), computed lazily ------- *)

let neighbor_distance t ~nbr ~dst =
  match Hashtbl.find_opt t.nbr_dist nbr with
  | None -> infinity
  | Some d -> d.(dst)

let link_cost t ~nbr =
  match Hashtbl.find_opt t.adjacent nbr with Some c -> c | None -> infinity

let up_neighbors t = Sorted_tbl.keys t.adjacent

let force_successors t =
  if t.succ_dirty then begin
    t.succ_dirty <- false;
    let bound j = match t.mode with Mpda -> t.fd.(j) | Pda -> t.dist.(j) in
    let nbrs = up_neighbors t in
    t.succ <-
      Array.init t.n (fun j ->
          if j = t.id then []
          else
            List.filter (fun k -> neighbor_distance t ~nbr:k ~dst:j < bound j) nbrs)
  end

let successors t ~dst =
  force_successors t;
  t.succ.(dst)

let best_successor t ~dst = if t.first_hop.(dst) < 0 then None else Some t.first_hop.(dst)
let main_table t = Topo_table.copy t.main

let stats_messages_sent t = t.sent
let stats_events t = t.events
let stats_active_phases t = t.active_phases
let spf_stats t = Incr_spf.stats t.iws

(* --- NTU: neighbor-table maintenance ------------------------------- *)

let nbr_table t ~nbr =
  match Hashtbl.find_opt t.nbr_tables nbr with
  | Some tab -> tab
  | None ->
    let tab = Topo_table.create () in
    Hashtbl.replace t.nbr_tables nbr tab;
    tab

let nbr_state t ~nbr =
  match Hashtbl.find_opt t.nbr_spf nbr with
  | Some st -> st
  | None ->
    let dist =
      match Hashtbl.find_opt t.nbr_dist nbr with
      | Some d -> d
      | None ->
        let d = Array.make t.n infinity in
        Hashtbl.replace t.nbr_dist nbr d;
        d
    in
    let st = Incr_spf.create_into ~dist ~parent:(Array.make t.n (-1)) ~n:t.n ~root:nbr in
    Hashtbl.replace t.nbr_spf nbr st;
    st

(* [changes]: Some (pre_version, entries) when the caller mutated the
   neighbor table from [pre_version] by exactly [entries] — the repair
   contract. Anything else (resets, link events, version gaps) takes
   the full recompute, which also invalidates the merged topology
   since the incremental MTU can no longer tell what moved. *)
let refresh_neighbor_distances ?changes t ~nbr =
  let table = nbr_table t ~nbr in
  let st = nbr_state t ~nbr in
  let current = Topo_table.version table in
  if st.Incr_spf.version <> current || st.Incr_spf.version < 0 then begin
    match (t.spf, changes) with
    | Incremental, Some (pre, cs) when st.Incr_spf.version = pre -> (
      match
        Incr_spf.update t.iws st table ~changes:cs ~on_changed:(fun j ->
            Hashtbl.replace t.dirty j ())
      with
      | Incr_spf.Repaired _ -> ()
      | Incr_spf.Recomputed -> t.merged_valid <- false)
    | _ ->
      Incr_spf.full t.iws st table;
      t.merged_valid <- false
  end

let apply_lsu t ~from_ ~reset entries =
  let table = nbr_table t ~nbr:from_ in
  if reset then begin
    Topo_table.clear table;
    List.iter (Topo_table.apply_entry table) entries;
    refresh_neighbor_distances t ~nbr:from_
  end
  else begin
    let pre = Topo_table.version table in
    (* Record each touched edge's original cost so the net changes —
       and only the net changes — drive the repair. *)
    let orig = ref [] in
    List.iter
      (fun (e : Topo_table.entry) ->
        let key = (e.head, e.tail) in
        if not (List.mem_assoc key !orig) then
          orig := (key, Topo_table.cost table ~head:e.head ~tail:e.tail) :: !orig;
        Topo_table.apply_entry table e)
      entries;
    let changes =
      List.fold_left
        (fun acc ((head, tail), old) ->
          let now = Topo_table.cost table ~head ~tail in
          let same =
            match (old, now) with
            | None, None -> true
            | Some a, Some b -> Float.equal a b
            | Some _, None | None, Some _ -> false
          in
          if same then acc
          else
            { Topo_table.head; tail; cost = Option.value now ~default:infinity }
            :: acc)
        [] !orig
    in
    let changes =
      List.sort
        (fun (a : Topo_table.entry) (b : Topo_table.entry) ->
          match Int.compare a.head b.head with
          | 0 -> Int.compare a.tail b.tail
          | c -> c)
        changes
    in
    (* The merged rows of entry heads may copy from this neighbor. *)
    List.iter (fun (c : Topo_table.entry) -> Hashtbl.replace t.dirty c.head ()) changes;
    refresh_neighbor_distances t ~nbr:from_ ~changes:(pre, changes)
  end

(* --- MTU: rebuild or repair the main table -------------------------- *)

(* First hops for all destinations in one memoized pass over the parent
   forest (the old per-destination walk was quadratic on path-shaped
   trees). *)
let refresh_first_hops t =
  let fh = t.first_hop and parent = t.parent_buf and dist = t.dist in
  Array.fill fh 0 t.n (-2);
  fh.(t.id) <- -1;
  let rec resolve v =
    if fh.(v) <> -2 then fh.(v)
    else begin
      let r =
        if not (Float.is_finite dist.(v)) then -1
        else begin
          let p = parent.(v) in
          if p = t.id then v else if p < 0 then -1 else resolve p
        end
      in
      fh.(v) <- r;
      r
    end
  in
  for j = 0 to t.n - 1 do
    ignore (resolve j)
  done

let preferred_for t nbrs j =
  List.fold_left
    (fun best k ->
      let d = neighbor_distance t ~nbr:k ~dst:j +. link_cost t ~nbr:k in
      match best with
      | Some (_, bd) when bd <= d -> best
      | _ -> if Float.is_finite d then Some (k, d) else best)
    None nbrs

(* Steps 2-5 from scratch: the fallback (and Full-mode) path. *)
let rebuild_merged t =
  let merged = Topo_table.create () in
  let nbrs = up_neighbors t in
  let known = Hashtbl.create 32 in
  List.iter
    (fun k ->
      Hashtbl.replace known k ();
      match Hashtbl.find_opt t.nbr_tables k with
      | None -> ()
      | Some tab -> List.iter (fun v -> Hashtbl.replace known v ()) (Topo_table.nodes tab))
    nbrs;
  Sorted_tbl.iter
    (fun j () ->
      if j <> t.id then
        match preferred_for t nbrs j with
        | None -> ()
        | Some (p, _) ->
          let tab = Hashtbl.find t.nbr_tables p in
          List.iter
            (fun (tail, cost) -> Topo_table.set merged ~head:j ~tail ~cost)
            (Topo_table.out_links tab ~head:j))
    known;
  (* Step 5: adjacent links override anything neighbors said about
     links headed at this router. *)
  List.iter
    (fun k -> Topo_table.set merged ~head:t.id ~tail:k ~cost:(link_cost t ~nbr:k))
    nbrs;
  t.merged <- merged

let entry_compare (a : Topo_table.entry) (b : Topo_table.entry) =
  match Int.compare a.head b.head with
  | 0 -> Int.compare a.tail b.tail
  | c -> c

(* Re-derive the merged rows of the dirty destinations in place,
   returning the net merged changes sorted by (head, tail) — the input
   the incremental SPF repair requires. *)
let repair_merged t =
  let nbrs = up_neighbors t in
  let acc = ref [] in
  let set_merged ~head ~tail ~cost =
    match Topo_table.cost t.merged ~head ~tail with
    | Some old when Float.equal old cost -> ()
    | Some _ | None ->
      Topo_table.set t.merged ~head ~tail ~cost;
      acc := { Topo_table.head; tail; cost } :: !acc
  in
  let remove_merged ~head ~tail =
    if Topo_table.cost t.merged ~head ~tail <> None then begin
      Topo_table.remove t.merged ~head ~tail;
      acc := { Topo_table.head; tail; cost = infinity } :: !acc
    end
  in
  let dirty = Sorted_tbl.keys t.dirty in
  Hashtbl.reset t.dirty;
  List.iter
    (fun j ->
      if j <> t.id then begin
        let old_row = Topo_table.out_links t.merged ~head:j in
        match preferred_for t nbrs j with
        | None -> List.iter (fun (tail, _) -> remove_merged ~head:j ~tail) old_row
        | Some (p, _) ->
          let tab = Hashtbl.find t.nbr_tables p in
          let new_row = Topo_table.out_links tab ~head:j in
          List.iter
            (fun (tail, _) ->
              if not (List.mem_assoc tail new_row) then remove_merged ~head:j ~tail)
            old_row;
          List.iter (fun (tail, cost) -> set_merged ~head:j ~tail ~cost) new_row
      end)
    dirty;
  (* Keep the adjacency-owned row in sync (step 5); on the pure data
     path this is all no-ops. *)
  List.iter
    (fun (tail, _) ->
      if not (Hashtbl.mem t.adjacent tail) then remove_merged ~head:t.id ~tail)
    (Topo_table.out_links t.merged ~head:t.id);
  List.iter (fun k -> set_merged ~head:t.id ~tail:k ~cost:(link_cost t ~nbr:k)) nbrs;
  List.sort entry_compare !acc

(* Full tree cut (step 6) from the current dist/parent arrays: rebuild
   t.main as the shortest-path tree and diff against the old one. *)
let cut_tree_full t =
  let res = { Dijkstra.dist = t.dist; parent = t.parent_buf } in
  let tree =
    Dijkstra.tree_of_result ~n:t.n ~root:t.id res ~cost:(fun ~head ~tail ->
        match Topo_table.cost t.merged ~head ~tail with
        | Some c -> c
        | None -> assert false)
  in
  let changes = Topo_table.diff ~old_table:t.main ~new_table:tree in
  t.main <- tree;
  changes

let mtu t =
  let changes =
    if t.spf = Incremental && t.merged_valid then begin
      let merged_changes = repair_merged t in
      if merged_changes = [] then begin
        (* Nothing moved in the merged topology: tree, distances and
           first hops are already current. *)
        t.main_spf.Incr_spf.version <- Topo_table.version t.merged;
        []
      end
      else begin
        Array.blit t.parent_buf 0 t.prev_parent 0 t.n;
        let changed = ref [] in
        match
          Incr_spf.update t.iws t.main_spf t.merged ~changes:merged_changes
            ~on_changed:(fun v -> changed := v :: !changed)
        with
        | Incr_spf.Recomputed ->
          let changes = cut_tree_full t in
          refresh_first_hops t;
          changes
        | Incr_spf.Repaired _ ->
          (* Maintain the tree table: per changed node, move its tree
             edge; per merged cost change, refresh the edge cost if it
             is (still) a tree edge. Captured net mutations double as
             the outgoing LSU. *)
          let acc = ref [] in
          let set_main ~head ~tail ~cost =
            match Topo_table.cost t.main ~head ~tail with
            | Some old when Float.equal old cost -> ()
            | Some _ | None ->
              Topo_table.set t.main ~head ~tail ~cost;
              acc := { Topo_table.head; tail; cost } :: !acc
          in
          let remove_main ~head ~tail =
            if Topo_table.cost t.main ~head ~tail <> None then begin
              Topo_table.remove t.main ~head ~tail;
              acc := { Topo_table.head; tail; cost = infinity } :: !acc
            end
          in
          List.iter
            (fun v ->
              let po = t.prev_parent.(v) and pn = t.parent_buf.(v) in
              if po >= 0 && po <> pn then remove_main ~head:po ~tail:v;
              if v <> t.id && pn >= 0 && Float.is_finite t.dist.(v) then begin
                match Topo_table.cost t.merged ~head:pn ~tail:v with
                | Some c -> set_main ~head:pn ~tail:v ~cost:c
                | None -> assert false
              end)
            (List.rev !changed);
          List.iter
            (fun (e : Topo_table.entry) ->
              if
                Float.is_finite e.cost
                && e.tail <> t.id
                && t.parent_buf.(e.tail) = e.head
                && Float.is_finite t.dist.(e.tail)
              then set_main ~head:e.head ~tail:e.tail ~cost:e.cost)
            merged_changes;
          refresh_first_hops t;
          List.sort entry_compare !acc
      end
    end
    else begin
      Hashtbl.reset t.dirty;
      rebuild_merged t;
      Incr_spf.full t.iws t.main_spf t.merged;
      t.merged_valid <- t.spf = Incremental;
      let changes = cut_tree_full t in
      refresh_first_hops t;
      changes
    end
  in
  t.dist.(t.id) <- 0.0;
  changes

(* --- Output composition --------------------------------------------- *)

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let compose_outputs t ~changes ~ack_to =
  (* [ack_to]: Some (k, seq) when the event was a data LSU from k whose
     [seq] must be acknowledged. Full tables go to neighbors that just
     came up. *)
  let nbrs = up_neighbors t in
  let full_targets = List.filter (fun k -> List.mem k t.needs_full) nbrs in
  t.needs_full <- [];
  let data_targets =
    if changes = [] then full_targets
    else List.sort_uniq compare (full_targets @ nbrs)
  in
  let outputs = ref [] in
  let ack_consumed = ref false in
  List.iter
    (fun k ->
      let is_full = List.mem k full_targets in
      let entries = if is_full then Topo_table.entries t.main else changes in
      if entries <> [] || is_full then begin
        let seq = match t.mode with Mpda -> Some (fresh_seq t) | Pda -> None in
        let ack_of =
          match ack_to with Some (k', s) when k' = k -> Some s | Some _ | None -> None
        in
        if ack_of <> None then ack_consumed := true;
        (match (t.mode, seq) with
        | Mpda, Some s -> Hashtbl.replace t.pending k s
        | Mpda, None | Pda, _ -> ());
        outputs := { dst = k; msg = { entries; reset = is_full; seq; ack_of } } :: !outputs
      end)
    data_targets;
  (* Pure ACK when the triggering LSU got no piggybacked reply. *)
  (match ack_to with
  | Some (k, s) when (not !ack_consumed) && Hashtbl.mem t.adjacent k ->
    outputs :=
      { dst = k; msg = { entries = []; reset = false; seq = None; ack_of = Some s } }
      :: !outputs
  | Some _ | None -> ());
  if t.mode = Mpda && Hashtbl.length t.pending > 0 then begin
    if not t.active then t.active_phases <- t.active_phases + 1;
    t.active <- true
  end;
  t.sent <- t.sent + List.length !outputs;
  List.rev !outputs

(* --- The MPDA event loop (Fig. 4) ----------------------------------- *)

let process t ~ack_to ~ack_received =
  t.events <- t.events + 1;
  (* [ack_received]: Some (nbr, seq) when the event carried an ACK. *)
  (match ack_received with
  | Some (nbr, seq) -> (
    match Hashtbl.find_opt t.pending nbr with
    | Some expected when expected = seq -> Hashtbl.remove t.pending nbr
    | Some _ | None -> ())
  | None -> ());
  let last_ack = t.active && Hashtbl.length t.pending = 0 in
  let changes =
    match t.mode with
    | Pda -> mtu t
    | Mpda ->
      if not t.active then begin
        (* Lines 2a-2b: PASSIVE — update T and lower FD to D. *)
        let changes = mtu t in
        for j = 0 to t.n - 1 do
          t.fd.(j) <- Float.min t.fd.(j) t.dist.(j)
        done;
        changes
      end
      else if last_ack then begin
        (* Lines 3a-3c: the deferred MTU runs now; FD may rise to
           min(old D, new D) — unless a ghost still holds an old claim,
           in which case FD stays pinned (it may only keep falling)
           until every unilateral teardown is confirmed bilateral. *)
        let temp = Array.copy t.dist in
        t.active <- false;
        let changes = mtu t in
        if Hashtbl.length t.ghosts = 0 then
          for j = 0 to t.n - 1 do
            t.fd.(j) <- Float.min temp.(j) t.dist.(j)
          done
        else
          for j = 0 to t.n - 1 do
            t.fd.(j) <- Float.min t.fd.(j) (Float.min temp.(j) t.dist.(j))
          done;
        changes
      end
      else []
  in
  t.succ_dirty <- true;
  compose_outputs t ~changes ~ack_to

(* --- Event handlers -------------------------------------------------- *)

let handle_link_up t ~nbr ~cost =
  if not (Float.is_finite cost) || cost < 0.0 then
    invalid_arg "Router.handle_link_up: bad cost";
  Hashtbl.replace t.adjacent nbr cost;
  t.merged_valid <- false;
  if not (Hashtbl.mem t.nbr_tables nbr) then begin
    Hashtbl.replace t.nbr_tables nbr (Topo_table.create ());
    refresh_neighbor_distances t ~nbr
  end;
  if not (List.mem nbr t.needs_full) then t.needs_full <- nbr :: t.needs_full;
  process t ~ack_to:None ~ack_received:None

let handle_link_down ?(unconfirmed = false) t ~nbr =
  if Hashtbl.mem t.adjacent nbr then begin
    Hashtbl.remove t.adjacent nbr;
    t.merged_valid <- false;
    (* A bilateral (oracle-announced) failure means the peer forgot us
       in the same instant; an inferred one means the peer may still
       hold — and route on — its old view of us, so it keeps a claim on
       FD until {!confirm_link_down}. *)
    if unconfirmed then Hashtbl.replace t.ghosts nbr ();
    (match Hashtbl.find_opt t.nbr_tables nbr with
    | Some tab -> Topo_table.clear tab
    | None -> ());
    refresh_neighbor_distances t ~nbr;
    t.needs_full <- List.filter (fun k -> k <> nbr) t.needs_full;
    (* Pending ACKs from the failed neighbor count as received. *)
    let ack = Hashtbl.find_opt t.pending nbr |> Option.map (fun s -> (nbr, s)) in
    process t ~ack_to:None ~ack_received:ack
  end
  else []

let confirm_link_down t ~nbr =
  if not (Hashtbl.mem t.ghosts nbr) then []
  else begin
    Hashtbl.remove t.ghosts nbr;
    (* FD was pinned while the ghost lived. If it lags the current
       distance and no diffusing computation is running to lift it,
       run an empty one: neighbors ACK the probe and the completion
       raises FD through the ordinary, loop-safe path. *)
    let lagging = ref false in
    for j = 0 to t.n - 1 do
      if t.fd.(j) +. 1e-12 < t.dist.(j) then lagging := true
    done;
    if t.mode = Mpda && Hashtbl.length t.ghosts = 0 && (not t.active) && !lagging
    then begin
      let outputs =
        List.map
          (fun k ->
            let s = fresh_seq t in
            Hashtbl.replace t.pending k s;
            { dst = k; msg = { entries = []; reset = false; seq = Some s; ack_of = None } })
          (up_neighbors t)
      in
      if outputs <> [] then begin
        if not t.active then t.active_phases <- t.active_phases + 1;
        t.active <- true;
        t.sent <- t.sent + List.length outputs
      end;
      outputs
    end
    else []
  end

let handle_link_cost t ~nbr ~cost =
  if not (Hashtbl.mem t.adjacent nbr) then []
  else begin
    Hashtbl.replace t.adjacent nbr cost;
    (* l_k shifts the preferred distance of *every* destination via k,
       so the dirty-row bookkeeping cannot bound what moved. *)
    t.merged_valid <- false;
    process t ~ack_to:None ~ack_received:None
  end

let handle_msg t ~from_ msg =
  if not (Hashtbl.mem t.adjacent from_) then []
  else begin
    if msg.entries <> [] || msg.reset then apply_lsu t ~from_ ~reset:msg.reset msg.entries;
    let ack_received = Option.map (fun s -> (from_, s)) msg.ack_of in
    let ack_to = Option.map (fun s -> (from_, s)) msg.seq in
    process t ~ack_to ~ack_received
  end

(* --- Deep copy and canonical state (for the model checker) ----------- *)

let copy t =
  force_successors t;
  let copy_tbl copy_v src =
    let fresh = Hashtbl.create (Hashtbl.length src) in
    Sorted_tbl.iter (fun k v -> Hashtbl.replace fresh k (copy_v v)) src;
    fresh
  in
  let nbr_dist = copy_tbl Array.copy t.nbr_dist in
  (* Rebuild the per-neighbor states over the *copied* distance arrays,
     carrying the sync versions so current trees stay current. *)
  let nbr_spf = Hashtbl.create (Hashtbl.length t.nbr_spf) in
  Sorted_tbl.iter
    (fun k (st : Incr_spf.state) ->
      match Hashtbl.find_opt nbr_dist k with
      | None -> ()
      | Some dist ->
        let fresh =
          Incr_spf.create_into ~dist
            ~parent:(Array.copy st.Incr_spf.parent)
            ~n:t.n ~root:k
        in
        fresh.Incr_spf.version <- st.Incr_spf.version;
        fresh.Incr_spf.has_zero <- st.Incr_spf.has_zero;
        Hashtbl.replace nbr_spf k fresh)
    t.nbr_spf;
  let dist = Array.copy t.dist in
  let parent_buf = Array.copy t.parent_buf in
  let main_spf = Incr_spf.create_into ~dist ~parent:parent_buf ~n:t.n ~root:t.id in
  {
    t with
    main = Topo_table.copy t.main;
    nbr_tables = copy_tbl Topo_table.copy t.nbr_tables;
    nbr_dist;
    nbr_spf;
    iws = Incr_spf.workspace ();
    parent_buf;
    prev_parent = Array.copy t.prev_parent;
    (* The copy drops merged-topology continuity rather than deep-copy
       it: its first MTU rebuilds from scratch, which the equivalence
       contract guarantees is behaviorally identical. *)
    merged = Topo_table.create ();
    merged_valid = false;
    dirty = Hashtbl.create 16;
    main_spf;
    adjacent = copy_tbl Fun.id t.adjacent;
    dist;
    first_hop = Array.copy t.first_hop;
    fd = Array.copy t.fd;
    succ = Array.copy t.succ;
    pending = copy_tbl Fun.id t.pending;
    ghosts = copy_tbl Fun.id t.ghosts;
  }

(* Marshal is safe here: [t] is hashtables, arrays and scalars — no
   closures, no custom blocks. Canonical behaviour after a round-trip
   does not depend on hashtable layout anyway: every protocol-visible
   iteration goes through Sorted_tbl. Sharing is preserved, so the
   SPF states still alias the distance arrays after a round-trip. *)
let snapshot t =
  force_successors t;
  Marshal.to_string t []

let restore s =
  let t : t = (Marshal.from_string s 0 : t) in
  (* The marshalled scratch is valid but may be stale-sized; a fresh
     workspace keeps restore independent of how big the writer's last
     runs were. *)
  { t with iws = Incr_spf.workspace () }

let fingerprint t =
  force_successors t;
  let b = Buffer.create 512 in
  let flt v = Buffer.add_string b (Printf.sprintf "%h," v) in
  let int v = Buffer.add_string b (string_of_int v ^ ",") in
  let table tab =
    List.iter
      (fun (e : Topo_table.entry) ->
        int e.head;
        int e.tail;
        flt e.cost)
      (Topo_table.entries tab);
    Buffer.add_char b ';'
  in
  int t.id;
  Buffer.add_string b (match t.mode with Mpda -> "M" | Pda -> "P");
  Buffer.add_string b (if t.active then "A|" else "p|");
  table t.main;
  Sorted_tbl.iter
    (fun k tab ->
      int k;
      table tab)
    t.nbr_tables;
  Buffer.add_char b '|';
  Sorted_tbl.iter
    (fun k d ->
      int k;
      Array.iter flt d)
    t.nbr_dist;
  Buffer.add_char b '|';
  Sorted_tbl.iter
    (fun k c ->
      int k;
      flt c)
    t.adjacent;
  Buffer.add_char b '|';
  Array.iter flt t.dist;
  Buffer.add_char b '|';
  Array.iter int t.first_hop;
  Buffer.add_char b '|';
  Array.iter flt t.fd;
  Buffer.add_char b '|';
  Array.iter (fun s -> List.iter int s; Buffer.add_char b ';') t.succ;
  Buffer.add_char b '|';
  Sorted_tbl.iter
    (fun k s ->
      int k;
      int s)
    t.pending;
  Buffer.add_char b '|';
  Sorted_tbl.iter (fun k () -> int k) t.ghosts;
  Buffer.add_char b '|';
  List.iter int (List.sort compare t.needs_full);
  int t.next_seq;
  Buffer.contents b
