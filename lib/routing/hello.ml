type damping = {
  flap_penalty : float;
  half_life : float;
  suppress : float;
  reuse : float;
}

type params = {
  hello_interval : float;
  jitter : float;
  dead_interval : float;
  damping : damping option;
}

let default_damping =
  { flap_penalty = 1.0; half_life = 10.0; suppress = 2.0; reuse = 0.75 }

let default_params =
  {
    hello_interval = 0.5;
    jitter = 0.25;
    dead_interval = 2.0;
    damping = Some default_damping;
  }

let validate p =
  if p.hello_interval <= 0.0 then invalid_arg "Hello: hello_interval must be > 0";
  if p.dead_interval <= p.hello_interval then
    invalid_arg "Hello: dead_interval must exceed hello_interval";
  if p.jitter < 0.0 || p.jitter >= 1.0 then
    invalid_arg "Hello: jitter must be in [0, 1)";
  match p.damping with
  | None -> ()
  | Some d ->
    if d.flap_penalty <= 0.0 || d.half_life <= 0.0 then
      invalid_arg "Hello: damping penalty and half_life must be > 0";
    if d.reuse <= 0.0 || d.reuse > d.suppress then
      invalid_arg "Hello: damping needs 0 < reuse <= suppress"

type state = Down | Init | TwoWay | Full

let state_name = function
  | Down -> "Down"
  | Init -> "Init"
  | TwoWay -> "TwoWay"
  | Full -> "Full"

type down_cause = [ `Dead | `One_way | `Peer_reset ]

type action =
  | Report_up
  | Report_down of down_cause
  | Arm_dead of float
  | Arm_reuse of float

type adj = {
  p : params;
  mutable state : state;
  mutable nbr_gen : int;  (* generation currently heard; -1 while Down *)
  mutable deadline : float;  (* dead-interval expiry, pushed by each hello *)
  mutable dead_armed : bool;  (* one outstanding dead check at a time *)
  mutable penalty : float;  (* damping penalty as of [penalty_at] *)
  mutable penalty_at : float;
  mutable suppressed : bool;
  mutable reuse_armed : bool;
  mutable flaps : int;
}

let create p =
  validate p;
  {
    p;
    state = Down;
    nbr_gen = -1;
    deadline = 0.0;
    dead_armed = false;
    penalty = 0.0;
    penalty_at = 0.0;
    suppressed = false;
    reuse_armed = false;
    flaps = 0;
  }

let state a = a.state
let suppressed a = a.suppressed
let flaps a = a.flaps
let heard_gen a = a.nbr_gen

let eps = 1e-9

let decayed a ~now =
  match a.p.damping with
  | None -> 0.0
  | Some d -> a.penalty *. (2.0 ** (-.(now -. a.penalty_at) /. d.half_life))

let penalty = decayed

let reuse_delay d ~penalty = d.half_life *. (Float.log (penalty /. d.reuse) /. Float.log 2.0)

(* A [Full -> Down] transition: charge the damping penalty, possibly
   crossing the suppress threshold (which arms one reuse check). *)
let charge_flap a ~now acc =
  a.flaps <- a.flaps + 1;
  match a.p.damping with
  | None -> ()
  | Some d ->
    a.penalty <- decayed a ~now +. d.flap_penalty;
    a.penalty_at <- now;
    if a.penalty >= d.suppress && not a.suppressed then begin
      a.suppressed <- true;
      if not a.reuse_armed then begin
        a.reuse_armed <- true;
        acc := Arm_reuse (reuse_delay d ~penalty:a.penalty) :: !acc
      end
    end

let on_hello a ~now ~gen ~heard_me =
  let acc = ref [] in
  (* A changed session while we think we hear the neighbor means the
     peer reset its side of the adjacency (it rebooted, or it tore us
     down one-sidedly and bumped the session): tear down, then treat
     this hello as the first of the new session. *)
  if a.state <> Down && gen <> a.nbr_gen then begin
    if a.state = Full then begin
      charge_flap a ~now acc;
      acc := Report_down `Peer_reset :: !acc
    end;
    a.state <- Down;
    a.nbr_gen <- -1
  end;
  a.nbr_gen <- gen;
  a.deadline <- now +. a.p.dead_interval;
  if not a.dead_armed then begin
    a.dead_armed <- true;
    acc := Arm_dead a.deadline :: !acc
  end;
  (match (a.state, heard_me) with
  | Down, false -> a.state <- Init
  | (Down | Init | TwoWay), true ->
    if a.suppressed then a.state <- TwoWay
    else begin
      a.state <- Full;
      acc := Report_up :: !acc
    end
  | Full, false ->
    (* 1-WayReceived: the neighbor stopped hearing us. *)
    charge_flap a ~now acc;
    acc := Report_down `One_way :: !acc;
    a.state <- Init
  | Init, false -> ()
  | TwoWay, false -> a.state <- Init
  | Full, true -> ());
  List.rev !acc

let on_dead_check a ~now =
  a.dead_armed <- false;
  if a.state = Down then []
  else if now +. eps >= a.deadline then begin
    let acc = ref [] in
    if a.state = Full then begin
      charge_flap a ~now acc;
      acc := Report_down `Dead :: !acc
    end;
    a.state <- Down;
    a.nbr_gen <- -1;
    List.rev !acc
  end
  else begin
    (* A hello pushed the deadline after this check was armed. *)
    a.dead_armed <- true;
    [ Arm_dead a.deadline ]
  end

let on_reuse_check a ~now =
  if not a.reuse_armed then []
  else
    match a.p.damping with
    | None ->
      a.reuse_armed <- false;
      []
    | Some d ->
      let p = decayed a ~now in
      if p <= d.reuse +. eps then begin
        a.penalty <- p;
        a.penalty_at <- now;
        a.suppressed <- false;
        a.reuse_armed <- false;
        if a.state = TwoWay then begin
          a.state <- Full;
          [ Report_up ]
        end
        else []
      end
      else [ Arm_reuse (reuse_delay d ~penalty:p) ]
