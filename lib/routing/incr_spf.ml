(* Incremental single-source shortest-path-tree maintenance over the
   CSR topology views, in the Ramalingam–Reps style: given the edge
   changes since the last run, repair only the affected region.

   The repair has five phases:

   1. Classify each change against the current tree: a change to the
      tree edge feeding [tail] that no longer supports its distance
      orphans [tail]; a change that offers a significantly shorter path
      seeds a decrease.
   2. Orphan collection: the tree subtree under every orphan seed loses
      its distance (walk tree children via the forward CSR). If the
      orphaned region exceeds [max_dirty_frac] of the graph, repairing
      costs as much as recomputing — fall back to a full run.
   3. Boundary re-initialization: each orphan's best re-entry from the
      intact region (minimum over in-edges from non-orphans, via the
      transpose CSR) primes the heap; decrease seeds join it.
   4. Heap repair: the same (distance, id)-ordered flat heap discipline
      as the full run — pop, settle, relax out-edges accepting only
      significant improvements. Distances propagate as the same
      [dist u +. w] float expressions the full run evaluates, so
      repaired distances are bit-identical to a from-scratch run.
   5. Parent canonicalization: the full run's parent of [v] is the
      smallest-id in-neighbor [u] achieving [close (dist u +. w)
      (dist v)] — valid because with strictly positive costs every
      achiever settles strictly before [v]. Re-derive the parent from
      that rule for every node whose achiever set may have moved:
      orphans, distance-changed nodes, their out-neighbors, and the
      tails of changed edges.

   Two situations break the canonical-parent characterization and force
   a full-run fallback: a zero-cost edge anywhere in the table (settle
   order inside an equal-distance plateau then depends on plateau
   structure the local rule cannot see), detected by scanning the cost
   column at every full run and every change batch; and an achiever
   whose own distance is within tolerance of its target's (a
   sub-tolerance edge), detected during canonicalization. Inputs whose
   distinct path costs collide within the 1e-12 relative tolerance
   without being exactly equal are outside the equivalence contract —
   there even two full runs relaxing in different orders disagree in
   the last bits. Exact ties (bit-identical sums) are fully handled.

   Steady-state repairs allocate nothing: marks are stamp arrays (no
   clearing), worklists are growable int/float vectors reused across
   calls, and the undo log doubles as the changed-node report. *)

type stats = {
  mutable full_runs : int;
  mutable repairs : int;
  mutable fallbacks : int;
  mutable repaired_nodes : int;
}

type state = {
  dist : float array;
  parent : int array;
  n : int;
  root : int;
  mutable version : int;
  mutable has_zero : bool;
}

type outcome = Repaired of int | Recomputed

let create ~n ~root =
  if n <= 0 then invalid_arg "Incr_spf.create: n must be positive";
  if root < 0 || root >= n then invalid_arg "Incr_spf.create: root out of range";
  {
    dist = Array.make n infinity;
    parent = Array.make n (-1);
    n;
    root;
    version = -1;
    has_zero = false;
  }

let create_into ~dist ~parent ~n ~root =
  if n <= 0 then invalid_arg "Incr_spf.create_into: n must be positive";
  if root < 0 || root >= n then invalid_arg "Incr_spf.create_into: root out of range";
  if Array.length dist < n || Array.length parent < n then
    invalid_arg "Incr_spf.create_into: buffers shorter than n";
  { dist; parent; n; root; version = -1; has_zero = false }

type ws = {
  dj : Dijkstra.workspace;
  (* Flat binary heap ordered by (distance, id), as in Dijkstra. *)
  mutable heap_d : float array;
  mutable heap_n : int array;
  mutable heap_len : int;
  (* Stamp marks: a cell equals [stamp] iff marked this update. *)
  mutable stamp : int;
  mutable orphan_at : int array;
  mutable settled_at : int array;
  mutable logged_at : int array;
  mutable recheck_at : int array;
  (* Orphan worklist; the BFS reads it back as its own queue. *)
  mutable orphans : int array;
  mutable orphans_len : int;
  (* Decrease seeds (u, v, new cost of edge u->v). *)
  mutable dec_u : int array;
  mutable dec_v : int array;
  mutable dec_c : float array;
  mutable dec_len : int;
  (* Undo log: pre-update (dist, parent) of every written node. *)
  mutable log_node : int array;
  mutable log_dist : float array;
  mutable log_parent : int array;
  mutable log_len : int;
  (* Parent-canonicalization worklist. *)
  mutable recheck : int array;
  mutable recheck_len : int;
  (* Changed-node report, sorted ascending before emission. *)
  mutable changed : int array;
  mutable changed_len : int;
  stats : stats;
}

let workspace () =
  {
    dj = Dijkstra.workspace ();
    heap_d = Array.make 64 0.0;
    heap_n = Array.make 64 0;
    heap_len = 0;
    stamp = 0;
    orphan_at = [||];
    settled_at = [||];
    logged_at = [||];
    recheck_at = [||];
    orphans = Array.make 16 0;
    orphans_len = 0;
    dec_u = Array.make 16 0;
    dec_v = Array.make 16 0;
    dec_c = Array.make 16 0.0;
    dec_len = 0;
    log_node = Array.make 16 0;
    log_dist = Array.make 16 0.0;
    log_parent = Array.make 16 0;
    log_len = 0;
    recheck = Array.make 16 0;
    recheck_len = 0;
    changed = Array.make 16 0;
    changed_len = 0;
    stats = { full_runs = 0; repairs = 0; fallbacks = 0; repaired_nodes = 0 };
  }

let stats ws = ws.stats

let grow_int a needed =
  if Array.length a >= needed then a
  else begin
    let b = Array.make (max needed (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float a needed =
  if Array.length a >= needed then a
  else begin
    let b = Array.make (max needed (2 * Array.length a)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let prepare ws n =
  if Array.length ws.orphan_at < n then begin
    ws.orphan_at <- grow_int ws.orphan_at n;
    ws.settled_at <- grow_int ws.settled_at n;
    ws.logged_at <- grow_int ws.logged_at n;
    ws.recheck_at <- grow_int ws.recheck_at n
  end;
  (* Stale stamps from before a growth are <= the old stamp, so simply
     advancing the stamp unmarks everything, grown cells included. *)
  ws.stamp <- ws.stamp + 1;
  ws.heap_len <- 0;
  ws.orphans_len <- 0;
  ws.dec_len <- 0;
  ws.log_len <- 0;
  ws.recheck_len <- 0;
  ws.changed_len <- 0

(* Heap push/pop: identical (d, id)-lexicographic discipline to
   Dijkstra's, on this workspace's arrays. *)
let heap_push ws d v =
  if ws.heap_len = Array.length ws.heap_d then begin
    ws.heap_d <- grow_float ws.heap_d (ws.heap_len + 1);
    ws.heap_n <- grow_int ws.heap_n (ws.heap_len + 1)
  end;
  let hd = ws.heap_d and hn = ws.heap_n in
  let i = ref ws.heap_len in
  ws.heap_len <- ws.heap_len + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    if d < hd.(p) || (d = hd.(p) && v < hn.(p)) then begin
      hd.(!i) <- hd.(p);
      hn.(!i) <- hn.(p);
      i := p
    end
    else sifting := false
  done;
  hd.(!i) <- d;
  hn.(!i) <- v

(* Pops the minimum into (heap_pop_d, heap_pop_n) via the returned
   pair-free protocol: caller reads hd.(0)/hn.(0) first. *)
let heap_drop ws =
  let hd = ws.heap_d and hn = ws.heap_n in
  ws.heap_len <- ws.heap_len - 1;
  let len = ws.heap_len in
  if len > 0 then begin
    let ld = hd.(len) and lv = hn.(len) in
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= len then sifting := false
      else begin
        let r = l + 1 in
        let c =
          if r < len && (hd.(r) < hd.(l) || (hd.(r) = hd.(l) && hn.(r) < hn.(l)))
          then r
          else l
        in
        if hd.(c) < ld || (hd.(c) = ld && hn.(c) < lv) then begin
          hd.(!i) <- hd.(c);
          hn.(!i) <- hn.(c);
          i := c
        end
        else sifting := false
      end
    done;
    hd.(!i) <- ld;
    hn.(!i) <- lv
  end

let push_orphan ws v =
  if ws.orphan_at.(v) <> ws.stamp then begin
    ws.orphan_at.(v) <- ws.stamp;
    ws.orphans <- grow_int ws.orphans (ws.orphans_len + 1);
    ws.orphans.(ws.orphans_len) <- v;
    ws.orphans_len <- ws.orphans_len + 1
  end

let push_dec ws u v c =
  ws.dec_u <- grow_int ws.dec_u (ws.dec_len + 1);
  ws.dec_v <- grow_int ws.dec_v (ws.dec_len + 1);
  ws.dec_c <- grow_float ws.dec_c (ws.dec_len + 1);
  ws.dec_u.(ws.dec_len) <- u;
  ws.dec_v.(ws.dec_len) <- v;
  ws.dec_c.(ws.dec_len) <- c;
  ws.dec_len <- ws.dec_len + 1

let ensure_logged ws st v =
  if ws.logged_at.(v) <> ws.stamp then begin
    ws.logged_at.(v) <- ws.stamp;
    ws.log_node <- grow_int ws.log_node (ws.log_len + 1);
    ws.log_dist <- grow_float ws.log_dist (ws.log_len + 1);
    ws.log_parent <- grow_int ws.log_parent (ws.log_len + 1);
    ws.log_node.(ws.log_len) <- v;
    ws.log_dist.(ws.log_len) <- st.dist.(v);
    ws.log_parent.(ws.log_len) <- st.parent.(v);
    ws.log_len <- ws.log_len + 1
  end

let push_recheck ws v =
  if ws.recheck_at.(v) <> ws.stamp then begin
    ws.recheck_at.(v) <- ws.stamp;
    ws.recheck <- grow_int ws.recheck (ws.recheck_len + 1);
    ws.recheck.(ws.recheck_len) <- v;
    ws.recheck_len <- ws.recheck_len + 1
  end

(* In-place shellsort of the vector prefix — keeps steady state
   allocation-free where sorting a copy would not. *)
let sort_vec a len =
  let gap = ref 1 in
  while !gap < len / 3 do
    gap := (3 * !gap) + 1
  done;
  while !gap >= 1 do
    let g = !gap in
    for i = g to len - 1 do
      let x = a.(i) in
      let j = ref i in
      while !j >= g && a.(!j - g) > x do
        a.(!j) <- a.(!j - g);
        j := !j - g
      done;
      a.(!j) <- x
    done;
    gap := g / 3
  done

let scan_zero (view : Topo_table.csr) =
  let zero = ref false in
  let cost = view.Topo_table.cost in
  for i = 0 to Array.length cost - 1 do
    if Float.equal cost.(i) 0.0 then zero := true
  done;
  !zero

let full ws st table =
  Dijkstra.on_table_into ws.dj ~n:st.n ~root:st.root ~dist:st.dist ~parent:st.parent
    table;
  st.has_zero <- scan_zero (Topo_table.csr table ~n:st.n);
  st.version <- Topo_table.version table;
  ws.stats.full_runs <- ws.stats.full_runs + 1

exception Fallback

let default_max_dirty_frac = 0.25

let update ?(max_dirty_frac = default_max_dirty_frac) ?on_changed ws st table
    ~(changes : Topo_table.entry list) =
  let n = st.n and root = st.root in
  let dist = st.dist and parent = st.parent in
  let table_version = Topo_table.version table in
  if st.version < 0 then begin
    full ws st table;
    Recomputed
  end
  else if changes = [] then begin
    st.version <- table_version;
    Repaired 0
  end
  else begin
    let introduces_zero =
      List.exists (fun (e : Topo_table.entry) -> Float.equal e.cost 0.0) changes
    in
    if introduces_zero then st.has_zero <- true;
    if st.has_zero then begin
      ws.stats.fallbacks <- ws.stats.fallbacks + 1;
      full ws st table;
      Recomputed
    end
    else begin
      prepare ws n;
      match
        let view = Topo_table.csr table ~n in
        let inview = Topo_table.csr_in table ~n in
        let row = view.Topo_table.row
        and dst = view.Topo_table.dst
        and cost = view.Topo_table.cost in
        (* Phase 1: classify changes. *)
        List.iter
          (fun { Topo_table.head = u; tail = v; cost = c } ->
            if u >= 0 && u < n && v >= 0 && v < n && v <> root then begin
              push_recheck ws v;
              let du = dist.(u) in
              if Float.is_finite c && Float.is_finite du then begin
                let nd = du +. c in
                if nd < dist.(v) && not (Dijkstra.close nd dist.(v)) then
                  push_dec ws u v c
                else if
                  parent.(v) = u
                  && nd > dist.(v)
                  && not (Dijkstra.close nd dist.(v))
                then push_orphan ws v
              end
              else if parent.(v) = u then
                (* Removed edge (or unreachable head) was the support. *)
                push_orphan ws v
            end)
          changes;
        (* Phase 2: collect orphaned subtrees (tree children via the
           forward view; the orphan vector doubles as the BFS queue). *)
        let i = ref 0 in
        while !i < ws.orphans_len do
          let v = ws.orphans.(!i) in
          incr i;
          for e = row.(v) to row.(v + 1) - 1 do
            let c = dst.(e) in
            if c >= 0 && c < n && parent.(c) = v then push_orphan ws c
          done
        done;
        if float_of_int ws.orphans_len > max_dirty_frac *. float_of_int n then
          raise Fallback;
        (* Phase 3a: void the orphan region. *)
        for k = 0 to ws.orphans_len - 1 do
          let v = ws.orphans.(k) in
          ensure_logged ws st v;
          dist.(v) <- infinity;
          parent.(v) <- -1
        done;
        (* Phase 3b: re-enter each orphan from the intact region. *)
        let irow = inview.Topo_table.row
        and isrc = inview.Topo_table.dst
        and icost = inview.Topo_table.cost in
        for k = 0 to ws.orphans_len - 1 do
          let v = ws.orphans.(k) in
          for e = irow.(v) to irow.(v + 1) - 1 do
            let u = isrc.(e) in
            if ws.orphan_at.(u) <> ws.stamp && Float.is_finite dist.(u) then begin
              let nd = dist.(u) +. icost.(e) in
              if nd < dist.(v) && not (Dijkstra.close nd dist.(v)) then begin
                dist.(v) <- nd;
                parent.(v) <- u
              end
            end
          done;
          if Float.is_finite dist.(v) then heap_push ws dist.(v) v
        done;
        (* Phase 3c: decrease seeds (skipping sources that were
           orphaned after classification saw them — their distances
           are void and will relax properly from within the heap). *)
        for k = 0 to ws.dec_len - 1 do
          let u = ws.dec_u.(k) and v = ws.dec_v.(k) and c = ws.dec_c.(k) in
          if ws.orphan_at.(u) <> ws.stamp && Float.is_finite dist.(u) then begin
            let nd = dist.(u) +. c in
            if nd < dist.(v) && not (Dijkstra.close nd dist.(v)) then begin
              ensure_logged ws st v;
              dist.(v) <- nd;
              parent.(v) <- u;
              heap_push ws nd v
            end
          end
        done;
        (* Phase 4: heap repair, the full run's settle/relax discipline
           restricted to the affected region. Parents written here are
           provisional; phase 5 canonicalizes them. *)
        while ws.heap_len > 0 do
          let d = ws.heap_d.(0) and u = ws.heap_n.(0) in
          heap_drop ws;
          if ws.settled_at.(u) <> ws.stamp && Dijkstra.close d dist.(u) then begin
            ws.settled_at.(u) <- ws.stamp;
            for e = row.(u) to row.(u + 1) - 1 do
              let v = dst.(e) in
              if v >= 0 && v < n && ws.settled_at.(v) <> ws.stamp then begin
                let nd = d +. cost.(e) in
                if nd < dist.(v) && not (Dijkstra.close nd dist.(v)) then begin
                  ensure_logged ws st v;
                  dist.(v) <- nd;
                  parent.(v) <- u;
                  heap_push ws nd v
                end
              end
            done
          end
        done;
        (* Phase 5: canonicalize parents wherever the achiever set may
           have moved — every written node, every out-neighbor of a
           distance-changed node, every changed-edge tail. *)
        for k = 0 to ws.log_len - 1 do
          let v = ws.log_node.(k) in
          push_recheck ws v;
          if not (Float.equal ws.log_dist.(k) dist.(v)) then
            for e = row.(v) to row.(v + 1) - 1 do
              let t = dst.(e) in
              if t >= 0 && t < n then push_recheck ws t
            done
        done;
        sort_vec ws.recheck ws.recheck_len;
        for k = 0 to ws.recheck_len - 1 do
          let v = ws.recheck.(k) in
          if v = root || not (Float.is_finite dist.(v)) then begin
            if parent.(v) <> -1 then begin
              ensure_logged ws st v;
              parent.(v) <- -1
            end
          end
          else begin
            let best = ref (-1) in
            for e = irow.(v) to irow.(v + 1) - 1 do
              let u = isrc.(e) in
              let du = dist.(u) in
              if Float.is_finite du then begin
                let nd = du +. icost.(e) in
                if Dijkstra.close nd dist.(v) then begin
                  if Dijkstra.close du dist.(v) then
                    (* Sub-tolerance in-edge: the achiever is not
                       strictly below its target, so settle order — not
                       this local rule — decides the full run's parent. *)
                    raise Fallback;
                  if !best < 0 then best := u
                end
              end
            done;
            (* A finite distance must have a supporting in-edge. *)
            if !best < 0 then raise Fallback;
            if parent.(v) <> !best then begin
              ensure_logged ws st v;
              parent.(v) <- !best
            end
          end
        done;
        (* Report: every logged node whose (dist, parent) actually
           moved, in ascending id order. *)
        for k = 0 to ws.log_len - 1 do
          let v = ws.log_node.(k) in
          if
            (not (Float.equal ws.log_dist.(k) dist.(v)))
            || ws.log_parent.(k) <> parent.(v)
          then begin
            ws.changed <- grow_int ws.changed (ws.changed_len + 1);
            ws.changed.(ws.changed_len) <- v;
            ws.changed_len <- ws.changed_len + 1
          end
        done;
        sort_vec ws.changed ws.changed_len;
        (match on_changed with
        | None -> ()
        | Some f ->
          for k = 0 to ws.changed_len - 1 do
            f ws.changed.(k)
          done);
        st.version <- table_version;
        ws.stats.repairs <- ws.stats.repairs + 1;
        ws.stats.repaired_nodes <- ws.stats.repaired_nodes + ws.changed_len;
        ws.changed_len
      with
      | count -> Repaired count
      | exception Fallback ->
        ws.stats.fallbacks <- ws.stats.fallbacks + 1;
        full ws st table;
        Recomputed
    end
  end
