(** Per-adjacency failure detection: an OSPF-style hello state machine
    with BGP-style flap damping.

    The paper assumes an oracle delivers link-down events to both
    endpoints instantly. This module is the realistic alternative: each
    node sends jittered periodic HELLOs on every physically-up link and
    *infers* neighbor loss from silence (a dead interval of missed
    hellos), from one-way reception (the neighbor's hello no longer
    lists us), or from a changed session number (the neighbor
    restarted — or reset its side of the adjacency — faster than the
    dead interval could notice).

    The machine is deliberately engine-agnostic: handlers mutate one
    {!adj} record and return {!action}s, and the embedding (the
    {!Harness}) owns timers, frames and the clock. That keeps the FSM
    unit-testable without a simulator and keeps all scheduling policy
    in one place.

    State meanings (a trimmed OSPF neighbor FSM):
    - [Down]: nothing heard within the dead interval.
    - [Init]: hellos arrive but the neighbor does not yet hear us.
    - [TwoWay]: mutual reception, but the adjacency is withheld from
      the routing process (only while damping suppresses it).
    - [Full]: reported up to the routing process.

    Damping: every [Full -> Down] transition charges [flap_penalty];
    the penalty decays exponentially with [half_life]. At or above
    [suppress] the adjacency is pinned at [TwoWay]; once the decayed
    penalty falls back to [reuse] it may be promoted again. *)

type damping = {
  flap_penalty : float;  (** added per [Full -> Down] transition *)
  half_life : float;  (** seconds for the penalty to halve *)
  suppress : float;  (** penalty at/above which the adjacency is held down *)
  reuse : float;  (** penalty at/below which it may come back *)
}

type params = {
  hello_interval : float;  (** mean seconds between hellos *)
  jitter : float;
      (** fraction of [hello_interval] randomized away: each gap is
          uniform in [interval * (1 - jitter/2, 1 + jitter/2)] *)
  dead_interval : float;  (** silence after which the neighbor is declared dead *)
  damping : damping option;  (** [None] disables flap damping *)
}

val default_damping : damping
(** Penalty 1.0 per flap, half-life 10 s, suppress at 2.0, reuse at
    0.75 (BGP's classic 2:1 suppress-to-penalty and ~0.75 reuse
    ratios, with a half-life scaled to simulation seconds): a link
    flapping every few seconds is suppressed by its third detected
    flap and held down for roughly 10-20 s after it stabilizes. *)

val default_params : params
(** 0.5 s hellos with 25% jitter, 2 s dead interval,
    [Some default_damping]. *)

val validate : params -> unit
(** @raise Invalid_argument on non-positive intervals, a dead interval
    not exceeding the hello interval, jitter outside [0, 1), or
    damping thresholds with [reuse > suppress] or non-positive
    components. *)

type state = Down | Init | TwoWay | Full

val state_name : state -> string

type down_cause = [ `Dead | `One_way | `Peer_reset ]
(** Why an established adjacency was torn down: dead-interval expiry,
    the neighbor stopped hearing us, or the neighbor reset its side of
    the adjacency (a reboot, or a one-sided teardown it signalled by
    bumping its session number). *)

type action =
  | Report_up  (** tell the routing process the adjacency is usable *)
  | Report_down of down_cause  (** tell it the adjacency is gone *)
  | Arm_dead of float  (** (re)arm the dead-interval check at this absolute time *)
  | Arm_reuse of float  (** arm a damping reuse check after this many seconds *)

type adj
(** Mutable per-(node, neighbor) detector state. *)

val create : params -> adj
val state : adj -> state
val suppressed : adj -> bool
val flaps : adj -> int
(** Detected [Full -> Down] transitions so far. *)

val heard_gen : adj -> int
(** The neighbor session number we are currently hearing, or -1 when
    [Down] — exactly the value our own hellos must carry back so the
    neighbor can tell we hear it (two-way check). *)

val penalty : adj -> now:float -> float
(** Decayed damping penalty at [now] (0 when damping is disabled). *)

val on_hello : adj -> now:float -> gen:int -> heard_me:bool -> action list
(** A hello arrived: the neighbor's session number is [gen] and
    [heard_me] says whether its hello carried our current session
    back. Never returns both a [Report_down] and [Report_up] out of
    order: a peer reset tears down first, then the fresh hello is
    processed. *)

val on_dead_check : adj -> now:float -> action list
(** The dead-interval timer fired. Either the deadline was pushed by a
    later hello ([Arm_dead] again) or the neighbor is declared dead. *)

val on_reuse_check : adj -> now:float -> action list
(** The damping reuse timer fired: release the suppression if the
    penalty has decayed to [reuse], else re-arm. *)
