type msg = {
  entries : (int * float) list;
  reset : bool;
  seq : int option;
  ack_of : int option;
}

let horizon = 1.0e4

type t = {
  id : int;
  n : int;
  adjacent : (int, float) Hashtbl.t;
  nbr_vectors : (int, float array) Hashtbl.t;  (* D_jk as reported by k *)
  dist : float array;  (* D_j *)
  advertised : float array;  (* last vector sent to neighbors *)
  fd : float array;
  mutable succ : int list array;
  first_hop : int array;
  mutable active : bool;
  mutable active_phases : int;  (* PASSIVE -> ACTIVE transitions *)
  pending : (int, int) Hashtbl.t;
  mutable needs_full : int list;
  mutable next_seq : int;
  mutable sent : int;
}

let fresh_vector n = Array.make n infinity

let create ~id ~n =
  if id < 0 || id >= n then invalid_arg "Dv_router.create: id out of range";
  let base () =
    let d = fresh_vector n in
    d.(id) <- 0.0;
    d
  in
  {
    id;
    n;
    adjacent = Hashtbl.create 8;
    nbr_vectors = Hashtbl.create 8;
    dist = base ();
    advertised = base ();
    fd = base ();
    succ = Array.make n [];
    first_hop = Array.make n (-1);
    active = false;
    active_phases = 0;
    pending = Hashtbl.create 8;
    needs_full = [];
    next_seq = 0;
    sent = 0;
  }

let id t = t.id
let is_passive t = not t.active
let distance t ~dst = t.dist.(dst)
let feasible_distance t ~dst = t.fd.(dst)
let successors t ~dst = t.succ.(dst)
let best_successor t ~dst = if t.first_hop.(dst) < 0 then None else Some t.first_hop.(dst)

let neighbor_distance t ~nbr ~dst =
  match Hashtbl.find_opt t.nbr_vectors nbr with
  | None -> infinity
  | Some v -> v.(dst)

let up_neighbors t = Mdr_util.Sorted_tbl.keys t.adjacent

let messages_sent t = t.sent
let active_phases t = t.active_phases

let link_cost t ~nbr =
  match Hashtbl.find_opt t.adjacent nbr with Some c -> c | None -> infinity

(* Bellman-Ford step over the stored neighbor vectors; distances past
   the horizon collapse to infinity to bound counting. *)
let recompute t =
  let nbrs = up_neighbors t in
  for j = 0 to t.n - 1 do
    if j <> t.id then begin
      let best = ref infinity and hop = ref (-1) in
      List.iter
        (fun k ->
          let d = neighbor_distance t ~nbr:k ~dst:j +. link_cost t ~nbr:k in
          if d < !best then begin
            best := d;
            hop := k
          end)
        nbrs;
      let d = if !best >= horizon then infinity else !best in
      t.dist.(j) <- d;
      t.first_hop.(j) <- (if Float.is_finite d then !hop else -1)
    end
  done

let recompute_successors t =
  let nbrs = up_neighbors t in
  t.succ <-
    Array.init t.n (fun j ->
        if j = t.id then []
        else List.filter (fun k -> neighbor_distance t ~nbr:k ~dst:j < t.fd.(j)) nbrs)

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let vector_entries t =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if Float.is_finite t.dist.(j) then acc := (j, t.dist.(j)) :: !acc
  done;
  !acc

let diff_advertised t =
  let changes = ref [] in
  for j = t.n - 1 downto 0 do
    if t.dist.(j) <> t.advertised.(j) then changes := (j, t.dist.(j)) :: !changes
  done;
  !changes

let compose_outputs t ~changes ~ack_to =
  let nbrs = up_neighbors t in
  let full_targets = List.filter (fun k -> List.mem k t.needs_full) nbrs in
  t.needs_full <- [];
  let data_targets =
    if changes = [] then full_targets
    else List.sort_uniq compare (full_targets @ nbrs)
  in
  let outputs = ref [] in
  let ack_consumed = ref false in
  List.iter
    (fun k ->
      let is_full = List.mem k full_targets in
      let entries = if is_full then vector_entries t else changes in
      if entries <> [] || is_full then begin
        let seq = Some (fresh_seq t) in
        let ack_of =
          match ack_to with Some (k', s) when k' = k -> Some s | Some _ | None -> None
        in
        if ack_of <> None then ack_consumed := true;
        (match seq with Some s -> Hashtbl.replace t.pending k s | None -> ());
        outputs := (k, { entries; reset = is_full; seq; ack_of }) :: !outputs
      end)
    data_targets;
  if data_targets <> [] then Array.blit t.dist 0 t.advertised 0 t.n;
  (match ack_to with
  | Some (k, s) when (not !ack_consumed) && Hashtbl.mem t.adjacent k ->
    outputs := (k, { entries = []; reset = false; seq = None; ack_of = Some s }) :: !outputs
  | Some _ | None -> ());
  if Hashtbl.length t.pending > 0 then begin
    if not t.active then t.active_phases <- t.active_phases + 1;
    t.active <- true
  end;
  t.sent <- t.sent + List.length !outputs;
  List.rev !outputs

let process t ~ack_to ~ack_received =
  (match ack_received with
  | Some (nbr, seq) -> (
    match Hashtbl.find_opt t.pending nbr with
    | Some expected when expected = seq -> Hashtbl.remove t.pending nbr
    | Some _ | None -> ())
  | None -> ());
  let last_ack = t.active && Hashtbl.length t.pending = 0 in
  let changes =
    if not t.active then begin
      (* PASSIVE: recompute and lower FD toward D (MPDA lines 2a-2b). *)
      recompute t;
      for j = 0 to t.n - 1 do
        t.fd.(j) <- Float.min t.fd.(j) t.dist.(j)
      done;
      diff_advertised t
    end
    else if last_ack then begin
      (* All neighbors hold the advertised vector: FD may rise to
         min(advertised, fresh) — MPDA lines 3a-3c. *)
      let temp = Array.copy t.advertised in
      t.active <- false;
      recompute t;
      for j = 0 to t.n - 1 do
        t.fd.(j) <- Float.min temp.(j) t.dist.(j)
      done;
      diff_advertised t
    end
    else []
  in
  recompute_successors t;
  compose_outputs t ~changes ~ack_to

let handle_link_up t ~nbr ~cost =
  if not (Float.is_finite cost) || cost < 0.0 then
    invalid_arg "Dv_router.handle_link_up: bad cost";
  Hashtbl.replace t.adjacent nbr cost;
  if not (Hashtbl.mem t.nbr_vectors nbr) then
    Hashtbl.replace t.nbr_vectors nbr (fresh_vector t.n);
  if not (List.mem nbr t.needs_full) then t.needs_full <- nbr :: t.needs_full;
  process t ~ack_to:None ~ack_received:None

let handle_link_down t ~nbr =
  if Hashtbl.mem t.adjacent nbr then begin
    Hashtbl.remove t.adjacent nbr;
    Hashtbl.replace t.nbr_vectors nbr (fresh_vector t.n);
    t.needs_full <- List.filter (fun k -> k <> nbr) t.needs_full;
    let ack = Hashtbl.find_opt t.pending nbr |> Option.map (fun s -> (nbr, s)) in
    process t ~ack_to:None ~ack_received:ack
  end
  else []

(* DBF makes no LFI promise, so an inferred loss needs no ghost
   bookkeeping: unconfirmed teardown is an ordinary teardown and
   confirmation is a no-op. *)
let handle_link_down_unconfirmed = handle_link_down
let confirm_link_down _t ~nbr:_ = []

let handle_link_cost t ~nbr ~cost =
  if not (Hashtbl.mem t.adjacent nbr) then []
  else begin
    Hashtbl.replace t.adjacent nbr cost;
    process t ~ack_to:None ~ack_received:None
  end

let handle_msg t ~from_ msg =
  if not (Hashtbl.mem t.adjacent from_) then []
  else begin
    if msg.entries <> [] || msg.reset then begin
      let vector =
        match Hashtbl.find_opt t.nbr_vectors from_ with
        | Some v -> v
        | None ->
          let v = fresh_vector t.n in
          Hashtbl.replace t.nbr_vectors from_ v;
          v
      in
      if msg.reset then Array.fill vector 0 t.n infinity;
      vector.(from_) <- 0.0;
      List.iter (fun (j, d) -> if j >= 0 && j < t.n then vector.(j) <- d) msg.entries
    end;
    let ack_received = Option.map (fun s -> (from_, s)) msg.ack_of in
    let ack_to = Option.map (fun s -> (from_, s)) msg.seq in
    process t ~ack_to ~ack_received
  end
