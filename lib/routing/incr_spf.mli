(** Incremental shortest-path-tree maintenance (delta Dijkstra).

    A {!state} holds the distances and parents of one root's
    shortest-path tree over a {!Topo_table.t}; {!update} repairs it in
    place from a batch of edge changes, touching only the affected
    region (Ramalingam–Reps style: orphan the subtrees whose support
    broke, re-enter them from the intact boundary, seed decreases, and
    run the standard heap discipline over the dirty frontier), falling
    back to a full {!Dijkstra.on_table_into} when the dirty region is
    too large or a tie-ambiguity guard fires.

    {b Equivalence contract.} After [update], [state.dist] and
    [state.parent] are bit-identical to what a from-scratch
    {!Dijkstra.on_table_into} on the current table would produce —
    including the smallest-id-predecessor tie rule — for every table
    whose distinct path costs are either exactly equal or separated by
    more than the 1e-12 relative tolerance ({!Dijkstra.close}). Inputs
    violating that (sub-tolerance near-ties) make even two full runs
    relaxation-order-dependent and are outside the contract. Tables
    containing zero-cost edges are handled by always falling back to a
    full run (equal-distance plateaus make the local parent rule
    unsound), so results stay exact there too.

    Steady-state repairs are allocation-free: all scratch lives in the
    reusable {!ws} (stamp-marked arrays, growable vectors). A workspace
    serves one domain at a time — parallel tasks own their own, as with
    {!Dijkstra.workspace}. *)

type state = {
  dist : float array;  (** length [n]; [dist.(j)] = cost root -> j, [infinity] if unreachable *)
  parent : int array;  (** length [n]; canonical predecessor, [-1] for root/unreachable *)
  n : int;
  root : int;
  mutable version : int;
      (** {!Topo_table.version} the tree was last synced to; [-1] before
          the first run (the first {!update} then recomputes fully). *)
  mutable has_zero : bool;
      (** The last full run saw a zero-cost edge (or a change introduced
          one); forces full recomputation until a full run sees none. *)
}

type ws
(** Reusable repair scratch plus a {!Dijkstra.workspace} for fallback
    full runs. *)

type stats = {
  mutable full_runs : int;  (** full Dijkstra runs (first runs + fallbacks) *)
  mutable repairs : int;  (** successful incremental repairs *)
  mutable fallbacks : int;  (** updates that gave up and recomputed *)
  mutable repaired_nodes : int;  (** total nodes reported changed by repairs *)
}

type outcome =
  | Repaired of int
      (** Incremental repair succeeded; the payload is the number of
          nodes whose (dist, parent) actually changed. *)
  | Recomputed
      (** A full run replaced the tree (first run, zero-cost guard,
          dirty-region threshold, or ambiguity guard); the caller must
          treat every node as potentially changed. *)

val create : n:int -> root:int -> state
(** Fresh state with its own buffers, unsynced ([version = -1]). *)

val create_into :
  dist:float array -> parent:int array -> n:int -> root:int -> state
(** Like {!create} but aliasing caller-owned buffers (length >= [n]),
    so e.g. the router's main-table result arrays are maintained in
    place with no copying. *)

val workspace : unit -> ws
(** Empty workspace; grows to fit whatever [n] it is used with. *)

val stats : ws -> stats
(** Live counters for this workspace (shared by all states it serves). *)

val full : ws -> state -> Topo_table.t -> unit
(** Unconditional full recompute; syncs [state.version] and rescans for
    zero-cost edges. *)

val update :
  ?max_dirty_frac:float ->
  ?on_changed:(int -> unit) ->
  ws ->
  state ->
  Topo_table.t ->
  changes:Topo_table.entry list ->
  outcome
(** Repair the tree to match [table]. [changes] must be exactly the
    edge changes (new costs; [infinity] = removed, the
    {!Topo_table.diff} convention) applied to the table since the state
    was last synced — the caller tracks that via [state.version] against
    {!Topo_table.version} and calls {!full} when continuity was lost.
    Entries touching nodes outside [0, n) are ignored. [on_changed] is
    invoked once per actually-changed node, in ascending id order,
    after the repair completes (not called when the outcome is
    [Recomputed]). [max_dirty_frac] (default 0.25) bounds the orphaned
    fraction of the graph above which repairing falls back to a full
    run. *)

val default_max_dirty_frac : float
