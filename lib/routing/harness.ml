module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine
module Rng = Mdr_util.Rng

module type ROUTER = sig
  type t
  type msg

  val create : id:int -> n:int -> t
  val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_link_down : t -> nbr:int -> (int * msg) list
  val handle_link_down_unconfirmed : t -> nbr:int -> (int * msg) list
  val confirm_link_down : t -> nbr:int -> (int * msg) list
  val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_msg : t -> from_:int -> msg -> (int * msg) list
  val is_passive : t -> bool
  val distance : t -> dst:int -> float
  val successors : t -> dst:int -> int list
  val feasible_distance : t -> dst:int -> float
  val neighbor_distance : t -> nbr:int -> dst:int -> float
  val up_neighbors : t -> int list
  val messages_sent : t -> int
  val active_phases : t -> int
end

type channel = src:int -> dst:int -> now:float -> float list

type detection = Oracle | Hello of Hello.params

type down_cause = [ `Oracle | `Dead | `One_way | `Peer_reset ]

type trace_event =
  | Phys_down of { src : int; dst : int }
  | Phys_up of { src : int; dst : int }
  | Adj_down of { node : int; nbr : int; cause : down_cause }
  | Adj_up of { node : int; nbr : int }

let ideal_channel : channel = fun ~src:_ ~dst:_ ~now:_ -> [ 0.0 ]

module Make (R : ROUTER) = struct
  (* Reliable-transport state, one record per directed link. Engaged
     when a channel fault model is installed, and always under hello
     detection (an undetected physical flap loses in-flight frames even
     with a faultless channel model). *)
  type tx = {
    mutable next_tseq : int;
    mutable unacked : (int * R.msg) list;  (* oldest first *)
    mutable rto : float;
    mutable timer : Engine.event_id option;
  }

  type rx = {
    mutable expected : int;
    mutable ep : int;
        (* the stream epoch this receive state belongs to; a live frame
           with a newer epoch means the sender reset the stream after a
           one-sided adjacency loss, so we resync from tseq 0 *)
    held : (int, R.msg) Hashtbl.t;  (* out-of-order frames awaiting delivery *)
  }

  type frame =
    | Data of { ep : int; tseq : int; payload : R.msg }
    | Tack of { ep : int; upto : int }
        (* cumulative transport ACK for the reverse direction; [ep] is
           the epoch of the *data* direction being acknowledged *)

  type t = {
    topo : Graph.t;
    engine : Engine.t;
    routers : R.t array;
    make_router : id:int -> n:int -> R.t;
    detection : detection;
    rng : Rng.t;
    up : (int * int, unit) Hashtbl.t;  (* directed links physically up *)
    epoch : (int * int, int) Hashtbl.t;
        (* bumped whenever a directed link goes logically down, so
           in-flight frames from a previous up-period die at arrival *)
    cost_now : (int * int, float) Hashtbl.t;  (* last applied cost *)
    admin_down : (int * int, unit) Hashtbl.t;  (* explicitly failed links *)
    alive : bool array;
    session : (int * int, int) Hashtbl.t;
        (* per directed link, the sender's adjacency session number
           carried in its hellos. Bumped at every routing-visible
           teardown of that direction (and at node crashes), it makes
           teardown bilateral: the peer cannot keep — or re-form — an
           adjacency across our reset without seeing the session
           change and resetting too. That closes the window where one
           side raises its feasible distance without the other's ACK
           and where a surviving transport stream deadlocks against a
           reset receiver. *)
    adj : (int * int, Hello.adj) Hashtbl.t;  (* (node, nbr) detector state *)
    hello_on : (int * int, unit) Hashtbl.t;  (* hello loop running per direction *)
    mutable aux_pending : int;
        (* scheduled events that carry no protocol obligation (hello
           ticks, hello frames, dead checks) — excluded from quiescence *)
    mutable trace_rev : (float * trace_event) list;
    mutable channel : channel option;
    mutable cost_damping : Cost_trigger.params option;
    triggers : (int * int, Cost_trigger.t) Hashtbl.t;
        (* per directed link, the cost-change damper standing between
           measured costs and [handle_link_cost]; discarded whenever
           the adjacency (re-)forms, since link-up re-announces the
           cost out of band *)
    mutable cost_updates_offered : int;
    mutable cost_updates_applied : int;
    tx : (int * int, tx) Hashtbl.t;
    rx : (int * int, rx) Hashtbl.t;
    mutable rto_initial : float;
    mutable rto_max : float;
    mutable retransmissions : int;
    mutable transport_acks : int;
    mutable hellos_sent : int;
    mutable crashed_active_phases : int;
        (* ACTIVE-phase counts of routers destroyed by crashes, so
           [total_active_phases] survives router replacement *)
    observer : t -> unit;
  }

  let engine t = t.engine
  let topology t = t.topo
  let router t i = t.routers.(i)
  let detection t = t.detection
  let link_is_up t ~src ~dst = Hashtbl.mem t.up (src, dst)
  let node_is_up t node = t.alive.(node)
  let prop_delay t ~src ~dst = (Graph.link_exn t.topo ~src ~dst).Graph.prop_delay
  let retransmissions t = t.retransmissions
  let transport_acks t = t.transport_acks
  let hellos_sent t = t.hellos_sent
  let cost_updates_offered t = t.cost_updates_offered
  let cost_updates_applied t = t.cost_updates_applied

  let cost_suppressed t ~src ~dst =
    match Hashtbl.find_opt t.triggers (src, dst) with
    | Some tr -> Cost_trigger.suppressed tr
    | None -> false
  let trace t = List.rev t.trace_rev
  let record t ev = t.trace_rev <- (Engine.now t.engine, ev) :: t.trace_rev

  let hello_params t =
    match t.detection with
    | Hello p -> p
    | Oracle -> invalid_arg "Harness: no hello params under oracle detection"

  let transport_engaged t =
    match (t.channel, t.detection) with
    | Some _, _ | _, Hello _ -> true
    | None, Oracle -> false

  let channel_fn t = match t.channel with Some ch -> ch | None -> ideal_channel

  let current_epoch t key =
    match Hashtbl.find_opt t.epoch key with Some e -> e | None -> 0

  let bump_epoch t key = Hashtbl.replace t.epoch key (current_epoch t key + 1)

  let session_of t key =
    match Hashtbl.find_opt t.session key with Some s -> s | None -> 0

  let bump_session t key = Hashtbl.replace t.session key (session_of t key + 1)

  let get_tx t key =
    match Hashtbl.find_opt t.tx key with
    | Some s -> s
    | None ->
      let s = { next_tseq = 0; unacked = []; rto = t.rto_initial; timer = None } in
      Hashtbl.replace t.tx key s;
      s

  let get_rx t key =
    match Hashtbl.find_opt t.rx key with
    | Some s -> s
    | None ->
      let s = { expected = 0; ep = current_epoch t key; held = Hashtbl.create 4 } in
      Hashtbl.replace t.rx key s;
      s

  let reset_tx t key =
    match Hashtbl.find_opt t.tx key with
    | Some s ->
      (match s.timer with Some id -> Engine.cancel t.engine id | None -> ());
      Hashtbl.remove t.tx key
    | None -> ()

  let reset_rx t key = Hashtbl.remove t.rx key

  let reset_transport t key =
    reset_tx t key;
    reset_rx t key

  (* Events with no protocol obligation: quiescence ignores them. *)
  let schedule_aux t ~delay f =
    t.aux_pending <- t.aux_pending + 1;
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           t.aux_pending <- t.aux_pending - 1;
           f ()))

  let schedule_aux_at t ~time f =
    t.aux_pending <- t.aux_pending + 1;
    ignore
      (Engine.schedule_at t.engine ~time (fun () ->
           t.aux_pending <- t.aux_pending - 1;
           f ()))

  (* --- Adjacency state ------------------------------------------------- *)

  let get_adj t key =
    match Hashtbl.find_opt t.adj key with
    | Some a -> a
    | None ->
      let a = Hello.create (hello_params t) in
      Hashtbl.replace t.adj key a;
      a

  let adj_state t ~node ~nbr =
    match t.detection with
    | Oracle -> if link_is_up t ~src:node ~dst:nbr then Hello.Full else Hello.Down
    | Hello _ -> (
      match Hashtbl.find_opt t.adj (node, nbr) with
      | Some a -> Hello.state a
      | None -> Hello.Down)

  let adj_is_up t ~src ~dst = adj_state t ~node:src ~nbr:dst = Hello.Full

  let adj_suppressed t ~node ~nbr =
    match Hashtbl.find_opt t.adj (node, nbr) with
    | Some a -> Hello.suppressed a
    | None -> false

  let adj_flaps t ~node ~nbr =
    match Hashtbl.find_opt t.adj (node, nbr) with
    | Some a -> Hello.flaps a
    | None -> 0

  (* May this endpoint hand frames to / accept frames from the peer?
     Under the oracle this is physical link state; under hello
     detection it is the endpoint's *belief* (its adjacency), which is
     exactly what a real router acts on. *)
  let send_ok t ~src ~dst =
    match t.detection with
    | Oracle -> link_is_up t ~src ~dst
    | Hello _ -> adj_is_up t ~src ~dst

  let recv_ok t ~src ~dst =
    match t.detection with Oracle -> true | Hello _ -> adj_is_up t ~src:dst ~dst:src

  (* --- Frame-level channel crossing ------------------------------------ *)

  (* Ask the channel model what happens to one frame on [src -> dst]:
     each returned float is an extra delay for one delivered copy
     (empty list = dropped). *)
  let transmit_frame t ~src ~dst ch frame ~deliver =
    let base = prop_delay t ~src ~dst in
    List.iter
      (fun extra ->
        if extra < 0.0 then invalid_arg "Harness: channel produced a negative delay";
        ignore (Engine.schedule t.engine ~delay:(base +. extra) (fun () -> deliver frame)))
      (ch ~src ~dst ~now:(Engine.now t.engine))

  (* --- Message delivery, transport, and hello machinery ----------------- *)

  (* Hand one router-level message to its destination and recursively
     dispatch the replies. *)
  let rec deliver_payload t ~src ~dst payload =
    let replies = R.handle_msg t.routers.(dst) ~from_:src payload in
    t.observer t;
    dispatch t ~from_:dst replies

  and dispatch t ~from_ outputs =
    List.iter
      (fun (dst, msg) ->
        if send_ok t ~src:from_ ~dst then
          if transport_engaged t then send_data t ~src:from_ ~dst msg
          else begin
            (* Lossless, in-order delivery with the link's propagation
               delay — the paper's assumed control channel. *)
            let ep = current_epoch t (from_, dst) in
            let delay = prop_delay t ~src:from_ ~dst in
            ignore
              (Engine.schedule t.engine ~delay (fun () ->
                   if link_is_up t ~src:from_ ~dst && current_epoch t (from_, dst) = ep
                   then deliver_payload t ~src:from_ ~dst msg))
          end)
      outputs

  and send_data t ~src ~dst payload =
    let ch = channel_fn t in
    let tx = get_tx t (src, dst) in
    let tseq = tx.next_tseq in
    tx.next_tseq <- tseq + 1;
    tx.unacked <- tx.unacked @ [ (tseq, payload) ];
    let ep = current_epoch t (src, dst) in
    transmit_frame t ~src ~dst ch
      (Data { ep; tseq; payload })
      ~deliver:(receive_frame t ~src ~dst);
    arm_timer t ~src ~dst tx

  and arm_timer t ~src ~dst tx =
    if tx.timer = None then begin
      (* Jittered backoff: without the random factor every transport
         stream armed by the same outage expires in lockstep and the
         heal instant sees a synchronized retransmission storm. *)
      let delay = tx.rto *. (1.0 +. Rng.uniform t.rng ~lo:0.0 ~hi:0.5) in
      tx.timer <-
        Some (Engine.schedule t.engine ~delay (fun () -> retransmit t ~src ~dst))
    end

  and retransmit t ~src ~dst =
    match Hashtbl.find_opt t.tx (src, dst) with
    | None -> ()
    | Some tx ->
      tx.timer <- None;
      if send_ok t ~src ~dst && tx.unacked <> [] then begin
        let ch = channel_fn t in
        let ep = current_epoch t (src, dst) in
        List.iter
          (fun (tseq, payload) ->
            t.retransmissions <- t.retransmissions + 1;
            transmit_frame t ~src ~dst ch
              (Data { ep; tseq; payload })
              ~deliver:(receive_frame t ~src ~dst))
          tx.unacked;
        tx.rto <- Float.min (tx.rto *. 2.0) t.rto_max;
        arm_timer t ~src ~dst tx
      end

  and send_tack t ~data_src ~data_dst =
    (* Cumulative ACK for direction [data_src -> data_dst], travelling
       the reverse link and subject to its channel faults. *)
    if send_ok t ~src:data_dst ~dst:data_src then begin
      let ch = channel_fn t in
      let rxs = get_rx t (data_src, data_dst) in
      let ep = current_epoch t (data_src, data_dst) in
      t.transport_acks <- t.transport_acks + 1;
      transmit_frame t ~src:data_dst ~dst:data_src ch
        (Tack { ep; upto = rxs.expected - 1 })
        ~deliver:(receive_frame t ~src:data_dst ~dst:data_src)
    end

  and receive_frame t ~src ~dst frame =
    (* Arrival of one frame that travelled [src -> dst]. *)
    if link_is_up t ~src ~dst then
      match frame with
      | Data { ep; tseq; payload } ->
        (* Under hello detection, data is accepted only once this
           endpoint's own adjacency is Full: a not-yet-promoted
           receiver stays silent and the sender's retransmissions
           deliver the stream as soon as promotion happens. *)
        if ep = current_epoch t (src, dst) && recv_ok t ~src ~dst then begin
          let rxs = get_rx t (src, dst) in
          if rxs.ep <> ep then begin
            (* The sender reset this stream (one-sided adjacency loss
               we never saw): restart reception from scratch. *)
            rxs.ep <- ep;
            rxs.expected <- 0;
            Hashtbl.reset rxs.held
          end;
          if tseq = rxs.expected then begin
            rxs.expected <- rxs.expected + 1;
            deliver_payload t ~src ~dst payload;
            (* Drain any buffered successors, in order. *)
            let rec drain () =
              match Hashtbl.find_opt rxs.held rxs.expected with
              | Some next ->
                Hashtbl.remove rxs.held rxs.expected;
                rxs.expected <- rxs.expected + 1;
                deliver_payload t ~src ~dst next;
                drain ()
              | None -> ()
            in
            drain ();
            send_tack t ~data_src:src ~data_dst:dst
          end
          else if tseq > rxs.expected then begin
            Hashtbl.replace rxs.held tseq payload;
            send_tack t ~data_src:src ~data_dst:dst
          end
          else (* duplicate of an already-delivered frame: re-ACK *)
            send_tack t ~data_src:src ~data_dst:dst
        end
      | Tack { ep; upto } ->
        (* Acknowledges data we sent on [dst -> src]. *)
        if ep = current_epoch t (dst, src) then (
          match Hashtbl.find_opt t.tx (dst, src) with
          | None -> ()
          | Some tx ->
            tx.unacked <- List.filter (fun (s, _) -> s > upto) tx.unacked;
            if tx.unacked = [] then begin
              (match tx.timer with
              | Some id ->
                Engine.cancel t.engine id;
                tx.timer <- None
              | None -> ());
              tx.rto <- t.rto_initial
            end)

  (* --- Logical (routing-visible) adjacency transitions ----------------- *)

  and logical_up t ~node ~nbr =
    record t (Adj_up { node; nbr });
    (* Link-up re-announces the cost out of band, so any cost-change
       damper for this direction restarts from a clean slate (stale
       armed timers die on the physical-identity check). *)
    Hashtbl.remove t.triggers (node, nbr);
    let cost =
      match Hashtbl.find_opt t.cost_now (node, nbr) with
      | Some c -> c
      | None -> invalid_arg "Harness: adjacency formed on a never-initialised link"
    in
    let outputs = R.handle_link_up t.routers.(node) ~nbr ~cost in
    (* Re-forming the adjacency proves the peer went through its own
       teardown (the session handshake forces it), so any ghost it left
       behind is released here rather than waiting out the timer. *)
    let confirm = R.confirm_link_down t.routers.(node) ~nbr in
    t.observer t;
    dispatch t ~from_:node (outputs @ confirm)

  and logical_down t ~node ~nbr ~cause =
    record t (Adj_down { node; nbr; cause });
    (* Poison our session so the peer must reset too before the
       adjacency can re-form, then kill both directions' in-flight
       frames and this endpoint's transport state. *)
    bump_session t (node, nbr);
    bump_epoch t (node, nbr);
    bump_epoch t (nbr, node);
    reset_tx t (node, nbr);
    reset_rx t (nbr, node);
    (* The teardown is *inferred*: the peer may still be up and routing
       on its old view of us, so the router keeps [nbr] as a ghost
       (feasible distances pinned) until the adjacency re-forms or the
       timer below declares the peer informed. 2x the dead interval is
       provably enough: from the moment we bumped our session, every
       hello the peer receives from us is poisoned (it tears down on
       first delivery), and total silence trips its own dead interval. *)
    let outputs = R.handle_link_down_unconfirmed t.routers.(node) ~nbr in
    let sess = session_of t (node, nbr) in
    let release () =
      if t.alive.(node) && session_of t (node, nbr) = sess then begin
        let outputs = R.confirm_link_down t.routers.(node) ~nbr in
        t.observer t;
        dispatch t ~from_:node outputs
      end
    in
    (* A normal (not aux) event: an unreleased ghost pins feasible
       distances, which is unfinished reconvergence business. The
       session guard keeps a stale timer from releasing a newer ghost
       (sessions bump at every teardown, including crashes). *)
    ignore
      (Engine.schedule t.engine
         ~delay:(2.0 *. (hello_params t).Hello.dead_interval)
         release);
    t.observer t;
    dispatch t ~from_:node outputs

  and apply_actions t ~node ~nbr a actions =
    List.iter
      (function
        | Hello.Report_up -> logical_up t ~node ~nbr
        | Hello.Report_down cause ->
          logical_down t ~node ~nbr ~cause:(cause :> down_cause)
        | Hello.Arm_dead time ->
          schedule_aux_at t ~time (fun () -> dead_check t ~node ~nbr a)
        | Hello.Arm_reuse delay ->
          (* Deliberately a normal event: a suppressed adjacency is
             unfinished business, so the hold-down counts toward
             reconvergence time instead of being invisible to it. *)
          ignore
            (Engine.schedule t.engine ~delay (fun () -> reuse_check t ~node ~nbr a)))
      actions

  (* Timers survive crashes of the node that owns them; firing on a
     detector that was wiped and rebuilt must be a no-op, hence the
     physical-identity guard. *)
  and dead_check t ~node ~nbr a =
    match Hashtbl.find_opt t.adj (node, nbr) with
    | Some a' when a' == a && t.alive.(node) ->
      apply_actions t ~node ~nbr a (Hello.on_dead_check a ~now:(Engine.now t.engine))
    | Some _ | None -> ()

  and reuse_check t ~node ~nbr a =
    match Hashtbl.find_opt t.adj (node, nbr) with
    | Some a' when a' == a && t.alive.(node) ->
      apply_actions t ~node ~nbr a (Hello.on_reuse_check a ~now:(Engine.now t.engine))
    | Some _ | None -> ()

  and receive_hello t ~src ~dst ~gen ~heard_gen =
    let a = get_adj t (dst, src) in
    let heard_me = heard_gen = session_of t (dst, src) in
    apply_actions t ~node:dst ~nbr:src
      a
      (Hello.on_hello a ~now:(Engine.now t.engine) ~gen ~heard_me)

  and send_hello t ~src ~dst =
    t.hellos_sent <- t.hellos_sent + 1;
    (* Frame contents are fixed at transmission time. [heard_gen] is
       the neighbor session we currently hear (-1 when none): the
       receiver compares it with its own current session for the
       two-way check, which also propagates one-sided teardowns. *)
    let gen = session_of t (src, dst) in
    let heard_gen =
      match Hashtbl.find_opt t.adj (src, dst) with
      | Some a -> Hello.heard_gen a
      | None -> -1
    in
    let base = prop_delay t ~src ~dst in
    List.iter
      (fun extra ->
        if extra < 0.0 then invalid_arg "Harness: channel produced a negative delay";
        schedule_aux t ~delay:(base +. extra) (fun () ->
            if link_is_up t ~src ~dst && t.alive.(dst) then
              receive_hello t ~src ~dst ~gen ~heard_gen))
      (channel_fn t ~src ~dst ~now:(Engine.now t.engine))

  and hello_tick t ~src ~dst =
    if link_is_up t ~src ~dst && t.alive.(src) then begin
      send_hello t ~src ~dst;
      let p = hello_params t in
      let lo = p.Hello.hello_interval *. (1.0 -. (p.Hello.jitter /. 2.0)) in
      let hi = p.Hello.hello_interval *. (1.0 +. (p.Hello.jitter /. 2.0)) in
      schedule_aux t ~delay:(Rng.uniform t.rng ~lo ~hi) (fun () ->
          hello_tick t ~src ~dst)
    end
    else
      (* The loop dies with the physical link; [apply_link_up] starts a
         fresh one (the [hello_on] flag prevents doubling up). *)
      Hashtbl.remove t.hello_on (src, dst)

  and start_hello t ~src ~dst =
    if not (Hashtbl.mem t.hello_on (src, dst)) then begin
      Hashtbl.replace t.hello_on (src, dst) ();
      let p = hello_params t in
      (* First hello at a random offset so the links of a freshly
         healed partition do not all speak at once. *)
      schedule_aux t ~delay:(Rng.uniform t.rng ~lo:0.0 ~hi:p.Hello.hello_interval)
        (fun () -> hello_tick t ~src ~dst)
    end

  (* --- Physical link events --------------------------------------------- *)

  let apply_link_up t ~src ~dst ~cost =
    if t.alive.(src) && t.alive.(dst) && not (link_is_up t ~src ~dst) then begin
      Hashtbl.replace t.up (src, dst) ();
      Hashtbl.replace t.cost_now (src, dst) cost;
      record t (Phys_up { src; dst });
      match t.detection with
      | Oracle ->
        record t (Adj_up { node = src; nbr = dst });
        Hashtbl.remove t.triggers (src, dst);
        let outputs = R.handle_link_up t.routers.(src) ~nbr:dst ~cost in
        t.observer t;
        dispatch t ~from_:src outputs
      | Hello _ ->
        t.observer t;
        start_hello t ~src ~dst
    end

  let apply_link_down t ~src ~dst =
    if link_is_up t ~src ~dst then begin
      Hashtbl.remove t.up (src, dst);
      record t (Phys_down { src; dst });
      match t.detection with
      | Oracle ->
        record t (Adj_down { node = src; nbr = dst; cause = `Oracle });
        bump_epoch t (src, dst);
        reset_transport t (src, dst);
        let outputs = R.handle_link_down t.routers.(src) ~nbr:dst in
        t.observer t;
        dispatch t ~from_:src outputs
      | Hello _ ->
        (* Nobody is told: the loss must be *inferred*. In-flight
           frames die at arrival (the link is down), the hello loop
           stops itself, and the peer's dead interval or one-way check
           does the routing-visible teardown. *)
        t.observer t
    end

  (* Timers survive link flaps and damping reconfiguration; firing on a
     trigger that was discarded must be a no-op, hence the
     physical-identity guard (same device as [dead_check]). *)
  let rec trigger_check t ~src ~dst tr =
    match Hashtbl.find_opt t.triggers (src, dst) with
    | Some tr' when tr' == tr ->
      if t.alive.(src) && link_is_up t ~src ~dst && send_ok t ~src ~dst then
        run_trigger_actions t ~src ~dst tr
          (Cost_trigger.on_check tr ~now:(Engine.now t.engine))
      else
        (* The adjacency died while an update was pending; link-up will
           re-announce the cost, so the damper state is moot. *)
        Hashtbl.remove t.triggers (src, dst)
    | Some _ | None -> ()

  and run_trigger_actions t ~src ~dst tr actions =
    List.iter
      (function
        | Cost_trigger.Apply c ->
          t.cost_updates_applied <- t.cost_updates_applied + 1;
          let outputs = R.handle_link_cost t.routers.(src) ~nbr:dst ~cost:c in
          t.observer t;
          dispatch t ~from_:src outputs
        | Cost_trigger.Arm delay ->
          (* Deliberately a normal event: a pending cost update is
             unfinished reconvergence business, so quiescence waits
             for it. *)
          ignore
            (Engine.schedule t.engine ~delay (fun () ->
                 trigger_check t ~src ~dst tr)))
      actions

  let apply_link_cost t ~src ~dst ~cost =
    if link_is_up t ~src ~dst then begin
      let prev =
        match Hashtbl.find_opt t.cost_now (src, dst) with
        | Some c -> c
        | None -> cost
      in
      Hashtbl.replace t.cost_now (src, dst) cost;
      if send_ok t ~src ~dst then begin
        t.cost_updates_offered <- t.cost_updates_offered + 1;
        match t.cost_damping with
        | None ->
          t.cost_updates_applied <- t.cost_updates_applied + 1;
          let outputs = R.handle_link_cost t.routers.(src) ~nbr:dst ~cost in
          t.observer t;
          dispatch t ~from_:src outputs
        | Some params ->
          let tr =
            match Hashtbl.find_opt t.triggers (src, dst) with
            | Some tr -> tr
            | None ->
              (* The routing process last heard [prev] (at link-up or
                 through an earlier applied update). *)
              let tr =
                Cost_trigger.create ~params ~initial:prev
                  ~now:(Engine.now t.engine) ()
              in
              Hashtbl.replace t.triggers (src, dst) tr;
              tr
          in
          run_trigger_actions t ~src ~dst tr
            (Cost_trigger.offer tr ~now:(Engine.now t.engine) ~cost)
      end
    end

  (* --- Node crash / restart -------------------------------------------- *)

  let apply_node_crash t node =
    if t.alive.(node) then begin
      t.alive.(node) <- false;
      let nbrs = Graph.neighbors t.topo node in
      (match t.detection with
      | Oracle ->
        (* Take every adjacent direction down first so no handler can
           reach the dying router, then notify the surviving endpoints
           (they detect the loss as link-down), then wipe the router. *)
        let notify =
          List.filter
            (fun k ->
              let was_up = link_is_up t ~src:k ~dst:node in
              List.iter
                (fun key ->
                  if Hashtbl.mem t.up key then begin
                    Hashtbl.remove t.up key;
                    record t (Phys_down { src = fst key; dst = snd key });
                    bump_epoch t key;
                    reset_transport t key
                  end)
                [ (node, k); (k, node) ];
              was_up && t.alive.(k))
            nbrs
        in
        List.iter
          (fun k ->
            record t (Adj_down { node = k; nbr = node; cause = `Oracle });
            let outputs = R.handle_link_down t.routers.(k) ~nbr:node in
            t.observer t;
            dispatch t ~from_:k outputs)
          notify
      | Hello _ ->
        (* Silence is the only signal: adjacent directions go
           physically down, the dead router's detectors and transport
           state vanish, and each neighbor's dead interval discovers
           the loss on its own. *)
        List.iter
          (fun k ->
            List.iter
              (fun key ->
                if Hashtbl.mem t.up key then begin
                  Hashtbl.remove t.up key;
                  record t (Phys_down { src = fst key; dst = snd key })
                end)
              [ (node, k); (k, node) ];
            Hashtbl.remove t.adj (node, k);
            bump_session t (node, k);
            reset_tx t (node, k);
            reset_rx t (k, node))
          nbrs;
        t.observer t);
      t.crashed_active_phases <-
        t.crashed_active_phases + R.active_phases t.routers.(node);
      t.routers.(node) <- t.make_router ~id:node ~n:(Graph.node_count t.topo);
      t.observer t
    end

  let apply_node_restart t node =
    if not t.alive.(node) then begin
      t.alive.(node) <- true;
      t.routers.(node) <- t.make_router ~id:node ~n:(Graph.node_count t.topo);
      List.iter
        (fun k ->
          if t.alive.(k) then
            List.iter
              (fun (s, d) ->
                if not (Hashtbl.mem t.admin_down (s, d)) then
                  let cost =
                    match Hashtbl.find_opt t.cost_now (s, d) with
                    | Some c -> c
                    | None -> invalid_arg "Harness: restart of a never-initialised link"
                  in
                  apply_link_up t ~src:s ~dst:d ~cost)
              [ (node, k); (k, node) ])
        (Graph.neighbors t.topo node)
    end

  (* --- Construction and scheduling -------------------------------------- *)

  let create ?make_router ?(detection = Oracle) ?(seed = 1)
      ?(observer = fun _ -> ()) ~topo ~cost () =
    (match detection with Hello p -> Hello.validate p | Oracle -> ());
    let n = Graph.node_count topo in
    let make_router =
      match make_router with Some f -> f | None -> fun ~id ~n -> R.create ~id ~n
    in
    let t =
      {
        topo;
        engine = Engine.create ();
        routers = Array.init n (fun id -> make_router ~id ~n);
        make_router;
        detection;
        rng = Rng.create ~seed;
        up = Hashtbl.create (Graph.link_count topo);
        epoch = Hashtbl.create (Graph.link_count topo);
        cost_now = Hashtbl.create (Graph.link_count topo);
        admin_down = Hashtbl.create 8;
        alive = Array.make n true;
        session = Hashtbl.create (Graph.link_count topo);
        adj = Hashtbl.create (Graph.link_count topo);
        hello_on = Hashtbl.create (Graph.link_count topo);
        aux_pending = 0;
        trace_rev = [];
        channel = None;
        cost_damping = None;
        triggers = Hashtbl.create (Graph.link_count topo);
        cost_updates_offered = 0;
        cost_updates_applied = 0;
        tx = Hashtbl.create 16;
        rx = Hashtbl.create 16;
        rto_initial = 0.05;
        rto_max = 2.0;
        retransmissions = 0;
        transport_acks = 0;
        hellos_sent = 0;
        crashed_active_phases = 0;
        observer;
      }
    in
    (* Bring every directed link up at time 0. Both directions are
       scheduled before any message can be delivered (delays > 0 in
       practice; equal-time events run in scheduling order otherwise). *)
    List.iter
      (fun l ->
        ignore
          (Engine.schedule t.engine ~delay:0.0 (fun () ->
               apply_link_up t ~src:l.Graph.src ~dst:l.Graph.dst ~cost:(cost l))))
      (Graph.links topo);
    t

  let set_channel t ?(rto_initial = 0.05) ?(rto_max = 2.0) ch =
    if rto_initial <= 0.0 || rto_max < rto_initial then
      invalid_arg "Harness.set_channel: need 0 < rto_initial <= rto_max";
    t.rto_initial <- rto_initial;
    t.rto_max <- rto_max;
    t.channel <- Some ch

  let set_cost_damping t params =
    Cost_trigger.validate params;
    t.cost_damping <- Some params

  let require_duplex t ~fn ~a ~b =
    if a = b then invalid_arg (Printf.sprintf "%s: %d-%d is a self-loop" fn a b);
    let n = Graph.node_count t.topo in
    if a < 0 || a >= n || b < 0 || b >= n then
      invalid_arg (Printf.sprintf "%s: node out of range in %d-%d" fn a b);
    if Graph.link t.topo ~src:a ~dst:b = None || Graph.link t.topo ~src:b ~dst:a = None
    then
      invalid_arg
        (Printf.sprintf "%s: no duplex link %d-%d in the topology" fn a b)

  let schedule_link_cost t ~at ~src ~dst ~cost =
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () -> apply_link_cost t ~src ~dst ~cost))

  let schedule_fail_duplex t ~at ~a ~b =
    require_duplex t ~fn:"Harness.schedule_fail_duplex" ~a ~b;
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           Hashtbl.replace t.admin_down (a, b) ();
           Hashtbl.replace t.admin_down (b, a) ();
           apply_link_down t ~src:a ~dst:b;
           apply_link_down t ~src:b ~dst:a))

  let schedule_restore_duplex t ~at ~a ~b ~cost =
    require_duplex t ~fn:"Harness.schedule_restore_duplex" ~a ~b;
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           Hashtbl.remove t.admin_down (a, b);
           Hashtbl.remove t.admin_down (b, a);
           (* Record the cost even when an endpoint is down so a later
              restart brings the link up at the restored value. *)
           Hashtbl.replace t.cost_now (a, b) cost;
           Hashtbl.replace t.cost_now (b, a) cost;
           apply_link_up t ~src:a ~dst:b ~cost;
           apply_link_up t ~src:b ~dst:a ~cost))

  let require_node t ~fn node =
    if node < 0 || node >= Graph.node_count t.topo then
      invalid_arg (Printf.sprintf "%s: node %d out of range" fn node)

  let schedule_node_crash t ~at ~node =
    require_node t ~fn:"Harness.schedule_node_crash" node;
    ignore (Engine.schedule_at t.engine ~time:at (fun () -> apply_node_crash t node))

  let schedule_node_restart t ~at ~node =
    require_node t ~fn:"Harness.schedule_node_restart" node;
    ignore (Engine.schedule_at t.engine ~time:at (fun () -> apply_node_restart t node))

  let partition_cut t ~group =
    let n = Graph.node_count t.topo in
    let inside = Array.make n false in
    List.iter
      (fun v ->
        require_node t ~fn:"Harness.schedule_partition" v;
        inside.(v) <- true)
      group;
    List.filter
      (fun (l : Graph.link) -> inside.(l.src) && not inside.(l.dst))
      (Graph.links t.topo)

  let schedule_partition t ~at ~heal_at ~group =
    if heal_at < at then invalid_arg "Harness.schedule_partition: heal_at < at";
    let cut = partition_cut t ~group in
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           List.iter
             (fun (l : Graph.link) ->
               Hashtbl.replace t.admin_down (l.src, l.dst) ();
               Hashtbl.replace t.admin_down (l.dst, l.src) ();
               apply_link_down t ~src:l.src ~dst:l.dst;
               apply_link_down t ~src:l.dst ~dst:l.src)
             cut));
    ignore
      (Engine.schedule_at t.engine ~time:heal_at (fun () ->
           List.iter
             (fun (l : Graph.link) ->
               List.iter
                 (fun (s, d) ->
                   Hashtbl.remove t.admin_down (s, d);
                   match Hashtbl.find_opt t.cost_now (s, d) with
                   | Some cost -> apply_link_up t ~src:s ~dst:d ~cost
                   | None -> ())
                 [ (l.src, l.dst); (l.dst, l.src) ])
             cut))

  let run ?until t = Engine.run ?until t.engine

  (* Under hello detection, "every adjacency agrees with the physical
     link state" is part of quiescence: an aux event that will promote
     or demote an adjacency (and so wake the routers) is still pending
     exactly when some link disagrees. *)
  let adj_consistent t =
    match t.detection with
    | Oracle -> true
    | Hello _ ->
      List.for_all
        (fun (l : Graph.link) ->
          let expected =
            if link_is_up t ~src:l.src ~dst:l.dst then Hello.Full else Hello.Down
          in
          adj_state t ~node:l.src ~nbr:l.dst = expected)
        (Graph.links t.topo)

  let quiescent t =
    Engine.pending t.engine = t.aux_pending
    && Array.for_all R.is_passive t.routers
    && adj_consistent t

  let total_messages t =
    Array.fold_left (fun acc r -> acc + R.messages_sent r) t.retransmissions t.routers

  let total_active_phases t =
    Array.fold_left
      (fun acc r -> acc + R.active_phases r)
      t.crashed_active_phases t.routers

  let successor_sets t ~dst = fun node -> R.successors t.routers.(node) ~dst

  let check_loop_free t =
    let n = Graph.node_count t.topo in
    List.for_all
      (fun dst ->
        Lfi.successor_graph_acyclic ~n
          ~successors:(fun ~node -> R.successors t.routers.(node) ~dst)
          ~dst)
      (Graph.nodes t.topo)

  let check_lfi t =
    let n = Graph.node_count t.topo in
    List.for_all
      (fun dst ->
        Lfi.lfi_conditions_hold ~n
          ~neighbors:(fun node -> R.up_neighbors t.routers.(node))
          ~feasible:(fun ~node ~dst -> R.feasible_distance t.routers.(node) ~dst)
          ~reported:(fun ~holder ~about ~dst ->
            R.neighbor_distance t.routers.(holder) ~nbr:about ~dst)
          ~dst)
      (Graph.nodes t.topo)
end

module Dv_network = Make (Dv_router)
