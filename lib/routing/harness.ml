module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine

module type ROUTER = sig
  type t
  type msg

  val create : id:int -> n:int -> t
  val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_link_down : t -> nbr:int -> (int * msg) list
  val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_msg : t -> from_:int -> msg -> (int * msg) list
  val is_passive : t -> bool
  val distance : t -> dst:int -> float
  val successors : t -> dst:int -> int list
  val feasible_distance : t -> dst:int -> float
  val neighbor_distance : t -> nbr:int -> dst:int -> float
  val up_neighbors : t -> int list
  val messages_sent : t -> int
end

type channel = src:int -> dst:int -> now:float -> float list

module Make (R : ROUTER) = struct
  (* Reliable-transport state, one record per directed link. Engaged
     only when a channel fault model is installed; the lossless default
     path below bypasses it entirely. *)
  type tx = {
    mutable next_tseq : int;
    mutable unacked : (int * R.msg) list;  (* oldest first *)
    mutable rto : float;
    mutable timer : Engine.event_id option;
  }

  type rx = {
    mutable expected : int;
    held : (int, R.msg) Hashtbl.t;  (* out-of-order frames awaiting delivery *)
  }

  type frame =
    | Data of { ep : int; tseq : int; payload : R.msg }
    | Tack of { ep : int; upto : int }
        (* cumulative transport ACK for the reverse direction; [ep] is
           the epoch of the *data* direction being acknowledged *)

  type t = {
    topo : Graph.t;
    engine : Engine.t;
    routers : R.t array;
    make_router : id:int -> n:int -> R.t;
    up : (int * int, unit) Hashtbl.t;  (* directed links currently up *)
    epoch : (int * int, int) Hashtbl.t;
        (* bumped whenever a directed link goes down, so in-flight
           frames from a previous up-period die at arrival *)
    cost_now : (int * int, float) Hashtbl.t;  (* last applied cost *)
    admin_down : (int * int, unit) Hashtbl.t;  (* explicitly failed links *)
    alive : bool array;
    mutable channel : channel option;
    tx : (int * int, tx) Hashtbl.t;
    rx : (int * int, rx) Hashtbl.t;
    mutable rto_initial : float;
    mutable rto_max : float;
    mutable retransmissions : int;
    mutable transport_acks : int;
    observer : t -> unit;
  }

  let engine t = t.engine
  let topology t = t.topo
  let router t i = t.routers.(i)
  let link_is_up t ~src ~dst = Hashtbl.mem t.up (src, dst)
  let node_is_up t node = t.alive.(node)
  let prop_delay t ~src ~dst = (Graph.link_exn t.topo ~src ~dst).Graph.prop_delay
  let retransmissions t = t.retransmissions
  let transport_acks t = t.transport_acks

  let current_epoch t key =
    match Hashtbl.find_opt t.epoch key with Some e -> e | None -> 0

  let bump_epoch t key = Hashtbl.replace t.epoch key (current_epoch t key + 1)

  let get_tx t key =
    match Hashtbl.find_opt t.tx key with
    | Some s -> s
    | None ->
      let s = { next_tseq = 0; unacked = []; rto = t.rto_initial; timer = None } in
      Hashtbl.replace t.tx key s;
      s

  let get_rx t key =
    match Hashtbl.find_opt t.rx key with
    | Some s -> s
    | None ->
      let s = { expected = 0; held = Hashtbl.create 4 } in
      Hashtbl.replace t.rx key s;
      s

  let reset_transport t key =
    (match Hashtbl.find_opt t.tx key with
    | Some s ->
      (match s.timer with Some id -> Engine.cancel t.engine id | None -> ());
      Hashtbl.remove t.tx key
    | None -> ());
    Hashtbl.remove t.rx key

  (* --- Frame-level channel crossing (lossy mode) --------------------- *)

  (* Ask the channel model what happens to one frame on [src -> dst]:
     each returned float is an extra delay for one delivered copy
     (empty list = dropped). *)
  let transmit_frame t ~src ~dst ch frame ~deliver =
    let base = prop_delay t ~src ~dst in
    List.iter
      (fun extra ->
        if extra < 0.0 then invalid_arg "Harness: channel produced a negative delay";
        ignore (Engine.schedule t.engine ~delay:(base +. extra) (fun () -> deliver frame)))
      (ch ~src ~dst ~now:(Engine.now t.engine))

  (* --- Message delivery ------------------------------------------------ *)

  (* Hand one router-level message to its destination and recursively
     dispatch the replies. *)
  let rec deliver_payload t ~src ~dst payload =
    let replies = R.handle_msg t.routers.(dst) ~from_:src payload in
    t.observer t;
    dispatch t ~from_:dst replies

  and dispatch t ~from_ outputs =
    List.iter
      (fun (dst, msg) ->
        if link_is_up t ~src:from_ ~dst then
          match t.channel with
          | None ->
            (* Lossless, in-order delivery with the link's propagation
               delay — the paper's assumed control channel. *)
            let ep = current_epoch t (from_, dst) in
            let delay = prop_delay t ~src:from_ ~dst in
            ignore
              (Engine.schedule t.engine ~delay (fun () ->
                   if link_is_up t ~src:from_ ~dst && current_epoch t (from_, dst) = ep
                   then deliver_payload t ~src:from_ ~dst msg))
          | Some _ -> send_data t ~src:from_ ~dst msg)
      outputs

  (* --- Reliable transport (sequencing + ACK + retransmission) --------- *)

  and send_data t ~src ~dst payload =
    let ch = Option.get t.channel in
    let tx = get_tx t (src, dst) in
    let tseq = tx.next_tseq in
    tx.next_tseq <- tseq + 1;
    tx.unacked <- tx.unacked @ [ (tseq, payload) ];
    let ep = current_epoch t (src, dst) in
    transmit_frame t ~src ~dst ch
      (Data { ep; tseq; payload })
      ~deliver:(receive_frame t ~src ~dst);
    arm_timer t ~src ~dst tx

  and arm_timer t ~src ~dst tx =
    if tx.timer = None then
      tx.timer <-
        Some
          (Engine.schedule t.engine ~delay:tx.rto (fun () ->
               retransmit t ~src ~dst))

  and retransmit t ~src ~dst =
    match Hashtbl.find_opt t.tx (src, dst) with
    | None -> ()
    | Some tx ->
      tx.timer <- None;
      if link_is_up t ~src ~dst && tx.unacked <> [] then begin
        match t.channel with
        | None -> ()
        | Some ch ->
          let ep = current_epoch t (src, dst) in
          List.iter
            (fun (tseq, payload) ->
              t.retransmissions <- t.retransmissions + 1;
              transmit_frame t ~src ~dst ch
                (Data { ep; tseq; payload })
                ~deliver:(receive_frame t ~src ~dst))
            tx.unacked;
          tx.rto <- Float.min (tx.rto *. 2.0) t.rto_max;
          arm_timer t ~src ~dst tx
      end

  and send_tack t ~data_src ~data_dst =
    (* Cumulative ACK for direction [data_src -> data_dst], travelling
       the reverse link and subject to its channel faults. *)
    if link_is_up t ~src:data_dst ~dst:data_src then
      match t.channel with
      | None -> ()
      | Some ch ->
        let rxs = get_rx t (data_src, data_dst) in
        let ep = current_epoch t (data_src, data_dst) in
        t.transport_acks <- t.transport_acks + 1;
        transmit_frame t ~src:data_dst ~dst:data_src ch
          (Tack { ep; upto = rxs.expected - 1 })
          ~deliver:(receive_frame t ~src:data_dst ~dst:data_src)

  and receive_frame t ~src ~dst frame =
    (* Arrival of one frame that travelled [src -> dst]. *)
    if link_is_up t ~src ~dst then
      match frame with
      | Data { ep; tseq; payload } ->
        if ep = current_epoch t (src, dst) then begin
          let rxs = get_rx t (src, dst) in
          if tseq = rxs.expected then begin
            rxs.expected <- rxs.expected + 1;
            deliver_payload t ~src ~dst payload;
            (* Drain any buffered successors, in order. *)
            let rec drain () =
              match Hashtbl.find_opt rxs.held rxs.expected with
              | Some next ->
                Hashtbl.remove rxs.held rxs.expected;
                rxs.expected <- rxs.expected + 1;
                deliver_payload t ~src ~dst next;
                drain ()
              | None -> ()
            in
            drain ();
            send_tack t ~data_src:src ~data_dst:dst
          end
          else if tseq > rxs.expected then begin
            Hashtbl.replace rxs.held tseq payload;
            send_tack t ~data_src:src ~data_dst:dst
          end
          else (* duplicate of an already-delivered frame: re-ACK *)
            send_tack t ~data_src:src ~data_dst:dst
        end
      | Tack { ep; upto } ->
        (* Acknowledges data we sent on [dst -> src]. *)
        if ep = current_epoch t (dst, src) then (
          match Hashtbl.find_opt t.tx (dst, src) with
          | None -> ()
          | Some tx ->
            tx.unacked <- List.filter (fun (s, _) -> s > upto) tx.unacked;
            if tx.unacked = [] then begin
              (match tx.timer with
              | Some id ->
                Engine.cancel t.engine id;
                tx.timer <- None
              | None -> ());
              tx.rto <- t.rto_initial
            end)

  (* --- Link events ------------------------------------------------------ *)

  let apply_link_up t ~src ~dst ~cost =
    if t.alive.(src) && t.alive.(dst) && not (link_is_up t ~src ~dst) then begin
      Hashtbl.replace t.up (src, dst) ();
      Hashtbl.replace t.cost_now (src, dst) cost;
      let outputs = R.handle_link_up t.routers.(src) ~nbr:dst ~cost in
      t.observer t;
      dispatch t ~from_:src outputs
    end

  let apply_link_down t ~src ~dst =
    if link_is_up t ~src ~dst then begin
      Hashtbl.remove t.up (src, dst);
      bump_epoch t (src, dst);
      reset_transport t (src, dst);
      let outputs = R.handle_link_down t.routers.(src) ~nbr:dst in
      t.observer t;
      dispatch t ~from_:src outputs
    end

  let apply_link_cost t ~src ~dst ~cost =
    if link_is_up t ~src ~dst then begin
      Hashtbl.replace t.cost_now (src, dst) cost;
      let outputs = R.handle_link_cost t.routers.(src) ~nbr:dst ~cost in
      t.observer t;
      dispatch t ~from_:src outputs
    end

  (* --- Node crash / restart -------------------------------------------- *)

  let apply_node_crash t node =
    if t.alive.(node) then begin
      t.alive.(node) <- false;
      (* Take every adjacent direction down first so no handler can
         reach the dying router, then notify the surviving endpoints
         (they detect the loss as link-down), then wipe the router. *)
      let nbrs = Graph.neighbors t.topo node in
      let notify =
        List.filter
          (fun k ->
            let was_up = link_is_up t ~src:k ~dst:node in
            List.iter
              (fun key ->
                if Hashtbl.mem t.up key then begin
                  Hashtbl.remove t.up key;
                  bump_epoch t key;
                  reset_transport t key
                end)
              [ (node, k); (k, node) ];
            was_up && t.alive.(k))
          nbrs
      in
      List.iter
        (fun k ->
          let outputs = R.handle_link_down t.routers.(k) ~nbr:node in
          t.observer t;
          dispatch t ~from_:k outputs)
        notify;
      t.routers.(node) <- t.make_router ~id:node ~n:(Graph.node_count t.topo);
      t.observer t
    end

  let apply_node_restart t node =
    if not t.alive.(node) then begin
      t.alive.(node) <- true;
      t.routers.(node) <- t.make_router ~id:node ~n:(Graph.node_count t.topo);
      List.iter
        (fun k ->
          if t.alive.(k) then
            List.iter
              (fun (s, d) ->
                if not (Hashtbl.mem t.admin_down (s, d)) then
                  let cost =
                    match Hashtbl.find_opt t.cost_now (s, d) with
                    | Some c -> c
                    | None -> invalid_arg "Harness: restart of a never-initialised link"
                  in
                  apply_link_up t ~src:s ~dst:d ~cost)
              [ (node, k); (k, node) ])
        (Graph.neighbors t.topo node)
    end

  (* --- Construction and scheduling -------------------------------------- *)

  let create ?make_router ?(observer = fun _ -> ()) ~topo ~cost () =
    let n = Graph.node_count topo in
    let make_router =
      match make_router with Some f -> f | None -> fun ~id ~n -> R.create ~id ~n
    in
    let t =
      {
        topo;
        engine = Engine.create ();
        routers = Array.init n (fun id -> make_router ~id ~n);
        make_router;
        up = Hashtbl.create (Graph.link_count topo);
        epoch = Hashtbl.create (Graph.link_count topo);
        cost_now = Hashtbl.create (Graph.link_count topo);
        admin_down = Hashtbl.create 8;
        alive = Array.make n true;
        channel = None;
        tx = Hashtbl.create 16;
        rx = Hashtbl.create 16;
        rto_initial = 0.05;
        rto_max = 2.0;
        retransmissions = 0;
        transport_acks = 0;
        observer;
      }
    in
    (* Bring every directed link up at time 0. Both directions are
       scheduled before any message can be delivered (delays > 0 in
       practice; equal-time events run in scheduling order otherwise). *)
    List.iter
      (fun l ->
        ignore
          (Engine.schedule t.engine ~delay:0.0 (fun () ->
               apply_link_up t ~src:l.Graph.src ~dst:l.Graph.dst ~cost:(cost l))))
      (Graph.links topo);
    t

  let set_channel t ?(rto_initial = 0.05) ?(rto_max = 2.0) ch =
    if rto_initial <= 0.0 || rto_max < rto_initial then
      invalid_arg "Harness.set_channel: need 0 < rto_initial <= rto_max";
    t.rto_initial <- rto_initial;
    t.rto_max <- rto_max;
    t.channel <- Some ch

  let require_duplex t ~fn ~a ~b =
    if a = b then invalid_arg (Printf.sprintf "%s: %d-%d is a self-loop" fn a b);
    let n = Graph.node_count t.topo in
    if a < 0 || a >= n || b < 0 || b >= n then
      invalid_arg (Printf.sprintf "%s: node out of range in %d-%d" fn a b);
    if Graph.link t.topo ~src:a ~dst:b = None || Graph.link t.topo ~src:b ~dst:a = None
    then
      invalid_arg
        (Printf.sprintf "%s: no duplex link %d-%d in the topology" fn a b)

  let schedule_link_cost t ~at ~src ~dst ~cost =
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () -> apply_link_cost t ~src ~dst ~cost))

  let schedule_fail_duplex t ~at ~a ~b =
    require_duplex t ~fn:"Harness.schedule_fail_duplex" ~a ~b;
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           Hashtbl.replace t.admin_down (a, b) ();
           Hashtbl.replace t.admin_down (b, a) ();
           apply_link_down t ~src:a ~dst:b;
           apply_link_down t ~src:b ~dst:a))

  let schedule_restore_duplex t ~at ~a ~b ~cost =
    require_duplex t ~fn:"Harness.schedule_restore_duplex" ~a ~b;
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           Hashtbl.remove t.admin_down (a, b);
           Hashtbl.remove t.admin_down (b, a);
           (* Record the cost even when an endpoint is down so a later
              restart brings the link up at the restored value. *)
           Hashtbl.replace t.cost_now (a, b) cost;
           Hashtbl.replace t.cost_now (b, a) cost;
           apply_link_up t ~src:a ~dst:b ~cost;
           apply_link_up t ~src:b ~dst:a ~cost))

  let require_node t ~fn node =
    if node < 0 || node >= Graph.node_count t.topo then
      invalid_arg (Printf.sprintf "%s: node %d out of range" fn node)

  let schedule_node_crash t ~at ~node =
    require_node t ~fn:"Harness.schedule_node_crash" node;
    ignore (Engine.schedule_at t.engine ~time:at (fun () -> apply_node_crash t node))

  let schedule_node_restart t ~at ~node =
    require_node t ~fn:"Harness.schedule_node_restart" node;
    ignore (Engine.schedule_at t.engine ~time:at (fun () -> apply_node_restart t node))

  let partition_cut t ~group =
    let n = Graph.node_count t.topo in
    let inside = Array.make n false in
    List.iter
      (fun v ->
        require_node t ~fn:"Harness.schedule_partition" v;
        inside.(v) <- true)
      group;
    List.filter
      (fun (l : Graph.link) -> inside.(l.src) && not inside.(l.dst))
      (Graph.links t.topo)

  let schedule_partition t ~at ~heal_at ~group =
    if heal_at < at then invalid_arg "Harness.schedule_partition: heal_at < at";
    let cut = partition_cut t ~group in
    ignore
      (Engine.schedule_at t.engine ~time:at (fun () ->
           List.iter
             (fun (l : Graph.link) ->
               Hashtbl.replace t.admin_down (l.src, l.dst) ();
               Hashtbl.replace t.admin_down (l.dst, l.src) ();
               apply_link_down t ~src:l.src ~dst:l.dst;
               apply_link_down t ~src:l.dst ~dst:l.src)
             cut));
    ignore
      (Engine.schedule_at t.engine ~time:heal_at (fun () ->
           List.iter
             (fun (l : Graph.link) ->
               List.iter
                 (fun (s, d) ->
                   Hashtbl.remove t.admin_down (s, d);
                   match Hashtbl.find_opt t.cost_now (s, d) with
                   | Some cost -> apply_link_up t ~src:s ~dst:d ~cost
                   | None -> ())
                 [ (l.src, l.dst); (l.dst, l.src) ])
             cut))

  let run ?until t = Engine.run ?until t.engine

  let quiescent t = Engine.pending t.engine = 0 && Array.for_all R.is_passive t.routers

  let total_messages t =
    Array.fold_left (fun acc r -> acc + R.messages_sent r) t.retransmissions t.routers

  let successor_sets t ~dst = fun node -> R.successors t.routers.(node) ~dst

  let check_loop_free t =
    let n = Graph.node_count t.topo in
    List.for_all
      (fun dst ->
        Lfi.successor_graph_acyclic ~n
          ~successors:(fun ~node -> R.successors t.routers.(node) ~dst)
          ~dst)
      (Graph.nodes t.topo)

  let check_lfi t =
    let n = Graph.node_count t.topo in
    List.for_all
      (fun dst ->
        Lfi.lfi_conditions_hold ~n
          ~neighbors:(fun node -> R.up_neighbors t.routers.(node))
          ~feasible:(fun ~node ~dst -> R.feasible_distance t.routers.(node) ~dst)
          ~reported:(fun ~holder ~about ~dst ->
            R.neighbor_distance t.routers.(holder) ~nbr:about ~dst)
          ~dst)
      (Graph.nodes t.topo)
end

module Dv_network = Make (Dv_router)
