module Graph = Mdr_topology.Graph

type result = { dist : float array; parent : int array }

let rel_tolerance = 1e-12

let close a b =
  if Float.is_finite a && Float.is_finite b then
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= rel_tolerance *. scale
  else a = b

(* Scratch reused across runs: the settled bitmap, the binary heap as
   two parallel primitive arrays (no tuple per entry, no closure per
   comparison), and a parent buffer for callers that discard parents.
   One workspace serves one domain; parallel tasks each own theirs. *)
type workspace = {
  mutable settled : bool array;
  mutable heap_d : float array;
  mutable heap_n : int array;
  mutable scratch_parent : int array;
}

let workspace () =
  {
    settled = [||];
    heap_d = Array.make 64 0.0;
    heap_n = Array.make 64 0;
    scratch_parent = [||];
  }

let settled_for ws n =
  if Array.length ws.settled < n then ws.settled <- Array.make n false
  else Array.fill ws.settled 0 n false;
  ws.settled

let scratch_parent_for ws n =
  if Array.length ws.scratch_parent < n then ws.scratch_parent <- Array.make n (-1);
  ws.scratch_parent

(* The heap orders by (distance, node id) — the same lexicographic
   order the old polymorphic-compare heap used, minus the tuple
   allocation per element and per comparison. Exact duplicates may pop
   in either order, but a duplicate of a settled node is a no-op, so
   results are identical. *)
let run_into ws ~n ~root ~dist ~parent ~edges =
  if root < 0 || root >= n then invalid_arg "Dijkstra: root out of range";
  if Array.length dist < n || Array.length parent < n then
    invalid_arg "Dijkstra: result buffers shorter than n";
  Array.fill dist 0 n infinity;
  Array.fill parent 0 n (-1);
  let settled = settled_for ws n in
  let len = ref 0 in
  let push d v =
    if !len = Array.length ws.heap_d then begin
      let cap = 2 * !len in
      let heap_d = Array.make cap 0.0 and heap_n = Array.make cap 0 in
      Array.blit ws.heap_d 0 heap_d 0 !len;
      Array.blit ws.heap_n 0 heap_n 0 !len;
      ws.heap_d <- heap_d;
      ws.heap_n <- heap_n
    end;
    let hd = ws.heap_d and hn = ws.heap_n in
    let i = ref !len in
    incr len;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let p = (!i - 1) / 2 in
      if d < hd.(p) || (d = hd.(p) && v < hn.(p)) then begin
        hd.(!i) <- hd.(p);
        hn.(!i) <- hn.(p);
        i := p
      end
      else sifting := false
    done;
    hd.(!i) <- d;
    hn.(!i) <- v
  in
  dist.(root) <- 0.0;
  push 0.0 root;
  while !len > 0 do
    let hd = ws.heap_d and hn = ws.heap_n in
    let d = hd.(0) and u = hn.(0) in
    decr len;
    if !len > 0 then begin
      (* Re-insert the last leaf at the root and sift it down. *)
      let ld = hd.(!len) and lv = hn.(!len) in
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 in
        if l >= !len then sifting := false
        else begin
          let r = l + 1 in
          let c =
            if r < !len && (hd.(r) < hd.(l) || (hd.(r) = hd.(l) && hn.(r) < hn.(l)))
            then r
            else l
          in
          if hd.(c) < ld || (hd.(c) = ld && hn.(c) < lv) then begin
            hd.(!i) <- hd.(c);
            hn.(!i) <- hn.(c);
            i := c
          end
          else sifting := false
        end
      done;
      hd.(!i) <- ld;
      hn.(!i) <- lv
    end;
    if (not settled.(u)) && close d dist.(u) then begin
      settled.(u) <- true;
      edges u (fun v w ->
          if w < 0.0 then invalid_arg "Dijkstra: negative link cost";
          if v >= 0 && v < n && not settled.(v) then begin
            let nd = d +. w in
            if nd < dist.(v) && not (close nd dist.(v)) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              push nd v
            end
            else if close nd dist.(v) && (parent.(v) = -1 || u < parent.(v)) then
              (* Consistent tie-breaking: smallest-id predecessor. *)
              parent.(v) <- u
          end)
    end
  done

let fresh_run ws ~n ~root ~edges =
  let ws = match ws with Some ws -> ws | None -> workspace () in
  let dist = Array.make n infinity and parent = Array.make n (-1) in
  run_into ws ~n ~root ~dist ~parent ~edges;
  { dist; parent }

let table_edges table ~n =
  let view = Topo_table.csr table ~n in
  fun u visit ->
    for e = view.Topo_table.row.(u) to view.Topo_table.row.(u + 1) - 1 do
      visit view.Topo_table.dst.(e) view.Topo_table.cost.(e)
    done

let on_table ?ws ~n ~root table = fresh_run ws ~n ~root ~edges:(table_edges table ~n)

let on_table_into ws ~n ~root ~dist ~parent table =
  run_into ws ~n ~root ~dist ~parent ~edges:(table_edges table ~n)

let graph_edges view ~cost ~forward =
  fun u visit ->
    for e = view.Graph.row.(u) to view.Graph.row.(u + 1) - 1 do
      let l = view.Graph.links.(e) in
      let w = cost l in
      if Float.is_finite w then visit (if forward then l.Graph.dst else l.Graph.src) w
    done

let on_graph ?ws g ~root ~cost =
  fresh_run ws ~n:(Graph.node_count g)
    ~root
    ~edges:(graph_edges (Graph.out_csr g) ~cost ~forward:true)

let tree_of_result ~n ~root result ~cost =
  let tree = Topo_table.create () in
  for j = 0 to n - 1 do
    if j <> root && result.parent.(j) >= 0 && Float.is_finite result.dist.(j) then begin
      let p = result.parent.(j) in
      Topo_table.set tree ~head:p ~tail:j ~cost:(cost ~head:p ~tail:j)
    end
  done;
  tree

let distances_to ?ws g ~dst ~cost =
  (* Reverse traversal: from [u], step across links that *enter* u.
     With symmetric topologies this is the reverse link's source. *)
  let n = Graph.node_count g in
  let edges = graph_edges (Graph.in_csr g) ~cost ~forward:false in
  match ws with
  | None -> (fresh_run None ~n ~root:dst ~edges).dist
  | Some ws ->
    (* Callers retain the distances, so those stay fresh; the parents
       are discarded and go to workspace scratch. *)
    let dist = Array.make n infinity in
    run_into ws ~n ~root:dst ~dist ~parent:(scratch_parent_for ws n) ~edges;
    dist
