(** Synchronous FIFO pump over {!Router} state machines, for
    large-topology convergence measurement.

    Unlike {!Network} there is no event engine, no simulated time and
    no fault machinery: messages are delivered one at a time from a
    single global FIFO in deterministic order, so a 1000-router MPDA
    convergence costs exactly its protocol work. Convergence cost is
    reported in messages delivered and the caller's wall clock. *)

type t

val create :
  ?mode:Router.mode ->
  ?spf:Router.spf ->
  topo:Mdr_topology.Graph.t ->
  cost:(Mdr_topology.Graph.link -> float) ->
  unit ->
  t
(** One router per topology node; every adjacency comes up immediately
    (in deterministic link order) with its cost from [cost], and the
    resulting full-table LSUs are queued. Call {!run} to converge. *)

val run : ?max_messages:int -> t -> bool
(** Deliver queued messages (FIFO) until none remain, or until
    [max_messages] total deliveries have been made across the life of
    [t]. Returns [false] iff the cap stopped delivery early. *)

val quiescent : t -> bool
(** Queue empty and every router PASSIVE. *)

val change_link_cost : t -> src:int -> dst:int -> cost:float -> unit
(** Present a new cost for the directed adjacency [src -> dst] to
    [src]'s router and queue its reaction; follow with {!run}. *)

val check_distances : t -> Topo_table.t -> bool
(** Every router's distance vector equals a from-scratch Dijkstra from
    its id over the reference [table] — exact convergence, Theorem 2
    style. O(n) Dijkstras; intended for n up to a few thousand. *)

val node_count : t -> int
val router : t -> int -> Router.t
val messages_delivered : t -> int

val spf_totals : t -> int * int * int
(** Summed {!Router.spf_stats} over all routers:
    [(full_runs, repairs, fallbacks)]. *)
