(** Cost-change damping for the routing harness: decides which measured
    link-cost changes the routing process gets to see.

    Under overload, measured marginal costs swing wildly (the M/M/1
    marginal blows up near the knee), and naively flooding every sample
    makes successor sets churn — the routing oscillation the paper's
    two-timescale split (T_l/T_s) only partially addresses. This module
    adds the two standard ISP-grade defences in front of
    [handle_link_cost]:

    - {b Significance threshold with hold-down} (OSPF-TE style): a new
      cost is reported only when it differs from the last reported
      value by more than [rel_threshold] relative, and at most once per
      [hold] seconds. Sub-threshold wobble and rapid-fire updates are
      absorbed; the latest pending value is applied when the hold-down
      expires.
    - {b Cost-flap damping} (BGP style, same knobs as {!Hello.damping}):
      every {e applied} update charges [flap_penalty], decaying with
      [half_life]. At [suppress] the link's updates are held entirely;
      once the penalty decays to [reuse] the latest pending cost goes
      out as one batched update. A persistently flapping cost thus
      degrades into a slow periodic update instead of protocol churn.

    Like {!Hello}, the machine is engine-agnostic: handlers mutate one
    {!t} and return {!action}s; the embedding owns timers and the
    clock. *)

type params = {
  rel_threshold : float;
      (** minimum relative change (vs the last reported cost) worth
          reporting; 0 reports every change *)
  hold : float;  (** minimum seconds between applied reports *)
  damping : Hello.damping option;  (** [None] disables flap damping *)
}

val default_params : params
(** 10% threshold, 1 s hold-down, {!Hello.default_damping}. *)

val validate : params -> unit
(** @raise Invalid_argument on a negative threshold or hold, or
    damping thresholds with [reuse > suppress] or non-positive
    components. *)

type action =
  | Apply of float  (** report this cost to the routing process now *)
  | Arm of float  (** call {!on_check} after this many seconds *)

type t
(** Mutable per-directed-link trigger state. *)

val create : ?params:params -> initial:float -> now:float -> unit -> t
(** [initial] is the cost the routing process already knows (from
    link-up); the first significant change is never held down. *)

val reported : t -> float
(** The cost the routing process currently sees. *)

val suppressed : t -> bool
val penalty : t -> now:float -> float
val offers : t -> int
(** Cost samples offered so far. *)

val applied : t -> int
(** Updates that actually reached the routing process. *)

val offer : t -> now:float -> cost:float -> action list
(** A new measured cost arrived. At most one [Arm] is outstanding at a
    time; a later offer overwrites the pending value the armed check
    will consider. *)

val on_check : t -> now:float -> action list
(** The armed timer fired: apply the pending cost if it is still
    significant and allowed, re-arm if still suppressed, or do nothing
    (the cost wobbled back under the threshold). *)

val sync : t -> now:float -> cost:float -> unit
(** Forcibly align the trigger with a cost the routing process learned
    out of band (link flap or restart re-announces costs via
    [handle_link_up]): resets reported and pending without charging
    the damping penalty. *)
