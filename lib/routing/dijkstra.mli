(** Dijkstra's shortest-path-first algorithm, over either a topology
    table (as run inside PDA/MPDA on T_i and T_k^i) or a whole
    topology with an arbitrary link-cost function (as run by the SPF
    baseline and the fluid-mode controllers).

    Ties between equal-cost paths are broken consistently — the parent
    of a node is the smallest-id predecessor achieving the minimum
    distance (within a relative tolerance) — as the paper requires so
    that all routers agree on trees. *)

type result = {
  dist : float array;  (** [dist.(j)]: cost from the root to [j]; [infinity] if unreachable. *)
  parent : int array;  (** [parent.(j)]: predecessor on the canonical shortest path; [-1] for the root and unreachable nodes. *)
}

val close : float -> float -> bool
(** The relative-tolerance equality (1e-12) under which two path costs
    count as tied. Exposed so the incremental-SPF repair and the tests
    apply exactly the predicate the full run applies. *)

type workspace
(** Reusable scratch (settled bitmap, flat binary heap, discarded
    parents). Passing one workspace to repeated runs eliminates the
    per-run allocations; results are identical with or without it. A
    workspace serves one domain at a time — parallel tasks own their
    own. *)

val workspace : unit -> workspace
(** An empty workspace; grows to fit whatever [n] it is used with. *)

val on_table : ?ws:workspace -> n:int -> root:int -> Topo_table.t -> result
(** [n] bounds node ids (they are dense across the simulation). *)

val on_table_into :
  workspace ->
  n:int -> root:int -> dist:float array -> parent:int array -> Topo_table.t -> unit
(** Like {!on_table} but writing into caller-owned [dist]/[parent]
    buffers (length >= [n]; fully overwritten) — the form the router's
    hot loop uses so steady-state recomputation allocates nothing. *)

val on_graph :
  ?ws:workspace ->
  Mdr_topology.Graph.t -> root:int ->
  cost:(Mdr_topology.Graph.link -> float) -> result
(** Costs must be non-negative; links with infinite cost are treated as
    absent. *)

val tree_of_result : n:int -> root:int -> result -> cost:(head:int -> tail:int -> float) -> Topo_table.t
(** The shortest-path tree as a topology table: one link
    [(parent j, j)] per reached node [j]. [cost] supplies the link
    costs (typically lookups in the merged table Dijkstra ran on). *)

val distances_to :
  ?ws:workspace ->
  Mdr_topology.Graph.t -> dst:int ->
  cost:(Mdr_topology.Graph.link -> float) -> float array
(** Distance from every node *to* [dst] (runs Dijkstra on reversed
    links), as needed for successor-set construction. *)
