(* Synchronous control-plane pump for scaling measurements.

   The event-driven {!Network} harness carries timestamps, channel
   models, transports and observers — right for protocol correctness
   studies, too heavy to stand up 1000+ routers. This harness strips
   the embedding to the minimum the router state machine needs: a
   single global FIFO of (from, to, msg) and deterministic delivery
   order. No clocks, no faults; convergence cost is measured in
   messages delivered and wall time, not simulated seconds. *)

module Graph = Mdr_topology.Graph

type t = {
  n : int;
  routers : Router.t array;
  q : (int * int * Router.msg) Queue.t;  (* (from, to, msg), FIFO *)
  mutable delivered : int;
}

let push_outputs t ~from outputs =
  List.iter
    (fun (o : Router.output) -> Queue.add (from, o.Router.dst, o.Router.msg) t.q)
    outputs

let create ?(mode = Router.Mpda) ?spf ~topo ~cost () =
  let n = Graph.node_count topo in
  let routers = Array.init n (fun id -> Router.create ?spf ~mode ~id ~n ()) in
  let t = { n; routers; q = Queue.create (); delivered = 0 } in
  (* Bring every adjacency up in deterministic link order; the initial
     full-table exchanges queue up behind one another exactly like any
     other message. *)
  List.iter
    (fun (l : Graph.link) ->
      push_outputs t ~from:l.src
        (Router.handle_link_up t.routers.(l.src) ~nbr:l.dst ~cost:(cost l)))
    (Graph.links topo);
  t

let node_count t = t.n
let router t i = t.routers.(i)
let messages_delivered t = t.delivered

let run ?(max_messages = max_int) t =
  let ok = ref true in
  while (not (Queue.is_empty t.q)) && !ok do
    if t.delivered >= max_messages then ok := false
    else begin
      let from_, dst, msg = Queue.pop t.q in
      t.delivered <- t.delivered + 1;
      push_outputs t ~from:dst (Router.handle_msg t.routers.(dst) ~from_ msg)
    end
  done;
  !ok

let quiescent t =
  Queue.is_empty t.q && Array.for_all Router.is_passive t.routers

let change_link_cost t ~src ~dst ~cost =
  push_outputs t ~from:src
    (Router.handle_link_cost t.routers.(src) ~nbr:dst ~cost)

let check_distances t table =
  (* Every router's distance vector must equal a from-scratch Dijkstra
     on the reference topology — the convergence criterion (Theorem 2)
     checked exactly, not approximately. *)
  let ws = Dijkstra.workspace () in
  let dist = Array.make t.n infinity and parent = Array.make t.n (-1) in
  let ok = ref true in
  for root = 0 to t.n - 1 do
    if !ok then begin
      Dijkstra.on_table_into ws ~n:t.n ~root ~dist ~parent table;
      for j = 0 to t.n - 1 do
        if not (Float.equal (Router.distance t.routers.(root) ~dst:j) dist.(j))
        then ok := false
      done
    end
  done;
  !ok

let spf_totals t =
  Array.fold_left
    (fun (full, rep, fb) r ->
      let s = Router.spf_stats r in
      ( full + s.Incr_spf.full_runs,
        rep + s.Incr_spf.repairs,
        fb + s.Incr_spf.fallbacks ))
    (0, 0, 0) t.routers
