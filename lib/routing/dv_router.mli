(** A distance-vector instantiation of the Loop-Free Invariant
    framework (paper Section 3, in the spirit of the authors' MPATH
    follow-on work).

    The paper's LFI conditions are algorithm-agnostic: "in
    distance-vector algorithms, the distances are directly communicated
    among neighbors". This router maintains the neighbor distances
    D_jk from received vectors, computes D_j = min_k (D_jk + l_k), and
    enforces the same feasible-distance discipline as MPDA with the
    same one-hop synchronization: distance increases are advertised and
    acknowledged by every neighbor before the feasible distance is
    allowed to rise, so S_j = {k | D_jk < FD_j} is loop-free at every
    instant by Theorem 1.

    Compared to MPDA this needs no topology tables — only vectors — at
    the cost of slower convergence after cost increases (the classical
    distance-vector weakness; distances are capped at {!horizon} to
    bound counting). The [Harness.Make] functor runs either router
    over simulated links, and the test-suite subjects both to the same
    loop-freedom storms. *)

type msg = {
  entries : (int * float) list;  (** destination, advertised distance ([infinity] = unreachable) *)
  reset : bool;  (** full-vector message: forget previous entries first *)
  seq : int option;
  ack_of : int option;
}

type t

val horizon : float
(** Distances at or above this are treated as unreachable (RIP-style
    counting bound). *)

val create : id:int -> n:int -> t

val id : t -> int

val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
(** Returns (neighbor, message) pairs to transmit, here and below. *)

val handle_link_down : t -> nbr:int -> (int * msg) list

val handle_link_down_unconfirmed : t -> nbr:int -> (int * msg) list
(** Alias of {!handle_link_down}: DBF makes no loop-freedom promise,
    so it needs no distinction between announced and inferred loss. *)

val confirm_link_down : t -> nbr:int -> (int * msg) list
(** No-op (returns []); see {!handle_link_down_unconfirmed}. *)

val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
val handle_msg : t -> from_:int -> msg -> (int * msg) list

val is_passive : t -> bool
val distance : t -> dst:int -> float
val feasible_distance : t -> dst:int -> float
val successors : t -> dst:int -> int list
val best_successor : t -> dst:int -> int option
val neighbor_distance : t -> nbr:int -> dst:int -> float
val up_neighbors : t -> int list
val messages_sent : t -> int

val active_phases : t -> int
(** PASSIVE -> ACTIVE transitions so far. *)
