(* The MPDA/PDA network is the generic harness applied to the
   link-state router; everything — dispatch, reliable transport,
   channel faults, crashes, partitions — is shared with the
   distance-vector instantiation through Harness.Make. *)

module H = Harness.Make (struct
  type t = Router.t
  type msg = Router.msg

  let outputs l = List.map (fun o -> (o.Router.dst, o.Router.msg)) l
  let create ~id ~n = Router.create ~mode:Router.Mpda ~id ~n ()
  let handle_link_up t ~nbr ~cost = outputs (Router.handle_link_up t ~nbr ~cost)
  let handle_link_down t ~nbr = outputs (Router.handle_link_down t ~nbr)

  let handle_link_down_unconfirmed t ~nbr =
    outputs (Router.handle_link_down ~unconfirmed:true t ~nbr)

  let confirm_link_down t ~nbr = outputs (Router.confirm_link_down t ~nbr)
  let handle_link_cost t ~nbr ~cost = outputs (Router.handle_link_cost t ~nbr ~cost)
  let handle_msg t ~from_ msg = outputs (Router.handle_msg t ~from_ msg)
  let is_passive = Router.is_passive
  let distance = Router.distance
  let successors = Router.successors
  let feasible_distance = Router.feasible_distance
  let neighbor_distance = Router.neighbor_distance
  let up_neighbors = Router.up_neighbors
  let messages_sent = Router.stats_messages_sent
  let active_phases = Router.stats_active_phases
end)

include H

let create ?(mode = Router.Mpda) ?spf ?detection ?seed ?observer ~topo ~cost () =
  H.create
    ~make_router:(fun ~id ~n -> Router.create ?spf ~mode ~id ~n ())
    ?detection ?seed ?observer ~topo ~cost ()
