(** The PDA / MPDA router state machine (paper Section 4.1, Figs. 1-4).

    A router keeps its main topology table T_i, one table T_k^i per
    neighbor, the distances derived from them, and — in MPDA mode — the
    feasible distances FD and successor sets S that satisfy the
    Loop-Free Invariant conditions (Eqs. 16-17):

    - FD_j^i <= D_jk^i for every neighbor k (enforced by deferring the
      table update while ACTIVE, i.e. until every neighbor has
      acknowledged the last LSU), and
    - S_j^i = {k | D_jk^i < FD_j^i}.

    In [Pda] mode the synchronization is skipped: the router floods
    diffs immediately and uses its current distance as the feasible
    distance. PDA converges to correct shortest paths (Theorem 2) but
    its successor graphs may loop *transiently* — the test-suite
    demonstrates exactly this difference.

    The machine is pure with respect to I/O: every handler returns the
    messages to transmit, and the embedding (control-plane harness or
    packet simulator) delivers them with whatever latency it models. *)

type mode = Pda | Mpda

type spf = Full | Incremental
(** SPF engine selection: [Full] recomputes every shortest-path tree
    from scratch at each event (the pre-incremental behaviour, kept as
    the equivalence oracle); [Incremental] (the default) repairs the
    per-neighbor trees and the merged-table tree in place with
    {!Incr_spf}, falling back to full recomputation whenever continuity
    is lost. The two modes are behaviorally identical — equal
    {!fingerprint}s on every event sequence — differing only in cost. *)

type msg = {
  entries : Topo_table.entry list;  (** topology changes; empty for a pure ACK *)
  reset : bool;  (** full-table LSU: clear the stored neighbor table first *)
  seq : int option;  (** present iff the receiver must acknowledge *)
  ack_of : int option;  (** acknowledges the sender's LSU with this seq *)
}

type output = { dst : int; msg : msg }

type t

val create : ?spf:spf -> mode:mode -> id:int -> n:int -> unit -> t
(** [n] is the number of node ids in play (ids are dense). The router
    starts with every adjacent link down; bring links up with
    {!handle_link_up}. [spf] defaults to [Incremental]. *)

val id : t -> int
val mode : t -> mode
val spf_mode : t -> spf

val handle_link_up : t -> nbr:int -> cost:float -> output list
(** An adjacent link to [nbr] came up with the given cost. Sends the
    full main table to [nbr] as the paper's NTU step 2 requires. *)

val handle_link_down : ?unconfirmed:bool -> t -> nbr:int -> output list
(** An adjacent link to [nbr] went down. With [~unconfirmed:true]
    (inferred detection: the peer may not know yet and may still route
    on its old view of us), [nbr] is additionally remembered as a
    {e ghost}: feasible distances are pinned — never raised, even at
    ACTIVE-phase completion — until {!confirm_link_down} releases it,
    because a departed-but-unaware neighbor can never acknowledge the
    raise the LFI conditions would require. Default [false] (the
    paper's bilateral oracle). *)

val confirm_link_down : t -> nbr:int -> output list
(** The embedding has established that [nbr] no longer routes on its
    old view of this router (its side tore the adjacency down too, or
    enough time passed that it must have). Releases the ghost; if that
    was the last one and pinned feasible distances lag the current
    distances, starts an empty diffusing computation so they recover
    through the ordinary ACK-synchronized path. No-op if [nbr] is not
    a ghost. *)

val handle_link_cost : t -> nbr:int -> cost:float -> output list
(** The measured cost (marginal delay) of the adjacent link changed. *)

val handle_msg : t -> from_:int -> msg -> output list
(** Process one received LSU. Messages from neighbors whose link is
    locally down are dropped. *)

val is_passive : t -> bool

val distance : t -> dst:int -> float
(** D_j^i: this router's distance to [dst] per its main table. *)

val feasible_distance : t -> dst:int -> float

val successors : t -> dst:int -> int list
(** S_j^i. In [Pda] mode, every neighbor strictly closer per the
    current distances. *)

val best_successor : t -> dst:int -> int option
(** First hop of the shortest path (the preferred neighbor). *)

val neighbor_distance : t -> nbr:int -> dst:int -> float
(** D_jk^i: distance from neighbor [nbr] to [dst] according to the
    topology [nbr] reported. *)

val link_cost : t -> nbr:int -> float
(** l_k: current cost of the adjacent link, [infinity] when down. *)

val up_neighbors : t -> int list

val main_table : t -> Topo_table.t
(** The router's current shortest-path tree (read-only copy). *)

val stats_messages_sent : t -> int
val stats_events : t -> int

val stats_active_phases : t -> int
(** PASSIVE -> ACTIVE transitions so far — each one is a diffusing
    computation holding the FD frozen until all neighbors ACK. *)

val spf_stats : t -> Incr_spf.stats
(** Live counters of the router's SPF engine: full runs vs incremental
    repairs vs fallbacks, and total repaired nodes. In [Full] mode only
    [full_runs] moves. *)

val copy : t -> t
(** Deep copy: the clone shares no mutable state with the original.
    Used by the interleaving model checker to branch executions. *)

val fingerprint : t -> string
(** Canonical serialization of the router's complete protocol state
    (tables, distances, FD, successors, pending ACKs, sequence
    counters). Two routers with equal fingerprints behave identically
    on all future inputs; statistics counters ([stats_messages_sent],
    [stats_events]) are excluded. Iteration order is deterministic, so
    the string is stable across runs. *)

val snapshot : t -> string
(** Opaque binary serialization of the complete router state, the
    persistence hook used by the route-server's snapshot files. Unlike
    {!fingerprint} it is exact and invertible — {!restore} yields a
    router with an equal fingerprint and identical behaviour on all
    future inputs — but it is only meaningful to the build that wrote
    it; durable files must guard it with their own framing and
    checksums (see [Mdr_server.Snapshot]). *)

val restore : string -> t
(** Inverse of {!snapshot}. The input must come from {!snapshot} of
    the same binary; corrupt input raises [Failure]. The restored
    router owns fresh scratch buffers and shares no state with any
    other router. *)
