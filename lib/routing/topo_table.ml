module Sorted_tbl = Mdr_util.Sorted_tbl

type entry = { head : int; tail : int; cost : float }

type csr = { row : int array; dst : int array; cost : float array }

type t = {
  links : (int * int, float) Hashtbl.t;
  adjacency : (int, (int, float) Hashtbl.t) Hashtbl.t;
  mutable version : int;
  mutable csr_cache : (int * int * csr) option;  (* (version, n, view) *)
}

let create () =
  {
    links = Hashtbl.create 32;
    adjacency = Hashtbl.create 16;
    version = 0;
    csr_cache = None;
  }

(* Every *actual* mutation bumps [version]; no-op writes (same cost,
   absent removal, empty clear) leave it alone so readers keying off
   the version — the CSR cache here, the per-neighbor Dijkstra skip in
   Router — stay valid as long as the contents truly haven't moved. *)
let touch t = t.version <- t.version + 1

(* The copy keeps the original's version counter (same contents, same
   version: readers' seen-versions stay valid across copies) and shares
   its CSR snapshot — the snapshot arrays are write-once, so sharing is
   safe and the copy's first shortest-path run skips the rebuild. *)
let copy t =
  let fresh = create () in
  Sorted_tbl.iter (fun k v -> Hashtbl.replace fresh.links k v) t.links;
  Sorted_tbl.iter
    (fun h out -> Hashtbl.replace fresh.adjacency h (Hashtbl.copy out))
    t.adjacency;
  fresh.version <- t.version;
  fresh.csr_cache <- t.csr_cache;
  fresh

let clear t =
  if Hashtbl.length t.links > 0 then begin
    Hashtbl.reset t.links;
    Hashtbl.reset t.adjacency;
    touch t
  end

let set t ~head ~tail ~cost =
  if not (Float.is_finite cost) || cost < 0.0 then
    invalid_arg "Topo_table.set: cost must be finite and non-negative";
  if head = tail then invalid_arg "Topo_table.set: self-loop";
  match Hashtbl.find_opt t.links (head, tail) with
  | Some old when Float.equal old cost -> ()
  | Some _ | None ->
    Hashtbl.replace t.links (head, tail) cost;
    let out =
      match Hashtbl.find_opt t.adjacency head with
      | Some out -> out
      | None ->
        let out = Hashtbl.create 4 in
        Hashtbl.replace t.adjacency head out;
        out
    in
    Hashtbl.replace out tail cost;
    touch t

let remove t ~head ~tail =
  if Hashtbl.mem t.links (head, tail) then begin
    Hashtbl.remove t.links (head, tail);
    (match Hashtbl.find_opt t.adjacency head with
    | None -> ()
    | Some out ->
      Hashtbl.remove out tail;
      if Hashtbl.length out = 0 then Hashtbl.remove t.adjacency head);
    touch t
  end

let cost t ~head ~tail = Hashtbl.find_opt t.links (head, tail)

let apply_entry t { head; tail; cost } =
  if Float.is_finite cost then set t ~head ~tail ~cost else remove t ~head ~tail

let entries t =
  Sorted_tbl.fold (fun (head, tail) cost acc -> { head; tail; cost } :: acc) t.links []
  |> List.rev

let out_links t ~head =
  match Hashtbl.find_opt t.adjacency head with
  | None -> []
  | Some out ->
    Sorted_tbl.fold (fun tail cost acc -> (tail, cost) :: acc) out [] |> List.rev

let nodes t =
  let seen = Hashtbl.create 16 in
  Sorted_tbl.iter
    (fun (head, tail) _ ->
      Hashtbl.replace seen head ();
      Hashtbl.replace seen tail ())
    t.links;
  Sorted_tbl.keys seen

let size t = Hashtbl.length t.links

let version t = t.version

let csr t ~n =
  match t.csr_cache with
  | Some (v, cached_n, view) when v = t.version && cached_n = n -> view
  | Some _ | None ->
    (* [entries] is sorted by (head, tail), which is exactly CSR fill
       order — and per-head sorted by tail, the same order [out_links]
       yields, so algorithms see identical edge sequences either way. *)
    let es = entries t in
    let in_range e = e.head >= 0 && e.head < n in
    let row = Array.make (n + 1) 0 in
    List.iter (fun e -> if in_range e then row.(e.head + 1) <- row.(e.head + 1) + 1) es;
    for i = 1 to n do
      row.(i) <- row.(i) + row.(i - 1)
    done;
    let m = row.(n) in
    let dst = Array.make m 0 and cost = Array.make m 0.0 in
    let pos = ref 0 in
    List.iter
      (fun e ->
        if in_range e then begin
          dst.(!pos) <- e.tail;
          cost.(!pos) <- e.cost;
          incr pos
        end)
      es;
    let view = { row; dst; cost } in
    t.csr_cache <- Some (t.version, n, view);
    view

let diff ~old_table ~new_table =
  let changes = ref [] in
  Sorted_tbl.iter
    (fun (head, tail) cost ->
      match Hashtbl.find_opt old_table.links (head, tail) with
      | Some old_cost when Float.equal old_cost cost -> ()
      | Some _ | None -> changes := { head; tail; cost } :: !changes)
    new_table.links;
  Sorted_tbl.iter
    (fun (head, tail) _ ->
      if not (Hashtbl.mem new_table.links (head, tail)) then
        changes := { head; tail; cost = infinity } :: !changes)
    old_table.links;
  List.sort
    (fun a b ->
      match Int.compare a.head b.head with
      | 0 -> Int.compare a.tail b.tail
      | c -> c)
    !changes

let equal a b =
  Hashtbl.length a.links = Hashtbl.length b.links
  && Sorted_tbl.fold
       (fun key cost acc ->
         acc
         &&
         match Hashtbl.find_opt b.links key with
         | Some c -> Float.equal c cost
         | None -> false)
       a.links true
