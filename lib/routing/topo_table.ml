module Sorted_tbl = Mdr_util.Sorted_tbl

type entry = { head : int; tail : int; cost : float }

type t = {
  links : (int * int, float) Hashtbl.t;
  adjacency : (int, (int, float) Hashtbl.t) Hashtbl.t;
}

let create () = { links = Hashtbl.create 32; adjacency = Hashtbl.create 16 }

let copy t =
  let fresh = create () in
  Sorted_tbl.iter (fun k v -> Hashtbl.replace fresh.links k v) t.links;
  Sorted_tbl.iter
    (fun h out -> Hashtbl.replace fresh.adjacency h (Hashtbl.copy out))
    t.adjacency;
  fresh

let clear t =
  Hashtbl.reset t.links;
  Hashtbl.reset t.adjacency

let set t ~head ~tail ~cost =
  if not (Float.is_finite cost) || cost < 0.0 then
    invalid_arg "Topo_table.set: cost must be finite and non-negative";
  if head = tail then invalid_arg "Topo_table.set: self-loop";
  Hashtbl.replace t.links (head, tail) cost;
  let out =
    match Hashtbl.find_opt t.adjacency head with
    | Some out -> out
    | None ->
      let out = Hashtbl.create 4 in
      Hashtbl.replace t.adjacency head out;
      out
  in
  Hashtbl.replace out tail cost

let remove t ~head ~tail =
  Hashtbl.remove t.links (head, tail);
  match Hashtbl.find_opt t.adjacency head with
  | None -> ()
  | Some out ->
    Hashtbl.remove out tail;
    if Hashtbl.length out = 0 then Hashtbl.remove t.adjacency head

let cost t ~head ~tail = Hashtbl.find_opt t.links (head, tail)

let apply_entry t { head; tail; cost } =
  if Float.is_finite cost then set t ~head ~tail ~cost else remove t ~head ~tail

let entries t =
  Sorted_tbl.fold (fun (head, tail) cost acc -> { head; tail; cost } :: acc) t.links []
  |> List.rev

let out_links t ~head =
  match Hashtbl.find_opt t.adjacency head with
  | None -> []
  | Some out ->
    Sorted_tbl.fold (fun tail cost acc -> (tail, cost) :: acc) out [] |> List.rev

let nodes t =
  let seen = Hashtbl.create 16 in
  Sorted_tbl.iter
    (fun (head, tail) _ ->
      Hashtbl.replace seen head ();
      Hashtbl.replace seen tail ())
    t.links;
  Sorted_tbl.keys seen

let size t = Hashtbl.length t.links

let diff ~old_table ~new_table =
  let changes = ref [] in
  Sorted_tbl.iter
    (fun (head, tail) cost ->
      match Hashtbl.find_opt old_table.links (head, tail) with
      | Some old_cost when Float.equal old_cost cost -> ()
      | Some _ | None -> changes := { head; tail; cost } :: !changes)
    new_table.links;
  Sorted_tbl.iter
    (fun (head, tail) _ ->
      if not (Hashtbl.mem new_table.links (head, tail)) then
        changes := { head; tail; cost = infinity } :: !changes)
    old_table.links;
  List.sort (fun a b -> compare (a.head, a.tail) (b.head, b.tail)) !changes

let equal a b =
  Hashtbl.length a.links = Hashtbl.length b.links
  && Sorted_tbl.fold
       (fun key cost acc ->
         acc
         &&
         match Hashtbl.find_opt b.links key with
         | Some c -> Float.equal c cost
         | None -> false)
       a.links true
