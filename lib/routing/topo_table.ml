module Sorted_tbl = Mdr_util.Sorted_tbl

type entry = { head : int; tail : int; cost : float }

type csr = { row : int array; dst : int array; cost : float array }

type t = {
  links : (int * int, float) Hashtbl.t;
  adjacency : (int, (int, float) Hashtbl.t) Hashtbl.t;
  mutable version : int;
  mutable csr_cache : (int * int * csr) option;  (* (version, n, view) *)
  mutable csr_in_cache : (int * int * csr) option;  (* transpose view *)
  mutable cache_owned : bool;
      (* false after [copy]: the cached views are shared with another
         table, so an in-place cost patch must clone the cost arrays
         first (the row/dst structure is immutable while a view is
         valid, so only costs need copy-on-write) *)
}

let create () =
  {
    links = Hashtbl.create 32;
    adjacency = Hashtbl.create 16;
    version = 0;
    csr_cache = None;
    csr_in_cache = None;
    cache_owned = true;
  }

(* Every *actual* mutation bumps [version]; no-op writes (same cost,
   absent removal, empty clear) leave it alone so readers keying off
   the version — the CSR cache here, the per-neighbor Dijkstra skip in
   Router — stay valid as long as the contents truly haven't moved. *)
let touch t = t.version <- t.version + 1

(* The copy keeps the original's version counter (same contents, same
   version: readers' seen-versions stay valid across copies) and shares
   its CSR snapshot — the snapshot arrays are write-once, so sharing is
   safe and the copy's first shortest-path run skips the rebuild. *)
let copy t =
  let fresh = create () in
  Sorted_tbl.iter (fun k v -> Hashtbl.replace fresh.links k v) t.links;
  Sorted_tbl.iter
    (fun h out -> Hashtbl.replace fresh.adjacency h (Hashtbl.copy out))
    t.adjacency;
  fresh.version <- t.version;
  fresh.csr_cache <- t.csr_cache;
  fresh.csr_in_cache <- t.csr_in_cache;
  (* Both tables now point at the same view arrays; neither may patch
     them in place without cloning the cost columns first. *)
  fresh.cache_owned <- false;
  t.cache_owned <- false;
  fresh

let clear t =
  if Hashtbl.length t.links > 0 then begin
    Hashtbl.reset t.links;
    Hashtbl.reset t.adjacency;
    t.csr_cache <- None;
    t.csr_in_cache <- None;
    touch t
  end

(* In-place CSR patch for a pure cost change: the edge set is
   unchanged, so a fresh view would have identical row/dst arrays —
   only one cost cell moves. Finding it is a binary search over the
   (sorted) destination slice of [head]'s row. *)
let patch_cost view ~key ~other ~cost =
  let lo = ref view.row.(key) and hi = ref (view.row.(key + 1) - 1) in
  let idx = ref (-1) in
  while !idx < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = view.dst.(mid) in
    if d = other then idx := mid
    else if d < other then lo := mid + 1
    else hi := mid - 1
  done;
  if !idx >= 0 then view.cost.(!idx) <- cost

let patch_cache t cache ~key ~other ~cost =
  match cache with
  | Some (v, n, view) when v = t.version - 1 ->
    (* The view was current before this mutation bumped the version.
       Edges whose key endpoint is outside [0, n) are not in the view;
       an absent edge makes the binary search miss harmlessly. *)
    if key >= 0 && key < n then patch_cost view ~key ~other ~cost;
    Some (t.version, n, view)
  | Some _ | None -> None

let own_caches t =
  if not t.cache_owned then begin
    (* Clone the mutable cost columns once; the row/dst structure
       arrays stay shared (immutable while any view is valid). *)
    let clone = function
      | Some (v, n, view) -> Some (v, n, { view with cost = Array.copy view.cost })
      | None -> None
    in
    t.csr_cache <- clone t.csr_cache;
    t.csr_in_cache <- clone t.csr_in_cache;
    t.cache_owned <- true
  end

let patch_caches t ~head ~tail ~cost =
  if t.csr_cache <> None || t.csr_in_cache <> None then begin
    own_caches t;
    t.csr_cache <- patch_cache t t.csr_cache ~key:head ~other:tail ~cost;
    t.csr_in_cache <- patch_cache t t.csr_in_cache ~key:tail ~other:head ~cost
  end

let set t ~head ~tail ~cost =
  if not (Float.is_finite cost) || cost < 0.0 then
    invalid_arg "Topo_table.set: cost must be finite and non-negative";
  if head = tail then invalid_arg "Topo_table.set: self-loop";
  match Hashtbl.find_opt t.links (head, tail) with
  | Some old when Float.equal old cost -> ()
  | Some _ ->
    Hashtbl.replace t.links (head, tail) cost;
    (match Hashtbl.find_opt t.adjacency head with
    | Some out -> Hashtbl.replace out tail cost
    | None -> assert false);
    touch t;
    (* Same edge set, one cost moved: keep the CSR views hot. *)
    patch_caches t ~head ~tail ~cost
  | None ->
    Hashtbl.replace t.links (head, tail) cost;
    let out =
      match Hashtbl.find_opt t.adjacency head with
      | Some out -> out
      | None ->
        let out = Hashtbl.create 4 in
        Hashtbl.replace t.adjacency head out;
        out
    in
    Hashtbl.replace out tail cost;
    t.csr_cache <- None;
    t.csr_in_cache <- None;
    touch t

let remove t ~head ~tail =
  if Hashtbl.mem t.links (head, tail) then begin
    Hashtbl.remove t.links (head, tail);
    (match Hashtbl.find_opt t.adjacency head with
    | None -> ()
    | Some out ->
      Hashtbl.remove out tail;
      if Hashtbl.length out = 0 then Hashtbl.remove t.adjacency head);
    t.csr_cache <- None;
    t.csr_in_cache <- None;
    touch t
  end

let cost t ~head ~tail = Hashtbl.find_opt t.links (head, tail)

let apply_entry t { head; tail; cost } =
  if Float.is_finite cost then set t ~head ~tail ~cost else remove t ~head ~tail

(* Monomorphic (head, tail) order: [entries] feeds both CSR builders,
   so this sort is the dominant cost of a view rebuild at scale. *)
let link_key_compare (h1, t1) (h2, t2) =
  if h1 = h2 then Int.compare t1 t2 else Int.compare (h1 : int) h2

let entries t =
  List.map
    (fun ((head, tail), cost) -> { head; tail; cost })
    (Sorted_tbl.bindings_by link_key_compare t.links)

let out_links t ~head =
  match Hashtbl.find_opt t.adjacency head with
  | None -> []
  | Some out ->
    Sorted_tbl.fold (fun tail cost acc -> (tail, cost) :: acc) out [] |> List.rev

let nodes t =
  let seen = Hashtbl.create 16 in
  Sorted_tbl.iter
    (fun (head, tail) _ ->
      Hashtbl.replace seen head ();
      Hashtbl.replace seen tail ())
    t.links;
  Sorted_tbl.keys seen

let size t = Hashtbl.length t.links

let version t = t.version

let csr t ~n =
  match t.csr_cache with
  | Some (v, cached_n, view) when v = t.version && cached_n = n -> view
  | Some _ | None ->
    (* [entries] is sorted by (head, tail), which is exactly CSR fill
       order — and per-head sorted by tail, the same order [out_links]
       yields, so algorithms see identical edge sequences either way. *)
    let es = entries t in
    let in_range e = e.head >= 0 && e.head < n in
    let row = Array.make (n + 1) 0 in
    List.iter (fun e -> if in_range e then row.(e.head + 1) <- row.(e.head + 1) + 1) es;
    for i = 1 to n do
      row.(i) <- row.(i) + row.(i - 1)
    done;
    let m = row.(n) in
    let dst = Array.make m 0 and cost = Array.make m 0.0 in
    let pos = ref 0 in
    List.iter
      (fun e ->
        if in_range e then begin
          dst.(!pos) <- e.tail;
          cost.(!pos) <- e.cost;
          incr pos
        end)
      es;
    let view = { row; dst; cost } in
    t.csr_cache <- Some (t.version, n, view);
    view

let csr_in t ~n =
  match t.csr_in_cache with
  | Some (v, cached_n, view) when v = t.version && cached_n = n -> view
  | Some _ | None ->
    (* Transpose view: rows indexed by tail, entries are in-edges.
       Only edges with both endpoints in [0, n) are kept — an in-edge
       from an out-of-range head would be useless to a shortest-path
       repair over nodes [0, n). Scanning [entries] (sorted by
       (head, tail)) and bucketing by tail yields each row's heads in
       ascending order, matching the forward view's per-row sort. *)
    let es = entries t in
    let in_range e = e.head >= 0 && e.head < n && e.tail >= 0 && e.tail < n in
    let row = Array.make (n + 1) 0 in
    List.iter (fun e -> if in_range e then row.(e.tail + 1) <- row.(e.tail + 1) + 1) es;
    for i = 1 to n do
      row.(i) <- row.(i) + row.(i - 1)
    done;
    let m = row.(n) in
    let dst = Array.make m 0 and cost = Array.make m 0.0 in
    let pos = Array.make n 0 in
    Array.blit row 0 pos 0 n;
    List.iter
      (fun e ->
        if in_range e then begin
          let p = pos.(e.tail) in
          dst.(p) <- e.head;
          cost.(p) <- e.cost;
          pos.(e.tail) <- p + 1
        end)
      es;
    let view = { row; dst; cost } in
    t.csr_in_cache <- Some (t.version, n, view);
    view

let diff ~old_table ~new_table =
  let changes = ref [] in
  Sorted_tbl.iter
    (fun (head, tail) cost ->
      match Hashtbl.find_opt old_table.links (head, tail) with
      | Some old_cost when Float.equal old_cost cost -> ()
      | Some _ | None -> changes := { head; tail; cost } :: !changes)
    new_table.links;
  Sorted_tbl.iter
    (fun (head, tail) _ ->
      if not (Hashtbl.mem new_table.links (head, tail)) then
        changes := { head; tail; cost = infinity } :: !changes)
    old_table.links;
  List.sort
    (fun a b ->
      match Int.compare a.head b.head with
      | 0 -> Int.compare a.tail b.tail
      | c -> c)
    !changes

let equal a b =
  Hashtbl.length a.links = Hashtbl.length b.links
  && Sorted_tbl.fold
       (fun key cost acc ->
         acc
         &&
         match Hashtbl.find_opt b.links key with
         | Some c -> Float.equal c cost
         | None -> false)
       a.links true
