(** Protocol-agnostic control-plane harness with fault injection and
    failure detection.

    [Make] runs any router machine implementing {!ROUTER} — the
    link-state MPDA via {!Network}, or the distance-vector
    {!Dv_router} via {!Dv_network} below — over a topology's links
    with their propagation delays, so both LFI instantiations face
    identical event streams in tests and benches.

    Beyond the paper's clean failure model (duplex link fail/restore
    with reliable in-order delivery), the harness can subject the
    control plane to channel faults, node crashes and partitions:

    - {!val-Make.set_channel} installs a per-frame fault model (drops,
      duplicates, jitter, blackouts — see [Mdr_faults.Channel]) and
      simultaneously engages a reliable transport: every router-level
      message is sequenced, cumulatively ACKed, retransmitted with
      jittered exponential backoff (capped), de-duplicated and released
      in order, because MPDA/DV correctness assumes reliable in-order
      control channels. Retransmissions count toward
      {!val-Make.total_messages}.
    - {!val-Make.schedule_node_crash} kills a router (all protocol
      state lost), and {!val-Make.schedule_node_restart} reboots it
      from scratch.
    - {!val-Make.schedule_partition} fails a cut set and later heals
      it.

    {2 Failure detection}

    The paper assumes an oracle: a failed link is announced to both
    endpoints instantly. [create ~detection:(Hello params)] replaces
    the oracle with the {!Hello} adjacency machine: every physically-up
    directed link carries jittered periodic hellos, link-down and
    node-crash are *inferred* (dead interval, one-way reception,
    changed session number), and flap damping can hold an oscillating
    adjacency down. Each direction's hellos carry a session number
    that the harness bumps at every routing-visible teardown of that
    direction, so a one-sided teardown always forces the peer through
    its own teardown before the adjacency can re-form — feasible
    distances and transport streams reset on both sides, never just
    one. Under hello detection the reliable transport is
    always engaged (even with no channel model installed) because an
    undetected physical flap silently loses in-flight frames, and the
    physical/logical distinction becomes observable:
    {!val-Make.link_is_up} answers for the wire while
    {!val-Make.adj_is_up} answers for what the routing process was
    told. Every transition is timestamped in {!val-Make.trace} for
    detection-latency and recovery audits. Simulations under hello
    detection run forever (periodic hellos); always pass [~until] to
    {!val-Make.run} or step the engine. *)

module type ROUTER = sig
  type t
  type msg

  val create : id:int -> n:int -> t
  val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_link_down : t -> nbr:int -> (int * msg) list

  val handle_link_down_unconfirmed : t -> nbr:int -> (int * msg) list
  (** Like [handle_link_down], but the loss was {e inferred} (hello
      detection): the peer may still route on its old view of this
      router, so a loop-free router must not raise feasible distances
      on its account until {!confirm_link_down}. Routers with no such
      notion may alias this to [handle_link_down]. *)

  val confirm_link_down : t -> nbr:int -> (int * msg) list
  (** The harness established that [nbr] no longer routes on its old
      view of this router (it re-handshook, or stayed silent past the
      point where its own detector must have fired). *)

  val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_msg : t -> from_:int -> msg -> (int * msg) list
  val is_passive : t -> bool
  val distance : t -> dst:int -> float
  val successors : t -> dst:int -> int list
  val feasible_distance : t -> dst:int -> float
  val neighbor_distance : t -> nbr:int -> dst:int -> float
  val up_neighbors : t -> int list
  val messages_sent : t -> int

  val active_phases : t -> int
  (** PASSIVE -> ACTIVE transitions so far (diffusing computations). *)
end

type channel = src:int -> dst:int -> now:float -> float list
(** A control-channel fault model: called once per transmitted frame,
    it returns one extra delay (seconds, >= 0, added to the link's
    propagation delay) per delivered copy — [[]] drops the frame,
    [[0.]] is faultless delivery, two entries duplicate it. *)

type detection = Oracle | Hello of Hello.params
(** How routers learn about adjacent failures: the paper's instant
    oracle, or inference from periodic hellos (see {!Hello}). *)

type down_cause = [ `Oracle | `Dead | `One_way | `Peer_reset ]
(** Why an adjacency went down: announced by the oracle, dead-interval
    expiry, one-way reception, or a detected peer reset (the neighbor
    rebooted or tore this adjacency down from its side). *)

type trace_event =
  | Phys_down of { src : int; dst : int }  (** the wire failed *)
  | Phys_up of { src : int; dst : int }  (** the wire recovered *)
  | Adj_down of { node : int; nbr : int; cause : down_cause }
      (** [node]'s routing process was told its adjacency to [nbr] is gone *)
  | Adj_up of { node : int; nbr : int }
      (** [node]'s routing process was told its adjacency to [nbr] is usable *)

module Make (R : ROUTER) : sig
  type t

  val create :
    ?make_router:(id:int -> n:int -> R.t) ->
    ?detection:detection ->
    ?seed:int ->
    ?observer:(t -> unit) ->
    topo:Mdr_topology.Graph.t ->
    cost:(Mdr_topology.Graph.link -> float) ->
    unit ->
    t
  (** [make_router] overrides [R.create] (used to fix a router mode);
      it is also used to rebuild routers after a crash. [detection]
      defaults to [Oracle] (the paper's model, and what the
      interleaving model checker assumes). [seed] drives the harness's
      own randomness — hello jitter and retransmission-backoff jitter —
      via SplitMix64, so runs are reproducible. *)

  val engine : t -> Mdr_eventsim.Engine.t
  val topology : t -> Mdr_topology.Graph.t
  val router : t -> int -> R.t
  val detection : t -> detection

  val set_channel : t -> ?rto_initial:float -> ?rto_max:float -> channel -> unit
  (** Install a channel fault model and engage the reliable transport.
      [rto_initial] (default 50 ms) is the first retransmission
      timeout per directed link, doubled on every expiry up to
      [rto_max] (default 2 s) and reset once the peer has ACKed
      everything outstanding; each armed timer is stretched by a
      random factor in [1, 1.5) to avoid synchronized expiry. Install
      before running the network. *)

  val set_cost_damping : t -> Cost_trigger.params -> unit
  (** Put a {!Cost_trigger} damper in front of every directed link's
      [handle_link_cost]: sub-threshold changes are absorbed, updates
      are rate-limited by the hold-down, and a persistently flapping
      cost is suppressed and batched (see {!Cost_trigger}). Dampers are
      reset whenever the adjacency (re-)forms — link-up re-announces
      the cost out of band. A pending (armed) update counts against
      {!quiescent}.
      @raise Invalid_argument on invalid parameters. *)

  val cost_updates_offered : t -> int
  (** Cost changes handed to live adjacencies so far (damped or not). *)

  val cost_updates_applied : t -> int
  (** Cost changes the routing processes actually saw. Equal to
      {!cost_updates_offered} without damping. *)

  val cost_suppressed : t -> src:int -> dst:int -> bool
  (** Whether cost-flap damping currently suppresses updates of this
      directed link. *)

  val schedule_link_cost : t -> at:float -> src:int -> dst:int -> cost:float -> unit
  (** Change one directed link's cost at simulated time [at]. Under
      hello detection the routing process only hears about it once the
      adjacency is Full; with {!set_cost_damping} the change must also
      clear the damper. *)

  val schedule_fail_duplex : t -> at:float -> a:int -> b:int -> unit
  (** Fail both directions between [a] and [b]. In-flight frames on
      the failed link are lost, and — under the oracle — transport
      state is discarded and both routers are notified; under hello
      detection nobody is told and the peers must infer the loss.
      Failing an already-down link is a no-op.
      @raise Invalid_argument immediately if the topology has no
      duplex link [a]-[b]. *)

  val schedule_restore_duplex : t -> at:float -> a:int -> b:int -> cost:float -> unit
  (** Restore both directions at cost [cost]. Restoring an up link is
      a no-op. @raise Invalid_argument immediately if the topology has
      no duplex link [a]-[b]. *)

  val schedule_node_crash : t -> at:float -> node:int -> unit
  (** Crash [node] at time [at]: every adjacent link goes down, all of
      the node's protocol and transport state is destroyed, and
      in-flight frames to or from it are lost. Under the oracle the
      neighbors are notified instantly; under hello detection their
      dead intervals discover the silence. Crashing a dead node is a
      no-op. *)

  val schedule_node_restart : t -> at:float -> node:int -> unit
  (** Restart a crashed [node] with completely fresh state (the crash
      bumped its adjacency sessions, so under hello detection even
      neighbors that never noticed the silence must re-handshake);
      adjacent links whose other endpoint is alive (and that are not
      separately failed) come back up at their last applied costs.
      Restarting a live node is a no-op. *)

  val schedule_partition : t -> at:float -> heal_at:float -> group:int list -> unit
  (** Fail every link crossing the cut between [group] and the rest of
      the network at [at], and heal the cut at [heal_at]. *)

  val link_is_up : t -> src:int -> dst:int -> bool
  (** Physical state of one directed link. *)

  val node_is_up : t -> int -> bool

  val adj_is_up : t -> src:int -> dst:int -> bool
  (** Whether [src]'s routing process currently considers the
      adjacency to [dst] usable. Equals {!link_is_up} under the
      oracle. *)

  val adj_state : t -> node:int -> nbr:int -> Hello.state
  (** The hello FSM state of [node]'s adjacency to [nbr] (under the
      oracle: [Full] when the link is up, [Down] otherwise). *)

  val adj_suppressed : t -> node:int -> nbr:int -> bool
  (** Whether flap damping is currently holding this adjacency down. *)

  val adj_flaps : t -> node:int -> nbr:int -> int
  (** Detected [Full -> Down] transitions of this adjacency. *)

  val trace : t -> (float * trace_event) list
  (** Timestamped physical and adjacency transitions, oldest first —
      the raw material for detection-latency and recovery audits. *)

  val run : ?until:float -> t -> unit
  (** Process events; see {!Mdr_eventsim.Engine.run}. Under hello
      detection there is always a future hello, so [until] is
      mandatory in practice. *)

  val quiescent : t -> bool
  (** Every router PASSIVE, no protocol-relevant event pending
      (periodic hello machinery is excluded), and — under hello
      detection — every adjacency agreeing with its physical link
      state (Full on up links, Down on down links). *)

  val total_messages : t -> int
  (** Router-level messages sent plus transport retransmissions
      (hellos excluded; see {!hellos_sent}). *)

  val retransmissions : t -> int
  val transport_acks : t -> int

  val hellos_sent : t -> int
  (** Hello frames transmitted (hello detection only). *)

  val total_active_phases : t -> int
  (** ACTIVE (diffusing-computation) phases entered across all
      routers, including ones destroyed by crashes. *)

  val successor_sets : t -> dst:int -> (int -> int list)
  (** Per-node successor sets for one destination, straight from the
      routers. *)

  val check_loop_free : t -> bool
  (** Successor graphs of all destinations are acyclic right now. *)

  val check_lfi : t -> bool
  (** The LFI conditions (Eq. 16) hold right now, using each router's
      neighbor tables as the "reported" values. *)
end

module Dv_network : module type of Make (Dv_router)
(** The distance-vector network: {!Dv_router} under the harness. *)
