(** Protocol-agnostic control-plane harness with fault injection.

    [Make] runs any router machine implementing {!ROUTER} — the
    link-state MPDA via {!Network}, or the distance-vector
    {!Dv_router} via {!Dv_network} below — over a topology's links
    with their propagation delays, so both LFI instantiations face
    identical event streams in tests and benches.

    Beyond the paper's clean failure model (duplex link fail/restore
    with reliable in-order delivery), the harness can subject the
    control plane to channel faults, node crashes and partitions:

    - {!val-Make.set_channel} installs a per-frame fault model (drops,
      duplicates, jitter, blackouts — see [Mdr_faults.Channel]) and
      simultaneously engages a reliable transport: every router-level
      message is sequenced, cumulatively ACKed, retransmitted with
      exponential backoff (capped), de-duplicated and released in
      order, because MPDA/DV correctness assumes reliable in-order
      control channels. Retransmissions count toward
      {!val-Make.total_messages}.
    - {!val-Make.schedule_node_crash} kills a router (all protocol
      state lost; neighbors see link-down), and
      {!val-Make.schedule_node_restart} reboots it from scratch.
    - {!val-Make.schedule_partition} fails a cut set and later heals
      it. *)

module type ROUTER = sig
  type t
  type msg

  val create : id:int -> n:int -> t
  val handle_link_up : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_link_down : t -> nbr:int -> (int * msg) list
  val handle_link_cost : t -> nbr:int -> cost:float -> (int * msg) list
  val handle_msg : t -> from_:int -> msg -> (int * msg) list
  val is_passive : t -> bool
  val distance : t -> dst:int -> float
  val successors : t -> dst:int -> int list
  val feasible_distance : t -> dst:int -> float
  val neighbor_distance : t -> nbr:int -> dst:int -> float
  val up_neighbors : t -> int list
  val messages_sent : t -> int
end

type channel = src:int -> dst:int -> now:float -> float list
(** A control-channel fault model: called once per transmitted frame,
    it returns one extra delay (seconds, >= 0, added to the link's
    propagation delay) per delivered copy — [[]] drops the frame,
    [[0.]] is faultless delivery, two entries duplicate it. *)

module Make (R : ROUTER) : sig
  type t

  val create :
    ?make_router:(id:int -> n:int -> R.t) ->
    ?observer:(t -> unit) ->
    topo:Mdr_topology.Graph.t ->
    cost:(Mdr_topology.Graph.link -> float) ->
    unit ->
    t
  (** [make_router] overrides [R.create] (used to fix a router mode);
      it is also used to rebuild routers after a crash. *)

  val engine : t -> Mdr_eventsim.Engine.t
  val topology : t -> Mdr_topology.Graph.t
  val router : t -> int -> R.t

  val set_channel : t -> ?rto_initial:float -> ?rto_max:float -> channel -> unit
  (** Install a channel fault model and engage the reliable transport.
      [rto_initial] (default 50 ms) is the first retransmission
      timeout per directed link, doubled on every expiry up to
      [rto_max] (default 2 s) and reset once the peer has ACKed
      everything outstanding. Install before running the network. *)

  val schedule_link_cost : t -> at:float -> src:int -> dst:int -> cost:float -> unit
  (** Change one directed link's cost at simulated time [at]. *)

  val schedule_fail_duplex : t -> at:float -> a:int -> b:int -> unit
  (** Fail both directions between [a] and [b]. In-flight frames on
      the failed link are lost, transport state is discarded. Failing
      an already-down link is a no-op.
      @raise Invalid_argument immediately if the topology has no
      duplex link [a]-[b]. *)

  val schedule_restore_duplex : t -> at:float -> a:int -> b:int -> cost:float -> unit
  (** Restore both directions at cost [cost]. Restoring an up link is
      a no-op. @raise Invalid_argument immediately if the topology has
      no duplex link [a]-[b]. *)

  val schedule_node_crash : t -> at:float -> node:int -> unit
  (** Crash [node] at time [at]: every adjacent link goes down (the
      neighbors detect it and reconverge), all of the node's protocol
      and transport state is destroyed, and in-flight frames to or
      from it are lost. Crashing a dead node is a no-op. *)

  val schedule_node_restart : t -> at:float -> node:int -> unit
  (** Restart a crashed [node] with completely fresh state; adjacent
      links whose other endpoint is alive (and that are not separately
      failed) come back up at their last applied costs. Restarting a
      live node is a no-op. *)

  val schedule_partition : t -> at:float -> heal_at:float -> group:int list -> unit
  (** Fail every link crossing the cut between [group] and the rest of
      the network at [at], and heal the cut at [heal_at]. *)

  val link_is_up : t -> src:int -> dst:int -> bool
  val node_is_up : t -> int -> bool

  val run : ?until:float -> t -> unit
  (** Process events; see {!Mdr_eventsim.Engine.run}. *)

  val quiescent : t -> bool
  (** No pending events and every router PASSIVE. *)

  val total_messages : t -> int
  (** Router-level messages sent plus transport retransmissions. *)

  val retransmissions : t -> int
  val transport_acks : t -> int

  val successor_sets : t -> dst:int -> (int -> int list)
  (** Per-node successor sets for one destination, straight from the
      routers. *)

  val check_loop_free : t -> bool
  (** Successor graphs of all destinations are acyclic right now. *)

  val check_lfi : t -> bool
  (** The LFI conditions (Eq. 16) hold right now, using each router's
      neighbor tables as the "reported" values. *)
end

module Dv_network : module type of Make (Dv_router)
(** The distance-vector network: {!Dv_router} under the harness. *)
