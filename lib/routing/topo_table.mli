(** Topology tables: the per-router link-state databases of PDA/MPDA.

    A table stores directed links [head -> tail] with their cost — the
    triplets [h; t; d] of the paper. The router's main table T_i and
    the per-neighbor tables T_k^i are all values of this type. *)

type t

type entry = { head : int; tail : int; cost : float }
(** [cost = infinity] inside an LSU means "delete this link". *)

val create : unit -> t
val copy : t -> t
val clear : t -> unit

val set : t -> head:int -> tail:int -> cost:float -> unit
(** Add or change a link. [cost] must be finite and positive. *)

val remove : t -> head:int -> tail:int -> unit

val cost : t -> head:int -> tail:int -> float option

val apply_entry : t -> entry -> unit
(** Apply one LSU entry: set when the cost is finite, remove when it is
    [infinity]. *)

val entries : t -> entry list
(** All links, sorted by (head, tail) for deterministic output. *)

val out_links : t -> head:int -> (int * float) list
(** (tail, cost) of links headed at [head]. *)

val nodes : t -> int list
(** Every node appearing as a head or tail, sorted. *)

val size : t -> int

val version : t -> int
(** Monotonic change counter, bumped only by mutations that actually
    alter the table (a [set] to the current cost, a [remove] of an
    absent link, or a [clear] of an empty table leave it unchanged).
    Readers cache derived state — the CSR view here, per-neighbor
    shortest paths in the router — keyed on it. *)

type csr = {
  row : int array;  (** length n+1; edges of head [h] occupy [row.(h) .. row.(h+1)-1] *)
  dst : int array;
  cost : float array;
}
(** Flat adjacency view for hot loops: per-head edges sorted by tail,
    the same order {!out_links} produces, without per-visit list
    allocation or hashing. *)

val csr : t -> n:int -> csr
(** The CSR view restricted to heads in [0, n)]. Cached; rebuilt only
    when {!version} (or [n]) changes. The returned arrays must not be
    mutated by callers and are valid snapshots only until the next
    mutation. A pure cost change ({!set} on an existing link) patches
    the cached view's cost cell in place instead of invalidating it, so
    per-LSU shortest-path repair never pays a CSR rebuild; structural
    changes (add/remove) still invalidate. *)

val csr_in : t -> n:int -> csr
(** The transpose of {!csr}: [row] is indexed by tail and each row
    lists the in-edges' heads (ascending) with their costs. Only edges
    with both endpoints in [0, n)] appear. Cached and cost-patched in
    place exactly like the forward view. *)

val diff : old_table:t -> new_table:t -> entry list
(** LSU entries that transform [old_table] into [new_table]:
    adds/changes carry the new cost, deletions carry [infinity]. *)

val equal : t -> t -> bool
