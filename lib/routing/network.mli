(** Control-plane simulation harness: one {!Router} per topology node,
    exchanging LSUs over the topology's links with their propagation
    delays.

    This is how PDA/MPDA are exercised *as protocols*: link cost
    changes, failures, channel faults, node crashes and partitions are
    injected as timed events, messages travel with real latencies, and
    an observation hook fires after every processed event so tests can
    assert instantaneous loop-freedom (Theorem 3) and eventual
    convergence (Theorems 2 and 4).

    All machinery is shared with the distance-vector network through
    {!Harness.Make}; see {!Harness} for the fault-model semantics
    (reliable transport over lossy channels, crash/restart, cut-set
    partitions). *)

type t

val create :
  ?mode:Router.mode ->
  ?spf:Router.spf ->
  ?detection:Harness.detection ->
  ?seed:int ->
  ?observer:(t -> unit) ->
  topo:Mdr_topology.Graph.t ->
  cost:(Mdr_topology.Graph.link -> float) ->
  unit ->
  t
(** Builds the routers and schedules both directions of every link to
    come up at time 0 (with initial costs from [cost]). [mode] defaults
    to [Mpda], [spf] to {!Router.Incremental} (pass [Full] to force
    from-scratch SPF — the equivalence oracle), [detection] to
    [Harness.Oracle] (see {!Harness.Make.create} for the hello
    alternative and [seed]). [observer] runs after every router event —
    keep it cheap. *)

val engine : t -> Mdr_eventsim.Engine.t
val topology : t -> Mdr_topology.Graph.t
val router : t -> int -> Router.t

val set_channel :
  t -> ?rto_initial:float -> ?rto_max:float -> Harness.channel -> unit
(** Install a control-channel fault model and engage the reliable
    transport layer (sequencing, cumulative ACKs, capped exponential
    retransmission); see {!Harness.Make.set_channel}. *)

val set_cost_damping : t -> Cost_trigger.params -> unit
(** Put a {!Cost_trigger} damper in front of every directed link's cost
    updates: significance threshold, hold-down, and cost-flap
    suppression; see {!Harness.Make.set_cost_damping}. *)

val cost_updates_offered : t -> int
val cost_updates_applied : t -> int
val cost_suppressed : t -> src:int -> dst:int -> bool

val schedule_link_cost : t -> at:float -> src:int -> dst:int -> cost:float -> unit
(** Change one directed link's cost at simulated time [at]. *)

val schedule_fail_duplex : t -> at:float -> a:int -> b:int -> unit
(** Fail both directions between [a] and [b]. In-flight messages on
    the failed link are lost. Failing an already-down link is a no-op.
    @raise Invalid_argument immediately if the topology has no duplex
    link [a]-[b]. *)

val schedule_restore_duplex : t -> at:float -> a:int -> b:int -> cost:float -> unit
(** Restore both directions. Restoring an up link is a no-op.
    @raise Invalid_argument immediately if the topology has no duplex
    link [a]-[b]. *)

val schedule_node_crash : t -> at:float -> node:int -> unit
(** Crash a router: all its protocol state is lost and its neighbors
    observe link-down; see {!Harness.Make.schedule_node_crash}. *)

val schedule_node_restart : t -> at:float -> node:int -> unit
(** Reboot a crashed router with fresh state; adjacent links to live
    neighbors come back up at their last applied costs. *)

val schedule_partition : t -> at:float -> heal_at:float -> group:int list -> unit
(** Fail every link crossing the cut between [group] and the rest of
    the network at [at]; heal the cut at [heal_at]. *)

val link_is_up : t -> src:int -> dst:int -> bool
val node_is_up : t -> int -> bool

val detection : t -> Harness.detection

val adj_is_up : t -> src:int -> dst:int -> bool
(** Whether [src]'s router currently considers the adjacency usable
    (equals {!link_is_up} under oracle detection). *)

val adj_state : t -> node:int -> nbr:int -> Hello.state
val adj_suppressed : t -> node:int -> nbr:int -> bool
val adj_flaps : t -> node:int -> nbr:int -> int

val trace : t -> (float * Harness.trace_event) list
(** Timestamped physical and adjacency transitions, oldest first. *)

val hellos_sent : t -> int

val total_active_phases : t -> int
(** ACTIVE (diffusing-computation) phases entered across all routers,
    crashes included. *)

val run : ?until:float -> t -> unit
(** Process events; see {!Mdr_eventsim.Engine.run}. *)

val quiescent : t -> bool
(** No pending events and every router PASSIVE. *)

val total_messages : t -> int
(** LSUs sent by all routers plus transport retransmissions. *)

val retransmissions : t -> int
val transport_acks : t -> int

val successor_sets : t -> dst:int -> (int -> int list)
(** Per-node successor sets for one destination, straight from the
    routers. *)

val check_loop_free : t -> bool
(** Successor graphs of all destinations are acyclic right now. *)

val check_lfi : t -> bool
(** The LFI conditions (Eq. 16) hold right now, using each router's
    neighbor tables as the "reported" values. *)
