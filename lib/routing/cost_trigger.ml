type params = {
  rel_threshold : float;
  hold : float;
  damping : Hello.damping option;
}

let default_params =
  { rel_threshold = 0.1; hold = 1.0; damping = Some Hello.default_damping }

let validate p =
  if p.rel_threshold < 0.0 then
    invalid_arg "Cost_trigger: rel_threshold must be >= 0";
  if p.hold < 0.0 then invalid_arg "Cost_trigger: hold must be >= 0";
  match p.damping with
  | None -> ()
  | Some d ->
    if d.Hello.flap_penalty <= 0.0 || d.Hello.half_life <= 0.0 then
      invalid_arg "Cost_trigger: damping penalty and half_life must be > 0";
    if d.Hello.reuse <= 0.0 || d.Hello.reuse > d.Hello.suppress then
      invalid_arg "Cost_trigger: damping needs 0 < reuse <= suppress"

type action = Apply of float | Arm of float

type t = {
  p : params;
  mutable reported : float;  (* last cost the routing process saw *)
  mutable pending : float;  (* latest offered cost (= reported when clean) *)
  mutable last_apply : float;
  mutable armed : bool;  (* one outstanding check at a time *)
  mutable penalty : float;  (* damping penalty as of [penalty_at] *)
  mutable penalty_at : float;
  mutable suppressed : bool;
  mutable offers : int;
  mutable applied : int;
}

let create ?(params = default_params) ~initial ~now () =
  validate params;
  {
    p = params;
    reported = initial;
    pending = initial;
    (* Far enough in the past that the first significant change is
       never held down. *)
    last_apply = now -. params.hold;
    armed = false;
    penalty = 0.0;
    penalty_at = now;
    suppressed = false;
    offers = 0;
    applied = 0;
  }

let reported t = t.reported
let suppressed t = t.suppressed
let offers t = t.offers
let applied t = t.applied

let eps = 1e-9

let decayed t ~now =
  match t.p.damping with
  | None -> 0.0
  | Some d ->
    t.penalty *. (2.0 ** (-.(now -. t.penalty_at) /. d.Hello.half_life))

let penalty = decayed

let significant t cost =
  Float.abs (cost -. t.reported)
  > t.p.rel_threshold *. Float.max (Float.abs t.reported) 1e-12

let reuse_delay d ~penalty =
  d.Hello.half_life *. (Float.log (penalty /. d.Hello.reuse) /. Float.log 2.0)

(* Applying an update is itself the flap being damped: each applied
   change charges the penalty, and a cost that keeps crossing the
   significance threshold is eventually suppressed — its updates then
   batch at reuse-check instants instead of churning the routing
   process. *)
let apply t ~now =
  t.applied <- t.applied + 1;
  t.reported <- t.pending;
  t.last_apply <- now;
  (match t.p.damping with
  | None -> ()
  | Some d ->
    t.penalty <- decayed t ~now +. d.Hello.flap_penalty;
    t.penalty_at <- now;
    if t.penalty >= d.Hello.suppress then t.suppressed <- true);
  Apply t.reported

(* What must happen for [pending], given the current damping state:
   apply it now, wake up later, or nothing. *)
let decide t ~now =
  if not (significant t t.pending) then []
  else if t.suppressed then begin
    match t.p.damping with
    | None ->
      t.suppressed <- false;
      [ apply t ~now ]
    | Some d ->
      let p = decayed t ~now in
      if p <= d.Hello.reuse +. eps then begin
        t.penalty <- p;
        t.penalty_at <- now;
        t.suppressed <- false;
        [ apply t ~now ]
      end
      else if t.armed then []
      else begin
        t.armed <- true;
        [ Arm (reuse_delay d ~penalty:p) ]
      end
  end
  else begin
    let since = now -. t.last_apply in
    if since +. eps >= t.p.hold then [ apply t ~now ]
    else if t.armed then []
    else begin
      t.armed <- true;
      [ Arm (t.p.hold -. since) ]
    end
  end

let offer t ~now ~cost =
  t.offers <- t.offers + 1;
  t.pending <- cost;
  decide t ~now

let on_check t ~now =
  t.armed <- false;
  decide t ~now

let sync t ~now ~cost =
  t.reported <- cost;
  t.pending <- cost;
  t.last_apply <- now
