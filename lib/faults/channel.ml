module Rng = Mdr_util.Rng

(* Lossy layers optionally carry an expiry: [Some t] means the layer
   is inert from time [t] on (frames pass through untouched). [None]
   is a permanent impairment. *)
type layer =
  | Drop of float * float option
  | Duplicate of float * float option
  | Jitter of float * float option
  | Blackout of float * float

(* A model is the ordered list of layers a frame passes through. *)
type t = layer list

let ideal = []

let check_p fn p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Channel.%s: probability %g outside [0, 1]" fn p)

let check_until fn = function
  | Some u when u < 0.0 ->
    invalid_arg (Printf.sprintf "Channel.%s: negative until_" fn)
  | _ -> ()

let drop ?until_ ~p () =
  check_p "drop" p;
  check_until "drop" until_;
  [ Drop (p, until_) ]

let duplicate ?until_ ~p () =
  check_p "duplicate" p;
  check_until "duplicate" until_;
  [ Duplicate (p, until_) ]

let jitter ?until_ ~max_delay () =
  if max_delay < 0.0 then invalid_arg "Channel.jitter: negative max_delay";
  check_until "jitter" until_;
  [ Jitter (max_delay, until_) ]

let blackout ~from_ ~until_ =
  if not (from_ <= until_) then invalid_arg "Channel.blackout: from_ > until_";
  [ Blackout (from_, until_) ]

let compose a b = a @ b
let all models = List.concat models

let active until_ now =
  match until_ with None -> true | Some u -> now < u

(* Each layer maps the list of (extra-delay) copies to a new list.
   Draws happen copy by copy in list order, so the consumed random
   stream is a deterministic function of the traffic. Expired layers
   draw nothing, keeping the stream a function of the *active*
   impairments only. *)
let apply_layer ~rng ~now copies = function
  | Drop (p, until_) ->
    if active until_ now then List.filter (fun _ -> Rng.float rng >= p) copies
    else copies
  | Duplicate (p, until_) ->
    if active until_ now then
      List.concat_map
        (fun d -> if Rng.float rng < p then [ d; d ] else [ d ])
        copies
    else copies
  | Jitter (max_delay, until_) ->
    if active until_ now then
      List.map (fun d -> d +. Rng.uniform rng ~lo:0.0 ~hi:max_delay) copies
    else copies
  | Blackout (from_, until_) ->
    if now >= from_ && now < until_ then [] else copies

let decide t ~rng ~now =
  List.fold_left (apply_layer ~rng ~now) [ 0.0 ] t

let to_channel t ~rng ~src:_ ~dst:_ ~now = decide t ~rng ~now

let per_link ~default ~overrides ~rng ~src ~dst ~now =
  let model =
    match List.assoc_opt (src, dst) overrides with
    | Some m -> m
    | None -> default
  in
  decide model ~rng ~now

(* Last instant the channel's behavior changes: a blackout's end or a
   bounded layer's expiry. Permanent layers are stationary — they
   never change again, so they do not move the horizon. *)
let quiet_after t =
  List.fold_left
    (fun acc -> function
      | Blackout (_, until_) -> Float.max acc until_
      | Drop (_, Some u) | Duplicate (_, Some u) | Jitter (_, Some u) ->
        Float.max acc u
      | Drop (_, None) | Duplicate (_, None) | Jitter (_, None) -> acc)
    0.0 t

let describe = function
  | [] -> "ideal"
  | layers ->
    let bound = function
      | None -> ""
      | Some u -> Printf.sprintf " (until %.0fs)" u
    in
    String.concat " + "
      (List.map
         (function
           | Drop (p, u) -> Printf.sprintf "drop %.0f%%%s" (100.0 *. p) (bound u)
           | Duplicate (p, u) -> Printf.sprintf "dup %.0f%%%s" (100.0 *. p) (bound u)
           | Jitter (d, u) -> Printf.sprintf "jitter %.0fms%s" (1000.0 *. d) (bound u)
           | Blackout (a, b) -> Printf.sprintf "blackout [%.1f, %.1f)s" a b)
         layers)
