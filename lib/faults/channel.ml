module Rng = Mdr_util.Rng

type layer =
  | Drop of float
  | Duplicate of float
  | Jitter of float
  | Blackout of float * float

(* A model is the ordered list of layers a frame passes through. *)
type t = layer list

let ideal = []

let check_p fn p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Channel.%s: probability %g outside [0, 1]" fn p)

let drop ~p =
  check_p "drop" p;
  [ Drop p ]

let duplicate ~p =
  check_p "duplicate" p;
  [ Duplicate p ]

let jitter ~max_delay =
  if max_delay < 0.0 then invalid_arg "Channel.jitter: negative max_delay";
  [ Jitter max_delay ]

let blackout ~from_ ~until_ =
  if not (from_ <= until_) then invalid_arg "Channel.blackout: from_ > until_";
  [ Blackout (from_, until_) ]

let compose a b = a @ b
let all models = List.concat models

(* Each layer maps the list of (extra-delay) copies to a new list.
   Draws happen copy by copy in list order, so the consumed random
   stream is a deterministic function of the traffic. *)
let apply_layer ~rng ~now copies = function
  | Drop p -> List.filter (fun _ -> Rng.float rng >= p) copies
  | Duplicate p ->
    List.concat_map
      (fun d -> if Rng.float rng < p then [ d; d ] else [ d ])
      copies
  | Jitter max_delay ->
    List.map (fun d -> d +. Rng.uniform rng ~lo:0.0 ~hi:max_delay) copies
  | Blackout (from_, until_) ->
    if now >= from_ && now < until_ then [] else copies

let decide t ~rng ~now =
  List.fold_left (apply_layer ~rng ~now) [ 0.0 ] t

let to_channel t ~rng ~src:_ ~dst:_ ~now = decide t ~rng ~now

let per_link ~default ~overrides ~rng ~src ~dst ~now =
  let model =
    match List.assoc_opt (src, dst) overrides with
    | Some m -> m
    | None -> default
  in
  decide model ~rng ~now

let quiet_after t =
  List.fold_left
    (fun acc -> function Blackout (_, until_) -> Float.max acc until_ | _ -> acc)
    0.0 t

let describe = function
  | [] -> "ideal"
  | layers ->
    String.concat " + "
      (List.map
         (function
           | Drop p -> Printf.sprintf "drop %.0f%%" (100.0 *. p)
           | Duplicate p -> Printf.sprintf "dup %.0f%%" (100.0 *. p)
           | Jitter d -> Printf.sprintf "jitter %.0fms" (1000.0 *. d)
           | Blackout (a, b) -> Printf.sprintf "blackout [%.1f, %.1f)s" a b)
         layers)
