(** Overload-SLO watchdog: one auditor for how the whole pipeline
    behaves when offered demand exceeds what the network can carry.

    The paper's machinery silently assumes feasible input rates; this
    module measures what the repo {e guarantees} beyond that
    assumption, on both halves of the system:

    - {b Fluid half}: {!Mdr_fluid.Feasibility} min-cut fractions, the
      admitted fraction / shed fraction and degradation reason from
      {!Mdr_gallager.Gallager.solve}, the delay of the admitted load
      relative to the feasible baseline, and the saturation-safe cost
      audit ({!Mdr_fluid.Evaluate.costs_finite}) over flows pushed past
      capacity on purpose.
    - {b Control half}: MPDA driven by the overload's measured marginal
      costs — saturated links flap between their overload and base
      costs every T_l during the surge window, the cost churn a real
      estimator would report near the knee. The run is audited for
      successor-set flaps, loop-freedom/LFI violations, and cost-churn
      quiescence (seconds from the end of the surge to a quiescent
      network), once without and once with {!Mdr_routing.Cost_trigger}
      damping. Damping should cut the flap count by a measured factor
      while both runs stay invariant-clean. *)

type config = {
  t_l : float;  (** long-term cost update period, seconds *)
  surge_from : float;  (** surge window start (network converges first) *)
  surge_until : float;  (** surge window end (costs restored here) *)
  settle_grace : float;
      (** how long past [surge_until] the run may take to quiesce *)
  damping : Mdr_routing.Cost_trigger.params;  (** the damped run's knobs *)
  max_iters : int;  (** OPT iteration budget for the fluid solves *)
  seed : int;
}

val default_config : config
(** T_l = 1 s, surge over [5 s, 20 s), 120 s grace,
    {!Mdr_routing.Cost_trigger.default_params}, 300 OPT iterations,
    seed 1. *)

type fluid_slo = {
  feasible_fraction : float;
      (** {!Mdr_fluid.Feasibility.report} on the offered matrix *)
  admitted_fraction : float;  (** what the solver actually admitted *)
  shed_fraction : float;  (** [1 - admitted_fraction] *)
  degraded : bool;
  degrade_reason : string option;
      (** ["min-cut"] or ["no-convergence"] when degraded *)
  base_delay : float;  (** OPT average delay of the base matrix, s *)
  overload_delay : float;  (** OPT average delay of the admitted matrix, s *)
  delay_ratio : float;  (** overload over base; the SLO's "delay vs OPT" *)
  costs_finite : bool;
      (** saturation-safe audit over the admitted flows {e and} the raw
          offered flows pushed past capacity — must be [true] *)
  saturated_links : int;
      (** directed links past their knee under the raw offered load *)
}

type control_slo = {
  successor_flaps : int;
      (** successor-set entries changed between consecutive per-tick
          snapshots during the surge window, over all (router,
          destination) pairs *)
  loop_violations : int;  (** must be 0 *)
  lfi_violations : int;  (** must be 0 *)
  cost_updates_offered : int;
  cost_updates_applied : int;
      (** with damping, applied < offered is the mechanism working *)
  quiesce : float;
      (** seconds from [surge_until] to quiescence; [nan] = never *)
  converged : bool;
}

type report = {
  fluid : fluid_slo;
  undamped : control_slo;
  damped : control_slo;
}

val audit :
  ?config:config ->
  topo:Mdr_topology.Graph.t ->
  packet_size:float ->
  base:Mdr_fluid.Traffic.t ->
  offered:Mdr_fluid.Traffic.t ->
  unit ->
  report
(** Audit one overload scenario: [base] is a comfortably feasible
    reference matrix, [offered] the (possibly infeasible) load under
    test. Deterministic given the inputs and [config.seed].
    @raise Invalid_argument on a non-positive [t_l] or [max_iters], a
    degenerate surge window, or invalid damping parameters. *)

val audit_batch :
  ?jobs:int ->
  ?config:config ->
  topo:Mdr_topology.Graph.t ->
  packet_size:float ->
  base:Mdr_fluid.Traffic.t ->
  Mdr_fluid.Traffic.t list ->
  report list
(** {!audit} over a list of offered matrices against one base, fanned
    out on an {!Mdr_util.Pool} ([jobs] defaults to [MDR_JOBS]). Reports
    come back in input order and are byte-identical at any job
    count. *)

val table : (string * report) list -> string
(** One row per labelled scenario: feasibility, admission, shedding,
    degradation status, delay ratio, saturated-link and flap counts
    (undamped vs damped), invariant violations and quiescence.
    Rendered with {!Mdr_util.Tab}. *)

val shed_slo : (string * report) list -> Recovery.slo
(** Percentiles of the shed fraction across scenarios. *)

val slo_table : (string * report) list -> string
(** The watchdog summary: shed-fraction percentiles, cost-churn
    quiescence percentiles (undamped and damped), and the total
    successor-flap reduction factor. *)
