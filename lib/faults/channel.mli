(** Composable control-channel fault models.

    A model decides the fate of every frame crossing a link: delivered
    (possibly late, possibly more than once) or lost. Layers compose
    left to right — [all [drop ~p:0.1; duplicate ~p:0.05; jitter
    ~max_delay:0.02]] first tosses a loss coin, then a duplication
    coin per surviving copy, then delays each copy independently —
    and every random choice is drawn from an explicit {!Mdr_util.Rng}
    stream, so fault sequences are reproducible from a seed.

    Models plug into the routing harness through {!to_channel} /
    {!per_link} (see {!Mdr_routing.Harness.channel}); installing one
    engages the harness's reliable transport so the protocols above
    still see in-order, eventually-delivered messages. *)

type t

val ideal : t
(** Faultless: every frame delivered exactly once, on time. *)

val drop : ?until_:float -> p:float -> unit -> t
(** Lose each copy independently with probability [p] in [0, 1].
    [until_] bounds the impairment: from that simulated time on the
    layer is inert and frames pass through untouched. Default: the
    impairment is permanent. *)

val duplicate : ?until_:float -> p:float -> unit -> t
(** With probability [p], deliver an extra copy of each surviving
    frame (the copy gets its own jitter from later layers). [until_]
    as in {!drop}. *)

val jitter : ?until_:float -> max_delay:float -> unit -> t
(** Add an independent uniform extra delay in [0, max_delay] seconds
    to every delivered copy — out-of-order delivery once the spread
    exceeds the inter-frame spacing. [until_] as in {!drop}. *)

val blackout : from_:float -> until_:float -> t
(** Hard outage window: every frame transmitted at simulated time
    [from_ <= now < until_] is lost. Requires [from_ <= until_]. *)

val compose : t -> t -> t
(** [compose a b] applies [a]'s layers, then [b]'s. *)

val all : t list -> t

val decide : t -> rng:Mdr_util.Rng.t -> now:float -> float list
(** Fate of one frame transmitted at [now]: one extra delay per
    delivered copy ([[]] = lost). *)

val to_channel :
  t -> rng:Mdr_util.Rng.t -> src:int -> dst:int -> now:float -> float list
(** The same model on every link, ready for
    [Harness.Make.set_channel]. All links share [rng]; draws happen in
    deterministic event order. *)

val per_link :
  default:t ->
  overrides:((int * int) * t) list ->
  rng:Mdr_util.Rng.t ->
  src:int -> dst:int -> now:float -> float list
(** Like {!to_channel} with per-directed-link overrides. *)

val quiet_after : t -> float
(** Last instant the model's behavior changes: the latest blackout end
    or bounded-layer expiry (0 when there is neither) — campaigns wait
    at least this long before judging reconvergence. Permanent layers
    are stationary and do not move this horizon. *)

val describe : t -> string
(** Compact human-readable summary, e.g.
    ["drop 20% + dup 5% + jitter 20ms"]. *)
