(** Seeded byte-stream chaos for the route-server wire protocol.

    A {!t} ("line") sits on one direction of a connection and decides,
    per transmitted chunk, which transport-level misfortunes strike it:
    single-bit flips, tail truncation, duplication, delivery delay
    (which opens reordering windows against undelayed later chunks),
    stalls that hold {e every} subsequent delivery, and mid-chunk
    disconnects that cut the connection after a strict prefix.

    Like every fault model in this library the line is a pure function
    of its {!Mdr_util.Rng} stream: the same seed reproduces the same
    carnage byte for byte, which is what lets the wire audit compare a
    chaos run against a chaos-free reference. The line knows nothing
    about transports or frames — it maps [(now, chunk)] to a list of
    [(deliver_at, bytes)]; the wire layer wires it under its transport
    abstraction. *)

type params = {
  flip : float;  (** P(flip one random bit of a chunk) *)
  truncate : float;  (** P(cut a chunk to a strict non-empty prefix) *)
  duplicate : float;  (** P(deliver a chunk a second time, delayed) *)
  delay : float;  (** P(hold a chunk up to [max_delay]) *)
  max_delay : float;
  stall : float;
      (** P(open a stall window: this and every later chunk delivered
          no earlier than the window's end) *)
  max_stall : float;
  disconnect : float;  (** P(deliver a strict prefix, then cut the line) *)
}

val default_params : params
(** Modest rates (a few percent per chunk) sized so a 60-update session
    sees every fault kind across a 12-seed grid. *)

val scale : params -> intensity:float -> params
(** Multiply every probability by [intensity] (clamped to [0, 0.95];
    durations unchanged). [intensity = 0] is a transparent line.
    Requires [intensity >= 0]. *)

type counts = {
  chunks : int;
  flips : int;
  truncations : int;
  duplicates : int;
  delays : int;
  stalls : int;
  disconnects : int;
}

val zero_counts : counts
val add_counts : counts -> counts -> counts

type t

val create : ?params:params -> rng:Mdr_util.Rng.t -> unit -> t

val transform : t -> now:float -> string -> (float * string) list
(** The deliveries for one sent chunk: [(deliver_at, bytes)] with
    [deliver_at >= now], possibly mutated, duplicated or empty. After
    the line draws a disconnect it is {!dead} and every later chunk
    yields []. Requires a non-empty chunk. *)

val dead : t -> bool
(** The line drew a disconnect; the caller should close the transport. *)

val counts : t -> counts
