module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine
module Rng = Mdr_util.Rng
module Tab = Mdr_util.Tab

type fault =
  | Flap of { a : int; b : int; at : float; restore_at : float }
  | Cost_surge of { a : int; b : int; at : float; factor : float }
  | Demand_surge of {
      src : int;
      dst : int;
      factor : float;
      at : float;
      until_ : float;
    }
  | Crash of { node : int; at : float; restart_at : float }
  | Partition of { group : int list; at : float; heal_at : float }

type plan = { faults : fault list; channel : Channel.t; duration : float }

type profile = {
  duration : float;
  flaps : int;
  crashes : int;
  cost_surges : int;
  demand_surges : int;
  partition : bool;
  max_drop : float;
  max_duplicate : float;
  max_jitter : float;
  blackout : bool;
}

let default_profile =
  {
    duration = 30.0;
    flaps = 2;
    crashes = 1;
    cost_surges = 2;
    demand_surges = 2;
    partition = true;
    max_drop = 0.3;
    max_duplicate = 0.1;
    max_jitter = 0.02;
    blackout = true;
  }

(* Distinct physical links, one record per duplex pair. *)
let duplex_pairs topo =
  List.filter_map
    (fun (l : Graph.link) -> if l.src < l.dst then Some (l.src, l.dst) else None)
    (Graph.links topo)
  |> Array.of_list

let fault_start = function
  | Flap { at; _ }
  | Cost_surge { at; _ }
  | Demand_surge { at; _ }
  | Crash { at; _ }
  | Partition { at; _ } -> at

let fault_end = function
  | Flap { restore_at; _ } -> restore_at
  | Cost_surge { at; _ } -> at
  | Demand_surge { until_; _ } -> until_
  | Crash { restart_at; _ } -> restart_at
  | Partition { heal_at; _ } -> heal_at

let random_plan ~rng ~topo profile =
  let d = profile.duration in
  if d <= 0.0 then invalid_arg "Campaign.random_plan: non-positive duration";
  let pairs = duplex_pairs topo in
  if Array.length pairs = 0 then invalid_arg "Campaign.random_plan: no duplex links";
  let n = Graph.node_count topo in
  let pick_pair () = pairs.(Rng.int rng ~bound:(Array.length pairs)) in
  (* Fault windows open in the first 60% of the run and always close by
     90%, leaving room to watch reconvergence inside the run itself. *)
  let window () =
    let at = Rng.uniform rng ~lo:(0.05 *. d) ~hi:(0.6 *. d) in
    let until_ = Float.min (0.9 *. d) (at +. Rng.uniform rng ~lo:(0.05 *. d) ~hi:(0.3 *. d)) in
    (at, until_)
  in
  let faults = ref [] in
  for _ = 1 to profile.flaps do
    let a, b = pick_pair () in
    let at, restore_at = window () in
    faults := Flap { a; b; at; restore_at } :: !faults
  done;
  for _ = 1 to profile.cost_surges do
    let a, b = pick_pair () in
    let at = Rng.uniform rng ~lo:(0.05 *. d) ~hi:(0.9 *. d) in
    let factor = Rng.uniform rng ~lo:0.5 ~hi:3.0 in
    faults := Cost_surge { a; b; at; factor } :: !faults
  done;
  (* Demand surges are distinct (src, dst) commodities whose load
     multiplies over a bounded window; like every other fault window
     they close by 0.9 * duration, so the churn the surge causes is
     part of what reconvergence is judged over. *)
  for _ = 1 to profile.demand_surges do
    let src = Rng.int rng ~bound:n in
    let dst = (src + 1 + Rng.int rng ~bound:(n - 1)) mod n in
    let factor = Rng.uniform rng ~lo:1.5 ~hi:4.0 in
    let at, until_ = window () in
    faults := Demand_surge { src; dst; factor; at; until_ } :: !faults
  done;
  (* Crash distinct nodes so windows cannot double-kill one router. *)
  let order = Array.init n Fun.id in
  Rng.shuffle rng order;
  for i = 0 to Int.min profile.crashes n - 1 do
    let at, restart_at = window () in
    faults := Crash { node = order.(i); at; restart_at } :: !faults
  done;
  if profile.partition && n >= 2 then begin
    let size = 1 + Rng.int rng ~bound:(n - 1) in
    let members = Array.init n Fun.id in
    Rng.shuffle rng members;
    let group = Array.to_list (Array.sub members 0 size) in
    let at, heal_at = window () in
    faults := Partition { group = List.sort Int.compare group; at; heal_at } :: !faults
  end;
  let channel =
    Channel.all
      [
        (if profile.max_drop > 0.0 then
           Channel.drop ~until_:d ~p:(Rng.uniform rng ~lo:0.0 ~hi:profile.max_drop) ()
         else Channel.ideal);
        (if profile.max_duplicate > 0.0 then
           Channel.duplicate ~until_:d ~p:(Rng.uniform rng ~lo:0.0 ~hi:profile.max_duplicate) ()
         else Channel.ideal);
        (if profile.max_jitter > 0.0 then
           Channel.jitter ~until_:d ~max_delay:(Rng.uniform rng ~lo:0.0 ~hi:profile.max_jitter) ()
         else Channel.ideal);
        (if profile.blackout then
           let from_ = Rng.uniform rng ~lo:(0.1 *. d) ~hi:(0.7 *. d) in
           Channel.blackout ~from_ ~until_:(from_ +. Rng.uniform rng ~lo:0.0 ~hi:(0.15 *. d))
         else Channel.ideal);
      ]
  in
  {
    faults = List.sort (fun x y -> Float.compare (fault_start x) (fault_start y)) !faults;
    channel;
    duration = d;
  }

type metrics = {
  protocol : string;
  events : int;
  loop_violations : int;
  lfi_violations : int;
  messages : int;
  retransmissions : int;
  transport_acks : int;
  hellos : int;
  active_phases : int;
  detection_latencies : float list;
  detection_absorbed : int;
  detection_false_positives : int;
  blackhole_time : float;
  permanent_blackhole : bool;
  reconvergence : float;
  converged : bool;
}

(* The subset of the harness functor's output the runner needs; both
   Network (MPDA) and Harness.Dv_network satisfy it via the shims
   below. *)
module type NET = sig
  type t

  val create :
    ?detection:Mdr_routing.Harness.detection ->
    ?seed:int ->
    ?observer:(t -> unit) ->
    topo:Graph.t ->
    cost:(Graph.link -> float) ->
    unit ->
    t

  val engine : t -> Engine.t

  val set_channel :
    t -> ?rto_initial:float -> ?rto_max:float -> Mdr_routing.Harness.channel -> unit

  val schedule_link_cost : t -> at:float -> src:int -> dst:int -> cost:float -> unit
  val schedule_fail_duplex : t -> at:float -> a:int -> b:int -> unit
  val schedule_restore_duplex : t -> at:float -> a:int -> b:int -> cost:float -> unit
  val schedule_node_crash : t -> at:float -> node:int -> unit
  val schedule_node_restart : t -> at:float -> node:int -> unit
  val schedule_partition : t -> at:float -> heal_at:float -> group:int list -> unit
  val run : ?until:float -> t -> unit
  val quiescent : t -> bool
  val total_messages : t -> int
  val retransmissions : t -> int
  val transport_acks : t -> int
  val hellos_sent : t -> int
  val total_active_phases : t -> int
  val link_is_up : t -> src:int -> dst:int -> bool
  val node_is_up : t -> int -> bool
  val adj_suppressed : t -> node:int -> nbr:int -> bool
  val adj_flaps : t -> node:int -> nbr:int -> int
  val trace : t -> (float * Mdr_routing.Harness.trace_event) list
  val successor_sets : t -> dst:int -> int -> int list
  val check_loop_free : t -> bool
  val check_lfi : t -> bool
end

module Mpda_net = struct
  include Mdr_routing.Network

  let create ?detection ?seed ?observer ~topo ~cost () =
    Mdr_routing.Network.create ?detection ?seed ?observer ~topo ~cost ()
end

module Dv_net = struct
  include Mdr_routing.Harness.Dv_network

  let create ?detection ?seed ?observer ~topo ~cost () =
    Mdr_routing.Harness.Dv_network.create ?detection ?seed ?observer ~topo ~cost ()
end

(* Costs large enough that DV's RIP-style counting bound (horizon) is
   hit in tens of rounds, not thousands, when a partition or crash
   makes destinations unreachable. *)
let default_cost (l : Graph.link) = 100.0 +. (1000.0 *. l.prop_delay)

(* The min-hop route a surging commodity (src, dst) rides; its directed
   links are what the surge's extra queueing inflates. *)
let min_hop_path topo ~src ~dst =
  let n = Graph.node_count topo in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while (not (Queue.is_empty q)) && not seen.(dst) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.add v q
        end)
      (Graph.neighbors topo u)
  done;
  if not seen.(dst) then []
  else begin
    let rec walk v acc =
      if v = src then acc else walk parent.(v) ((parent.(v), v) :: acc)
    in
    walk dst []
  end

let schedule_fault (type a) (module N : NET with type t = a) (net : a) ~cost ~topo fault =
  match fault with
  | Flap { a; b; at; restore_at } ->
    N.schedule_fail_duplex net ~at ~a ~b;
    N.schedule_restore_duplex net ~at:restore_at ~a ~b
      ~cost:(cost (Graph.link_exn topo ~src:a ~dst:b))
  | Cost_surge { a; b; at; factor } ->
    N.schedule_link_cost net ~at ~src:a ~dst:b
      ~cost:(factor *. cost (Graph.link_exn topo ~src:a ~dst:b));
    N.schedule_link_cost net ~at ~src:b ~dst:a
      ~cost:(factor *. cost (Graph.link_exn topo ~src:b ~dst:a))
  | Demand_surge { src; dst; factor; at; until_ } ->
    (* The control plane sees a demand surge as measured-cost inflation
       along the commodity's path for the window, then restoration —
       overload churn that must end with the churn window. *)
    List.iter
      (fun (u, v) ->
        let base = cost (Graph.link_exn topo ~src:u ~dst:v) in
        N.schedule_link_cost net ~at ~src:u ~dst:v ~cost:(factor *. base);
        N.schedule_link_cost net ~at:until_ ~src:u ~dst:v ~cost:base)
      (min_hop_path topo ~src ~dst)
  | Crash { node; at; restart_at } ->
    N.schedule_node_crash net ~at ~node;
    N.schedule_node_restart net ~at:restart_at ~node
  | Partition { group; at; heal_at } -> N.schedule_partition net ~at ~heal_at ~group

let quiet_time plan =
  List.fold_left
    (fun acc f -> Float.max acc (fault_end f))
    (Channel.quiet_after plan.channel)
    plan.faults

let drive (type a) (module N : NET with type t = a) ~protocol ~detection ~cost
    ~settle_grace ~topo ~seed plan =
  let events = ref 0 and loopv = ref 0 and lfiv = ref 0 in
  (* Blackhole time is audited from the first injected fault onward —
     the initial cold-start flood (routers legitimately have no routes
     yet) is not an outage. *)
  let first_fault =
    List.fold_left (fun acc f -> Float.min acc (fault_start f)) infinity plan.faults
  in
  let tracker = Recovery.tracker () in
  let observer net =
    incr events;
    if not (N.check_loop_free net) then incr loopv;
    if not (N.check_lfi net) then incr lfiv;
    let now = Engine.now (N.engine net) in
    if now >= first_fault then
      Recovery.observe tracker ~now
        ~blackholed:
          (Recovery.blackholed ~topo ~node_is_up:(N.node_is_up net)
             ~link_is_up:(fun ~src ~dst -> N.link_is_up net ~src ~dst)
             ~successors:(fun ~dst v -> N.successor_sets net ~dst v))
  in
  let net = N.create ~detection ~seed ~observer ~topo ~cost () in
  let rng = Rng.create ~seed in
  N.set_channel net (Channel.to_channel plan.channel ~rng);
  List.iter (schedule_fault (module N) net ~cost ~topo) plan.faults;
  let quiet = quiet_time plan in
  N.run ~until:quiet net;
  (* Step the remaining events one by one so the instant the network
     settles is observable. *)
  let engine = N.engine net in
  let deadline = quiet +. settle_grace in
  let rec settle () =
    if N.quiescent net then Some (Engine.now engine)
    else if Engine.now engine > deadline || Engine.pending engine = 0 then None
    else begin
      ignore (Engine.step engine);
      settle ()
    end
  in
  let settled = settle () in
  let blackhole_time, blackhole_open = Recovery.finish tracker ~now:(Engine.now engine) in
  let det = Recovery.detect (N.trace net) in
  {
    protocol;
    events = !events;
    loop_violations = !loopv;
    lfi_violations = !lfiv;
    messages = N.total_messages net;
    retransmissions = N.retransmissions net;
    transport_acks = N.transport_acks net;
    hellos = N.hellos_sent net;
    active_phases = N.total_active_phases net;
    detection_latencies = det.Recovery.latencies;
    detection_absorbed = det.Recovery.absorbed;
    detection_false_positives = det.Recovery.false_positives;
    blackhole_time;
    permanent_blackhole = blackhole_open;
    reconvergence = (match settled with Some at -> Float.max 0.0 (at -. quiet) | None -> Float.nan);
    converged = settled <> None && N.check_loop_free net && N.check_lfi net;
  }

let run_mpda ?(detection = Mdr_routing.Harness.Oracle) ?(cost = default_cost)
    ?(settle_grace = 600.0) ~topo ~seed plan =
  drive (module Mpda_net) ~protocol:"MPDA" ~detection ~cost ~settle_grace ~topo ~seed
    plan

let run_dv ?(detection = Mdr_routing.Harness.Oracle) ?(cost = default_cost)
    ?(settle_grace = 600.0) ~topo ~seed plan =
  drive (module Dv_net) ~protocol:"DV" ~detection ~cost ~settle_grace ~topo ~seed plan

(* Scenario fan-out. Each index is a closed world — its own rng stream
   (seeded seed + i, so randomness depends only on the index, never on
   domain scheduling), its own topology value, its own plan and
   networks — so scenarios run on a [Mdr_util.Pool] without sharing any
   mutable state. Accumulation happens after the barrier, in the
   caller, over the index-ordered result array: byte-identical output
   at any MDR_JOBS. *)
let run_campaign ?jobs ?detection ?cost ?settle_grace ?(profile = default_profile)
    ~topo_of ~seed ~scenarios () =
  if scenarios < 0 then invalid_arg "Campaign.run_campaign: scenarios < 0";
  Mdr_util.Pool.init ?jobs scenarios (fun i ->
      let s = seed + i in
      let rng = Rng.create ~seed:s in
      let topo = topo_of i rng in
      let plan = random_plan ~rng ~topo profile in
      let mpda = run_mpda ?detection ?cost ?settle_grace ~topo ~seed:s plan in
      let dv = run_dv ?detection ?cost ?settle_grace ~topo ~seed:s plan in
      (mpda, dv))

let fingerprint (m : metrics) =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "%s events=%d loops=%d lfi=%d msgs=%d rexmit=%d acks=%d hellos=%d active=%d"
    m.protocol m.events m.loop_violations m.lfi_violations m.messages
    m.retransmissions m.transport_acks m.hellos m.active_phases;
  List.iter (Printf.bprintf b " det=%h") m.detection_latencies;
  Printf.bprintf b
    " absorbed=%d falsepos=%d blackhole=%h permanent=%b reconv=%h conv=%b"
    m.detection_absorbed m.detection_false_positives m.blackhole_time
    m.permanent_blackhole m.reconvergence m.converged;
  Buffer.contents b

let digest results =
  let b = Buffer.create 4096 in
  Array.iteri
    (fun i (mpda, dv) ->
      Printf.bprintf b "%d %s\n%d %s\n" i (fingerprint mpda) i (fingerprint dv))
    results;
  Digest.to_hex (Digest.string (Buffer.contents b))

let successor_agreement ?(cost = default_cost) ?channel ~topo ~seed () =
  let channel = match channel with Some c -> c | None -> Channel.drop ~p:0.2 () in
  let converge ch =
    let net = Mpda_net.create ~topo ~cost () in
    (match ch with
    | Some c -> Mpda_net.set_channel net (Channel.to_channel c ~rng:(Rng.create ~seed))
    | None -> ());
    let engine = Mpda_net.engine net in
    let rec settle () =
      if Mpda_net.quiescent net then true
      else if Engine.now engine > 600.0 || Engine.pending engine = 0 then false
      else begin
        ignore (Engine.step engine);
        settle ()
      end
    in
    let ok = settle () in
    (ok, net)
  in
  let ok_ideal, ideal = converge None in
  let ok_lossy, lossy = converge (Some channel) in
  let n = Graph.node_count topo in
  let same = ref (ok_ideal && ok_lossy) in
  for dst = 0 to n - 1 do
    for node = 0 to n - 1 do
      if node <> dst then begin
        let a = List.sort Int.compare (Mpda_net.successor_sets ideal ~dst node) in
        let b = List.sort Int.compare (Mpda_net.successor_sets lossy ~dst node) in
        if a <> b then same := false
      end
    done
  done;
  (!same, Mpda_net.retransmissions lossy)

let describe_fault topo fault =
  let name = Graph.name topo in
  match fault with
  | Flap { a; b; at; restore_at } ->
    Printf.sprintf "t=%5.1fs  flap %s-%s (restore t=%.1fs)" at (name a) (name b) restore_at
  | Cost_surge { a; b; at; factor } ->
    Printf.sprintf "t=%5.1fs  cost x%.2f on %s-%s" at factor (name a) (name b)
  | Demand_surge { src; dst; factor; at; until_ } ->
    Printf.sprintf "t=%5.1fs  demand x%.2f on %s->%s (ends t=%.1fs)" at factor
      (name src) (name dst) until_
  | Crash { node; at; restart_at } ->
    Printf.sprintf "t=%5.1fs  crash %s (restart t=%.1fs)" at (name node) restart_at
  | Partition { group; at; heal_at } ->
    Printf.sprintf "t=%5.1fs  partition {%s} (heal t=%.1fs)" at
      (String.concat ", " (List.map name group))
      heal_at

let summary_table batches =
  let rows =
    List.map
      (fun (label, runs) ->
        let total f = List.fold_left (fun acc m -> acc + f m) 0 runs in
        let reconvs =
          List.filter_map
            (fun m -> if Float.is_nan m.reconvergence then None else Some m.reconvergence)
            runs
        in
        let mean =
          match reconvs with
          | [] -> Float.nan
          | _ ->
            List.fold_left ( +. ) 0.0 reconvs /. float_of_int (List.length reconvs)
        in
        let worst = List.fold_left Float.max 0.0 reconvs in
        [
          label;
          string_of_int (List.length runs);
          string_of_int (total (fun m -> m.events));
          string_of_int (total (fun m -> m.loop_violations));
          string_of_int (total (fun m -> m.lfi_violations));
          string_of_int (total (fun m -> m.messages));
          string_of_int (total (fun m -> m.retransmissions));
          Tab.float_cell ~decimals:2 mean;
          Tab.float_cell ~decimals:2 worst;
          Printf.sprintf "%d/%d"
            (List.length (List.filter (fun m -> m.converged) runs))
            (List.length runs);
        ])
      batches
  in
  Tab.render
    ~header:
      [
        "campaign"; "runs"; "events"; "loop-viol"; "lfi-viol"; "msgs"; "retx";
        "reconv-mean(s)"; "reconv-max(s)"; "converged";
      ]
    rows

let slo_table runs =
  let cell v = Tab.float_cell ~decimals:3 v in
  let row label (s : Recovery.slo) =
    [
      label;
      string_of_int s.Recovery.count;
      cell s.Recovery.p50;
      cell s.Recovery.p95;
      cell s.Recovery.max_;
    ]
  in
  Tab.render
    ~header:[ "recovery SLO"; "n"; "p50(s)"; "p95(s)"; "max(s)" ]
    [
      row "detection latency"
        (Recovery.slo (List.concat_map (fun m -> m.detection_latencies) runs));
      row "blackhole time / run"
        (Recovery.slo (List.map (fun m -> m.blackhole_time) runs));
      row "reconvergence / run"
        (Recovery.slo (List.map (fun m -> m.reconvergence) runs));
    ]

(* --- Flap-damping demonstration ---------------------------------------- *)

module Hello = Mdr_routing.Hello

type damping_result = {
  active_phases_damped : int;
  active_phases_undamped : int;
  detected_flaps_damped : int;
  detected_flaps_undamped : int;
  suppressed_during_flaps : bool;
}

let damping_demo ?(flaps = 6) ?(period = 5.0) ?link ~topo ~seed () =
  let a, b =
    match link with
    | Some ab -> ab
    | None ->
      let pairs = duplex_pairs topo in
      if Array.length pairs = 0 then invalid_arg "Campaign.damping_demo: no duplex links";
      pairs.(0)
  in
  let dead = Hello.default_params.Hello.dead_interval in
  if period /. 2.0 <= dead then
    invalid_arg "Campaign.damping_demo: down-time must exceed the dead interval";
  let base = 5.0 in
  let last_restore = base +. (float_of_int (flaps - 1) *. period) +. (period /. 2.0) in
  let run damping =
    let params = { Hello.default_params with damping } in
    let net =
      Mpda_net.create
        ~detection:(Mdr_routing.Harness.Hello params)
        ~seed ~topo ~cost:default_cost ()
    in
    let engine = Mpda_net.engine net in
    let suppressed = ref false in
    for i = 0 to flaps - 1 do
      let t0 = base +. (float_of_int i *. period) in
      Mpda_net.schedule_fail_duplex net ~at:t0 ~a ~b;
      Mpda_net.schedule_restore_duplex net
        ~at:(t0 +. (period /. 2.0))
        ~a ~b
        ~cost:(default_cost (Graph.link_exn topo ~src:a ~dst:b));
      (* Probe suppression once each failure has had time to be
         detected. *)
      ignore
        (Engine.schedule_at engine ~time:(t0 +. dead +. 0.2) (fun () ->
             if
               Mpda_net.adj_suppressed net ~node:a ~nbr:b
               || Mpda_net.adj_suppressed net ~node:b ~nbr:a
             then suppressed := true))
    done;
    Mpda_net.run ~until:last_restore net;
    let deadline = last_restore +. 120.0 in
    let rec settle () =
      if Mpda_net.quiescent net then ()
      else if Engine.now engine > deadline || Engine.pending engine = 0 then ()
      else begin
        ignore (Engine.step engine);
        settle ()
      end
    in
    settle ();
    ( Mpda_net.total_active_phases net,
      Mpda_net.adj_flaps net ~node:a ~nbr:b + Mpda_net.adj_flaps net ~node:b ~nbr:a,
      !suppressed )
  in
  let damped_active, damped_flaps, damped_suppressed = run (Some Hello.default_damping) in
  let undamped_active, undamped_flaps, _ = run None in
  {
    active_phases_damped = damped_active;
    active_phases_undamped = undamped_active;
    detected_flaps_damped = damped_flaps;
    detected_flaps_undamped = undamped_flaps;
    suppressed_during_flaps = damped_suppressed;
  }
