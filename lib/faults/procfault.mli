(** Process-kill fault plans for the route-server chaos harness.

    The chaos campaigns ({!Campaign}) attack a {e network} of routers;
    this module attacks a single routing {e process}: it draws the
    update stream a deployed route-server would ingest and the points
    at which the process is killed. Like every plan generator in this
    library, the output is a pure function of the {!Mdr_util.Rng}
    stream, so a failing kill schedule is reproducible from its seed.

    The update language is deliberately this library's own (not the
    server's): [Mdr_server] depends on [Mdr_faults] for its audit, so
    the fault plans cannot reference the server's types. The audit maps
    {!update} onto its wire updates one-to-one. *)

type update =
  | Cost_change of { src : int; dst : int; cost : float }
      (** measured cost of the directed link [src -> dst] changed *)
  | Fail of { a : int; b : int }  (** duplex link failure *)
  | Restore of { a : int; b : int; cost : float }
      (** duplex restoration, both directions at [cost] *)

(** Where, relative to an update's processing, the process dies. *)
type where =
  | Between  (** after the update is fully applied and durable *)
  | Mid_journal
      (** during the journal append for the update: a torn record, the
          update never accepted *)
  | Mid_snapshot
      (** during a snapshot written after the update: a torn temp file,
          the previous snapshot still in place *)

type kill = { after : int; where : where; torn_at : int }
(** Kill the process at update number [after] (1-based), at point
    [where]; [torn_at] is the byte offset at which a torn write stops
    (clamped by the writer to keep the write strictly partial). *)

val default_base_cost : Mdr_topology.Graph.link -> float
(** [1 + 1000 * prop_delay] — the CLI's static link cost, shared here
    so streams and servers agree on what a link "normally" costs. *)

val duplex_pairs : Mdr_topology.Graph.t -> (int * int) list
(** The topology's duplex link pairs, normalized [(a, b)] with [a < b],
    in link insertion order. This is the unit of ownership the
    multi-writer server fences on, and the universe {!stream} draws
    from. *)

val partition_pairs : clients:int -> Mdr_topology.Graph.t -> (int * int) list list
(** Round-robin the duplex pairs across [clients] non-empty disjoint
    buckets (bucket [k] gets pairs [k], [k + clients], ...). The
    multi-writer audit hands bucket [k] to client [k + 1] as its claimed
    scope. @raise Invalid_argument if [clients < 1] or the topology has
    fewer duplex pairs than clients. *)

val stream :
  rng:Mdr_util.Rng.t ->
  ?base_cost:(Mdr_topology.Graph.link -> float) ->
  topo:Mdr_topology.Graph.t ->
  updates:int ->
  unit ->
  update list
(** Draw exactly [updates] updates: roughly 70% cost changes (a random
    up directed link, cost = base times [e^u], [u] uniform in
    [-1.4, 1.4]), 15% duplex failures (never the last up link), 15%
    restorations of a currently-down link (at base cost). Draws that
    cannot apply (nothing down to restore, one link left) fall back to
    cost changes, so the length is always exactly [updates].
    @raise Invalid_argument if [topo] has no duplex link. *)

val stream_on :
  rng:Mdr_util.Rng.t ->
  ?base_cost:(Mdr_topology.Graph.link -> float) ->
  topo:Mdr_topology.Graph.t ->
  pairs:(int * int) list ->
  updates:int ->
  unit ->
  update list
(** {!stream} restricted to a subset of the topology's duplex pairs —
    one writer's world in a multi-writer run. The "never fail the last
    up link" guard applies within [pairs], so a client that owns a
    single pair only ever re-costs it. @raise Invalid_argument if
    [pairs] is empty, not normalized, or not a subset of
    {!duplex_pairs}. *)

val cost_storm :
  rng:Mdr_util.Rng.t ->
  ?base_cost:(Mdr_topology.Graph.link -> float) ->
  topo:Mdr_topology.Graph.t ->
  updates:int ->
  unit ->
  update list
(** Pure cost-change stream (no topology events) over all duplex
    links — the backpressure layer's worst case, since cost updates are
    the sheddable kind. *)

val random_kills :
  rng:Mdr_util.Rng.t -> updates:int -> kills:int -> kill list
(** [kills] kill points at distinct update numbers drawn from
    [2 .. updates - 1], sorted; the kill kinds rotate
    [Mid_snapshot, Between, Mid_journal, ...] so every schedule with
    [kills >= 3] exercises all three, and each torn write gets a fresh
    random byte offset. Requires [updates >= kills + 2]. *)

val of_campaign :
  ?base_cost:(Mdr_topology.Graph.link -> float) ->
  topo:Mdr_topology.Graph.t ->
  Campaign.plan ->
  (float * update) list
(** Lower a network chaos plan into the route-server's input language,
    time-stamped and sorted: [Flap] becomes [Fail] then [Restore] (at
    base cost), [Cost_surge] becomes a [Cost_change] per direction.
    Faults with no single-process meaning ([Crash], [Partition],
    [Demand_surge]) are dropped — the server {e is} the process that
    campaign-level crashes kill. *)

val describe : Mdr_topology.Graph.t -> update -> string
val describe_kill : kill -> string
