module Graph = Mdr_topology.Graph
module Engine = Mdr_eventsim.Engine
module Tab = Mdr_util.Tab
module Flows = Mdr_fluid.Flows
module Evaluate = Mdr_fluid.Evaluate
module Feasibility = Mdr_fluid.Feasibility
module Gallager = Mdr_gallager.Gallager
module Net = Mdr_routing.Network
module Cost_trigger = Mdr_routing.Cost_trigger

type config = {
  t_l : float;
  surge_from : float;
  surge_until : float;
  settle_grace : float;
  damping : Cost_trigger.params;
  max_iters : int;
  seed : int;
}

let default_config =
  {
    t_l = 1.0;
    surge_from = 5.0;
    surge_until = 20.0;
    settle_grace = 120.0;
    damping = Cost_trigger.default_params;
    max_iters = 300;
    seed = 1;
  }

type fluid_slo = {
  feasible_fraction : float;
  admitted_fraction : float;
  shed_fraction : float;
  degraded : bool;
  degrade_reason : string option;
  base_delay : float;
  overload_delay : float;
  delay_ratio : float;
  costs_finite : bool;
  saturated_links : int;
}

type control_slo = {
  successor_flaps : int;
  loop_violations : int;
  lfi_violations : int;
  cost_updates_offered : int;
  cost_updates_applied : int;
  quiesce : float;
  converged : bool;
}

type report = {
  fluid : fluid_slo;
  undamped : control_slo;
  damped : control_slo;
}

let validate config =
  if config.t_l <= 0.0 then invalid_arg "Overload: t_l must be > 0";
  if config.surge_from <= 0.0 || config.surge_until <= config.surge_from then
    invalid_arg "Overload: need 0 < surge_from < surge_until";
  if config.settle_grace < 0.0 then
    invalid_arg "Overload: settle_grace must be >= 0";
  if config.max_iters <= 0 then invalid_arg "Overload: max_iters must be > 0";
  Cost_trigger.validate config.damping

(* --- Fluid side: feasibility, degradation, and the cost audit -------- *)

let audit_fluid ~config ~model ~topo ~packet_size ~base ~offered =
  let solve = Gallager.solve ~max_iters:config.max_iters model topo in
  let base_res = solve base in
  let over_res = solve offered in
  let feas = Feasibility.report topo ~packet_size offered in
  let admitted_fraction, degrade_reason =
    match over_res.Gallager.status with
    | Gallager.Feasible -> (1.0, None)
    | Gallager.Degraded d ->
      ( d.Gallager.admitted_fraction,
        Some
          (match d.Gallager.reason with
          | `Min_cut -> "min-cut"
          | `No_convergence -> "no-convergence") )
  in
  (* The raw offered matrix routed on the base configuration: flows run
     past capacity exactly where the overload bites, which is what the
     saturation-safe cost pipeline must keep finite. *)
  let raw_flows =
    Flows.compute ~iterative_fallback:true base_res.Gallager.params offered
  in
  let fluid =
    {
      feasible_fraction = feas.Feasibility.fraction;
      admitted_fraction;
      shed_fraction = 1.0 -. admitted_fraction;
      degraded = over_res.Gallager.status <> Gallager.Feasible;
      degrade_reason;
      base_delay = base_res.Gallager.avg_delay;
      overload_delay = over_res.Gallager.avg_delay;
      delay_ratio =
        (if base_res.Gallager.avg_delay > 0.0 then
           over_res.Gallager.avg_delay /. base_res.Gallager.avg_delay
         else Float.nan);
      costs_finite =
        Evaluate.costs_finite model over_res.Gallager.flows
        && Evaluate.costs_finite model raw_flows;
      saturated_links = List.length (Evaluate.saturated_links model raw_flows);
    }
  in
  (fluid, base_res, raw_flows)

(* --- Control side: drive MPDA with the overload's measured costs ------ *)

(* Snapshot every router's successor sets and count entries that
   changed since the last snapshot. *)
let probe_flaps ~n ~prev ~first net =
  let changes = ref 0 in
  for dst = 0 to n - 1 do
    for node = 0 to n - 1 do
      if node <> dst then begin
        let s = List.sort compare (Net.successor_sets net ~dst node) in
        if s <> prev.(node).(dst) then begin
          if not first then incr changes;
          prev.(node).(dst) <- s
        end
      end
    done
  done;
  !changes

let drive_control ~config ~topo ~base_cost ~surge_cost ~saturated ~damping =
  let n = Graph.node_count topo in
  let loopv = ref 0 and lfiv = ref 0 in
  let observer net =
    if not (Net.check_loop_free net) then incr loopv;
    if not (Net.check_lfi net) then incr lfiv
  in
  let net =
    Net.create ~seed:config.seed ~observer ~topo
      ~cost:(fun l -> base_cost ~src:l.Graph.src ~dst:l.Graph.dst)
      ()
  in
  (match damping with Some p -> Net.set_cost_damping net p | None -> ());
  (* Cost schedule: during the surge window, saturated links flap
     between their overload cost and their base cost every T_l tick
     (measured marginals near the knee genuinely swing this hard);
     unsaturated links step to their overload cost once. At
     [surge_until] everything is restored. Only actual changes are
     scheduled. *)
  let last = Hashtbl.create 64 in
  let sched ~at ~src ~dst ~cost =
    let changed =
      match Hashtbl.find_opt last (src, dst) with
      | Some c -> not (Float.equal c cost)
      | None -> not (Float.equal cost (base_cost ~src ~dst))
    in
    if changed then begin
      Hashtbl.replace last (src, dst) cost;
      Net.schedule_link_cost net ~at ~src ~dst ~cost
    end
  in
  let links = Graph.links topo in
  let k = ref 0 in
  let t = ref config.surge_from in
  while !t < config.surge_until do
    List.iter
      (fun (l : Graph.link) ->
        let src = l.Graph.src and dst = l.Graph.dst in
        let cost =
          if saturated ~src ~dst && !k mod 2 = 1 then base_cost ~src ~dst
          else surge_cost ~src ~dst
        in
        sched ~at:!t ~src ~dst ~cost)
      links;
    incr k;
    t := config.surge_from +. (float_of_int !k *. config.t_l)
  done;
  List.iter
    (fun (l : Graph.link) ->
      let src = l.Graph.src and dst = l.Graph.dst in
      sched ~at:config.surge_until ~src ~dst ~cost:(base_cost ~src ~dst))
    links;
  (* Successor-set probes midway between ticks: the first (before the
     surge) is the reference snapshot, the rest count flaps. *)
  let engine = Net.engine net in
  let prev = Array.make_matrix n n [] in
  let flaps = ref 0 in
  let nprobes =
    int_of_float (Float.ceil ((config.surge_until -. config.surge_from) /. config.t_l))
  in
  for i = 0 to nprobes do
    let at = config.surge_from +. ((float_of_int i -. 0.5) *. config.t_l) in
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           flaps := !flaps + probe_flaps ~n ~prev ~first:(i = 0) net))
  done;
  Net.run ~until:config.surge_until net;
  let deadline = config.surge_until +. config.settle_grace in
  let rec settle () =
    if Net.quiescent net then Some (Engine.now engine)
    else if Engine.now engine > deadline || Engine.pending engine = 0 then None
    else begin
      ignore (Engine.step engine);
      settle ()
    end
  in
  let settled = settle () in
  {
    successor_flaps = !flaps;
    loop_violations = !loopv;
    lfi_violations = !lfiv;
    cost_updates_offered = Net.cost_updates_offered net;
    cost_updates_applied = Net.cost_updates_applied net;
    quiesce =
      (match settled with
      | Some at -> Float.max 0.0 (at -. config.surge_until)
      | None -> Float.nan);
    converged = settled <> None && Net.check_loop_free net && Net.check_lfi net;
  }

let audit ?(config = default_config) ~topo ~packet_size ~base ~offered () =
  validate config;
  let model = Evaluate.model topo ~packet_size in
  let fluid, base_res, raw_flows =
    audit_fluid ~config ~model ~topo ~packet_size ~base ~offered
  in
  (* Costs the control plane would measure: marginal delays of the base
     configuration, and of the raw overload riding the base routes.
     Scaled to dimensionless routing costs (the router only compares
     them). *)
  let scale = 1.0e3 in
  let base_cost ~src ~dst =
    scale *. Evaluate.link_cost model base_res.Gallager.flows ~src ~dst
  in
  let surge_cost ~src ~dst =
    scale *. Evaluate.link_cost model raw_flows ~src ~dst
  in
  let sat = Evaluate.saturated_links model raw_flows in
  let saturated ~src ~dst = List.mem (src, dst) sat in
  let undamped =
    drive_control ~config ~topo ~base_cost ~surge_cost ~saturated ~damping:None
  in
  let damped =
    drive_control ~config ~topo ~base_cost ~surge_cost ~saturated
      ~damping:(Some config.damping)
  in
  { fluid; undamped; damped }

(* Each scenario is a pure function of (config, topo, packet_size,
   base, offered) and touches no shared mutable state — the watchdog's
   multi-load sweep fans out on the pool, results in input order. *)
let audit_batch ?jobs ?config ~topo ~packet_size ~base offered =
  Mdr_util.Pool.map_list ?jobs
    (fun offered -> audit ?config ~topo ~packet_size ~base ~offered ())
    offered

(* --- Rendering -------------------------------------------------------- *)

let cell = Tab.float_cell ~decimals:3

let table rows =
  let row (label, r) =
    let f = r.fluid in
    [
      label;
      cell f.feasible_fraction;
      cell f.admitted_fraction;
      cell f.shed_fraction;
      (match f.degrade_reason with Some s -> s | None -> "feasible");
      Tab.float_cell ~decimals:2 f.delay_ratio;
      string_of_int f.saturated_links;
      (if f.costs_finite then "yes" else "NO");
      string_of_int r.undamped.successor_flaps;
      string_of_int r.damped.successor_flaps;
      string_of_int (r.undamped.lfi_violations + r.damped.lfi_violations);
      Tab.float_cell ~decimals:2 r.undamped.quiesce;
      Tab.float_cell ~decimals:2 r.damped.quiesce;
      (if r.undamped.converged && r.damped.converged then "yes" else "NO");
    ]
  in
  Tab.render
    ~header:
      [
        "load"; "feas-frac"; "admitted"; "shed"; "status"; "delay-x";
        "sat-links"; "finite"; "flaps"; "flaps(damped)"; "lfi-viol";
        "quiesce(s)"; "quiesce-d(s)"; "converged";
      ]
    (List.map row rows)

let shed_slo rows = Recovery.slo (List.map (fun (_, r) -> r.fluid.shed_fraction) rows)

let slo_table rows =
  let shed = shed_slo rows in
  let flap_cut =
    let u =
      List.fold_left (fun acc (_, r) -> acc + r.undamped.successor_flaps) 0 rows
    in
    let d =
      List.fold_left (fun acc (_, r) -> acc + r.damped.successor_flaps) 0 rows
    in
    (u, d)
  in
  let quiesces damped =
    Recovery.slo
      (List.map
         (fun (_, r) -> if damped then r.damped.quiesce else r.undamped.quiesce)
         rows)
  in
  let qu = quiesces false and qd = quiesces true in
  let u, d = flap_cut in
  Tab.render
    ~header:[ "overload SLO"; "n"; "p50"; "p95"; "max" ]
    [
      [
        "shed fraction";
        string_of_int shed.Recovery.count;
        cell shed.Recovery.p50;
        cell shed.Recovery.p95;
        cell shed.Recovery.max_;
      ];
      [
        "cost-churn quiescence (s)";
        string_of_int qu.Recovery.count;
        cell qu.Recovery.p50;
        cell qu.Recovery.p95;
        cell qu.Recovery.max_;
      ];
      [
        "quiescence, damped (s)";
        string_of_int qd.Recovery.count;
        cell qd.Recovery.p50;
        cell qd.Recovery.p95;
        cell qd.Recovery.max_;
      ];
      [
        "successor flaps (undamped -> damped)";
        string_of_int (List.length rows);
        string_of_int u;
        string_of_int d;
        (if d = 0 then if u = 0 then "1.00x" else "inf"
         else Printf.sprintf "%.2fx" (float_of_int u /. float_of_int d));
      ];
    ]
