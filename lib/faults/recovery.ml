module Graph = Mdr_topology.Graph
module H = Mdr_routing.Harness

type detection_report = {
  latencies : float list;
  absorbed : int;
  false_positives : int;
}

let detect trace =
  let pending = Hashtbl.create 16 in
  let latencies = ref [] and absorbed = ref 0 and false_positives = ref 0 in
  let close key ~now =
    match Hashtbl.find_opt pending key with
    | Some t0 ->
      latencies := (now -. t0) :: !latencies;
      Hashtbl.remove pending key;
      true
    | None -> false
  in
  List.iter
    (fun (now, ev) ->
      match ev with
      | H.Phys_down { src; dst } ->
        if not (Hashtbl.mem pending (src, dst)) then
          Hashtbl.replace pending (src, dst) now
      | H.Phys_up { src; dst } ->
        if Hashtbl.mem pending (src, dst) then begin
          incr absorbed;
          Hashtbl.remove pending (src, dst)
        end
      | H.Adj_down { node; nbr; cause = _ } ->
        (* [node] stopped hearing [nbr], so the lost direction is
           [nbr -> node]; a one-way teardown may instead root-cause in
           the reverse direction (we went silent toward [nbr]). *)
        if not (close (nbr, node) ~now) && not (close (node, nbr) ~now) then
          incr false_positives
      | H.Adj_up _ -> ())
    trace;
  {
    latencies = List.rev !latencies;
    absorbed = !absorbed;
    false_positives = !false_positives;
  }

type tracker = {
  mutable since : float option;  (* blackhole open since *)
  mutable total : float;
}

let tracker () = { since = None; total = 0.0 }

let observe tr ~now ~blackholed =
  match (tr.since, blackholed) with
  | None, true -> tr.since <- Some now
  | Some t0, false ->
    tr.total <- tr.total +. (now -. t0);
    tr.since <- None
  | None, false | Some _, true -> ()

let finish tr ~now =
  let total =
    match tr.since with
    | Some t0 -> tr.total +. Float.max 0.0 (now -. t0)
    | None -> tr.total
  in
  (total, tr.since <> None)

let blackholed ~topo ~node_is_up ~link_is_up ~successors =
  let n = Graph.node_count topo in
  let found = ref false in
  let dst = ref 0 in
  while (not !found) && !dst < n do
    let d = !dst in
    if node_is_up d then begin
      (* Reverse reachability: which live nodes have a physical path
         to [d] over up links? *)
      let reach = Array.make n false in
      reach.(d) <- true;
      let queue = Queue.create () in
      Queue.add d queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun u ->
            if (not reach.(u)) && node_is_up u && link_is_up ~src:u ~dst:v then begin
              reach.(u) <- true;
              Queue.add u queue
            end)
          (Graph.neighbors topo v)
      done;
      for v = 0 to n - 1 do
        if v <> d && node_is_up v && reach.(v) && successors ~dst:d v = [] then
          found := true
      done
    end;
    incr dst
  done;
  !found

type slo = { p50 : float; p95 : float; max_ : float; count : int }

let slo samples =
  let samples = List.filter (fun x -> not (Float.is_nan x)) samples in
  match samples with
  | [] -> { p50 = Float.nan; p95 = Float.nan; max_ = Float.nan; count = 0 }
  | _ ->
    let pct p = Mdr_util.Stats.percentile samples ~p in
    {
      p50 = pct 50.0;
      p95 = pct 95.0;
      max_ = List.fold_left Float.max neg_infinity samples;
      count = List.length samples;
    }
