(** Recovery-SLO auditing for chaos campaigns.

    The harness timestamps every physical link transition and every
    routing-visible adjacency transition ({!Mdr_routing.Harness.trace});
    this module turns one run's trace plus in-run sampling into the
    numbers an operator would put an SLO on:

    - {b detection latency} — physical failure to the moment a
      surviving endpoint's routing process was told;
    - {b blackhole time} — total time during which some router had an
      empty successor set for a destination it could physically reach;
    - {b reconvergence} — measured by [Campaign.drive] as the time
      from the last injected fault to quiescence.

    Latencies pool across events; blackhole time accrues per run. *)

type detection_report = {
  latencies : float list;
      (** one entry per physical link-down whose loss was reported to
          the surviving endpoint, in trace order *)
  absorbed : int;
      (** physical link-downs undone (link restored / node restarted)
          before any routing process was told — invisible flaps, plus
          the into-a-crashed-node directions nobody was left to watch *)
  false_positives : int;
      (** adjacency teardowns with no physical failure outstanding —
          hello loss under a noisy channel, and the one-way echo of a
          false teardown at the peer *)
}

val detect : (float * Mdr_routing.Harness.trace_event) list -> detection_report
(** Pair each [Phys_down] with the first matching [Adj_down] (the
    detector is the endpoint that stopped hearing: [Phys_down (s, d)]
    is detected by [Adj_down] at node [d] about [s], or attributed to
    the reverse direction for one-way teardowns). Under oracle
    detection every latency is 0 by construction. *)

(** Accumulates blackhole time from samples taken at every observer
    callback. *)
type tracker

val tracker : unit -> tracker

val observe : tracker -> now:float -> blackholed:bool -> unit
(** [now] must be non-decreasing across calls. *)

val finish : tracker -> now:float -> float * bool
(** Total blackhole seconds up to [now], and whether a blackhole was
    still open at [now] (a permanent blackhole if the run settled). *)

val blackholed :
  topo:Mdr_topology.Graph.t ->
  node_is_up:(int -> bool) ->
  link_is_up:(src:int -> dst:int -> bool) ->
  successors:(dst:int -> int -> int list) ->
  bool
(** Does any live router have an empty successor set for a destination
    it can physically reach (over up links through live nodes)? *)

type slo = { p50 : float; p95 : float; max_ : float; count : int }

val slo : float list -> slo
(** Nearest-rank percentiles; NaNs (unsettled runs) are dropped first,
    and an empty sample yields NaN cells with [count = 0]. *)
