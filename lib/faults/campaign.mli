(** Chaos campaigns: randomized fault schedules run against MPDA and
    DV under identical event streams, with the loop-freedom and LFI
    invariants audited after every processed protocol event.

    A {!plan} is a deterministic function of an {!Mdr_util.Rng} seed:
    link flaps, cost surges, node crash/restart cycles, one optional
    partition/heal, and a lossy-channel model (drops, duplicates,
    jitter, an optional blackout window). {!run_mpda} / {!run_dv}
    execute a plan and return {!metrics}; the invariant-violation
    counts must be zero for both protocols — that is the paper's
    Theorem 3 under churn, and the campaign is its enforcement
    harness. *)

type fault =
  | Flap of { a : int; b : int; at : float; restore_at : float }
      (** duplex link failure at [at], restoration at [restore_at] *)
  | Cost_surge of { a : int; b : int; at : float; factor : float }
      (** both directions' costs multiplied by [factor] (from the
          campaign's base cost) at [at] *)
  | Demand_surge of {
      src : int;
      dst : int;
      factor : float;
      at : float;
      until_ : float;
    }
      (** commodity (src, dst)'s load multiplied by [factor] over
          [at, until_): the control plane sees the surge as
          measured-cost inflation along the commodity's min-hop path,
          restored when the window closes (surges always end inside
          the churn window) *)
  | Crash of { node : int; at : float; restart_at : float }
  | Partition of { group : int list; at : float; heal_at : float }

type plan = {
  faults : fault list;  (** sorted by start time *)
  channel : Channel.t;
  duration : float;  (** all fault activity ends by this time *)
}

type profile = {
  duration : float;  (** window in which faults are injected *)
  flaps : int;  (** number of link flap cycles *)
  crashes : int;  (** number of crash/restart cycles *)
  cost_surges : int;
  demand_surges : int;  (** number of windowed per-commodity load surges *)
  partition : bool;  (** include one partition/heal of a random cut *)
  max_drop : float;  (** per-plan drop probability drawn in [0, max] *)
  max_duplicate : float;
  max_jitter : float;  (** seconds *)
  blackout : bool;  (** include one hard blackout window *)
}

val default_profile : profile
(** 30 s of churn: 2 flaps, 1 crash, 2 cost surges, 2 demand surges, a
    partition every
    plan, drop up to 0.3, duplication up to 0.1, jitter up to 20 ms,
    one blackout window. The lossy layers expire at [duration] along
    with the scheduled faults, so reconvergence is judged over a clean
    channel — essential under hello detection, where a permanently
    lossy control channel keeps failure detection misfiring and
    quiescence would be unreachable by design. *)

val random_plan :
  rng:Mdr_util.Rng.t -> topo:Mdr_topology.Graph.t -> profile -> plan
(** Draw a fault schedule for [topo]. Fault windows always close
    strictly before [profile.duration]; crash targets are distinct
    nodes; flap and surge targets are drawn from the topology's duplex
    links. *)

type metrics = {
  protocol : string;
  events : int;  (** router events processed (audits performed) *)
  loop_violations : int;  (** successor-graph cycles observed — must be 0 *)
  lfi_violations : int;  (** LFI (Eq. 16) failures observed — must be 0 *)
  messages : int;  (** router messages + retransmissions *)
  retransmissions : int;
  transport_acks : int;
  hellos : int;  (** hello frames sent (0 under oracle detection) *)
  active_phases : int;
      (** MPDA ACTIVE phases entered across all routers, including
          routers that crashed mid-run; 0 for DV *)
  detection_latencies : float list;
      (** per detected physical link-down: seconds from the failure to
          the surviving endpoint's routing process being told *)
  detection_absorbed : int;
      (** physical link-downs undone before any router was told *)
  detection_false_positives : int;
      (** adjacency teardowns with no physical failure outstanding *)
  blackhole_time : float;
      (** seconds (sampled at protocol events, from the first fault
          on) during which some live router had no successor for a
          physically reachable destination *)
  permanent_blackhole : bool;
      (** a blackhole was still open when the run ended — with
          [converged = true] that is a real routing hole, not churn *)
  reconvergence : float;
      (** seconds from the end of fault activity to quiescence;
          [nan] when the run failed to settle *)
  converged : bool;
      (** quiescent, loop-free and LFI-clean at the end of the run *)
}

val run_mpda :
  ?detection:Mdr_routing.Harness.detection ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  ?settle_grace:float ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  plan ->
  metrics
(** Execute [plan] against the MPDA network. [detection] (default
    [Oracle]) selects oracle link-state delivery or hello-based
    inference; [cost] defaults to [1 + 1000 * prop_delay];
    [settle_grace] (default 600 s) bounds how long past the last fault
    the run may take to quiesce. [seed] feeds both the channel fault
    model's random stream and the harness's hello/RTO jitter. *)

val run_dv :
  ?detection:Mdr_routing.Harness.detection ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  ?settle_grace:float ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  plan ->
  metrics
(** Same plan, distance-vector network. *)

val run_campaign :
  ?jobs:int ->
  ?detection:Mdr_routing.Harness.detection ->
  ?cost:(Mdr_topology.Graph.link -> float) ->
  ?settle_grace:float ->
  ?profile:profile ->
  topo_of:(int -> Mdr_util.Rng.t -> Mdr_topology.Graph.t) ->
  seed:int ->
  scenarios:int ->
  unit ->
  (metrics * metrics) array
(** Run [scenarios] independent fault scenarios, each against MPDA and
    DV, fanned out on an {!Mdr_util.Pool} ([jobs] defaults to
    [MDR_JOBS]). Scenario [i] draws its plan from a fresh rng seeded
    [seed + i] over the topology [topo_of i rng], so every result is a
    pure function of its index: the returned array — MPDA metrics
    paired with DV metrics, in scenario order — is byte-identical at
    any job count. *)

val fingerprint : metrics -> string
(** Full-precision one-line serialization of a metrics record (floats
    with [%h]); equal strings iff equal metrics. Feeds {!digest} and
    the parallel-equivalence checks. *)

val digest : (metrics * metrics) array -> string
(** Hex MD5 over the fingerprints of a {!run_campaign} result, in
    scenario order — the campaign's trace hash for sequential-vs-
    parallel comparison. *)

val successor_agreement :
  ?cost:(Mdr_topology.Graph.link -> float) ->
  ?channel:Channel.t ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  bool * int
(** Bring the MPDA network up twice — once over ideal channels, once
    over [channel] (default: 20% drop) — and compare every router's
    converged successor set for every destination. Returns (sets
    identical, retransmissions the lossy run needed). Proves the
    transport layer out: loss must change cost, not routes. *)

val describe_fault : Mdr_topology.Graph.t -> fault -> string

val summary_table : (string * metrics list) list -> string
(** One row per labelled batch of runs: totals for events, violations
    and message overhead, mean/max reconvergence time, converged
    count. Rendered with {!Mdr_util.Tab}. *)

val slo_table : metrics list -> string
(** Recovery-SLO percentiles over a batch: detection latency (pooled
    across events), blackhole time per run, reconvergence per run.
    Meaningful under hello detection; under oracle detection every
    latency is 0. *)

(** Outcome of {!damping_demo}: the same flapping-link schedule run
    with and without flap damping. *)
type damping_result = {
  active_phases_damped : int;
  active_phases_undamped : int;
  detected_flaps_damped : int;  (** [Full -> Down] transitions, both endpoints *)
  detected_flaps_undamped : int;
  suppressed_during_flaps : bool;
      (** the damped run actually held the adjacency down at some
          probe point — the mechanism, not just the effect *)
}

val damping_demo :
  ?flaps:int ->
  ?period:float ->
  ?link:int * int ->
  topo:Mdr_topology.Graph.t ->
  seed:int ->
  unit ->
  damping_result
(** Flap one duplex link (default: the topology's first) [flaps] times
    with period [period] (down for half, up for half; the down-time
    must exceed the default dead interval so every flap is detectable)
    against MPDA under hello detection, once with {!Mdr_routing.Hello.default_damping}
    and once with damping disabled. Damping should cut the ACTIVE
    phase count: suppressed flaps never reach the routing process. *)
