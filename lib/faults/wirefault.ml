(* Seeded byte-stream chaos for the wire protocol. Pure function of
   the Rng stream: no wall clock, no transport types. *)

module Rng = Mdr_util.Rng

type params = {
  flip : float;
  truncate : float;
  duplicate : float;
  delay : float;
  max_delay : float;
  stall : float;
  max_stall : float;
  disconnect : float;
}

let default_params =
  {
    flip = 0.03;
    truncate = 0.02;
    duplicate = 0.03;
    delay = 0.08;
    max_delay = 0.3;
    stall = 0.015;
    max_stall = 1.0;
    disconnect = 0.02;
  }

let scale p ~intensity =
  if not (Float.is_finite intensity) || intensity < 0.0 then
    invalid_arg "Wirefault.scale: intensity must be finite and >= 0";
  let s x = Float.min 0.95 (x *. intensity) in
  {
    p with
    flip = s p.flip;
    truncate = s p.truncate;
    duplicate = s p.duplicate;
    delay = s p.delay;
    stall = s p.stall;
    disconnect = s p.disconnect;
  }

type counts = {
  chunks : int;
  flips : int;
  truncations : int;
  duplicates : int;
  delays : int;
  stalls : int;
  disconnects : int;
}

let zero_counts =
  {
    chunks = 0;
    flips = 0;
    truncations = 0;
    duplicates = 0;
    delays = 0;
    stalls = 0;
    disconnects = 0;
  }

let add_counts a b =
  {
    chunks = a.chunks + b.chunks;
    flips = a.flips + b.flips;
    truncations = a.truncations + b.truncations;
    duplicates = a.duplicates + b.duplicates;
    delays = a.delays + b.delays;
    stalls = a.stalls + b.stalls;
    disconnects = a.disconnects + b.disconnects;
  }

type t = {
  rng : Rng.t;
  params : params;
  mutable stall_until : float;
  mutable dead : bool;
  mutable counts : counts;
}

let create ?(params = default_params) ~rng () =
  { rng; params; stall_until = neg_infinity; dead = false; counts = zero_counts }

let dead t = t.dead
let counts t = t.counts
let hit t p = p > 0.0 && Rng.float t.rng < p

(* Flip one random bit of [s]. *)
let flip_bit t s =
  let b = Bytes.of_string s in
  let i = Rng.int t.rng ~bound:(Bytes.length b) in
  let bit = Rng.int t.rng ~bound:8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.unsafe_to_string b

(* A strict non-empty prefix of [s] when its length allows one. *)
let prefix t s =
  let n = String.length s in
  if n < 2 then s else String.sub s 0 (1 + Rng.int t.rng ~bound:(n - 1))

let transform t ~now chunk =
  if String.length chunk = 0 then invalid_arg "Wirefault.transform: empty chunk";
  if t.dead then []
  else begin
    let c = t.counts in
    t.counts <- { c with chunks = c.chunks + 1 };
    let p = t.params in
    (* Disconnect wins over everything: a strict prefix (possibly
       nothing) gets out, then the line is dead. *)
    if hit t p.disconnect then begin
      t.counts <- { t.counts with disconnects = t.counts.disconnects + 1 };
      t.dead <- true;
      let keep = Rng.int t.rng ~bound:(String.length chunk) in
      if keep = 0 then [] else [ (Float.max now t.stall_until, String.sub chunk 0 keep) ]
    end
    else begin
      let body = ref chunk in
      if hit t p.flip then begin
        t.counts <- { t.counts with flips = t.counts.flips + 1 };
        body := flip_bit t !body
      end;
      if hit t p.truncate then begin
        t.counts <- { t.counts with truncations = t.counts.truncations + 1 };
        body := prefix t !body
      end;
      if hit t p.stall then begin
        t.counts <- { t.counts with stalls = t.counts.stalls + 1 };
        t.stall_until <-
          Float.max t.stall_until (now +. Rng.uniform t.rng ~lo:(0.25 *. p.max_stall) ~hi:p.max_stall)
      end;
      let base = Float.max now t.stall_until in
      let at =
        if hit t p.delay then begin
          t.counts <- { t.counts with delays = t.counts.delays + 1 };
          base +. Rng.uniform t.rng ~lo:0.0 ~hi:p.max_delay
        end
        else base
      in
      let out = [ (at, !body) ] in
      if hit t p.duplicate then begin
        t.counts <- { t.counts with duplicates = t.counts.duplicates + 1 };
        out @ [ (base +. Rng.uniform t.rng ~lo:0.0 ~hi:p.max_delay, !body) ]
      end
      else out
    end
  end
