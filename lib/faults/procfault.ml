module Rng = Mdr_util.Rng
module Graph = Mdr_topology.Graph

type update =
  | Cost_change of { src : int; dst : int; cost : float }
  | Fail of { a : int; b : int }
  | Restore of { a : int; b : int; cost : float }

type where = Between | Mid_journal | Mid_snapshot
type kill = { after : int; where : where; torn_at : int }

let default_base_cost (l : Graph.link) = 1.0 +. (1000.0 *. l.prop_delay)

(* Duplex pairs (a < b), in link insertion order. *)
let duplex_pairs topo =
  List.filter_map
    (fun (l : Graph.link) ->
      if l.src < l.dst && Option.is_some (Graph.link topo ~src:l.dst ~dst:l.src)
      then Some (l.src, l.dst)
      else None)
    (Graph.links topo)

let partition_pairs ~clients topo =
  if clients < 1 then invalid_arg "Procfault.partition_pairs: clients must be >= 1";
  let pairs = duplex_pairs topo in
  if List.length pairs < clients then
    invalid_arg
      (Printf.sprintf
         "Procfault.partition_pairs: %d clients but only %d duplex pairs"
         clients (List.length pairs));
  let buckets = Array.make clients [] in
  List.iteri (fun i p -> buckets.(i mod clients) <- p :: buckets.(i mod clients)) pairs;
  Array.to_list (Array.map List.rev buckets)

let stream_gen ~rng ~base_cost ~topo ~updates ~topology_events ?only_pairs () =
  if updates < 0 then invalid_arg "Procfault.stream: negative update count";
  let all = duplex_pairs topo in
  let chosen =
    match only_pairs with
    | None -> all
    | Some subset ->
        List.iter
          (fun (a, b) ->
            if a >= b then
              invalid_arg "Procfault.stream: pairs must be normalized (a < b)";
            if not (List.mem (a, b) all) then
              invalid_arg
                (Printf.sprintf "Procfault.stream: (%d, %d) is not a duplex pair" a b))
          subset;
        subset
  in
  let pairs = Array.of_list chosen in
  let n_pairs = Array.length pairs in
  if n_pairs = 0 then invalid_arg "Procfault.stream: topology has no duplex link";
  let up = Array.make n_pairs true in
  let n_up = ref n_pairs in
  let base ~src ~dst = base_cost (Graph.link_exn topo ~src ~dst) in
  (* index of the [k]-th up pair *)
  let nth_up k =
    let seen = ref (-1) in
    let found = ref (-1) in
    Array.iteri
      (fun i u ->
        if u then begin
          incr seen;
          if !seen = k && !found < 0 then found := i
        end)
      up;
    !found
  in
  let cost_change () =
    let i = nth_up (Rng.int rng ~bound:!n_up) in
    let a, b = pairs.(i) in
    let src, dst = if Rng.int rng ~bound:2 = 0 then (a, b) else (b, a) in
    let factor = Float.exp (Rng.uniform rng ~lo:(-1.4) ~hi:1.4) in
    Cost_change { src; dst; cost = base ~src ~dst *. factor }
  in
  let fail () =
    if !n_up <= 1 then cost_change () (* never take the last link *)
    else begin
      let i = nth_up (Rng.int rng ~bound:!n_up) in
      up.(i) <- false;
      decr n_up;
      let a, b = pairs.(i) in
      Fail { a; b }
    end
  in
  let restore () =
    if !n_up = n_pairs then cost_change () (* nothing is down *)
    else begin
      let k = ref (Rng.int rng ~bound:(n_pairs - !n_up)) in
      let found = ref (-1) in
      Array.iteri
        (fun i u ->
          if (not u) && !found < 0 then
            if !k = 0 then found := i else decr k)
        up;
      let i = !found in
      up.(i) <- true;
      incr n_up;
      let a, b = pairs.(i) in
      Restore { a; b; cost = base ~src:a ~dst:b }
    end
  in
  let out = ref [] in
  for _ = 1 to updates do
    let u =
      if not topology_events then cost_change ()
      else
        let r = Rng.float rng in
        if r < 0.70 then cost_change ()
        else if r < 0.85 then fail ()
        else restore ()
    in
    out := u :: !out
  done;
  List.rev !out

let stream ~rng ?(base_cost = default_base_cost) ~topo ~updates () =
  stream_gen ~rng ~base_cost ~topo ~updates ~topology_events:true ()

let stream_on ~rng ?(base_cost = default_base_cost) ~topo ~pairs ~updates () =
  stream_gen ~rng ~base_cost ~topo ~updates ~topology_events:true ~only_pairs:pairs ()

let cost_storm ~rng ?(base_cost = default_base_cost) ~topo ~updates () =
  stream_gen ~rng ~base_cost ~topo ~updates ~topology_events:false ()

let random_kills ~rng ~updates ~kills =
  if kills < 0 then invalid_arg "Procfault.random_kills: negative kill count";
  if updates < kills + 2 then
    invalid_arg "Procfault.random_kills: need updates >= kills + 2";
  (* distinct update numbers in [2, updates - 1] *)
  let candidates = Array.init (updates - 2) (fun i -> i + 2) in
  Rng.shuffle rng candidates;
  let chosen = Array.sub candidates 0 kills in
  Array.sort (fun (a : int) b -> Stdlib.compare a b) chosen;
  let out = ref [] in
  for i = 0 to kills - 1 do
    let where =
      match i mod 3 with 0 -> Mid_snapshot | 1 -> Between | _ -> Mid_journal
    in
    out := { after = chosen.(i); where; torn_at = 1 + Rng.int rng ~bound:4096 } :: !out
  done;
  List.rev !out

let of_campaign ?(base_cost = default_base_cost) ~topo (plan : Campaign.plan) =
  let base ~src ~dst = base_cost (Graph.link_exn topo ~src ~dst) in
  let events =
    List.concat_map
      (fun (f : Campaign.fault) ->
        match f with
        | Campaign.Flap { a; b; at; restore_at } ->
            [
              (at, Fail { a; b });
              (restore_at, Restore { a; b; cost = base ~src:a ~dst:b });
            ]
        | Campaign.Cost_surge { a; b; at; factor } ->
            [
              (at, Cost_change { src = a; dst = b; cost = base ~src:a ~dst:b *. factor });
              (at, Cost_change { src = b; dst = a; cost = base ~src:b ~dst:a *. factor });
            ]
        | Campaign.Demand_surge _ | Campaign.Crash _ | Campaign.Partition _ -> [])
      plan.Campaign.faults
  in
  List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) events

let describe topo u =
  let name = Graph.name topo in
  match u with
  | Cost_change { src; dst; cost } ->
      Printf.sprintf "cost %s->%s = %.3f" (name src) (name dst) cost
  | Fail { a; b } -> Printf.sprintf "fail %s<->%s" (name a) (name b)
  | Restore { a; b; cost } ->
      Printf.sprintf "restore %s<->%s at %.3f" (name a) (name b) cost

let describe_kill k =
  let where =
    match k.where with
    | Between -> "between updates"
    | Mid_journal -> "mid-journal-append"
    | Mid_snapshot -> "mid-snapshot"
  in
  Printf.sprintf "kill %s after update %d (torn at byte %d)" where k.after
    k.torn_at
