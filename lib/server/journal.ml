let magic = "MDRJ"
let version = 2

type t = {
  fd : Unix.file_descr;
  fsync : bool;
  mutable count : int;
  mutable dead : bool;
}

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.single_write_substring fd s !off (len - !off)
  done

let create ?(fsync = false) ~path () =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (Codec.header ~magic ~version);
  if fsync then Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  { fd; fsync; count = 0; dead = false }

let append ?torn_after t ~seq ~payload =
  if t.dead then invalid_arg "Journal.append: journal is closed";
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int64_be b (Int64.of_int seq);
  Buffer.add_string b payload;
  let record = Codec.frame (Buffer.contents b) in
  match torn_after with
  | None ->
      write_all t.fd record;
      if t.fsync then Unix.fsync t.fd;
      t.count <- t.count + 1
  | Some k ->
      (* Simulated kill mid-append: a strict prefix of the record hits
         the disk, and the process that would have finished it is gone. *)
      let k = max 1 (min k (String.length record - 1)) in
      write_all t.fd (String.sub record 0 k);
      t.dead <- true;
      Unix.close t.fd

let records t = t.count

let close t =
  if not t.dead then begin
    t.dead <- true;
    Unix.close t.fd
  end

type replay = { entries : (int * string) list; torn : bool; clean_bytes : int }

let replay ~path =
  let ic =
    try open_in_bin path
    with Sys_error m -> failwith (Printf.sprintf "Journal.replay: %s" m)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let hdr =
        try really_input_string ic Codec.header_len
        with End_of_file -> failwith (Printf.sprintf "Journal.replay: %s: truncated header" path)
      in
      (match Codec.check_header hdr ~magic with
      | Ok v when v = version -> ()
      | Ok v -> failwith (Printf.sprintf "Journal.replay: %s: unsupported version %d" path v)
      | Error reason -> failwith (Printf.sprintf "Journal.replay: %s: %s" path reason));
      let rec loop acc clean =
        match Codec.read_record ic with
        | Codec.Eof -> { entries = List.rev acc; torn = false; clean_bytes = clean }
        | Codec.Torn reason ->
            Printf.eprintf "journal %s: skipping torn trailing record (%s)\n%!" path
              reason;
            { entries = List.rev acc; torn = true; clean_bytes = clean }
        | Codec.Record r ->
            if String.length r < 8 then
              failwith (Printf.sprintf "Journal.replay: %s: malformed record" path);
            let seq = Int64.to_int (String.get_int64_be r 0) in
            let payload = String.sub r 8 (String.length r - 8) in
            loop ((seq, payload) :: acc) (pos_in ic)
      in
      loop [] Codec.header_len)

let open_append ?(fsync = false) ~path () =
  let r = replay ~path in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  (* A torn tail must be cut before appending: writing a fresh record
     after partial bytes would turn a skippable tail into mid-file
     corruption. *)
  Unix.ftruncate fd r.clean_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  ({ fd; fsync; count = List.length r.entries; dead = false }, r)
